// Package bat is a from-scratch Go reproduction of "BAT: Efficient
// Generative Recommender Serving with Bipartite Attention" (ASPLOS 2026).
//
// The library lives under internal/: the Bipartite Attention mechanism
// (internal/bipartite) on a pure-Go transformer (internal/model), the
// disaggregated KV cache pool (internal/kvcache, internal/cachemeta), HRCS
// item placement (internal/placement), hotness-aware prompt scheduling
// (internal/scheduler), a virtual-time cluster simulator (internal/cluster),
// workload and accuracy substrates (internal/workload, internal/ranking),
// and one runner per paper table/figure (internal/experiments).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-versus-measured results.
// The root package exists to host the benchmark harness (bench_test.go),
// which regenerates every evaluation artifact under `go test -bench=.`.
package bat
