module bat

go 1.22
