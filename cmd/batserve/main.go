// Command batserve runs the BAT ranking service over a synthetic
// recommendation corpus: a real HTTP API backed by the executable GR model,
// bipartite attention, and an in-process user/item KV cache.
//
// Usage:
//
//	batserve -addr :8080 -items 600 -users 200 -precompute
//
// Then:
//
//	curl -s localhost:8080/v1/rank -d '{"user_id":3,"candidate_ids":[1,2,3,4,5,6,7,8,9,10,11,12]}'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/metrics       # per-stage latency histograms (text)
//	curl -s localhost:8080/debug/trace   # last-N request traces (JSON)
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"bat/internal/ranking"
	"bat/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	items := flag.Int("items", 600, "item corpus size")
	users := flag.Int("users", 200, "user population")
	seed := flag.Int64("seed", 1, "dataset seed")
	precompute := flag.Bool("precompute", true, "precompute every item KV cache at startup")
	posSensitive := flag.Bool("abs-pos", false, "serve the position-sensitive model variant")
	pageTokens := flag.Int("page-tokens", 0, "PagedAttention block size; 0 = contiguous storage")
	multiDisc := flag.Bool("multi-disc", false, "serve with one discriminant token per candidate")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "how long the first queued request waits for batchmates (negative = drain-only)")
	maxBatch := flag.Int("max-batch", 8, "most requests packed into one bipartite execution (1 = serialized)")
	windowPolicy := flag.String("window-policy", "adaptive", "batch-window policy: adaptive (close early when arrivals lull) or fixed (always wait out batch-window)")
	traceRing := flag.Int("trace-ring", 128, "request traces retained for GET /debug/trace")
	partitionMode := flag.String("partition", "static", "user/item cache capacity split: static (fixed caps) or adaptive (marginal-utility controller)")
	maxUserCaches := flag.Int("max-user-caches", 0, "user-cache entry cap (0 = default 256)")
	maxItemCaches := flag.Int("max-item-caches", 0, "item-cache entry cap (0 = unbounded; adaptive defaults to 4096)")
	flag.Parse()

	ds, err := ranking.NewDataset(ranking.DatasetConfig{
		Name: "serve", Items: *items, Users: *users, Clusters: 8, LatentDim: 8,
		HistoryMin: 8, HistoryMax: 40, ItemAttrTokens: 2,
		ClusterNoise: 0.15, Candidates: 100, HardNegatives: 8, Seed: *seed,
	})
	if err != nil {
		log.Fatalf("batserve: %v", err)
	}
	variant := ranking.VariantBase
	if *posSensitive {
		variant = ranking.VariantAbsPos
	}
	srv, err := server.New(server.Config{
		Dataset:         ds,
		Variant:         variant,
		PrecomputeItems: *precompute,
		PageTokens:      *pageTokens,
		MultiDisc:       *multiDisc,
		BatchWindow:     *batchWindow,
		WindowPolicy:    *windowPolicy,
		MaxBatch:        *maxBatch,
		TraceRing:       *traceRing,
		Partition:       *partitionMode,
		MaxUserCaches:   *maxUserCaches,
		MaxItemCaches:   *maxItemCaches,
	})
	if err != nil {
		log.Fatalf("batserve: %v", err)
	}
	fmt.Printf("batserve: %d items, %d users, model %s, partition %s, listening on %s\n",
		*items, *users, variant.Name, *partitionMode, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
