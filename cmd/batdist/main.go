// Command batdist launches a complete disaggregated BAT deployment in one
// process for demonstration: a cache meta service, N KV cache workers, and
// an inference frontend, each on its own HTTP port (Figure 3 as real
// services).
//
// Usage:
//
//	batdist -base-port 9000 -workers 3
//
// Then:
//
//	curl -s localhost:9000/v1/rank -d '{"user_id":3,"candidate_ids":[1,2,3,4,5,6,7,8,9,10]}'
//	curl -s localhost:9000/v1/stats          # frontend
//	curl -s localhost:9001/v1/locate'?kind=item&id=1'   # meta
//	curl -s localhost:9002/stats             # first cache worker
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"bat/internal/distserve"
	"bat/internal/ranking"
)

func main() {
	basePort := flag.Int("base-port", 9000, "frontend port; meta takes +1, cache workers +2..")
	workers := flag.Int("workers", 3, "cache worker count")
	capacityMB := flag.Int64("worker-mem", 256, "cache worker capacity in MiB")
	items := flag.Int("items", 600, "item corpus size")
	users := flag.Int("users", 200, "user population")
	seed := flag.Int64("seed", 1, "dataset seed")
	flag.Parse()

	ds, err := ranking.NewDataset(ranking.DatasetConfig{
		Name: "dist", Items: *items, Users: *users, Clusters: 8, LatentDim: 8,
		HistoryMin: 8, HistoryMax: 40, ItemAttrTokens: 2,
		ClusterNoise: 0.15, Candidates: 100, HardNegatives: 8, Seed: *seed,
	})
	if err != nil {
		log.Fatalf("batdist: %v", err)
	}

	errs := make(chan error, *workers+2)
	serve := func(port int, h http.Handler, what string) {
		addr := fmt.Sprintf(":%d", port)
		fmt.Printf("batdist: %s on %s\n", what, addr)
		go func() { errs <- fmt.Errorf("%s: %w", what, http.ListenAndServe(addr, h)) }()
	}

	meta := distserve.NewMetaServer(300, nil)
	serve(*basePort+1, meta.Handler(), "cache meta service")

	var workerURLs []string
	for i := 0; i < *workers; i++ {
		cw, err := distserve.NewCacheWorker(*capacityMB << 20)
		if err != nil {
			log.Fatalf("batdist: %v", err)
		}
		port := *basePort + 2 + i
		serve(port, cw.Handler(), fmt.Sprintf("cache worker %d", i))
		workerURLs = append(workerURLs, fmt.Sprintf("http://127.0.0.1:%d", port))
	}

	frontend, err := distserve.NewFrontend(distserve.FrontendConfig{
		Dataset:      ds,
		Variant:      ranking.VariantBase,
		MetaURL:      fmt.Sprintf("http://127.0.0.1:%d", *basePort+1),
		CacheWorkers: workerURLs,
	})
	if err != nil {
		log.Fatalf("batdist: %v", err)
	}
	serve(*basePort, frontend.Handler(), "inference frontend")

	log.Fatal(<-errs)
}
