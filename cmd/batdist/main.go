// Command batdist launches a complete disaggregated BAT deployment in one
// process for demonstration: a cache meta service, N KV cache workers, and
// an inference frontend, each on its own HTTP port (Figure 3 as real
// services). The frontend moves KV payloads through the fault-tolerant
// transfer engine (timeouts, retries, circuit breakers, parallel fetch), and
// each worker's LRU evictions unregister from the meta service so location
// metadata never goes stale. The frontend runs the overload ladder (bounded
// in-flight + wait queue, Deadline-Ms budgets, degraded retrieval fallback,
// 429 shedding) and a poolguard that probes worker health, purges dead
// workers' meta bindings, and re-replicates their hottest entries.
//
// Usage:
//
//	batdist -base-port 9000 -workers 3 -transfer-timeout 2s
//
// Attach mode boots only a frontend against a cluster another batdist owns
// (a second replica for the cmd/batrouter sharded frontend tier):
//
//	batdist -base-port 9100 -meta-url http://127.0.0.1:9001 \
//	        -cache-workers http://127.0.0.1:9002,http://127.0.0.1:9003
//
// Then:
//
//	curl -s localhost:9000/v1/rank -d '{"user_id":3,"candidate_ids":[1,2,3,4,5,6,7,8,9,10]}'
//	curl -s localhost:9000/v1/stats          # frontend, incl. per-worker health
//	curl -s localhost:9000/metrics           # stage histograms + pool health (text)
//	curl -s localhost:9000/debug/trace       # last-N traces, fetch spans tagged
//	curl -s localhost:9001/v1/locate'?kind=item&id=1'   # meta
//	curl -s localhost:9002/stats             # first cache worker
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"bat/internal/admission"
	"bat/internal/distserve"
	"bat/internal/partition"
	"bat/internal/ranking"
)

func main() {
	basePort := flag.Int("base-port", 9000, "frontend port; meta takes +1, cache workers +2..")
	workers := flag.Int("workers", 3, "cache worker count")
	capacityMB := flag.Int64("worker-mem", 256, "cache worker capacity in MiB")
	items := flag.Int("items", 600, "item corpus size")
	users := flag.Int("users", 200, "user population")
	seed := flag.Int64("seed", 1, "dataset seed")
	timeout := flag.Duration("transfer-timeout", 2*time.Second, "per-attempt KV transfer timeout")
	retries := flag.Int("transfer-retries", 2, "extra attempts for idempotent cache GETs (negative disables)")
	breakerTrip := flag.Int("breaker-threshold", 5, "consecutive failures that trip a worker's circuit breaker (negative disables)")
	breakerCool := flag.Duration("breaker-cooldown", 2*time.Second, "open-breaker cooldown before a half-open probe")
	fetchConc := flag.Int("fetch-concurrency", 16, "parallel item-cache fetches per request")
	maxInFlight := flag.Int("max-inflight", 4, "concurrently served requests before queueing")
	queueDepth := flag.Int("queue-depth", 8, "bounded wait queue past the in-flight limit (negative disables queueing)")
	defaultDeadline := flag.Duration("default-deadline", 5*time.Second, "request budget when no Deadline-Ms header is sent")
	degradeQueue := flag.Int("degrade-queue", 4, "queue depth at which admitted requests are served degraded")
	probeInterval := flag.Duration("probe-interval", 500*time.Millisecond, "poolguard health-probe cadence")
	repairHot := flag.Int("repair-hot", 16, "hottest entries re-replicated after a cache worker dies")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "how long the first queued request waits for batchmates (negative = drain-only)")
	maxBatch := flag.Int("max-batch", 8, "most requests packed into one bipartite execution (1 = serialized)")
	windowPolicy := flag.String("window-policy", "adaptive", "batch-window policy: adaptive (close early when arrivals lull) or fixed (always wait out batch-window)")
	traceRing := flag.Int("trace-ring", 128, "request traces retained for GET /debug/trace")
	jitterSeed := flag.Int64("jitter-seed", 0, "retry-jitter RNG seed (0 = from the clock)")
	storeQueue := flag.Int("store-queue", 256, "write-behind cache-store queue depth (negative = synchronous stores at the batch boundary)")
	storeWorkers := flag.Int("store-workers", 2, "concurrent write-behind store uploads")
	replication := flag.Int("replication", 2, "replicas per committed cache entry (1 = single copy)")
	closeFlushTimeout := flag.Duration("close-flush-timeout", 2*time.Second, "bounded flush of queued write-behind stores at shutdown (negative = abandon)")
	scrubInterval := flag.Duration("scrub-interval", 2*time.Second, "anti-entropy scrub cadence (negative disables)")
	hedgeQuantile := flag.Float64("hedge-quantile", 0.99, "fetch-stage latency quantile that arms hedged replica reads (negative disables)")
	chaos := flag.Bool("chaos", false, "route each cache worker through a fault proxy controlled via POST /chaos?worker=N&mode=error|delay|none on the frontend port")
	partitionMode := flag.String("partition", "static", "worker cache capacity split between user and item classes: static or adaptive")
	itemBudgetFraction := flag.Float64("item-budget-fraction", 0.7, "item class share of each worker's capacity when -partition adaptive")
	attachMeta := flag.String("meta-url", "", "attach mode: reuse an existing cache meta service instead of booting one (requires -cache-workers)")
	attachWorkers := flag.String("cache-workers", "", "attach mode: comma-separated existing cache worker URLs (with -meta-url); this process boots only a frontend")
	flag.Parse()

	mode, err := partition.ParseMode(*partitionMode)
	if err != nil {
		log.Fatalf("batdist: %v", err)
	}
	ds, err := ranking.NewDataset(ranking.DatasetConfig{
		Name: "dist", Items: *items, Users: *users, Clusters: 8, LatentDim: 8,
		HistoryMin: 8, HistoryMax: 40, ItemAttrTokens: 2,
		ClusterNoise: 0.15, Candidates: 100, HardNegatives: 8, Seed: *seed,
	})
	if err != nil {
		log.Fatalf("batdist: %v", err)
	}

	errs := make(chan error, *workers+2)
	serve := func(port int, h http.Handler, what string) {
		addr := fmt.Sprintf(":%d", port)
		fmt.Printf("batdist: %s on %s\n", what, addr)
		go func() { errs <- fmt.Errorf("%s: %w", what, http.ListenAndServe(addr, h)) }()
	}

	// Attach mode: -meta-url + -cache-workers boot only a frontend against a
	// cluster another batdist already owns — the second replica of a sharded
	// frontend tier (see cmd/batrouter). The attached frontend shares the
	// meta service and KV pool, so either replica can serve any user.
	attach := *attachMeta != ""
	var metaURL string
	if attach {
		if *attachWorkers == "" {
			log.Fatal("batdist: -meta-url requires -cache-workers")
		}
		metaURL = strings.TrimRight(*attachMeta, "/")
	} else {
		meta := distserve.NewMetaServer(300, nil)
		metaURL = fmt.Sprintf("http://127.0.0.1:%d", *basePort+1)
		serve(*basePort+1, meta.Handler(), "cache meta service")
	}

	// Evictions propagate to the meta service so /v1/locate never reports
	// entries the pool already dropped.
	unregister := func(worker int) func(key string) {
		client := &http.Client{Timeout: *timeout}
		return func(key string) {
			kind, id, err := distserve.ParseCacheKey(key)
			if err != nil {
				return
			}
			body, err := json.Marshal(distserve.RegisterRequest{
				EntryRef: distserve.EntryRef{Kind: kind, ID: id}, Worker: worker,
			})
			if err != nil {
				return
			}
			resp, err := client.Post(metaURL+"/v1/unregister", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}
	}

	// With -chaos each worker's public port serves a fault proxy in front of
	// the real worker (listening workers positions further up), so faults can
	// be injected into a live deployment without killing processes.
	var workerURLs []string
	var proxies []*distserve.FaultProxy
	if attach {
		for _, u := range strings.Split(*attachWorkers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				workerURLs = append(workerURLs, strings.TrimRight(u, "/"))
			}
		}
		if len(workerURLs) == 0 {
			log.Fatal("batdist: -cache-workers lists no URLs")
		}
	}
	for i := 0; !attach && i < *workers; i++ {
		cw, err := distserve.NewCacheWorker(*capacityMB << 20)
		if err != nil {
			log.Fatalf("batdist: %v", err)
		}
		cw.SetEvictHook(unregister(i))
		handler := cw.Handler()
		if mode == partition.Adaptive {
			// Each worker runs its own capacity partition controller: the
			// user/item byte split starts at -item-budget-fraction and
			// follows measured marginal utility; bat_partition_* gauges
			// appear on the worker's /metrics.
			ctrl, err := distserve.NewWorkerPartition(cw, *itemBudgetFraction, partition.Config{})
			if err != nil {
				log.Fatalf("batdist: worker %d partition: %v", i, err)
			}
			ctrl.Run()
			defer ctrl.Stop()
			handler = distserve.PartitionedWorkerHandler(cw, ctrl)
		}
		port := *basePort + 2 + i
		if *chaos {
			backendPort := port + *workers
			serve(backendPort, handler, fmt.Sprintf("cache worker %d (backend)", i))
			proxy := distserve.NewFaultProxy(fmt.Sprintf("http://127.0.0.1:%d", backendPort))
			proxies = append(proxies, proxy)
			serve(port, proxy.Handler(), fmt.Sprintf("cache worker %d (fault proxy)", i))
		} else {
			serve(port, handler, fmt.Sprintf("cache worker %d", i))
		}
		workerURLs = append(workerURLs, fmt.Sprintf("http://127.0.0.1:%d", port))
	}

	frontend, err := distserve.NewFrontend(distserve.FrontendConfig{
		Dataset:      ds,
		Variant:      ranking.VariantBase,
		MetaURL:      metaURL,
		CacheWorkers: workerURLs,
		Transfer: distserve.TransferConfig{
			Timeout:          *timeout,
			MaxRetries:       *retries,
			BreakerThreshold: *breakerTrip,
			BreakerCooldown:  *breakerCool,
			FetchConcurrency: *fetchConc,
			JitterSeed:       *jitterSeed,
			StoreQueueDepth:  *storeQueue,
			StoreWorkers:     *storeWorkers,
			HedgeQuantile:    *hedgeQuantile,
		},
		Replication:       *replication,
		CloseFlushTimeout: *closeFlushTimeout,
		Admission: admission.Config{
			MaxInFlight:       *maxInFlight,
			MaxQueue:          *queueDepth,
			DefaultDeadline:   *defaultDeadline,
			DegradeQueueDepth: *degradeQueue,
		},
		BatchWindow:  *batchWindow,
		WindowPolicy: *windowPolicy,
		MaxBatch:     *maxBatch,
		TraceRing:    *traceRing,
	})
	if err != nil {
		log.Fatalf("batdist: %v", err)
	}
	guard := distserve.NewPoolGuard(frontend, distserve.PoolGuardConfig{
		ProbeInterval: *probeInterval,
		RepairHot:     *repairHot,
		ScrubInterval: *scrubInterval,
	})
	guard.Start()
	front := http.NewServeMux()
	front.Handle("/", frontend.Handler())
	if *chaos {
		front.HandleFunc("/chaos", func(rw http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(rw, "POST required", http.StatusMethodNotAllowed)
				return
			}
			var worker int
			if _, err := fmt.Sscanf(r.URL.Query().Get("worker"), "%d", &worker); err != nil ||
				worker < 0 || worker >= len(proxies) {
				http.Error(rw, "bad worker", http.StatusBadRequest)
				return
			}
			delay := 200 * time.Millisecond
			if d, err := time.ParseDuration(r.URL.Query().Get("delay")); err == nil {
				delay = d
			}
			switch r.URL.Query().Get("mode") {
			case "none":
				proxies[worker].SetMode(distserve.FaultNone, 0)
			case "delay":
				proxies[worker].SetMode(distserve.FaultDelay, delay)
			case "error", "kill":
				proxies[worker].SetMode(distserve.FaultError, 0)
			case "drop":
				proxies[worker].SetMode(distserve.FaultDrop, 0)
			default:
				http.Error(rw, "mode must be none|delay|error|kill|drop", http.StatusBadRequest)
				return
			}
			rw.WriteHeader(http.StatusNoContent)
		})
	}
	serve(*basePort, front, "inference frontend")
	fmt.Printf("batdist: overload ladder max-inflight=%d queue=%d deadline=%v; poolguard probing every %v; replication=%d scrub=%v partition=%s\n",
		*maxInFlight, *queueDepth, *defaultDeadline, *probeInterval, *replication, *scrubInterval, mode)

	// Periodically surface the robustness counters so shedding and
	// self-healing are visible without curling /v1/stats.
	go func() {
		for range time.Tick(30 * time.Second) {
			st := frontend.Stats()
			line := fmt.Sprintf("batdist: served=%d degraded=%d shed=%d(queue)+%d(deadline) purges=%d",
				st.Requests, st.DegradedRequests, st.Admission.ShedQueueFull, st.Admission.ShedDeadline, st.WorkerPurges)
			if st.Guard != nil {
				line += fmt.Sprintf(" deaths=%d rejoins=%d repaired=%d", st.Guard.Deaths, st.Guard.Rejoins, st.Guard.Repaired)
			}
			fmt.Println(line)
		}
	}()

	log.Fatal(<-errs)
}
