// Command batrouter launches the sharded frontend tier: one router in front
// of N frontend replicas. The router does cluster-level admission (the same
// bounded in-flight + queue + 429 ladder the frontends run per-replica),
// polls each frontend's GET /v1/load for live load and a bloom summary of
// resident user caches, scores every rank request across the live frontends
// with the shared routing pipeline (cache affinity, least-loaded,
// round-robin by weight), proxies to the winner, and fails over to the
// next-best frontend when one dies mid-request.
//
// Usage:
//
//	batrouter -addr :8900 -frontends http://127.0.0.1:9000,http://127.0.0.1:9100
//
// Then:
//
//	curl -s localhost:8900/v1/rank -d '{"user_id":3,"candidate_ids":[1,2,3,4,5,6,7,8,9,10]}'
//	curl -s localhost:8900/v1/stats   # per-frontend alive/load, decisions by scorer, failovers
//	curl -s localhost:8900/metrics    # bat_route_decisions_total{scorer}, bat_route_failovers_total, gauges
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"bat/internal/admission"
	"bat/internal/routing"
)

func main() {
	addr := flag.String("addr", ":8900", "router listen address")
	frontends := flag.String("frontends", "", "comma-separated frontend base URLs (required)")
	scorerSpec := flag.String("routing-scorers", "", `scorer pipeline, e.g. "cache-affinity:2,least-loaded:1,round-robin:0.25" (empty = defaults)`)
	maxInFlight := flag.Int("router-max-inflight", 16, "concurrently proxied requests before queueing")
	queueDepth := flag.Int("router-queue-depth", 32, "bounded wait queue past the in-flight limit (negative disables queueing)")
	defaultDeadline := flag.Duration("default-deadline", 5*time.Second, "request budget when no Deadline-Ms header is sent")
	pollInterval := flag.Duration("poll-interval", 500*time.Millisecond, "frontend /v1/load poll cadence")
	failAfter := flag.Int("fail-after", 2, "consecutive failures that mark a frontend dead until a poll succeeds")
	seed := flag.Uint64("seed", 1, "round-robin scorer seed")
	timeout := flag.Duration("proxy-timeout", 10*time.Second, "HTTP client timeout for polls and proxied ranks")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*frontends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		log.Fatal("batrouter: -frontends is required")
	}
	var scorers []routing.Weighted
	if *scorerSpec != "" {
		var err error
		if scorers, err = routing.ParseScorers(*scorerSpec); err != nil {
			log.Fatalf("batrouter: %v", err)
		}
	}

	r, err := routing.NewRouter(routing.RouterConfig{
		Frontends: urls,
		Scorers:   scorers,
		Seed:      *seed,
		Admission: admission.Config{
			MaxInFlight:     *maxInFlight,
			MaxQueue:        *queueDepth,
			DefaultDeadline: *defaultDeadline,
		},
		Client:       &http.Client{Timeout: *timeout},
		PollInterval: *pollInterval,
		FailAfter:    *failAfter,
	})
	if err != nil {
		log.Fatalf("batrouter: %v", err)
	}
	defer r.Close()

	var names []string
	for _, w := range r.Scorers() {
		names = append(names, fmt.Sprintf("%s:%g", w.Scorer.Name(), w.Weight))
	}
	fmt.Printf("batrouter: routing %d frontends on %s, scorers %s, max-inflight=%d queue=%d poll=%v\n",
		len(urls), *addr, strings.Join(names, ","), *maxInFlight, *queueDepth, *pollInterval)
	log.Fatal(http.ListenAndServe(*addr, r.Handler()))
}
