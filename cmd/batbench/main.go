// Command batbench regenerates the paper's tables and figures from the
// reproduced system and prints them as aligned text tables.
//
// Usage:
//
//	batbench -run all              # every artifact, paper order
//	batbench -run fig5,table4     # selected artifacts
//	batbench -run fig9 -requests 8000 -seed 7
//	batbench -list                 # available artifact IDs
//	batbench -bench-json           # engine bench -> BENCH_engine.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bat/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "comma-separated artifact IDs, or 'all'")
	requests := flag.Int("requests", 0, "requests per serving simulation (0 = default)")
	seed := flag.Int64("seed", 0, "workload seed (0 = default)")
	quick := flag.Bool("quick", false, "shrink every experiment for a fast smoke run")
	format := flag.String("format", "text", "output format: text | markdown | csv")
	list := flag.Bool("list", false, "list artifact IDs and exit")
	benchJSON := flag.Bool("bench-json", false, "run the engine, serving, transfer, cluster, and partition benchmarks and write their -*-out JSON artifacts")
	benchOut := flag.String("bench-out", "BENCH_engine.json", "engine benchmark output path for -bench-json")
	servingBenchOut := flag.String("serving-bench-out", "BENCH_serving.json", "serving benchmark output path for -bench-json")
	transferBenchOut := flag.String("transfer-bench-out", "BENCH_transfer.json", "transfer benchmark output path for -bench-json")
	clusterBenchOut := flag.String("cluster-bench-out", "BENCH_cluster.json", "cluster routing benchmark output path for -bench-json")
	partitionBenchOut := flag.String("partition-bench-out", "BENCH_partition.json", "capacity partition benchmark output path for -bench-json")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *benchJSON {
		opts := experiments.Options{Requests: *requests, Seed: *seed, Quick: *quick}
		res, err := experiments.RunEngineBench(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "batbench: engine bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res.Table().Format())
		if err := experiments.WriteEngineBenchJSON(*benchOut, res); err != nil {
			fmt.Fprintf(os.Stderr, "batbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchOut)
		sres, err := experiments.RunServingBench(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "batbench: serving bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(sres.Table().Format())
		if err := experiments.WriteServingBenchJSON(*servingBenchOut, sres); err != nil {
			fmt.Fprintf(os.Stderr, "batbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *servingBenchOut)
		tres, err := experiments.RunTransferBench(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "batbench: transfer bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(tres.Table().Format())
		if err := experiments.WriteTransferBenchJSON(*transferBenchOut, tres); err != nil {
			fmt.Fprintf(os.Stderr, "batbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *transferBenchOut)
		cres, err := experiments.RunRouterBench(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "batbench: router bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(cres.Table().Format())
		if err := experiments.WriteRouterBenchJSON(*clusterBenchOut, cres); err != nil {
			fmt.Fprintf(os.Stderr, "batbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *clusterBenchOut)
		pres, err := experiments.RunPartitionBench(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "batbench: partition bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(pres.Table().Format())
		if err := experiments.WritePartitionBenchJSON(*partitionBenchOut, pres); err != nil {
			fmt.Fprintf(os.Stderr, "batbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *partitionBenchOut)
		return
	}

	opts := experiments.Options{Requests: *requests, Seed: *seed, Quick: *quick}
	ids := experiments.IDs()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "batbench: unknown artifact %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		table, err := runner(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "batbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		switch *format {
		case "markdown":
			fmt.Println(table.Markdown())
		case "csv":
			fmt.Print(table.CSV())
		case "text":
			fmt.Print(table.Format())
			fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
		default:
			fmt.Fprintf(os.Stderr, "batbench: unknown format %q\n", *format)
			os.Exit(2)
		}
	}
}
