// Command battrace generates a serving trace for one of the Table 1
// workloads and prints either the raw requests (CSV) or a distribution
// summary matching Figure 2.
//
// Usage:
//
//	battrace -dataset Industry -n 10000 -duration 3600 -summary
//	battrace -dataset Books -n 1000 > trace.csv
//	battrace -dataset Books -replay trace.csv -system BAT
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"bat/internal/core"
	"bat/internal/metrics"
	"bat/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "Industry", "Games|Beauty|Books|Industry")
	n := flag.Int("n", 10000, "requests to generate")
	duration := flag.Float64("duration", 3600, "trace duration in seconds")
	seed := flag.Int64("seed", 1, "generator seed")
	summary := flag.Bool("summary", false, "print distribution summary instead of CSV")
	replay := flag.String("replay", "", "replay a trace CSV through a serving simulation")
	system := flag.String("system", "BAT", "RE|UP|IP|BAT (with -replay)")
	flag.Parse()

	var prof workload.Profile
	found := false
	for _, p := range workload.Profiles() {
		if strings.EqualFold(p.Name, *dataset) {
			prof, found = p, true
		}
	}
	if !found {
		log.Fatalf("battrace: unknown dataset %q", *dataset)
	}
	gen, err := workload.NewGenerator(prof, *seed)
	if err != nil {
		log.Fatalf("battrace: %v", err)
	}

	if *replay != "" {
		replayTrace(prof, *replay, *system, *seed)
		return
	}

	trace, err := gen.GenerateTrace(*n, *duration)
	if err != nil {
		log.Fatalf("battrace: %v", err)
	}

	if !*summary {
		// The replayable on-disk format (workload.ReadTraceCSV reads it
		// back); token counts re-derive from the profile and seed.
		if err := trace.WriteCSV(os.Stdout); err != nil {
			log.Fatalf("battrace: %v", err)
		}
		return
	}

	var userTok metrics.Digest
	counts := map[workload.UserID]int{}
	for _, r := range trace.Requests {
		counts[r.User]++
	}
	for u := range counts {
		userTok.Add(float64(gen.UserTokens(u)))
	}
	var freq metrics.Digest
	inactive := 0
	for _, c := range counts {
		freq.Add(float64(c))
		if c <= 2 {
			inactive++
		}
	}
	w := os.Stdout
	fmt.Fprintf(w, "dataset=%s requests=%d duration=%.0fs distinct_users=%d\n",
		prof.Name, len(trace.Requests), trace.Duration, len(counts))
	fmt.Fprintf(w, "user tokens: mean=%.0f p50=%.0f p99=%.0f max=%.0f\n",
		userTok.Mean(), userTok.P50(), userTok.P99(), userTok.Max())
	fmt.Fprintf(w, "accesses/user: mean=%.2f p50=%.0f p99=%.0f; inactive(<=2)=%s\n",
		freq.Mean(), freq.P50(), freq.P99(),
		metrics.FormatPct(float64(inactive)/float64(len(counts))))
	z := workload.NewZipf(prof.Items, prof.ItemZipfA)
	fmt.Fprintf(w, "item popularity: top 1%%=%s top 10%%=%s of accesses\n",
		metrics.FormatPct(z.MassOfTopFraction(0.01)), metrics.FormatPct(z.MassOfTopFraction(0.10)))
}

// replayTrace reads a persisted trace and drives one serving system with it.
func replayTrace(prof workload.Profile, path, system string, seed int64) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("battrace: %v", err)
	}
	defer f.Close()
	trace, err := workload.ReadTraceCSV(f, prof)
	if err != nil {
		log.Fatalf("battrace: %v", err)
	}
	var sys core.System
	switch strings.ToUpper(system) {
	case "RE":
		sys = core.RE
	case "UP":
		sys = core.UP
	case "IP":
		sys = core.IP
	case "BAT":
		sys = core.BAT
	default:
		log.Fatalf("battrace: unknown system %q", system)
	}
	d, err := core.Build(sys, core.Options{
		Profile:      prof,
		Nodes:        4,
		HostMemBytes: 12 << 30,
		Seed:         seed,
	})
	if err != nil {
		log.Fatalf("battrace: %v", err)
	}
	sim, err := d.NewSim()
	if err != nil {
		log.Fatalf("battrace: %v", err)
	}
	st, err := sim.RunThroughput(trace)
	if err != nil {
		log.Fatalf("battrace: %v", err)
	}
	fmt.Printf("replayed %d requests (%s on %s): QPS %.1f, hit rate %s, compute savings %s\n",
		st.Requests, sys, prof.Name, st.QPS,
		metrics.FormatPct(st.HitRate()), metrics.FormatPct(st.ComputeSavings()))
	fmt.Printf("prefix mix: user %d / item %d / recompute %d; remote tokens %d\n",
		st.UserPrefixCount, st.ItemPrefixCount, st.RecomputeCount, st.RemoteTokens)
}
