package ranking

import (
	"testing"

	"bat/internal/bipartite"
	"bat/internal/tensor"
)

func TestNewRetrieverValidation(t *testing.T) {
	ds := testDataset(t)
	if _, err := NewRetriever(ds, 0); err == nil {
		t.Fatal("zero decay accepted")
	}
	if _, err := NewRetriever(ds, 1.5); err == nil {
		t.Fatal("decay > 1 accepted")
	}
	if _, err := NewRetriever(ds, 0.9); err != nil {
		t.Fatal(err)
	}
}

func TestUserStateDecay(t *testing.T) {
	ds := testDataset(t)
	full, _ := NewRetriever(ds, 1.0)
	fast, _ := NewRetriever(ds, 0.5)
	sFull := full.UserState(3)
	sFast := fast.UserState(3)
	var nFull, nFast float32
	for d := range sFull {
		nFull += sFull[d] * sFull[d]
		nFast += sFast[d] * sFast[d]
	}
	if nFast >= nFull {
		t.Fatal("decayed state should have smaller norm than undecayed")
	}
}

func TestRetrieveExcludesHistoryAndRanksInCluster(t *testing.T) {
	ds := testDataset(t)
	r, _ := NewRetriever(ds, 0.95)
	const u = 5
	cands := r.Retrieve(u, 20)
	if len(cands) != 20 {
		t.Fatalf("%d candidates", len(cands))
	}
	inHistory := map[int]bool{}
	for _, it := range ds.UserHistory[u] {
		inHistory[it] = true
	}
	inCluster := 0
	for _, it := range cands {
		if inHistory[it] {
			t.Fatalf("retrieved already-consumed item %d", it)
		}
		if ds.ItemCluster[it] == ds.UserCluster[u] {
			inCluster++
		}
	}
	// The decayed-history state points at the user's cluster, so retrieval
	// must be far above the 1-in-6 random rate (the history itself consumes
	// much of the small test corpus's cluster, capping the achievable count).
	if inCluster < 7 {
		t.Fatalf("only %d/20 retrieved items in the user's cluster (random would give ~3)", inCluster)
	}
	// And the head of the list must be in-cluster.
	headInCluster := 0
	for _, it := range cands[:5] {
		if ds.ItemCluster[it] == ds.UserCluster[u] {
			headInCluster++
		}
	}
	if headInCluster < 3 {
		t.Fatalf("only %d/5 top retrieved items in the user's cluster", headInCluster)
	}
}

// TestRetrieveDeterministicAcrossWidths pins the pooled corpus-scoring
// path: the candidate list is identical at any pool width.
func TestRetrieveDeterministicAcrossWidths(t *testing.T) {
	defer tensor.SetParallelism(0)
	ds := testDataset(t)
	r, _ := NewRetriever(ds, 0.95)
	tensor.SetParallelism(1)
	want := r.Retrieve(4, 25)
	for _, width := range []int{2, 4} {
		tensor.SetParallelism(width)
		got := r.Retrieve(4, 25)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("width %d: candidate list diverges at %d: %v vs %v", width, i, got, want)
			}
		}
	}
}

func TestRetrievalRequest(t *testing.T) {
	ds := testDataset(t)
	r, _ := NewRetriever(ds, 0.95)
	truth := r.sampleTruth(2)
	req, ok := r.RetrievalRequest(2, 20, truth)
	if !ok {
		t.Skip("truth did not survive retrieval for this seed")
	}
	if req.Candidates[req.Truth] != truth {
		t.Fatal("truth index wrong")
	}
}

// TestRetrievalEvalSetAndRanking is the paper's full two-stage protocol:
// retrieval surfaces candidates, the GR ranks them, and quality is measured
// only on requests whose truth survived retrieval.
func TestRetrievalEvalSetAndRanking(t *testing.T) {
	ds := testDataset(t)
	r, _ := NewRetriever(ds, 0.95)
	reqs, hitRate := r.RetrievalEvalSet(30, 20)
	if len(reqs) == 0 {
		t.Fatal("no requests survived retrieval")
	}
	if hitRate <= 0.3 {
		t.Fatalf("retrieval hit rate %v; in-cluster truths should usually survive", hitRate)
	}
	ranker, err := NewRanker(ds, VariantBase)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, req := range reqs {
		ranked, _, err := ranker.Rank(req, bipartite.ItemPrefix, RankOpts{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10 && i < len(ranked); i++ {
			if ranked[i] == req.Truth {
				hits++
				break
			}
		}
	}
	recall := float64(hits) / float64(len(reqs))
	// Post-retrieval candidates are all plausible (mostly same-cluster), so
	// this is a harder set than the synthetic sampler — still require skill
	// well above the 50% chance rate of top-10-of-20.
	if recall < 0.5 {
		t.Fatalf("post-retrieval Recall@10 = %v", recall)
	}
}
