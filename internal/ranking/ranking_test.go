package ranking

import (
	"math"
	"testing"

	"bat/internal/bipartite"
	"bat/internal/model"
	"bat/internal/tensor"
)

func testDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := NewDataset(DatasetConfig{
		Name: "test", Items: 120, Users: 60, Clusters: 6, LatentDim: 8,
		HistoryMin: 8, HistoryMax: 20, ItemAttrTokens: 2,
		ClusterNoise: 0.15, Candidates: 20, HardNegatives: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestDatasetConfigValidation(t *testing.T) {
	base := DatasetConfig{
		Name: "x", Items: 100, Users: 10, Clusters: 4, LatentDim: 8,
		HistoryMin: 2, HistoryMax: 4, Candidates: 20, HardNegatives: 2,
	}
	muts := []func(*DatasetConfig){
		func(c *DatasetConfig) { c.Items = 10 }, // smaller than candidates
		func(c *DatasetConfig) { c.Users = 0 },
		func(c *DatasetConfig) { c.LatentDim = 1 },
		func(c *DatasetConfig) { c.HistoryMax = 1 },
		func(c *DatasetConfig) { c.HardNegatives = 20 },
	}
	for i, mut := range muts {
		cfg := base
		mut(&cfg)
		if _, err := NewDataset(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDatasetStructure(t *testing.T) {
	ds := testDataset(t)
	if len(ds.ItemLatent) != 120 || len(ds.UserHistory) != 60 {
		t.Fatal("dataset sizes wrong")
	}
	// Latents are unit norm.
	for i, v := range ds.ItemLatent {
		if math.Abs(float64(tensor.Dot(v, v))-1) > 1e-5 {
			t.Fatalf("item %d latent norm %v", i, tensor.Dot(v, v))
		}
	}
	// Vocabulary ranges are disjoint and dense.
	if ds.InteractionToken(0) != 120 || ds.CandidateToken(5) != 5 {
		t.Fatal("token layout wrong")
	}
	if ds.DiscriminantToken() >= ds.VocabSize() {
		t.Fatal("discriminant outside vocab")
	}
	// Item tokens: identifier + 2 attributes.
	if len(ds.ItemTokens[3]) != 3 || ds.ItemTokens[3][0] != 3 {
		t.Fatalf("item tokens %v", ds.ItemTokens[3])
	}
	// Histories are dominated by the user's own cluster.
	inCluster := 0
	total := 0
	for u, hist := range ds.UserHistory {
		for _, it := range hist {
			total++
			if ds.ItemCluster[it] == ds.UserCluster[u] {
				inCluster++
			}
		}
	}
	if frac := float64(inCluster) / float64(total); frac < 0.7 {
		t.Fatalf("only %v of history in-cluster", frac)
	}
}

func TestSampleRequest(t *testing.T) {
	ds := testDataset(t)
	req := ds.SampleRequest(3, 4)
	if len(req.Candidates) != 20 {
		t.Fatalf("%d candidates", len(req.Candidates))
	}
	seen := map[int]bool{}
	for _, c := range req.Candidates {
		if seen[c] {
			t.Fatal("duplicate candidate")
		}
		seen[c] = true
	}
	truth := req.Candidates[req.Truth]
	if ds.ItemCluster[truth] != ds.UserCluster[3] {
		t.Fatal("truth should come from the user's interest cluster")
	}
}

func TestBuildModelRejectsWideLatent(t *testing.T) {
	ds := testDataset(t)
	ds.LatentDim = 31
	if _, err := BuildModel(ds, VariantBase); err == nil {
		t.Fatal("latent collision accepted")
	}
}

// TestConstructedModelRanks: the construction must genuinely rank — far
// above the chance rate of a random scorer.
func TestConstructedModelRanks(t *testing.T) {
	ds := testDataset(t)
	r, err := NewRanker(ds, VariantBase)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Evaluate(60, bipartite.UserPrefix, RankOpts{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Chance Recall@10 with 20 candidates is 0.5; require clear skill.
	if res.Recall10 < 0.8 {
		t.Fatalf("Recall@10 = %v; construction is not ranking", res.Recall10)
	}
	if res.MRR10 < 0.25 {
		t.Fatalf("MRR@10 = %v", res.MRR10)
	}
	if !(res.Recall10 >= res.NDCG10 && res.NDCG10 >= res.MRR10) {
		t.Fatalf("metric ordering violated: %+v", res)
	}
	if res.Recall5 > res.Recall10 {
		t.Fatal("Recall@5 cannot exceed Recall@10")
	}
}

// TestUPvsIPParityForRoPEModel is Table 3's headline: for position-robust
// models, Item-as-prefix matches User-as-prefix quality.
func TestUPvsIPParityForRoPEModel(t *testing.T) {
	ds := testDataset(t)
	for _, v := range []ModelVariant{VariantBase, VariantSharp} {
		r, err := NewRanker(ds, v)
		if err != nil {
			t.Fatal(err)
		}
		up, err := r.Evaluate(60, bipartite.UserPrefix, RankOpts{}, 4)
		if err != nil {
			t.Fatal(err)
		}
		ip, err := r.Evaluate(60, bipartite.ItemPrefix, RankOpts{}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(up.Recall10 - ip.Recall10); d > 0.08 {
			t.Errorf("%s: UP/IP Recall@10 gap %v (UP %v, IP %v)", v.Name, d, up.Recall10, ip.Recall10)
		}
		if d := math.Abs(up.NDCG10 - ip.NDCG10); d > 0.08 {
			t.Errorf("%s: UP/IP NDCG@10 gap %v", v.Name, d)
		}
	}
}

// TestAbsPosModelDegradesUnderIPAndPICRecovers reproduces Table 3's
// degradation cases and the CacheBlend-style recovery (§6.3).
func TestAbsPosModelDegradesUnderIPAndPICRecovers(t *testing.T) {
	// A larger candidate set than the shared fixture: degradation shows up
	// when cross-cluster candidates can intrude into the top-10.
	ds, err := NewDataset(DatasetConfig{
		Name: "abspos", Items: 240, Users: 60, Clusters: 6, LatentDim: 8,
		HistoryMin: 8, HistoryMax: 20, ItemAttrTokens: 2,
		ClusterNoise: 0.15, Candidates: 60, HardNegatives: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRanker(ds, VariantAbsPos)
	if err != nil {
		t.Fatal(err)
	}
	up, err := r.Evaluate(60, bipartite.UserPrefix, RankOpts{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := r.Evaluate(60, bipartite.ItemPrefix, RankOpts{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	pic, err := r.Evaluate(60, bipartite.ItemPrefix, RankOpts{PIC: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// UP quality must stay comparable to the position-robust model's on the
	// same evaluation set (the bias concentrates attention on the earliest
	// history, which costs a little but must not break ranking).
	baseRanker, err := NewRanker(ds, VariantBase)
	if err != nil {
		t.Fatal(err)
	}
	baseUP, err := baseRanker.Evaluate(60, bipartite.UserPrefix, RankOpts{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if up.Recall10 < baseUP.Recall10-0.15 {
		t.Fatalf("AbsPos UP Recall@10 = %v far below base model's %v", up.Recall10, baseUP.Recall10)
	}
	if ip.Recall10 >= up.Recall10-0.05 {
		t.Fatalf("AbsPos IP Recall@10 %v should clearly trail UP %v", ip.Recall10, up.Recall10)
	}
	if pic.Recall10 <= ip.Recall10 {
		t.Fatalf("PIC Recall@10 %v should improve on plain IP %v", pic.Recall10, ip.Recall10)
	}
	if pic.Strategy != "IP+PIC" || ip.Strategy != "IP" || up.Strategy != "UP" {
		t.Fatal("strategy labels wrong")
	}
}

// TestRankWithItemCachesMatchesCold ties ranking quality to the serving
// mechanism: scoring from precomputed item caches must return the exact
// ranking of full recomputation.
func TestRankWithItemCachesMatchesCold(t *testing.T) {
	ds := testDataset(t)
	r, err := NewRanker(ds, VariantBase)
	if err != nil {
		t.Fatal(err)
	}
	req := ds.SampleRequest(7, 4)
	cold, run, err := r.Rank(req, bipartite.ItemPrefix, RankOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.NewItemCaches) != len(req.Candidates) {
		t.Fatalf("cold run produced %d caches", len(run.NewItemCaches))
	}
	warm, warmRun, err := r.Rank(req, bipartite.ItemPrefix, RankOpts{
		Caches: bipartite.CacheSet{Items: run.NewItemCaches},
	})
	if err != nil {
		t.Fatal(err)
	}
	if warmRun.ReusedTokens == 0 {
		t.Fatal("warm run reused nothing")
	}
	for i := range cold {
		if cold[i] != warm[i] {
			t.Fatalf("warm ranking diverged at %d: %v vs %v", i, cold, warm)
		}
	}
}

// TestItemCachesSharedAcrossModelCallsPreservePermutation: permuting the
// candidate order must not change which items rank on top.
func TestRankingPermutationInvariance(t *testing.T) {
	ds := testDataset(t)
	r, err := NewRanker(ds, VariantBase)
	if err != nil {
		t.Fatal(err)
	}
	req := ds.SampleRequest(9, 4)
	rank1, _, err := r.Rank(req, bipartite.ItemPrefix, RankOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Rotate the candidate list.
	perm := append(append([]int(nil), req.Candidates[5:]...), req.Candidates[:5]...)
	req2 := EvalRequest{User: req.User, Candidates: perm}
	rank2, _, err := r.Rank(req2, bipartite.ItemPrefix, RankOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Compare top-5 item IDs.
	for i := 0; i < 5; i++ {
		if req.Candidates[rank1[i]] != perm[rank2[i]] {
			t.Fatalf("top-%d changed under permutation: %d vs %d",
				i, req.Candidates[rank1[i]], perm[rank2[i]])
		}
	}
}

func TestVariantsList(t *testing.T) {
	vs := Variants()
	if len(vs) != 3 {
		t.Fatalf("%d variants", len(vs))
	}
	sensitive := 0
	for _, v := range vs {
		if v.PosSensitive {
			sensitive++
		}
	}
	if sensitive != 1 {
		t.Fatalf("%d position-sensitive variants, want 1", sensitive)
	}
}

func TestModelConfigUsesTiedHead(t *testing.T) {
	ds := testDataset(t)
	w, err := BuildModel(ds, VariantBase)
	if err != nil {
		t.Fatal(err)
	}
	if w.Config().Vocab != ds.VocabSize() {
		t.Fatal("vocab mismatch")
	}
	// A candidate's embedding must be its planted latent.
	got := w.Embedding(ds.CandidateToken(4))
	for k := 0; k < ds.LatentDim; k++ {
		if got[k] != ds.ItemLatent[4][k] {
			t.Fatal("candidate embedding not planted")
		}
	}
	if got[userFlagDim] != 0 {
		t.Fatal("candidate token must not carry the user flag")
	}
	inter := w.Embedding(ds.InteractionToken(4))
	if inter[userFlagDim] != 1 {
		t.Fatal("interaction token must carry the user flag")
	}
	_ = model.CausalMask{} // keep the model import for the doc reference
}

// TestRankMultiQuality: the per-item-discriminant readout must rank with
// comparable skill to the single-discriminant path.
func TestRankMultiQuality(t *testing.T) {
	ds := testDataset(t)
	r, err := NewRanker(ds, VariantBase)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	reqs := ds.EvalRequests(40, 4)
	for _, req := range reqs {
		ranked, run, err := r.RankMulti(req, bipartite.UserPrefix, RankOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if run.Layout.DiscriminantIndices() == nil {
			t.Fatal("not a multi-disc layout")
		}
		for i := 0; i < 10 && i < len(ranked); i++ {
			if ranked[i] == req.Truth {
				hits++
				break
			}
		}
	}
	if recall := float64(hits) / float64(len(reqs)); recall < 0.7 {
		t.Fatalf("multi-disc Recall@10 = %v", recall)
	}
}

// TestRankMultiItemCacheReuse: multi-disc IP serving reuses item caches and
// returns the exact cold ranking.
func TestRankMultiItemCacheReuse(t *testing.T) {
	ds := testDataset(t)
	r, err := NewRanker(ds, VariantBase)
	if err != nil {
		t.Fatal(err)
	}
	req := ds.SampleRequest(3, 4)
	cold, run, err := r.RankMulti(req, bipartite.ItemPrefix, RankOpts{})
	if err != nil {
		t.Fatal(err)
	}
	warm, warmRun, err := r.RankMulti(req, bipartite.ItemPrefix, RankOpts{
		Caches: bipartite.CacheSet{Items: run.NewItemCaches},
	})
	if err != nil {
		t.Fatal(err)
	}
	if warmRun.ReusedTokens == 0 {
		t.Fatal("no cache reuse")
	}
	for i := range cold {
		if cold[i] != warm[i] {
			t.Fatalf("warm multi-disc ranking diverged: %v vs %v", cold, warm)
		}
	}
}
