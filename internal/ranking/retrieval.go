package ranking

import (
	"fmt"
	"math/rand"

	"bat/internal/tensor"
)

// Retriever is the linear-recurrence retrieval model the paper places ahead
// of the GR ranking stage (§6.1, following "Linear recurrent units for
// sequential recommendation"): the user state is an exponentially decayed
// sum of history-item latents,
//
//	h_u = Σ_k λ^(n-k) · latent(hist_k),
//
// and candidates are the top-C corpus items by dot(h_u, latent(item)).
// Ranking evaluation then follows the paper's protocol (§6.3, after
// LlamaRec): only requests whose ground truth survives retrieval are scored.
type Retriever struct {
	ds *Dataset
	// Decay is the recurrence factor λ in (0, 1]; 1 weights all history
	// equally, smaller values emphasize recent interactions.
	Decay float64

	rng *rand.Rand // truth sampling for RetrievalEvalSet, seeded from the dataset
}

// NewRetriever builds a retriever over the dataset's item corpus.
func NewRetriever(ds *Dataset, decay float64) (*Retriever, error) {
	if decay <= 0 || decay > 1 {
		return nil, fmt.Errorf("ranking: retrieval decay %v outside (0,1]", decay)
	}
	return &Retriever{ds: ds, Decay: decay, rng: rand.New(rand.NewSource(ds.seed ^ 0x72657472))}, nil
}

// UserState returns the decayed-sum latent state for user u.
func (r *Retriever) UserState(u int) []float32 {
	hist := r.ds.UserHistory[u]
	state := make([]float32, r.ds.LatentDim)
	w := float32(1)
	for k := len(hist) - 1; k >= 0; k-- {
		latent := r.ds.ItemLatent[hist[k]]
		for d := range state {
			state[d] += w * latent[d]
		}
		w *= float32(r.Decay)
	}
	return state
}

// Retrieve returns the top-c corpus items for user u by state-latent dot
// product, excluding the user's own history (already-consumed items are not
// re-recommended).
func (r *Retriever) Retrieve(u, c int) []int {
	state := r.UserState(u)
	inHistory := make(map[int]bool, len(r.ds.UserHistory[u]))
	for _, it := range r.ds.UserHistory[u] {
		inHistory[it] = true
	}
	// Corpus scoring is one independent dot product per item; large corpora
	// fan out across the worker pool (each block owns its score slots, so
	// the result is identical at any width).
	scores := make([]float32, len(r.ds.ItemLatent))
	score := func(lo, hi int) {
		for it := lo; it < hi; it++ {
			if inHistory[it] {
				scores[it] = tensor.NegInf
				continue
			}
			scores[it] = tensor.Dot(state, r.ds.ItemLatent[it])
		}
	}
	if len(scores)*r.ds.LatentDim < 1<<15 {
		score(0, len(scores))
	} else {
		tensor.ParallelBlocks(len(scores), 256, score)
	}
	return tensor.TopK(scores, c)
}

// ScoreCandidates scores an explicit candidate list by retrieval similarity:
// the dot product between the user's recurrence state and each candidate's
// latent. This is the degraded-mode scorer the overload ladder falls back to
// when the full GR forward cannot run within the request's budget — no
// transformer compute, no cache traffic, just first-stage similarity.
func (r *Retriever) ScoreCandidates(u int, cands []int) []float32 {
	state := r.UserState(u)
	scores := make([]float32, len(cands))
	for i, it := range cands {
		scores[i] = tensor.Dot(state, r.ds.ItemLatent[it])
	}
	return scores
}

// RetrievalRequest builds an evaluation request for user u from the
// retriever's candidate set. ok is false when the ground-truth item does not
// survive retrieval — the paper's protocol drops such requests.
func (r *Retriever) RetrievalRequest(u, c int, truth int) (EvalRequest, bool) {
	cands := r.Retrieve(u, c)
	truthIdx := -1
	for i, it := range cands {
		if it == truth {
			truthIdx = i
			break
		}
	}
	if truthIdx < 0 {
		return EvalRequest{}, false
	}
	return EvalRequest{User: u, Candidates: cands, Truth: truthIdx}, true
}

// RetrievalEvalSet draws up to n post-retrieval evaluation requests: for
// each user (round-robin) a held-out in-cluster truth is sampled and kept
// only if retrieval surfaces it among the top c. It also reports the
// retrieval hit rate (fraction of sampled truths surviving retrieval).
func (r *Retriever) RetrievalEvalSet(n, c int) ([]EvalRequest, float64) {
	reqs := make([]EvalRequest, 0, n)
	tried, kept := 0, 0
	users := len(r.ds.UserHistory)
	for i := 0; kept < n && tried < 20*n; i++ {
		u := i % users
		truth := r.sampleTruth(u)
		tried++
		req, ok := r.RetrievalRequest(u, c, truth)
		if !ok {
			continue
		}
		kept++
		reqs = append(reqs, req)
	}
	if tried == 0 {
		return reqs, 0
	}
	return reqs, float64(kept) / float64(tried)
}

// sampleTruth draws a held-out item from the user's interest cluster.
func (r *Retriever) sampleTruth(u int) int {
	ds := r.ds
	inHistory := make(map[int]bool, len(ds.UserHistory[u]))
	for _, it := range ds.UserHistory[u] {
		inHistory[it] = true
	}
	truth := ds.randItemInClusterWith(r.rng, ds.UserCluster[u])
	for tries := 0; inHistory[truth] && tries < 50; tries++ {
		truth = ds.randItemInClusterWith(r.rng, ds.UserCluster[u])
	}
	return truth
}
