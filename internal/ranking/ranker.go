package ranking

import (
	"context"
	"fmt"

	"bat/internal/bipartite"
	"bat/internal/metrics"
	"bat/internal/model"
	"bat/internal/tensor"
)

// Hidden-dimension layout of the constructed model: the first LatentDim
// dimensions carry semantics; the top two carry role flags placed in the
// slowest rotary pair so RoPE barely perturbs them.
const (
	prefHidden  = 32
	userFlagDim = 30
	discFlagDim = 31
)

// ModelVariant selects a constructed GR model family member. The paper
// evaluates three base models; the reproduction mirrors that with three
// constructions: two RoPE-only (position-robust) variants of different
// attention sharpness, and one with a learned absolute-position bias that
// up-weights early positions — the "instruction-tuned model" whose quality
// drops when items are moved to the front (§4.2, Table 3).
type ModelVariant struct {
	Name string
	// Beta is the attention sharpness routing the discriminant token to the
	// user history.
	Beta float32
	// PosSensitive enables the absolute-position bias.
	PosSensitive bool
	// Gamma is the early-position boost magnitude (PosSensitive only).
	Gamma float32
	// PEarly is the boosted-position horizon (PosSensitive only).
	PEarly int
}

// The three Table 3 stand-ins.
var (
	VariantBase  = ModelVariant{Name: "PrefGR-Base", Beta: 2}
	VariantSharp = ModelVariant{Name: "PrefGR-Sharp", Beta: 3}
	// PEarly must lie between the longest item (so Item-as-prefix moves
	// items into the boosted region) and the shortest user history (so
	// User-as-prefix keeps only user tokens there); Gamma stays moderate
	// because RMSNorm compresses large flag magnitudes back together.
	VariantAbsPos = ModelVariant{Name: "PrefGR-AbsPos", Beta: 2, PosSensitive: true, Gamma: 2, PEarly: 8}
)

// Variants returns the three model stand-ins in Table 3 order.
func Variants() []ModelVariant { return []ModelVariant{VariantBase, VariantSharp, VariantAbsPos} }

// BuildModel constructs the preference transformer for a dataset:
//
//   - every item's latent vector is planted as its identifier-token
//     embedding; interaction tokens additionally carry the user-role flag;
//   - a single attention layer is wired so the discriminant token's query
//     selects user-flagged keys (softmax sharpness Beta) and values project
//     the latent dimensions — the discriminant's hidden state becomes
//     (approximately) the mean of the user's history latents;
//   - the output head is the tied embedding, so a candidate's logit is the
//     dot product between that preference estimate and the candidate latent.
func BuildModel(ds *Dataset, v ModelVariant) (*model.Weights, error) {
	if ds.LatentDim > userFlagDim {
		return nil, fmt.Errorf("ranking: latent dim %d collides with flag dims", ds.LatentDim)
	}
	cfg := model.Config{
		Name: v.Name, Layers: 1, Heads: 1, KVHeads: 1, HeadDim: prefHidden,
		Hidden: prefHidden, FFNDim: 4, Vocab: ds.VocabSize(),
	}
	if v.PosSensitive {
		cfg.AbsPos = true
		cfg.MaxPos = 8192
	}
	w := model.NewZeroWeights(cfg)

	// Embeddings.
	vec := make([]float32, prefHidden)
	reset := func() {
		for i := range vec {
			vec[i] = 0
		}
	}
	for i, latent := range ds.ItemLatent {
		reset()
		copy(vec, latent)
		w.SetEmbedding(ds.CandidateToken(i), vec)
		vec[userFlagDim] = 1
		w.SetEmbedding(ds.InteractionToken(i), vec)
	}
	for c, centroid := range ds.Clusters {
		reset()
		copy(vec, centroid)
		w.SetEmbedding(ds.attrTokenBase()+c, vec)
	}
	reset()
	w.SetEmbedding(ds.InstrPrefixToken(), vec)
	vec[discFlagDim] = 1
	w.SetEmbedding(ds.DiscriminantToken(), vec)

	// Attention wiring.
	wq := tensor.NewMatrix(prefHidden, prefHidden)
	wq.Set(discFlagDim, userFlagDim, v.Beta)
	wk := tensor.NewMatrix(prefHidden, prefHidden)
	wv := tensor.NewMatrix(prefHidden, prefHidden)
	wo := tensor.NewMatrix(prefHidden, prefHidden)
	for i := 0; i < prefHidden; i++ {
		wk.Set(i, i, 1)
		wo.Set(i, i, 1)
	}
	for i := 0; i < ds.LatentDim; i++ {
		wv.Set(i, i, 1)
	}
	w.SetAttention(0, wq, wk, wv, wo)

	// Position bias: the position-sensitive family up-weights the earliest
	// prompt positions as "freshest user history" — harmless under
	// User-as-prefix (the user is early), harmful under Item-as-prefix
	// (items move to the front and soak up the discriminant's attention).
	if v.PosSensitive {
		reset()
		vec[userFlagDim] = v.Gamma
		for p := 0; p < v.PEarly; p++ {
			w.SetPositionEmbedding(p, vec)
		}
	}
	return w, nil
}

// Ranker scores candidate sets with a constructed model.
type Ranker struct {
	DS *Dataset
	W  *model.Weights
}

// NewRanker builds a ranker for the dataset and model variant.
func NewRanker(ds *Dataset, v ModelVariant) (*Ranker, error) {
	w, err := BuildModel(ds, v)
	if err != nil {
		return nil, err
	}
	return &Ranker{DS: ds, W: w}, nil
}

// RankOpts tunes one ranking call.
type RankOpts struct {
	// PIC applies position-independent-caching correction to Item-as-prefix
	// layouts (no effect on User-as-prefix).
	PIC bool
	// Caches supplies prefix caches to reuse.
	Caches bipartite.CacheSet
	// Ctx, when non-nil, cancels execution cooperatively: it is polled at
	// model phase boundaries, so a disconnected client or an expired
	// deadline stops consuming compute instead of running to completion.
	Ctx context.Context
}

// cancelFn adapts a context into the execution layer's cancellation hook.
func (o RankOpts) cancelFn() func() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err
}

// Prompt assembles the GR prompt for a request.
func (r *Ranker) Prompt(req EvalRequest) bipartite.Prompt {
	ds := r.DS
	var user []int
	for _, it := range ds.UserHistory[req.User] {
		user = append(user, ds.InteractionToken(it))
	}
	items := make([][]int, len(req.Candidates))
	for i, it := range req.Candidates {
		items[i] = ds.ItemTokens[it]
	}
	return bipartite.Prompt{
		User:  user,
		Items: items,
		Instr: []int{ds.InstrPrefixToken(), ds.DiscriminantToken()},
	}
}

// BuildLayout resolves the prompt layout serving a request under the given
// prefix organization (with optional PIC correction). Exposed so the serving
// core can build layouts for a whole batch before one packed execution.
func (r *Ranker) BuildLayout(req EvalRequest, kind bipartite.PrefixKind, pic bool) (*bipartite.Layout, error) {
	layout, err := bipartite.Build(kind, r.Prompt(req))
	if err != nil {
		return nil, err
	}
	if pic {
		layout.PICAdjust()
	}
	return layout, nil
}

// ScoreDiscriminant turns a discriminant hidden state into candidate-set
// indices in descending score order — the scoring half of Rank, reusable on
// discriminants produced by batched execution.
func (r *Ranker) ScoreDiscriminant(req EvalRequest, disc []float32) []int {
	candTokens := make([]int, len(req.Candidates))
	for i, it := range req.Candidates {
		candTokens[i] = r.DS.CandidateToken(it)
	}
	scores := r.W.LogitsFor(disc, candTokens)
	return tensor.TopK(scores, len(scores))
}

// Rank scores a request under the given prefix organization and returns
// candidate-set indices in descending score order, plus the execution run
// for cache accounting.
func (r *Ranker) Rank(req EvalRequest, kind bipartite.PrefixKind, opts RankOpts) ([]int, *bipartite.Run, error) {
	layout, err := r.BuildLayout(req, kind, opts.PIC)
	if err != nil {
		return nil, nil, err
	}
	run, err := bipartite.ExecuteCancelable(r.W, layout, opts.Caches, opts.cancelFn())
	if err != nil {
		return nil, nil, err
	}
	return r.ScoreDiscriminant(req, run.Discriminant), run, nil
}

// RankMulti scores a request with the §4.2 multi-discriminant extension:
// one discriminant token per candidate, each reading only the user and its
// own item. PIC does not apply (there is no shared discriminant whose
// position encodes sequence order the same way), so opts.PIC is ignored.
func (r *Ranker) RankMulti(req EvalRequest, kind bipartite.PrefixKind, opts RankOpts) ([]int, *bipartite.Run, error) {
	p := r.Prompt(req)
	p.Instr = []int{r.DS.DiscriminantToken()}
	layout, err := bipartite.BuildMultiDisc(kind, p)
	if err != nil {
		return nil, nil, err
	}
	if cancel := opts.cancelFn(); cancel != nil {
		if err := cancel(); err != nil {
			return nil, nil, err
		}
	}
	run, states, err := bipartite.ExecuteMultiDisc(r.W, layout, opts.Caches)
	if err != nil {
		return nil, nil, err
	}
	candTokens := make([]int, len(req.Candidates))
	for i, it := range req.Candidates {
		candTokens[i] = r.DS.CandidateToken(it)
	}
	scores, err := bipartite.ScoreMultiDisc(r.W, states, candTokens)
	if err != nil {
		return nil, nil, err
	}
	return tensor.TopK(scores, len(scores)), run, nil
}

// EvalResult is one Table 3 row.
type EvalResult struct {
	Dataset, Model, Strategy                      string
	Recall10, MRR10, NDCG10, Recall5, MRR5, NDCG5 float64
	Requests                                      int
}

// Evaluate runs n requests from the dataset's fixed evaluation set under
// one strategy and reports the §6.3 metric suite. Because the set is fixed,
// strategies are compared paired.
func (r *Ranker) Evaluate(n int, kind bipartite.PrefixKind, opts RankOpts, hardNegatives int) (EvalResult, error) {
	e10 := metrics.NewRankEval(10)
	e5 := metrics.NewRankEval(5)
	for _, req := range r.DS.EvalRequests(n, hardNegatives) {
		ranked, _, err := r.Rank(req, kind, opts)
		if err != nil {
			return EvalResult{}, err
		}
		e10.Observe(ranked, req.Truth)
		e5.Observe(ranked, req.Truth)
	}
	strategy := "UP"
	if kind == bipartite.ItemPrefix {
		strategy = "IP"
		if opts.PIC {
			strategy = "IP+PIC"
		}
	}
	return EvalResult{
		Dataset: r.DS.Name, Model: r.W.Config().Name, Strategy: strategy,
		Recall10: e10.Recall(), MRR10: e10.MRR(), NDCG10: e10.NDCG(),
		Recall5: e5.Recall(), MRR5: e5.MRR(), NDCG5: e5.NDCG(),
		Requests: n,
	}, nil
}
