// Package ranking reproduces the paper's ranking-quality evaluation (§6.3,
// Table 3): it builds a synthetic recommendation dataset with planted
// user/item latent structure, a constructively-weighted "preference
// transformer" GR whose attention pools the user history into a preference
// vector, a position-sensitive model variant that degrades under
// Item-as-prefix, and the PIC recovery pass.
//
// Why a constructed model instead of a trained one: Table 3's claim is a
// shape — IP ≈ UP for position-robust models, IP < UP for position-biased
// ones, PIC narrowing the gap — and the shape only means something if the
// model genuinely ranks. The construction plants item latents in the
// embedding table and wires one attention layer so the discriminant token's
// hidden state approximates the mean of the user's history latents; scoring
// candidates by embedding dot product then yields Recall@10 far above
// chance, with every mechanism (masks, positions, caches) exactly the ones
// the serving system manipulates.
package ranking

import (
	"fmt"
	"math"
	"math/rand"
)

// Dataset holds a synthetic ranking corpus with planted latent structure.
type Dataset struct {
	Name string
	// LatentDim is the semantic embedding dimensionality (≤ Hidden-2; the
	// top two hidden dims are reserved for role flags).
	LatentDim int
	// Clusters are unit-norm interest centroids.
	Clusters [][]float32
	// ItemLatent[i] is item i's unit latent vector; ItemCluster[i] its
	// interest cluster.
	ItemLatent  [][]float32
	ItemCluster []int
	// ItemTokens[i] is item i's token sequence: its identifier token plus
	// attribute tokens shared within the cluster.
	ItemTokens [][]int

	// Users: each has an interest cluster and a history of item IDs.
	UserCluster []int
	UserHistory [][]int

	// Candidates per request and hard-negative share.
	CandidatesPerRequest int

	seed int64
	rng  *rand.Rand
}

// DatasetConfig sizes a synthetic dataset.
type DatasetConfig struct {
	Name       string
	Items      int
	Users      int
	Clusters   int
	LatentDim  int
	HistoryMin int // history length bounds (tokens ≈ items)
	HistoryMax int
	// ItemAttrTokens is the number of attribute tokens per item beyond the
	// identifier (Table 1's "Ave. Item Token Num." analogue).
	ItemAttrTokens int
	// ClusterNoise blurs item latents around their centroid; higher noise
	// makes ranking harder.
	ClusterNoise float64
	// Candidates is the retrieved candidate count per request.
	Candidates int
	// HardNegatives is how many same-cluster distractors each candidate set
	// contains.
	HardNegatives int
	Seed          int64
}

func (c DatasetConfig) validate() error {
	switch {
	case c.Items < c.Candidates:
		return fmt.Errorf("ranking: corpus (%d) smaller than candidate set (%d)", c.Items, c.Candidates)
	case c.Users <= 0 || c.Clusters <= 0:
		return fmt.Errorf("ranking: need users and clusters")
	case c.LatentDim < 2:
		return fmt.Errorf("ranking: latent dim too small")
	case c.HistoryMin < 1 || c.HistoryMax < c.HistoryMin:
		return fmt.Errorf("ranking: bad history bounds [%d,%d]", c.HistoryMin, c.HistoryMax)
	case c.HardNegatives >= c.Candidates:
		return fmt.Errorf("ranking: hard negatives must leave room for easy ones")
	}
	return nil
}

// Vocabulary layout: candidate identifier tokens, then user-interaction
// tokens, then attribute tokens, then the two instruction tokens.
const instrTokens = 2

// CandidateToken returns item i's identifier token (scores are read here).
func (d *Dataset) CandidateToken(i int) int { return i }

// InteractionToken returns the token recording that the user interacted
// with item i. Interaction and identifier tokens are distinct vocabulary
// ranges, as behaviour-history and candidate-description fields are
// tokenized differently in production GRs.
func (d *Dataset) InteractionToken(i int) int { return len(d.ItemLatent) + i }

func (d *Dataset) attrTokenBase() int { return 2 * len(d.ItemLatent) }

// InstrPrefixToken is the instruction token preceding the discriminant.
func (d *Dataset) InstrPrefixToken() int {
	return d.attrTokenBase() + len(d.Clusters)
}

// DiscriminantToken is the final token whose logits rank candidates.
func (d *Dataset) DiscriminantToken() int { return d.InstrPrefixToken() + 1 }

// VocabSize returns the full vocabulary size the GR model must cover.
func (d *Dataset) VocabSize() int { return d.InstrPrefixToken() + instrTokens }

// NewDataset generates a dataset.
func NewDataset(cfg DatasetConfig) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{
		Name:                 cfg.Name,
		LatentDim:            cfg.LatentDim,
		CandidatesPerRequest: cfg.Candidates,
		seed:                 cfg.Seed,
		rng:                  rng,
	}
	// Cluster centroids: random unit vectors.
	for c := 0; c < cfg.Clusters; c++ {
		d.Clusters = append(d.Clusters, randUnit(rng, cfg.LatentDim))
	}
	// Items: centroid + noise, renormalized.
	for i := 0; i < cfg.Items; i++ {
		c := i % cfg.Clusters
		v := make([]float32, cfg.LatentDim)
		for k := range v {
			v[k] = d.Clusters[c][k] + float32(rng.NormFloat64()*cfg.ClusterNoise)
		}
		normalize(v)
		d.ItemLatent = append(d.ItemLatent, v)
		d.ItemCluster = append(d.ItemCluster, c)
	}
	// Token sequences are assigned after the corpus is complete: the
	// attribute-token range depends on the final item count.
	for i := 0; i < cfg.Items; i++ {
		toks := []int{i} // identifier token
		for a := 0; a < cfg.ItemAttrTokens; a++ {
			toks = append(toks, d.attrTokenBase()+d.ItemCluster[i]) // cluster attribute token
		}
		d.ItemTokens = append(d.ItemTokens, toks)
	}
	// Users: an interest cluster and a history drawn from it (with a dash
	// of exploration).
	for u := 0; u < cfg.Users; u++ {
		c := rng.Intn(cfg.Clusters)
		n := cfg.HistoryMin + rng.Intn(cfg.HistoryMax-cfg.HistoryMin+1)
		hist := make([]int, 0, n)
		for k := 0; k < n; k++ {
			if rng.Float64() < 0.85 {
				hist = append(hist, d.randItemInCluster(c))
			} else {
				hist = append(hist, rng.Intn(cfg.Items))
			}
		}
		d.UserCluster = append(d.UserCluster, c)
		d.UserHistory = append(d.UserHistory, hist)
	}
	return d, nil
}

func (d *Dataset) randItemInCluster(c int) int { return d.randItemInClusterWith(d.rng, c) }

func (d *Dataset) randItemInClusterWith(rng *rand.Rand, c int) int {
	nc := len(d.Clusters)
	k := rng.Intn((len(d.ItemLatent) - c + nc - 1) / nc) // count of items in cluster c
	return k*nc + c
}

// EvalRequest is one ranking query: a user, a candidate set containing
// exactly one ground-truth item, and the truth's index in that set.
type EvalRequest struct {
	User       int
	Candidates []int
	Truth      int // index into Candidates
}

// SampleRequest draws an evaluation request for user u: the ground truth is
// a fresh item from the user's interest cluster (not in their history), the
// distractors a mix of hard (same-cluster) and easy negatives — mimicking a
// post-retrieval candidate set where the truth survived retrieval (§6.3).
func (d *Dataset) SampleRequest(u int, hardNegatives int) EvalRequest {
	return d.sampleRequestWith(d.rng, u, hardNegatives)
}

// EvalRequests returns a fixed, reproducible evaluation set of n requests
// (round-robin over users). Strategies compared on the same set are paired,
// as in the paper's UP-vs-IP evaluation — re-drawing per strategy would add
// sampling noise to exactly the deltas Table 3 measures.
func (d *Dataset) EvalRequests(n, hardNegatives int) []EvalRequest {
	rng := rand.New(rand.NewSource(d.seed ^ 0x6576616c))
	out := make([]EvalRequest, n)
	for i := range out {
		out[i] = d.sampleRequestWith(rng, i%len(d.UserHistory), hardNegatives)
	}
	return out
}

func (d *Dataset) sampleRequestWith(rng *rand.Rand, u int, hardNegatives int) EvalRequest {
	c := d.UserCluster[u]
	inHistory := make(map[int]bool, len(d.UserHistory[u]))
	for _, it := range d.UserHistory[u] {
		inHistory[it] = true
	}
	truth := d.randItemInClusterWith(rng, c)
	for tries := 0; inHistory[truth] && tries < 50; tries++ {
		truth = d.randItemInClusterWith(rng, c)
	}
	seen := map[int]bool{truth: true}
	cands := []int{truth}
	for len(cands) < d.CandidatesPerRequest {
		var it int
		if len(cands) <= hardNegatives {
			it = d.randItemInClusterWith(rng, c)
		} else {
			it = rng.Intn(len(d.ItemLatent))
		}
		if seen[it] {
			continue
		}
		seen[it] = true
		cands = append(cands, it)
	}
	// Shuffle so the truth's slot is uninformative.
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	truthIdx := 0
	for i, it := range cands {
		if it == truth {
			truthIdx = i
			break
		}
	}
	return EvalRequest{User: u, Candidates: cands, Truth: truthIdx}
}

func randUnit(rng *rand.Rand, dim int) []float32 {
	v := make([]float32, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	normalize(v)
	return v
}

func normalize(v []float32) {
	var ss float64
	for _, x := range v {
		ss += float64(x) * float64(x)
	}
	n := float32(math.Sqrt(ss))
	if n == 0 {
		v[0] = 1
		return
	}
	for i := range v {
		v[i] /= n
	}
}
