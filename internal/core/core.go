// Package core assembles the BAT serving system and the paper's baselines
// into named, runnable deployments: it wires a workload generator, an item
// placement plan, a prompt-scheduling policy, and a simulated cluster into
// each of the systems compared in the evaluation (RE, UP, IP, BAT, the
// Fig. 7 placement baselines, the Fig. 8 scheduling baseline, and the
// Table 4 ablation lattice).
package core

import (
	"fmt"

	"bat/internal/cluster"
	"bat/internal/costmodel"
	"bat/internal/kvcache"
	"bat/internal/model"
	"bat/internal/placement"
	"bat/internal/scheduler"
	"bat/internal/workload"
)

// System names an end-to-end serving configuration from §6.
type System int

const (
	// RE is full recomputation: no prefix caching.
	RE System = iota
	// UP is User-as-prefix for every request with an LRU user cache — the
	// conventional approach.
	UP
	// IP is Item-as-prefix for every request over the HRCS item pool.
	IP
	// BAT is the full system: Bipartite Attention, HRCS placement, and
	// hotness-aware scheduling.
	BAT
	// BATReplicate is BAT with the item cache fully replicated per node
	// (Fig. 7 baseline).
	BATReplicate
	// BATHash is BAT with the item cache hash-sharded, no replication
	// (Fig. 7 baseline).
	BATHash
	// BATCacheAgnostic is BAT with the token-count-greedy scheduler
	// (Fig. 8 baseline).
	BATCacheAgnostic
)

// String implements fmt.Stringer.
func (s System) String() string {
	switch s {
	case RE:
		return "RE"
	case UP:
		return "UP"
	case IP:
		return "IP"
	case BAT:
		return "BAT"
	case BATReplicate:
		return "BAT-Replicate"
	case BATHash:
		return "BAT-Hash"
	case BATCacheAgnostic:
		return "BAT-CacheAgnostic"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Systems returns the four headline systems in paper order (Figs. 5/6).
func Systems() []System { return []System{RE, UP, IP, BAT} }

// Options configures a deployment. Zero fields take evaluation defaults
// matching the paper's main testbed (§6.1).
type Options struct {
	Profile workload.Profile
	Model   model.Config // default Qwen2-1.5B
	Nodes   int          // default 4
	GPU     costmodel.GPU
	// LinkGbps is the inter-node network rate (default 100).
	LinkGbps float64
	// HostMemBytes is per-node KV cache memory (default 150 GB, Fig. 7).
	HostMemBytes int64
	// ItemBudgetFraction caps the item area's share of host memory for
	// systems that cache items (default 0.7).
	ItemBudgetFraction float64
	// Alpha is HRCS's tolerable communication/computation ratio (default 0.05).
	Alpha float64
	// HotnessWindowSec is the frequency estimator window (default 300).
	HotnessWindowSec float64
	Seed             int64
	// UserCacheBytesOverride, when positive, fixes the per-node user cache
	// area regardless of the item plan (Fig. 8's sweep knob). Host memory is
	// then item area + override.
	UserCacheBytesOverride int64
	// SlowTierBytes, when positive, backs each node's user cache with a
	// spill tier on cheap storage (the §3.3 footnote extension);
	// SlowTierGBps is its load bandwidth (0 = 3 GB/s default).
	SlowTierBytes int64
	SlowTierGBps  float64
	// GPUItemBudgetBytes pins that many bytes of the hottest replicated
	// items in device memory, eliminating their host-to-GPU load (§5.1
	// names GPU memory as part of the pool; 0 disables).
	GPUItemBudgetBytes int64
}

func (o Options) withDefaults() (Options, error) {
	if o.Model.Name == "" {
		o.Model = model.Qwen2_1_5B
	}
	if o.Nodes == 0 {
		o.Nodes = 4
	}
	if o.GPU.Name == "" {
		o.GPU = costmodel.A100PCIe3
	}
	if o.LinkGbps == 0 {
		o.LinkGbps = 100
	}
	if o.HostMemBytes == 0 {
		o.HostMemBytes = 150 << 30
	}
	if o.ItemBudgetFraction == 0 {
		o.ItemBudgetFraction = 0.7
	}
	if o.ItemBudgetFraction < 0 || o.ItemBudgetFraction > 1 {
		return o, fmt.Errorf("core: ItemBudgetFraction %v out of range (0, 1]", o.ItemBudgetFraction)
	}
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
	if o.HotnessWindowSec == 0 {
		o.HotnessWindowSec = 300
	}
	if err := o.Profile.Validate(); err != nil {
		return o, err
	}
	return o, nil
}

// Variant is the Table 4 ablation lattice: (A) Bipartite Attention,
// (B) HRCS placement, (C) hotness-aware scheduling.
type Variant struct {
	Bipartite    bool // A
	HRCS         bool // B
	HotnessSched bool // C
}

// String renders the paper's ABC shorthand.
func (v Variant) String() string {
	if !v.Bipartite {
		return "None"
	}
	s := "A"
	if v.HRCS {
		s += "B"
	}
	if v.HotnessSched {
		s += "C"
	}
	return s
}

// variantFor maps a named system onto the ablation lattice plus extras.
func variantFor(sys System) (v Variant, policy scheduler.Policy, evict kvcache.EvictPolicy, strat placement.Strategy, wantItems bool) {
	switch sys {
	case RE:
		return Variant{}, scheduler.Recompute{}, kvcache.EvictLRU, placement.HRCS, false
	case UP:
		return Variant{}, scheduler.StaticUser{}, kvcache.EvictLRU, placement.HRCS, false
	case IP:
		return Variant{Bipartite: true, HRCS: true}, scheduler.StaticItem{}, kvcache.EvictLRU, placement.HRCS, true
	case BAT:
		return Variant{Bipartite: true, HRCS: true, HotnessSched: true}, scheduler.HotnessAware{}, kvcache.EvictMinHotness, placement.HRCS, true
	case BATReplicate:
		return Variant{Bipartite: true, HotnessSched: true}, scheduler.HotnessAware{}, kvcache.EvictMinHotness, placement.Replicate, true
	case BATHash:
		return Variant{Bipartite: true, HotnessSched: true}, scheduler.HotnessAware{}, kvcache.EvictMinHotness, placement.Hash, true
	case BATCacheAgnostic:
		return Variant{Bipartite: true, HRCS: true}, scheduler.CacheAgnostic{}, kvcache.EvictLRU, placement.HRCS, true
	default:
		return Variant{}, nil, kvcache.EvictLRU, placement.HRCS, false
	}
}

// Deployment is a ready-to-run serving configuration.
type Deployment struct {
	System  System
	Variant Variant
	Options Options
	Plan    placement.Plan
	Gen     *workload.Generator
	cluster cluster.Config
}

// Build assembles a named system over the options' workload.
func Build(sys System, opt Options) (*Deployment, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	variant, policy, evict, strat, wantItems := variantFor(sys)
	if policy == nil {
		return nil, fmt.Errorf("core: unknown system %d", int(sys))
	}
	d, err := build(opt, policy, evict, strat, wantItems)
	if err != nil {
		return nil, fmt.Errorf("core: building %s: %w", sys, err)
	}
	d.System = sys
	d.Variant = variant
	return d, nil
}

// BuildVariant assembles a Table 4 ablation point. Without A the system is
// plain UP. Without B the item cache is replicated, falling back to hash
// sharding when the full corpus cannot be replicated within the budget —
// exactly the paper's Books-1M footnote. Without C scheduling is
// cache-agnostic with LRU user caching.
func BuildVariant(v Variant, opt Options) (*Deployment, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	if !v.Bipartite {
		d, err := build(opt, scheduler.StaticUser{}, kvcache.EvictLRU, placement.HRCS, false)
		if err != nil {
			return nil, err
		}
		d.System = UP
		d.Variant = v
		return d, nil
	}
	var policy scheduler.Policy = scheduler.CacheAgnostic{}
	evict := kvcache.EvictLRU
	if v.HotnessSched {
		policy = scheduler.HotnessAware{}
		evict = kvcache.EvictMinHotness
	}
	strat := placement.Replicate
	if v.HRCS {
		strat = placement.HRCS
	}
	d, err := build(opt, policy, evict, strat, true)
	if err != nil {
		return nil, err
	}
	if !v.HRCS && d.Plan.ReplicationRatio < 1 {
		// Replication OOMs at this corpus scale: adopt hash sharding.
		d, err = build(opt, policy, evict, placement.Hash, true)
		if err != nil {
			return nil, err
		}
	}
	d.System = BAT
	d.Variant = v
	return d, nil
}

func build(opt Options, policy scheduler.Policy, evict kvcache.EvictPolicy, strat placement.Strategy, wantItems bool) (*Deployment, error) {
	gen, err := workload.NewGenerator(opt.Profile, opt.Seed)
	if err != nil {
		return nil, err
	}
	link := costmodel.NewLink(opt.LinkGbps)
	var plan placement.Plan
	if wantItems {
		est, err := costmodel.FitEstimator(opt.GPU, opt.Model)
		if err != nil {
			return nil, err
		}
		plan, err = placement.NewPlan(strat, placement.Input{
			Est:                    est,
			Link:                   link,
			Model:                  opt.Model,
			Profile:                opt.Profile,
			Alpha:                  opt.Alpha,
			Workers:                opt.Nodes,
			PerWorkerItemBudget:    int64(opt.ItemBudgetFraction * float64(opt.HostMemBytes)),
			PerWorkerGPUItemBudget: opt.GPUItemBudgetBytes,
		})
		if err != nil {
			return nil, err
		}
	}
	hostMem := opt.HostMemBytes
	if opt.UserCacheBytesOverride > 0 {
		hostMem = plan.ItemBytesPerWorker() + opt.UserCacheBytesOverride
	}
	cc := cluster.Config{
		Nodes:            opt.Nodes,
		GPU:              opt.GPU,
		Model:            opt.Model,
		Link:             link,
		HostMemBytes:     hostMem,
		Plan:             plan,
		Policy:           policy,
		UserEvict:        evict,
		HotnessWindowSec: opt.HotnessWindowSec,
		SlowTierBytes:    opt.SlowTierBytes,
		SlowTierGBps:     opt.SlowTierGBps,
	}
	return &Deployment{Options: opt, Plan: plan, Gen: gen, cluster: cc}, nil
}

// PolicyName returns the scheduling policy's name.
func (d *Deployment) PolicyName() string { return d.cluster.Policy.Name() }

// NewSim builds a fresh simulator for the deployment (empty cache state) —
// the factory SLO-rate searches need, since cache contents must not leak
// between probes at different offered loads.
func (d *Deployment) NewSim() (*cluster.Sim, error) { return cluster.New(d.cluster, d.Gen) }

// RunThroughput generates an n-request trace over durationSec of virtual
// arrival time and measures saturation throughput.
func (d *Deployment) RunThroughput(n int, durationSec float64) (*cluster.Stats, error) {
	trace, err := d.Gen.GenerateTrace(n, durationSec)
	if err != nil {
		return nil, err
	}
	sim, err := cluster.New(d.cluster, d.Gen)
	if err != nil {
		return nil, err
	}
	return sim.RunThroughput(trace)
}

// RunOpenLoop replays an n-request trace at the offered rate (requests/s)
// and reports the latency distribution.
func (d *Deployment) RunOpenLoop(n int, durationSec, rate float64) (*cluster.Stats, error) {
	trace, err := d.Gen.GenerateTrace(n, durationSec)
	if err != nil {
		return nil, err
	}
	sim, err := cluster.New(d.cluster, d.Gen)
	if err != nil {
		return nil, err
	}
	return sim.RunOpenLoop(trace, rate)
}
