package core

import (
	"testing"

	"bat/internal/cluster"
	"bat/internal/placement"
	"bat/internal/workload"
)

// testOptions shrinks the testbed so reduced-length traces recreate the
// paper's memory pressure: 12 GB of KV memory per node instead of 150 GB,
// scaled so the active user working set exceeds memory on Books/Industry
// but fits on Games — the population effect behind the Fig. 5 orderings.
func testOptions(prof workload.Profile) Options {
	return Options{
		Profile:      prof,
		Nodes:        4,
		HostMemBytes: 12 << 30,
		Seed:         11,
	}
}

func runQPS(t *testing.T, sys System, prof workload.Profile, n int) *cluster.Stats {
	t.Helper()
	d, err := Build(sys, testOptions(prof))
	if err != nil {
		t.Fatalf("%v: %v", sys, err)
	}
	st, err := d.RunThroughput(n, 3600)
	if err != nil {
		t.Fatalf("%v: %v", sys, err)
	}
	return st
}

func TestBuildAllSystems(t *testing.T) {
	for _, sys := range []System{RE, UP, IP, BAT, BATReplicate, BATHash, BATCacheAgnostic} {
		d, err := Build(sys, testOptions(workload.Books))
		if err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
		if d.System != sys {
			t.Fatalf("system mismatch: %v vs %v", d.System, sys)
		}
	}
}

func TestBuildRejectsBadProfile(t *testing.T) {
	opt := testOptions(workload.Books)
	opt.Profile.Users = 0
	if _, err := Build(BAT, opt); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestBuildRejectsBadItemBudgetFraction(t *testing.T) {
	for _, frac := range []float64{-0.1, 1.5, 100} {
		opt := testOptions(workload.Books)
		opt.ItemBudgetFraction = frac
		if _, err := Build(BAT, opt); err == nil {
			t.Fatalf("ItemBudgetFraction %v accepted", frac)
		}
	}
	opt := testOptions(workload.Books)
	opt.ItemBudgetFraction = 1 // exactly all of host memory is legal
	if _, err := Build(BAT, opt); err != nil {
		t.Fatalf("ItemBudgetFraction 1 rejected: %v", err)
	}
}

func TestSystemStrings(t *testing.T) {
	want := map[System]string{
		RE: "RE", UP: "UP", IP: "IP", BAT: "BAT",
		BATReplicate: "BAT-Replicate", BATHash: "BAT-Hash",
		BATCacheAgnostic: "BAT-CacheAgnostic",
	}
	for sys, s := range want {
		if sys.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(sys), sys.String(), s)
		}
	}
}

func TestVariantStrings(t *testing.T) {
	cases := map[string]Variant{
		"None": {},
		"A":    {Bipartite: true},
		"AB":   {Bipartite: true, HRCS: true},
		"AC":   {Bipartite: true, HotnessSched: true},
		"ABC":  {Bipartite: true, HRCS: true, HotnessSched: true},
	}
	for want, v := range cases {
		if v.String() != want {
			t.Errorf("%+v.String() = %q, want %q", v, v.String(), want)
		}
	}
}

// TestHeadlineOrdering reproduces the Fig. 5 shape on Books: BAT is the best
// system, RE the worst, and IP beats UP under user-cache pressure.
func TestHeadlineOrdering(t *testing.T) {
	const n = 6000
	re := runQPS(t, RE, workload.Books, n)
	up := runQPS(t, UP, workload.Books, n)
	ip := runQPS(t, IP, workload.Books, n)
	bat := runQPS(t, BAT, workload.Books, n)

	if !(bat.QPS >= up.QPS && bat.QPS >= ip.QPS && bat.QPS >= re.QPS*0.999) {
		t.Fatalf("BAT (%.1f) must lead: UP %.1f, IP %.1f, RE %.1f",
			bat.QPS, up.QPS, ip.QPS, re.QPS)
	}
	if !(re.QPS <= up.QPS && re.QPS <= ip.QPS) {
		t.Fatalf("RE (%.1f) should trail UP (%.1f) and IP (%.1f)", re.QPS, up.QPS, ip.QPS)
	}
	if ip.QPS <= up.QPS {
		t.Fatalf("on Books, IP (%.1f) should beat UP (%.1f) — inactive users defeat user caching", ip.QPS, up.QPS)
	}
	if bat.HitRate() < up.HitRate() || bat.HitRate() < ip.HitRate() {
		t.Fatalf("BAT hit rate %.3f below a baseline (UP %.3f, IP %.3f)",
			bat.HitRate(), up.HitRate(), ip.HitRate())
	}
	if bat.ComputeSavings() <= 0.2 {
		t.Fatalf("BAT compute savings %.3f; paper reports up to 58%%", bat.ComputeSavings())
	}
	// BAT actually mixes both attention patterns on Books.
	if bat.UserPrefixCount == 0 || bat.ItemPrefixCount == 0 {
		t.Fatalf("BAT should mix prefixes: UP %d, IP %d", bat.UserPrefixCount, bat.ItemPrefixCount)
	}
}

// TestGamesFavorsUserPrefix reproduces the one Fig. 5 inversion: on Games,
// frequent user re-access makes UP beat IP.
func TestGamesFavorsUserPrefix(t *testing.T) {
	const n = 8000
	up := runQPS(t, UP, workload.Games, n)
	ip := runQPS(t, IP, workload.Games, n)
	bat := runQPS(t, BAT, workload.Games, n)
	if up.QPS <= ip.QPS {
		t.Fatalf("on Games, UP (%.1f) should beat IP (%.1f)", up.QPS, ip.QPS)
	}
	if bat.QPS < up.QPS*0.98 {
		t.Fatalf("BAT (%.1f) should track the best baseline (UP %.1f) on Games", bat.QPS, up.QPS)
	}
}

func TestVariantFallbackToHashOnOOM(t *testing.T) {
	// Books-1M items cannot be fully replicated in 8 GB/node: the no-B
	// variant must fall back to hash sharding (the paper's footnote).
	opt := testOptions(workload.BooksX(1_000_000))
	d, err := BuildVariant(Variant{Bipartite: true, HotnessSched: true}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d.Plan.Strategy != placement.Hash {
		t.Fatalf("expected hash fallback, got %v", d.Plan.Strategy)
	}
	// A corpus that fits the item budget replicates fine.
	small := testOptions(workload.BooksX(19_000))
	d2, err := BuildVariant(Variant{Bipartite: true, HotnessSched: true}, small)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Plan.Strategy != placement.Replicate || d2.Plan.ReplicationRatio < 1 {
		t.Fatalf("small corpus should fully replicate: %+v", d2.Plan)
	}
}

func TestVariantNoneIsUP(t *testing.T) {
	d, err := BuildVariant(Variant{}, testOptions(workload.Books))
	if err != nil {
		t.Fatal(err)
	}
	if d.PolicyName() != "UP" {
		t.Fatalf("None variant policy = %s", d.PolicyName())
	}
	if d.Plan.CachedItems() != 0 {
		t.Fatal("None variant should cache no items")
	}
}

func TestUserCacheOverride(t *testing.T) {
	opt := testOptions(workload.Books)
	opt.UserCacheBytesOverride = 1 << 30
	d, err := Build(BAT, opt)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := cluster.New(clusterConfigOf(d), d.Gen)
	if err != nil {
		t.Fatal(err)
	}
	got := sim.UserPoolBytes()
	if got > 1<<30 || got < (1<<30)-(1<<20) {
		t.Fatalf("user pool %d, want ~1GiB", got)
	}
}

// clusterConfigOf exposes the private cluster config for white-box tests.
func clusterConfigOf(d *Deployment) cluster.Config { return d.cluster }

// TestAblationOrdering reproduces Table 4's qualitative structure on a
// reduced Books workload: every variant with A beats None, and full ABC is
// at least as good as the single-component variants.
func TestAblationOrdering(t *testing.T) {
	const n = 5000
	// Keep the paper's corpus-to-memory ratio: Books' 280K items occupy
	// ~77% of a node's KV memory on the real testbed; 19K items do the same
	// against the shrunken 12 GB nodes.
	run := func(v Variant) float64 {
		d, err := BuildVariant(v, testOptions(workload.BooksX(19_000)))
		if err != nil {
			t.Fatal(err)
		}
		st, err := d.RunThroughput(n, 3600)
		if err != nil {
			t.Fatal(err)
		}
		return st.QPS
	}
	abc := run(Variant{Bipartite: true, HRCS: true, HotnessSched: true})
	a := run(Variant{Bipartite: true})
	none := run(Variant{})
	if a <= none {
		t.Fatalf("A (%.1f) should beat None (%.1f)", a, none)
	}
	if abc < a*0.98 {
		t.Fatalf("ABC (%.1f) should be at least A (%.1f)", abc, a)
	}
}

func TestSystemsList(t *testing.T) {
	sys := Systems()
	if len(sys) != 4 || sys[0] != RE || sys[3] != BAT {
		t.Fatalf("Systems() = %v", sys)
	}
}

func TestRunOpenLoopThroughCore(t *testing.T) {
	d, err := Build(BAT, testOptions(workload.Games))
	if err != nil {
		t.Fatal(err)
	}
	st, err := d.RunOpenLoop(500, 600, 20)
	if err != nil {
		t.Fatal(err)
	}
	if st.Latency.Count() != 500 {
		t.Fatalf("latency samples %d", st.Latency.Count())
	}
	// NewSim gives fresh cache state each time.
	s1, err := d.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := d.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("NewSim returned a shared simulator")
	}
}
