package core_test

import (
	"fmt"

	"bat/internal/core"
	"bat/internal/workload"
)

// Example builds the full BAT system on the Games workload and measures
// saturation throughput against the recomputation baseline.
func Example() {
	opts := core.Options{
		Profile:      workload.Games,
		Nodes:        4,
		HostMemBytes: 12 << 30,
		Seed:         11,
	}
	bat, err := core.Build(core.BAT, opts)
	if err != nil {
		fmt.Println(err)
		return
	}
	re, err := core.Build(core.RE, opts)
	if err != nil {
		fmt.Println(err)
		return
	}
	batStats, err := bat.RunThroughput(2000, 3600)
	if err != nil {
		fmt.Println(err)
		return
	}
	reStats, err := re.RunThroughput(2000, 3600)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("BAT speedup over recomputation: %.1fx\n", batStats.QPS/reStats.QPS)
	fmt.Printf("BAT mixes prefixes: %v\n", batStats.UserPrefixCount > 0 && batStats.ItemPrefixCount > 0)
	// Output:
	// BAT speedup over recomputation: 1.9x
	// BAT mixes prefixes: true
}
