package costmodel

import (
	"math"
	"testing"

	"bat/internal/model"
)

func TestParamFLOPsMagnitude(t *testing.T) {
	// Qwen2-1.5B has ~1.3B non-embedding parameters; 2 FLOPs per weight.
	got := ParamFLOPsPerToken(model.Qwen2_1_5B)
	if got < 2e9 || got > 3.5e9 {
		t.Fatalf("Qwen2-1.5B FLOPs/token = %.3g, want ~2.6e9", got)
	}
	// Qwen2-7B should be ~5x the 1.5B model.
	ratio := ParamFLOPsPerToken(model.Qwen2_7B) / got
	if ratio < 3 || ratio > 8 {
		t.Fatalf("7B/1.5B FLOP ratio = %v", ratio)
	}
}

func TestPrefillFLOPsZeroTokens(t *testing.T) {
	if got := PrefillFLOPs(model.Qwen2_1_5B, 0, 1000); got != 0 {
		t.Fatalf("zero new tokens should cost 0, got %v", got)
	}
}

func TestPrefillFLOPsMonotone(t *testing.T) {
	cfg := model.Qwen2_1_5B
	if PrefillFLOPs(cfg, 1024, 0) >= PrefillFLOPs(cfg, 2048, 0) {
		t.Fatal("FLOPs must grow with new tokens")
	}
	if PrefillFLOPs(cfg, 1024, 0) >= PrefillFLOPs(cfg, 1024, 4096) {
		t.Fatal("FLOPs must grow with context")
	}
}

// TestFig2aShape reproduces the motivation experiment's shape: recompute
// latency exceeds the 100ms SLO for long sequences on large models, while
// loading a prefix cache over PCIe is far cheaper.
func TestFig2aShape(t *testing.T) {
	gpu := A100PCIe4
	for _, cfg := range model.PaperModels() {
		t8k := PrefillTime(gpu, cfg, 8192, 0)
		t512 := PrefillTime(gpu, cfg, 512, 0)
		if t8k <= t512 {
			t.Fatalf("%s: latency not increasing with length", cfg.Name)
		}
		load8k := KVLoadTime(gpu, cfg, 8192)
		if load8k >= t8k/5 {
			t.Fatalf("%s: prefix load (%.1fms) not clearly cheaper than recompute (%.1fms)",
				cfg.Name, load8k*1e3, t8k*1e3)
		}
	}
	// The big model blows the 100ms SLO at 8K; the small ones are near it.
	if got := PrefillTime(gpu, model.Qwen2_7B, 8192, 0); got < 0.1 {
		t.Fatalf("Qwen2-7B@8K = %.1fms, expected to exceed 100ms SLO", got*1e3)
	}
	if got := PrefillTime(gpu, model.Qwen2_1_5B, 512, 0); got > 0.1 {
		t.Fatalf("Qwen2-1.5B@512 = %.1fms, expected well under SLO", got*1e3)
	}
}

func TestPrefixSavingsVsRecompute(t *testing.T) {
	// Serving with a cached 7K-token prefix (compute 1K suffix + load cache)
	// must beat recomputing all 8K tokens.
	gpu := A100PCIe3
	cfg := model.Qwen2_1_5B
	full := PrefillTime(gpu, cfg, 8192, 0)
	cached := PrefillTime(gpu, cfg, 1024, 7168) + KVLoadTime(gpu, cfg, 7168)
	if cached >= full {
		t.Fatalf("cached serving (%.1fms) not cheaper than recompute (%.1fms)", cached*1e3, full*1e3)
	}
}

func TestTransferTime(t *testing.T) {
	link := NewLink(100)
	cfg := model.Qwen2_1_5B
	if link.TransferTime(cfg, 0) != 0 {
		t.Fatal("zero tokens should transfer for free")
	}
	// 1000 tokens * 28672 B * 8 bits / 100e9 = 2.29ms + latency.
	got := link.TransferTime(cfg, 1000)
	want := 20e-6 + 1000*28672*8/100e9
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("transfer time %v, want %v", got, want)
	}
	// 10Gbps is 10x slower on the wire.
	slow := NewLink(10).TransferTime(cfg, 1000)
	if slow < got*5 {
		t.Fatalf("10Gbps (%v) should be much slower than 100Gbps (%v)", slow, got)
	}
}

func TestTokensPerSecond(t *testing.T) {
	link := NewLink(100)
	cfg := model.Qwen2_1_5B
	tps := link.TokensPerSecond(cfg)
	// 100Gbps = 12.5 GB/s; / 28672 B/token ≈ 436k tokens/s.
	if tps < 400_000 || tps > 470_000 {
		t.Fatalf("tokens/s = %v", tps)
	}
	// Sanity: transferring 1s worth of tokens takes ~1s.
	sec := link.TransferTime(cfg, int(tps))
	if math.Abs(sec-1) > 0.01 {
		t.Fatalf("1s of tokens took %v", sec)
	}
}

// TestEstimatorRecoversAnalyticModel: the offline-fitted polynomial must
// track the analytic latency closely across shapes, including ones not in
// the fitting grid — the property Algorithm 1 depends on.
func TestEstimatorRecoversAnalyticModel(t *testing.T) {
	for _, cfg := range model.PaperModels() {
		est, err := FitEstimator(A100PCIe3, cfg)
		if err != nil {
			t.Fatal(err)
		}
		shapes := [][2]int{{100, 0}, {500, 1500}, {1500, 1000}, {3000, 3000}, {6000, 1000}}
		for _, s := range shapes {
			want := PrefillTime(A100PCIe3, cfg, s[0], s[1])
			got := est.Predict(s[0], s[1])
			if want == 0 {
				continue
			}
			if rel := math.Abs(got-want) / want; rel > 0.05 {
				t.Errorf("%s shape %v: predicted %.3g vs analytic %.3g (%.1f%% off)",
					cfg.Name, s, got, want, rel*100)
			}
		}
	}
}

func TestEstimatorNeverNegative(t *testing.T) {
	est, err := FitEstimator(H20, model.Llama3_1B)
	if err != nil {
		t.Fatal(err)
	}
	if est.Predict(0, 0) < 0 || est.Predict(1, 100000) < 0 {
		t.Fatal("estimator produced negative time")
	}
}

func TestSolve4Singular(t *testing.T) {
	var a [4][4]float64 // all zeros: singular
	if _, err := solve4(a, [4]float64{1, 0, 0, 0}); err == nil {
		t.Fatal("expected singular-matrix error")
	}
}

func TestGPUPresetsSane(t *testing.T) {
	for _, g := range []GPU{A100PCIe4, A100PCIe3, H20} {
		if g.TFLOPS <= 0 || g.HostLoadGBps <= 0 || g.Name == "" {
			t.Fatalf("bad GPU preset %+v", g)
		}
	}
	if H20.TFLOPS >= A100PCIe3.TFLOPS {
		t.Fatal("H20 should be slower than A100 for dense FP16")
	}
}
