// Package costmodel provides the analytic performance substrate that stands
// in for real GPUs: FLOP-derived prefill latency per model architecture,
// KV-cache load times over PCIe, and network transfer times for the
// disaggregated cache pool.
//
// The serving experiments compare cache policies, so what matters is the
// paper's own modeling assumption (§5.2): prefill time is a regular,
// deterministic function of new-token and context-token counts, fittable by
// polynomial regression. This package supplies both the analytic ground
// truth (calibrated to public A100 throughput) and the fitted estimator the
// HRCS placement algorithm uses.
package costmodel

import (
	"fmt"

	"bat/internal/model"
)

// GPU describes a device's effective throughput for the latency model.
type GPU struct {
	Name string
	// TFLOPS is sustained dense FP16 compute (peak derated for real kernel
	// efficiency).
	TFLOPS float64
	// HostLoadGBps is host→device bandwidth for loading KV caches (PCIe).
	HostLoadGBps float64
}

// A100PCIe4 models the paper's §3 motivation setup: a 40GB A100 behind
// PCIe 4.0 (~20 GB/s effective). 312 TFLOPS peak FP16, derated to 50%.
var A100PCIe4 = GPU{Name: "A100-PCIe4", TFLOPS: 156, HostLoadGBps: 20}

// A100PCIe3 models the main 4-node testbed (§6.1): A100 on PCIe 3.0 x16.
var A100PCIe3 = GPU{Name: "A100-PCIe3", TFLOPS: 156, HostLoadGBps: 12}

// H20 models the 16-node production testbed nodes (§6.1/§6.6).
var H20 = GPU{Name: "H20", TFLOPS: 74, HostLoadGBps: 25}

// ParamFLOPsPerToken returns the dense-matmul FLOPs one token costs across
// all transformer blocks (2 FLOPs per weight, attention excluded).
func ParamFLOPsPerToken(cfg model.Config) float64 {
	qDim := cfg.Heads * cfg.HeadDim
	kvDim := cfg.KVHeads * cfg.HeadDim
	perLayer := cfg.Hidden*qDim + // Wq
		2*cfg.Hidden*kvDim + // Wk, Wv
		qDim*cfg.Hidden + // Wo
		3*cfg.Hidden*cfg.FFNDim // gate, up, down
	return 2 * float64(perLayer) * float64(cfg.Layers)
}

// PrefillFLOPs returns the total FLOPs to prefill newTokens of fresh input
// against ctxTokens of already-cached context (0 for full recomputation of
// the whole sequence — then pass the sequence length as newTokens).
func PrefillFLOPs(cfg model.Config, newTokens, ctxTokens int) float64 {
	if newTokens <= 0 {
		return 0
	}
	dense := ParamFLOPsPerToken(cfg) * float64(newTokens)
	// Attention: each new token attends to ctx + its causal predecessors;
	// score and value mixing cost 4*Heads*HeadDim FLOPs per key.
	avgKeys := float64(ctxTokens) + float64(newTokens)/2
	attn := 4 * float64(cfg.Heads*cfg.HeadDim) * avgKeys * float64(newTokens) * float64(cfg.Layers)
	return dense + attn
}

// PrefillTime returns seconds to prefill on the given GPU.
func PrefillTime(gpu GPU, cfg model.Config, newTokens, ctxTokens int) float64 {
	return PrefillFLOPs(cfg, newTokens, ctxTokens) / (gpu.TFLOPS * 1e12)
}

// KVLoadTime returns seconds to load a cached prefix of the given token
// count from host memory into the GPU.
func KVLoadTime(gpu GPU, cfg model.Config, tokens int) float64 {
	bytes := float64(tokens) * float64(cfg.KVBytesPerToken())
	return bytes / (gpu.HostLoadGBps * 1e9)
}

// Link describes an inter-node network link.
type Link struct {
	Gbps       float64
	LatencySec float64
}

// NewLink returns a link with the given line rate and a default 20µs
// per-transfer latency (RDMA-class).
func NewLink(gbps float64) Link { return Link{Gbps: gbps, LatencySec: 20e-6} }

// TransferTime returns seconds to move a KV cache of the given token count
// across the link.
func (l Link) TransferTime(cfg model.Config, tokens int) float64 {
	if tokens <= 0 {
		return 0
	}
	bytes := float64(tokens) * float64(cfg.KVBytesPerToken())
	return l.LatencySec + bytes*8/(l.Gbps*1e9)
}

// TokensPerSecond converts the link's line rate into token-centric
// throughput for the given architecture — the quantity B in Algorithm 1.
func (l Link) TokensPerSecond(cfg model.Config) float64 {
	return l.Gbps * 1e9 / 8 / float64(cfg.KVBytesPerToken())
}

// Estimator is the paper's offline-fitted prefill-time model: a polynomial
// t(new, ctx) = c0 + c1*new + c2*new*new + c3*new*ctx, fitted by least
// squares over profiled samples. Algorithm 1 (HRCS) consumes this rather
// than the analytic form, mirroring the production methodology.
type Estimator struct {
	c [4]float64
}

// FitEstimator profiles the analytic model for one GPU/architecture over a
// grid of (new, ctx) shapes and fits the polynomial by normal equations.
func FitEstimator(gpu GPU, cfg model.Config) (*Estimator, error) {
	type sample struct {
		newT, ctx int
		t         float64
	}
	var samples []sample
	for _, n := range []int{64, 256, 1024, 2048, 4096, 8192} {
		for _, ctx := range []int{0, 256, 1024, 4096, 8192} {
			samples = append(samples, sample{n, ctx, PrefillTime(gpu, cfg, n, ctx)})
		}
	}
	// Least squares on features [1, new, new², new·ctx].
	var ata [4][4]float64
	var atb [4]float64
	for _, s := range samples {
		f := [4]float64{1, float64(s.newT), float64(s.newT) * float64(s.newT), float64(s.newT) * float64(s.ctx)}
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				ata[i][j] += f[i] * f[j]
			}
			atb[i] += f[i] * s.t
		}
	}
	coef, err := solve4(ata, atb)
	if err != nil {
		return nil, fmt.Errorf("costmodel: fitting %s on %s: %w", cfg.Name, gpu.Name, err)
	}
	return &Estimator{c: coef}, nil
}

// Predict returns estimated prefill seconds for the given shape.
func (e *Estimator) Predict(newTokens, ctxTokens int) float64 {
	n, c := float64(newTokens), float64(ctxTokens)
	t := e.c[0] + e.c[1]*n + e.c[2]*n*n + e.c[3]*n*c
	if t < 0 {
		return 0
	}
	return t
}

// solve4 solves a 4x4 linear system by Gaussian elimination with partial
// pivoting.
func solve4(a [4][4]float64, b [4]float64) ([4]float64, error) {
	for col := 0; col < 4; col++ {
		pivot := col
		for r := col + 1; r < 4; r++ {
			if abs(a[r][col]) > abs(a[pivot][col]) {
				pivot = r
			}
		}
		if abs(a[pivot][col]) < 1e-18 {
			return [4]float64{}, fmt.Errorf("singular normal matrix")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < 4; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < 4; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var x [4]float64
	for r := 3; r >= 0; r-- {
		x[r] = b[r]
		for c := r + 1; c < 4; c++ {
			x[r] -= a[r][c] * x[c]
		}
		x[r] /= a[r][r]
	}
	return x, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
