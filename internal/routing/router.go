package routing

// Router is the sharded frontend tier: one cheap process in front of N
// frontend replicas. It does cluster-level admission (the same
// admit/queue/shed ladder the frontends run per-replica), scores every rank
// request across the live frontends with the shared Pipeline — cache
// affinity from each frontend's /v1/load residency summary, least-loaded
// from its in-flight/queue gauges — and proxies to the winner, failing over
// to the next-best frontend when one dies mid-request. The same Pipeline
// drives the cluster simulator, so simulated and live routing policy are one
// body of code.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"bat/internal/admission"
	"bat/internal/metrics"
)

// RouterConfig configures a Router. Zero values take defaults.
type RouterConfig struct {
	// Frontends are the base URLs of the frontend replicas to route over.
	Frontends []string
	// Scorers is the routing pipeline (nil = DefaultScorers()).
	Scorers []Weighted
	// Seed fixes the pipeline's round-robin phase for reproducible runs.
	Seed uint64
	// Admission is the cluster-level admission config (zero = defaults).
	Admission admission.Config
	// Client is the HTTP client for polling and proxying (nil =
	// http.DefaultClient).
	Client *http.Client
	// PollInterval is the /v1/load poll cadence (0 = 500ms; negative =
	// never poll in the background — tests and benches call PollNow).
	PollInterval time.Duration
	// FailAfter is how many consecutive failures mark a frontend dead
	// (0 = 2).
	FailAfter int
	// MaxBody bounds request and proxied response bodies (0 = 1MiB).
	MaxBody int64
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	if c.PollInterval == 0 {
		c.PollInterval = 500 * time.Millisecond
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	return c
}

// frontendLoad mirrors the frontend's GET /v1/load payload. Declared here
// rather than imported so the routing package stays below distserve in the
// dependency order.
type frontendLoad struct {
	InFlight      int    `json:"in_flight"`
	QueueDepth    int    `json:"queue_depth"`
	MaxInFlight   int    `json:"max_in_flight"`
	MaxQueue      int    `json:"max_queue"`
	Requests      int64  `json:"requests"`
	ResidentUsers int    `json:"resident_users"`
	Users         string `json:"users"`
}

// frontendState is the router's view of one frontend replica.
type frontendState struct {
	url string

	mu            sync.Mutex
	alive         bool
	failures      int
	load          float64 // normalized (in-flight+queued)/capacity, [0,1]
	residentUsers int
	summary       *Summary
	requests      int64
}

func (s *frontendState) snapshot() (alive bool, load float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alive, s.load
}

// resident reports whether the frontend's last residency summary (plus any
// optimistic additions since) claims the key.
func (s *frontendState) resident(key uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.summary != nil && s.summary.Contains(key)
}

// FrontendStatus is one frontend's row in the router's /v1/stats payload.
type FrontendStatus struct {
	URL           string  `json:"url"`
	Alive         bool    `json:"alive"`
	Load          float64 `json:"load"`
	ResidentUsers int     `json:"resident_users"`
	Requests      int64   `json:"requests"`
}

// RouterStats is the GET /v1/stats payload.
type RouterStats struct {
	Admission admission.Stats  `json:"admission"`
	Frontends []FrontendStatus `json:"frontends"`
	Decisions map[string]int64 `json:"decisions"`
	Failovers int64            `json:"failovers"`
	Proxied   int64            `json:"proxied"`
	NoBackend int64            `json:"no_backend"`
}

// Router routes rank requests across frontend replicas.
type Router struct {
	cfg    RouterConfig
	pipe   *Pipeline
	ctl    *admission.Controller
	reg    *metrics.Registry
	fronts []*frontendState

	decMu     sync.Mutex
	decisions map[string]int64

	failovers *metrics.Counter
	proxied   *metrics.Counter
	noBackend *metrics.Counter

	stop chan struct{}
	done chan struct{}
}

// NewRouter builds a router over cfg.Frontends, performs one synchronous
// poll so routing starts informed, and (unless PollInterval is negative)
// begins polling /v1/load in the background.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Frontends) == 0 {
		return nil, fmt.Errorf("routing: no frontends configured")
	}
	scorers := cfg.Scorers
	if len(scorers) == 0 {
		scorers = DefaultScorers()
	}
	r := &Router{
		cfg:       cfg,
		pipe:      NewPipeline(cfg.Seed, scorers...),
		ctl:       admission.NewController(cfg.Admission),
		reg:       metrics.NewRegistry(),
		decisions: make(map[string]int64),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for i, u := range cfg.Frontends {
		st := &frontendState{url: u, alive: true}
		r.fronts = append(r.fronts, st)
		idx := i
		r.reg.GaugeFunc(fmt.Sprintf("bat_router_frontend_alive{frontend=%q}", u), func() float64 {
			alive, _ := r.fronts[idx].snapshot()
			if alive {
				return 1
			}
			return 0
		})
		r.reg.GaugeFunc(fmt.Sprintf("bat_router_frontend_load{frontend=%q}", u), func() float64 {
			_, load := r.fronts[idx].snapshot()
			return load
		})
	}
	r.failovers = r.reg.Counter("bat_route_failovers_total")
	r.proxied = r.reg.Counter("bat_router_proxied_total")
	r.noBackend = r.reg.Counter("bat_router_no_backend_total")
	r.PollNow()
	go r.pollLoop()
	return r, nil
}

// Scorers returns the active pipeline's weighted scorers, in configured
// order.
func (r *Router) Scorers() []Weighted { return r.pipe.Scorers() }

// Close stops the background poller.
func (r *Router) Close() {
	close(r.stop)
	<-r.done
}

func (r *Router) pollLoop() {
	defer close(r.done)
	if r.cfg.PollInterval < 0 {
		<-r.stop
		return
	}
	t := time.NewTicker(r.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.PollNow()
		}
	}
}

// PollNow refreshes every frontend's load snapshot synchronously. Exported
// so tests and benches can drive the poll clock themselves.
func (r *Router) PollNow() {
	for _, st := range r.fronts {
		r.pollOne(st)
	}
}

func (r *Router) pollOne(st *frontendState) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.PollInterval.Abs()+2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, st.url+"/v1/load", nil)
	if err != nil {
		r.markFailure(st)
		return
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		r.markFailure(st)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		r.markFailure(st)
		return
	}
	var snap frontendLoad
	if err := json.NewDecoder(io.LimitReader(resp.Body, r.cfg.MaxBody)).Decode(&snap); err != nil {
		r.markFailure(st)
		return
	}
	var sum *Summary
	if snap.Users != "" {
		if s, err := DecodeSummary(snap.Users); err == nil {
			sum = s
		}
	}
	cap := snap.MaxInFlight + snap.MaxQueue
	load := 0.0
	if cap > 0 {
		load = float64(snap.InFlight+snap.QueueDepth) / float64(cap)
	}
	st.mu.Lock()
	st.alive, st.failures = true, 0
	st.load = load
	st.residentUsers = snap.ResidentUsers
	if sum != nil {
		st.summary = sum
	}
	st.requests = snap.Requests
	st.mu.Unlock()
}

// markFailure counts one failed interaction; FailAfter consecutive failures
// mark the frontend dead until a poll succeeds again.
func (r *Router) markFailure(st *frontendState) {
	st.mu.Lock()
	st.failures++
	if st.failures >= r.cfg.FailAfter {
		st.alive = false
	}
	st.mu.Unlock()
}

// candidates builds the pipeline's view of the frontends, masking any in
// skip (mid-request failover exclusions).
func (r *Router) candidates(skip map[int]bool) []Candidate {
	cands := make([]Candidate, len(r.fronts))
	for i, st := range r.fronts {
		alive, load := st.snapshot()
		s := st
		cands[i] = Candidate{
			Index:    i,
			Alive:    alive && !skip[i],
			Load:     load,
			Resident: func(key uint64) bool { return s.resident(key) },
		}
	}
	return cands
}

func (r *Router) countDecision(scorer string) {
	r.decMu.Lock()
	r.decisions[scorer]++
	r.decMu.Unlock()
	r.reg.Counter(fmt.Sprintf("bat_route_decisions_total{scorer=%q}", scorer)).Inc()
}

// Handler exposes the router API: POST /v1/rank (scored proxy to a
// frontend), GET /v1/stats, GET /metrics, and /healthz.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/rank", r.handleRank)
	mux.HandleFunc("/v1/stats", r.handleStats)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.reg.WriteText(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (r *Router) handleRank(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	deadline := r.ctl.Deadline(req)
	ctx, cancel := context.WithTimeout(req.Context(), deadline)
	defer cancel()

	grant, err := r.ctl.Acquire(ctx)
	if err != nil {
		reason := admission.ReasonQueueFull
		if err == admission.ErrDeadline {
			reason = admission.ReasonDeadline
		}
		r.ctl.Shed(w, reason)
		return
	}
	defer grant.Release()

	body, err := io.ReadAll(io.LimitReader(req.Body, r.cfg.MaxBody))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var rank struct {
		UserID int64 `json:"user_id"`
	}
	if err := json.Unmarshal(body, &rank); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	userKey := EntryHash("user", uint64(rank.UserID))

	skip := make(map[int]bool)
	for attempt := 0; attempt < len(r.fronts); attempt++ {
		dec, ok := r.pipe.Pick(Request{Key: userKey}, r.candidates(skip))
		if !ok {
			break
		}
		r.countDecision(dec.Scorer)
		st := r.fronts[dec.Index]
		resp, perr := r.forward(ctx, st, req, body)
		if perr != nil {
			// Transport-level death: mark, exclude, re-score the rest.
			skip[dec.Index] = true
			r.markFailure(st)
			r.failovers.Inc()
			continue
		}
		if resp.status == http.StatusOK {
			// Optimistic residency: the frontend just served (and cached)
			// this user — make affinity see it before the next poll.
			st.mu.Lock()
			if st.summary == nil {
				st.summary = NewSummary(0)
			}
			st.summary.Add(userKey)
			st.mu.Unlock()
		}
		r.proxied.Inc()
		for k, vs := range resp.header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.status)
		w.Write(resp.body)
		return
	}
	r.noBackend.Inc()
	http.Error(w, "no live frontend", http.StatusBadGateway)
}

// proxiedResponse is a fully buffered upstream response: buffering lets the
// router fail over on transport errors without having committed a status to
// the client.
type proxiedResponse struct {
	status int
	header http.Header
	body   []byte
}

func (r *Router) forward(ctx context.Context, st *frontendState, orig *http.Request, body []byte) (*proxiedResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, st.url+"/v1/rank", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if d := orig.Header.Get(admission.DeadlineHeader); d != "" {
		req.Header.Set(admission.DeadlineHeader, d)
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, r.cfg.MaxBody))
	if err != nil {
		return nil, err
	}
	return &proxiedResponse{status: resp.StatusCode, header: resp.Header.Clone(), body: out}, nil
}

// Stats snapshots the router.
func (r *Router) Stats() RouterStats {
	st := RouterStats{
		Admission: r.ctl.Stats(),
		Decisions: make(map[string]int64),
		Failovers: r.failovers.Value(),
		Proxied:   r.proxied.Value(),
		NoBackend: r.noBackend.Value(),
	}
	r.decMu.Lock()
	for k, v := range r.decisions {
		st.Decisions[k] = v
	}
	r.decMu.Unlock()
	for _, f := range r.fronts {
		f.mu.Lock()
		st.Frontends = append(st.Frontends, FrontendStatus{
			URL:           f.url,
			Alive:         f.alive,
			Load:          f.load,
			ResidentUsers: f.residentUsers,
			Requests:      f.requests,
		})
		f.mu.Unlock()
	}
	return st
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(r.Stats())
}
