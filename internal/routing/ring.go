// Package routing is the single home of request/entry placement policy.
// Three subsystems used to carry private copies of the same splitmix64 ring:
// the distserve frontend's cache-shard routing, the static placement plan's
// item sharding, and the cluster DES's node routing. All of them now route
// through this package, so a change to the hash or the walk is a change to
// every plane at once — and the bit-level contract each copy relied on is
// pinned by equivalence tests against the pre-refactor implementations.
//
// Two layers live here:
//
//   - Ring: deterministic consistent hashing — a home slot per key plus a
//     walk-forward replica walk that skips dead or draining members.
//   - Scorer / Pipeline: policy routing for the frontend tier — weighted
//     cache-affinity, hotness, least-loaded, and round-robin scorers pick
//     among live frontend replicas. The cluster simulator drives the same
//     pipeline, so simulated routing IS live routing.
package routing

// Mix64 is splitmix64's finalizer, the shared routing hash. Every shard,
// node, and replica decision in the system keys off this exact bit pattern;
// changing it invalidates every placed cache entry.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// itemSalt keeps the user and item keyspaces from colliding on the same
// slots: item IDs are salted before hashing so the two populations
// interleave differently across the ring.
const itemSalt = 0x1234

// EntryHash maps a cache entry ("user"/"item" kind + ID) to its shard hash.
func EntryHash(kind string, id uint64) uint64 {
	if kind == "item" {
		return Mix64(id ^ itemSalt)
	}
	return Mix64(id)
}

// Ring is a consistent hash ring over n member slots. It is a value type:
// membership liveness is the caller's state, passed per-walk as a predicate,
// so one Ring serves both the frontend (alive/draining arrays under its
// lock) and the simulator (all members always live).
type Ring struct {
	n int
}

// NewRing builds a ring over n slots.
func NewRing(n int) Ring { return Ring{n: n} }

// Size returns the member count.
func (r Ring) Size() int { return r.n }

// Home is the key's primary slot: h mod n.
func (r Ring) Home(h uint64) int {
	if r.n <= 0 {
		return 0
	}
	return int(h % uint64(r.n))
}

// Replicas walks forward from h's home slot collecting up to rf distinct
// members that pass ok; an unroutable ring yields just the home slot (the
// caller's operation fails harmlessly there). Store routing, drain peer
// selection, and scrub targeting all share this walk, so relocated entries
// land exactly where subsequent reads will look.
func (r Ring) Replicas(h uint64, rf int, ok func(int) bool) []int {
	n := r.n
	if n <= 0 {
		return nil
	}
	if rf < 1 {
		rf = 1
	}
	if rf > n {
		rf = n
	}
	start := int(h % uint64(n))
	out := make([]int, 0, rf)
	for i := 0; i < n && len(out) < rf; i++ {
		if c := (start + i) % n; ok(c) {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = append(out, start)
	}
	return out
}
