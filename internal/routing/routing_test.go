package routing

import (
	"math/rand"
	"reflect"
	"testing"
)

// ---------------------------------------------------------------------------
// Pre-refactor reference implementations, copied verbatim from the packages
// that used to own them. These pin the extraction: Ring and the hash helpers
// must stay bit-identical to every private copy they replaced, or every
// placed cache entry and simulated routing decision silently moves.
// ---------------------------------------------------------------------------

// legacyDistserveMix is `mix` from internal/distserve/frontend.go.
func legacyDistserveMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// legacyRouteHash is `routeHash` from internal/distserve/frontend.go.
func legacyRouteHash(kind string, id uint64) uint64 {
	if kind == "item" {
		return legacyDistserveMix(id ^ 0x1234)
	}
	return legacyDistserveMix(id)
}

// legacyRouteReplicas is `routeReplicas` from internal/distserve/frontend.go.
func legacyRouteReplicas(h uint64, n, rf int, ok func(int) bool) []int {
	if n <= 0 {
		return nil
	}
	if rf < 1 {
		rf = 1
	}
	if rf > n {
		rf = n
	}
	start := int(h % uint64(n))
	out := make([]int, 0, rf)
	for i := 0; i < n && len(out) < rf; i++ {
		if c := (start + i) % n; ok(c) {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		out = append(out, start)
	}
	return out
}

// legacyShardWorker is placement.Plan.ShardWorker's body (internal/placement).
func legacyShardWorker(it uint64, workers int) int {
	return int(legacyDistserveMix(it) % uint64(workers))
}

// legacyNodeFor is Sim.nodeFor's body (internal/cluster/sim.go), including
// its user-ID salt.
func legacyNodeFor(u uint64, nodes int) int {
	return int(legacyDistserveMix(u+0x9e37) % uint64(nodes))
}

func TestMix64MatchesLegacyCopies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		x := rng.Uint64()
		if got, want := Mix64(x), legacyDistserveMix(x); got != want {
			t.Fatalf("Mix64(%#x) = %#x, legacy %#x", x, got, want)
		}
	}
	// The placement and cluster copies were byte-for-byte the same function;
	// one fixed probe documents that all three legacies agreed.
	if legacyDistserveMix(42) != Mix64(42) {
		t.Fatal("legacy finalizers diverged")
	}
}

func TestEntryHashMatchesFrontendRouteHash(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100000; i++ {
		id := rng.Uint64()
		for _, kind := range []string{"user", "item"} {
			if got, want := EntryHash(kind, id), legacyRouteHash(kind, id); got != want {
				t.Fatalf("EntryHash(%q, %d) = %#x, legacy %#x", kind, id, got, want)
			}
		}
	}
	if EntryHash("user", 7) == EntryHash("item", 7) {
		t.Fatal("item salt lost: user and item hashes collide on the same ID")
	}
}

func TestRingReplicasMatchesFrontendRouteReplicas(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50000; i++ {
		n := 1 + rng.Intn(16)
		rf := rng.Intn(n + 4) // exercise clamping both ways, incl. rf=0
		h := rng.Uint64()
		live := make([]bool, n)
		for w := range live {
			live[w] = rng.Intn(4) != 0 // ~25% dead, incl. sometimes all dead
		}
		ok := func(w int) bool { return live[w] }
		got := NewRing(n).Replicas(h, rf, ok)
		want := legacyRouteReplicas(h, n, rf, ok)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Replicas(h=%#x n=%d rf=%d live=%v) = %v, legacy %v", h, n, rf, live, got, want)
		}
	}
	if got := NewRing(0).Replicas(1, 1, func(int) bool { return true }); got != nil {
		t.Fatalf("empty ring returned %v", got)
	}
}

func TestRingHomeMatchesPlacementAndClusterHashes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100000; i++ {
		id := rng.Uint64()
		workers := 1 + rng.Intn(12)
		if got, want := NewRing(workers).Home(Mix64(id)), legacyShardWorker(id, workers); got != want {
			t.Fatalf("placement shard: Home(Mix64(%d)) over %d = %d, legacy %d", id, workers, got, want)
		}
		nodes := 1 + rng.Intn(12)
		if got, want := NewRing(nodes).Home(Mix64(id+0x9e37)), legacyNodeFor(id, nodes); got != want {
			t.Fatalf("cluster node: %d over %d = %d, legacy %d", id, nodes, got, want)
		}
	}
}

func TestRingReplicasProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20000; i++ {
		n := 1 + rng.Intn(16)
		rf := 1 + rng.Intn(n)
		h := rng.Uint64()
		live := make([]bool, n)
		anyLive := false
		for w := range live {
			live[w] = rng.Intn(3) != 0
			anyLive = anyLive || live[w]
		}
		got := NewRing(n).Replicas(h, rf, func(w int) bool { return live[w] })
		if len(got) == 0 || len(got) > rf {
			t.Fatalf("replica count %d outside [1,%d]", len(got), rf)
		}
		seen := map[int]bool{}
		home := int(h % uint64(n))
		prevOffset := -1
		for _, w := range got {
			if w < 0 || w >= n {
				t.Fatalf("replica %d outside ring of %d", w, n)
			}
			if seen[w] {
				t.Fatalf("duplicate replica %d in %v", w, got)
			}
			seen[w] = true
			if anyLive && !live[w] {
				t.Fatalf("dead member %d selected from %v (live=%v)", w, got, live)
			}
			// Walk order: offsets from home strictly increase.
			off := (w - home + n) % n
			if off <= prevOffset {
				t.Fatalf("walk order violated: %v from home %d", got, home)
			}
			prevOffset = off
		}
		if !anyLive && (len(got) != 1 || got[0] != home) {
			t.Fatalf("unroutable ring: got %v, want home [%d]", got, home)
		}
	}
}

// randomCandidates builds a fuzzed candidate snapshot; at least one member
// is eligible when forceLive is set.
func randomCandidates(rng *rand.Rand, n int, forceLive bool) []Candidate {
	cands := make([]Candidate, n)
	anyLive := false
	for i := range cands {
		resident := rng.Intn(2) == 0
		cands[i] = Candidate{
			Index:    i,
			Alive:    rng.Intn(3) != 0,
			Draining: rng.Intn(5) == 0,
			Load:     rng.Float64(),
			Resident: func(uint64) bool { return resident },
		}
		anyLive = anyLive || cands[i].eligible()
	}
	if forceLive && !anyLive {
		i := rng.Intn(n)
		cands[i].Alive = true
		cands[i].Draining = false
	}
	return cands
}

func TestPipelineDeterministicUnderSeed(t *testing.T) {
	spec := "cache-affinity:2,hotness:1,least-loaded:1,round-robin:0.5"
	scorersA, err := ParseScorers(spec)
	if err != nil {
		t.Fatal(err)
	}
	scorersB, _ := ParseScorers(spec)
	a := NewPipeline(99, scorersA...)
	b := NewPipeline(99, scorersB...)

	// Identical seeds and identical Pick sequences must produce identical
	// decisions — the property that makes simulated routing reproducible.
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 5000; i++ {
		cands := randomCandidates(rng, 1+rng.Intn(8), false)
		req := Request{Key: rng.Uint64(), Home: rng.Intn(len(cands)), Hotness: rng.Float64()}
		da, oka := a.Pick(req, cands)
		db, okb := b.Pick(req, cands)
		if oka != okb || da != db {
			t.Fatalf("iteration %d: same seed diverged: %+v/%v vs %+v/%v", i, da, oka, db, okb)
		}
	}
}

func TestPipelineNeverSelectsDeadOrDraining(t *testing.T) {
	scorers, err := ParseScorers("cache-affinity,hotness,least-loaded,round-robin")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(7, scorers...)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20000; i++ {
		cands := randomCandidates(rng, 1+rng.Intn(6), true)
		dec, ok := p.Pick(Request{Key: rng.Uint64(), Home: rng.Intn(len(cands)), Hotness: rng.Float64()}, cands)
		if !ok {
			t.Fatalf("eligible member present but Pick failed: %+v", cands)
		}
		c := cands[dec.Index]
		if !c.Alive || c.Draining {
			t.Fatalf("picked ineligible member %d: alive=%v draining=%v", dec.Index, c.Alive, c.Draining)
		}
	}
	// All dead: no decision, never a dead pick.
	dead := []Candidate{{Index: 0}, {Index: 1, Alive: true, Draining: true}}
	if dec, ok := p.Pick(Request{}, dead); ok {
		t.Fatalf("all-dead pool produced decision %+v", dec)
	}
}

func TestPipelineAffinityBeatsLoadAtDefaultWeights(t *testing.T) {
	p := NewPipeline(0, DefaultScorers()...)
	cands := []Candidate{
		{Index: 0, Alive: true, Load: 0.9, Resident: func(uint64) bool { return true }},
		{Index: 1, Alive: true, Load: 0.0, Resident: func(uint64) bool { return false }},
	}
	dec, ok := p.Pick(Request{Key: 1}, cands)
	if !ok || dec.Index != 0 || dec.Scorer != "cache-affinity" {
		t.Fatalf("warm loaded replica should win under defaults: %+v ok=%v", dec, ok)
	}
}

func TestParseScorers(t *testing.T) {
	ws, err := ParseScorers("cache-affinity:2, least-loaded , round-robin:0.25")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 || ws[0].Weight != 2 || ws[1].Weight != 1 || ws[2].Weight != 0.25 {
		t.Fatalf("parsed %+v", ws)
	}
	for _, bad := range []string{"", "nope", "least-loaded:-1", "least-loaded:x"} {
		if _, err := ParseScorers(bad); err == nil {
			t.Fatalf("ParseScorers(%q) accepted", bad)
		}
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	s := NewSummary(0)
	keys := make([]uint64, 0, 2000)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		k := rng.Uint64()
		keys = append(keys, k)
		s.Add(k)
	}
	dec, err := DecodeSummary(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != s.Len() {
		t.Fatalf("count %d != %d", dec.Len(), s.Len())
	}
	for _, k := range keys {
		if !dec.Contains(k) {
			t.Fatalf("false negative on %#x after round trip", k)
		}
	}
	// False-positive rate stays usable at this fill level.
	fp := 0
	for i := 0; i < 10000; i++ {
		if dec.Contains(rng.Uint64()) {
			fp++
		}
	}
	if fp > 2000 { // generous: expected well under 10% at 2000/8192-bit fill
		t.Fatalf("false positive rate too high: %d/10000", fp)
	}
	for _, bad := range []string{"!!!", "AAAA", ""} {
		if _, err := DecodeSummary(bad); err == nil {
			t.Fatalf("DecodeSummary(%q) accepted", bad)
		}
	}
}
