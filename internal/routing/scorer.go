package routing

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Candidate is one routable member's state at decision time. The caller
// snapshots whatever plane it runs in — the batrouter fills it from /v1/load
// polls, the cluster simulator from its virtual-time node state — and the
// scorers stay plane-agnostic.
type Candidate struct {
	Index int
	// Alive and Draining gate eligibility: the pipeline never picks a dead
	// or draining member, whatever the scorers say.
	Alive    bool
	Draining bool
	// Load is the member's relative load in [0,1] (1 = the most loaded the
	// caller can express): in-flight + queue depth against capacity for a
	// live frontend, normalized busy time for a simulated node.
	Load float64
	// Resident reports whether the member's cache plausibly holds the
	// routing key (bloom summaries may give false positives, never false
	// negatives). Nil means residency is unknown; affinity scores zero.
	Resident func(key uint64) bool
}

func (c Candidate) eligible() bool { return c.Alive && !c.Draining }

// Request is one routing decision's input.
type Request struct {
	// Key is the request's routing hash (EntryHash of the user).
	Key uint64
	// Home is the key's ring home slot among the candidates, the sticky
	// target the hotness scorer anchors to.
	Home int
	// Hotness is the requester's normalized access frequency in [0,1];
	// zero when the caller does not track it.
	Hotness float64
	// Seq is the pipeline-assigned decision number (seeded), which makes
	// round-robin deterministic for a fixed seed and call order.
	Seq uint64
}

// Scorer rates one eligible candidate in [0,1]. pos is the candidate's
// position within the eligible set of size n for this decision (the
// post-filter index round-robin cycles over).
type Scorer interface {
	Name() string
	Score(req Request, c Candidate, pos, n int) float64
}

// CacheAffinity prefers members whose cache already holds the key: routing
// a user back to their warm replica turns pool lookups into hits instead of
// recomputes (xGR's cache-locality placement argument).
type CacheAffinity struct{}

func (CacheAffinity) Name() string { return "cache-affinity" }
func (CacheAffinity) Score(req Request, c Candidate, pos, n int) float64 {
	if c.Resident != nil && c.Resident(req.Key) {
		return 1
	}
	return 0
}

// Hotness pins hot requesters to their ring home slot: before residency is
// known (or when summaries lag), a frequently-seen user keeps landing on a
// stable member, so their cache accretes in one place instead of smearing.
type Hotness struct{}

func (Hotness) Name() string { return "hotness" }
func (Hotness) Score(req Request, c Candidate, pos, n int) float64 {
	if c.Index == req.Home {
		return req.Hotness
	}
	return 0
}

// LeastLoaded prefers idle members.
type LeastLoaded struct{}

func (LeastLoaded) Name() string { return "least-loaded" }
func (LeastLoaded) Score(req Request, c Candidate, pos, n int) float64 {
	l := c.Load
	if l < 0 {
		l = 0
	}
	if l > 1 {
		l = 1
	}
	return 1 - l
}

// RoundRobin cycles the eligible set in decision order — the baseline
// spreader, and the deterministic tie-breaker of last resort when composed
// with a small weight under the policy scorers.
type RoundRobin struct{}

func (RoundRobin) Name() string { return "round-robin" }
func (RoundRobin) Score(req Request, c Candidate, pos, n int) float64 {
	if n > 0 && pos == int(req.Seq%uint64(n)) {
		return 1
	}
	return 0
}

// Weighted pairs a scorer with its blend weight.
type Weighted struct {
	Scorer Scorer
	Weight float64
}

// scorerFactories maps spec names to constructors for ParseScorers.
var scorerFactories = map[string]func() Scorer{
	"cache-affinity": func() Scorer { return CacheAffinity{} },
	"hotness":        func() Scorer { return Hotness{} },
	"least-loaded":   func() Scorer { return LeastLoaded{} },
	"round-robin":    func() Scorer { return RoundRobin{} },
}

// ScorerNames lists the known scorer spec names, sorted.
func ScorerNames() []string {
	names := make([]string, 0, len(scorerFactories))
	for n := range scorerFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseScorers parses a pipeline spec like
// "cache-affinity:2,least-loaded:1,round-robin:0.25" — comma-separated
// name[:weight] terms, weight defaulting to 1.
func ParseScorers(spec string) ([]Weighted, error) {
	var out []Weighted
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		name, wstr, hasW := strings.Cut(term, ":")
		mk, ok := scorerFactories[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("routing: unknown scorer %q (have %s)", name, strings.Join(ScorerNames(), ", "))
		}
		w := 1.0
		if hasW {
			v, err := strconv.ParseFloat(strings.TrimSpace(wstr), 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("routing: bad weight in %q", term)
			}
			w = v
		}
		out = append(out, Weighted{Scorer: mk(), Weight: w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("routing: empty scorer spec")
	}
	return out, nil
}

// DefaultScorers is the router's default policy blend: warm-cache affinity
// dominates, load breaks affinity ties, and a light round-robin term keeps
// cold traffic spreading instead of piling on member 0.
func DefaultScorers() []Weighted {
	return []Weighted{
		{Scorer: CacheAffinity{}, Weight: 2},
		{Scorer: LeastLoaded{}, Weight: 1},
		{Scorer: RoundRobin{}, Weight: 0.25},
	}
}

// Decision is one pipeline pick.
type Decision struct {
	// Index is the chosen candidate.
	Index int
	// Scorer names the scorer whose weighted contribution dominated the
	// winner's total ("tie" when every contribution was zero) — the label on
	// bat_route_decisions_total{scorer=...}.
	Scorer string
	// Score is the winner's weighted total.
	Score float64
}

// Pipeline composes weighted scorers into a deterministic picker: given the
// same seed, the same sequence of Pick calls, and the same candidate
// snapshots, it returns the same decisions.
type Pipeline struct {
	scorers []Weighted
	seed    uint64
	seq     atomic.Uint64
}

// NewPipeline builds a pipeline; an empty scorer list gets DefaultScorers.
func NewPipeline(seed uint64, scorers ...Weighted) *Pipeline {
	if len(scorers) == 0 {
		scorers = DefaultScorers()
	}
	return &Pipeline{scorers: scorers, seed: seed}
}

// Scorers returns the pipeline's blend (for stats surfaces).
func (p *Pipeline) Scorers() []Weighted { return p.scorers }

// Pick routes one request among cands. Only live, non-draining candidates
// are scored; ok is false when none are eligible. Ties break toward the
// lowest candidate index, so decisions are total-ordered and reproducible.
func (p *Pipeline) Pick(req Request, cands []Candidate) (Decision, bool) {
	eligible := make([]Candidate, 0, len(cands))
	for _, c := range cands {
		if c.eligible() {
			eligible = append(eligible, c)
		}
	}
	if len(eligible) == 0 {
		return Decision{Index: -1}, false
	}
	req.Seq = p.seed + p.seq.Add(1) - 1

	best := Decision{Index: -1, Score: -1}
	for pos, c := range eligible {
		total, topW, topName := 0.0, 0.0, ""
		for _, ws := range p.scorers {
			contrib := ws.Weight * ws.Scorer.Score(req, c, pos, len(eligible))
			total += contrib
			if contrib > topW {
				topW, topName = contrib, ws.Scorer.Name()
			}
		}
		if total > best.Score || (total == best.Score && best.Index >= 0 && c.Index < best.Index) {
			if topName == "" {
				topName = "tie"
			}
			best = Decision{Index: c.Index, Scorer: topName, Score: total}
		}
	}
	return best, true
}
