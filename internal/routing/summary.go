package routing

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
)

// summaryProbes is the bloom probe count. With the default 8192 bits and a
// few thousand resident users, four probes keep the false-positive rate in
// the low percents — plenty for a routing hint, where a false positive just
// sends one request to a cache that turns out cold.
const summaryProbes = 4

// DefaultSummaryBits sizes /v1/load residency summaries: 8192 bits = 1 KiB
// on the wire per poll.
const DefaultSummaryBits = 8192

// maxSummaryBits bounds decoded summaries so a hostile or corrupt /v1/load
// body cannot balloon the router's heap.
const maxSummaryBits = 1 << 22

// Summary is a fixed-size bloom filter over routing keys — the per-frontend
// cache-residency hint the affinity scorer consults. Add-only: entries
// evicted from the cache linger until the summary is rebuilt from the
// worker's resident set, which the frontend does on a short TTL.
type Summary struct {
	bits  []uint64
	count int
}

// NewSummary builds a summary with at least nbits bits (rounded up to a
// multiple of 64; nbits <= 0 takes DefaultSummaryBits).
func NewSummary(nbits int) *Summary {
	if nbits <= 0 {
		nbits = DefaultSummaryBits
	}
	return &Summary{bits: make([]uint64, (nbits+63)/64)}
}

// probe derives the i-th bit index by double hashing: two independent
// splitmix64 streams, the second forced odd so it cycles the whole table.
func (s *Summary) probe(key uint64, i int) (word int, mask uint64) {
	m := uint64(len(s.bits)) * 64
	h1 := Mix64(key)
	h2 := Mix64(key^0x9e3779b97f4a7c15) | 1
	idx := (h1 + uint64(i)*h2) % m
	return int(idx / 64), 1 << (idx % 64)
}

// Add folds a routing key into the summary.
func (s *Summary) Add(key uint64) {
	for i := 0; i < summaryProbes; i++ {
		w, m := s.probe(key, i)
		s.bits[w] |= m
	}
	s.count++
}

// Contains reports whether key was (probably) added. False positives are
// possible; false negatives are not.
func (s *Summary) Contains(key uint64) bool {
	for i := 0; i < summaryProbes; i++ {
		w, m := s.probe(key, i)
		if s.bits[w]&m == 0 {
			return false
		}
	}
	return true
}

// Len returns how many keys were added (with multiplicity).
func (s *Summary) Len() int { return s.count }

// Encode serializes the summary for the /v1/load JSON body: an 8-byte
// little-endian count header followed by the bit words, base64'd.
func (s *Summary) Encode() string {
	buf := make([]byte, 8+len(s.bits)*8)
	binary.LittleEndian.PutUint64(buf, uint64(s.count))
	for i, w := range s.bits {
		binary.LittleEndian.PutUint64(buf[8+i*8:], w)
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// DecodeSummary parses Encode's output.
func DecodeSummary(enc string) (*Summary, error) {
	raw, err := base64.StdEncoding.DecodeString(enc)
	if err != nil {
		return nil, fmt.Errorf("routing: bad summary encoding: %w", err)
	}
	if len(raw) < 8 || (len(raw)-8)%8 != 0 {
		return nil, fmt.Errorf("routing: bad summary length %d", len(raw))
	}
	nbits := (len(raw) - 8) * 8
	if nbits == 0 || nbits > maxSummaryBits {
		return nil, fmt.Errorf("routing: summary size %d bits out of range", nbits)
	}
	s := &Summary{
		bits:  make([]uint64, nbits/64),
		count: int(binary.LittleEndian.Uint64(raw)),
	}
	for i := range s.bits {
		s.bits[i] = binary.LittleEndian.Uint64(raw[8+i*8:])
	}
	return s, nil
}
