package routing

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bat/internal/admission"
)

// fakeFrontend is a minimal frontend: /v1/load reports a fixed residency
// summary and zero load, /v1/rank answers 200 and counts.
type fakeFrontend struct {
	ranks atomic.Int64
	users []uint64
	block chan struct{} // non-nil: /v1/rank waits for a receive
	srv   *httptest.Server
}

func newFakeFrontend(t *testing.T, users ...uint64) *fakeFrontend {
	t.Helper()
	f := &fakeFrontend{users: users}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/load", func(w http.ResponseWriter, r *http.Request) {
		sum := NewSummary(0)
		for _, u := range f.users {
			sum.Add(EntryHash("user", u))
		}
		json.NewEncoder(w).Encode(map[string]any{
			"in_flight": 0, "queue_depth": 0,
			"max_in_flight": 4, "max_queue": 8,
			"requests": f.ranks.Load(), "resident_users": len(f.users),
			"users": sum.Encode(),
		})
	})
	mux.HandleFunc("/v1/rank", func(w http.ResponseWriter, r *http.Request) {
		if f.block != nil {
			<-f.block
		}
		f.ranks.Add(1)
		fmt.Fprint(w, `{"items":[]}`)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func rankBody(user uint64) *bytes.Reader {
	return bytes.NewReader([]byte(fmt.Sprintf(`{"user_id": %d, "candidate_ids": [1,2]}`, user)))
}

func mustScorers(t *testing.T, spec string) []Weighted {
	t.Helper()
	s, err := ParseScorers(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRouterRoutesByCacheAffinity: the router sends a user to the frontend
// whose residency summary already holds that user's cache.
func TestRouterRoutesByCacheAffinity(t *testing.T) {
	a := newFakeFrontend(t)       // no caches
	b := newFakeFrontend(t, 7, 9) // users 7 and 9 resident
	r, err := NewRouter(RouterConfig{
		Frontends:    []string{a.srv.URL, b.srv.URL},
		Scorers:      mustScorers(t, "cache-affinity"),
		PollInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	for i := 0; i < 5; i++ {
		resp, err := http.Post(srv.URL+"/v1/rank", "application/json", rankBody(7))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rank status %d", resp.StatusCode)
		}
	}
	if got := b.ranks.Load(); got != 5 {
		t.Fatalf("resident frontend served %d of 5", got)
	}
	if got := a.ranks.Load(); got != 0 {
		t.Fatalf("cold frontend served %d, want 0", got)
	}
	st := r.Stats()
	if st.Decisions["cache-affinity"] == 0 {
		t.Fatalf("no cache-affinity decisions recorded: %+v", st.Decisions)
	}
}

// TestRouterOptimisticResidency: after routing a cold user somewhere, the
// router remembers the placement locally, so the next request for the same
// user sticks to that frontend even before the next /v1/load poll.
func TestRouterOptimisticResidency(t *testing.T) {
	a := newFakeFrontend(t)
	b := newFakeFrontend(t)
	r, err := NewRouter(RouterConfig{
		Frontends:    []string{a.srv.URL, b.srv.URL},
		Scorers:      mustScorers(t, "cache-affinity:2,round-robin:0.25"),
		PollInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	for i := 0; i < 6; i++ {
		resp, err := http.Post(srv.URL+"/v1/rank", "application/json", rankBody(42))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// First pick is round-robin (cold everywhere); the remaining five must
	// all follow it via the optimistic summary.
	if a.ranks.Load() != 0 && b.ranks.Load() != 0 {
		t.Fatalf("user 42 split across frontends: a=%d b=%d", a.ranks.Load(), b.ranks.Load())
	}
	if a.ranks.Load()+b.ranks.Load() != 6 {
		t.Fatalf("served %d of 6", a.ranks.Load()+b.ranks.Load())
	}
}

// TestRouterFailsOverOnDeadFrontend: killing the affinity-preferred frontend
// mid-run reroutes to the survivor with zero failed requests and a counted
// failover.
func TestRouterFailsOverOnDeadFrontend(t *testing.T) {
	a := newFakeFrontend(t, 7)
	b := newFakeFrontend(t)
	r, err := NewRouter(RouterConfig{
		Frontends:    []string{a.srv.URL, b.srv.URL},
		Scorers:      mustScorers(t, "cache-affinity"),
		PollInterval: -1,
		FailAfter:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	a.srv.Close() // kill the preferred frontend

	for i := 0; i < 3; i++ {
		resp, err := http.Post(srv.URL+"/v1/rank", "application/json", rankBody(7))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d status %d, want failover to succeed", i, resp.StatusCode)
		}
	}
	if got := b.ranks.Load(); got != 3 {
		t.Fatalf("survivor served %d of 3", got)
	}
	st := r.Stats()
	if st.Failovers == 0 {
		t.Fatal("no failovers counted")
	}
	if !strings.Contains(metricsText(t, srv.URL), "bat_route_failovers_total") {
		t.Fatal("failover counter missing from /metrics")
	}
}

// TestRouterAllDead502: with every frontend down the router answers 502,
// not a hang or a 500.
func TestRouterAllDead502(t *testing.T) {
	a := newFakeFrontend(t)
	r, err := NewRouter(RouterConfig{
		Frontends:    []string{a.srv.URL},
		PollInterval: -1,
		FailAfter:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	a.srv.Close()
	resp, err := http.Post(srv.URL+"/v1/rank", "application/json", rankBody(1))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
	if r.Stats().NoBackend == 0 {
		t.Fatal("no_backend not counted")
	}
}

// TestRouterShedsAtCapacity: cluster-level admission sheds with 429 +
// Retry-After once in-flight is saturated and the queue is disabled.
func TestRouterShedsAtCapacity(t *testing.T) {
	a := newFakeFrontend(t)
	a.block = make(chan struct{})
	r, err := NewRouter(RouterConfig{
		Frontends:    []string{a.srv.URL},
		PollInterval: -1,
		Admission:    admission.Config{MaxInFlight: 1, MaxQueue: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	done := make(chan error, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/rank", "application/json", rankBody(1))
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	// Wait for the first request to occupy the slot inside the backend.
	deadline := time.After(5 * time.Second)
	for r.ctl.Stats().InFlight == 0 {
		select {
		case <-deadline:
			t.Fatal("first request never admitted")
		case <-time.After(time.Millisecond):
		}
	}

	resp, err := http.Post(srv.URL+"/v1/rank", "application/json", rankBody(2))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	close(a.block)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func metricsText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String()
}
