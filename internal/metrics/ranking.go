// Package metrics provides the evaluation measures used in the paper's
// experiments: ranking quality (Recall@k, MRR@k, NDCG@k from §6.3), latency
// percentile digests (Fig. 9), and empirical CDFs (Fig. 2).
package metrics

import "math"

// RankEval accumulates ranking-quality metrics over requests. Each Observe
// call scores one ranked candidate list against a single ground-truth item,
// matching the paper's LlamaRec-style evaluation where exactly one positive
// appears among the retrieved candidates.
type RankEval struct {
	K      int
	n      int
	recall float64
	mrr    float64
	ndcg   float64
}

// NewRankEval returns an evaluator for cutoff k.
func NewRankEval(k int) *RankEval { return &RankEval{K: k} }

// Observe records one request: ranked is the candidate list in descending
// score order, truth the ground-truth candidate. With a single relevant item,
// NDCG@k reduces to 1/log2(rank+1) and MRR@k to 1/rank within the cutoff.
func (e *RankEval) Observe(ranked []int, truth int) {
	e.n++
	rank := -1
	for i, c := range ranked {
		if c == truth {
			rank = i + 1
			break
		}
	}
	if rank < 0 || rank > e.K {
		return
	}
	e.recall++
	e.mrr += 1 / float64(rank)
	e.ndcg += 1 / math.Log2(float64(rank)+1)
}

// Count returns the number of observed requests.
func (e *RankEval) Count() int { return e.n }

// Recall returns Recall@K over all observed requests.
func (e *RankEval) Recall() float64 { return e.ratio(e.recall) }

// MRR returns MRR@K.
func (e *RankEval) MRR() float64 { return e.ratio(e.mrr) }

// NDCG returns NDCG@K.
func (e *RankEval) NDCG() float64 { return e.ratio(e.ndcg) }

func (e *RankEval) ratio(sum float64) float64 {
	if e.n == 0 {
		return 0
	}
	return sum / float64(e.n)
}
