package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRankEvalPerfectRanking(t *testing.T) {
	e := NewRankEval(10)
	e.Observe([]int{7, 1, 2}, 7)
	if e.Recall() != 1 || e.MRR() != 1 || e.NDCG() != 1 {
		t.Fatalf("rank-1 hit: recall=%v mrr=%v ndcg=%v", e.Recall(), e.MRR(), e.NDCG())
	}
}

func TestRankEvalRankTwo(t *testing.T) {
	e := NewRankEval(10)
	e.Observe([]int{1, 7, 2}, 7)
	if e.Recall() != 1 {
		t.Fatalf("recall = %v", e.Recall())
	}
	if math.Abs(e.MRR()-0.5) > 1e-12 {
		t.Fatalf("MRR = %v, want 0.5", e.MRR())
	}
	want := 1 / math.Log2(3)
	if math.Abs(e.NDCG()-want) > 1e-12 {
		t.Fatalf("NDCG = %v, want %v", e.NDCG(), want)
	}
}

func TestRankEvalMiss(t *testing.T) {
	e := NewRankEval(2)
	e.Observe([]int{1, 2, 7}, 7) // truth at rank 3 > K=2
	if e.Recall() != 0 || e.MRR() != 0 || e.NDCG() != 0 {
		t.Fatal("beyond-cutoff hit should score 0")
	}
	e.Observe([]int{1, 2}, 9) // truth absent entirely
	if e.Recall() != 0 {
		t.Fatal("absent truth should score 0")
	}
	if e.Count() != 2 {
		t.Fatalf("count = %d", e.Count())
	}
}

func TestRankEvalAverages(t *testing.T) {
	e := NewRankEval(5)
	e.Observe([]int{7}, 7)    // hit rank 1
	e.Observe([]int{1, 2}, 9) // miss
	if e.Recall() != 0.5 {
		t.Fatalf("recall = %v", e.Recall())
	}
}

func TestRankEvalEmptyIsZero(t *testing.T) {
	e := NewRankEval(5)
	if e.Recall() != 0 || e.MRR() != 0 || e.NDCG() != 0 || e.Count() != 0 {
		t.Fatal("empty evaluator should report zeros")
	}
}

// Property: Recall >= NDCG >= MRR always (with one relevant item,
// 1 >= 1/log2(r+1) >= 1/r for r >= 1).
func TestRankMetricOrderingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewRankEval(10)
		for i := 0; i < 50; i++ {
			n := rng.Intn(20) + 1
			ranked := rng.Perm(n)
			e.Observe(ranked, rng.Intn(n+2)) // sometimes absent
		}
		return e.Recall() >= e.NDCG() && e.NDCG() >= e.MRR()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDigestQuantiles(t *testing.T) {
	var d Digest
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	if d.Count() != 100 || d.Sum() != 5050 {
		t.Fatalf("count %d sum %v", d.Count(), d.Sum())
	}
	if d.Mean() != 50.5 {
		t.Fatalf("mean = %v", d.Mean())
	}
	if got := d.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := d.Max(); got != 100 {
		t.Fatalf("max = %v", got)
	}
	if got := d.P50(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("p50 = %v", got)
	}
	if got := d.P99(); got < 99 || got > 100 {
		t.Fatalf("p99 = %v", got)
	}
}

func TestDigestAddAfterQuantile(t *testing.T) {
	var d Digest
	d.Add(5)
	_ = d.P50()
	d.Add(1) // must re-sort
	if d.Quantile(0) != 1 {
		t.Fatal("digest did not re-sort after Add")
	}
}

func TestDigestEmpty(t *testing.T) {
	var d Digest
	if d.Mean() != 0 || d.P99() != 0 || d.Max() != 0 {
		t.Fatal("empty digest should report zeros")
	}
}

func TestDigestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float32) bool {
		var d Digest
		for _, v := range raw {
			if math.IsNaN(float64(v)) {
				continue
			}
			d.Add(float64(v))
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := d.Quantile(q)
			if d.Count() > 0 && v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFAt(t *testing.T) {
	var c CDF
	for _, v := range []float64{1, 2, 2, 3} {
		c.Add(v)
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFPoints(t *testing.T) {
	var c CDF
	for i := 1; i <= 10; i++ {
		c.Add(float64(i))
	}
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[4][0] != 10 || pts[4][1] != 1 {
		t.Fatalf("last point = %v", pts[4])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] {
			t.Fatal("CDF points must be non-decreasing")
		}
	}
	if c.Points(0) != nil {
		t.Fatal("Points(0) should be nil")
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.At(5) != 0 || c.Points(3) != nil || c.Count() != 0 {
		t.Fatal("empty CDF should report zeros")
	}
}

func TestFormatPct(t *testing.T) {
	if got := FormatPct(0.583); got != "58.3%" {
		t.Fatalf("FormatPct = %q", got)
	}
}
