package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1, 1000, 2)
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Add(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Sum() != 15 {
		t.Fatalf("sum %g", h.Sum())
	}
	if h.Mean() != 3 {
		t.Fatalf("mean %g", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("min/max %g/%g", h.Min(), h.Max())
	}
	// Quantile(0) and Quantile(1) are exact.
	if h.Quantile(0) != 1 || h.Quantile(1) != 5 {
		t.Fatalf("extremes %g/%g", h.Quantile(0), h.Quantile(1))
	}
	// Negative and NaN samples clamp to 0 instead of corrupting state.
	h.Add(-3)
	h.Add(math.NaN())
	if h.Min() != 0 || h.Count() != 7 {
		t.Fatalf("after bad samples: min %g count %d", h.Min(), h.Count())
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram(1, 100, 2)
	h.Add(1e6) // far past hi: lands in the overflow bucket
	h.Add(2e6)
	if h.Count() != 2 {
		t.Fatalf("count %d", h.Count())
	}
	// The overflow bucket's upper edge is the observed max, so quantiles stay
	// finite and inside the data.
	for _, q := range []float64{0.1, 0.5, 0.9, 1} {
		v := h.Quantile(q)
		if v < 1e6 || v > 2e6 {
			t.Fatalf("q=%g: %g outside observed [1e6, 2e6]", q, v)
		}
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	for _, c := range []struct{ lo, hi, g float64 }{
		{0, 1, 2}, {-1, 1, 2}, {1, 1, 2}, {1, 0.5, 2}, {1, 10, 1}, {1, 10, 0.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%g,%g,%g) did not panic", c.lo, c.hi, c.g)
				}
			}()
			NewHistogram(c.lo, c.hi, c.g)
		}()
	}
}

// TestHistogramQuantileWithinBucketOfDigest is the property the Histogram doc
// comment promises: on identical samples, the histogram's quantile estimate
// is within one bucket width of the exact digest's (one width on each side —
// digest interpolation and histogram interpolation may straddle adjacent
// buckets).
func TestHistogramQuantileWithinBucketOfDigest(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		h := NewLatencyHistogram()
		var d Digest
		n := 10 + rng.Intn(3000)
		for i := 0; i < n; i++ {
			// Log-uniform latencies across the histogram's whole range, plus
			// occasional out-of-range extremes.
			var v float64
			switch rng.Intn(10) {
			case 0:
				v = rng.Float64() * 5e-6 // below lo
			case 1:
				v = 60 + rng.Float64()*120 // overflow
			default:
				v = 10e-6 * math.Exp(rng.Float64()*math.Log(60/10e-6))
			}
			h.Add(v)
			d.Add(v)
		}
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 0.999} {
			exact := d.Quantile(q)
			est := h.Quantile(q)
			tol := h.BucketWidth(exact) + h.BucketWidth(est)
			if diff := math.Abs(est - exact); diff > tol {
				t.Fatalf("trial %d n=%d q=%g: histogram %g vs digest %g, |diff| %g > tol %g",
					trial, n, q, est, exact, diff, tol)
			}
		}
		if math.Abs(h.Sum()-d.Sum()) > 1e-9*math.Abs(d.Sum()) {
			t.Fatalf("trial %d: sum %g vs %g", trial, h.Sum(), d.Sum())
		}
	}
}

// TestHistogramConcurrentAdds runs under -race: N writers hammer Add while a
// reader snapshots quantiles mid-write; totals must be exact afterward.
func TestHistogramConcurrentAdds(t *testing.T) {
	h := NewLatencyHistogram()
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader: values only need to be sane, not settled
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if v := h.Quantile(0.99); v < 0 {
				t.Error("negative quantile mid-write")
				return
			}
			h.Min()
			h.Max()
			h.Mean()
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				h.Add(rng.Float64() * 0.1)
			}
		}(int64(w))
	}
	close(stop)
	wg.Wait()
	if h.Count() != writers*perWriter {
		t.Fatalf("count %d, want %d", h.Count(), writers*perWriter)
	}
	if h.Min() < 0 || h.Max() > 0.1 {
		t.Fatalf("extremes %g/%g escaped [0, 0.1]", h.Min(), h.Max())
	}
}

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter(`bat_fetch_total{outcome="hit"}`).Add(3)
	r.Counter(`bat_fetch_total{outcome="hit"}`).Inc() // same counter, not a new one
	r.Counter("bat_requests_total").Add(-5)           // negative adds ignored
	r.Gauge("bat_depth").Set(2.5)
	r.GaugeFunc("bat_live", func() float64 { return 7 })
	h := r.LatencyHistogram(`bat_stage_latency_seconds{stage="plan"}`)
	h.Add(0.010)
	h.Add(0.020)

	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		"bat_fetch_total{outcome=\"hit\"} 4\n",
		"bat_requests_total 0\n",
		"bat_depth 2.5\n",
		"bat_live 7\n",
		"bat_stage_latency_seconds_count{stage=\"plan\"} 2\n",
		"bat_stage_latency_seconds_sum{stage=\"plan\"} 0.03\n",
		"bat_stage_latency_seconds{stage=\"plan\",quantile=\"0.99\"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
	// Output is sorted (diffable scrapes).
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !sort.StringsAreSorted(lines) {
		t.Error("scrape lines not sorted")
	}
}

// TestRegistryConcurrent runs under -race: concurrent get-or-create on the
// same names plus a scraper in a loop.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(float64(i))
				r.LatencyHistogram("h").Add(0.001)
				r.GaugeFunc("fn", func() float64 { return 1 })
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			r.WriteText(&sb)
		}
	}()
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8*500 {
		t.Fatalf("counter %d, want %d", got, 8*500)
	}
}

// TestReservoirDigestCaps pins the Digest satellite: capped digests hold at
// most cap samples while Count/Sum/Mean stay exact, and the reservoir's
// quantiles track the true distribution.
func TestReservoirDigestCaps(t *testing.T) {
	const capacity = 512
	d := NewReservoirDigest(capacity, 42)
	const n = 100000
	rng := rand.New(rand.NewSource(9))
	sum := 0.0
	for i := 0; i < n; i++ {
		v := rng.Float64()
		d.Add(v)
		sum += v
	}
	if len(d.samples) != capacity {
		t.Fatalf("retained %d samples, want cap %d", len(d.samples), capacity)
	}
	if d.Count() != n {
		t.Fatalf("count %d, want %d", d.Count(), n)
	}
	if math.Abs(d.Sum()-sum) > 1e-6 {
		t.Fatalf("sum %g, want %g", d.Sum(), sum)
	}
	if m := d.Mean(); math.Abs(m-0.5) > 0.01 {
		t.Fatalf("mean %g far from 0.5", m)
	}
	// Uniform(0,1): the reservoir median should sit near 0.5. A 512-sample
	// reservoir's median has σ≈0.022, so 0.1 is a >4σ bound.
	if p50 := d.P50(); math.Abs(p50-0.5) > 0.1 {
		t.Fatalf("reservoir median %g far from 0.5", p50)
	}
	// Same seed, same stream → identical reservoir (replayable sampling).
	d2 := NewReservoirDigest(capacity, 42)
	rng2 := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		d2.Add(rng2.Float64())
	}
	if d.Quantile(0.9) != d2.Quantile(0.9) {
		t.Fatal("same seed produced different reservoirs")
	}
}

func TestReservoirDigestExactBelowCap(t *testing.T) {
	d := NewReservoirDigest(100, 1)
	for i := 1; i <= 50; i++ {
		d.Add(float64(i))
	}
	var exact Digest
	for i := 1; i <= 50; i++ {
		exact.Add(float64(i))
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if d.Quantile(q) != exact.Quantile(q) {
			t.Fatalf("q=%g: capped-below-cap %g != exact %g", q, d.Quantile(q), exact.Quantile(q))
		}
	}
	if NewReservoirDigest(0, 1).cap != 1024 {
		t.Fatal("non-positive capacity must fall back to the 1024 default")
	}
}
