package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Digest collects scalar samples and reports order statistics. The zero
// value stores every sample exactly — experiment runs and cluster.Sim are
// bounded (≤ a few hundred thousand requests) so exactness beats sketching
// there. Long-lived server paths must NOT use the zero value (it grows
// without bound); build them with NewReservoirDigest, which caps memory at
// `capacity` samples: exact up to the cap, then uniform reservoir sampling
// (Vitter's Algorithm R) over everything seen. Count, Sum, and Mean stay
// exact in both modes; capped quantiles are unbiased estimates over the
// reservoir.
type Digest struct {
	samples []float64
	sorted  bool
	sum     float64
	seen    int64 // total samples observed (== len(samples) when uncapped)
	cap     int   // 0 = unbounded exact mode
	rng     *rand.Rand
}

// NewReservoirDigest builds a digest whose memory is capped at capacity
// samples, replacing uniformly at random beyond the cap. The seed makes the
// reservoir's sampling replayable.
func NewReservoirDigest(capacity int, seed int64) *Digest {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Digest{cap: capacity, rng: rand.New(rand.NewSource(seed))}
}

// Add records one sample.
func (d *Digest) Add(v float64) {
	d.seen++
	d.sum += v
	if d.cap > 0 && len(d.samples) >= d.cap {
		// Reservoir replacement: keep each of the seen samples with equal
		// probability cap/seen.
		if j := d.rng.Int63n(d.seen); j < int64(d.cap) {
			d.samples[j] = v
			d.sorted = false
		}
		return
	}
	d.samples = append(d.samples, v)
	d.sorted = false
}

// Count returns the number of samples observed (not the number retained —
// in capped mode at most cap are kept).
func (d *Digest) Count() int { return int(d.seen) }

// Sum returns the sample total (exact in both modes).
func (d *Digest) Sum() float64 { return d.sum }

// Mean returns the sample mean, or 0 with no samples (exact in both modes).
func (d *Digest) Mean() float64 {
	if d.seen == 0 {
		return 0
	}
	return d.sum / float64(d.seen)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using nearest-rank
// interpolation; 0 with no samples.
func (d *Digest) Quantile(q float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
	if q <= 0 {
		return d.samples[0]
	}
	if q >= 1 {
		return d.samples[len(d.samples)-1]
	}
	pos := q * float64(len(d.samples)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return d.samples[lo]
	}
	frac := pos - float64(lo)
	return d.samples[lo]*(1-frac) + d.samples[hi]*frac
}

// P50 returns the median.
func (d *Digest) P50() float64 { return d.Quantile(0.50) }

// P99 returns the 99th percentile — the paper's serving SLO statistic.
func (d *Digest) P99() float64 { return d.Quantile(0.99) }

// Max returns the largest sample, or 0 with no samples.
func (d *Digest) Max() float64 { return d.Quantile(1) }

// CDF is an empirical cumulative distribution over float64 values, used to
// regenerate the paper's Figure 2 (b)–(d) trace-distribution plots.
type CDF struct {
	values []float64
	sorted bool
}

// Add records one value.
func (c *CDF) Add(v float64) {
	c.values = append(c.values, v)
	c.sorted = false
}

// At returns the fraction of values ≤ x.
func (c *CDF) At(x float64) float64 {
	if len(c.values) == 0 {
		return 0
	}
	c.ensureSorted()
	idx := sort.SearchFloat64s(c.values, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.values))
}

// Points samples the CDF at n evenly spaced quantiles and returns
// (value, cumulative-fraction) pairs suitable for plotting.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.values) == 0 || n <= 0 {
		return nil
	}
	c.ensureSorted()
	out := make([][2]float64, 0, n)
	for i := 1; i <= n; i++ {
		frac := float64(i) / float64(n)
		idx := int(frac*float64(len(c.values))) - 1
		if idx < 0 {
			idx = 0
		}
		out = append(out, [2]float64{c.values[idx], frac})
	}
	return out
}

// Count returns the number of recorded values.
func (c *CDF) Count() int { return len(c.values) }

func (c *CDF) ensureSorted() {
	if !c.sorted {
		sort.Float64s(c.values)
		c.sorted = true
	}
}

// FormatPct renders a fraction as a percentage string with one decimal.
func FormatPct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
