package metrics

import (
	"math"
	"sync/atomic"
)

// Histogram is a bounded-memory latency/size aggregator: a fixed set of
// log-scale buckets plus exact min/max/sum tracking. Unlike Digest it never
// grows — memory is O(buckets) regardless of how many samples a long-lived
// server feeds it — and Add is O(1) with no locks (atomic adds only), so it is
// safe to call from every request goroutine of a serving plane. Quantiles are
// estimated by linear interpolation inside the target bucket; the estimate is
// off from the exact order statistic by at most one bucket width (the
// property test pins this against Digest on the same samples).
//
// Bucket i (1 ≤ i < n-1) spans (lo·growth^(i-1), lo·growth^i]; bucket 0 is
// [0, lo] and the last bucket is the overflow (everything past the hi bound).
type Histogram struct {
	lo        float64
	growth    float64
	invLogG   float64 // 1/ln(growth), so Add computes the index in O(1)
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-add
	minBits atomic.Uint64 // float64 bits; starts at +Inf
	maxBits atomic.Uint64 // float64 bits; starts at -Inf
}

// NewHistogram builds a histogram covering [0, hi] with log-scale buckets:
// the first finite bucket ends at lo and each subsequent bucket is growth
// times wider. Values past hi land in a final overflow bucket (counted, and
// bounded above by the observed max). Panics on nonsense bounds.
func NewHistogram(lo, hi, growth float64) *Histogram {
	if lo <= 0 || hi <= lo || growth <= 1 {
		panic("metrics: histogram needs 0 < lo < hi and growth > 1")
	}
	n := int(math.Ceil(math.Log(hi/lo)/math.Log(growth))) + 2 // [0,lo] + finite + overflow
	h := &Histogram{lo: lo, growth: growth, invLogG: 1 / math.Log(growth)}
	h.counts = make([]atomic.Uint64, n)
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// NewLatencyHistogram covers 10µs–60s in seconds with ~25%-wide buckets —
// the serving planes' per-stage latency configuration.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(10e-6, 60, 1.25)
}

// bucketIndex maps a sample to its bucket.
func (h *Histogram) bucketIndex(v float64) int {
	if v <= h.lo {
		return 0
	}
	i := 1 + int(math.Floor(math.Log(v/h.lo)*h.invLogG))
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	return i
}

// upperBound returns bucket i's inclusive upper edge (overflow: +Inf).
func (h *Histogram) upperBound(i int) float64 {
	if i >= len(h.counts)-1 {
		return math.Inf(1)
	}
	return h.lo * math.Pow(h.growth, float64(i))
}

// BucketWidth returns the width of the bucket that holds v — the histogram's
// quantile error bound at that magnitude. Overflow-bucket widths are reported
// as the last finite bucket's width.
func (h *Histogram) BucketWidth(v float64) float64 {
	i := h.bucketIndex(v)
	if i >= len(h.counts)-1 {
		i = len(h.counts) - 2
	}
	if i == 0 {
		return h.lo
	}
	return h.upperBound(i) - h.upperBound(i-1)
}

// Add records one sample. Negative samples clamp to 0. Safe for concurrent
// use; O(1), allocation-free.
func (h *Histogram) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	h.counts[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	addFloatBits(&h.sumBits, v)
	minFloatBits(&h.minBits, v)
	maxFloatBits(&h.maxBits, v)
}

// addFloatBits CAS-adds v into a float64 stored as uint64 bits.
func addFloatBits(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func minFloatBits(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func maxFloatBits(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return int64(h.count.Load()) }

// Sum returns the sample total.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Mean returns the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Min and Max return the exact observed extremes (0 with no samples; a
// concurrent snapshot racing the very first Add can also read 0 briefly).
func (h *Histogram) Min() float64 {
	v := math.Float64frombits(h.minBits.Load())
	if h.count.Load() == 0 || math.IsInf(v, 1) {
		return 0
	}
	return v
}

func (h *Histogram) Max() float64 {
	v := math.Float64frombits(h.maxBits.Load())
	if h.count.Load() == 0 || math.IsInf(v, -1) {
		return 0
	}
	return v
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1): find the bucket holding the
// target rank, interpolate linearly inside it, clamp to the observed
// [Min, Max]. Exact at the extremes; within one bucket width elsewhere.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	// 1-based target rank, mirroring Digest's interpolated position.
	target := q*float64(total-1) + 1
	cum := 0.0
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lower := 0.0
			if i > 0 {
				lower = h.upperBound(i - 1)
			}
			upper := h.upperBound(i)
			if math.IsInf(upper, 1) {
				upper = h.Max()
			}
			frac := (target - cum) / n
			v := lower + frac*(upper-lower)
			return clamp(v, h.Min(), h.Max())
		}
		cum += n
	}
	return h.Max()
}

// P50 returns the estimated median.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P99 returns the estimated 99th percentile.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
