package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n < 0 is ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous metric.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry is a lightweight named-metric registry: counters, gauges,
// callback gauges, and bounded histograms, rendered in Prometheus plain-text
// exposition format by WriteText. Metric names carry their label block inline
// (e.g. `bat_fetch_total{outcome="hit"}`), so the registry stays a flat map
// and the hot path is one lock-free lookup after first use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback gauge evaluated at scrape time (e.g. queue
// depth, breaker state). Re-registering a name replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// LatencyHistogram returns the named latency histogram (10µs–60s log-scale
// buckets), creating it on first use.
func (r *Registry) LatencyHistogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewLatencyHistogram()
		r.hists[name] = h
	}
	return h
}

// WriteText renders every metric in Prometheus plain-text exposition format,
// sorted by name so scrapes are diffable. Histograms render summary-style:
// quantile series plus _count and _sum.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	lines := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.gaugeFns)+4*len(r.hists))
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s %g", name, g.Value()))
	}
	fns := make(map[string]func() float64, len(r.gaugeFns))
	for name, fn := range r.gaugeFns {
		fns[name] = fn
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	r.mu.Unlock()
	// Callbacks run outside the registry lock: they may grab their own locks
	// (admission stats, breaker state) and must not deadlock against a
	// concurrent metric registration.
	for name, fn := range fns {
		lines = append(lines, fmt.Sprintf("%s %g", name, fn()))
	}
	for name, h := range hists {
		for _, q := range []float64{0.5, 0.9, 0.99} {
			lines = append(lines, fmt.Sprintf("%s %g", withLabel(name, fmt.Sprintf(`quantile="%g"`, q)), h.Quantile(q)))
		}
		base, labels := splitName(name)
		lines = append(lines, fmt.Sprintf("%s_count%s %d", base, labels, h.Count()))
		lines = append(lines, fmt.Sprintf("%s_sum%s %g", base, labels, h.Sum()))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}

// withLabel merges one `k="v"` pair into a metric name that may already carry
// a label block: name{a="b"} + c="d" → name{a="b",c="d"}.
func withLabel(name, label string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + label + "}"
	}
	return name + "{" + label + "}"
}

// splitName separates a metric name from its inline label block, so suffixed
// series (_count, _sum) keep the suffix on the name proper.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}
