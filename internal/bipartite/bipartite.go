// Package bipartite implements Bipartite Attention (§4 of the paper): the
// two alternative prompt organizations for generative-recommender inference —
// User-as-prefix and Item-as-prefix — together with the attention masks and
// position-ID assignments that make candidate items order-independent and
// their KV caches context-independent.
//
// The key ideas encoded here:
//
//   - Candidate items never attend to each other (block-diagonal item mask,
//     following HSTU), so items behave as an unordered set.
//   - All items share the same starting position ID — the user-prefix length
//     under User-as-prefix, zero under Item-as-prefix — so an item's keys are
//     identical no matter which request it appears in.
//   - Under Item-as-prefix, items attend only to themselves, which makes each
//     item's KV cache computable offline, in isolation, and shareable across
//     every user (§4.3).
package bipartite

import (
	"fmt"

	"bat/internal/model"
)

// PrefixKind selects which side of the bipartite prompt is the cached prefix.
type PrefixKind int

const (
	// UserPrefix organizes the prompt as [User, Items..., Instr] — the
	// conventional layout (UP in the paper's evaluation).
	UserPrefix PrefixKind = iota
	// ItemPrefix organizes the prompt as [Items..., User, Instr] (IP).
	ItemPrefix
)

// String implements fmt.Stringer.
func (k PrefixKind) String() string {
	switch k {
	case UserPrefix:
		return "user-as-prefix"
	case ItemPrefix:
		return "item-as-prefix"
	default:
		return fmt.Sprintf("PrefixKind(%d)", int(k))
	}
}

// SegmentKind labels a token span's role in the prompt.
type SegmentKind int

const (
	SegUser SegmentKind = iota
	SegItem
	SegInstr
)

// String implements fmt.Stringer.
func (k SegmentKind) String() string {
	switch k {
	case SegUser:
		return "user"
	case SegItem:
		return "item"
	case SegInstr:
		return "instr"
	case SegDisc:
		return "disc"
	default:
		return fmt.Sprintf("SegmentKind(%d)", int(k))
	}
}

// Segment is a contiguous token span within a layout.
type Segment struct {
	Kind SegmentKind
	// Item is the candidate index for SegItem segments, -1 otherwise.
	Item int
	// Start is the absolute index of the segment's first token; Len its size.
	Start, Len int
	// PosStart is the position ID assigned to the segment's first token;
	// positions increase by one within the segment.
	PosStart int
}

// Prompt is the raw material of a ranking request: user profile tokens, the
// retrieved candidate items' tokens, and instruction tokens. The final
// instruction token is the discriminant token whose logits score candidates.
type Prompt struct {
	User  []int
	Items [][]int
	Instr []int
}

// Validate checks the prompt is rankable.
func (p Prompt) Validate() error {
	if len(p.Items) == 0 {
		return fmt.Errorf("bipartite: prompt has no candidate items")
	}
	for i, it := range p.Items {
		if len(it) == 0 {
			return fmt.Errorf("bipartite: candidate item %d has no tokens", i)
		}
	}
	if len(p.Instr) == 0 {
		return fmt.Errorf("bipartite: prompt needs at least one instruction token (the discriminant token)")
	}
	return nil
}

// Layout is a fully resolved prompt: token IDs, position IDs, segment table,
// and the attention mask implied by the chosen prefix kind.
type Layout struct {
	Kind     PrefixKind
	Tokens   []int
	Pos      []int
	Segments []Segment

	// PrefixLen is the number of leading tokens eligible for KV caching:
	// the user segment under UserPrefix, all item segments under ItemPrefix.
	PrefixLen int

	// seg[i] is the index into Segments owning token i.
	seg []int
}

// Build constructs the layout for a prompt under the given prefix kind.
func Build(kind PrefixKind, p Prompt) (*Layout, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	switch kind {
	case UserPrefix:
		return buildUserPrefix(p), nil
	case ItemPrefix:
		return buildItemPrefix(p), nil
	default:
		return nil, fmt.Errorf("bipartite: unknown prefix kind %d", int(kind))
	}
}

// maxItemLen returns the longest candidate's token count.
func maxItemLen(items [][]int) int {
	m := 0
	for _, it := range items {
		if len(it) > m {
			m = len(it)
		}
	}
	return m
}

func buildUserPrefix(p Prompt) *Layout {
	l := &Layout{Kind: UserPrefix}
	itemStart := len(p.User) // shared starting position for every item
	l.addSegment(SegUser, -1, p.User, 0)
	for i, it := range p.Items {
		l.addSegment(SegItem, i, it, itemStart)
	}
	l.addSegment(SegInstr, -1, p.Instr, itemStart+maxItemLen(p.Items))
	l.PrefixLen = len(p.User)
	return l
}

func buildItemPrefix(p Prompt) *Layout {
	l := &Layout{Kind: ItemPrefix}
	userStart := maxItemLen(p.Items) // items share starting position 0
	for i, it := range p.Items {
		l.addSegment(SegItem, i, it, 0)
	}
	l.addSegment(SegUser, -1, p.User, userStart)
	l.addSegment(SegInstr, -1, p.Instr, userStart+len(p.User))
	l.PrefixLen = 0
	for _, it := range p.Items {
		l.PrefixLen += len(it)
	}
	return l
}

func (l *Layout) addSegment(kind SegmentKind, item int, tokens []int, posStart int) {
	if len(tokens) == 0 && kind == SegUser {
		// An empty user profile is legal (brand-new user); record a
		// zero-length segment so segment indices stay aligned with roles.
		l.Segments = append(l.Segments, Segment{Kind: kind, Item: item, Start: len(l.Tokens), Len: 0, PosStart: posStart})
		return
	}
	segIdx := len(l.Segments)
	l.Segments = append(l.Segments, Segment{Kind: kind, Item: item, Start: len(l.Tokens), Len: len(tokens), PosStart: posStart})
	for off, tok := range tokens {
		l.Tokens = append(l.Tokens, tok)
		l.Pos = append(l.Pos, posStart+off)
		l.seg = append(l.seg, segIdx)
	}
}

// Len returns the total token count.
func (l *Layout) Len() int { return len(l.Tokens) }

// DiscriminantIndex returns the absolute index of the discriminant token —
// the last instruction token, whose logits rank the candidates.
func (l *Layout) DiscriminantIndex() int { return len(l.Tokens) - 1 }

// SegmentOf returns the segment owning absolute token index i.
func (l *Layout) SegmentOf(i int) Segment { return l.Segments[l.seg[i]] }

// ItemSegments returns the item segments in candidate order.
func (l *Layout) ItemSegments() []Segment {
	out := make([]Segment, 0, len(l.Segments))
	for _, s := range l.Segments {
		if s.Kind == SegItem {
			out = append(out, s)
		}
	}
	return out
}

// PICItemStart is the constant position items are re-anchored to under PIC.
// Being request-independent, PIC item caches remain shareable across users;
// the offset stands in for the paper's "notation tokens such as 'Candidate
// items:'" (§4.2).
const PICItemStart = 64

// PICAdjust applies position-independent-caching (CacheBlend/EPIC-style)
// position correction to an Item-as-prefix layout for position-sensitive
// base models (§4.2 "Sensitivity to Base Models", §6.3):
//
//   - the recomputed user tokens regain their training-time positions
//     (starting at 0, as under User-as-prefix);
//   - item segments are re-anchored at the constant PICItemStart offset, so
//     a model biased toward early positions no longer mistakes the candidate
//     block for user history.
//
// Item caches for PIC serving must be precomputed at PICItemStart (see
// ComputeItemCacheAt); they stay context-independent and shareable.
func (l *Layout) PICAdjust() {
	if l.Kind != ItemPrefix {
		return // UP layouts already place the user at position 0
	}
	maxItem := 0
	userLen := 0
	for si := range l.Segments {
		seg := &l.Segments[si]
		switch seg.Kind {
		case SegUser:
			seg.PosStart = 0
			userLen = seg.Len
		case SegItem:
			seg.PosStart = PICItemStart
			if seg.Len > maxItem {
				maxItem = seg.Len
			}
		}
	}
	for si := range l.Segments {
		seg := &l.Segments[si]
		if seg.Kind == SegInstr {
			seg.PosStart = PICItemStart + maxItem + userLen
		}
		for off := 0; off < seg.Len; off++ {
			l.Pos[seg.Start+off] = seg.PosStart + off
		}
	}
}

// Mask returns the Bipartite Attention mask for this layout. Rules, applied
// on top of causality (enforced by the model):
//
//   - tokens within one segment attend causally to each other;
//   - item tokens never attend to other items' tokens (HSTU-style isolation);
//   - under UserPrefix, item tokens attend to the user segment; under
//     ItemPrefix they attend only to themselves (cache independence);
//   - user tokens attend to item tokens only under ItemPrefix (where items
//     precede them);
//   - instruction tokens attend to everything.
func (l *Layout) Mask() model.Mask {
	return layoutMask{l}
}

type layoutMask struct{ l *Layout }

// ExactKeyRanges implements model.ExactKeyRanger: a layout query's visible
// keys are the union of at most three contiguous segment spans, so the
// attention loop can walk exactly them — no per-key Allowed calls, and no
// scoring of the masked keys (other candidates' tokens) that sit between a
// query's visible spans. The spans mirror Allowed case by case; the
// TestLayoutMaskExactRangesMatchAllowed property pins the equivalence.
func (m layoutMask) ExactKeyRanges(q int, dst [][2]int) [][2]int {
	l := m.l
	si := l.seg[q]
	qs := l.Segments[si]
	span := func(s Segment) [2]int { return [2]int{s.Start, s.Start + s.Len} }
	switch qs.Kind {
	case SegInstr:
		// Instruction tokens read everything (causality clamps past q).
		return append(dst, [2]int{0, len(l.Tokens)})
	case SegDisc:
		// Discriminant i reads the user, candidate i, and itself. Segment
		// order is [user, items..., discs...] under UserPrefix and
		// [items..., user, discs...] under ItemPrefix; disc i sits at segment
		// index nItems+1+i either way.
		nItems := si - 1 - qs.Item
		if l.Kind == UserPrefix {
			if user := l.Segments[0]; user.Len > 0 {
				dst = append(dst, span(user))
			}
			return append(dst, span(l.Segments[1+qs.Item]), span(qs))
		}
		dst = append(dst, span(l.Segments[qs.Item]))
		if user := l.Segments[nItems]; user.Len > 0 {
			dst = append(dst, span(user))
		}
		return append(dst, span(qs))
	case SegUser:
		if l.Kind == ItemPrefix {
			// The item block [0, PrefixLen) and the user segment are
			// contiguous, and the user reads the whole item set.
			return append(dst, [2]int{0, qs.Start + qs.Len})
		}
		return append(dst, span(qs))
	case SegItem:
		if l.Kind == UserPrefix {
			if user := l.Segments[0]; user.Len > 0 {
				if user.Start+user.Len == qs.Start {
					// Item 0 follows the user directly; one merged span.
					return append(dst, [2]int{user.Start, qs.Start + qs.Len})
				}
				return append(dst, span(user), span(qs))
			}
		}
		return append(dst, span(qs))
	default:
		return append(dst, span(qs))
	}
}

// Allowed implements model.Mask.
func (m layoutMask) Allowed(q, k int) bool {
	qs := m.l.Segments[m.l.seg[q]]
	ks := m.l.Segments[m.l.seg[k]]
	if m.l.seg[q] == m.l.seg[k] {
		return true
	}
	switch qs.Kind {
	case SegInstr:
		return true
	case SegDisc:
		// Per-item discriminants read the user and their own candidate only
		// (§4.2's multi-discriminant extension).
		return m.allowedDisc(qs, ks)
	case SegUser:
		// Under ItemPrefix the user reads the item set; under UserPrefix
		// nothing precedes the user.
		return m.l.Kind == ItemPrefix && ks.Kind == SegItem
	case SegItem:
		// Items never see other items. Under UserPrefix they read the user
		// context; under ItemPrefix they are fully independent.
		return m.l.Kind == UserPrefix && ks.Kind == SegUser
	default:
		return false
	}
}
