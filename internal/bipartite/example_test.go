package bipartite_test

import (
	"fmt"

	"bat/internal/bipartite"
	"bat/internal/model"
)

// Example demonstrates the core mechanism: the same prompt organized both
// ways, with Item-as-prefix minting per-item caches a second request reuses.
func Example() {
	w := model.NewWeights(model.TinyGR(64), 1)
	prompt := bipartite.Prompt{
		User:  []int{10, 11, 12, 13},       // user profile tokens
		Items: [][]int{{20, 21}, {30, 31}}, // two candidate items
		Instr: []int{40, 41},               // instruction + discriminant
	}

	up, _ := bipartite.Build(bipartite.UserPrefix, prompt)
	fmt.Printf("user-as-prefix: %d tokens, cacheable prefix %d\n", up.Len(), up.PrefixLen)

	ip, _ := bipartite.Build(bipartite.ItemPrefix, prompt)
	fmt.Printf("item-as-prefix: %d tokens, cacheable prefix %d\n", ip.Len(), ip.PrefixLen)

	cold, _ := bipartite.Execute(w, ip, bipartite.CacheSet{})
	fmt.Printf("cold run: computed %d, minted %d item caches\n",
		cold.ComputedTokens, len(cold.NewItemCaches))

	warm, _ := bipartite.Execute(w, ip, bipartite.CacheSet{Items: cold.NewItemCaches})
	fmt.Printf("warm run: computed %d, reused %d\n", warm.ComputedTokens, warm.ReusedTokens)

	// Output:
	// user-as-prefix: 10 tokens, cacheable prefix 4
	// item-as-prefix: 10 tokens, cacheable prefix 4
	// cold run: computed 10, minted 2 item caches
	// warm run: computed 6, reused 4
}
