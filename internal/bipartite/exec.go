package bipartite

import (
	"fmt"

	"bat/internal/model"
	"bat/internal/tensor"
)

// ComputeItemCache precomputes one candidate item's KV cache. Because
// Item-as-prefix items attend only to themselves and start at position 0,
// this is a plain causal forward over the item's tokens in isolation — which
// is exactly why the result is reusable across every user and request (§4.3).
func ComputeItemCache(w *model.Weights, itemTokens []int) *model.KVCache {
	return ComputeItemCacheAt(w, itemTokens, 0)
}

// ComputeItemCacheAt precomputes an item cache anchored at an arbitrary
// start position — PIC serving anchors items at PICItemStart. The cache is
// valid for any layout that assigns the item the same PosStart.
func ComputeItemCacheAt(w *model.Weights, itemTokens []int, startPos int) *model.KVCache {
	return ComputeItemCacheInto(w, itemTokens, startPos, model.NewKVCache(w.Config()))
}

// ComputeItemCacheInto is ComputeItemCacheAt with caller-provided storage —
// pass an arena-backed cache (BlockArena.NewKVCache) to precompute item
// prefixes into shared pages.
func ComputeItemCacheInto(w *model.Weights, itemTokens []int, startPos int, cache *model.KVCache) *model.KVCache {
	pos := make([]int, len(itemTokens))
	for i := range pos {
		pos[i] = startPos + i
	}
	w.Forward(itemTokens, pos, nil, cache)
	return cache
}

// ComputeUserCache precomputes a user's profile KV cache for User-as-prefix
// reuse across the user's own multi-turn requests.
func ComputeUserCache(w *model.Weights, userTokens []int) *model.KVCache {
	return ComputeItemCache(w, userTokens) // identical math: causal from position 0
}

// CacheSet carries the prefix caches available to Execute. Both fields are
// optional; anything missing is recomputed.
type CacheSet struct {
	// User is the user-profile cache, consulted for UserPrefix layouts. It
	// must cover exactly the layout's user segment.
	User *model.KVCache
	// Items maps candidate index (position in Prompt.Items) to that item's
	// precomputed cache, consulted for ItemPrefix layouts.
	Items map[int]*model.KVCache
}

// Run is the outcome of executing a layout.
type Run struct {
	Layout *Layout
	// Hidden holds final hidden states for the computed (non-cached) tokens,
	// i.e. layout tokens [Layout.Len()-ComputedTokens, Layout.Len()).
	Hidden *tensor.Matrix
	// Discriminant is the final hidden state of the discriminant token.
	Discriminant []float32
	// ReusedTokens counts prefix tokens served from cache; ComputedTokens
	// counts tokens that went through the transformer in this call
	// (including any item caches recomputed on a miss).
	ReusedTokens, ComputedTokens int
	// NewItemCaches holds per-candidate caches computed on a miss during an
	// ItemPrefix run, for the caller to admit into its cache pool.
	NewItemCaches map[int]*model.KVCache
	// NewUserCache holds the user cache computed during a UserPrefix run
	// that had no cache hit.
	NewUserCache *model.KVCache
	// DedupedTokens counts prefix tokens whose forward was shared from
	// another identical in-batch miss (ExecuteBatch's plan-time dedup): the
	// tokens are still accounted in ComputedTokens — so responses match
	// per-request Execute exactly — but their transformer pass ran once for
	// the whole batch and this run received a bit-identical clone.
	DedupedTokens int
}

// Execute runs GR inference for a layout, reusing whatever caches contains.
// Caller-supplied caches are never mutated.
func Execute(w *model.Weights, l *Layout, caches CacheSet) (*Run, error) {
	return ExecuteCancelable(w, l, caches, nil)
}

// ExecuteCancelable is Execute with a cooperative cancellation hook: cancel
// (nil = never cancel) is polled at phase boundaries — before the prefix
// forward, before miss recomputes, and before the suffix forward — so a
// request whose client disconnected or whose deadline expired stops burning
// model compute at the next boundary instead of running to completion.
func ExecuteCancelable(w *model.Weights, l *Layout, caches CacheSet, cancel func() error) (*Run, error) {
	if err := checkCancel(cancel); err != nil {
		return nil, err
	}
	switch l.Kind {
	case UserPrefix:
		return executeUserPrefix(w, l, caches.User, cancel)
	case ItemPrefix:
		return executeItemPrefix(w, l, caches.Items, cancel)
	default:
		return nil, fmt.Errorf("bipartite: unknown layout kind %d", int(l.Kind))
	}
}

func checkCancel(cancel func() error) error {
	if cancel == nil {
		return nil
	}
	return cancel()
}

func executeUserPrefix(w *model.Weights, l *Layout, userCache *model.KVCache, cancel func() error) (*Run, error) {
	run := &Run{Layout: l}
	var ctx *model.KVCache
	if userCache != nil {
		if userCache.Len() != l.PrefixLen {
			return nil, fmt.Errorf("bipartite: user cache covers %d tokens, layout prefix is %d", userCache.Len(), l.PrefixLen)
		}
		ctx = userCache.Clone()
		run.ReusedTokens = l.PrefixLen
	} else {
		ctx = model.NewKVCache(w.Config())
		if l.PrefixLen > 0 {
			w.Forward(l.Tokens[:l.PrefixLen], l.Pos[:l.PrefixLen], l.Mask(), ctx)
			run.ComputedTokens += l.PrefixLen
			run.NewUserCache = ctx.Clone()
		}
	}
	if err := checkCancel(cancel); err != nil {
		ctx.Release()
		return nil, err
	}
	suffix := l.Tokens[l.PrefixLen:]
	pos := l.Pos[l.PrefixLen:]
	run.Hidden = w.Forward(suffix, pos, l.Mask(), ctx)
	ctx.Release() // reclaim arena pages; no-op for contiguous storage
	run.ComputedTokens += len(suffix)
	run.Discriminant = run.Hidden.Row(run.Hidden.Rows - 1)
	return run, nil
}

func executeItemPrefix(w *model.Weights, l *Layout, itemCaches map[int]*model.KVCache, cancel func() error) (*Run, error) {
	run := &Run{Layout: l}
	segs := l.ItemSegments()
	parts := make([]*model.KVCache, len(segs))
	var missIdx []int
	for si, seg := range segs {
		if c, ok := itemCaches[seg.Item]; ok && c != nil {
			if c.Len() != seg.Len {
				return nil, fmt.Errorf("bipartite: item %d cache covers %d tokens, segment has %d", seg.Item, c.Len(), seg.Len)
			}
			parts[si] = c
			run.ReusedTokens += seg.Len
			continue
		}
		missIdx = append(missIdx, si)
	}
	if err := checkCancel(cancel); err != nil {
		return nil, err
	}
	// Recompute every miss with the layout's own anchor position so PIC
	// layouts produce PIC-valid caches. Items attend only to themselves, so
	// the misses are independent forwards and fan out across the worker
	// pool; each writes only its own parts slot, keeping results identical
	// to the serial loop. Bookkeeping stays on this goroutine.
	tensor.Parallel(len(missIdx), func(m int) {
		seg := segs[missIdx[m]]
		parts[missIdx[m]] = ComputeItemCacheAt(w, l.Tokens[seg.Start:seg.Start+seg.Len], seg.PosStart)
	})
	for _, si := range missIdx {
		seg := segs[si]
		run.ComputedTokens += seg.Len
		if run.NewItemCaches == nil {
			run.NewItemCaches = make(map[int]*model.KVCache)
		}
		run.NewItemCaches[seg.Item] = parts[si]
	}
	if err := checkCancel(cancel); err != nil {
		return nil, err
	}
	// Assemble the context: copies for contiguous caches, block sharing with
	// copy-on-write for arena-backed ones — either way the stored caches
	// stay untouched.
	ctx := model.ConcatCaches(parts...)
	suffix := l.Tokens[l.PrefixLen:]
	pos := l.Pos[l.PrefixLen:]
	run.Hidden = w.Forward(suffix, pos, l.Mask(), ctx)
	ctx.Release() // reclaim arena pages; no-op for contiguous storage
	run.ComputedTokens += len(suffix)
	run.Discriminant = run.Hidden.Row(run.Hidden.Rows - 1)
	return run, nil
}
