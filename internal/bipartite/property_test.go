package bipartite

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bat/internal/model"
	"bat/internal/tensor"
)

// randomPrompt derives a structurally valid prompt from fuzz bytes.
func randomPrompt(seed int64) Prompt {
	rng := rand.New(rand.NewSource(seed))
	userLen := rng.Intn(12) // 0 is legal (new user)
	nItems := 1 + rng.Intn(6)
	instrLen := 1 + rng.Intn(3)
	p := Prompt{}
	tok := func() int { return rng.Intn(testVocab) }
	for i := 0; i < userLen; i++ {
		p.User = append(p.User, tok())
	}
	for i := 0; i < nItems; i++ {
		item := make([]int, 1+rng.Intn(4))
		for j := range item {
			item[j] = tok()
		}
		p.Items = append(p.Items, item)
	}
	for i := 0; i < instrLen; i++ {
		p.Instr = append(p.Instr, tok())
	}
	return p
}

// TestPropertyLayoutWellFormed: for arbitrary prompt shapes, both layouts
// preserve every token exactly once, keep positions consistent with segment
// metadata, and bound PrefixLen by the token count.
func TestPropertyLayoutWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		p := randomPrompt(seed)
		for _, kind := range []PrefixKind{UserPrefix, ItemPrefix} {
			l, err := Build(kind, p)
			if err != nil {
				return false
			}
			want := len(p.User) + len(p.Instr)
			for _, it := range p.Items {
				want += len(it)
			}
			if l.Len() != want || l.PrefixLen < 0 || l.PrefixLen > l.Len() {
				return false
			}
			// Token-by-token: position equals segment PosStart + offset.
			for i := 0; i < l.Len(); i++ {
				seg := l.SegmentOf(i)
				if l.Pos[i] != seg.PosStart+(i-seg.Start) {
					return false
				}
			}
			// The mask never allows cross-item edges.
			for q := 0; q < l.Len(); q++ {
				for k := 0; k < q; k++ {
					qs, ks := l.SegmentOf(q), l.SegmentOf(k)
					if qs.Kind == SegItem && ks.Kind == SegItem && qs.Item != ks.Item && l.Mask().Allowed(q, k) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCacheReuseExactness: for arbitrary prompts, serving any layout
// from its own freshly minted caches reproduces the cold discriminant state
// exactly.
func TestPropertyCacheReuseExactness(t *testing.T) {
	w := testWeights()
	f := func(seed int64) bool {
		p := randomPrompt(seed)
		for _, kind := range []PrefixKind{UserPrefix, ItemPrefix} {
			l, err := Build(kind, p)
			if err != nil {
				return false
			}
			cold, err := Execute(w, l, CacheSet{})
			if err != nil {
				return false
			}
			warm, err := Execute(w, l, CacheSet{User: cold.NewUserCache, Items: cold.NewItemCaches})
			if err != nil {
				return false
			}
			if tensor.MaxAbsDiff(cold.Discriminant, warm.Discriminant) != 0 {
				return false
			}
			if warm.ReusedTokens != l.PrefixLen && len(p.User) > 0 {
				// UP with an empty user has no cache to reuse; otherwise the
				// whole prefix must come from cache.
				if !(kind == UserPrefix && len(p.User) == 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPermutationInvariance: for arbitrary prompts, rotating the
// candidate list never changes the discriminant state beyond float noise.
func TestPropertyPermutationInvariance(t *testing.T) {
	w := testWeights()
	f := func(seed int64) bool {
		p := randomPrompt(seed)
		if len(p.Items) < 2 {
			return true
		}
		rot := Prompt{User: p.User, Instr: p.Instr}
		rot.Items = append(append([][]int{}, p.Items[1:]...), p.Items[0])
		for _, kind := range []PrefixKind{UserPrefix, ItemPrefix} {
			l1, err := Build(kind, p)
			if err != nil {
				return false
			}
			l2, err := Build(kind, rot)
			if err != nil {
				return false
			}
			r1, err := Execute(w, l1, CacheSet{})
			if err != nil {
				return false
			}
			r2, err := Execute(w, l2, CacheSet{})
			if err != nil {
				return false
			}
			if tensor.MaxAbsDiff(r1.Discriminant, r2.Discriminant) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyHSTUSharesInvariants: the same cache-exactness property holds
// under HSTU-style attention (the paper's §4.2 extension).
func TestPropertyHSTUSharesInvariants(t *testing.T) {
	cfg := model.TinyGR(testVocab)
	cfg.Name = "TinyHSTU"
	cfg.Attn = model.AttnHSTU
	w := model.NewWeights(cfg, 42)
	f := func(seed int64) bool {
		p := randomPrompt(seed)
		l, err := Build(ItemPrefix, p)
		if err != nil {
			return false
		}
		cold, err := Execute(w, l, CacheSet{})
		if err != nil {
			return false
		}
		warm, err := Execute(w, l, CacheSet{Items: cold.NewItemCaches})
		if err != nil {
			return false
		}
		return tensor.MaxAbsDiff(cold.Discriminant, warm.Discriminant) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestArenaBackedServing: precompute item caches into a shared BlockArena,
// serve many requests against them, and verify (a) results match flat
// storage exactly and (b) the arena reaches a steady state instead of
// growing per request — Execute releases each assembled context.
func TestArenaBackedServing(t *testing.T) {
	w := testWeights()
	arena, err := model.NewBlockArena(w.Config(), 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	p := testPrompt(rng, 6, 5, 4, 2) // items exactly one block long

	// Offline: per-item caches in the arena.
	l, err := Build(ItemPrefix, p)
	if err != nil {
		t.Fatal(err)
	}
	caches := map[int]*model.KVCache{}
	for _, seg := range l.ItemSegments() {
		caches[seg.Item] = ComputeItemCacheInto(
			w, l.Tokens[seg.Start:seg.Start+seg.Len], 0, arena.NewKVCache())
	}

	flatRef, err := Execute(w, l, CacheSet{})
	if err != nil {
		t.Fatal(err)
	}

	var grown int
	for r := 0; r < 8; r++ {
		before := arena.Stats().BlocksAllocated
		run, err := Execute(w, l, CacheSet{Items: caches})
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(run.Discriminant, flatRef.Discriminant); d != 0 {
			t.Fatalf("request %d deviates by %v", r, d)
		}
		if run.ReusedTokens != l.PrefixLen {
			t.Fatalf("request %d reused %d of %d", r, run.ReusedTokens, l.PrefixLen)
		}
		if r > 1 && arena.Stats().BlocksAllocated > before {
			grown++
		}
	}
	if grown > 0 {
		t.Fatalf("arena grew on %d steady-state requests; contexts are leaking pages", grown)
	}
	if arena.Stats().ShareEvents == 0 {
		t.Fatal("no block sharing happened")
	}
	// Stored item caches remain intact and reusable.
	for i, c := range caches {
		if c.Len() != 4 {
			t.Fatalf("item %d cache disturbed: %d tokens", i, c.Len())
		}
	}
}
