package bipartite

import (
	"math/rand"
	"testing"

	"bat/internal/tensor"
)

func multiDiscPrompt(rng *rand.Rand, userLen, nItems, itemLen int) Prompt {
	p := testPrompt(rng, userLen, nItems, itemLen, 1)
	return p
}

func TestBuildMultiDiscShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := multiDiscPrompt(rng, 5, 3, 2)
	for _, kind := range []PrefixKind{UserPrefix, ItemPrefix} {
		l, err := BuildMultiDisc(kind, p)
		if err != nil {
			t.Fatal(err)
		}
		// user + 3 items * 2 + 3 discriminants.
		if l.Len() != 5+6+3 {
			t.Fatalf("%v: layout length %d", kind, l.Len())
		}
		discs := l.DiscriminantIndices()
		if len(discs) != 3 {
			t.Fatalf("%v: %d discriminants", kind, len(discs))
		}
		// All discriminants share a position (unordered set).
		pos := l.Pos[discs[0]]
		for _, d := range discs {
			if l.Pos[d] != pos {
				t.Fatalf("%v: discriminant positions differ", kind)
			}
		}
	}
}

func TestBuildMultiDiscRequiresSingleInstr(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := testPrompt(rng, 4, 2, 2, 3)
	if _, err := BuildMultiDisc(UserPrefix, p); err == nil {
		t.Fatal("multi-token instr accepted")
	}
}

func TestMultiDiscMaskRules(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := multiDiscPrompt(rng, 4, 3, 2)
	l, err := BuildMultiDisc(UserPrefix, p)
	if err != nil {
		t.Fatal(err)
	}
	m := l.Mask()
	discs := l.DiscriminantIndices()
	var userIdx, item0Idx, item1Idx int
	for i := 0; i < l.Len(); i++ {
		seg := l.SegmentOf(i)
		switch {
		case seg.Kind == SegUser:
			userIdx = i
		case seg.Kind == SegItem && seg.Item == 0:
			item0Idx = i
		case seg.Kind == SegItem && seg.Item == 1:
			item1Idx = i
		}
	}
	d0, d1 := discs[0], discs[1]
	if !m.Allowed(d0, userIdx) {
		t.Fatal("disc must attend the user")
	}
	if !m.Allowed(d0, item0Idx) {
		t.Fatal("disc 0 must attend item 0")
	}
	if m.Allowed(d0, item1Idx) {
		t.Fatal("disc 0 must not attend item 1")
	}
	if m.Allowed(d0, d1) || m.Allowed(d1, d0) {
		t.Fatal("discriminants must not attend each other")
	}
}

// TestMultiDiscPairwiseIsolation: candidate i's score must depend only on
// the user and candidate i — changing candidate j leaves score i untouched.
func TestMultiDiscPairwiseIsolation(t *testing.T) {
	w := testWeights()
	rng := rand.New(rand.NewSource(4))
	p := multiDiscPrompt(rng, 5, 4, 3)
	cands := []int{10, 20, 30, 40}

	score := func(p Prompt, kind PrefixKind) []float32 {
		l, err := BuildMultiDisc(kind, p)
		if err != nil {
			t.Fatal(err)
		}
		_, states, err := ExecuteMultiDisc(w, l, CacheSet{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := ScoreMultiDisc(w, states, cands)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// Under UserPrefix isolation is exact: the user never reads items, so
	// disc i depends on the user and candidate i only.
	base := score(p, UserPrefix)
	mutated := Prompt{User: p.User, Instr: p.Instr}
	mutated.Items = append([][]int{}, p.Items...)
	mutated.Items[2] = []int{99, 98, 97}
	got := score(mutated, UserPrefix)
	for i := range base {
		if i == 2 {
			if got[i] == base[i] {
				t.Fatal("mutated candidate's own score unchanged")
			}
			continue
		}
		if got[i] != base[i] {
			t.Fatalf("candidate %d score changed by mutating candidate 2", i)
		}
	}

	// Under ItemPrefix the user reads the item set, so other candidates'
	// scores shift weakly through the user pathway — the coupling must stay
	// far below the mutated candidate's own change.
	baseIP := score(p, ItemPrefix)
	gotIP := score(mutated, ItemPrefix)
	own := abs32(gotIP[2] - baseIP[2])
	for i := range baseIP {
		if i == 2 {
			continue
		}
		if leak := abs32(gotIP[i] - baseIP[i]); leak > own/2 {
			t.Fatalf("IP: candidate %d leaked %v of the mutated candidate's %v change", i, leak, own)
		}
	}
}

func abs32(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}

// TestMultiDiscPermutationEquivariance: permuting candidates permutes the
// scores exactly.
func TestMultiDiscPermutationEquivariance(t *testing.T) {
	w := testWeights()
	rng := rand.New(rand.NewSource(5))
	p := multiDiscPrompt(rng, 6, 5, 2)
	cands := []int{11, 22, 33, 44, 55}

	l, err := BuildMultiDisc(ItemPrefix, p)
	if err != nil {
		t.Fatal(err)
	}
	_, states, err := ExecuteMultiDisc(w, l, CacheSet{})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := ScoreMultiDisc(w, states, cands)

	perm := []int{4, 2, 0, 3, 1}
	permuted := Prompt{User: p.User, Instr: p.Instr}
	permCands := make([]int, len(perm))
	for i, j := range perm {
		permuted.Items = append(permuted.Items, p.Items[j])
		permCands[i] = cands[j]
	}
	l2, err := BuildMultiDisc(ItemPrefix, permuted)
	if err != nil {
		t.Fatal(err)
	}
	_, states2, err := ExecuteMultiDisc(w, l2, CacheSet{})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := ScoreMultiDisc(w, states2, permCands)
	for i, j := range perm {
		diff := got[i] - base[j]
		if diff < -1e-5 || diff > 1e-5 {
			t.Fatalf("score for candidate %d changed under permutation: %v vs %v", j, got[i], base[j])
		}
	}
}

// TestMultiDiscItemCacheReuse: per-item caches serve multi-discriminant
// layouts exactly like single-discriminant ones.
func TestMultiDiscItemCacheReuse(t *testing.T) {
	w := testWeights()
	rng := rand.New(rand.NewSource(6))
	p := multiDiscPrompt(rng, 5, 3, 3)
	l, err := BuildMultiDisc(ItemPrefix, p)
	if err != nil {
		t.Fatal(err)
	}
	cold, coldStates, err := ExecuteMultiDisc(w, l, CacheSet{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.NewItemCaches) != 3 {
		t.Fatalf("%d caches minted", len(cold.NewItemCaches))
	}
	warm, warmStates, err := ExecuteMultiDisc(w, l, CacheSet{Items: cold.NewItemCaches})
	if err != nil {
		t.Fatal(err)
	}
	if warm.ReusedTokens != 9 {
		t.Fatalf("warm reused %d tokens", warm.ReusedTokens)
	}
	for i := range coldStates {
		if d := tensor.MaxAbsDiff(coldStates[i], warmStates[i]); d != 0 {
			t.Fatalf("disc %d state deviates by %v under cache reuse", i, d)
		}
	}
}

func TestExecuteMultiDiscRejectsSingleDiscLayout(t *testing.T) {
	w := testWeights()
	rng := rand.New(rand.NewSource(7))
	p := testPrompt(rng, 4, 2, 2, 2)
	l, err := Build(UserPrefix, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ExecuteMultiDisc(w, l, CacheSet{}); err == nil {
		t.Fatal("single-disc layout accepted")
	}
}

func TestScoreMultiDiscLengthMismatch(t *testing.T) {
	w := testWeights()
	if _, err := ScoreMultiDisc(w, make([][]float32, 2), []int{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestSegDiscString(t *testing.T) {
	if SegDisc.String() != "disc" {
		t.Fatalf("SegDisc.String() = %q", SegDisc.String())
	}
}
