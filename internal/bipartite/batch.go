package bipartite

import (
	"fmt"
	"strconv"
	"strings"

	"bat/internal/model"
	"bat/internal/tensor"
)

// BatchItem pairs one request's resolved layout with the prefix caches
// available to serve it. A batch of items is executed as ONE packed forward.
type BatchItem struct {
	Layout *Layout
	Caches CacheSet
}

// ExecuteBatch runs GR inference for several requests as a single batched
// forward: every request's prefix context (cached or recomputed) is
// concatenated into one KV store, every request's suffix tokens are packed
// into one token sequence, and a block-diagonal cross-request mask keeps
// request r's queries from seeing request s's keys. Because attention scores
// for masked keys are exactly NegInf -> exactly 0 weight, and every row-wise
// op (embeddings, RMSNorm, GEMM rows, RoPE) is independent per token with a
// fixed scalar summation order, the packed forward is bit-identical to
// executing each item through Execute on its own — at any batch split.
//
// Caller-supplied caches are never mutated.
func ExecuteBatch(w *model.Weights, items []BatchItem) ([]*Run, error) {
	runs, errs := ExecuteBatchCancelable(w, items, nil)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return runs, nil
}

// ExecuteBatchCancelable is ExecuteBatch with per-item cooperative
// cancellation: cancels[i] (nil = never cancel) is polled at phase
// boundaries — before item i's prefix resolution and again before the packed
// suffix forward. A canceled or failed item gets a per-item error and is
// excluded from the packed forward; the surviving items' results are
// unaffected (the cross-request mask already isolated them).
//
// Returned slices are index-aligned with items: exactly one of runs[i],
// errs[i] is non-nil.
func ExecuteBatchCancelable(w *model.Weights, items []BatchItem, cancels []func() error) ([]*Run, []error) {
	n := len(items)
	runs := make([]*Run, n)
	errs := make([]error, n)
	if n == 0 {
		return runs, errs
	}
	cancelAt := func(i int) error {
		if cancels == nil || cancels[i] == nil {
			return nil
		}
		return cancels[i]()
	}

	// Phase A: resolve every item's prefix context — reuse caches that cover
	// the layout prefix, recompute the rest. Recomputes are planned at the
	// batch level: misses across the whole batch are keyed by content
	// (prefix kind, anchor position, tokens), each unique computation runs
	// exactly once on the worker pool, and every further slot that wanted the
	// same prefix receives a bit-identical clone instead of a duplicate
	// forward. The math of each unique forward is identical to the
	// per-request Execute prefix phase, so results stay bit-identical at any
	// batch split — dedup only removes repeated work, never changes it.
	parts := make([][]*model.KVCache, n)
	var plan missPlan
	for i := range items {
		if err := cancelAt(i); err != nil {
			errs[i] = err
			continue
		}
		runs[i] = &Run{Layout: items[i].Layout}
		p, err := plan.classifyPrefix(items[i].Layout, items[i].Caches, runs[i], i)
		if err != nil {
			errs[i], runs[i] = err, nil
			continue
		}
		parts[i] = p
	}
	// Compute every unique missing prefix in ONE packed forward: units are
	// mutually invisible segments (same block-diagonal argument as the suffix
	// pack below), so batching them is bit-identical to running each alone —
	// and turns the batch's N miss forwards into one.
	plan.computeAll(w)
	plan.distribute(runs, parts)
	// Boundary poll before committing to the packed forward.
	for i := range items {
		if runs[i] == nil {
			continue
		}
		if err := cancelAt(i); err != nil {
			errs[i], runs[i] = err, nil
		}
	}

	// Phase B: pack the survivors. Batched absolute index space is
	// [all prefixes, in item order][all suffixes, in item order]; owner/local
	// map each batched index back to its item and that item's own layout
	// index, so the batch mask can delegate to each layout's mask.
	var alive []int
	totalPrefix, totalSuffix := 0, 0
	for i := range items {
		if runs[i] == nil {
			continue
		}
		alive = append(alive, i)
		totalPrefix += prefixLen(parts[i])
		totalSuffix += items[i].Layout.Len() - items[i].Layout.PrefixLen
	}
	if len(alive) == 0 {
		return runs, errs
	}
	owner := make([]int32, totalPrefix+totalSuffix)
	local := make([]int32, totalPrefix+totalSuffix)
	// Each item's keys occupy two contiguous batched-index ranges (its
	// prefix block and its suffix block); recording them lets the attention
	// loop skip foreign blocks wholesale instead of testing every key.
	prefRange := make([][2]int, n)
	sufRange := make([][2]int, n)
	off := 0
	for _, i := range alive {
		prefRange[i][0] = off
		for t := 0; t < prefixLen(parts[i]); t++ {
			owner[off], local[off] = int32(i), int32(t)
			off++
		}
		prefRange[i][1] = off
	}
	sufTokens := make([]int, 0, totalSuffix)
	sufPos := make([]int, 0, totalSuffix)
	for _, i := range alive {
		l := items[i].Layout
		sufRange[i][0] = off
		for t := l.PrefixLen; t < l.Len(); t++ {
			owner[off], local[off] = int32(i), int32(t)
			off++
			sufTokens = append(sufTokens, l.Tokens[t])
			sufPos = append(sufPos, l.Pos[t])
		}
		sufRange[i][1] = off
	}

	var all []*model.KVCache
	for _, i := range alive {
		all = append(all, parts[i]...)
	}
	var combined *model.KVCache
	if len(all) > 0 {
		combined = model.ConcatCaches(all...)
	} else {
		combined = model.NewKVCache(w.Config())
	}
	masks := make([]model.Mask, n)
	for _, i := range alive {
		masks[i] = items[i].Layout.Mask()
	}
	bm := batchMask{owner, local, masks, prefRange, sufRange}
	var mask model.Mask = bm
	if ex := buildExactBatchMask(items, alive, bm, totalPrefix, totalSuffix); ex != nil {
		mask = ex
	}
	hidden := w.Forward(sufTokens, sufPos, mask, combined)
	combined.Release() // reclaim arena pages; no-op for contiguous storage

	// Split the packed hidden rows back into per-item views (zero copy).
	row := 0
	for _, i := range alive {
		l := items[i].Layout
		ns := l.Len() - l.PrefixLen
		runs[i].Hidden = tensor.FromSlice(ns, hidden.Cols, hidden.Data[row*hidden.Cols:(row+ns)*hidden.Cols])
		runs[i].ComputedTokens += ns
		runs[i].Discriminant = runs[i].Hidden.Row(ns - 1)
		row += ns
	}
	return runs, errs
}

// prefixLen sums the cached-context length a part list contributes.
func prefixLen(parts []*model.KVCache) int {
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	return total
}

// missPlan is the batch-level shared-miss planner: prefix computations the
// supplied caches could not cover, keyed by content so identical recomputes
// anywhere in the batch collapse into one unit. Today's commit-side
// first-admission-wins only drops duplicate caches after every slot has
// already paid for its own forward; planning the dedup before execution is
// what turns N identical in-batch misses into one recompute.
type missPlan struct {
	index map[string]*missUnit
	units []*missUnit
}

// missUnit is one unique prefix computation plus every batch slot waiting on
// it. The first destination adopts the computed cache itself; later
// destinations receive bit-identical clones, so downstream commit paths
// (cache pools, arenas) still own one distinct object per admission and can
// evict or adopt them independently.
type missUnit struct {
	user     bool
	tokens   []int
	pos      []int // user-prefix position IDs (item units derive theirs from posStart)
	posStart int
	mask     model.Mask // user-prefix misses forward under their layout mask
	// full marks a unit whose mask allows every causal pair inside the unit
	// (item units always; user units when the layout prefix is one segment),
	// letting the packed miss forward use the exact-range attention path.
	full  bool
	cache *model.KVCache
	dests []missDest
}

// missDest routes one computed unit into a batch slot's bookkeeping.
type missDest struct {
	item int // batch slot index
	part int // index into that slot's ordered prefix parts; -1 = user prefix
	slot int // layout candidate slot for NewItemCaches (item units only)
}

func (p *missPlan) add(key string, unit missUnit, d missDest) {
	if p.index == nil {
		p.index = make(map[string]*missUnit)
	}
	if u, ok := p.index[key]; ok {
		u.dests = append(u.dests, d)
		return
	}
	u := &unit
	u.dests = append(u.dests, d)
	p.index[key] = u
	p.units = append(p.units, u)
}

// classifyPrefix mirrors the per-request Execute prefix phase's cache
// resolution without computing anything: cache hits fill the returned parts
// directly, misses are registered with the planner and left as nil holes for
// distribute to fill after the unique computations run. Validation happens
// before any unit is registered, so a failed item never leaves dangling
// destinations.
func (p *missPlan) classifyPrefix(l *Layout, caches CacheSet, run *Run, item int) ([]*model.KVCache, error) {
	switch l.Kind {
	case UserPrefix:
		if c := caches.User; c != nil {
			if c.Len() != l.PrefixLen {
				return nil, fmt.Errorf("bipartite: user cache covers %d tokens, layout prefix is %d", c.Len(), l.PrefixLen)
			}
			run.ReusedTokens = l.PrefixLen
			return []*model.KVCache{c}, nil
		}
		if l.PrefixLen == 0 {
			return nil, nil
		}
		// The layout mask restricted to the prefix region is a function of
		// the user segment alone (prefix queries and keys share one segment),
		// so content equality of (tokens, positions) implies an identical
		// forward.
		p.add(userMissKey(l), missUnit{
			user: true, tokens: l.Tokens[:l.PrefixLen], pos: l.Pos[:l.PrefixLen], mask: l.Mask(),
			full: l.SegmentOf(0).Len == l.PrefixLen,
		}, missDest{item: item, part: -1})
		return make([]*model.KVCache, 1), nil
	case ItemPrefix:
		segs := l.ItemSegments()
		parts := make([]*model.KVCache, len(segs))
		var missIdx []int
		for si, seg := range segs {
			if c, ok := caches.Items[seg.Item]; ok && c != nil {
				if c.Len() != seg.Len {
					return nil, fmt.Errorf("bipartite: item %d cache covers %d tokens, segment has %d", seg.Item, c.Len(), seg.Len)
				}
				parts[si] = c
				run.ReusedTokens += seg.Len
				continue
			}
			missIdx = append(missIdx, si)
		}
		for _, si := range missIdx {
			seg := segs[si]
			toks := l.Tokens[seg.Start : seg.Start+seg.Len]
			p.add(itemMissKey(seg.PosStart, toks), missUnit{tokens: toks, posStart: seg.PosStart, full: true},
				missDest{item: item, part: si, slot: seg.Item})
		}
		return parts, nil
	default:
		return nil, fmt.Errorf("bipartite: unknown layout kind %d", int(l.Kind))
	}
}

// compute runs one unit's forward — identical math to what the per-request
// Execute prefix phase would have run for the same miss.
func (u *missUnit) compute(w *model.Weights) *model.KVCache {
	if u.user {
		c := model.NewKVCache(w.Config())
		w.Forward(u.tokens, u.pos, u.mask, c)
		return c
	}
	return ComputeItemCacheAt(w, u.tokens, u.posStart)
}

// computeAll fills every unit's cache. Two or more units run as one packed
// forward under a block-diagonal mask — each unit's queries see only its own
// keys, and within a unit exactly what that unit's solo forward would allow —
// then the combined K/V store is split back into the independent per-unit
// caches the solo forwards would have produced. Row-independent ops plus
// per-query attention confined to the unit's own ascending key order make the
// packed pass bit-identical to computing each unit alone (the ExecuteBatch
// suffix-packing argument, applied to the prefix side).
func (p *missPlan) computeAll(w *model.Weights) {
	if len(p.units) == 0 {
		return
	}
	if len(p.units) == 1 {
		p.units[0].cache = p.units[0].compute(w)
		return
	}
	total := 0
	for _, u := range p.units {
		total += len(u.tokens)
	}
	tokens := make([]int, 0, total)
	pos := make([]int, 0, total)
	owner := make([]int32, 0, total)
	local := make([]int32, 0, total)
	ranges := make([][2]int, len(p.units))
	for ui, u := range p.units {
		start := len(tokens)
		tokens = append(tokens, u.tokens...)
		if u.user {
			pos = append(pos, u.pos...)
		} else {
			for i := range u.tokens {
				pos = append(pos, u.posStart+i)
			}
		}
		for i := range u.tokens {
			owner = append(owner, int32(ui))
			local = append(local, int32(i))
		}
		ranges[ui] = [2]int{start, len(tokens)}
	}
	combined := model.NewKVCache(w.Config())
	um := unitsMask{owner: owner, local: local, units: p.units, ranges: ranges}
	var mask model.Mask = um
	exact := true
	for _, u := range p.units {
		exact = exact && u.full
	}
	if exact {
		mask = exactUnitsMask{um}
	}
	w.Forward(tokens, pos, mask, combined)
	for ui := range p.units {
		p.units[ui].cache = combined.CopyRange(ranges[ui][0], ranges[ui][1])
	}
}

// unitsMask is the block-diagonal mask for the packed miss-unit forward. A
// query sees a key only within its own unit; user units additionally apply
// their layout mask over the unit's local (= layout prefix) indices, item
// units are plain causal (the engine's k <= q rule, which in batched index
// space restricted to one contiguous unit equals the unit's own causality).
type unitsMask struct {
	owner  []int32 // batched index -> unit index
	local  []int32 // batched index -> index within the unit
	units  []*missUnit
	ranges [][2]int // per-unit contiguous batched-index blocks
}

func (m unitsMask) Allowed(q, k int) bool {
	o := m.owner[q]
	if m.owner[k] != o {
		return false
	}
	if u := m.units[o]; u.user {
		return u.mask.Allowed(int(m.local[q]), int(m.local[k]))
	}
	return true
}

// KeyRanges implements model.KeyRanger: a query's visible keys all live in
// its own unit's block (which contains q itself).
func (m unitsMask) KeyRanges(q int, dst [][2]int) [][2]int {
	return append(dst, m.ranges[m.owner[q]])
}

// exactUnitsMask is unitsMask for batches whose units are all full (every
// causal pair inside a unit allowed): a query's exact visible keys are then
// precisely its own unit's block, so attention needs no per-key mask calls.
type exactUnitsMask struct{ unitsMask }

// ExactKeyRanges implements model.ExactKeyRanger.
func (m exactUnitsMask) ExactKeyRanges(q int, dst [][2]int) [][2]int {
	return append(dst, m.ranges[m.owner[q]])
}

// distribute hands each computed unit to its destinations. Every destination
// accounts the tokens as computed — matching per-request Execute exactly, so
// response payloads stay bit-identical — while destinations beyond the first
// additionally count as deduped (the forward they did not have to run).
func (p *missPlan) distribute(runs []*Run, parts [][]*model.KVCache) {
	for _, u := range p.units {
		for di, d := range u.dests {
			run := runs[d.item]
			c := u.cache
			if di > 0 {
				c = u.cache.Clone()
				run.DedupedTokens += len(u.tokens)
			}
			run.ComputedTokens += len(u.tokens)
			if d.part < 0 {
				run.NewUserCache = c
				parts[d.item][0] = c
			} else {
				if run.NewItemCaches == nil {
					run.NewItemCaches = make(map[int]*model.KVCache)
				}
				run.NewItemCaches[d.slot] = c
				parts[d.item][d.part] = c
			}
		}
	}
}

// itemMissKey and userMissKey are the planner's content keys: equal keys
// guarantee equal forwards (same tokens, same anchor positions, same
// prefix-region mask behavior).
func itemMissKey(posStart int, tokens []int) string {
	var b strings.Builder
	b.Grow(8 + 8*len(tokens))
	b.WriteByte('i')
	writeKeyInt(&b, posStart)
	for _, t := range tokens {
		writeKeyInt(&b, t)
	}
	return b.String()
}

func userMissKey(l *Layout) string {
	var b strings.Builder
	b.Grow(8 + 16*l.PrefixLen)
	b.WriteByte('u')
	for i := 0; i < l.PrefixLen; i++ {
		writeKeyInt(&b, l.Tokens[i])
		writeKeyInt(&b, l.Pos[i])
	}
	return b.String()
}

func writeKeyInt(b *strings.Builder, v int) {
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(v))
}

// batchMask is the block-diagonal cross-request mask: a query sees a key only
// when both belong to the same item, and then exactly when that item's own
// layout mask allows the pair. Indices are batched absolute positions over
// (all packed prefixes, then all packed suffixes).
type batchMask struct {
	owner []int32 // batched index -> items index
	local []int32 // batched index -> that item's own layout index
	masks []model.Mask
	// prefRange/sufRange are each item's contiguous batched-index key
	// blocks, backing the model.KeyRanger fast path.
	prefRange [][2]int
	sufRange  [][2]int
}

func (m batchMask) Allowed(q, k int) bool {
	o := m.owner[q]
	if m.owner[k] != o {
		return false
	}
	return m.masks[o].Allowed(int(m.local[q]), int(m.local[k]))
}

// KeyRanges implements model.KeyRanger: a query's allowed keys all live in
// its own item's prefix and suffix blocks, so the attention loop can skip
// every other item's keys without per-key mask calls. The suffix block
// contains q itself, satisfying the interface contract.
func (m batchMask) KeyRanges(q int, dst [][2]int) [][2]int {
	o := m.owner[q]
	if r := m.prefRange[o]; r[0] < r[1] {
		dst = append(dst, r)
	}
	return append(dst, m.sufRange[o])
}

// exactBatchMask layers model.ExactKeyRanger on batchMask: every packed
// suffix query's exact visible key set, pretranslated into batched index
// space once per batch. Attention then walks only truly visible keys — no
// per-key mask calls, and none of the in-block-but-masked keys (other
// candidates' tokens) that the superset KeyRanges path still scores as
// NegInf, at every layer and head.
type exactBatchMask struct {
	batchMask
	base int     // batched index of the first suffix token (= total prefix)
	off  []int32 // per-suffix-query offsets into flat
	flat [][2]int
}

// ExactKeyRanges implements model.ExactKeyRanger.
func (m exactBatchMask) ExactKeyRanges(q int, dst [][2]int) [][2]int {
	qi := q - m.base
	return append(dst, m.flat[m.off[qi]:m.off[qi+1]]...)
}

// buildExactBatchMask precomputes each packed suffix query's exact ranges by
// translating its item's own exact ranges into batched index space: the
// layout-local range is split at the item's prefix length, the prefix piece
// lands in the item's packed prefix block, the suffix piece in its packed
// suffix block. Both blocks are contiguous and items are packed in order, so
// translated ranges stay disjoint and ascending. Returns nil when any item's
// mask cannot enumerate exact ranges (the superset batchMask then applies).
func buildExactBatchMask(items []BatchItem, alive []int, m batchMask, totalPrefix, totalSuffix int) model.Mask {
	ekrs := make([]model.ExactKeyRanger, len(items))
	for _, i := range alive {
		e, ok := m.masks[i].(model.ExactKeyRanger)
		if !ok {
			return nil
		}
		ekrs[i] = e
	}
	off := make([]int32, totalSuffix+1)
	flat := make([][2]int, 0, 3*totalSuffix)
	var lr [][2]int
	for b := totalPrefix; b < totalPrefix+totalSuffix; b++ {
		i := int(m.owner[b])
		p := items[i].Layout.PrefixLen
		lr = ekrs[i].ExactKeyRanges(int(m.local[b]), lr[:0])
		for _, r := range lr {
			if lo, hi := r[0], min(r[1], p); lo < hi {
				flat = append(flat, [2]int{m.prefRange[i][0] + lo, m.prefRange[i][0] + hi})
			}
			if lo, hi := max(r[0], p), r[1]; lo < hi {
				flat = append(flat, [2]int{m.sufRange[i][0] + lo - p, m.sufRange[i][0] + hi - p})
			}
		}
		off[b-totalPrefix+1] = int32(len(flat))
	}
	return exactBatchMask{batchMask: m, base: totalPrefix, off: off, flat: flat}
}
