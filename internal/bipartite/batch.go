package bipartite

import (
	"fmt"

	"bat/internal/model"
	"bat/internal/tensor"
)

// BatchItem pairs one request's resolved layout with the prefix caches
// available to serve it. A batch of items is executed as ONE packed forward.
type BatchItem struct {
	Layout *Layout
	Caches CacheSet
}

// ExecuteBatch runs GR inference for several requests as a single batched
// forward: every request's prefix context (cached or recomputed) is
// concatenated into one KV store, every request's suffix tokens are packed
// into one token sequence, and a block-diagonal cross-request mask keeps
// request r's queries from seeing request s's keys. Because attention scores
// for masked keys are exactly NegInf -> exactly 0 weight, and every row-wise
// op (embeddings, RMSNorm, GEMM rows, RoPE) is independent per token with a
// fixed scalar summation order, the packed forward is bit-identical to
// executing each item through Execute on its own — at any batch split.
//
// Caller-supplied caches are never mutated.
func ExecuteBatch(w *model.Weights, items []BatchItem) ([]*Run, error) {
	runs, errs := ExecuteBatchCancelable(w, items, nil)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return runs, nil
}

// ExecuteBatchCancelable is ExecuteBatch with per-item cooperative
// cancellation: cancels[i] (nil = never cancel) is polled at phase
// boundaries — before item i's prefix resolution and again before the packed
// suffix forward. A canceled or failed item gets a per-item error and is
// excluded from the packed forward; the surviving items' results are
// unaffected (the cross-request mask already isolated them).
//
// Returned slices are index-aligned with items: exactly one of runs[i],
// errs[i] is non-nil.
func ExecuteBatchCancelable(w *model.Weights, items []BatchItem, cancels []func() error) ([]*Run, []error) {
	n := len(items)
	runs := make([]*Run, n)
	errs := make([]error, n)
	if n == 0 {
		return runs, errs
	}
	cancelAt := func(i int) error {
		if cancels == nil || cancels[i] == nil {
			return nil
		}
		return cancels[i]()
	}

	// Phase A: resolve every item's prefix context — reuse caches that cover
	// the layout prefix, recompute the rest. Identical math to the
	// per-request Execute prefix phase (misses fan out across the worker pool
	// inside resolvePrefix, exactly as executeItemPrefix does).
	parts := make([][]*model.KVCache, n)
	for i := range items {
		if err := cancelAt(i); err != nil {
			errs[i] = err
			continue
		}
		runs[i] = &Run{Layout: items[i].Layout}
		p, err := resolvePrefix(w, items[i].Layout, items[i].Caches, runs[i])
		if err != nil {
			errs[i], runs[i] = err, nil
			continue
		}
		parts[i] = p
	}
	// Boundary poll before committing to the packed forward.
	for i := range items {
		if runs[i] == nil {
			continue
		}
		if err := cancelAt(i); err != nil {
			errs[i], runs[i] = err, nil
		}
	}

	// Phase B: pack the survivors. Batched absolute index space is
	// [all prefixes, in item order][all suffixes, in item order]; owner/local
	// map each batched index back to its item and that item's own layout
	// index, so the batch mask can delegate to each layout's mask.
	var alive []int
	totalPrefix, totalSuffix := 0, 0
	for i := range items {
		if runs[i] == nil {
			continue
		}
		alive = append(alive, i)
		totalPrefix += prefixLen(parts[i])
		totalSuffix += items[i].Layout.Len() - items[i].Layout.PrefixLen
	}
	if len(alive) == 0 {
		return runs, errs
	}
	owner := make([]int32, totalPrefix+totalSuffix)
	local := make([]int32, totalPrefix+totalSuffix)
	// Each item's keys occupy two contiguous batched-index ranges (its
	// prefix block and its suffix block); recording them lets the attention
	// loop skip foreign blocks wholesale instead of testing every key.
	prefRange := make([][2]int, n)
	sufRange := make([][2]int, n)
	off := 0
	for _, i := range alive {
		prefRange[i][0] = off
		for t := 0; t < prefixLen(parts[i]); t++ {
			owner[off], local[off] = int32(i), int32(t)
			off++
		}
		prefRange[i][1] = off
	}
	sufTokens := make([]int, 0, totalSuffix)
	sufPos := make([]int, 0, totalSuffix)
	for _, i := range alive {
		l := items[i].Layout
		sufRange[i][0] = off
		for t := l.PrefixLen; t < l.Len(); t++ {
			owner[off], local[off] = int32(i), int32(t)
			off++
			sufTokens = append(sufTokens, l.Tokens[t])
			sufPos = append(sufPos, l.Pos[t])
		}
		sufRange[i][1] = off
	}

	var all []*model.KVCache
	for _, i := range alive {
		all = append(all, parts[i]...)
	}
	var combined *model.KVCache
	if len(all) > 0 {
		combined = model.ConcatCaches(all...)
	} else {
		combined = model.NewKVCache(w.Config())
	}
	masks := make([]model.Mask, n)
	for _, i := range alive {
		masks[i] = items[i].Layout.Mask()
	}
	hidden := w.Forward(sufTokens, sufPos, batchMask{owner, local, masks, prefRange, sufRange}, combined)
	combined.Release() // reclaim arena pages; no-op for contiguous storage

	// Split the packed hidden rows back into per-item views (zero copy).
	row := 0
	for _, i := range alive {
		l := items[i].Layout
		ns := l.Len() - l.PrefixLen
		runs[i].Hidden = tensor.FromSlice(ns, hidden.Cols, hidden.Data[row*hidden.Cols:(row+ns)*hidden.Cols])
		runs[i].ComputedTokens += ns
		runs[i].Discriminant = runs[i].Hidden.Row(ns - 1)
		row += ns
	}
	return runs, errs
}

// prefixLen sums the cached-context length a part list contributes.
func prefixLen(parts []*model.KVCache) int {
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	return total
}

// resolvePrefix mirrors the per-request Execute prefix phase: reuse a cache
// that covers the layout prefix, or recompute it (recording NewUserCache /
// NewItemCaches for the caller to admit). Returns the ordered cache parts
// whose concatenation is this item's prefix context.
func resolvePrefix(w *model.Weights, l *Layout, caches CacheSet, run *Run) ([]*model.KVCache, error) {
	switch l.Kind {
	case UserPrefix:
		if c := caches.User; c != nil {
			if c.Len() != l.PrefixLen {
				return nil, fmt.Errorf("bipartite: user cache covers %d tokens, layout prefix is %d", c.Len(), l.PrefixLen)
			}
			run.ReusedTokens = l.PrefixLen
			return []*model.KVCache{c}, nil
		}
		if l.PrefixLen == 0 {
			return nil, nil
		}
		c := model.NewKVCache(w.Config())
		w.Forward(l.Tokens[:l.PrefixLen], l.Pos[:l.PrefixLen], l.Mask(), c)
		run.ComputedTokens += l.PrefixLen
		run.NewUserCache = c
		return []*model.KVCache{c}, nil
	case ItemPrefix:
		segs := l.ItemSegments()
		parts := make([]*model.KVCache, len(segs))
		var missIdx []int
		for si, seg := range segs {
			if c, ok := caches.Items[seg.Item]; ok && c != nil {
				if c.Len() != seg.Len {
					return nil, fmt.Errorf("bipartite: item %d cache covers %d tokens, segment has %d", seg.Item, c.Len(), seg.Len)
				}
				parts[si] = c
				run.ReusedTokens += seg.Len
				continue
			}
			missIdx = append(missIdx, si)
		}
		tensor.Parallel(len(missIdx), func(m int) {
			seg := segs[missIdx[m]]
			parts[missIdx[m]] = ComputeItemCacheAt(w, l.Tokens[seg.Start:seg.Start+seg.Len], seg.PosStart)
		})
		for _, si := range missIdx {
			seg := segs[si]
			run.ComputedTokens += seg.Len
			if run.NewItemCaches == nil {
				run.NewItemCaches = make(map[int]*model.KVCache)
			}
			run.NewItemCaches[seg.Item] = parts[si]
		}
		return parts, nil
	default:
		return nil, fmt.Errorf("bipartite: unknown layout kind %d", int(l.Kind))
	}
}

// batchMask is the block-diagonal cross-request mask: a query sees a key only
// when both belong to the same item, and then exactly when that item's own
// layout mask allows the pair. Indices are batched absolute positions over
// (all packed prefixes, then all packed suffixes).
type batchMask struct {
	owner []int32 // batched index -> items index
	local []int32 // batched index -> that item's own layout index
	masks []model.Mask
	// prefRange/sufRange are each item's contiguous batched-index key
	// blocks, backing the model.KeyRanger fast path.
	prefRange [][2]int
	sufRange  [][2]int
}

func (m batchMask) Allowed(q, k int) bool {
	o := m.owner[q]
	if m.owner[k] != o {
		return false
	}
	return m.masks[o].Allowed(int(m.local[q]), int(m.local[k]))
}

// KeyRanges implements model.KeyRanger: a query's allowed keys all live in
// its own item's prefix and suffix blocks, so the attention loop can skip
// every other item's keys without per-key mask calls. The suffix block
// contains q itself, satisfying the interface contract.
func (m batchMask) KeyRanges(q int, dst [][2]int) [][2]int {
	o := m.owner[q]
	if r := m.prefRange[o]; r[0] < r[1] {
		dst = append(dst, r)
	}
	return append(dst, m.sufRange[o])
}
