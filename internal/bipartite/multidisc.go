package bipartite

import (
	"fmt"

	"bat/internal/model"
)

// Multi-discriminant layouts implement §4.2's extension: "our mechanism can
// be extended to multiple tokens by applying attention to them, e.g., one
// discriminant token per item, as in other works [29, 84]". Instead of one
// last token scoring every candidate, the prompt ends in a block of N
// discriminant tokens; discriminant i attends the user segment and candidate
// i only, so its hidden state captures that one user-item interaction —
// HSTU's per-item readout, expressed in the bipartite framework.
//
// The layout keeps both Bipartite Attention properties: items stay
// mask-isolated and position-shared (their caches remain reusable), and the
// discriminant block is permutation-equivariant — permuting candidates
// permutes the scores. Under User-as-prefix each score is an exact pairwise
// user-item function; under Item-as-prefix the user segment reads the whole
// candidate set (as in the single-discriminant layout), so candidates couple
// weakly through the user's hidden states.

// SegDisc labels a per-item discriminant token's segment. It extends the
// SegmentKind enum declared in bipartite.go.
const SegDisc SegmentKind = 3

// BuildMultiDisc constructs a per-item-discriminant layout. The prompt's
// Instr must hold exactly one token: the discriminant token to replicate
// once per candidate.
func BuildMultiDisc(kind PrefixKind, p Prompt) (*Layout, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p.Instr) != 1 {
		return nil, fmt.Errorf("bipartite: multi-discriminant layouts need exactly one instruction token, got %d", len(p.Instr))
	}
	l := &Layout{Kind: kind}
	var discStart int
	switch kind {
	case UserPrefix:
		itemStart := len(p.User)
		l.addSegment(SegUser, -1, p.User, 0)
		for i, it := range p.Items {
			l.addSegment(SegItem, i, it, itemStart)
		}
		l.PrefixLen = len(p.User)
		discStart = itemStart + maxItemLen(p.Items)
	case ItemPrefix:
		for i, it := range p.Items {
			l.addSegment(SegItem, i, it, 0)
		}
		l.addSegment(SegUser, -1, p.User, maxItemLen(p.Items))
		l.PrefixLen = 0
		for _, it := range p.Items {
			l.PrefixLen += len(it)
		}
		discStart = maxItemLen(p.Items) + len(p.User)
	default:
		return nil, fmt.Errorf("bipartite: unknown prefix kind %d", int(kind))
	}
	// One discriminant per candidate, all sharing a position: like the
	// items themselves, the discriminant block is an unordered set.
	for i := range p.Items {
		l.addSegment(SegDisc, i, p.Instr, discStart)
	}
	return l, nil
}

// DiscriminantIndices returns the absolute token index of each candidate's
// discriminant, in candidate order. It returns nil for single-discriminant
// layouts.
func (l *Layout) DiscriminantIndices() []int {
	var out []int
	for _, s := range l.Segments {
		if s.Kind == SegDisc {
			out = append(out, s.Start+s.Len-1)
		}
	}
	return out
}

// multiDiscMask extends the layout mask: discriminant i sees the user, item
// i, and itself — never other items or other discriminants, so candidate
// scores are pairwise user-item functions.
func (m layoutMask) allowedDisc(qs, ks Segment) bool {
	switch ks.Kind {
	case SegUser:
		return true
	case SegItem, SegDisc:
		return qs.Item == ks.Item
	default:
		return false
	}
}

// ExecuteMultiDisc runs a multi-discriminant layout, reusing caches like
// Execute, and returns per-candidate discriminant hidden states.
func ExecuteMultiDisc(w *model.Weights, l *Layout, caches CacheSet) (*Run, [][]float32, error) {
	discs := l.DiscriminantIndices()
	if len(discs) == 0 {
		return nil, nil, fmt.Errorf("bipartite: layout has no per-item discriminants")
	}
	run, err := Execute(w, l, caches)
	if err != nil {
		return nil, nil, err
	}
	// run.Hidden covers the computed suffix; map absolute indices into it.
	suffixStart := l.Len() - run.Hidden.Rows
	out := make([][]float32, len(discs))
	for i, abs := range discs {
		if abs < suffixStart {
			return nil, nil, fmt.Errorf("bipartite: discriminant %d inside the cached prefix", i)
		}
		out[i] = run.Hidden.Row(abs - suffixStart)
	}
	return run, out, nil
}

// ScoreMultiDisc projects each candidate's discriminant state onto its
// identifier token: s_i = z_i[v_i], the paper's per-item logit readout.
func ScoreMultiDisc(w *model.Weights, states [][]float32, candTokens []int) ([]float32, error) {
	if len(states) != len(candTokens) {
		return nil, fmt.Errorf("bipartite: %d discriminant states for %d candidates", len(states), len(candTokens))
	}
	scores := make([]float32, len(states))
	for i, h := range states {
		scores[i] = w.LogitsFor(h, candTokens[i:i+1])[0]
	}
	return scores, nil
}
