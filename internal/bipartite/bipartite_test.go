package bipartite

import (
	"math/rand"
	"testing"

	"bat/internal/model"
	"bat/internal/tensor"
)

const testVocab = 256

func testPrompt(rng *rand.Rand, userLen, nItems, itemLen, instrLen int) Prompt {
	tok := func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = rng.Intn(testVocab)
		}
		return out
	}
	p := Prompt{User: tok(userLen), Instr: tok(instrLen)}
	for i := 0; i < nItems; i++ {
		p.Items = append(p.Items, tok(itemLen))
	}
	return p
}

func testWeights() *model.Weights {
	return model.NewWeights(model.TinyGR(testVocab), 42)
}

func TestPromptValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	good := testPrompt(rng, 4, 2, 3, 2)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid prompt rejected: %v", err)
	}
	noItems := Prompt{User: []int{1}, Instr: []int{2}}
	if noItems.Validate() == nil {
		t.Fatal("prompt without items should be invalid")
	}
	emptyItem := Prompt{User: []int{1}, Items: [][]int{{}}, Instr: []int{2}}
	if emptyItem.Validate() == nil {
		t.Fatal("empty item should be invalid")
	}
	noInstr := Prompt{User: []int{1}, Items: [][]int{{3}}}
	if noInstr.Validate() == nil {
		t.Fatal("prompt without instr should be invalid")
	}
}

func TestUserPrefixLayoutShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := testPrompt(rng, 5, 3, 2, 2)
	l, err := Build(UserPrefix, p)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 5+3*2+2 {
		t.Fatalf("layout length %d", l.Len())
	}
	if l.PrefixLen != 5 {
		t.Fatalf("prefix len %d, want 5 (user tokens)", l.PrefixLen)
	}
	// Token order: user, items in order, instr.
	wantTokens := append([]int(nil), p.User...)
	for _, it := range p.Items {
		wantTokens = append(wantTokens, it...)
	}
	wantTokens = append(wantTokens, p.Instr...)
	for i, tok := range wantTokens {
		if l.Tokens[i] != tok {
			t.Fatalf("token %d = %d, want %d", i, l.Tokens[i], tok)
		}
	}
	// All items share starting position = len(user).
	for _, seg := range l.ItemSegments() {
		if seg.PosStart != 5 {
			t.Fatalf("item %d PosStart = %d, want 5", seg.Item, seg.PosStart)
		}
	}
	// Instr starts after user + max item length.
	instr := l.Segments[len(l.Segments)-1]
	if instr.Kind != SegInstr || instr.PosStart != 5+2 {
		t.Fatalf("instr segment %+v", instr)
	}
	if l.DiscriminantIndex() != l.Len()-1 {
		t.Fatal("discriminant must be last token")
	}
}

func TestItemPrefixLayoutShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := testPrompt(rng, 5, 3, 2, 2)
	l, err := Build(ItemPrefix, p)
	if err != nil {
		t.Fatal(err)
	}
	if l.PrefixLen != 3*2 {
		t.Fatalf("prefix len %d, want 6 (all item tokens)", l.PrefixLen)
	}
	for _, seg := range l.ItemSegments() {
		if seg.PosStart != 0 {
			t.Fatalf("item %d PosStart = %d, want 0", seg.Item, seg.PosStart)
		}
	}
	// User follows items, positions continue after the longest item.
	userSeg := l.Segments[3]
	if userSeg.Kind != SegUser || userSeg.PosStart != 2 {
		t.Fatalf("user segment %+v", userSeg)
	}
	instr := l.Segments[len(l.Segments)-1]
	if instr.PosStart != 2+5 {
		t.Fatalf("instr PosStart = %d, want 7", instr.PosStart)
	}
}

func TestLayoutsShareTotalPositionBudget(t *testing.T) {
	// Both layouts assign the same final position to the discriminant token,
	// so neither inflates the effective context length.
	rng := rand.New(rand.NewSource(4))
	p := testPrompt(rng, 7, 4, 3, 2)
	up, _ := Build(UserPrefix, p)
	ip, _ := Build(ItemPrefix, p)
	if up.Pos[up.DiscriminantIndex()] != ip.Pos[ip.DiscriminantIndex()] {
		t.Fatalf("discriminant positions differ: UP %d vs IP %d",
			up.Pos[up.DiscriminantIndex()], ip.Pos[ip.DiscriminantIndex()])
	}
}

func TestMaskRules(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := testPrompt(rng, 3, 2, 2, 1)
	up, _ := Build(UserPrefix, p)
	ip, _ := Build(ItemPrefix, p)

	find := func(l *Layout, kind SegmentKind, item int) Segment {
		for _, s := range l.Segments {
			if s.Kind == kind && (kind != SegItem || s.Item == item) {
				return s
			}
		}
		t.Fatalf("segment %v/%d not found", kind, item)
		return Segment{}
	}

	// UP: item0 tokens attend user but not item1.
	upm := up.Mask()
	u := find(up, SegUser, -1)
	i0 := find(up, SegItem, 0)
	i1 := find(up, SegItem, 1)
	ins := find(up, SegInstr, -1)
	if !upm.Allowed(i1.Start, u.Start) {
		t.Fatal("UP: item must attend user")
	}
	if upm.Allowed(i1.Start, i0.Start) {
		t.Fatal("UP: cross-item attention must be masked")
	}
	if !upm.Allowed(ins.Start, i0.Start) || !upm.Allowed(ins.Start, u.Start) {
		t.Fatal("UP: instr must attend everything")
	}
	if !upm.Allowed(i0.Start+1, i0.Start) {
		t.Fatal("UP: within-item attention must be allowed")
	}

	// IP: items fully isolated; user attends items.
	ipm := ip.Mask()
	u = find(ip, SegUser, -1)
	i0 = find(ip, SegItem, 0)
	i1 = find(ip, SegItem, 1)
	ins = find(ip, SegInstr, -1)
	if ipm.Allowed(i1.Start, i0.Start) {
		t.Fatal("IP: cross-item attention must be masked")
	}
	if ipm.Allowed(i1.Start, u.Start) {
		t.Fatal("IP: item->user attention must be masked (independence)")
	}
	if !ipm.Allowed(u.Start, i0.Start) || !ipm.Allowed(u.Start, i1.Start) {
		t.Fatal("IP: user must attend the item set")
	}
	if !ipm.Allowed(ins.Start, u.Start) || !ipm.Allowed(ins.Start, i1.Start) {
		t.Fatal("IP: instr must attend everything")
	}
}

// TestItemPermutationInvariance is the paper's central claim (§4.1): because
// items are mask-isolated and share a starting position, permuting the
// candidate order must not change any candidate's score or the discriminant
// state — in either layout.
func TestItemPermutationInvariance(t *testing.T) {
	w := testWeights()
	rng := rand.New(rand.NewSource(6))
	p := testPrompt(rng, 6, 5, 3, 2)

	perm := []int{3, 0, 4, 1, 2}
	permuted := Prompt{User: p.User, Instr: p.Instr}
	for _, idx := range perm {
		permuted.Items = append(permuted.Items, p.Items[idx])
	}

	for _, kind := range []PrefixKind{UserPrefix, ItemPrefix} {
		l1, err := Build(kind, p)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := Build(kind, permuted)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := Execute(w, l1, CacheSet{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Execute(w, l2, CacheSet{})
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(r1.Discriminant, r2.Discriminant); d > 1e-5 {
			t.Errorf("%v: discriminant changed by %v under item permutation", kind, d)
		}
	}
}

// TestUserPrefixCacheReuseExactness: serving from a user cache must
// reproduce recomputation exactly.
func TestUserPrefixCacheReuseExactness(t *testing.T) {
	w := testWeights()
	rng := rand.New(rand.NewSource(7))
	p := testPrompt(rng, 8, 3, 2, 2)
	l, _ := Build(UserPrefix, p)

	cold, err := Execute(w, l, CacheSet{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.ReusedTokens != 0 || cold.ComputedTokens != l.Len() {
		t.Fatalf("cold run accounting: reused %d computed %d", cold.ReusedTokens, cold.ComputedTokens)
	}
	if cold.NewUserCache == nil || cold.NewUserCache.Len() != 8 {
		t.Fatal("cold UP run must yield a user cache for admission")
	}

	warm, err := Execute(w, l, CacheSet{User: cold.NewUserCache})
	if err != nil {
		t.Fatal(err)
	}
	if warm.ReusedTokens != 8 || warm.ComputedTokens != l.Len()-8 {
		t.Fatalf("warm run accounting: reused %d computed %d", warm.ReusedTokens, warm.ComputedTokens)
	}
	if d := tensor.MaxAbsDiff(cold.Discriminant, warm.Discriminant); d != 0 {
		t.Fatalf("cached UP run deviates by %v", d)
	}
	// The stored cache must not have been mutated by serving.
	if cold.NewUserCache.Len() != 8 {
		t.Fatal("Execute mutated the caller's user cache")
	}
}

// TestItemPrefixCacheReuseExactness: serving from precomputed item caches —
// including a mix of hits and misses — must reproduce recomputation exactly.
func TestItemPrefixCacheReuseExactness(t *testing.T) {
	w := testWeights()
	rng := rand.New(rand.NewSource(8))
	p := testPrompt(rng, 6, 4, 3, 2)
	l, _ := Build(ItemPrefix, p)

	cold, err := Execute(w, l, CacheSet{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.NewItemCaches) != 4 {
		t.Fatalf("cold IP run yielded %d item caches, want 4", len(cold.NewItemCaches))
	}

	// Full hit.
	warm, err := Execute(w, l, CacheSet{Items: cold.NewItemCaches})
	if err != nil {
		t.Fatal(err)
	}
	if warm.ReusedTokens != 12 {
		t.Fatalf("full-hit reused %d, want 12", warm.ReusedTokens)
	}
	if d := tensor.MaxAbsDiff(cold.Discriminant, warm.Discriminant); d != 0 {
		t.Fatalf("full-hit IP run deviates by %v", d)
	}

	// Partial hit: only items 1 and 3 cached.
	partialCaches := map[int]*model.KVCache{1: cold.NewItemCaches[1], 3: cold.NewItemCaches[3]}
	part, err := Execute(w, l, CacheSet{Items: partialCaches})
	if err != nil {
		t.Fatal(err)
	}
	if part.ReusedTokens != 6 {
		t.Fatalf("partial-hit reused %d, want 6", part.ReusedTokens)
	}
	if len(part.NewItemCaches) != 2 {
		t.Fatalf("partial-hit produced %d new caches, want 2", len(part.NewItemCaches))
	}
	if d := tensor.MaxAbsDiff(cold.Discriminant, part.Discriminant); d != 0 {
		t.Fatalf("partial-hit IP run deviates by %v", d)
	}
}

// TestItemCacheSharedAcrossRequests: an item cache computed for one request
// must serve a different user's request containing the same item tokens —
// advantage (1) of Item-as-prefix (§4.3).
func TestItemCacheSharedAcrossRequests(t *testing.T) {
	w := testWeights()
	rng := rand.New(rand.NewSource(9))
	shared := []int{10, 20, 30}
	p1 := testPrompt(rng, 5, 2, 3, 2)
	p1.Items[0] = shared
	p2 := testPrompt(rng, 7, 2, 3, 2) // different user, different other item
	p2.Items[1] = shared

	c := ComputeItemCache(w, shared)

	l1, _ := Build(ItemPrefix, p1)
	r1, err := Execute(w, l1, CacheSet{Items: map[int]*model.KVCache{0: c}})
	if err != nil {
		t.Fatal(err)
	}
	ref1, _ := Execute(w, l1, CacheSet{})
	if d := tensor.MaxAbsDiff(r1.Discriminant, ref1.Discriminant); d != 0 {
		t.Fatalf("request 1 deviates by %v", d)
	}

	l2, _ := Build(ItemPrefix, p2)
	r2, err := Execute(w, l2, CacheSet{Items: map[int]*model.KVCache{1: c}})
	if err != nil {
		t.Fatal(err)
	}
	ref2, _ := Execute(w, l2, CacheSet{})
	if d := tensor.MaxAbsDiff(r2.Discriminant, ref2.Discriminant); d != 0 {
		t.Fatalf("request 2 deviates by %v", d)
	}
	if r1.ReusedTokens != 3 || r2.ReusedTokens != 3 {
		t.Fatalf("shared item cache not reused: %d / %d", r1.ReusedTokens, r2.ReusedTokens)
	}
}

func TestExecuteRejectsWrongCacheLength(t *testing.T) {
	w := testWeights()
	rng := rand.New(rand.NewSource(10))
	p := testPrompt(rng, 5, 2, 3, 2)

	up, _ := Build(UserPrefix, p)
	badUser := ComputeUserCache(w, []int{1, 2, 3}) // 3 tokens, layout wants 5
	if _, err := Execute(w, up, CacheSet{User: badUser}); err == nil {
		t.Fatal("expected error for mismatched user cache")
	}

	ip, _ := Build(ItemPrefix, p)
	badItem := ComputeItemCache(w, []int{1}) // 1 token, segment has 3
	if _, err := Execute(w, ip, CacheSet{Items: map[int]*model.KVCache{0: badItem}}); err == nil {
		t.Fatal("expected error for mismatched item cache")
	}
}

func TestEmptyUserProfile(t *testing.T) {
	w := testWeights()
	p := Prompt{User: nil, Items: [][]int{{1, 2}, {3, 4}}, Instr: []int{5}}
	for _, kind := range []PrefixKind{UserPrefix, ItemPrefix} {
		l, err := Build(kind, p)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if _, err := Execute(w, l, CacheSet{}); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

func TestVariableItemLengths(t *testing.T) {
	w := testWeights()
	p := Prompt{
		User:  []int{1, 2, 3},
		Items: [][]int{{4}, {5, 6, 7, 8}, {9, 10}},
		Instr: []int{11},
	}
	ip, err := Build(ItemPrefix, p)
	if err != nil {
		t.Fatal(err)
	}
	// User starts after the longest item (4 tokens).
	for _, s := range ip.Segments {
		if s.Kind == SegUser && s.PosStart != 4 {
			t.Fatalf("user PosStart = %d, want 4", s.PosStart)
		}
	}
	r, err := Execute(w, ip, CacheSet{})
	if err != nil {
		t.Fatal(err)
	}
	if r.ReusedTokens != 0 || r.ComputedTokens != ip.Len() {
		t.Fatalf("accounting %d/%d", r.ReusedTokens, r.ComputedTokens)
	}
}

func TestPrefixKindString(t *testing.T) {
	if UserPrefix.String() != "user-as-prefix" || ItemPrefix.String() != "item-as-prefix" {
		t.Fatal("PrefixKind.String mismatch")
	}
	if SegUser.String() != "user" || SegItem.String() != "item" || SegInstr.String() != "instr" {
		t.Fatal("SegmentKind.String mismatch")
	}
}

func TestSegmentOf(t *testing.T) {
	p := Prompt{User: []int{1, 2}, Items: [][]int{{3}, {4}}, Instr: []int{5}}
	l, _ := Build(UserPrefix, p)
	if s := l.SegmentOf(0); s.Kind != SegUser {
		t.Fatalf("token 0 in %v", s.Kind)
	}
	if s := l.SegmentOf(2); s.Kind != SegItem || s.Item != 0 {
		t.Fatalf("token 2 in %v/%d", s.Kind, s.Item)
	}
	if s := l.SegmentOf(4); s.Kind != SegInstr {
		t.Fatalf("token 4 in %v", s.Kind)
	}
}

// TestLayoutMaskExactRangesMatchAllowed pins the exact-range fast path to the
// Allowed predicate: for every layout shape (both prefix kinds, single- and
// multi-discriminant, PIC-adjusted, empty user) and every query, the union of
// ExactKeyRanges clamped to the causal horizon must equal exactly the set of
// keys Allowed admits. Any divergence would silently change attention
// results, so this is the contract the engine's no-mask-calls path rests on.
func TestLayoutMaskExactRangesMatchAllowed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type tc struct {
		name  string
		build func(Prompt) (*Layout, error)
		p     Prompt
	}
	var cases []tc
	for _, kind := range []PrefixKind{UserPrefix, ItemPrefix} {
		kind := kind
		for _, userLen := range []int{0, 1, 5} {
			p := testPrompt(rng, userLen, 3, 2, 2)
			cases = append(cases, tc{
				name:  kind.String() + "/single",
				build: func(p Prompt) (*Layout, error) { return Build(kind, p) },
				p:     p,
			})
			md := testPrompt(rng, userLen, 3, 2, 1)
			cases = append(cases, tc{
				name:  kind.String() + "/multidisc",
				build: func(p Prompt) (*Layout, error) { return BuildMultiDisc(kind, p) },
				p:     md,
			})
		}
	}
	pic := testPrompt(rng, 4, 2, 3, 2)
	cases = append(cases, tc{
		name: "ItemPrefix/pic",
		build: func(p Prompt) (*Layout, error) {
			l, err := Build(ItemPrefix, p)
			if err == nil {
				l.PICAdjust()
			}
			return l, err
		},
		p: pic,
	})
	for _, c := range cases {
		l, err := c.build(c.p)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		m := l.Mask().(model.ExactKeyRanger)
		am := l.Mask()
		for q := 0; q < l.Len(); q++ {
			inRange := make([]bool, l.Len())
			var last int = -1
			for _, r := range m.ExactKeyRanges(q, nil) {
				if r[0] < last {
					t.Fatalf("%s q=%d: ranges not ascending/disjoint", c.name, q)
				}
				last = r[1]
				for k := r[0]; k < min(r[1], q+1); k++ {
					inRange[k] = true
				}
			}
			if !inRange[q] {
				t.Fatalf("%s q=%d: ranges must include q", c.name, q)
			}
			for k := 0; k <= q; k++ {
				allowed := k == q || am.Allowed(q, k)
				if inRange[k] != allowed {
					t.Fatalf("%s q=%d k=%d: exact range says %v, Allowed says %v",
						c.name, q, k, inRange[k], allowed)
				}
			}
		}
	}
}
