package bipartite

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"bat/internal/model"
	"bat/internal/tensor"
)

// TestExecuteParallelMissesMatchSerial pins the parallelized miss-recompute
// path: an ItemPrefix Execute with every item cache missing must produce
// bit-identical hidden states to one fed fully precomputed caches, at any
// pool width, and report the same token accounting as before.
func TestExecuteParallelMissesMatchSerial(t *testing.T) {
	defer tensor.SetParallelism(0)
	w := testWeights()
	rng := rand.New(rand.NewSource(8))
	p := testPrompt(rng, 6, 5, 4, 2)
	l, err := Build(ItemPrefix, p)
	if err != nil {
		t.Fatal(err)
	}

	warm := make(map[int]*model.KVCache, len(p.Items))
	for i, it := range p.Items {
		warm[i] = ComputeItemCache(w, it)
	}
	hit, err := Execute(w, l, CacheSet{Items: warm})
	if err != nil {
		t.Fatal(err)
	}

	for _, width := range []int{1, 4} {
		tensor.SetParallelism(width)
		miss, err := Execute(w, l, CacheSet{})
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(miss.Hidden.Data, hit.Hidden.Data); d != 0 {
			t.Fatalf("width %d: all-miss Execute deviates from warm-cache run by %v", width, d)
		}
		if miss.ComputedTokens != l.Len() || miss.ReusedTokens != 0 {
			t.Fatalf("width %d: miss accounting computed=%d reused=%d, want %d/0",
				width, miss.ComputedTokens, miss.ReusedTokens, l.Len())
		}
		if len(miss.NewItemCaches) != len(p.Items) {
			t.Fatalf("width %d: %d new item caches, want %d", width, len(miss.NewItemCaches), len(p.Items))
		}
		for i := range p.Items {
			if miss.NewItemCaches[i].Len() != len(p.Items[i]) {
				t.Fatalf("width %d: item %d cache covers %d tokens, want %d",
					width, i, miss.NewItemCaches[i].Len(), len(p.Items[i]))
			}
		}
	}
}

// TestExecuteConcurrentCallers runs Execute from many goroutines over shared
// weights and a shared warm cache map — the cache-worker serving pattern.
// With -race this is the package's data-race gate for the pooled paths.
func TestExecuteConcurrentCallers(t *testing.T) {
	tensor.SetParallelism(4)
	defer tensor.SetParallelism(0)
	w := testWeights()
	rng := rand.New(rand.NewSource(9))
	p := testPrompt(rng, 6, 4, 3, 2)
	l, err := Build(ItemPrefix, p)
	if err != nil {
		t.Fatal(err)
	}
	warm := map[int]*model.KVCache{0: ComputeItemCache(w, p.Items[0])}
	want, err := Execute(w, l, CacheSet{Items: warm})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run, err := Execute(w, l, CacheSet{Items: warm})
			if err != nil {
				errs <- err
				return
			}
			if d := tensor.MaxAbsDiff(run.Hidden.Data, want.Hidden.Data); d != 0 {
				errs <- fmt.Errorf("concurrent Execute deviates by %v", d)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// benchExecute measures one ItemPrefix Execute. warm=true serves every item
// segment from a precomputed cache (steady-state serving); warm=false
// recomputes all of them (cold start / cache-pool miss storm).
func benchExecute(b *testing.B, warm bool) {
	cfg := model.BenchGR(testVocab)
	w := model.NewWeights(cfg, 42)
	rng := rand.New(rand.NewSource(1))
	p := testPrompt(rng, 32, 8, 16, 4)
	l, err := Build(ItemPrefix, p)
	if err != nil {
		b.Fatal(err)
	}
	caches := CacheSet{}
	if warm {
		caches.Items = make(map[int]*model.KVCache, len(p.Items))
		for i, it := range p.Items {
			caches.Items[i] = ComputeItemCache(w, it)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(w, l, caches); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(l.Len())*float64(b.N)/b.Elapsed().Seconds(), "tokens/sec")
}

// BenchmarkBipartiteExecute is the serving-path micro-benchmark: an
// Item-as-prefix request with all candidate caches warm.
func BenchmarkBipartiteExecute(b *testing.B) { benchExecute(b, true) }

// BenchmarkBipartiteExecuteCold is the same request with every item cache
// missing, exercising the pool-parallel miss recompute.
func BenchmarkBipartiteExecuteCold(b *testing.B) { benchExecute(b, false) }
