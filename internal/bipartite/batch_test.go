package bipartite

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"bat/internal/model"
	"bat/internal/tensor"
)

// randomBatchItem builds one request with a random prompt shape, prefix kind,
// and cache mix (cold / fully warm / partially warm), returning the item and
// the per-request reference run executed with the identical cache set.
func randomBatchItem(w *model.Weights, rng *rand.Rand) (BatchItem, *Run, error) {
	p := randomPrompt(rng.Int63())
	kind := UserPrefix
	if rng.Intn(2) == 1 {
		kind = ItemPrefix
	}
	l, err := Build(kind, p)
	if err != nil {
		return BatchItem{}, nil, err
	}
	cold, err := Execute(w, l, CacheSet{})
	if err != nil {
		return BatchItem{}, nil, err
	}
	var caches CacheSet
	switch rng.Intn(3) {
	case 1: // fully warm
		caches = CacheSet{User: cold.NewUserCache, Items: cold.NewItemCaches}
	case 2: // partial: keep a random subset of item caches
		if kind == ItemPrefix && len(cold.NewItemCaches) > 0 {
			caches.Items = make(map[int]*model.KVCache)
			for k, c := range cold.NewItemCaches {
				if rng.Intn(2) == 0 {
					caches.Items[k] = c
				}
			}
		}
	}
	ref, err := Execute(w, l, caches)
	if err != nil {
		return BatchItem{}, nil, err
	}
	return BatchItem{Layout: l, Caches: caches}, ref, nil
}

// TestPropertyExecuteBatchBitIdentical: for arbitrary mixes of prompt
// shapes, prefix kinds, and cache hit patterns, packing the requests into one
// batched forward produces discriminants bit-identical (MaxAbsDiff == 0) to
// running each request through Execute on its own, and identical
// reused/computed token accounting.
func TestPropertyExecuteBatchBitIdentical(t *testing.T) {
	w := testWeights()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		items := make([]BatchItem, n)
		refs := make([]*Run, n)
		for i := 0; i < n; i++ {
			it, ref, err := randomBatchItem(w, rng)
			if err != nil {
				return false
			}
			items[i], refs[i] = it, ref
		}
		runs, err := ExecuteBatch(w, items)
		if err != nil {
			return false
		}
		for i := range runs {
			if tensor.MaxAbsDiff(runs[i].Discriminant, refs[i].Discriminant) != 0 {
				return false
			}
			if runs[i].ReusedTokens != refs[i].ReusedTokens ||
				runs[i].ComputedTokens != refs[i].ComputedTokens {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestExecuteBatchAnySplit: the same request stream produces bit-identical
// discriminants no matter how it is split into batches — all-in-one, pairs,
// or one request per batch. This is the property that makes the serving
// core's window/size-driven batch formation semantically invisible.
func TestExecuteBatchAnySplit(t *testing.T) {
	w := testWeights()
	rng := rand.New(rand.NewSource(99))
	const n = 6
	items := make([]BatchItem, n)
	refs := make([]*Run, n)
	for i := 0; i < n; i++ {
		it, ref, err := randomBatchItem(w, rng)
		if err != nil {
			t.Fatal(err)
		}
		items[i], refs[i] = it, ref
	}
	for _, split := range [][]int{{6}, {3, 3}, {2, 2, 2}, {1, 1, 1, 1, 1, 1}, {4, 2}, {1, 5}} {
		at := 0
		for _, size := range split {
			runs, err := ExecuteBatch(w, items[at:at+size])
			if err != nil {
				t.Fatalf("split %v: %v", split, err)
			}
			for j, run := range runs {
				i := at + j
				if d := tensor.MaxAbsDiff(run.Discriminant, refs[i].Discriminant); d != 0 {
					t.Fatalf("split %v request %d deviates by %v", split, i, d)
				}
			}
			at += size
		}
	}
}

// TestExecuteBatchHSTU: the bit-exactness property holds under HSTU-style
// attention too — the per-query visible count excludes cross-request keys,
// so batching does not change the normalization.
func TestExecuteBatchHSTU(t *testing.T) {
	cfg := model.TinyGR(testVocab)
	cfg.Name = "TinyHSTU"
	cfg.Attn = model.AttnHSTU
	w := model.NewWeights(cfg, 42)
	rng := rand.New(rand.NewSource(7))
	const n = 4
	items := make([]BatchItem, n)
	refs := make([]*Run, n)
	for i := 0; i < n; i++ {
		it, ref, err := randomBatchItem(w, rng)
		if err != nil {
			t.Fatal(err)
		}
		items[i], refs[i] = it, ref
	}
	runs, err := ExecuteBatch(w, items)
	if err != nil {
		t.Fatal(err)
	}
	for i := range runs {
		if d := tensor.MaxAbsDiff(runs[i].Discriminant, refs[i].Discriminant); d != 0 {
			t.Fatalf("HSTU batched request %d deviates by %v", i, d)
		}
	}
}

// TestExecuteBatchCancelOne: canceling one request mid-batch errors that
// request only; the survivors' results stay bit-identical to solo execution.
func TestExecuteBatchCancelOne(t *testing.T) {
	w := testWeights()
	rng := rand.New(rand.NewSource(11))
	const n = 3
	items := make([]BatchItem, n)
	refs := make([]*Run, n)
	for i := 0; i < n; i++ {
		it, ref, err := randomBatchItem(w, rng)
		if err != nil {
			t.Fatal(err)
		}
		items[i], refs[i] = it, ref
	}
	wantErr := errors.New("deadline exceeded")
	cancels := make([]func() error, n)
	cancels[1] = func() error { return wantErr }
	runs, errs := ExecuteBatchCancelable(w, items, cancels)
	if !errors.Is(errs[1], wantErr) || runs[1] != nil {
		t.Fatalf("canceled request: run=%v err=%v", runs[1], errs[1])
	}
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Fatalf("survivor %d errored: %v", i, errs[i])
		}
		if d := tensor.MaxAbsDiff(runs[i].Discriminant, refs[i].Discriminant); d != 0 {
			t.Fatalf("survivor %d deviates by %v after mid-batch cancel", i, d)
		}
	}
}

// TestExecuteBatchDedupIdenticalMisses: N in-batch requests missing the SAME
// prefix trigger exactly one recompute — the first slot pays for the forward,
// the other N-1 receive bit-identical clones and account the saved work as
// DedupedTokens. Results stay bit-identical to solo Execute, and every slot
// still owns a DISTINCT cache object so downstream pools can admit/evict each
// admission independently. Covers both planes' layouts (user-prefix and
// item-prefix misses).
func TestExecuteBatchDedupIdenticalMisses(t *testing.T) {
	w := testWeights()
	for _, kind := range []PrefixKind{UserPrefix, ItemPrefix} {
		t.Run(kind.String(), func(t *testing.T) {
			p := randomPrompt(123)
			l, err := Build(kind, p)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := Execute(w, l, CacheSet{})
			if err != nil {
				t.Fatal(err)
			}
			const n = 4
			items := make([]BatchItem, n)
			for i := range items {
				items[i] = BatchItem{Layout: l} // no caches: every slot misses
			}
			runs, err := ExecuteBatch(w, items)
			if err != nil {
				t.Fatal(err)
			}
			var deduped int
			for i, run := range runs {
				if d := tensor.MaxAbsDiff(run.Discriminant, ref.Discriminant); d != 0 {
					t.Fatalf("slot %d deviates from solo Execute by %v", i, d)
				}
				if run.ComputedTokens != ref.ComputedTokens {
					t.Fatalf("slot %d computed %d tokens, solo computed %d", i, run.ComputedTokens, ref.ComputedTokens)
				}
				deduped += run.DedupedTokens
			}
			if want := (n - 1) * l.PrefixLen; deduped != want {
				t.Fatalf("batch deduped %d tokens, want %d — identical misses must collapse to one recompute", deduped, want)
			}
			// Distinct cache objects per slot: mutating one must not alias another.
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if kind == UserPrefix {
						if runs[i].NewUserCache == runs[j].NewUserCache {
							t.Fatalf("slots %d and %d share one user cache object", i, j)
						}
					} else {
						for slot, ci := range runs[i].NewItemCaches {
							if cj := runs[j].NewItemCaches[slot]; ci == cj {
								t.Fatalf("slots %d and %d share item cache %d", i, j, slot)
							}
						}
					}
				}
			}
		})
	}
}

// TestExecuteBatchEmptyAndNil: degenerate shapes don't panic.
func TestExecuteBatchEmptyAndNil(t *testing.T) {
	w := testWeights()
	if runs, err := ExecuteBatch(w, nil); err != nil || len(runs) != 0 {
		t.Fatalf("empty batch: runs=%v err=%v", runs, err)
	}
}
