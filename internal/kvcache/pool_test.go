package kvcache

import (
	"testing"
	"testing/quick"
)

func mustPool(t *testing.T, capacity int64, policy EvictPolicy) *Pool {
	t.Helper()
	// 1 KiB pages, 10 bytes per token: a 10-token entry needs 1 page.
	p, err := NewPool(capacity, 1024, 10, policy)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func uk(id uint64) EntryKey { return EntryKey{Kind: UserEntry, ID: id} }
func ik(id uint64) EntryKey { return EntryKey{Kind: ItemEntry, ID: id} }

func TestNewPoolRejectsBadGeometry(t *testing.T) {
	if _, err := NewPool(-1, 1024, 10, EvictLRU); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := NewPool(1024, 0, 10, EvictLRU); err == nil {
		t.Fatal("zero page size accepted")
	}
	if _, err := NewPool(1024, 64, 0, EvictLRU); err == nil {
		t.Fatal("zero bytes/token accepted")
	}
}

func TestPagesFor(t *testing.T) {
	p := mustPool(t, 10*1024, EvictLRU)
	cases := [][2]int{{1, 1}, {102, 1}, {103, 2}, {205, 3}}
	for _, c := range cases {
		if got := p.PagesFor(c[0]); got != c[1] {
			t.Errorf("PagesFor(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestPutLookupHitMiss(t *testing.T) {
	p := mustPool(t, 10*1024, EvictLRU)
	if _, ok := p.Lookup(uk(1)); ok {
		t.Fatal("lookup on empty pool hit")
	}
	if _, ok := p.Put(uk(1), 100, 1.0); !ok {
		t.Fatal("put failed")
	}
	e, ok := p.Lookup(uk(1))
	if !ok || e.Tokens != 100 {
		t.Fatalf("lookup after put: %v %v", e, ok)
	}
	if p.Hits != 1 || p.Misses != 1 {
		t.Fatalf("stats hits=%d misses=%d", p.Hits, p.Misses)
	}
}

func TestUserAndItemKeysDistinct(t *testing.T) {
	p := mustPool(t, 10*1024, EvictLRU)
	p.Put(uk(7), 10, 0)
	if p.Contains(ik(7)) {
		t.Fatal("user and item keys must not collide")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	p := mustPool(t, 3*1024, EvictLRU) // room for 3 one-page entries
	p.Put(uk(1), 100, 0)
	p.Put(uk(2), 100, 0)
	p.Put(uk(3), 100, 0)
	p.Lookup(uk(1)) // refresh 1; victim order now 2, 3, 1
	p.Put(uk(4), 100, 0)
	if p.Contains(uk(2)) {
		t.Fatal("LRU should have evicted entry 2")
	}
	for _, id := range []uint64{1, 3, 4} {
		if !p.Contains(uk(id)) {
			t.Fatalf("entry %d missing", id)
		}
	}
	if p.Evictions != 1 {
		t.Fatalf("evictions = %d", p.Evictions)
	}
}

func TestMinHotnessEviction(t *testing.T) {
	p := mustPool(t, 3*1024, EvictMinHotness)
	p.Put(uk(1), 100, 5.0)
	p.Put(uk(2), 100, 1.0)
	p.Put(uk(3), 100, 3.0)
	if min, ok := p.MinHotness(); !ok || min != 1.0 {
		t.Fatalf("MinHotness = %v %v", min, ok)
	}
	p.Put(uk(4), 100, 4.0)
	if p.Contains(uk(2)) {
		t.Fatal("coldest entry should have been evicted")
	}
	if min, ok := p.MinHotness(); !ok || min != 3.0 {
		t.Fatalf("MinHotness after eviction = %v %v", min, ok)
	}
}

func TestUpdateHotnessReordersHeap(t *testing.T) {
	p := mustPool(t, 2*1024, EvictMinHotness)
	p.Put(uk(1), 100, 1.0)
	p.Put(uk(2), 100, 2.0)
	if !p.UpdateHotness(uk(1), 10.0) {
		t.Fatal("update failed")
	}
	p.Put(uk(3), 100, 5.0) // should evict 2 (hotness 2), not 1 (now 10)
	if p.Contains(uk(2)) || !p.Contains(uk(1)) {
		t.Fatal("UpdateHotness did not reorder eviction")
	}
	if p.UpdateHotness(uk(99), 1) {
		t.Fatal("updating absent entry should fail")
	}
}

func TestPinnedEntriesSurviveEviction(t *testing.T) {
	p := mustPool(t, 2*1024, EvictLRU)
	p.PutPinned(ik(1), 100, 0)
	p.Put(uk(1), 100, 0)
	// Pool full; inserting forces eviction of the unpinned user, never the
	// pinned item.
	p.Put(uk(2), 100, 0)
	if !p.Contains(ik(1)) {
		t.Fatal("pinned entry evicted")
	}
	if p.Contains(uk(1)) {
		t.Fatal("unpinned entry should have been the victim")
	}
}

func TestPutRejectsWhenOnlyPinnedRemain(t *testing.T) {
	p := mustPool(t, 2*1024, EvictLRU)
	p.PutPinned(ik(1), 100, 0)
	p.PutPinned(ik(2), 100, 0)
	if _, ok := p.Put(uk(1), 100, 0); ok {
		t.Fatal("put should fail when pinned entries fill the pool")
	}
	if p.Rejections != 1 {
		t.Fatalf("rejections = %d", p.Rejections)
	}
}

func TestPutRejectsOversizedEntry(t *testing.T) {
	p := mustPool(t, 2*1024, EvictLRU)
	p.Put(uk(1), 100, 0)
	if _, ok := p.Put(uk(2), 10_000, 0); ok {
		t.Fatal("oversized entry accepted")
	}
	// Existing content untouched.
	if !p.Contains(uk(1)) {
		t.Fatal("rejection must not disturb resident entries")
	}
}

func TestPutZeroTokensRejected(t *testing.T) {
	p := mustPool(t, 1024, EvictLRU)
	if _, ok := p.Put(uk(1), 0, 0); ok {
		t.Fatal("zero-token entry accepted")
	}
}

func TestPutExistingRefreshes(t *testing.T) {
	p := mustPool(t, 3*1024, EvictLRU)
	p.Put(uk(1), 100, 1)
	p.Put(uk(2), 100, 1)
	p.Put(uk(1), 100, 9) // refresh recency and hotness
	p.Put(uk(3), 100, 1)
	p.Put(uk(4), 100, 1) // evicts LRU = 2
	if p.Contains(uk(2)) || !p.Contains(uk(1)) {
		t.Fatal("refresh did not update recency")
	}
	e, _ := p.Lookup(uk(1))
	if e.Hotness != 9 {
		t.Fatalf("hotness not refreshed: %v", e.Hotness)
	}
}

func TestRemove(t *testing.T) {
	p := mustPool(t, 2*1024, EvictLRU)
	p.PutPinned(ik(1), 100, 0)
	if !p.Remove(ik(1)) {
		t.Fatal("remove failed")
	}
	if p.Remove(ik(1)) {
		t.Fatal("double remove succeeded")
	}
	if p.UsedBytes() != 0 {
		t.Fatalf("used bytes %d after remove", p.UsedBytes())
	}
}

func TestByteAccounting(t *testing.T) {
	p := mustPool(t, 10*1024, EvictLRU)
	p.Put(uk(1), 150, 0) // 1500 bytes -> 2 pages
	if p.UsedBytes() != 2048 {
		t.Fatalf("used = %d, want 2048", p.UsedBytes())
	}
	if p.FreeBytes() != 10*1024-2048 {
		t.Fatalf("free = %d", p.FreeBytes())
	}
	if p.CapacityBytes() != 10*1024 {
		t.Fatalf("capacity = %d", p.CapacityBytes())
	}
	if p.Len() != 1 {
		t.Fatalf("len = %d", p.Len())
	}
}

// TestPoolInvariantProperty: under arbitrary operation sequences the pool
// never exceeds capacity and accounting stays consistent.
func TestPoolInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		p, err := NewPool(8*1024, 1024, 10, EvictMinHotness)
		if err != nil {
			return false
		}
		for _, op := range ops {
			id := uint64(op % 37)
			switch op % 4 {
			case 0:
				p.Put(uk(id), int(op%300)+1, float64(op%7))
			case 1:
				p.Lookup(uk(id))
			case 2:
				p.UpdateHotness(uk(id), float64(op%11))
			case 3:
				p.Remove(uk(id))
			}
			if p.UsedBytes() > p.CapacityBytes() {
				return false
			}
			var pages int
			for _, e := range p.entries {
				pages += e.Pages
			}
			if pages != p.usedPages {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMinHotnessLRUFallback(t *testing.T) {
	p := mustPool(t, 4*1024, EvictLRU)
	if _, ok := p.MinHotness(); ok {
		t.Fatal("empty pool should have no min hotness")
	}
	p.Put(uk(1), 100, 3)
	p.Put(uk(2), 100, 1)
	if min, ok := p.MinHotness(); !ok || min != 1 {
		t.Fatalf("MinHotness = %v %v", min, ok)
	}
}

func TestEntryKindString(t *testing.T) {
	if UserEntry.String() != "user" || ItemEntry.String() != "item" {
		t.Fatal("EntryKind.String mismatch")
	}
}

func TestPutGrowRechargesPages(t *testing.T) {
	p := mustPool(t, 10*1024, EvictLRU)
	p.Put(uk(1), 100, 1) // 1 page
	if p.UsedBytes() != 1024 {
		t.Fatalf("used = %d, want 1024", p.UsedBytes())
	}
	e, ok := p.Put(uk(1), 500, 2) // grown to 5 pages
	if !ok || e.Tokens != 500 || e.Pages != 5 {
		t.Fatalf("grown re-Put: tokens=%d pages=%d ok=%v", e.Tokens, e.Pages, ok)
	}
	if p.UsedBytes() != 5*1024 {
		t.Fatalf("grow not charged: used = %d, want %d", p.UsedBytes(), 5*1024)
	}
	e, ok = p.Put(uk(1), 150, 3) // shrunk to 2 pages
	if !ok || e.Tokens != 150 || e.Pages != 2 {
		t.Fatalf("shrunk re-Put: tokens=%d pages=%d ok=%v", e.Tokens, e.Pages, ok)
	}
	if p.UsedBytes() != 2*1024 {
		t.Fatalf("shrink not released: used = %d, want %d", p.UsedBytes(), 2*1024)
	}
}

func TestPutGrowEvictsToFit(t *testing.T) {
	p := mustPool(t, 3*1024, EvictLRU)
	p.Put(uk(1), 100, 1)
	p.Put(uk(2), 100, 1)
	p.Put(uk(3), 100, 1) // full: 3 pages
	// Growing 3 to 2 pages must evict the LRU entry (1), never 3 itself.
	if _, ok := p.Put(uk(3), 200, 1); !ok {
		t.Fatal("grow within capacity failed")
	}
	if p.Contains(uk(1)) {
		t.Fatal("grow did not evict the LRU victim")
	}
	if !p.Contains(uk(3)) || !p.Contains(uk(2)) {
		t.Fatal("wrong eviction victim for grow")
	}
	if p.UsedBytes() != 3*1024 {
		t.Fatalf("used = %d after grow-evict", p.UsedBytes())
	}
}

func TestPutGrowNeverEvictsSelf(t *testing.T) {
	p := mustPool(t, 3*1024, EvictMinHotness)
	p.Put(uk(1), 100, 0.1) // coldest: the heap root, and the grow target
	p.Put(uk(2), 100, 5)
	if _, ok := p.Put(uk(1), 300, 0.1); !ok {
		t.Fatal("grow failed")
	}
	if !p.Contains(uk(1)) {
		t.Fatal("grow evicted the entry being grown")
	}
	e, _ := p.Lookup(uk(1))
	if e.Tokens != 300 || e.Pages != 3 {
		t.Fatalf("grown entry tokens=%d pages=%d", e.Tokens, e.Pages)
	}
	if p.Contains(uk(2)) {
		t.Fatal("grow should have evicted the other entry")
	}
}

func TestPutGrowRejectKeepsOld(t *testing.T) {
	p := mustPool(t, 3*1024, EvictLRU)
	p.PutPinned(ik(1), 100, 0)
	p.Put(uk(1), 100, 1)
	rejBefore := p.Rejections
	// Growing uk(1) to 3 pages cannot fit (pinned page + 3 > 3).
	e, ok := p.Put(uk(1), 300, 2)
	if !ok || e == nil {
		t.Fatal("entry must stay resident after a rejected grow")
	}
	if e.Tokens != 100 || e.Pages != 1 {
		t.Fatalf("rejected grow mutated the entry: tokens=%d pages=%d", e.Tokens, e.Pages)
	}
	if e.Hotness != 2 {
		t.Fatalf("rejected grow should still refresh hotness: %v", e.Hotness)
	}
	if p.Rejections != rejBefore+1 {
		t.Fatalf("rejections = %d, want %d", p.Rejections, rejBefore+1)
	}
	if p.UsedBytes() != 2*1024 {
		t.Fatalf("used = %d after rejected grow", p.UsedBytes())
	}
	// Oversized beyond total capacity: same keep-old contract.
	if e, ok := p.Put(uk(1), 10_000, 3); !ok || e.Tokens != 100 {
		t.Fatalf("oversized re-Put dropped the entry: %v %v", e, ok)
	}
}

func TestPutRefreshHonorsPinnedChange(t *testing.T) {
	p := mustPool(t, 2*1024, EvictLRU)
	p.Put(uk(1), 100, 0)
	p.PutPinned(uk(1), 100, 0) // re-Put flips it to placement-managed
	if _, ok := p.Put(uk(3), 200, 0); ok {
		t.Fatal("put should fail: the only resident is now pinned, 2 pages cannot fit")
	}
	if !p.Contains(uk(1)) {
		t.Fatal("re-pinned entry was evicted")
	}
	p.Put(uk(1), 100, 0) // re-Put flips it back to evictable
	if _, ok := p.Put(uk(3), 200, 0); !ok {
		t.Fatal("put should succeed by evicting the now-unpinned entry")
	}
	if p.Contains(uk(1)) || !p.Contains(uk(3)) || p.Len() != 1 {
		t.Fatalf("unpin via re-Put not honored: len=%d", p.Len())
	}
}

// TestGhostListCountsRecentEvictions pins the shadow-cache signal: a miss on
// a recently evicted key counts as a ghost hit with the evicted token weight,
// re-insertion clears the ghost, and keys evicted long ago (beyond the
// ARC-style residents-sized window) stop counting.
func TestGhostListCountsRecentEvictions(t *testing.T) {
	p := mustPool(t, 2*1024, EvictLRU)
	p.Put(uk(1), 150, 0)
	p.Put(uk(2), 100, 0)
	p.Put(uk(3), 100, 0) // evicts uk(1)
	if p.Contains(uk(1)) {
		t.Fatal("uk(1) should have been evicted")
	}
	if _, ok := p.Lookup(uk(1)); ok {
		t.Fatal("ghosted key must still miss")
	}
	if p.GhostHits != 1 || p.GhostHitTokens != 150 {
		t.Fatalf("ghost hit not counted: hits=%d tokens=%d", p.GhostHits, p.GhostHitTokens)
	}
	// Re-inserting the key clears its ghost: the next eviction+miss counts
	// fresh, but a resident hit never does.
	p.Put(uk(1), 150, 0) // evicts uk(2)
	p.Lookup(uk(1))
	if p.GhostHits != 1 {
		t.Fatalf("resident hit counted as ghost hit: %d", p.GhostHits)
	}
	// Scan resistance: push far more evictions through than the ghost window
	// (minGhost for this tiny pool) holds; the earliest victims age out.
	for id := uint64(100); id < 100+2*minGhost; id++ {
		p.Put(uk(id), 100, 0)
	}
	p.Lookup(uk(2))
	if p.GhostHitTokens != 150 {
		t.Fatalf("ancient eviction still ghosted: tokens=%d", p.GhostHitTokens)
	}
}

func TestSetCapacityBytesGrowShrink(t *testing.T) {
	p := mustPool(t, 4*1024, EvictLRU)
	for id := uint64(1); id <= 4; id++ {
		p.Put(uk(id), 100, 1)
	}
	if got := p.SetCapacityBytes(8 * 1024); got != 8*1024 {
		t.Fatalf("grow applied %d", got)
	}
	if p.Len() != 4 {
		t.Fatal("grow must not disturb residents")
	}
	p.Put(uk(5), 100, 1) // fits in the grown pool without eviction
	if p.Evictions != 0 {
		t.Fatalf("evictions = %d after grow", p.Evictions)
	}
	if got := p.SetCapacityBytes(2 * 1024); got != 2*1024 {
		t.Fatalf("shrink applied %d", got)
	}
	if p.UsedBytes() > p.CapacityBytes() {
		t.Fatalf("invariant broken: used %d > capacity %d", p.UsedBytes(), p.CapacityBytes())
	}
	if p.Len() != 2 || !p.Contains(uk(4)) || !p.Contains(uk(5)) {
		t.Fatalf("shrink should keep the 2 most recent entries, len=%d", p.Len())
	}
}

func TestSetCapacityBytesClampsAtPinned(t *testing.T) {
	p := mustPool(t, 4*1024, EvictLRU)
	p.PutPinned(ik(1), 100, 0)
	p.PutPinned(ik(2), 100, 0)
	p.Put(uk(1), 100, 0)
	got := p.SetCapacityBytes(1024) // below the 2 pinned pages
	if got != 2*1024 {
		t.Fatalf("clamp applied %d, want %d", got, 2*1024)
	}
	if p.Contains(uk(1)) {
		t.Fatal("unpinned entry should have been evicted by the shrink")
	}
	if !p.Contains(ik(1)) || !p.Contains(ik(2)) {
		t.Fatal("pinned entries must survive any shrink")
	}
	if p.UsedBytes() > p.CapacityBytes() {
		t.Fatalf("invariant broken: used %d > capacity %d", p.UsedBytes(), p.CapacityBytes())
	}
	if p.PinnedBytes() != 2*1024 {
		t.Fatalf("pinned bytes %d", p.PinnedBytes())
	}
	if got := p.SetCapacityBytes(-5); got != 2*1024 {
		t.Fatalf("negative capacity applied %d", got)
	}
}

// TestPoolResizeAccountingProperty drives a randomized grow/shrink/evict/
// resize sequence and asserts UsedBytes() <= CapacityBytes() plus exact page
// accounting after every single operation — the acceptance property for the
// refresh-accounting fix and SetCapacityBytes.
func TestPoolResizeAccountingProperty(t *testing.T) {
	for _, policy := range []EvictPolicy{EvictLRU, EvictMinHotness} {
		f := func(ops []uint32) bool {
			p, err := NewPool(8*1024, 1024, 10, policy)
			if err != nil {
				return false
			}
			for _, op := range ops {
				id := uint64(op % 23)
				tokens := int(op%700) + 1
				switch op % 8 {
				case 0, 1, 2:
					p.Put(uk(id), tokens, float64(op%7))
				case 3:
					p.PutPinned(ik(id%5), int(op%150)+1, float64(op%7))
				case 4:
					p.Lookup(uk(id))
				case 5:
					p.Remove(uk(id))
				case 6:
					p.Remove(ik(id % 5))
				case 7:
					p.SetCapacityBytes(int64(op%16) * 1024)
				}
				if p.UsedBytes() > p.CapacityBytes() {
					t.Logf("policy %d: used %d > capacity %d", policy, p.UsedBytes(), p.CapacityBytes())
					return false
				}
				var pages, lruLen int
				for _, e := range p.entries {
					pages += e.Pages
					if e.Tokens <= 0 || e.Pages != p.PagesFor(e.Tokens) {
						t.Logf("entry %v: tokens %d pages %d", e.Key, e.Tokens, e.Pages)
						return false
					}
					if !e.Pinned && policy == EvictLRU && e.lruElem == nil {
						t.Log("unpinned entry missing from LRU")
						return false
					}
					if !e.Pinned && policy == EvictMinHotness && e.heapIdx < 0 {
						t.Log("unpinned entry missing from heap")
						return false
					}
					if e.Pinned && (e.lruElem != nil || e.heapIdx >= 0) {
						t.Log("pinned entry still in an eviction structure")
						return false
					}
					if !e.Pinned {
						lruLen++
					}
				}
				if pages != p.usedPages {
					t.Logf("page sum %d != usedPages %d", pages, p.usedPages)
					return false
				}
				if policy == EvictLRU && p.lru.Len() != lruLen {
					t.Logf("lru len %d != unpinned %d", p.lru.Len(), lruLen)
					return false
				}
				if policy == EvictMinHotness && len(p.hotHeap) != lruLen {
					t.Logf("heap len %d != unpinned %d", len(p.hotHeap), lruLen)
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("policy %d: %v", policy, err)
		}
	}
}
