package kvcache

import (
	"testing"
	"testing/quick"
)

func mustPool(t *testing.T, capacity int64, policy EvictPolicy) *Pool {
	t.Helper()
	// 1 KiB pages, 10 bytes per token: a 10-token entry needs 1 page.
	p, err := NewPool(capacity, 1024, 10, policy)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func uk(id uint64) EntryKey { return EntryKey{Kind: UserEntry, ID: id} }
func ik(id uint64) EntryKey { return EntryKey{Kind: ItemEntry, ID: id} }

func TestNewPoolRejectsBadGeometry(t *testing.T) {
	if _, err := NewPool(-1, 1024, 10, EvictLRU); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := NewPool(1024, 0, 10, EvictLRU); err == nil {
		t.Fatal("zero page size accepted")
	}
	if _, err := NewPool(1024, 64, 0, EvictLRU); err == nil {
		t.Fatal("zero bytes/token accepted")
	}
}

func TestPagesFor(t *testing.T) {
	p := mustPool(t, 10*1024, EvictLRU)
	cases := [][2]int{{1, 1}, {102, 1}, {103, 2}, {205, 3}}
	for _, c := range cases {
		if got := p.PagesFor(c[0]); got != c[1] {
			t.Errorf("PagesFor(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestPutLookupHitMiss(t *testing.T) {
	p := mustPool(t, 10*1024, EvictLRU)
	if _, ok := p.Lookup(uk(1)); ok {
		t.Fatal("lookup on empty pool hit")
	}
	if _, ok := p.Put(uk(1), 100, 1.0); !ok {
		t.Fatal("put failed")
	}
	e, ok := p.Lookup(uk(1))
	if !ok || e.Tokens != 100 {
		t.Fatalf("lookup after put: %v %v", e, ok)
	}
	if p.Hits != 1 || p.Misses != 1 {
		t.Fatalf("stats hits=%d misses=%d", p.Hits, p.Misses)
	}
}

func TestUserAndItemKeysDistinct(t *testing.T) {
	p := mustPool(t, 10*1024, EvictLRU)
	p.Put(uk(7), 10, 0)
	if p.Contains(ik(7)) {
		t.Fatal("user and item keys must not collide")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	p := mustPool(t, 3*1024, EvictLRU) // room for 3 one-page entries
	p.Put(uk(1), 100, 0)
	p.Put(uk(2), 100, 0)
	p.Put(uk(3), 100, 0)
	p.Lookup(uk(1)) // refresh 1; victim order now 2, 3, 1
	p.Put(uk(4), 100, 0)
	if p.Contains(uk(2)) {
		t.Fatal("LRU should have evicted entry 2")
	}
	for _, id := range []uint64{1, 3, 4} {
		if !p.Contains(uk(id)) {
			t.Fatalf("entry %d missing", id)
		}
	}
	if p.Evictions != 1 {
		t.Fatalf("evictions = %d", p.Evictions)
	}
}

func TestMinHotnessEviction(t *testing.T) {
	p := mustPool(t, 3*1024, EvictMinHotness)
	p.Put(uk(1), 100, 5.0)
	p.Put(uk(2), 100, 1.0)
	p.Put(uk(3), 100, 3.0)
	if min, ok := p.MinHotness(); !ok || min != 1.0 {
		t.Fatalf("MinHotness = %v %v", min, ok)
	}
	p.Put(uk(4), 100, 4.0)
	if p.Contains(uk(2)) {
		t.Fatal("coldest entry should have been evicted")
	}
	if min, ok := p.MinHotness(); !ok || min != 3.0 {
		t.Fatalf("MinHotness after eviction = %v %v", min, ok)
	}
}

func TestUpdateHotnessReordersHeap(t *testing.T) {
	p := mustPool(t, 2*1024, EvictMinHotness)
	p.Put(uk(1), 100, 1.0)
	p.Put(uk(2), 100, 2.0)
	if !p.UpdateHotness(uk(1), 10.0) {
		t.Fatal("update failed")
	}
	p.Put(uk(3), 100, 5.0) // should evict 2 (hotness 2), not 1 (now 10)
	if p.Contains(uk(2)) || !p.Contains(uk(1)) {
		t.Fatal("UpdateHotness did not reorder eviction")
	}
	if p.UpdateHotness(uk(99), 1) {
		t.Fatal("updating absent entry should fail")
	}
}

func TestPinnedEntriesSurviveEviction(t *testing.T) {
	p := mustPool(t, 2*1024, EvictLRU)
	p.PutPinned(ik(1), 100, 0)
	p.Put(uk(1), 100, 0)
	// Pool full; inserting forces eviction of the unpinned user, never the
	// pinned item.
	p.Put(uk(2), 100, 0)
	if !p.Contains(ik(1)) {
		t.Fatal("pinned entry evicted")
	}
	if p.Contains(uk(1)) {
		t.Fatal("unpinned entry should have been the victim")
	}
}

func TestPutRejectsWhenOnlyPinnedRemain(t *testing.T) {
	p := mustPool(t, 2*1024, EvictLRU)
	p.PutPinned(ik(1), 100, 0)
	p.PutPinned(ik(2), 100, 0)
	if _, ok := p.Put(uk(1), 100, 0); ok {
		t.Fatal("put should fail when pinned entries fill the pool")
	}
	if p.Rejections != 1 {
		t.Fatalf("rejections = %d", p.Rejections)
	}
}

func TestPutRejectsOversizedEntry(t *testing.T) {
	p := mustPool(t, 2*1024, EvictLRU)
	p.Put(uk(1), 100, 0)
	if _, ok := p.Put(uk(2), 10_000, 0); ok {
		t.Fatal("oversized entry accepted")
	}
	// Existing content untouched.
	if !p.Contains(uk(1)) {
		t.Fatal("rejection must not disturb resident entries")
	}
}

func TestPutZeroTokensRejected(t *testing.T) {
	p := mustPool(t, 1024, EvictLRU)
	if _, ok := p.Put(uk(1), 0, 0); ok {
		t.Fatal("zero-token entry accepted")
	}
}

func TestPutExistingRefreshes(t *testing.T) {
	p := mustPool(t, 3*1024, EvictLRU)
	p.Put(uk(1), 100, 1)
	p.Put(uk(2), 100, 1)
	p.Put(uk(1), 100, 9) // refresh recency and hotness
	p.Put(uk(3), 100, 1)
	p.Put(uk(4), 100, 1) // evicts LRU = 2
	if p.Contains(uk(2)) || !p.Contains(uk(1)) {
		t.Fatal("refresh did not update recency")
	}
	e, _ := p.Lookup(uk(1))
	if e.Hotness != 9 {
		t.Fatalf("hotness not refreshed: %v", e.Hotness)
	}
}

func TestRemove(t *testing.T) {
	p := mustPool(t, 2*1024, EvictLRU)
	p.PutPinned(ik(1), 100, 0)
	if !p.Remove(ik(1)) {
		t.Fatal("remove failed")
	}
	if p.Remove(ik(1)) {
		t.Fatal("double remove succeeded")
	}
	if p.UsedBytes() != 0 {
		t.Fatalf("used bytes %d after remove", p.UsedBytes())
	}
}

func TestByteAccounting(t *testing.T) {
	p := mustPool(t, 10*1024, EvictLRU)
	p.Put(uk(1), 150, 0) // 1500 bytes -> 2 pages
	if p.UsedBytes() != 2048 {
		t.Fatalf("used = %d, want 2048", p.UsedBytes())
	}
	if p.FreeBytes() != 10*1024-2048 {
		t.Fatalf("free = %d", p.FreeBytes())
	}
	if p.CapacityBytes() != 10*1024 {
		t.Fatalf("capacity = %d", p.CapacityBytes())
	}
	if p.Len() != 1 {
		t.Fatalf("len = %d", p.Len())
	}
}

// TestPoolInvariantProperty: under arbitrary operation sequences the pool
// never exceeds capacity and accounting stays consistent.
func TestPoolInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		p, err := NewPool(8*1024, 1024, 10, EvictMinHotness)
		if err != nil {
			return false
		}
		for _, op := range ops {
			id := uint64(op % 37)
			switch op % 4 {
			case 0:
				p.Put(uk(id), int(op%300)+1, float64(op%7))
			case 1:
				p.Lookup(uk(id))
			case 2:
				p.UpdateHotness(uk(id), float64(op%11))
			case 3:
				p.Remove(uk(id))
			}
			if p.UsedBytes() > p.CapacityBytes() {
				return false
			}
			var pages int
			for _, e := range p.entries {
				pages += e.Pages
			}
			if pages != p.usedPages {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMinHotnessLRUFallback(t *testing.T) {
	p := mustPool(t, 4*1024, EvictLRU)
	if _, ok := p.MinHotness(); ok {
		t.Fatal("empty pool should have no min hotness")
	}
	p.Put(uk(1), 100, 3)
	p.Put(uk(2), 100, 1)
	if min, ok := p.MinHotness(); !ok || min != 1 {
		t.Fatalf("MinHotness = %v %v", min, ok)
	}
}

func TestEntryKindString(t *testing.T) {
	if UserEntry.String() != "user" || ItemEntry.String() != "item" {
		t.Fatal("EntryKind.String mismatch")
	}
}
