// Package kvcache implements the KV cache worker's memory pool (§5.1): paged
// storage accounted at user/item granularity, with the two eviction
// disciplines the paper's systems use — plain LRU (the baseline cache from
// Mooncake-style serving) and min-hotness replacement (what the
// hotness-aware scheduler's admission rule needs).
//
// The pool tracks token counts and page accounting, not tensor payloads: the
// cluster simulator needs capacity behaviour, while the real-model serving
// path (internal/server) keeps payloads in model.KVCache values alongside.
package kvcache

import (
	"container/heap"
	"container/list"
	"fmt"
)

// EntryKind distinguishes the two cache populations BAT manages separately.
type EntryKind uint8

const (
	// UserEntry is a user-profile prefix cache.
	UserEntry EntryKind = iota
	// ItemEntry is a single item's prefix cache.
	ItemEntry
)

// String implements fmt.Stringer.
func (k EntryKind) String() string {
	if k == UserEntry {
		return "user"
	}
	return "item"
}

// EntryKey identifies one logical cache entry.
type EntryKey struct {
	Kind EntryKind
	ID   uint64
}

// Entry is one user's or item's cached prefix.
type Entry struct {
	Key    EntryKey
	Tokens int
	Pages  int
	// Hotness is the sliding-window frequency estimate maintained by the
	// cache meta service; the min-hotness policy evicts the coldest entry.
	Hotness float64
	// Pinned entries are placement-managed (the HRCS item area) and exempt
	// from eviction.
	Pinned bool

	lruElem  *list.Element
	heapIdx  int
	resident bool
}

// EvictPolicy selects the replacement discipline for unpinned entries.
type EvictPolicy uint8

const (
	// EvictLRU evicts the least recently used entry.
	EvictLRU EvictPolicy = iota
	// EvictMinHotness evicts the entry with the lowest hotness estimate.
	EvictMinHotness
)

// Pool is one cache worker's paged memory.
type Pool struct {
	pageBytes     int
	bytesPerToken int
	capacityPages int
	usedPages     int
	policy        EvictPolicy

	entries map[EntryKey]*Entry
	lru     *list.List // front = most recent
	hotHeap entryHeap

	// OnEvict, when set, observes each capacity-evicted entry — the spill
	// hook a slower tier uses to absorb victims (see TieredPool).
	OnEvict func(*Entry)

	// ghost remembers recently evicted keys (a bounded FIFO of "shadow"
	// entries). A miss on a ghosted key is a hit the pool would have served
	// with a little more capacity — the partition controller's direct
	// Δhits-per-Δbyte evidence, robust where raw miss counts are not
	// (scan-like traffic misses forever but ghosts never return).
	ghost    map[EntryKey]*list.Element // key -> ghostLRU element (ghostRec)
	ghostLRU *list.List                 // front = most recently evicted
	ghostCap int

	// Stats accumulate over the pool's lifetime. GhostHitTokens sums the
	// token counts of misses that hit the ghost list.
	Hits, Misses, Evictions, Rejections int64
	GhostHits                           int64
	GhostHitTokens                      int64
}

// Ghost-list sizing, ARC-style: the shadow list tracks about as many keys as
// the pool holds residents, so a ghost hit means "roughly 2x capacity would
// have served this" — the marginal question capacity partitioning asks. A
// fixed large cap would instead credit scan-like traffic (uniform keys that
// repeat only over a huge population) with hits no plausible grant converts.
// maxGhostCap is the hard memory bound, minGhost the small-pool floor.
const (
	maxGhostCap = 4096
	minGhost    = 64
)

// NewPool builds a pool of capacityBytes split into pageBytes pages, storing
// entries whose size is tokens*bytesPerToken.
func NewPool(capacityBytes int64, pageBytes, bytesPerToken int, policy EvictPolicy) (*Pool, error) {
	if capacityBytes < 0 || pageBytes <= 0 || bytesPerToken <= 0 {
		return nil, fmt.Errorf("kvcache: invalid pool geometry (capacity %d, page %d, token %d)", capacityBytes, pageBytes, bytesPerToken)
	}
	return &Pool{
		pageBytes:     pageBytes,
		bytesPerToken: bytesPerToken,
		capacityPages: int(capacityBytes / int64(pageBytes)),
		policy:        policy,
		entries:       make(map[EntryKey]*Entry),
		lru:           list.New(),
		ghost:         make(map[EntryKey]*list.Element),
		ghostLRU:      list.New(),
		ghostCap:      maxGhostCap,
	}, nil
}

// PagesFor returns how many pages an entry of the given token count needs.
func (p *Pool) PagesFor(tokens int) int {
	bytes := tokens * p.bytesPerToken
	return (bytes + p.pageBytes - 1) / p.pageBytes
}

// CapacityBytes returns the pool's total size.
func (p *Pool) CapacityBytes() int64 { return int64(p.capacityPages) * int64(p.pageBytes) }

// SetCapacityBytes resizes the pool online — the partition controller's
// lever. Growth takes effect immediately; shrinking evicts unpinned victims
// under the pool's policy until the resident pages fit. When the evictable
// set runs out (pinned pages alone exceed the request) the capacity clamps
// to the resident footprint, so the invariant UsedBytes() <= CapacityBytes()
// holds at every step. Returns the applied capacity in bytes, which the
// caller must treat as authoritative (it may exceed the request after a
// clamp, and is rounded down to whole pages otherwise).
func (p *Pool) SetCapacityBytes(capacityBytes int64) int64 {
	if capacityBytes < 0 {
		capacityBytes = 0
	}
	pages := int(capacityBytes / int64(p.pageBytes))
	for p.usedPages > pages {
		if !p.evictOne() {
			break
		}
	}
	if p.usedPages > pages {
		pages = p.usedPages
	}
	p.capacityPages = pages
	return p.CapacityBytes()
}

// PinnedBytes returns the page-rounded bytes held by pinned entries — the
// hard floor below which SetCapacityBytes cannot shrink the pool.
func (p *Pool) PinnedBytes() int64 {
	var pages int
	for _, e := range p.entries {
		if e.Pinned {
			pages += e.Pages
		}
	}
	return int64(pages) * int64(p.pageBytes)
}

// UsedBytes returns the bytes held by resident entries (page-rounded).
func (p *Pool) UsedBytes() int64 { return int64(p.usedPages) * int64(p.pageBytes) }

// FreeBytes returns remaining capacity.
func (p *Pool) FreeBytes() int64 { return p.CapacityBytes() - p.UsedBytes() }

// Len returns the number of resident entries.
func (p *Pool) Len() int { return len(p.entries) }

// Lookup finds an entry, recording a hit or miss and refreshing recency.
// A miss whose key sits on the ghost list (recently evicted) additionally
// counts as a ghost hit — the would-have-hit signal capacity partitioning
// feeds on.
func (p *Pool) Lookup(k EntryKey) (*Entry, bool) {
	e, ok := p.entries[k]
	if !ok {
		p.Misses++
		if el, ghosted := p.ghost[k]; ghosted {
			p.GhostHits++
			p.GhostHitTokens += int64(el.Value.(ghostRec).tokens)
		}
		return nil, false
	}
	p.Hits++
	if e.lruElem != nil {
		p.lru.MoveToFront(e.lruElem)
	}
	return e, true
}

// Contains reports residency without touching stats or recency.
func (p *Pool) Contains(k EntryKey) bool {
	_, ok := p.entries[k]
	return ok
}

// MinHotness returns the lowest hotness among unpinned resident entries;
// ok is false when there are none. This is the threshold the hotness-aware
// scheduler compares incoming users against (§5.3).
func (p *Pool) MinHotness() (float64, bool) {
	switch p.policy {
	case EvictMinHotness:
		if len(p.hotHeap) == 0 {
			return 0, false
		}
		return p.hotHeap[0].Hotness, true
	default:
		min, found := 0.0, false
		for e := p.lru.Back(); e != nil; e = e.Prev() {
			ent := e.Value.(*Entry)
			if !found || ent.Hotness < min {
				min, found = ent.Hotness, true
			}
		}
		return min, found
	}
}

// Put inserts (or refreshes) an entry, evicting unpinned entries as needed.
// It reports the entry and whether it is resident afterwards; insertion fails
// (a rejection) when the entry cannot fit even after evicting everything
// evictable, or when pinned space plus this entry exceeds capacity.
//
// Re-Putting a resident key refreshes recency and hotness AND re-sizes the
// entry: page accounting follows the new token count, with the page delta
// charged (evicting victims as needed) or released. When a grown entry
// cannot fit even after evicting everything evictable, the old extent is
// kept (the entry stays resident at its previous size) and the failed grow
// counts as a rejection. A changed pinned flag takes effect on re-Put.
func (p *Pool) Put(k EntryKey, tokens int, hotness float64) (*Entry, bool) {
	return p.put(k, tokens, hotness, false)
}

// PutPinned inserts a placement-managed entry exempt from eviction — the
// HRCS item area uses this for replicated and sharded items.
func (p *Pool) PutPinned(k EntryKey, tokens int, hotness float64) (*Entry, bool) {
	return p.put(k, tokens, hotness, true)
}

func (p *Pool) put(k EntryKey, tokens int, hotness float64, pinned bool) (*Entry, bool) {
	if tokens <= 0 {
		return nil, false
	}
	if old, ok := p.entries[k]; ok {
		return p.refresh(old, tokens, hotness, pinned)
	}
	need := p.PagesFor(tokens)
	if need > p.capacityPages {
		p.Rejections++
		return nil, false
	}
	for p.usedPages+need > p.capacityPages {
		if !p.evictOne() {
			p.Rejections++
			return nil, false
		}
	}
	e := &Entry{Key: k, Tokens: tokens, Pages: need, Hotness: hotness, Pinned: pinned, resident: true, heapIdx: -1}
	p.entries[k] = e
	p.usedPages += need
	p.dropGhost(k)
	p.attach(e)
	return e, true
}

// refresh re-Puts a resident entry: recency, hotness, pinning, and — unlike
// the historical code path, which silently kept the stale Tokens/Pages — the
// page accounting all follow the caller's latest view of the entry. The
// entry is detached from the eviction structures for the duration so a grow
// can never evict the very entry being grown.
func (p *Pool) refresh(e *Entry, tokens int, hotness float64, pinned bool) (*Entry, bool) {
	e.Hotness = hotness
	p.detach(e)
	need := p.PagesFor(tokens)
	switch {
	case need > e.Pages:
		grew := true
		if need > p.capacityPages {
			grew = false
		}
		for grew && p.usedPages-e.Pages+need > p.capacityPages {
			if !p.evictOne() {
				grew = false
			}
		}
		if !grew {
			// Reject-and-keep-old: the grown extent cannot fit, so the entry
			// survives at its previous size and the grow is a rejection.
			p.Rejections++
			e.Pinned = pinned
			p.attach(e)
			return e, true
		}
		p.usedPages += need - e.Pages
		e.Tokens, e.Pages = tokens, need
	case need < e.Pages:
		p.usedPages -= e.Pages - need
		e.Tokens, e.Pages = tokens, need
	default:
		e.Tokens = tokens
	}
	e.Pinned = pinned
	p.attach(e)
	return e, true
}

// detach removes an entry from the eviction structures (LRU list or hotness
// heap) without touching residency or accounting.
func (p *Pool) detach(e *Entry) {
	if e.lruElem != nil {
		p.lru.Remove(e.lruElem)
		e.lruElem = nil
	}
	if e.heapIdx >= 0 {
		heap.Remove(&p.hotHeap, e.heapIdx)
	}
}

// attach (re-)enters an unpinned entry into the pool's eviction structure at
// most-recent position; pinned entries stay out of both structures.
func (p *Pool) attach(e *Entry) {
	if e.Pinned {
		return
	}
	if p.policy == EvictMinHotness {
		if e.heapIdx < 0 {
			heap.Push(&p.hotHeap, e)
		}
	} else if e.lruElem == nil {
		e.lruElem = p.lru.PushFront(e)
	}
}

// evictOne removes one unpinned victim under the pool's policy.
func (p *Pool) evictOne() bool {
	var victim *Entry
	switch p.policy {
	case EvictMinHotness:
		if len(p.hotHeap) == 0 {
			return false
		}
		victim = p.hotHeap[0]
	default:
		back := p.lru.Back()
		if back == nil {
			return false
		}
		victim = back.Value.(*Entry)
	}
	p.remove(victim)
	p.Evictions++
	p.addGhost(victim.Key, victim.Tokens)
	if p.OnEvict != nil {
		p.OnEvict(victim)
	}
	return true
}

// ghostRec is one shadow entry: an evicted key and the tokens it held.
type ghostRec struct {
	key    EntryKey
	tokens int
}

// ghostLimit sizes the shadow list to the current resident count (clamped to
// [minGhost, ghostCap]).
func (p *Pool) ghostLimit() int {
	n := len(p.entries)
	if n < minGhost {
		n = minGhost
	}
	if n > p.ghostCap {
		n = p.ghostCap
	}
	return n
}

// addGhost records an evicted key on the bounded ghost FIFO.
func (p *Pool) addGhost(k EntryKey, tokens int) {
	if p.ghostCap <= 0 {
		return
	}
	if el, ok := p.ghost[k]; ok {
		el.Value = ghostRec{key: k, tokens: tokens}
		p.ghostLRU.MoveToFront(el)
		return
	}
	for limit := p.ghostLimit(); p.ghostLRU.Len() >= limit; {
		oldest := p.ghostLRU.Back()
		p.ghostLRU.Remove(oldest)
		delete(p.ghost, oldest.Value.(ghostRec).key)
	}
	p.ghost[k] = p.ghostLRU.PushFront(ghostRec{key: k, tokens: tokens})
}

// dropGhost forgets a key that became resident again.
func (p *Pool) dropGhost(k EntryKey) {
	if el, ok := p.ghost[k]; ok {
		p.ghostLRU.Remove(el)
		delete(p.ghost, k)
	}
}

// Remove deletes an entry regardless of pinning (placement refresh path).
func (p *Pool) Remove(k EntryKey) bool {
	e, ok := p.entries[k]
	if !ok {
		return false
	}
	p.remove(e)
	return true
}

func (p *Pool) remove(e *Entry) {
	delete(p.entries, e.Key)
	p.usedPages -= e.Pages
	if e.lruElem != nil {
		p.lru.Remove(e.lruElem)
		e.lruElem = nil
	}
	if e.heapIdx >= 0 {
		heap.Remove(&p.hotHeap, e.heapIdx)
	}
	e.resident = false
}

// UpdateHotness refreshes an entry's hotness estimate (the meta service's
// asynchronous decay path) and restores heap order.
func (p *Pool) UpdateHotness(k EntryKey, hotness float64) bool {
	e, ok := p.entries[k]
	if !ok {
		return false
	}
	e.Hotness = hotness
	p.fixHeap(e)
	return true
}

func (p *Pool) fixHeap(e *Entry) {
	if e.heapIdx >= 0 {
		heap.Fix(&p.hotHeap, e.heapIdx)
	}
}

// entryHeap is a min-heap over hotness.
type entryHeap []*Entry

func (h entryHeap) Len() int            { return len(h) }
func (h entryHeap) Less(i, j int) bool  { return h[i].Hotness < h[j].Hotness }
func (h entryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].heapIdx = i; h[j].heapIdx = j }
func (h *entryHeap) Push(x interface{}) { e := x.(*Entry); e.heapIdx = len(*h); *h = append(*h, e) }
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.heapIdx = -1
	*h = old[:n-1]
	return e
}
