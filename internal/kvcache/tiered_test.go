package kvcache

import "testing"

func mustTiered(t *testing.T, fastCap, slowCap int64) *TieredPool {
	t.Helper()
	fast, err := NewPool(fastCap, 1024, 10, EvictLRU)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewPool(slowCap, 1024, 10, EvictLRU)
	if err != nil {
		t.Fatal(err)
	}
	return NewTieredPool(fast, slow)
}

func TestTieredSpillOnEviction(t *testing.T) {
	tp := mustTiered(t, 2*1024, 4*1024)
	tp.Put(uk(1), 100, 1)
	tp.Put(uk(2), 100, 1)
	tp.Put(uk(3), 100, 1) // evicts 1 from fast -> spills to slow
	if tp.Fast.Contains(uk(1)) {
		t.Fatal("entry 1 still in fast tier")
	}
	if !tp.Slow.Contains(uk(1)) {
		t.Fatal("eviction did not spill to slow tier")
	}
	if !tp.Contains(uk(1)) {
		t.Fatal("Contains should cover both tiers")
	}
}

func TestTieredSlowHitPromotes(t *testing.T) {
	tp := mustTiered(t, 2*1024, 4*1024)
	tp.Put(uk(1), 100, 1)
	tp.Put(uk(2), 100, 1)
	tp.Put(uk(3), 100, 1) // 1 spills
	e, lvl := tp.Lookup(uk(1))
	if lvl != TierSlow || e == nil {
		t.Fatalf("lookup level %v", lvl)
	}
	if tp.SlowHits != 1 {
		t.Fatalf("slow hits %d", tp.SlowHits)
	}
	// Promoted back: next lookup is fast, and the displaced entry spilled.
	if _, lvl := tp.Lookup(uk(1)); lvl != TierFast {
		t.Fatalf("post-promotion level %v", lvl)
	}
	if tp.Slow.Contains(uk(1)) {
		t.Fatal("promoted entry still in slow tier")
	}
	if !tp.Slow.Contains(uk(2)) {
		t.Fatal("displaced entry did not spill")
	}
}

func TestTieredMiss(t *testing.T) {
	tp := mustTiered(t, 1024, 1024)
	if e, lvl := tp.Lookup(uk(9)); lvl != TierMiss || e != nil {
		t.Fatalf("expected miss, got %v", lvl)
	}
}

func TestTieredSlowTierAlsoBounded(t *testing.T) {
	tp := mustTiered(t, 1024, 2*1024)
	for id := uint64(1); id <= 6; id++ {
		tp.Put(uk(id), 100, 1)
	}
	// Fast holds 1 entry, slow holds 2; the rest fell off the end.
	total := tp.Fast.Len() + tp.Slow.Len()
	if total != 3 {
		t.Fatalf("%d entries across tiers, want 3", total)
	}
	if tp.Contains(uk(1)) {
		t.Fatal("oldest entry should be gone entirely")
	}
}

func TestTieredUpdateHotness(t *testing.T) {
	tp := mustTiered(t, 2*1024, 2*1024)
	tp.Put(uk(1), 100, 1)
	tp.Put(uk(2), 100, 1)
	tp.Put(uk(3), 100, 1) // 1 in slow now
	if !tp.UpdateHotness(uk(1), 9) {
		t.Fatal("slow-tier hotness update failed")
	}
	if !tp.UpdateHotness(uk(3), 9) {
		t.Fatal("fast-tier hotness update failed")
	}
	if tp.UpdateHotness(uk(99), 1) {
		t.Fatal("absent entry updated")
	}
}

func TestTierLevelString(t *testing.T) {
	if TierMiss.String() != "miss" || TierFast.String() != "fast" || TierSlow.String() != "slow" {
		t.Fatal("TierLevel strings")
	}
}

// TestTieredLookupNoSilentDrop pins the double-failure bug: when promotion to
// the fast tier fails (pinned-full) and the entry cannot return to the slow
// tier either, the historical remove-first ordering dropped the entry from
// both tiers while still reporting a TierSlow hit. A reported hit must always
// leave the entry resident somewhere; when it truly cannot stay resident the
// lookup must report a miss.
func TestTieredLookupNoSilentDrop(t *testing.T) {
	tp := mustTiered(t, 2*1024, 4*1024)
	// Fill the fast tier with pinned entries so promotion can never succeed.
	tp.Fast.PutPinned(ik(1), 100, 0)
	tp.Fast.PutPinned(ik(2), 100, 0)
	if _, ok := tp.Slow.Put(uk(7), 100, 1); !ok {
		t.Fatal("seeding slow tier failed")
	}
	for i := 0; i < 5; i++ {
		e, lvl := tp.Lookup(uk(7))
		if lvl != TierSlow || e == nil {
			t.Fatalf("iter %d: lookup = %v, want TierSlow", i, lvl)
		}
		if !tp.Slow.Contains(uk(7)) {
			t.Fatalf("iter %d: reported hit but entry resident in neither tier", i)
		}
	}
	if tp.SlowHits != 5 {
		t.Fatalf("slow hits = %d, want 5", tp.SlowHits)
	}
}

// TestTieredLookupRestoresDisplacedEntry exercises the nastiest reachable
// path: the failed promotion itself spills a fast-tier victim into the slow
// tier, and that spill displaces the very entry being looked up. The restore
// re-Put must re-home it so the reported TierSlow hit is truthful.
func TestTieredLookupRestoresDisplacedEntry(t *testing.T) {
	tp := mustTiered(t, 3*1024, 4*1024)
	tp.Fast.PutPinned(ik(1), 100, 0) // 1 page, immovable
	tp.Fast.Put(ik(2), 100, 0.5)     // 1 page, the spill victim
	tp.Slow.PutPinned(ik(9), 100, 0) // 1 page, immovable
	if _, ok := tp.Slow.Put(uk(7), 300, 1); !ok {
		t.Fatal("seeding slow tier failed") // 3 pages: slow now full
	}
	// Lookup uk(7): promotion needs 3 fast pages; evicting ik(2) spills it
	// into the full slow tier, displacing uk(7); promotion then fails on the
	// pinned remainder. The restore must put uk(7) back (re-evicting ik(2)).
	e, lvl := tp.Lookup(uk(7))
	if lvl != TierSlow || e == nil {
		t.Fatalf("lookup = %v, want TierSlow", lvl)
	}
	if !tp.Slow.Contains(uk(7)) {
		t.Fatal("reported hit but displaced entry was not restored")
	}
	if e.Tokens != 300 {
		t.Fatalf("restored entry tokens = %d, want 300", e.Tokens)
	}
	if tp.Fast.Contains(uk(7)) {
		t.Fatal("promotion should have failed")
	}
}
