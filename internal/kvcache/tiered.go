package kvcache

// TieredPool layers a fast tier (host DRAM) over a slow spill tier (cheap
// local storage) — the multi-tier extension the paper defers in §3.3's
// footnote ("Utilizing cheap local/remote storage can achieve a larger
// cost-effective storage space ... we leave this for our future
// exploration"). Fast-tier victims spill to the slow tier instead of being
// dropped; slow-tier hits promote back to the fast tier. The caller charges
// slow hits their higher load cost (see cluster.Config.SlowTier*).
type TieredPool struct {
	Fast, Slow *Pool

	// SlowHits counts lookups served from the spill tier.
	SlowHits int64
}

// TierLevel reports where a lookup was served from.
type TierLevel int

const (
	// TierMiss means neither tier holds the entry.
	TierMiss TierLevel = iota
	// TierFast is a DRAM hit.
	TierFast
	// TierSlow is a spill-tier hit (promoted back to fast).
	TierSlow
)

// String implements fmt.Stringer.
func (l TierLevel) String() string {
	switch l {
	case TierFast:
		return "fast"
	case TierSlow:
		return "slow"
	default:
		return "miss"
	}
}

// NewTieredPool wires two pools together: fast-tier evictions spill into
// slow. Both pools must exist; the slow tier typically uses plain LRU.
func NewTieredPool(fast, slow *Pool) *TieredPool {
	t := &TieredPool{Fast: fast, Slow: slow}
	fast.OnEvict = func(e *Entry) {
		// Spilled entries keep their hotness; the slow tier applies its own
		// replacement among spilled victims.
		slow.Put(e.Key, e.Tokens, e.Hotness)
	}
	return t
}

// Lookup checks the fast tier, then the slow tier. A slow hit is promoted
// back to the fast tier (possibly spilling someone else down).
//
// Promotion runs BEFORE the entry leaves the slow tier: the historical
// remove-first ordering meant a failed promotion followed by a failed
// restoring re-Put dropped the entry from both tiers while still reporting a
// TierSlow hit. With promote-then-remove, a failed promotion leaves the
// entry where it was; only when spill traffic from the failed attempt
// displaced it does the restore path run, and if even that fails the lookup
// reports an honest miss instead of a phantom hit.
func (t *TieredPool) Lookup(k EntryKey) (*Entry, TierLevel) {
	if e, ok := t.Fast.Lookup(k); ok {
		return e, TierFast
	}
	e, ok := t.Slow.Lookup(k)
	if !ok {
		return nil, TierMiss
	}
	tokens, hotness := e.Tokens, e.Hotness
	if promoted, ok := t.Fast.Put(k, tokens, hotness); ok {
		t.SlowHits++
		t.Slow.Remove(k)
		return promoted, TierSlow
	}
	// Promotion failed (pinned-full fast tier): serve from slow in place.
	// The entry normally never left the slow tier, but the failed promotion
	// may have spilled victims down hard enough to displace it — restore it
	// so a reported hit always leaves the entry resident somewhere.
	if t.Slow.Contains(k) {
		t.SlowHits++
		return e, TierSlow
	}
	if back, ok := t.Slow.Put(k, tokens, hotness); ok {
		t.SlowHits++
		return back, TierSlow
	}
	// Nowhere to keep the entry resident: correct the slow tier's counters
	// (its Lookup above recorded a hit) and report the truth.
	t.Slow.Hits--
	t.Slow.Misses++
	return nil, TierMiss
}

// Contains reports residency in either tier without touching stats.
func (t *TieredPool) Contains(k EntryKey) bool {
	return t.Fast.Contains(k) || t.Slow.Contains(k)
}

// Put inserts into the fast tier (evictions spill down automatically).
func (t *TieredPool) Put(k EntryKey, tokens int, hotness float64) (*Entry, bool) {
	return t.Fast.Put(k, tokens, hotness)
}

// UpdateHotness refreshes whichever tier holds the entry.
func (t *TieredPool) UpdateHotness(k EntryKey, hotness float64) bool {
	if t.Fast.UpdateHotness(k, hotness) {
		return true
	}
	return t.Slow.UpdateHotness(k, hotness)
}

// MinHotness reports the fast tier's admission threshold: the slow tier
// absorbs evictions, so admission competes for DRAM only.
func (t *TieredPool) MinHotness() (float64, bool) { return t.Fast.MinHotness() }
