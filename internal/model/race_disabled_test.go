//go:build !race

package model

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
