package model

import (
	"math/rand"
	"testing"

	"bat/internal/tensor"
)

func tinyHSTU(vocab int) Config {
	c := TinyGR(vocab)
	c.Name = "TinyHSTU"
	c.Attn = AttnHSTU
	return c
}

func TestHSTUForwardDiffersFromSoftmax(t *testing.T) {
	toks := []int{1, 2, 3, 4, 5}
	pos := seqPos(5)
	soft := NewWeights(TinyGR(64), 7)
	hstuCfg := tinyHSTU(64)
	hstu := NewWeights(hstuCfg, 7) // same seed, same parameters
	h1 := soft.Forward(toks, pos, nil, nil)
	h2 := hstu.Forward(toks, pos, nil, nil)
	if tensor.MaxAbsDiff(h1.Data, h2.Data) == 0 {
		t.Fatal("HSTU attention should change outputs")
	}
}

// TestHSTUPrefixCacheEquivalence: the paper's prefix-caching algebra must be
// exact for the HSTU family too.
func TestHSTUPrefixCacheEquivalence(t *testing.T) {
	w := NewWeights(tinyHSTU(128), 9)
	rng := rand.New(rand.NewSource(4))
	toks := randTokens(rng, 20, 128)
	pos := seqPos(20)
	full := w.Forward(toks, pos, nil, NewKVCache(w.Config()))
	cache := NewKVCache(w.Config())
	w.Forward(toks[:12], pos[:12], nil, cache)
	suffix := w.Forward(toks[12:], pos[12:], nil, cache)
	want := full.Data[12*w.Config().Hidden:]
	if d := tensor.MaxAbsDiff(suffix.Data, want); d != 0 {
		t.Fatalf("HSTU cached suffix deviates by %v", d)
	}
}

// TestHSTUMaskIsolation: a fully-masked token has no influence under HSTU
// weighting either.
func TestHSTUMaskIsolation(t *testing.T) {
	w := NewWeights(tinyHSTU(128), 11)
	rng := rand.New(rand.NewSource(5))
	toks := randTokens(rng, 8, 128)
	mask := MaskFunc(func(q, k int) bool { return k != 2 })
	h1 := w.Forward(toks, seqPos(8), mask, nil)
	toks2 := append([]int(nil), toks...)
	toks2[2] = (toks2[2] + 1) % 128
	h2 := w.Forward(toks2, seqPos(8), mask, nil)
	hid := w.Config().Hidden
	for i := 0; i < 8; i++ {
		if i == 2 {
			continue
		}
		if d := tensor.MaxAbsDiff(h1.Data[i*hid:(i+1)*hid], h2.Data[i*hid:(i+1)*hid]); d != 0 {
			t.Fatalf("masked token influenced token %d by %v", i, d)
		}
	}
}

// TestHSTUBlockSegmentInvariance: HSTU weighting normalizes by the visible
// context size, so two mask-isolated segments computed jointly must match
// independent computation — the property Item-as-prefix needs on HSTU.
func TestHSTUBlockSegmentInvariance(t *testing.T) {
	w := NewWeights(tinyHSTU(128), 13)
	rng := rand.New(rand.NewSource(6))
	segA := randTokens(rng, 4, 128)
	segB := randTokens(rng, 5, 128)

	ca := NewKVCache(w.Config())
	ha := w.Forward(segA, seqPos(4), nil, ca)

	joint := append(append([]int(nil), segA...), segB...)
	pos := append(seqPos(4), seqPos(5)...)
	mask := MaskFunc(func(q, k int) bool { return (q < 4) == (k < 4) })
	hj := w.Forward(joint, pos, mask, NewKVCache(w.Config()))

	if d := tensor.MaxAbsDiff(ha.Data, hj.Data[:4*w.Config().Hidden]); d > 1e-6 {
		t.Fatalf("segment A computed jointly deviates by %v", d)
	}
}

func TestHSTUNoNaNWithAllMasked(t *testing.T) {
	w := NewWeights(tinyHSTU(32), 3)
	mask := MaskFunc(func(q, k int) bool { return false })
	h := w.Forward([]int{1, 2}, seqPos(2), mask, nil)
	for _, v := range h.Data {
		if v != v {
			t.Fatal("NaN under all-masked HSTU attention")
		}
	}
}
