//go:build race

package model

// raceEnabled reports whether the race detector is active. Its sync.Pool
// instrumentation randomly drops cached buffers, so allocation-count
// assertions are skipped under -race.
const raceEnabled = true
