package model

import (
	"fmt"
	"math"
	"math/rand"

	"bat/internal/tensor"
)

// layerWeights holds one transformer block's parameters.
type layerWeights struct {
	attnNorm []float32
	wq       *tensor.Matrix // Hidden x Heads*HeadDim
	wk       *tensor.Matrix // Hidden x KVHeads*HeadDim
	wv       *tensor.Matrix // Hidden x KVHeads*HeadDim
	wo       *tensor.Matrix // Heads*HeadDim x Hidden
	ffnNorm  []float32
	wGate    *tensor.Matrix // Hidden x FFNDim
	wUp      *tensor.Matrix // Hidden x FFNDim
	wDown    *tensor.Matrix // FFNDim x Hidden
}

// Weights is a fully materialized transformer. The output projection is tied
// to the embedding table, as in the paper's logit formulation z = W_out h.
type Weights struct {
	cfg       Config
	embed     *tensor.Matrix // Vocab x Hidden, tied with the output head
	posEmbed  *tensor.Matrix // MaxPos x Hidden when cfg.AbsPos
	layers    []layerWeights
	finalNorm []float32
	rope      *tensor.RoPETable // precomputed inverse-frequency ladder
}

// NewWeights builds a transformer with deterministic seeded Gaussian
// initialization. It panics on an invalid config (programmer error).
func NewWeights(cfg Config, seed int64) *Weights {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	std := float32(1 / math.Sqrt(float64(cfg.Hidden)))
	randMat := func(r, c int) *tensor.Matrix {
		m := tensor.NewMatrix(r, c)
		for i := range m.Data {
			m.Data[i] = float32(rng.NormFloat64()) * std
		}
		return m
	}
	ones := func(n int) []float32 {
		v := make([]float32, n)
		for i := range v {
			v[i] = 1
		}
		return v
	}
	w := &Weights{
		cfg:       cfg,
		embed:     randMat(cfg.Vocab, cfg.Hidden),
		layers:    make([]layerWeights, cfg.Layers),
		finalNorm: ones(cfg.Hidden),
		rope:      tensor.RoPETableFor(cfg.HeadDim, cfg.ropeBase()),
	}
	if cfg.AbsPos {
		w.posEmbed = randMat(cfg.MaxPos, cfg.Hidden)
	}
	qDim := cfg.Heads * cfg.HeadDim
	kvDim := cfg.KVHeads * cfg.HeadDim
	for l := range w.layers {
		w.layers[l] = layerWeights{
			attnNorm: ones(cfg.Hidden),
			wq:       randMat(cfg.Hidden, qDim),
			wk:       randMat(cfg.Hidden, kvDim),
			wv:       randMat(cfg.Hidden, kvDim),
			wo:       randMat(qDim, cfg.Hidden),
			ffnNorm:  ones(cfg.Hidden),
			wGate:    randMat(cfg.Hidden, cfg.FFNDim),
			wUp:      randMat(cfg.Hidden, cfg.FFNDim),
			wDown:    randMat(cfg.FFNDim, cfg.Hidden),
		}
	}
	return w
}

// Config returns the architecture.
func (w *Weights) Config() Config { return w.cfg }

// SetEmbedding overwrites the embedding row for a token. The ranking package
// uses this to plant item/attribute latent vectors so the constructed model
// genuinely ranks (see internal/ranking).
func (w *Weights) SetEmbedding(token int, vec []float32) {
	if token < 0 || token >= w.cfg.Vocab {
		panic(fmt.Sprintf("model: token %d outside vocab %d", token, w.cfg.Vocab))
	}
	if len(vec) != w.cfg.Hidden {
		panic(fmt.Sprintf("model: embedding length %d != hidden %d", len(vec), w.cfg.Hidden))
	}
	copy(w.embed.Row(token), vec)
}

// Embedding returns a copy of a token's embedding row.
func (w *Weights) Embedding(token int) []float32 {
	return append([]float32(nil), w.embed.Row(token)...)
}

// logitParallelCutoff is the dot-product volume below which candidate
// scoring stays serial; tiny projections don't pay for pool dispatch.
const logitParallelCutoff = 1 << 15

// Logits projects a final hidden state onto the full vocabulary. Large
// vocabularies fan out across the tensor worker pool; every logit is an
// independent dot product, so the result is identical at any pool width.
func (w *Weights) Logits(h []float32) []float32 {
	out := make([]float32, w.cfg.Vocab)
	score := func(lo, hi int) {
		for v := lo; v < hi; v++ {
			out[v] = tensor.Dot(h, w.embed.Row(v))
		}
	}
	if w.cfg.Vocab*w.cfg.Hidden < logitParallelCutoff {
		score(0, w.cfg.Vocab)
		return out
	}
	tensor.ParallelBlocks(w.cfg.Vocab, 256, score)
	return out
}

// LogitsFor projects a final hidden state onto only the given token IDs —
// the candidate identifier tokens in the paper's scoring rule. Much cheaper
// than a full vocabulary projection when scoring ~100 candidates; big
// candidate sets use the worker pool like Logits.
func (w *Weights) LogitsFor(h []float32, ids []int) []float32 {
	for _, id := range ids {
		if id < 0 || id >= w.cfg.Vocab {
			panic(fmt.Sprintf("model: token %d outside vocab %d", id, w.cfg.Vocab))
		}
	}
	out := make([]float32, len(ids))
	score := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = tensor.Dot(h, w.embed.Row(ids[i]))
		}
	}
	if len(ids)*w.cfg.Hidden < logitParallelCutoff {
		score(0, len(ids))
		return out
	}
	tensor.ParallelBlocks(len(ids), 64, score)
	return out
}
