package model

import (
	"math/rand"
	"testing"

	"bat/internal/tensor"
)

func tinyWeights(t testing.TB, vocab int) *Weights {
	t.Helper()
	return NewWeights(TinyGR(vocab), 7)
}

func seqPos(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

func randTokens(rng *rand.Rand, n, vocab int) []int {
	toks := make([]int, n)
	for i := range toks {
		toks[i] = rng.Intn(vocab)
	}
	return toks
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"valid", func(c *Config) {}, true},
		{"zero layers", func(c *Config) { c.Layers = 0 }, false},
		{"heads not multiple of kv", func(c *Config) { c.Heads = 3 }, false},
		{"odd head dim", func(c *Config) { c.HeadDim = 7 }, false},
		{"abs pos without max", func(c *Config) { c.AbsPos = true; c.MaxPos = 0 }, false},
		{"zero vocab", func(c *Config) { c.Vocab = 0 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := TinyGR(100)
			tc.mut(&c)
			err := c.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestKVBytesPerTokenMatchesTable2(t *testing.T) {
	// Table 2 of the paper.
	want := map[string]int{
		"Qwen2-1.5B": 28672,
		"Qwen2-7B":   57344,
		"Llama3-1B":  32768,
	}
	for _, cfg := range PaperModels() {
		if got := cfg.KVBytesPerToken(); got != want[cfg.Name] {
			t.Errorf("%s: KV bytes/token = %d, want %d", cfg.Name, got, want[cfg.Name])
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: invalid paper config: %v", cfg.Name, err)
		}
	}
}

func TestWeightsDeterministicBySeed(t *testing.T) {
	a := NewWeights(TinyGR(64), 3)
	b := NewWeights(TinyGR(64), 3)
	c := NewWeights(TinyGR(64), 4)
	toks := []int{1, 2, 3, 4}
	ha := a.Forward(toks, seqPos(4), nil, nil)
	hb := b.Forward(toks, seqPos(4), nil, nil)
	hc := c.Forward(toks, seqPos(4), nil, nil)
	if tensor.MaxAbsDiff(ha.Data, hb.Data) != 0 {
		t.Fatal("same seed must give identical outputs")
	}
	if tensor.MaxAbsDiff(ha.Data, hc.Data) == 0 {
		t.Fatal("different seeds should give different outputs")
	}
}

// TestPrefixCacheEquivalence is the paper's correctness premise for prefix
// caching (§3.2): computing a suffix against a cached prefix must equal
// recomputing the full sequence.
func TestPrefixCacheEquivalence(t *testing.T) {
	w := tinyWeights(t, 128)
	rng := rand.New(rand.NewSource(11))
	toks := randTokens(rng, 24, 128)
	pos := seqPos(24)

	full := w.Forward(toks, pos, nil, NewKVCache(w.Config()))

	for _, split := range []int{1, 8, 23} {
		cache := NewKVCache(w.Config())
		w.Forward(toks[:split], pos[:split], nil, cache)
		suffix := w.Forward(toks[split:], pos[split:], nil, cache)
		want := full.Data[split*w.Config().Hidden:]
		if d := tensor.MaxAbsDiff(suffix.Data, want); d != 0 {
			t.Errorf("split %d: cached suffix deviates from full recompute by %v", split, d)
		}
		if cache.Len() != len(toks) {
			t.Errorf("split %d: cache length %d, want %d", split, cache.Len(), len(toks))
		}
	}
}

// TestCausality: a token's hidden state must not depend on later tokens.
func TestCausality(t *testing.T) {
	w := tinyWeights(t, 128)
	rng := rand.New(rand.NewSource(5))
	toks := randTokens(rng, 10, 128)
	h1 := w.Forward(toks, seqPos(10), nil, nil)

	toks2 := append([]int(nil), toks...)
	toks2[9] = (toks2[9] + 1) % 128
	h2 := w.Forward(toks2, seqPos(10), nil, nil)

	hidden := w.Config().Hidden
	if d := tensor.MaxAbsDiff(h1.Data[:9*hidden], h2.Data[:9*hidden]); d != 0 {
		t.Fatalf("changing the last token changed earlier states by %v", d)
	}
	if tensor.MaxAbsDiff(h1.Row(9), h2.Row(9)) == 0 {
		t.Fatal("changing the last token should change its own state")
	}
}

// TestMaskBlocksInfluence: a fully-masked-out token must not affect others.
func TestMaskBlocksInfluence(t *testing.T) {
	w := tinyWeights(t, 128)
	rng := rand.New(rand.NewSource(9))
	toks := randTokens(rng, 8, 128)
	// Block every edge into token index 3.
	mask := MaskFunc(func(q, k int) bool { return k != 3 })

	h1 := w.Forward(toks, seqPos(8), mask, nil)
	toks2 := append([]int(nil), toks...)
	toks2[3] = (toks2[3] + 1) % 128
	h2 := w.Forward(toks2, seqPos(8), mask, nil)

	hidden := w.Config().Hidden
	for i := 0; i < 8; i++ {
		if i == 3 {
			continue
		}
		if d := tensor.MaxAbsDiff(h1.Data[i*hidden:(i+1)*hidden], h2.Data[i*hidden:(i+1)*hidden]); d != 0 {
			t.Fatalf("masked token influenced token %d by %v", i, d)
		}
	}
}

func TestSelfAttentionAlwaysAllowed(t *testing.T) {
	w := tinyWeights(t, 64)
	// A mask that blocks everything still leaves the self edge, so the
	// forward pass must produce finite outputs.
	mask := MaskFunc(func(q, k int) bool { return false })
	h := w.Forward([]int{1, 2, 3}, seqPos(3), mask, nil)
	for _, v := range h.Data {
		if v != v { // NaN check
			t.Fatal("NaN in output under all-blocking mask")
		}
	}
}

func TestForwardPanicsOnBadToken(t *testing.T) {
	w := tinyWeights(t, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-vocab token")
		}
	}()
	w.Forward([]int{16}, []int{0}, nil, nil)
}

func TestForwardPanicsOnLenMismatch(t *testing.T) {
	w := tinyWeights(t, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for len mismatch")
		}
	}()
	w.Forward([]int{1, 2}, []int{0}, nil, nil)
}

func TestCacheTruncateThenRecompute(t *testing.T) {
	w := tinyWeights(t, 128)
	rng := rand.New(rand.NewSource(21))
	toks := randTokens(rng, 12, 128)
	pos := seqPos(12)

	cache := NewKVCache(w.Config())
	w.Forward(toks, pos, nil, cache)
	first := w.Forward(toks[8:], pos[8:], nil, mustTrunc(cache, 8))
	// Truncate back to 8 and recompute the same suffix: identical result.
	again := w.Forward(toks[8:], pos[8:], nil, mustTrunc(cache, 8))
	if tensor.MaxAbsDiff(first.Data, again.Data) != 0 {
		t.Fatal("truncate+recompute should be deterministic")
	}
	if cache.Len() != 12 {
		t.Fatalf("cache length %d after recompute, want 12", cache.Len())
	}
}

func mustTrunc(c *KVCache, n int) *KVCache {
	c.Truncate(n)
	return c
}

func TestCacheTruncatePanicsOutOfRange(t *testing.T) {
	c := NewKVCache(TinyGR(16))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Truncate(1)
}

func TestCacheCloneIndependent(t *testing.T) {
	w := tinyWeights(t, 64)
	cache := NewKVCache(w.Config())
	w.Forward([]int{1, 2, 3}, seqPos(3), nil, cache)
	clone := cache.Clone()
	w.Forward([]int{4}, []int{3}, nil, cache)
	if clone.Len() != 3 || cache.Len() != 4 {
		t.Fatalf("clone len %d / cache len %d", clone.Len(), cache.Len())
	}
}

// TestConcatCachesEquivalence: computing two independent segments (each
// blind to the other) then concatenating their caches must equal computing
// both segments in one pass under a mask that separates them — the algebra
// Item-as-prefix assembly relies on.
func TestConcatCachesEquivalence(t *testing.T) {
	w := tinyWeights(t, 128)
	rng := rand.New(rand.NewSource(33))
	segA := randTokens(rng, 5, 128)
	segB := randTokens(rng, 6, 128)

	// Independent computation: each segment with local positions 0..len-1.
	ca := NewKVCache(w.Config())
	w.Forward(segA, seqPos(5), nil, ca)
	cb := NewKVCache(w.Config())
	w.Forward(segB, seqPos(6), nil, cb)
	merged := ConcatCaches(ca, cb)
	if merged.Len() != 11 {
		t.Fatalf("merged cache len %d, want 11", merged.Len())
	}

	// Joint computation with a block-diagonal mask and shared start positions.
	joint := append(append([]int(nil), segA...), segB...)
	pos := append(seqPos(5), seqPos(6)...)
	mask := MaskFunc(func(q, k int) bool {
		return (q < 5) == (k < 5) // tokens only see their own segment
	})
	cj := NewKVCache(w.Config())
	w.Forward(joint, pos, mask, cj)

	// The merged cache must now serve a suffix exactly like the joint cache.
	suffix := []int{7, 8, 9}
	spos := []int{11, 12, 13}
	h1 := w.Forward(suffix, spos, nil, merged)
	h2 := w.Forward(suffix, spos, nil, cj)
	if d := tensor.MaxAbsDiff(h1.Data, h2.Data); d > 1e-5 {
		t.Fatalf("suffix over concatenated caches deviates by %v", d)
	}
}

func TestConcatCachesRejectsMismatchedArch(t *testing.T) {
	a := NewKVCache(TinyGR(16))
	b := NewKVCache(TinyGRAbsPos(16, 8))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched architectures")
		}
	}()
	ConcatCaches(a, b)
}

func TestLogitsForMatchesFullLogits(t *testing.T) {
	w := tinyWeights(t, 64)
	h := w.Forward([]int{1, 2, 3}, seqPos(3), nil, nil)
	last := h.Row(2)
	full := w.Logits(last)
	ids := []int{5, 0, 63}
	sub := w.LogitsFor(last, ids)
	for i, id := range ids {
		if sub[i] != full[id] {
			t.Fatalf("LogitsFor[%d] = %v, full[%d] = %v", i, sub[i], id, full[id])
		}
	}
}

func TestSetEmbeddingRoundTrip(t *testing.T) {
	w := tinyWeights(t, 32)
	vec := make([]float32, w.Config().Hidden)
	vec[0] = 42
	w.SetEmbedding(7, vec)
	got := w.Embedding(7)
	if got[0] != 42 {
		t.Fatalf("embedding not set: %v", got[0])
	}
	// Embedding returns a copy.
	got[0] = 0
	if w.Embedding(7)[0] != 42 {
		t.Fatal("Embedding must return a copy")
	}
}

func TestAbsPosMakesModelPositionSensitive(t *testing.T) {
	cfg := TinyGRAbsPos(64, 100)
	w := NewWeights(cfg, 7)
	toks := []int{3, 4, 5}
	h1 := w.Forward(toks, []int{0, 1, 2}, nil, nil)
	h2 := w.Forward(toks, []int{10, 11, 12}, nil, nil)
	if tensor.MaxAbsDiff(h1.Data, h2.Data) == 0 {
		t.Fatal("AbsPos model should be sensitive to absolute position shifts")
	}
}

// TestRoPEOnlyModelShiftInvariantAttention: without AbsPos, shifting all
// positions by a constant must leave hidden states unchanged, because RoPE
// attention depends only on relative offsets. This is the property that lets
// Item-as-prefix reposition segments safely.
func TestRoPEShiftInvariance(t *testing.T) {
	w := tinyWeights(t, 64)
	toks := []int{3, 9, 27, 14}
	h1 := w.Forward(toks, []int{0, 1, 2, 3}, nil, nil)
	h2 := w.Forward(toks, []int{50, 51, 52, 53}, nil, nil)
	if d := tensor.MaxAbsDiff(h1.Data, h2.Data); d > 2e-5 {
		t.Fatalf("RoPE-only model not shift invariant: deviates by %v", d)
	}
}

func BenchmarkForwardTiny256(b *testing.B) {
	w := NewWeights(TinyGR(512), 1)
	rng := rand.New(rand.NewSource(1))
	toks := randTokens(rng, 256, 512)
	pos := seqPos(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Forward(toks, pos, nil, NewKVCache(w.Config()))
	}
}

func BenchmarkForwardSuffixWithPrefix(b *testing.B) {
	w := NewWeights(TinyGR(512), 1)
	rng := rand.New(rand.NewSource(1))
	toks := randTokens(rng, 256, 512)
	pos := seqPos(256)
	prefix := NewKVCache(w.Config())
	w.Forward(toks[:224], pos[:224], nil, prefix)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := prefix.Clone()
		w.Forward(toks[224:], pos[224:], nil, c)
	}
}

// rangedMask pairs a block-diagonal MaskFunc with advertised key ranges, the
// way a packed multi-request mask does.
type rangedMask struct {
	allowed func(q, k int) bool
	ranges  func(q int) [][2]int
}

func (m rangedMask) Allowed(q, k int) bool { return m.allowed(q, k) }
func (m rangedMask) KeyRanges(q int, dst [][2]int) [][2]int {
	return append(dst, m.ranges(q)...)
}

// TestKeyRangerFastPathBitIdentical: advertising key ranges must change
// nothing but the scan cost — the hidden states are bit-identical to the
// same mask served through per-key Allowed calls alone.
func TestKeyRangerFastPathBitIdentical(t *testing.T) {
	w := tinyWeights(t, 64)
	rng := rand.New(rand.NewSource(21))
	const n, block = 24, 6
	toks := randTokens(rng, n, 64)
	pos := seqPos(n)

	// Block-diagonal with a shared global prefix of 3 tokens: every query
	// sees tokens 0-2 plus its own block — two disjoint ranges per query.
	allowed := func(q, k int) bool {
		return k < 3 || k/block == q/block
	}
	plain := MaskFunc(allowed)
	ranged := rangedMask{
		allowed: allowed,
		ranges: func(q int) [][2]int {
			b := q / block
			if b == 0 {
				return [][2]int{{0, block}}
			}
			return [][2]int{{0, 3}, {b * block, (b + 1) * block}}
		},
	}

	want := w.Forward(toks, pos, plain, NewKVCache(w.Config()))
	got := w.Forward(toks, pos, ranged, NewKVCache(w.Config()))
	if d := tensor.MaxAbsDiff(want.Data, got.Data); d != 0 {
		t.Fatalf("KeyRanger fast path diverged from Allowed-only mask: max abs diff %g", d)
	}
}
