package model

import (
	"math/rand"
	"testing"

	"bat/internal/tensor"
)

func newArena(t *testing.T, blockTokens int) *BlockArena {
	t.Helper()
	a, err := NewBlockArena(TinyGR(128), blockTokens)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewBlockArenaValidation(t *testing.T) {
	if _, err := NewBlockArena(TinyGR(16), 0); err == nil {
		t.Fatal("zero block size accepted")
	}
	bad := TinyGR(16)
	bad.Layers = 0
	if _, err := NewBlockArena(bad, 4); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestPagedForwardMatchesFlat: the paged backend must be bit-identical to
// contiguous storage through the full forward pass.
func TestPagedForwardMatchesFlat(t *testing.T) {
	w := tinyWeights(t, 128)
	rng := rand.New(rand.NewSource(3))
	toks := randTokens(rng, 19, 128) // deliberately not block-aligned
	pos := seqPos(19)

	flat := NewKVCache(w.Config())
	hFlat := w.Forward(toks, pos, nil, flat)

	arena := newArena(t, 4)
	paged := arena.NewKVCache()
	hPaged := w.Forward(toks, pos, nil, paged)

	if d := tensor.MaxAbsDiff(hFlat.Data, hPaged.Data); d != 0 {
		t.Fatalf("paged forward deviates by %v", d)
	}
	// And a cached suffix over each matches too.
	suffix := []int{5, 6, 7}
	spos := []int{19, 20, 21}
	s1 := w.Forward(suffix, spos, nil, flat)
	s2 := w.Forward(suffix, spos, nil, paged)
	if d := tensor.MaxAbsDiff(s1.Data, s2.Data); d != 0 {
		t.Fatalf("paged suffix deviates by %v", d)
	}
}

// TestPagedConcatSharesAlignedBlocks: block-aligned caches concatenate with
// zero copying — the PagedAttention prefix-sharing property.
func TestPagedConcatSharesAlignedBlocks(t *testing.T) {
	w := tinyWeights(t, 128)
	arena := newArena(t, 4)
	rng := rand.New(rand.NewSource(4))

	// Two caches of exactly 8 tokens (2 blocks each).
	a := arena.NewKVCache()
	w.Forward(randTokens(rng, 8, 128), seqPos(8), nil, a)
	b := arena.NewKVCache()
	w.Forward(randTokens(rng, 8, 128), seqPos(8), nil, b)

	before := arena.Stats()
	merged := ConcatCaches(a, b)
	after := arena.Stats()
	if merged.Len() != 16 {
		t.Fatalf("merged %d tokens", merged.Len())
	}
	if after.BlocksAllocated != before.BlocksAllocated {
		t.Fatalf("aligned concat allocated %d new blocks", after.BlocksAllocated-before.BlocksAllocated)
	}
	if after.ShareEvents <= before.ShareEvents {
		t.Fatal("no share events recorded")
	}
	// The merged cache reads the same content as its sources.
	for tok := 0; tok < 8; tok++ {
		if d := tensor.MaxAbsDiff(merged.layerK(0, tok, 0), a.layerK(0, tok, 0)); d != 0 {
			t.Fatalf("merged token %d deviates", tok)
		}
		if d := tensor.MaxAbsDiff(merged.layerK(0, 8+tok, 0), b.layerK(0, tok, 0)); d != 0 {
			t.Fatalf("merged token %d (from b) deviates", tok)
		}
	}
}

// TestPagedCopyOnWrite: appending to a cache that shares blocks must not
// disturb the sharer.
func TestPagedCopyOnWrite(t *testing.T) {
	w := tinyWeights(t, 128)
	arena := newArena(t, 4)
	rng := rand.New(rand.NewSource(5))
	toks := randTokens(rng, 6, 128) // 1.5 blocks

	orig := arena.NewKVCache()
	w.Forward(toks, seqPos(6), nil, orig)
	snapshot := orig.layerK(0, 5, 0)
	want := append([]float32(nil), snapshot...)

	clone := orig.Clone()
	// Appending through the clone lands in token slots 6, 7 of the shared
	// half-full block: CoW must isolate the write.
	w.Forward([]int{9, 10}, []int{6, 7}, nil, clone)

	if d := tensor.MaxAbsDiff(orig.layerK(0, 5, 0), want); d != 0 {
		t.Fatalf("append through clone disturbed the original by %v", d)
	}
	if clone.Len() != 8 || orig.Len() != 6 {
		t.Fatalf("lengths %d/%d", clone.Len(), orig.Len())
	}
	// Clone content for the shared prefix matches the original.
	for tok := 0; tok < 6; tok++ {
		if d := tensor.MaxAbsDiff(clone.layerK(1, tok, 1), orig.layerK(1, tok, 1)); d != 0 {
			t.Fatalf("clone prefix token %d deviates", tok)
		}
	}
}

// TestPagedReleaseRecyclesBlocks: Release returns pages to the free list and
// subsequent caches reuse them.
func TestPagedReleaseRecyclesBlocks(t *testing.T) {
	w := tinyWeights(t, 128)
	arena := newArena(t, 4)
	rng := rand.New(rand.NewSource(6))

	c1 := arena.NewKVCache()
	w.Forward(randTokens(rng, 12, 128), seqPos(12), nil, c1)
	allocated := arena.Stats().BlocksAllocated
	c1.Release()
	if got := arena.Stats().BlocksFree; got != allocated {
		t.Fatalf("%d free blocks after release, want %d", got, allocated)
	}
	c2 := arena.NewKVCache()
	w.Forward(randTokens(rng, 12, 128), seqPos(12), nil, c2)
	if arena.Stats().BlocksAllocated != allocated {
		t.Fatal("released blocks were not recycled")
	}
}

func TestPagedTruncateDecrefs(t *testing.T) {
	w := tinyWeights(t, 128)
	arena := newArena(t, 4)
	rng := rand.New(rand.NewSource(7))
	c := arena.NewKVCache()
	toks := randTokens(rng, 12, 128)
	w.Forward(toks, seqPos(12), nil, c)
	c.Truncate(5) // keeps blocks 0,1; frees block 2
	if got := arena.Stats().BlocksFree; got != 1 {
		t.Fatalf("%d free blocks after truncate, want 1", got)
	}
	// Recompute the dropped suffix: identical to the original.
	flat := NewKVCache(w.Config())
	w.Forward(toks, seqPos(12), nil, flat)
	w.Forward(toks[5:], seqPos(12)[5:], nil, c)
	for tok := 0; tok < 12; tok++ {
		if d := tensor.MaxAbsDiff(c.layerK(1, tok, 0), flat.layerK(1, tok, 0)); d != 0 {
			t.Fatalf("token %d deviates after truncate+recompute", tok)
		}
	}
}

// TestPagedCrossArenaConcatCopies: caches from different arenas (or mixed
// with flat caches) still concatenate correctly, by copying.
func TestPagedCrossArenaConcatCopies(t *testing.T) {
	w := tinyWeights(t, 128)
	arenaA := newArena(t, 4)
	arenaB := newArena(t, 8)
	rng := rand.New(rand.NewSource(8))
	toksA := randTokens(rng, 5, 128)
	toksB := randTokens(rng, 7, 128)

	a := arenaA.NewKVCache()
	w.Forward(toksA, seqPos(5), nil, a)
	b := arenaB.NewKVCache()
	w.Forward(toksB, seqPos(7), nil, b)
	flat := NewKVCache(w.Config())
	w.Forward(toksA, seqPos(5), nil, flat)

	merged := ConcatCaches(a, b, flat)
	if merged.Len() != 17 {
		t.Fatalf("merged %d tokens", merged.Len())
	}
	// Reference: all-flat concat.
	fa := NewKVCache(w.Config())
	w.Forward(toksA, seqPos(5), nil, fa)
	fb := NewKVCache(w.Config())
	w.Forward(toksB, seqPos(7), nil, fb)
	ref := ConcatCaches(fa, fb, fa.Clone())
	for tok := 0; tok < 17; tok++ {
		if d := tensor.MaxAbsDiff(merged.layerK(1, tok, 1), ref.layerK(1, tok, 1)); d != 0 {
			t.Fatalf("token %d deviates in cross-arena concat", tok)
		}
	}
}

// TestPagedMarshalRoundTrip: serialization works from paged storage too.
func TestPagedMarshalRoundTrip(t *testing.T) {
	w := tinyWeights(t, 128)
	arena := newArena(t, 4)
	rng := rand.New(rand.NewSource(9))
	toks := randTokens(rng, 9, 128)
	paged := arena.NewKVCache()
	w.Forward(toks, seqPos(9), nil, paged)

	data, err := paged.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewKVCache(w.Config())
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	suffix := []int{1, 2}
	spos := []int{9, 10}
	h1 := w.Forward(suffix, spos, nil, paged)
	h2 := w.Forward(suffix, spos, nil, restored)
	if d := tensor.MaxAbsDiff(h1.Data, h2.Data); d != 0 {
		t.Fatalf("restored paged cache deviates by %v", d)
	}
}

// TestPagedExecutePath: the bipartite-style flow — per-item caches,
// concat, suffix — works end to end on paged storage with sharing.
func TestPagedBlockAlignedItemSharing(t *testing.T) {
	w := tinyWeights(t, 128)
	arena := newArena(t, 4)
	rng := rand.New(rand.NewSource(10))

	// Four items of exactly one block each, precomputed once.
	var items []*KVCache
	for i := 0; i < 4; i++ {
		c := arena.NewKVCache()
		w.Forward(randTokens(rng, 4, 128), seqPos(4), nil, c)
		items = append(items, c)
	}
	allocated := arena.Stats().BlocksAllocated

	// Ten "requests" each assemble a context from the shared items.
	for r := 0; r < 10; r++ {
		ctx := ConcatCaches(items...)
		if ctx.Len() != 16 {
			t.Fatalf("context %d tokens", ctx.Len())
		}
		w.Forward([]int{1, 2}, []int{16, 17}, nil, ctx) // suffix CoWs one block at most
		ctx.Release()
	}
	// Steady state: contexts recycle; the arena never grows past the items
	// plus a couple of scratch blocks.
	if got := arena.Stats().BlocksAllocated; got > allocated+3 {
		t.Fatalf("arena grew to %d blocks from %d; sharing is not working", got, allocated)
	}
	// Source items are intact after all that sharing.
	if items[0].Len() != 4 {
		t.Fatal("source item cache disturbed")
	}
}
