package model

import (
	"fmt"
	"math"

	"bat/internal/tensor"
)

// ForwardReference is the retained seed engine: a single-threaded,
// token-at-a-time forward pass built from vector-matrix products. It is the
// determinism oracle for the batched engine — Forward must produce
// bit-identical hidden states (MaxAbsDiff == 0) for any config, mask, and
// batch split — and the baseline the engine micro-benchmarks measure
// speedups against. It is deliberately not optimized; change it only in
// lockstep with Forward.
func (w *Weights) ForwardReference(tokens, pos []int, mask Mask, cache *KVCache) *tensor.Matrix {
	cfg := w.cfg
	if len(tokens) != len(pos) {
		panic(fmt.Sprintf("model: %d tokens but %d positions", len(tokens), len(pos)))
	}
	if cache == nil {
		cache = NewKVCache(cfg)
	}
	if cache.cfg.Name != cfg.Name {
		panic(fmt.Sprintf("model: cache built for %s, weights are %s", cache.cfg.Name, cfg.Name))
	}
	if mask == nil {
		mask = CausalMask{}
	}
	n := len(tokens)
	base := cache.Len()

	// Token (+ absolute position) embeddings.
	h := tensor.NewMatrix(n, cfg.Hidden)
	for i, tok := range tokens {
		if tok < 0 || tok >= cfg.Vocab {
			panic(fmt.Sprintf("model: token %d outside vocab %d", tok, cfg.Vocab))
		}
		copy(h.Row(i), w.embed.Row(tok))
		if cfg.AbsPos {
			p := pos[i]
			if p < 0 || p >= cfg.MaxPos {
				panic(fmt.Sprintf("model: position %d outside MaxPos %d", p, cfg.MaxPos))
			}
			tensor.AddInPlace(h.Row(i), w.posEmbed.Row(p))
		}
	}

	groups := cfg.Heads / cfg.KVHeads
	scale := float32(1 / math.Sqrt(float64(cfg.HeadDim)))
	qDim := cfg.Heads * cfg.HeadDim
	kvDim := cfg.KVHeads * cfg.HeadDim

	normed := make([]float32, cfg.Hidden)
	q := make([]float32, qDim)
	attnOut := make([]float32, qDim)
	proj := make([]float32, cfg.Hidden)
	gate := make([]float32, cfg.FFNDim)
	up := make([]float32, cfg.FFNDim)
	scoreBuf := make([]float32, 0, base+n)

	for l := 0; l < cfg.Layers; l++ {
		lw := &w.layers[l]
		for i := 0; i < n; i++ {
			row := h.Row(i)
			abs := base + i

			// --- attention sublayer ---
			tensor.RMSNorm(normed, row, lw.attnNorm, cfg.eps())
			vecMatInto(q, normed, lw.wq)
			k := make([]float32, kvDim)
			v := make([]float32, kvDim)
			vecMatInto(k, normed, lw.wk)
			vecMatInto(v, normed, lw.wv)
			for hh := 0; hh < cfg.Heads; hh++ {
				w.rope.Rotate(q[hh*cfg.HeadDim:(hh+1)*cfg.HeadDim], pos[i])
			}
			for hh := 0; hh < cfg.KVHeads; hh++ {
				w.rope.Rotate(k[hh*cfg.HeadDim:(hh+1)*cfg.HeadDim], pos[i])
			}
			cache.appendToken(l, k, v)
			ctx := base + i + 1 // keys available to this query

			for hh := 0; hh < cfg.Heads; hh++ {
				kvHead := hh / groups
				qh := q[hh*cfg.HeadDim : (hh+1)*cfg.HeadDim]
				scores := scoreBuf[:ctx]
				visible := 0
				for t := 0; t < ctx; t++ {
					if t != abs && !mask.Allowed(abs, t) {
						scores[t] = tensor.NegInf
						continue
					}
					visible++
					scores[t] = tensor.Dot(qh, cache.layerK(l, t, kvHead)) * scale
				}
				applyAttnWeights(cfg.Attn, scores, visible)
				out := attnOut[hh*cfg.HeadDim : (hh+1)*cfg.HeadDim]
				for d := range out {
					out[d] = 0
				}
				for t := 0; t < ctx; t++ {
					p := scores[t]
					if p == 0 {
						continue
					}
					vt := cache.layerV(l, t, kvHead)
					for d := range out {
						out[d] += p * vt[d]
					}
				}
			}
			vecMatInto(proj, attnOut, lw.wo)
			tensor.AddInPlace(row, proj)

			// --- feed-forward sublayer (SwiGLU) ---
			tensor.RMSNorm(normed, row, lw.ffnNorm, cfg.eps())
			vecMatInto(gate, normed, lw.wGate)
			vecMatInto(up, normed, lw.wUp)
			tensor.SiLU(gate)
			for d := range gate {
				gate[d] *= up[d]
			}
			vecMatInto(proj, gate, lw.wDown)
			tensor.AddInPlace(row, proj)
		}
	}

	for i := 0; i < n; i++ {
		row := h.Row(i)
		tensor.RMSNorm(row, row, w.finalNorm, cfg.eps())
	}
	return h
}

// applyAttnWeights converts raw attention scores (NegInf = masked) into
// mixing weights in place: a softmax for LLM-style attention, or HSTU's
// pointwise SiLU normalized by the visible context size.
func applyAttnWeights(kind AttnKind, scores []float32, visible int) {
	if kind == AttnSoftmax {
		tensor.Softmax(scores)
		return
	}
	if visible <= 0 {
		visible = 1
	}
	inv := 1 / float32(visible)
	for i, s := range scores {
		if s == tensor.NegInf {
			scores[i] = 0
			continue
		}
		scores[i] = s / (1 + float32(math.Exp(float64(-s)))) * inv
	}
}

// vecMatInto computes dst = x @ m for a single row vector x.
func vecMatInto(dst, x []float32, m *tensor.Matrix) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("model: vecMat shape mismatch %d@(%dx%d)->%d", len(x), m.Rows, m.Cols, len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := m.Row(i)
		for j, mv := range row {
			dst[j] += xv * mv
		}
	}
}
