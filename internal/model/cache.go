package model

import "fmt"

// KVCache stores per-layer key/value vectors for a processed token prefix.
// Keys carry their rotary position embedding, so a cache entry is only valid
// for reuse when the reusing prompt assigns the same position IDs to the
// cached tokens — the invariant Bipartite Attention's shared-start position
// design exists to satisfy.
//
// Two storage backends exist behind the same type: contiguous per-layer
// slices (NewKVCache) and fixed-size pages in a shared BlockArena
// (BlockArena.NewKVCache) — the PagedAttention-compatible organization §5.1
// prescribes for the cache workers, with copy-free sharing of block-aligned
// prefixes.
type KVCache struct {
	cfg   Config
	store kvStore
	n     int // cached token count
}

// kvStore is the storage backend contract. Token indices are global; layers
// advance independently during a forward pass (layer-major appends) but are
// level again at every public-API boundary.
type kvStore interface {
	appendToken(layer int, k, v []float32)
	layerK(layer, t, h int) []float32
	layerV(layer, t, h int) []float32
	truncate(n int)
	clone() kvStore
	// appendFrom bulk-appends tokens tokens from src (sharing storage when
	// the backend can).
	appendFrom(src kvStore, tokens int)
	// layerData returns contiguous copies (or views) of layer l's keys and
	// values covering n tokens, for serialization.
	layerData(l, n int) (k, v []float32)
	release()
}

// NewKVCache returns an empty cache with contiguous storage.
func NewKVCache(cfg Config) *KVCache {
	return &KVCache{cfg: cfg, store: newFlatStore(cfg)}
}

// Len returns the number of cached tokens.
func (c *KVCache) Len() int { return c.n }

// Config returns the architecture the cache was built for.
func (c *KVCache) Config() Config { return c.cfg }

func (c *KVCache) stride() int { return c.cfg.KVHeads * c.cfg.HeadDim }

// layerK returns the key vector of token t, kv-head h at the given layer.
func (c *KVCache) layerK(layer, t, h int) []float32 { return c.store.layerK(layer, t, h) }

func (c *KVCache) layerV(layer, t, h int) []float32 { return c.store.layerV(layer, t, h) }

// appendToken adds one token's K/V rows for a single layer. The forward pass
// calls this layer by layer; external callers use Forward which keeps layers
// in sync.
func (c *KVCache) appendToken(layer int, k, v []float32) {
	if len(k) != c.stride() || len(v) != c.stride() {
		panic(fmt.Sprintf("model: kv append stride mismatch: %d vs %d", len(k), c.stride()))
	}
	c.store.appendToken(layer, k, v)
	if layer == c.cfg.Layers-1 {
		c.n++
	}
}

// Clone returns a deep copy of the cache (paged clones share blocks
// copy-on-write where possible).
func (c *KVCache) Clone() *KVCache {
	return &KVCache{cfg: c.cfg, store: c.store.clone(), n: c.n}
}

// Truncate discards cached tokens beyond the first n. It is how a serving
// engine drops suffix tokens that are "computed and discarded" (§4.2) after a
// request completes, keeping only the reusable prefix.
func (c *KVCache) Truncate(n int) {
	if n < 0 || n > c.n {
		panic(fmt.Sprintf("model: truncate %d out of range [0,%d]", n, c.n))
	}
	c.store.truncate(n)
	c.n = n
}

// Release returns paged storage to its arena. The cache must not be used
// afterwards. Contiguous caches are garbage-collected as usual; Release is a
// no-op for them.
func (c *KVCache) Release() {
	c.store.release()
	c.n = 0
}

// CopyRange returns a new contiguous cache holding copies of tokens
// [lo, hi). It is how a packed multi-segment forward is split back into the
// independent per-segment caches the segments would have produced on their
// own (the K/V bytes are identical either way; only the storage they landed
// in differs).
func (c *KVCache) CopyRange(lo, hi int) *KVCache {
	if lo < 0 || hi < lo || hi > c.n {
		panic(fmt.Sprintf("model: copy range [%d,%d) out of [0,%d]", lo, hi, c.n))
	}
	out := NewKVCache(c.cfg)
	fs := out.store.(*flatStore)
	st := c.stride()
	for l := 0; l < c.cfg.Layers; l++ {
		k, v := c.store.layerData(l, hi)
		fs.k[l] = append(fs.k[l], k[lo*st:hi*st]...)
		fs.v[l] = append(fs.v[l], v[lo*st:hi*st]...)
	}
	out.n = hi - lo
	return out
}

// ConcatCaches builds a new cache whose token axis is the concatenation of
// the inputs, in order. All inputs must share an architecture. This is the
// operation that assembles an Item-as-prefix context from independently
// precomputed per-item caches. When every input lives in the same
// BlockArena, block-aligned content is shared by reference instead of
// copied — PagedAttention's prefix-sharing.
func ConcatCaches(caches ...*KVCache) *KVCache {
	if len(caches) == 0 {
		panic("model: ConcatCaches needs at least one cache")
	}
	cfg := caches[0].cfg
	var out *KVCache
	if ps, ok := caches[0].store.(*pagedStore); ok {
		out = ps.arena.NewKVCache()
	} else {
		out = NewKVCache(cfg)
	}
	for _, in := range caches {
		if in.cfg.Name != cfg.Name || in.stride() != out.stride() || in.cfg.Layers != cfg.Layers {
			panic(fmt.Sprintf("model: ConcatCaches architecture mismatch: %s vs %s", in.cfg.Name, cfg.Name))
		}
		out.store.appendFrom(in.store, in.n)
		out.n += in.n
	}
	return out
}

// flatStore is the contiguous backend: one slice per layer.
type flatStore struct {
	cfg  Config
	k, v [][]float32
}

func newFlatStore(cfg Config) *flatStore {
	return &flatStore{cfg: cfg, k: make([][]float32, cfg.Layers), v: make([][]float32, cfg.Layers)}
}

func (s *flatStore) stride() int { return s.cfg.KVHeads * s.cfg.HeadDim }

func (s *flatStore) appendToken(layer int, k, v []float32) {
	s.k[layer] = append(s.k[layer], k...)
	s.v[layer] = append(s.v[layer], v...)
}

// reserve guarantees capacity for tokens more tokens in every layer so the
// forward pass's per-token appends never reallocate mid-layer.
func (s *flatStore) reserve(tokens int) {
	extra := tokens * s.stride()
	for l := range s.k {
		s.k[l] = growFloats(s.k[l], extra)
		s.v[l] = growFloats(s.v[l], extra)
	}
}

// growFloats returns b with room for at least extra more elements, doubling
// capacity so repeated single-token reserves stay amortized O(1).
func growFloats(b []float32, extra int) []float32 {
	if cap(b)-len(b) >= extra {
		return b
	}
	newCap := 2 * cap(b)
	if newCap < len(b)+extra {
		newCap = len(b) + extra
	}
	nb := make([]float32, len(b), newCap)
	copy(nb, b)
	return nb
}

func (s *flatStore) layerK(layer, t, h int) []float32 {
	off := t*s.stride() + h*s.cfg.HeadDim
	return s.k[layer][off : off+s.cfg.HeadDim]
}

func (s *flatStore) layerV(layer, t, h int) []float32 {
	off := t*s.stride() + h*s.cfg.HeadDim
	return s.v[layer][off : off+s.cfg.HeadDim]
}

func (s *flatStore) truncate(n int) {
	for l := range s.k {
		s.k[l] = s.k[l][:n*s.stride()]
		s.v[l] = s.v[l][:n*s.stride()]
	}
}

func (s *flatStore) clone() kvStore {
	out := newFlatStore(s.cfg)
	for l := range s.k {
		out.k[l] = append([]float32(nil), s.k[l]...)
		out.v[l] = append([]float32(nil), s.v[l]...)
	}
	return out
}

func (s *flatStore) appendFrom(src kvStore, tokens int) {
	for l := 0; l < s.cfg.Layers; l++ {
		k, v := src.layerData(l, tokens)
		s.k[l] = append(s.k[l], k...)
		s.v[l] = append(s.v[l], v...)
	}
}

func (s *flatStore) layerData(l, n int) (k, v []float32) {
	return s.k[l][:n*s.stride()], s.v[l][:n*s.stride()]
}

func (s *flatStore) release() {}
