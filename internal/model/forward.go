package model

import (
	"fmt"
	"math"
	"sync"

	"bat/internal/tensor"
)

// Forward runs the transformer over new tokens with explicit position IDs,
// reusing (and extending) cache as the context prefix.
//
//   - tokens[i] is the vocabulary ID of the i-th new token; its absolute
//     context index is cache.Len()+i at call time.
//   - pos[i] is the rotary (and absolute, if cfg.AbsPos) position assigned to
//     that token. Bipartite Attention assigns shared start positions to items
//     here rather than sequence positions.
//   - mask filters attention edges by absolute index; causality (k <= q) is
//     always enforced on top of it. Masks must be safe for concurrent
//     Allowed calls (the stock masks are all stateless).
//
// The new tokens' K/V are appended to cache. Callers that only wanted the
// suffix computed "and discarded" (§4.2) should cache.Truncate back to the
// prefix length afterwards, or pass a throwaway clone.
//
// The returned matrix holds the final-RMSNorm hidden state of each new token
// (len(tokens) x Hidden), ready for Logits/LogitsFor.
//
// This is the batched engine: all n tokens move through each layer together,
// so the six per-token vector-matrix products become one matrix-matrix GEMM
// each (QKV, output, gate/up/down), and attention fans out across
// (head x query-block) tasks on the tensor worker pool. Every output element
// keeps the exact scalar summation order of the token-at-a-time path, so
// hidden states are bit-identical to ForwardReference at any batch split
// and any pool width.
func (w *Weights) Forward(tokens, pos []int, mask Mask, cache *KVCache) *tensor.Matrix {
	cfg := w.cfg
	if len(tokens) != len(pos) {
		panic(fmt.Sprintf("model: %d tokens but %d positions", len(tokens), len(pos)))
	}
	if cache == nil {
		cache = NewKVCache(cfg)
	}
	if cache.cfg.Name != cfg.Name {
		panic(fmt.Sprintf("model: cache built for %s, weights are %s", cache.cfg.Name, cfg.Name))
	}
	if mask == nil {
		mask = CausalMask{}
	}
	n := len(tokens)
	base := cache.Len()
	if fs, ok := cache.store.(*flatStore); ok {
		fs.reserve(n) // keep per-token appends allocation-free
	}

	// Token (+ absolute position) embeddings.
	h := tensor.NewMatrix(n, cfg.Hidden)
	for i, tok := range tokens {
		if tok < 0 || tok >= cfg.Vocab {
			panic(fmt.Sprintf("model: token %d outside vocab %d", tok, cfg.Vocab))
		}
		copy(h.Row(i), w.embed.Row(tok))
		if cfg.AbsPos {
			p := pos[i]
			if p < 0 || p >= cfg.MaxPos {
				panic(fmt.Sprintf("model: position %d outside MaxPos %d", p, cfg.MaxPos))
			}
			tensor.AddInPlace(h.Row(i), w.posEmbed.Row(p))
		}
	}

	s := newScratch(cfg, n)
	for l := 0; l < cfg.Layers; l++ {
		lw := &w.layers[l]

		// --- attention sublayer ---
		rmsNormRows(s.normed, h, lw.attnNorm, cfg.eps())
		tensor.MatMul(s.q, s.normed, lw.wq)
		tensor.MatMul(s.k, s.normed, lw.wk)
		tensor.MatMul(s.v, s.normed, lw.wv)
		w.ropeRows(s.q, s.k, pos)
		for i := 0; i < n; i++ {
			cache.appendToken(l, s.k.Row(i), s.v.Row(i))
		}
		w.attend(s, cache, l, base, n, mask)
		tensor.MatMul(s.proj, s.attnOut, lw.wo)
		addRows(h, s.proj)

		// --- feed-forward sublayer (SwiGLU) ---
		rmsNormRows(s.normed, h, lw.ffnNorm, cfg.eps())
		tensor.MatMul(s.gate, s.normed, lw.wGate)
		tensor.MatMul(s.up, s.normed, lw.wUp)
		swiGLURows(s.gate, s.up)
		tensor.MatMul(s.proj, s.gate, lw.wDown)
		addRows(h, s.proj)
	}

	for i := 0; i < n; i++ {
		row := h.Row(i)
		tensor.RMSNorm(row, row, w.finalNorm, cfg.eps())
	}
	return h
}

// scratch holds the per-call activation buffers, allocated once and reused
// across every layer — the batched replacement for the seed engine's
// per-token k/v allocations.
type scratch struct {
	normed  *tensor.Matrix // n x Hidden
	q       *tensor.Matrix // n x Heads*HeadDim
	k, v    *tensor.Matrix // n x KVHeads*HeadDim
	attnOut *tensor.Matrix // n x Heads*HeadDim
	proj    *tensor.Matrix // n x Hidden
	gate    *tensor.Matrix // n x FFNDim
	up      *tensor.Matrix // n x FFNDim
}

func newScratch(cfg Config, n int) *scratch {
	qDim := cfg.Heads * cfg.HeadDim
	kvDim := cfg.KVHeads * cfg.HeadDim
	return &scratch{
		normed:  tensor.NewMatrix(n, cfg.Hidden),
		q:       tensor.NewMatrix(n, qDim),
		k:       tensor.NewMatrix(n, kvDim),
		v:       tensor.NewMatrix(n, kvDim),
		attnOut: tensor.NewMatrix(n, qDim),
		proj:    tensor.NewMatrix(n, cfg.Hidden),
		gate:    tensor.NewMatrix(n, cfg.FFNDim),
		up:      tensor.NewMatrix(n, cfg.FFNDim),
	}
}

// rowBlock is the row granule for pool-parallel elementwise passes.
const rowBlock = 32

// rmsNormRows normalizes every row of src into dst.
func rmsNormRows(dst, src *tensor.Matrix, weight []float32, eps float32) {
	if src.Rows*src.Cols < 1<<14 {
		for i := 0; i < src.Rows; i++ {
			tensor.RMSNorm(dst.Row(i), src.Row(i), weight, eps)
		}
		return
	}
	tensor.ParallelBlocks(src.Rows, rowBlock, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			tensor.RMSNorm(dst.Row(i), src.Row(i), weight, eps)
		}
	})
}

// addRows adds src into dst row-wise (dst += src).
func addRows(dst, src *tensor.Matrix) {
	tensor.AddInPlace(dst.Data, src.Data)
}

// swiGLURows computes gate = SiLU(gate) * up elementwise.
func swiGLURows(gate, up *tensor.Matrix) {
	tensor.SiLU(gate.Data)
	for d, u := range up.Data {
		gate.Data[d] *= u
	}
}

// ropeRows rotates every row of q (per query head) and k (per KV head) for
// its token's position. sin/cos come from the weights' precomputed
// frequency table; rows are independent, so the pass fans out on the pool
// when the sincos work is worth it.
func (w *Weights) ropeRows(q, k *tensor.Matrix, pos []int) {
	cfg := w.cfg
	rotate := func(i int) {
		for hh := 0; hh < cfg.Heads; hh++ {
			w.rope.Rotate(q.Row(i)[hh*cfg.HeadDim:(hh+1)*cfg.HeadDim], pos[i])
		}
		for hh := 0; hh < cfg.KVHeads; hh++ {
			w.rope.Rotate(k.Row(i)[hh*cfg.HeadDim:(hh+1)*cfg.HeadDim], pos[i])
		}
	}
	n := len(pos)
	if n*(cfg.Heads+cfg.KVHeads)*cfg.HeadDim < 1<<14 {
		for i := 0; i < n; i++ {
			rotate(i)
		}
		return
	}
	tensor.ParallelBlocks(n, rowBlock, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rotate(i)
		}
	})
}

// attnQueryBlock is the query granule of one attention task; each task owns
// a (head, query-block) tile of the output.
const attnQueryBlock = 16

// scorePool recycles attention score buffers across tasks, layers, and
// Forward calls so attention allocates nothing in steady state.
var scorePool = sync.Pool{New: func() any { return &scoreBuf{} }}

type scoreBuf struct{ s []float32 }

func getScores(n int) *scoreBuf {
	sb := scorePool.Get().(*scoreBuf)
	if cap(sb.s) < n {
		sb.s = make([]float32, n)
	}
	sb.s = sb.s[:n]
	return sb
}

// rangePool recycles key-range buffers the same way: the ranger interfaces
// take the buffer through an interface call, which pins it to the heap, so
// without pooling every attention task would re-allocate it.
var rangePool = sync.Pool{New: func() any { return &rangeBuf{} }}

type rangeBuf struct{ r [][2]int }

// attend computes masked grouped-query attention for layer l over the n new
// tokens, whose K/V (and the whole prefix) are already in the cache, and
// writes mixed values into s.attnOut. Work is split across
// (head x query-block) tasks; each output element is produced by exactly
// one task using the reference engine's scalar loops, so the result is
// bit-identical to token-at-a-time attention at any pool width.
func (w *Weights) attend(s *scratch, cache *KVCache, l, base, n int, mask Mask) {
	cfg := w.cfg
	groups := cfg.Heads / cfg.KVHeads
	scale := float32(1 / math.Sqrt(float64(cfg.HeadDim)))
	qBlocks := (n + attnQueryBlock - 1) / attnQueryBlock
	kr, _ := mask.(KeyRanger)
	ekr, _ := mask.(ExactKeyRanger)
	run := func(task int) {
		hh := task / qBlocks
		lo := (task % qBlocks) * attnQueryBlock
		hi := lo + attnQueryBlock
		if hi > n {
			hi = n
		}
		kvHead := hh / groups
		sb := getScores(base + hi)
		defer scorePool.Put(sb)
		scores := sb.s
		rb := rangePool.Get().(*rangeBuf)
		defer rangePool.Put(rb)
		ranges := rb.r
		for i := lo; i < hi; i++ {
			abs := base + i
			ctx := abs + 1 // keys available to this query
			qh := s.q.Row(i)[hh*cfg.HeadDim : (hh+1)*cfg.HeadDim]
			sc := scores[:ctx]
			visible := 0
			score := func(klo, khi int) {
				for t := klo; t < khi; t++ {
					if t != abs && !mask.Allowed(abs, t) {
						sc[t] = tensor.NegInf
						continue
					}
					visible++
					sc[t] = tensor.Dot(qh, cache.layerK(l, t, kvHead)) * scale
				}
			}
			if ekr != nil {
				// Exact fast path: every in-range key is allowed by contract,
				// so there are no per-key mask calls and no NegInf entries to
				// write, weight, or skip — per-query work is O(visible keys).
				ranges = ekr.ExactKeyRanges(abs, ranges[:0])
				rb.r = ranges
				for _, r := range ranges {
					if klo, khi := r[0], min(r[1], ctx); klo < khi {
						for t := klo; t < khi; t++ {
							sc[t] = tensor.Dot(qh, cache.layerK(l, t, kvHead)) * scale
						}
						visible += khi - klo
					}
				}
				applyAttnWeightsRanges(cfg.Attn, sc, ranges, ctx, visible)
			} else if kr != nil {
				// Sparse fast path: everything outside the advertised
				// ranges is masked by contract, and the weight pass below
				// visits only the ranges, so out-of-range entries need no
				// NegInf fill — they are never scored, weighted, or mixed.
				// Total per-query work is O(own context), not O(packed
				// batch context).
				ranges = kr.KeyRanges(abs, ranges[:0])
				rb.r = ranges
				for _, r := range ranges {
					if klo, khi := r[0], min(r[1], ctx); klo < khi {
						score(klo, khi)
					}
				}
				applyAttnWeightsRanges(cfg.Attn, sc, ranges, ctx, visible)
			} else {
				score(0, ctx)
				applyAttnWeights(cfg.Attn, sc, visible)
			}
			out := s.attnOut.Row(i)[hh*cfg.HeadDim : (hh+1)*cfg.HeadDim]
			for d := range out {
				out[d] = 0
			}
			mix := func(klo, khi int) {
				for t := klo; t < khi; t++ {
					p := sc[t]
					if p == 0 {
						continue
					}
					vt := cache.layerV(l, t, kvHead)
					for d := range out {
						out[d] += p * vt[d]
					}
				}
			}
			if ekr != nil || kr != nil {
				for _, r := range ranges {
					if klo, khi := r[0], min(r[1], ctx); klo < khi {
						mix(klo, khi)
					}
				}
			} else {
				mix(0, ctx)
			}
		}
	}
	tasks := cfg.Heads * qBlocks
	// Average context length per query is base + (n+1)/2.
	if tasks == 1 || cfg.Heads*n*(base+(n+1)/2)*cfg.HeadDim < 1<<15 {
		for task := 0; task < tasks; task++ {
			run(task)
		}
		return
	}
	tensor.Parallel(tasks, run)
}

// applyAttnWeightsRanges is applyAttnWeights restricted to a query's
// advertised key ranges. Entries outside the ranges are masked by the
// KeyRanger contract — exactly the NegInf entries the dense pass would write
// and then skip — so visiting only the ranges, in the same ascending index
// order, produces bit-identical weights. Out-of-range score entries are left
// untouched: the value mix walks the same ranges and never reads them.
func applyAttnWeightsRanges(kind AttnKind, scores []float32, ranges [][2]int, ctx, visible int) {
	if kind == AttnSoftmax {
		softmaxRanges(scores, ranges, ctx)
		return
	}
	if visible <= 0 {
		visible = 1
	}
	inv := 1 / float32(visible)
	for _, r := range ranges {
		for t, hi := r[0], min(r[1], ctx); t < hi; t++ {
			s := scores[t]
			if s == tensor.NegInf {
				scores[t] = 0
				continue
			}
			scores[t] = s / (1 + float32(math.Exp(float64(-s)))) * inv
		}
	}
}

// softmaxRanges mirrors tensor.Softmax over the in-range entries only.
// Because ranges are disjoint and ascending (the KeyRanger contract), the
// scalar visit order — and therefore every float32 accumulation — matches a
// dense softmax whose out-of-range entries are all NegInf, bit for bit.
func softmaxRanges(v []float32, ranges [][2]int, ctx int) {
	maxv := float32(math.Inf(-1))
	for _, r := range ranges {
		for t, hi := r[0], min(r[1], ctx); t < hi; t++ {
			if v[t] > maxv {
				maxv = v[t]
			}
		}
	}
	if math.IsInf(float64(maxv), -1) {
		for _, r := range ranges {
			for t, hi := r[0], min(r[1], ctx); t < hi; t++ {
				v[t] = 0
			}
		}
		return
	}
	var sum float32
	for _, r := range ranges {
		for t, hi := r[0], min(r[1], ctx); t < hi; t++ {
			x := v[t]
			// Masked entries contribute exactly exp(-Inf) == 0; skipping the
			// Exp call is bit-identical (same as tensor.Softmax).
			if math.IsInf(float64(x), -1) {
				v[t] = 0
				continue
			}
			e := float32(math.Exp(float64(x - maxv)))
			v[t] = e
			sum += e
		}
	}
	if sum == 0 {
		return
	}
	inv := 1 / sum
	for _, r := range ranges {
		for t, hi := r[0], min(r[1], ctx); t < hi; t++ {
			v[t] *= inv
		}
	}
}
