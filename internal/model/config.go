// Package model implements a decoder-only transformer inference engine in
// pure Go: grouped-query attention with rotary position embeddings and
// arbitrary additive attention masks, RMSNorm, a SwiGLU feed-forward network,
// and a reusable KV cache supporting prefix concatenation.
//
// It plays the role vLLM + FlashInfer play in the paper: the substrate on
// which Bipartite Attention (internal/bipartite) is executed and validated.
// The paper's model architectures (Table 2) are available as descriptors for
// KV-cache sizing and the cost model; actual forward passes run on small
// configurations whose attention algebra is identical.
package model

import "fmt"

// AttnKind selects the attention weighting function.
type AttnKind uint8

const (
	// AttnSoftmax is standard scaled-dot-product attention (LLM-style GRs).
	AttnSoftmax AttnKind = iota
	// AttnHSTU is HSTU-style pointwise aggregated attention: per-key weights
	// are SiLU(q·k) normalized by the visible context size instead of a
	// softmax. The paper sketches extending Bipartite Attention to HSTU
	// (§4.2); this variant lets the mask/position machinery be validated on
	// that family.
	AttnHSTU
)

// Config describes a decoder-only transformer architecture.
type Config struct {
	Name    string
	Attn    AttnKind
	Layers  int // number of transformer blocks (L)
	Heads   int // query heads per layer
	KVHeads int // key/value heads per layer (H in the paper's KV size formula)
	HeadDim int // dimension per head (D)
	Hidden  int // model width; Heads*HeadDim for the paper's models
	FFNDim  int // SwiGLU intermediate width
	Vocab   int // vocabulary size

	RopeBase float64 // rotary embedding frequency base (0 means 10000)
	Eps      float32 // RMSNorm epsilon (0 means 1e-5)

	// AbsPos adds a learned absolute position embedding to token embeddings.
	// The paper's Table 3 observes that models with strong absolute position
	// bias degrade under Item-as-prefix; this flag builds such a model.
	AbsPos bool
	// MaxPos bounds position IDs when AbsPos is set.
	MaxPos int
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Layers <= 0:
		return fmt.Errorf("model: %s: Layers must be positive", c.Name)
	case c.Heads <= 0 || c.KVHeads <= 0:
		return fmt.Errorf("model: %s: head counts must be positive", c.Name)
	case c.Heads%c.KVHeads != 0:
		return fmt.Errorf("model: %s: Heads (%d) must be a multiple of KVHeads (%d)", c.Name, c.Heads, c.KVHeads)
	case c.HeadDim <= 0 || c.HeadDim%2 != 0:
		return fmt.Errorf("model: %s: HeadDim must be positive and even for RoPE", c.Name)
	case c.Hidden <= 0 || c.FFNDim <= 0 || c.Vocab <= 0:
		return fmt.Errorf("model: %s: Hidden/FFNDim/Vocab must be positive", c.Name)
	case c.AbsPos && c.MaxPos <= 0:
		return fmt.Errorf("model: %s: AbsPos requires MaxPos", c.Name)
	}
	return nil
}

func (c Config) ropeBase() float64 {
	if c.RopeBase == 0 {
		return 10000
	}
	return c.RopeBase
}

func (c Config) eps() float32 {
	if c.Eps == 0 {
		return 1e-5
	}
	return c.Eps
}

// KVBytesPerToken returns the per-token KV cache footprint in bytes in FP16:
// 2 (K and V) * KVHeads * HeadDim * Layers * sizeof(FP16), the formula from
// §3.3.2 and Table 2 of the paper.
func (c Config) KVBytesPerToken() int {
	return 2 * c.KVHeads * c.HeadDim * c.Layers * 2
}

// Paper model architectures (Table 2). These are sizing descriptors for the
// KV cache pool and cost model; their weights are never materialized.
var (
	Qwen2_1_5B = Config{
		Name: "Qwen2-1.5B", Layers: 28, Heads: 12, KVHeads: 2, HeadDim: 128,
		Hidden: 1536, FFNDim: 8960, Vocab: 151936,
	}
	Qwen2_7B = Config{
		Name: "Qwen2-7B", Layers: 28, Heads: 28, KVHeads: 4, HeadDim: 128,
		Hidden: 3584, FFNDim: 18944, Vocab: 152064,
	}
	Llama3_1B = Config{
		Name: "Llama3-1B", Layers: 16, Heads: 32, KVHeads: 8, HeadDim: 64,
		Hidden: 2048, FFNDim: 8192, Vocab: 128256,
	}
)

// PaperModels lists the three architectures evaluated throughout the paper.
func PaperModels() []Config { return []Config{Qwen2_1_5B, Qwen2_7B, Llama3_1B} }

// TinyGR returns a small, fully-executable GR configuration used by tests,
// examples, and the accuracy experiments. vocab must cover every token ID the
// caller will feed (item identifier tokens plus attribute tokens).
func TinyGR(vocab int) Config {
	return Config{
		Name: "TinyGR", Layers: 2, Heads: 4, KVHeads: 2, HeadDim: 8,
		Hidden: 32, FFNDim: 64, Vocab: vocab,
	}
}

// BenchGR returns the engine-benchmark configuration: shaped like the
// paper's models (GQA with a 4:1 head ratio, 4x FFN expansion, RoPE) but
// sized so a 256-token prefill is tractable in pure Go. BenchmarkPrefill
// and the BENCH_engine.json trajectory both run on it.
func BenchGR(vocab int) Config {
	return Config{
		Name: "BenchGR", Layers: 4, Heads: 8, KVHeads: 2, HeadDim: 32,
		Hidden: 256, FFNDim: 1024, Vocab: vocab,
	}
}

// TinyGRAbsPos is TinyGR with a learned absolute position embedding — the
// position-sensitive model family for Table 3's degradation cases.
func TinyGRAbsPos(vocab, maxPos int) Config {
	c := TinyGR(vocab)
	c.Name = "TinyGR-AbsPos"
	c.AbsPos = true
	c.MaxPos = maxPos
	return c
}
