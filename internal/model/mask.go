package model

// Mask decides which attention edges are allowed. Indices are absolute
// positions in the full context (prefix cache tokens first, then the tokens
// being computed), so a mask describes the whole prompt layout regardless of
// how much of it came from cache.
type Mask interface {
	// Allowed reports whether the query token at absolute index q may attend
	// to the key token at absolute index k. Forward never asks about k > q;
	// attention is always causal in the token axis on top of the mask.
	Allowed(q, k int) bool
}

// CausalMask allows every causal edge — plain left-to-right attention.
type CausalMask struct{}

// Allowed implements Mask.
func (CausalMask) Allowed(q, k int) bool { return true }

// MaskFunc adapts a function to the Mask interface.
type MaskFunc func(q, k int) bool

// Allowed implements Mask.
func (f MaskFunc) Allowed(q, k int) bool { return f(q, k) }

// KeyRanger is an optional Mask extension for sparse masks whose allowed
// keys cluster into a few contiguous index ranges (e.g. the block-diagonal
// cross-request mask of a packed multi-request execution). The attention
// loop scores only the advertised ranges and treats everything outside as
// masked without consulting Allowed, turning an O(total context) scan per
// query into O(own context).
type KeyRanger interface {
	// KeyRanges appends to dst the half-open [lo, hi) key-index ranges that
	// may contain allowed keys for query q, and returns the extended slice.
	// Ranges must be disjoint, ascending, and include q itself; every key
	// outside them must be disallowed for q (Allowed still filters inside).
	KeyRanges(q int, dst [][2]int) [][2]int
}

// ExactKeyRanger strengthens KeyRanger: the advertised ranges hold exactly
// the allowed keys (after the engine's causal clamp to k <= q), not merely a
// superset. The attention loop then scores the ranges with no per-key
// Allowed calls and no NegInf sentinels at all — every visited key is
// visible by contract. Because a dense pass's masked entries contribute
// exactly zero weight (exp(-Inf) == 0) in the same ascending accumulation
// order, skipping them is bit-identical, so an exact mask changes only the
// work done, never the result.
type ExactKeyRanger interface {
	// ExactKeyRanges appends to dst the half-open [lo, hi) ranges holding
	// exactly query q's allowed keys, and returns the extended slice. Ranges
	// must be disjoint and ascending, include q itself, and may extend past q
	// (the engine clamps to the causal horizon).
	ExactKeyRanges(q int, dst [][2]int) [][2]int
}

// ExactKeyRanges implements ExactKeyRanger: every causal key is allowed.
func (CausalMask) ExactKeyRanges(q int, dst [][2]int) [][2]int {
	return append(dst, [2]int{0, q + 1})
}
