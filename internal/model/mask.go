package model

// Mask decides which attention edges are allowed. Indices are absolute
// positions in the full context (prefix cache tokens first, then the tokens
// being computed), so a mask describes the whole prompt layout regardless of
// how much of it came from cache.
type Mask interface {
	// Allowed reports whether the query token at absolute index q may attend
	// to the key token at absolute index k. Forward never asks about k > q;
	// attention is always causal in the token axis on top of the mask.
	Allowed(q, k int) bool
}

// CausalMask allows every causal edge — plain left-to-right attention.
type CausalMask struct{}

// Allowed implements Mask.
func (CausalMask) Allowed(q, k int) bool { return true }

// MaskFunc adapts a function to the Mask interface.
type MaskFunc func(q, k int) bool

// Allowed implements Mask.
func (f MaskFunc) Allowed(q, k int) bool { return f(q, k) }
