package model

import (
	"math/rand"
	"testing"

	"bat/internal/tensor"
)

func TestKVCacheMarshalRoundTrip(t *testing.T) {
	w := tinyWeights(t, 128)
	rng := rand.New(rand.NewSource(1))
	toks := randTokens(rng, 10, 128)
	cache := NewKVCache(w.Config())
	w.Forward(toks, seqPos(10), nil, cache)

	data, err := cache.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewKVCache(w.Config())
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 10 {
		t.Fatalf("restored %d tokens", restored.Len())
	}
	// A suffix served from the restored cache must match the original.
	suffix := []int{5, 6}
	pos := []int{10, 11}
	h1 := w.Forward(suffix, pos, nil, cache.Clone())
	h2 := w.Forward(suffix, pos, nil, restored)
	if d := tensor.MaxAbsDiff(h1.Data, h2.Data); d != 0 {
		t.Fatalf("restored cache deviates by %v", d)
	}
}

func TestKVCacheMarshalEmpty(t *testing.T) {
	c := NewKVCache(TinyGR(16))
	data, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	out := NewKVCache(TinyGR(16))
	if err := out.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("empty cache restored %d tokens", out.Len())
	}
}

func TestKVCacheUnmarshalRejectsGarbage(t *testing.T) {
	c := NewKVCache(TinyGR(16))
	cases := [][]byte{
		nil,
		[]byte("short"),
		make([]byte, 20), // zero magic
	}
	for i, data := range cases {
		if err := c.UnmarshalBinary(data); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestKVCacheUnmarshalRejectsArchMismatch(t *testing.T) {
	a := NewKVCache(TinyGR(16))
	w := NewWeights(TinyGR(16), 1)
	w.Forward([]int{1, 2}, seqPos(2), nil, a)
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	other := Config{Name: "other", Layers: 1, Heads: 2, KVHeads: 2, HeadDim: 4, Hidden: 8, FFNDim: 8, Vocab: 16}
	b := NewKVCache(other)
	if err := b.UnmarshalBinary(data); err == nil {
		t.Fatal("architecture mismatch accepted")
	}
	// Truncated body.
	if err := NewKVCache(TinyGR(16)).UnmarshalBinary(data[:len(data)-4]); err == nil {
		t.Fatal("truncated payload accepted")
	}
}
