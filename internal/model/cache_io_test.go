package model

import (
	"bytes"
	"math/rand"
	"testing"

	"bat/internal/tensor"
)

// wireTestConfigs are the attention families the BKV2 codec must round-trip
// bit-exactly: grouped-query (TinyGR), full multi-head, and HSTU.
func wireTestConfigs() map[string]Config {
	gqa := TinyGR(32)
	mha := TinyGR(32)
	mha.Name = "tiny-mha"
	mha.KVHeads = mha.Heads
	hstu := TinyGR(32)
	hstu.Name = "tiny-hstu"
	hstu.Attn = AttnHSTU
	return map[string]Config{"gqa": gqa, "mha": mha, "hstu": hstu}
}

// wireCache builds a cache holding tokens real forward-pass K/V rows.
func wireCache(tb testing.TB, cfg Config, tokens int) *KVCache {
	tb.Helper()
	c := NewKVCache(cfg)
	if tokens > 0 {
		w := NewWeights(cfg, 7)
		rng := rand.New(rand.NewSource(int64(tokens)))
		w.Forward(randTokens(rng, tokens, cfg.Vocab), seqPos(tokens), nil, c)
	}
	return c
}

func TestKVCacheMarshalRoundTrip(t *testing.T) {
	w := tinyWeights(t, 128)
	rng := rand.New(rand.NewSource(1))
	toks := randTokens(rng, 10, 128)
	cache := NewKVCache(w.Config())
	w.Forward(toks, seqPos(10), nil, cache)

	data, err := cache.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != cache.EncodedSize() {
		t.Fatalf("payload %d bytes, EncodedSize says %d", len(data), cache.EncodedSize())
	}
	restored := NewKVCache(w.Config())
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 10 {
		t.Fatalf("restored %d tokens", restored.Len())
	}
	// A suffix served from the restored cache must match the original.
	suffix := []int{5, 6}
	pos := []int{10, 11}
	h1 := w.Forward(suffix, pos, nil, cache.Clone())
	h2 := w.Forward(suffix, pos, nil, restored)
	if d := tensor.MaxAbsDiff(h1.Data, h2.Data); d != 0 {
		t.Fatalf("restored cache deviates by %v", d)
	}
}

// TestCodecRoundTripBitExact pins the acceptance criterion: encode→decode is
// bit-identical across attention families and token counts, for both the
// bulk and the scalar codec, through both the buffer and the stream APIs.
func TestCodecRoundTripBitExact(t *testing.T) {
	for name, cfg := range wireTestConfigs() {
		for _, tokens := range []int{0, 1, 5, 17} {
			c := wireCache(t, cfg, tokens)
			want, err := c.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			for _, scalar := range []bool{false, true} {
				prev := ForceScalarCodec(scalar)
				restored := NewKVCache(cfg)
				if err := restored.UnmarshalBinary(want); err != nil {
					t.Fatalf("%s/%d scalar=%v: %v", name, tokens, scalar, err)
				}
				got, err := restored.MarshalBinary()
				ForceScalarCodec(prev)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s/%d scalar=%v: round trip not byte-identical", name, tokens, scalar)
				}
				streamed := NewKVCache(cfg)
				if _, err := streamed.ReadFrom(bytes.NewReader(want)); err != nil {
					t.Fatalf("%s/%d stream decode: %v", name, tokens, err)
				}
				got, err = streamed.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s/%d: stream round trip not byte-identical", name, tokens)
				}
			}
		}
	}
}

// TestCodecBulkScalarIdenticalBytes cross-tests the two encoder paths: the
// scalar fallback and the bulk reinterpretation must emit identical bytes
// through MarshalBinary, WriteTo, and ChecksumRange.
func TestCodecBulkScalarIdenticalBytes(t *testing.T) {
	for name, cfg := range wireTestConfigs() {
		c := wireCache(t, cfg, 11)
		prev := ForceScalarCodec(false)
		bulk, err := c.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var bulkStream bytes.Buffer
		if _, err := c.WriteTo(&bulkStream); err != nil {
			t.Fatal(err)
		}
		bulkSum, err := c.ChecksumRange(0, c.Len())
		if err != nil {
			t.Fatal(err)
		}
		ForceScalarCodec(true)
		scalar, err := c.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var scalarStream bytes.Buffer
		if _, err := c.WriteTo(&scalarStream); err != nil {
			t.Fatal(err)
		}
		scalarSum, err := c.ChecksumRange(0, c.Len())
		ForceScalarCodec(prev)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bulk, scalar) {
			t.Fatalf("%s: bulk and scalar MarshalBinary differ", name)
		}
		if !bytes.Equal(bulkStream.Bytes(), bulk) || !bytes.Equal(scalarStream.Bytes(), bulk) {
			t.Fatalf("%s: WriteTo bytes differ from MarshalBinary", name)
		}
		if bulkSum != scalarSum || bulkSum != ChecksumEncoded(bulk) {
			t.Fatalf("%s: checksum mismatch bulk=%x scalar=%x encoded=%x", name, bulkSum, scalarSum, ChecksumEncoded(bulk))
		}
	}
}

// TestKVCacheStreamTruncation: any prefix of a valid stream must error out
// and leave the receiver's previous contents untouched — a truncated body can
// never produce a partial cache hit.
func TestKVCacheStreamTruncation(t *testing.T) {
	cfg := TinyGR(32)
	c := wireCache(t, cfg, 9)
	data, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	pre := wireCache(t, cfg, 2)
	preBytes, err := pre.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		r := NewKVCache(cfg)
		if err := r.UnmarshalBinary(preBytes); err != nil {
			t.Fatal(err)
		}
		if _, err := r.ReadFrom(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(data))
		}
		if r.Len() != 2 {
			t.Fatalf("truncation at %d left %d tokens (partial install)", cut, r.Len())
		}
		got, err := r.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, preBytes) {
			t.Fatalf("truncation at %d mutated receiver contents", cut)
		}
	}
	// Trailing garbage after a full payload is also rejected by the buffer
	// API (exact-size check); the stream API stops at the payload boundary.
	if err := NewKVCache(cfg).UnmarshalBinary(append(append([]byte{}, data...), 0xff)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestKVCacheMarshalEmpty(t *testing.T) {
	c := NewKVCache(TinyGR(16))
	data, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	out := NewKVCache(TinyGR(16))
	if err := out.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("empty cache restored %d tokens", out.Len())
	}
}

func TestKVCacheUnmarshalRejectsGarbage(t *testing.T) {
	c := NewKVCache(TinyGR(16))
	cases := [][]byte{
		nil,
		[]byte("short"),
		make([]byte, 20), // zero magic
	}
	for i, data := range cases {
		if err := c.UnmarshalBinary(data); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestWireHeaderHostileRejection: declared dimensions are capped before any
// allocation, so a 20-byte header cannot demand gigabytes.
func TestWireHeaderHostileRejection(t *testing.T) {
	mk := func(layers, kvh, hdim, tokens uint32) []byte {
		b := make([]byte, wireHeaderSize)
		putWireHeader(b, Config{Layers: int(layers), KVHeads: int(kvh), HeadDim: int(hdim)}, int(tokens))
		return b
	}
	hostile := [][]byte{
		mk(2, 2, 8, MaxWireTokens+1),
		mk(2, 2, 8, 0xffffffff),
		mk(maxWireLayers+1, 2, 8, 3),
		mk(0xffffffff, 0xffffffff, 0xffffffff, 0xffffffff),
		mk(0, 2, 8, 3),
		mk(2, 0, 8, 3),
		mk(2, 2, 0, 3),
		mk(2, maxWireKVHeads+1, 8, 3),
		mk(2, 2, maxWireHeadDim+1, 3),
	}
	for i, hdr := range hostile {
		if _, err := ParseWireHeader(hdr); err == nil {
			t.Errorf("hostile header %d accepted by ParseWireHeader", i)
		}
		c := NewKVCache(TinyGR(16))
		if err := c.UnmarshalBinary(hdr); err == nil {
			t.Errorf("hostile header %d accepted by UnmarshalBinary", i)
		}
		if _, err := c.ReadFrom(bytes.NewReader(hdr)); err == nil {
			t.Errorf("hostile header %d accepted by ReadFrom", i)
		}
	}
	// Within caps but mismatching the receiver: rejected by checkArch before
	// any frame allocation.
	if _, err := ParseWireHeader(mk(64, 8, 64, 1024)); err != nil {
		t.Fatalf("in-cap header rejected: %v", err)
	}
	if err := NewKVCache(TinyGR(16)).UnmarshalBinary(mk(64, 8, 64, 1024)); err == nil {
		t.Fatal("arch-mismatched header accepted")
	}
}

func TestKVCacheUnmarshalRejectsArchMismatch(t *testing.T) {
	a := NewKVCache(TinyGR(16))
	w := NewWeights(TinyGR(16), 1)
	w.Forward([]int{1, 2}, seqPos(2), nil, a)
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	other := Config{Name: "other", Layers: 1, Heads: 2, KVHeads: 2, HeadDim: 4, Hidden: 8, FFNDim: 8, Vocab: 16}
	b := NewKVCache(other)
	if err := b.UnmarshalBinary(data); err == nil {
		t.Fatal("architecture mismatch accepted")
	}
	// Truncated body.
	if err := NewKVCache(TinyGR(16)).UnmarshalBinary(data[:len(data)-4]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	// Old BKV1 payloads are rejected, not silently misdecoded.
	old := append([]byte{}, data...)
	old[0] = 0x31 // little-endian magic starts with the version char: '2' -> '1'
	if err := NewKVCache(TinyGR(16)).UnmarshalBinary(old); err == nil {
		t.Fatal("BKV1 magic accepted")
	}
}

// TestAppendEncodedMatchesFullMarshal pins the delta-append invariant:
// splicing MarshalRange(0,k) with MarshalRange(k,n) at the wire level is
// byte-identical to MarshalBinary() of the whole cache, and the prefix
// checksum the frontend computes matches what the worker hashes over its
// stored bytes.
func TestAppendEncodedMatchesFullMarshal(t *testing.T) {
	for name, cfg := range wireTestConfigs() {
		c := wireCache(t, cfg, 13)
		full, err := c.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{0, 1, 6, 12, 13} {
			prefix, err := c.MarshalRange(0, k)
			if err != nil {
				t.Fatal(err)
			}
			suffix, err := c.MarshalRange(k, c.Len())
			if err != nil {
				t.Fatal(err)
			}
			merged, err := AppendEncoded(prefix, suffix)
			if err != nil {
				t.Fatalf("%s split %d: %v", name, k, err)
			}
			if !bytes.Equal(merged, full) {
				t.Fatalf("%s split %d: spliced payload differs from full marshal", name, k)
			}
			sum, err := c.ChecksumRange(0, k)
			if err != nil {
				t.Fatal(err)
			}
			if sum != ChecksumEncoded(prefix) {
				t.Fatalf("%s split %d: ChecksumRange %x != ChecksumEncoded %x", name, k, sum, ChecksumEncoded(prefix))
			}
		}
	}
}

func TestAppendEncodedRejects(t *testing.T) {
	gqa := wireCache(t, TinyGR(32), 6)
	mhaCfg := TinyGR(32)
	mhaCfg.KVHeads = mhaCfg.Heads
	mha := wireCache(t, mhaCfg, 6)
	g, _ := gqa.MarshalBinary()
	m, _ := mha.MarshalBinary()
	if _, err := AppendEncoded(g, m); err == nil {
		t.Fatal("arch mismatch accepted")
	}
	if _, err := AppendEncoded(g[:len(g)-3], g); err == nil {
		t.Fatal("truncated stored payload accepted")
	}
	if _, err := AppendEncoded(g, g[:wireHeaderSize+2]); err == nil {
		t.Fatal("truncated delta payload accepted")
	}
	if _, err := AppendEncoded(nil, g); err == nil {
		t.Fatal("empty stored payload accepted")
	}
	// Valid self-append doubles the token count.
	merged, err := AppendEncoded(g, g)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ParseWireHeader(merged)
	if err != nil {
		t.Fatal(err)
	}
	if h.Tokens != 12 || len(merged) != h.PayloadSize() {
		t.Fatalf("self-append produced tokens=%d size=%d", h.Tokens, len(merged))
	}
}

func TestMarshalRangeValidation(t *testing.T) {
	c := wireCache(t, TinyGR(32), 4)
	for _, r := range [][2]int{{-1, 2}, {3, 2}, {0, 5}} {
		if _, err := c.MarshalRange(r[0], r[1]); err == nil {
			t.Errorf("range [%d,%d) accepted", r[0], r[1])
		}
		if _, err := c.ChecksumRange(r[0], r[1]); err == nil {
			t.Errorf("checksum range [%d,%d) accepted", r[0], r[1])
		}
	}
}
