package model

import (
	"bytes"
	"math/rand"
	"os"
	"testing"
	"time"
)

// codecBenchConfig is sized so one payload is a few MB — large enough that
// MB/s reflects steady-state copy bandwidth, small enough for -benchtime=1x
// CI smoke runs.
func codecBenchConfig() Config {
	return Config{
		Name: "codec-bench", Layers: 4, Heads: 8, KVHeads: 4, HeadDim: 32,
		Hidden: 64, FFNDim: 64, Vocab: 64,
	}
}

// fillRandomKV loads tokens of synthetic K/V rows without running a forward
// pass (the codec doesn't care where the floats came from).
func fillRandomKV(c *KVCache, tokens int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	st := c.stride()
	k := make([]float32, st)
	v := make([]float32, st)
	for t := 0; t < tokens; t++ {
		for l := 0; l < c.cfg.Layers; l++ {
			for i := range k {
				k[i] = rng.Float32()*2 - 1
				v[i] = rng.Float32()*2 - 1
			}
			c.appendToken(l, k, v)
		}
	}
}

// 256 tokens ≈ a 1MB payload: large enough to measure steady-state decode,
// small enough to stay cache-resident like the per-layer frames the
// streaming fetch path actually decodes (so the gate compares codecs, not
// DRAM bandwidth).
const codecBenchTokens = 256

func codecBenchCache() *KVCache {
	c := NewKVCache(codecBenchConfig())
	fillRandomKV(c, codecBenchTokens, 11)
	return c
}

func BenchmarkMarshalKV(b *testing.B) {
	c := codecBenchCache()
	b.SetBytes(int64(c.EncodedSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalKVScalar(b *testing.B) {
	prev := ForceScalarCodec(true)
	defer ForceScalarCodec(prev)
	c := codecBenchCache()
	b.SetBytes(int64(c.EncodedSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalKV(b *testing.B) {
	c := codecBenchCache()
	data, err := c.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	out := NewKVCache(c.Config())
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := out.UnmarshalBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalKVScalar(b *testing.B) {
	prev := ForceScalarCodec(true)
	defer ForceScalarCodec(prev)
	c := codecBenchCache()
	data, err := c.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	out := NewKVCache(c.Config())
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := out.UnmarshalBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamDecodeKV(b *testing.B) {
	c := codecBenchCache()
	data, err := c.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	out := NewKVCache(c.Config())
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := out.ReadFrom(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamEncodeKV(b *testing.B) {
	c := codecBenchCache()
	var buf bytes.Buffer
	buf.Grow(c.EncodedSize())
	b.SetBytes(int64(c.EncodedSize()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := c.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// measureUnmarshal returns the best-of-reps per-op duration for decoding data
// into out, timing iters iterations per rep.
func measureUnmarshal(tb testing.TB, out *KVCache, data []byte, iters, reps int) time.Duration {
	best := time.Duration(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := out.UnmarshalBinary(data); err != nil {
				tb.Fatal(err)
			}
		}
		d := time.Since(start) / time.Duration(iters)
		if r == 0 || d < best {
			best = d
		}
	}
	return best
}

// TestBulkCodecGate (env-gated, CI) fails if the bulk codec's unmarshal is
// not ≥5x the scalar fallback's throughput on this host — the regression
// guard for the whole point of the BKV2 rewrite.
func TestBulkCodecGate(t *testing.T) {
	if os.Getenv("BAT_TRANSFER_GATE") == "" {
		t.Skip("set BAT_TRANSFER_GATE=1 to run the bulk-codec speedup gate")
	}
	if !hostLittleEndian {
		t.Skip("bulk codec unavailable on big-endian hosts")
	}
	c := codecBenchCache()
	data, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	out := NewKVCache(c.Config())
	iters, reps := 20, 5
	bulk := measureUnmarshal(t, out, data, iters, reps)
	prev := ForceScalarCodec(true)
	scalar := measureUnmarshal(t, out, data, iters, reps)
	ForceScalarCodec(prev)
	ratio := float64(scalar) / float64(bulk)
	t.Logf("payload %d bytes: bulk %v/op, scalar %v/op, speedup %.1fx", len(data), bulk, scalar, ratio)
	if ratio < 5 {
		t.Fatalf("bulk unmarshal only %.1fx scalar (gate requires >=5x)", ratio)
	}
}
