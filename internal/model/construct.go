package model

import (
	"fmt"

	"bat/internal/tensor"
)

// NewZeroWeights builds a transformer whose projection matrices are all zero
// (every norm weight is 1, the FFN is a no-op, attention mixes nothing).
// It is the starting point for analytically constructed models — see
// internal/ranking, which plants embeddings and attention projections to
// obtain a transformer whose ranking behaviour is understood exactly.
func NewZeroWeights(cfg Config) *Weights {
	w := NewWeights(cfg, 0)
	w.embed.Zero()
	if w.posEmbed != nil {
		w.posEmbed.Zero()
	}
	for l := range w.layers {
		lw := &w.layers[l]
		lw.wq.Zero()
		lw.wk.Zero()
		lw.wv.Zero()
		lw.wo.Zero()
		lw.wGate.Zero()
		lw.wUp.Zero()
		lw.wDown.Zero()
	}
	return w
}

// SetAttention replaces layer l's attention projections. Matrix shapes must
// match the architecture (Hidden x Heads*HeadDim for wq, Hidden x
// KVHeads*HeadDim for wk/wv, Heads*HeadDim x Hidden for wo).
func (w *Weights) SetAttention(l int, wq, wk, wv, wo *tensor.Matrix) {
	cfg := w.cfg
	qDim, kvDim := cfg.Heads*cfg.HeadDim, cfg.KVHeads*cfg.HeadDim
	check := func(name string, m *tensor.Matrix, rows, cols int) {
		if m.Rows != rows || m.Cols != cols {
			panic(fmt.Sprintf("model: %s shape %dx%d, want %dx%d", name, m.Rows, m.Cols, rows, cols))
		}
	}
	check("wq", wq, cfg.Hidden, qDim)
	check("wk", wk, cfg.Hidden, kvDim)
	check("wv", wv, cfg.Hidden, kvDim)
	check("wo", wo, qDim, cfg.Hidden)
	lw := &w.layers[l]
	lw.wq = wq.Clone()
	lw.wk = wk.Clone()
	lw.wv = wv.Clone()
	lw.wo = wo.Clone()
}

// SetPositionEmbedding overwrites the learned absolute position embedding at
// one position (AbsPos configs only).
func (w *Weights) SetPositionEmbedding(pos int, vec []float32) {
	if w.posEmbed == nil {
		panic("model: SetPositionEmbedding on a config without AbsPos")
	}
	if len(vec) != w.cfg.Hidden {
		panic(fmt.Sprintf("model: position embedding length %d != hidden %d", len(vec), w.cfg.Hidden))
	}
	copy(w.posEmbed.Row(pos), vec)
}
