package model

import (
	"encoding/binary"
	"fmt"
	"math"
)

// KV cache wire format, the payload the disaggregated cache pool's transfer
// engine moves between workers (§5.1). Layout (little endian):
//
//	magic  uint32  'BKV1'
//	layers uint32
//	kvh    uint32
//	hdim   uint32
//	tokens uint32
//	data   float32[layers][tokens*kvh*hdim]  keys, then values, per layer
const cacheMagic = 0x424b5631

// MarshalBinary serializes the cache for network transfer or spill.
func (c *KVCache) MarshalBinary() ([]byte, error) {
	stride := c.stride()
	size := 20 + c.cfg.Layers*c.n*stride*2*4
	buf := make([]byte, 0, size)
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], cacheMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(c.cfg.Layers))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(c.cfg.KVHeads))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(c.cfg.HeadDim))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(c.n))
	buf = append(buf, hdr[:]...)
	var scratch [4]byte
	appendF32 := func(vals []float32) {
		for _, v := range vals {
			binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(v))
			buf = append(buf, scratch[:]...)
		}
	}
	for l := 0; l < c.cfg.Layers; l++ {
		k, v := c.store.layerData(l, c.n)
		appendF32(k)
		appendF32(v)
	}
	return buf, nil
}

// UnmarshalBinary restores a cache serialized by MarshalBinary. The receiver
// must have been built (NewKVCache) for a matching architecture; existing
// contents are replaced.
func (c *KVCache) UnmarshalBinary(data []byte) error {
	if len(data) < 20 {
		return fmt.Errorf("model: kv payload truncated (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data[0:]) != cacheMagic {
		return fmt.Errorf("model: bad kv payload magic")
	}
	layers := int(binary.LittleEndian.Uint32(data[4:]))
	kvh := int(binary.LittleEndian.Uint32(data[8:]))
	hdim := int(binary.LittleEndian.Uint32(data[12:]))
	tokens := int(binary.LittleEndian.Uint32(data[16:]))
	if layers != c.cfg.Layers || kvh != c.cfg.KVHeads || hdim != c.cfg.HeadDim {
		return fmt.Errorf("model: kv payload for L=%d H=%d D=%d, cache expects L=%d H=%d D=%d",
			layers, kvh, hdim, c.cfg.Layers, c.cfg.KVHeads, c.cfg.HeadDim)
	}
	stride := c.stride()
	want := 20 + layers*tokens*stride*2*4
	if len(data) != want {
		return fmt.Errorf("model: kv payload is %d bytes, want %d", len(data), want)
	}
	off := 20
	readF32 := func(n int) []float32 {
		out := make([]float32, n)
		for i := range out {
			out[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[off:]))
			off += 4
		}
		return out
	}
	// Decoded payloads land in contiguous storage; arena-backed receivers
	// release their pages first.
	c.store.release()
	fs := newFlatStore(c.cfg)
	for l := 0; l < layers; l++ {
		fs.k[l] = readF32(tokens * stride)
		fs.v[l] = readF32(tokens * stride)
	}
	c.store = fs
	c.n = tokens
	return nil
}
