package model

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"unsafe"
)

// KV cache wire format, the payload the disaggregated cache pool's transfer
// engine moves between workers (§5.1). BKV2 frames each layer so a receiver
// can decode as bytes arrive instead of buffering the whole payload, and so a
// stored payload can be extended by splicing suffix-token frames in place
// (delta appends). Layout (all integers little endian):
//
//	header (20 bytes):
//	  magic  uint32  'BKV2'
//	  layers uint32
//	  kvh    uint32
//	  hdim   uint32
//	  tokens uint32
//	per layer l = 0..layers-1 (frame header 8 bytes + payload):
//	  layer  uint32  == l
//	  size   uint32  == 2*tokens*kvh*hdim*4 (K bytes + V bytes)
//	  k      float32[tokens*kvh*hdim]
//	  v      float32[tokens*kvh*hdim]
//
// On little-endian hosts the float payload is the in-memory []float32
// representation, so encode and decode are single bulk copies per half-frame
// (or zero-copy writes in WriteTo); a portable scalar path covers big-endian
// hosts and is cross-tested against the bulk path for byte identity.
const (
	cacheMagic      = 0x424b5632 // 'BKV2'
	wireHeaderSize  = 20
	frameHeaderSize = 8
)

// Hostile-header caps, checked before any allocation. They bound what a
// decoder will even consider, independent of the receiver's architecture:
// MaxWireTokens is far above any real history (the paper's longest sequences
// are O(10^4) tokens) while keeping the worst-case allocation a declared
// header can demand well under memory-exhaustion territory.
const (
	MaxWireTokens  = 1 << 20
	maxWireLayers  = 1 << 12
	maxWireKVHeads = 1 << 10
	maxWireHeadDim = 1 << 12
)

// hostLittleEndian reports whether []float32 memory already matches the wire
// byte order, enabling the reinterpret-and-copy bulk codec.
var hostLittleEndian = func() bool {
	var x uint32 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// forceScalarCodec pins the portable scalar path on (tests and the codec
// benchmark flip it to cross-check that both paths produce identical bytes
// and to measure the bulk path's speedup).
var forceScalarCodec = false

// ForceScalarCodec toggles the portable scalar codec path and returns the
// previous setting. It exists for benchmarks and cross-checks only; it is not
// safe to flip concurrently with codec use.
func ForceScalarCodec(v bool) (prev bool) {
	prev = forceScalarCodec
	forceScalarCodec = v
	return prev
}

func bulkCodec() bool { return hostLittleEndian && !forceScalarCodec }

// f32Bytes reinterprets a float32 slice as its raw bytes. Only meaningful on
// little-endian hosts (the wire order); callers gate on bulkCodec().
func f32Bytes(v []float32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)
}

// encodeF32 appends vals' wire bytes to dst: one bulk copy on little-endian
// hosts, a scalar loop otherwise.
func encodeF32(dst []byte, vals []float32) []byte {
	if bulkCodec() {
		return append(dst, f32Bytes(vals)...)
	}
	var scratch [4]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(v))
		dst = append(dst, scratch[:]...)
	}
	return dst
}

// decodeF32 fills out from wire bytes src (len(src) == 4*len(out)).
func decodeF32(out []float32, src []byte) {
	if bulkCodec() {
		copy(f32Bytes(out), src)
		return
	}
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[i*4:]))
	}
}

// WireHeader is a parsed BKV2 payload header: the architecture triple the
// payload was encoded for plus its token count.
type WireHeader struct {
	Layers  int
	KVHeads int
	HeadDim int
	Tokens  int
}

func (h WireHeader) stride() int { return h.KVHeads * h.HeadDim }

// layerBytes is one layer frame's payload size (K bytes + V bytes).
func (h WireHeader) layerBytes() int { return 2 * h.Tokens * h.stride() * 4 }

// PayloadSize returns the exact encoded size of a payload with this header.
func (h WireHeader) PayloadSize() int {
	return wireHeaderSize + h.Layers*(frameHeaderSize+h.layerBytes())
}

func (h WireHeader) sameArch(o WireHeader) bool {
	return h.Layers == o.Layers && h.KVHeads == o.KVHeads && h.HeadDim == o.HeadDim
}

// ParseWireHeader validates a BKV2 header prefix and returns its fields. The
// dimension caps reject hostile headers before any caller allocates; the caps
// also guarantee PayloadSize cannot overflow (4096 layers of 2^20 tokens at
// the max stride is < 2^62).
func ParseWireHeader(data []byte) (WireHeader, error) {
	if len(data) < wireHeaderSize {
		return WireHeader{}, fmt.Errorf("model: kv payload truncated (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data[0:]) != cacheMagic {
		return WireHeader{}, fmt.Errorf("model: bad kv payload magic")
	}
	h := WireHeader{
		Layers:  int(binary.LittleEndian.Uint32(data[4:])),
		KVHeads: int(binary.LittleEndian.Uint32(data[8:])),
		HeadDim: int(binary.LittleEndian.Uint32(data[12:])),
		Tokens:  int(binary.LittleEndian.Uint32(data[16:])),
	}
	switch {
	case h.Layers <= 0 || h.Layers > maxWireLayers:
		return WireHeader{}, fmt.Errorf("model: kv payload layers %d out of range (max %d)", h.Layers, maxWireLayers)
	case h.KVHeads <= 0 || h.KVHeads > maxWireKVHeads:
		return WireHeader{}, fmt.Errorf("model: kv payload kv heads %d out of range (max %d)", h.KVHeads, maxWireKVHeads)
	case h.HeadDim <= 0 || h.HeadDim > maxWireHeadDim:
		return WireHeader{}, fmt.Errorf("model: kv payload head dim %d out of range (max %d)", h.HeadDim, maxWireHeadDim)
	case h.Tokens < 0 || h.Tokens > MaxWireTokens:
		return WireHeader{}, fmt.Errorf("model: kv payload tokens %d out of range (max %d)", h.Tokens, MaxWireTokens)
	}
	return h, nil
}

func putWireHeader(b []byte, cfg Config, tokens int) {
	binary.LittleEndian.PutUint32(b[0:], cacheMagic)
	binary.LittleEndian.PutUint32(b[4:], uint32(cfg.Layers))
	binary.LittleEndian.PutUint32(b[8:], uint32(cfg.KVHeads))
	binary.LittleEndian.PutUint32(b[12:], uint32(cfg.HeadDim))
	binary.LittleEndian.PutUint32(b[16:], uint32(tokens))
}

func putFrameHeader(b []byte, layer, size int) {
	binary.LittleEndian.PutUint32(b[0:], uint32(layer))
	binary.LittleEndian.PutUint32(b[4:], uint32(size))
}

func checkFrameHeader(b []byte, layer, size int) error {
	if got := int(binary.LittleEndian.Uint32(b[0:])); got != layer {
		return fmt.Errorf("model: kv frame %d carries layer index %d", layer, got)
	}
	if got := int(binary.LittleEndian.Uint32(b[4:])); got != size {
		return fmt.Errorf("model: kv frame %d is %d bytes, want %d", layer, got, size)
	}
	return nil
}

// checkArch rejects payloads encoded for a different architecture than the
// receiving cache.
func (c *KVCache) checkArch(h WireHeader) error {
	if h.Layers != c.cfg.Layers || h.KVHeads != c.cfg.KVHeads || h.HeadDim != c.cfg.HeadDim {
		return fmt.Errorf("model: kv payload for L=%d H=%d D=%d, cache expects L=%d H=%d D=%d",
			h.Layers, h.KVHeads, h.HeadDim, c.cfg.Layers, c.cfg.KVHeads, c.cfg.HeadDim)
	}
	return nil
}

func (c *KVCache) wireHeader(tokens int) WireHeader {
	return WireHeader{Layers: c.cfg.Layers, KVHeads: c.cfg.KVHeads, HeadDim: c.cfg.HeadDim, Tokens: tokens}
}

// EncodedSize returns the exact MarshalBinary payload length, so senders can
// preallocate buffers and set Content-Length without encoding twice.
func (c *KVCache) EncodedSize() int { return c.wireHeader(c.n).PayloadSize() }

// MarshalBinary serializes the cache for network transfer or spill, encoding
// straight into one exactly-sized buffer.
func (c *KVCache) MarshalBinary() ([]byte, error) { return c.MarshalRange(0, c.n) }

// MarshalRange serializes tokens [lo, hi) as a standalone BKV2 payload. The
// transfer engine uses suffix ranges as delta-append bodies: because frames
// are raw K/V bytes, PUT(prefix) spliced with PATCH(suffix) is byte-identical
// to PUT(full).
func (c *KVCache) MarshalRange(lo, hi int) ([]byte, error) {
	if lo < 0 || hi < lo || hi > c.n {
		return nil, fmt.Errorf("model: marshal range [%d,%d) out of [0,%d]", lo, hi, c.n)
	}
	h := c.wireHeader(hi - lo)
	st := c.stride()
	buf := make([]byte, 0, h.PayloadSize())
	var hdr [wireHeaderSize]byte
	putWireHeader(hdr[:], c.cfg, h.Tokens)
	buf = append(buf, hdr[:]...)
	var fh [frameHeaderSize]byte
	for l := 0; l < c.cfg.Layers; l++ {
		putFrameHeader(fh[:], l, h.layerBytes())
		buf = append(buf, fh[:]...)
		k, v := c.store.layerData(l, hi)
		buf = encodeF32(buf, k[lo*st:hi*st])
		buf = encodeF32(buf, v[lo*st:hi*st])
	}
	return buf, nil
}

// resizeFloats returns a length-n slice, reusing b's storage when its
// capacity suffices so steady-state decodes into a warm receiver allocate
// nothing.
func resizeFloats(b []float32, n int) []float32 {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]float32, n)
}

// UnmarshalBinary restores a cache serialized by MarshalBinary. The receiver
// must have been built (NewKVCache) for a matching architecture; existing
// contents are replaced only on success — the whole payload (header, length,
// every frame header) is validated before any storage is touched, so any
// error leaves the receiver untouched. Decoding is bulk per half-frame with
// no intermediate buffers, reusing the receiver's contiguous storage in
// place when it is large enough.
func (c *KVCache) UnmarshalBinary(data []byte) error {
	h, err := ParseWireHeader(data)
	if err != nil {
		return err
	}
	if err := c.checkArch(h); err != nil {
		return err
	}
	if len(data) != h.PayloadSize() {
		return fmt.Errorf("model: kv payload is %d bytes, want %d", len(data), h.PayloadSize())
	}
	st := c.stride()
	lb := h.layerBytes()
	half := lb / 2
	for l := 0; l < c.cfg.Layers; l++ {
		off := wireHeaderSize + l*(frameHeaderSize+lb)
		if err := checkFrameHeader(data[off:off+frameHeaderSize], l, lb); err != nil {
			return err
		}
	}
	// Fully validated: decoding below cannot fail. Decoded payloads land in
	// contiguous storage; arena-backed receivers release their pages first.
	fs, ok := c.store.(*flatStore)
	if !ok {
		c.store.release()
		fs = newFlatStore(c.cfg)
		c.store = fs
	}
	off := wireHeaderSize + frameHeaderSize
	for l := 0; l < c.cfg.Layers; l++ {
		fs.k[l] = resizeFloats(fs.k[l], h.Tokens*st)
		fs.v[l] = resizeFloats(fs.v[l], h.Tokens*st)
		decodeF32(fs.k[l], data[off:off+half])
		decodeF32(fs.v[l], data[off+half:off+lb])
		off += lb + frameHeaderSize
	}
	c.n = h.Tokens
	return nil
}

// WriteTo streams the cache's BKV2 encoding to w without materializing a
// second full copy: on little-endian hosts each half-frame write is the
// layer's storage viewed as bytes.
func (c *KVCache) WriteTo(w io.Writer) (int64, error) {
	var written int64
	var hdr [wireHeaderSize]byte
	putWireHeader(hdr[:], c.cfg, c.n)
	n, err := w.Write(hdr[:])
	written += int64(n)
	if err != nil {
		return written, err
	}
	h := c.wireHeader(c.n)
	st := c.stride()
	var fh [frameHeaderSize]byte
	var scratch []byte // scalar fallback only
	for l := 0; l < c.cfg.Layers; l++ {
		putFrameHeader(fh[:], l, h.layerBytes())
		n, err = w.Write(fh[:])
		written += int64(n)
		if err != nil {
			return written, err
		}
		k, v := c.store.layerData(l, c.n)
		for _, vals := range [2][]float32{k[:c.n*st], v[:c.n*st]} {
			var b []byte
			if bulkCodec() {
				b = f32Bytes(vals)
			} else {
				scratch = encodeF32(scratch[:0], vals)
				b = scratch
			}
			n, err = w.Write(b)
			written += int64(n)
			if err != nil {
				return written, err
			}
		}
	}
	return written, nil
}

// ReadFrom decodes a BKV2 stream produced by WriteTo/MarshalBinary, reading
// each layer frame directly into its destination storage as bytes arrive —
// decode cost overlaps receive, and no full-payload buffer ever exists. The
// header is validated (architecture + token cap) before any allocation, and
// the decoded store is installed only after the whole stream arrives: a
// truncated or corrupt stream errors out with the receiver untouched, so a
// partial body can never masquerade as a cache hit.
func (c *KVCache) ReadFrom(r io.Reader) (int64, error) {
	var read int64
	var hdr [wireHeaderSize]byte
	n, err := io.ReadFull(r, hdr[:])
	read += int64(n)
	if err != nil {
		return read, fmt.Errorf("model: kv stream header: %w", err)
	}
	h, err := ParseWireHeader(hdr[:])
	if err != nil {
		return read, err
	}
	if err := c.checkArch(h); err != nil {
		return read, err
	}
	st := c.stride()
	lb := h.layerBytes()
	fs := newFlatStore(c.cfg)
	var fh [frameHeaderSize]byte
	var scratch []byte // scalar fallback only
	for l := 0; l < c.cfg.Layers; l++ {
		n, err = io.ReadFull(r, fh[:])
		read += int64(n)
		if err != nil {
			return read, fmt.Errorf("model: kv stream frame %d header: %w", l, err)
		}
		if err := checkFrameHeader(fh[:], l, lb); err != nil {
			return read, err
		}
		k := make([]float32, h.Tokens*st)
		v := make([]float32, h.Tokens*st)
		for _, vals := range [2][]float32{k, v} {
			if bulkCodec() {
				n, err = io.ReadFull(r, f32Bytes(vals))
				read += int64(n)
			} else {
				if cap(scratch) < len(vals)*4 {
					scratch = make([]byte, len(vals)*4)
				}
				scratch = scratch[:len(vals)*4]
				n, err = io.ReadFull(r, scratch)
				read += int64(n)
				if err == nil {
					decodeF32(vals, scratch)
				}
			}
			if err != nil {
				return read, fmt.Errorf("model: kv stream frame %d payload: %w", l, err)
			}
		}
		fs.k[l], fs.v[l] = k, v
	}
	c.store.release()
	c.store = fs
	c.n = h.Tokens
	return read, nil
}

// FNV-1a 64, inlined so checksums stream over encoded bytes without a hasher
// allocation per payload.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv64a(h uint64, b []byte) uint64 {
	for _, x := range b {
		h ^= uint64(x)
		h *= fnvPrime64
	}
	return h
}

// ChecksumEncoded returns the FNV-1a/64 checksum of an encoded payload. The
// cache worker hashes its stored bytes with this to validate a delta append's
// prefix guard.
func ChecksumEncoded(data []byte) uint64 { return fnv64a(fnvOffset64, data) }

// ChecksumRange returns ChecksumEncoded(MarshalRange(lo, hi)) without
// materializing the encoding — the frontend stamps delta PATCHes with the
// prefix checksum the worker must already hold.
func (c *KVCache) ChecksumRange(lo, hi int) (uint64, error) {
	if lo < 0 || hi < lo || hi > c.n {
		return 0, fmt.Errorf("model: checksum range [%d,%d) out of [0,%d]", lo, hi, c.n)
	}
	h := c.wireHeader(hi - lo)
	st := c.stride()
	sum := uint64(fnvOffset64)
	var hdr [wireHeaderSize]byte
	putWireHeader(hdr[:], c.cfg, h.Tokens)
	sum = fnv64a(sum, hdr[:])
	var fh [frameHeaderSize]byte
	var scratch []byte // scalar fallback only
	for l := 0; l < c.cfg.Layers; l++ {
		putFrameHeader(fh[:], l, h.layerBytes())
		sum = fnv64a(sum, fh[:])
		k, v := c.store.layerData(l, hi)
		for _, vals := range [2][]float32{k[lo*st : hi*st], v[lo*st : hi*st]} {
			if bulkCodec() {
				sum = fnv64a(sum, f32Bytes(vals))
			} else {
				scratch = encodeF32(scratch[:0], vals)
				sum = fnv64a(sum, scratch)
			}
		}
	}
	return sum, nil
}

// AppendEncoded splices a delta payload (the MarshalRange suffix of a grown
// cache) onto a stored payload, entirely at the wire level: per layer the
// merged frame is storedK‖deltaK then storedV‖deltaV, so no float is ever
// decoded. The result is byte-identical to marshaling the grown cache whole.
func AppendEncoded(stored, delta []byte) ([]byte, error) {
	sh, err := ParseWireHeader(stored)
	if err != nil {
		return nil, fmt.Errorf("model: append stored: %w", err)
	}
	dh, err := ParseWireHeader(delta)
	if err != nil {
		return nil, fmt.Errorf("model: append delta: %w", err)
	}
	if !sh.sameArch(dh) {
		return nil, fmt.Errorf("model: append arch mismatch: stored L=%d H=%d D=%d, delta L=%d H=%d D=%d",
			sh.Layers, sh.KVHeads, sh.HeadDim, dh.Layers, dh.KVHeads, dh.HeadDim)
	}
	if len(stored) != sh.PayloadSize() {
		return nil, fmt.Errorf("model: append stored payload is %d bytes, want %d", len(stored), sh.PayloadSize())
	}
	if len(delta) != dh.PayloadSize() {
		return nil, fmt.Errorf("model: append delta payload is %d bytes, want %d", len(delta), dh.PayloadSize())
	}
	mh := sh
	mh.Tokens = sh.Tokens + dh.Tokens
	if mh.Tokens > MaxWireTokens {
		return nil, fmt.Errorf("model: append result tokens %d exceed max %d", mh.Tokens, MaxWireTokens)
	}
	sHalf, dHalf := sh.layerBytes()/2, dh.layerBytes()/2
	out := make([]byte, 0, mh.PayloadSize())
	var hdr [wireHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], cacheMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(mh.Layers))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(mh.KVHeads))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(mh.HeadDim))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(mh.Tokens))
	out = append(out, hdr[:]...)
	var fh [frameHeaderSize]byte
	sOff, dOff := wireHeaderSize, wireHeaderSize
	for l := 0; l < mh.Layers; l++ {
		if err := checkFrameHeader(stored[sOff:sOff+frameHeaderSize], l, sh.layerBytes()); err != nil {
			return nil, fmt.Errorf("model: append stored: %w", err)
		}
		if err := checkFrameHeader(delta[dOff:dOff+frameHeaderSize], l, dh.layerBytes()); err != nil {
			return nil, fmt.Errorf("model: append delta: %w", err)
		}
		sOff += frameHeaderSize
		dOff += frameHeaderSize
		putFrameHeader(fh[:], l, mh.layerBytes())
		out = append(out, fh[:]...)
		out = append(out, stored[sOff:sOff+sHalf]...) // K stored
		out = append(out, delta[dOff:dOff+dHalf]...)  // K delta
		out = append(out, stored[sOff+sHalf:sOff+2*sHalf]...) // V stored
		out = append(out, delta[dOff+dHalf:dOff+2*dHalf]...)  // V delta
		sOff += 2 * sHalf
		dOff += 2 * dHalf
	}
	return out, nil
}
