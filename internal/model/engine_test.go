package model

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"bat/internal/tensor"
)

// engineConfigs is the bit-equivalence test matrix: every attention family
// and position scheme the engine serves.
func engineConfigs() []Config {
	gqa := TinyGR(128) // Heads=4, KVHeads=2: grouped-query attention
	mha := TinyGR(128)
	mha.Name = "TinyGR-MHA"
	mha.KVHeads = mha.Heads // multi-head: every query head owns its KV
	hstu := tinyHSTU(128)
	abs := TinyGRAbsPos(128, 256)
	bench := BenchGR(128)
	bench.Layers = 2 // keep the matrix fast; the shape is what matters
	return []Config{gqa, mha, hstu, abs, bench}
}

// engineMasks pairs each config with the mask shapes Bipartite Attention
// actually issues: plain causal, and a segmented custom mask.
func engineMasks() map[string]Mask {
	return map[string]Mask{
		"causal": nil,
		"segmented": MaskFunc(func(q, k int) bool {
			// Three isolated segments followed by tokens that see everything
			// — the Item-as-prefix shape.
			if q < 24 {
				return q/8 == k/8
			}
			return true
		}),
	}
}

// TestForwardMatchesReferenceBitExact is the engine's core guarantee: the
// batched multi-core path produces bit-identical hidden states
// (MaxAbsDiff == 0) to the retained token-at-a-time reference, for every
// config in the matrix, under causal and custom masks, at several batch
// splits, and the caches it leaves behind serve suffixes identically.
func TestForwardMatchesReferenceBitExact(t *testing.T) {
	for _, cfg := range engineConfigs() {
		for maskName, mask := range engineMasks() {
			t.Run(cfg.Name+"/"+maskName, func(t *testing.T) {
				w := NewWeights(cfg, 17)
				rng := rand.New(rand.NewSource(99))
				const n = 32
				toks := randTokens(rng, n, cfg.Vocab)
				pos := seqPos(n)

				refCache := NewKVCache(cfg)
				ref := w.ForwardReference(toks, pos, mask, refCache)

				for _, split := range []int{0, 1, 7, 16, n - 1} {
					cache := NewKVCache(cfg)
					var got []float32
					if split > 0 {
						head := w.Forward(toks[:split], pos[:split], mask, cache)
						got = append(got, head.Data...)
					}
					tail := w.Forward(toks[split:], pos[split:], mask, cache)
					got = append(got, tail.Data...)
					if d := tensor.MaxAbsDiff(got, ref.Data); d != 0 {
						t.Fatalf("split %d: batched engine deviates from reference by %v", split, d)
					}
					if cache.Len() != refCache.Len() {
						t.Fatalf("split %d: cache len %d, reference %d", split, cache.Len(), refCache.Len())
					}
				}

				// The batched cache must serve a fresh suffix exactly like
				// the reference cache.
				sufToks := randTokens(rng, 5, cfg.Vocab)
				sufPos := []int{n, n + 1, n + 2, n + 3, n + 4}
				batched := NewKVCache(cfg)
				w.Forward(toks, pos, mask, batched)
				s1 := w.Forward(sufToks, sufPos, mask, batched)
				s2 := w.ForwardReference(sufToks, sufPos, mask, refCache)
				if d := tensor.MaxAbsDiff(s1.Data, s2.Data); d != 0 {
					t.Fatalf("suffix over batched cache deviates by %v", d)
				}
			})
		}
	}
}

// TestForwardDeterministicAcrossPoolWidths pins the GOMAXPROCS=1 vs N
// guarantee: the same call produces the same bits at any pool width.
func TestForwardDeterministicAcrossPoolWidths(t *testing.T) {
	defer tensor.SetParallelism(0)
	for _, cfg := range engineConfigs() {
		w := NewWeights(cfg, 23)
		rng := rand.New(rand.NewSource(7))
		toks := randTokens(rng, 48, cfg.Vocab)
		pos := seqPos(48)

		tensor.SetParallelism(1)
		serial := w.Forward(toks, pos, nil, NewKVCache(cfg))
		for _, width := range []int{2, 4, 8} {
			tensor.SetParallelism(width)
			parallel := w.Forward(toks, pos, nil, NewKVCache(cfg))
			if d := tensor.MaxAbsDiff(serial.Data, parallel.Data); d != 0 {
				t.Fatalf("%s: width %d deviates from width 1 by %v", cfg.Name, width, d)
			}
		}
	}
}

// TestConcurrentForwardSharedWeights exercises the worker pool from many
// simultaneous Forward callers over one Weights value — the serving
// pattern — and checks every caller still gets reference-exact bits. Run
// with -race, this is the engine's data-race gate.
func TestConcurrentForwardSharedWeights(t *testing.T) {
	tensor.SetParallelism(4)
	defer tensor.SetParallelism(0)
	cfg := TinyGR(128)
	w := NewWeights(cfg, 31)
	rng := rand.New(rand.NewSource(3))
	const n = 40
	toks := randTokens(rng, n, cfg.Vocab)
	pos := seqPos(n)
	want := w.ForwardReference(toks, pos, nil, NewKVCache(cfg))

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := w.Forward(toks, pos, nil, NewKVCache(cfg))
			if d := tensor.MaxAbsDiff(h.Data, want.Data); d != 0 {
				errs <- fmt.Errorf("concurrent Forward deviates by %v", d)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestForwardAllocsHoisted is the allocation regression gate for the
// per-token k/v hoist: the batched engine allocates per call (embeddings,
// one scratch set, cache growth), not per token per layer. The seed engine
// paid 2 slice allocations per token per layer for k/v alone — 128 for
// this shape — before any scratch.
func TestForwardAllocsHoisted(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomly drops sync.Pool buffers; counts are not meaningful")
	}
	cfg := TinyGR(64) // 2 layers
	w := NewWeights(cfg, 5)
	rng := rand.New(rand.NewSource(13))
	toks := randTokens(rng, 32, cfg.Vocab)
	pos := seqPos(32)

	allocs := testing.AllocsPerRun(20, func() {
		w.Forward(toks, pos, nil, NewKVCache(cfg))
	})
	// Budget: fresh cache + reserve (~8), result matrix (2), scratch set
	// (~16), parallel-dispatch closures (~2 per GEMM), warm-up of the score
	// pool. 60 leaves headroom without letting per-token allocation (2 per
	// token per layer in the seed engine = 128 here) creep back in.
	if allocs > 60 {
		t.Errorf("Forward allocated %.0f objects for 32 tokens; per-token buffers have crept back in", allocs)
	}

	// Doubling the token count must not proportionally scale allocations.
	toks64 := randTokens(rng, 64, cfg.Vocab)
	pos64 := seqPos(64)
	allocs64 := testing.AllocsPerRun(20, func() {
		w.Forward(toks64, pos64, nil, NewKVCache(cfg))
	})
	if allocs64 > allocs+20 {
		t.Errorf("allocations scale with tokens: %.0f at n=32 vs %.0f at n=64", allocs, allocs64)
	}
}

func benchForward(b *testing.B, reference bool, n int) {
	cfg := BenchGR(1024)
	w := NewWeights(cfg, 1)
	fwd := w.Forward
	if reference {
		fwd = w.ForwardReference
	}
	rng := rand.New(rand.NewSource(1))
	toks := randTokens(rng, n, cfg.Vocab)
	pos := seqPos(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fwd(toks, pos, nil, NewKVCache(cfg))
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "tokens/sec")
}

// BenchmarkPrefill measures batched prefill throughput on the paper-scale
// test config (256-token prompt) — the acceptance metric recorded in
// BENCH_engine.json.
func BenchmarkPrefill(b *testing.B) { benchForward(b, false, 256) }

// BenchmarkPrefillReference is the seed engine on the same workload; the
// Prefill/PrefillReference ratio is the engine speedup.
func BenchmarkPrefillReference(b *testing.B) { benchForward(b, true, 256) }

// BenchmarkDecode measures single-token extension of a 256-token context —
// the per-step cost the decode phase pays.
func BenchmarkDecode(b *testing.B) {
	cfg := BenchGR(1024)
	w := NewWeights(cfg, 1)
	rng := rand.New(rand.NewSource(1))
	toks := randTokens(rng, 256, cfg.Vocab)
	pos := seqPos(256)
	cache := NewKVCache(cfg)
	w.Forward(toks, pos, nil, cache)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Forward([]int{i % cfg.Vocab}, []int{256}, nil, cache)
		cache.Truncate(256)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tokens/sec")
}
