package model

import "testing"

// FuzzKVCacheUnmarshal: arbitrary payloads must never panic the decoder,
// and accepted payloads must leave the cache self-consistent.
func FuzzKVCacheUnmarshal(f *testing.F) {
	w := NewWeights(TinyGR(32), 1)
	cache := NewKVCache(w.Config())
	w.Forward([]int{1, 2, 3}, []int{0, 1, 2}, nil, cache)
	valid, err := cache.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("not a cache"))
	f.Add(valid[:12])
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewKVCache(TinyGR(32))
		if err := c.UnmarshalBinary(data); err != nil {
			return
		}
		if c.Len() < 0 {
			t.Fatal("negative token count accepted")
		}
		// An accepted cache must re-serialize to the same bytes.
		out, err := c.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(data) {
			t.Fatalf("round trip changed size: %d -> %d", len(data), len(out))
		}
		for i := range out {
			if out[i] != data[i] {
				t.Fatal("round trip changed bytes")
			}
		}
	})
}
