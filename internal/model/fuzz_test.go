package model

import (
	"bytes"
	"testing"
)

// FuzzKVCacheUnmarshal: arbitrary payloads must never panic the decoder,
// and accepted payloads must leave the cache self-consistent.
func FuzzKVCacheUnmarshal(f *testing.F) {
	w := NewWeights(TinyGR(32), 1)
	cache := NewKVCache(w.Config())
	w.Forward([]int{1, 2, 3}, []int{0, 1, 2}, nil, cache)
	valid, err := cache.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("not a cache"))
	f.Add(valid[:12])
	f.Add(valid[:wireHeaderSize])
	f.Add(valid[:wireHeaderSize+frameHeaderSize+3])
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewKVCache(TinyGR(32))
		if err := c.UnmarshalBinary(data); err != nil {
			return
		}
		if c.Len() < 0 {
			t.Fatal("negative token count accepted")
		}
		// An accepted cache must re-serialize to the same bytes.
		out, err := c.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(data) {
			t.Fatalf("round trip changed size: %d -> %d", len(data), len(out))
		}
		for i := range out {
			if out[i] != data[i] {
				t.Fatal("round trip changed bytes")
			}
		}
	})
}

// FuzzKVCacheReadFrom fuzzes the BKV2 streaming decoder: never panic, never
// install a partial cache, and an accepted stream must re-serialize to
// exactly the bytes consumed.
func FuzzKVCacheReadFrom(f *testing.F) {
	w := NewWeights(TinyGR(32), 1)
	cache := NewKVCache(w.Config())
	w.Forward([]int{1, 2, 3}, []int{0, 1, 2}, nil, cache)
	valid, err := cache.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(append(append([]byte{}, valid...), 0xde, 0xad)) // trailing junk after a full stream
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:wireHeaderSize+frameHeaderSize])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewKVCache(TinyGR(32))
		n, err := c.ReadFrom(bytes.NewReader(data))
		if err != nil {
			if c.Len() != 0 {
				t.Fatalf("failed stream installed %d tokens", c.Len())
			}
			return
		}
		if n > int64(len(data)) {
			t.Fatalf("read %d of %d bytes", n, len(data))
		}
		out, err := c.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, data[:n]) {
			t.Fatal("stream round trip changed bytes")
		}
	})
}

// FuzzAppendEncoded fuzzes the wire-level delta splice: never panic, and any
// accepted result must be a structurally valid payload that decodes.
func FuzzAppendEncoded(f *testing.F) {
	w := NewWeights(TinyGR(32), 1)
	cache := NewKVCache(w.Config())
	w.Forward([]int{1, 2, 3, 4}, []int{0, 1, 2, 3}, nil, cache)
	full, err := cache.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	prefix, _ := cache.MarshalRange(0, 2)
	suffix, _ := cache.MarshalRange(2, 4)
	f.Add(prefix, suffix)
	f.Add(full, full)
	f.Add([]byte{}, full)
	f.Add(full[:13], suffix)
	f.Fuzz(func(t *testing.T, stored, delta []byte) {
		merged, err := AppendEncoded(stored, delta)
		if err != nil {
			return
		}
		h, err := ParseWireHeader(merged)
		if err != nil {
			t.Fatalf("accepted splice has bad header: %v", err)
		}
		if len(merged) != h.PayloadSize() {
			t.Fatalf("accepted splice is %d bytes, header says %d", len(merged), h.PayloadSize())
		}
		if h.Layers == TinyGR(32).Layers && h.KVHeads == TinyGR(32).KVHeads && h.HeadDim == TinyGR(32).HeadDim {
			if err := NewKVCache(TinyGR(32)).UnmarshalBinary(merged); err != nil {
				t.Fatalf("accepted splice does not decode: %v", err)
			}
		}
	})
}
