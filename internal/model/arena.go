package model

import "fmt"

// BlockArena is a PagedAttention-style block pool: KV storage carved into
// fixed-size pages of blockTokens tokens (across all layers), allocated from
// a free list and shared between caches by reference counting. Block-aligned
// prefix content concatenates and clones without copying — the mechanism
// that lets one physical item or user prefix serve many in-flight contexts,
// exactly the role GPU page tables play under vLLM (§5.1: "fixed-size pages
// compatible with PagedAttention").
//
// The arena is not safe for concurrent use; each inference worker owns one.
type BlockArena struct {
	cfg         Config
	blockTokens int
	stride      int
	slabFloats  int

	slabs [][]float32
	refs  []int
	free  []int

	shareEvents int64
}

// NewBlockArena builds an arena for the given architecture and page size.
func NewBlockArena(cfg Config, blockTokens int) (*BlockArena, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if blockTokens <= 0 {
		return nil, fmt.Errorf("model: block size must be positive, got %d", blockTokens)
	}
	stride := cfg.KVHeads * cfg.HeadDim
	return &BlockArena{
		cfg:         cfg,
		blockTokens: blockTokens,
		stride:      stride,
		slabFloats:  cfg.Layers * 2 * blockTokens * stride,
	}, nil
}

// BlockTokens returns the page size in tokens.
func (a *BlockArena) BlockTokens() int { return a.blockTokens }

// NewKVCache returns an empty cache whose storage pages live in the arena.
func (a *BlockArena) NewKVCache() *KVCache {
	return &KVCache{cfg: a.cfg, store: &pagedStore{arena: a, cursor: make([]int, a.cfg.Layers)}}
}

// Adopt copies a cache into arena-backed storage — how a freshly computed
// prefix is admitted into the shared page pool. The source is untouched.
func (a *BlockArena) Adopt(c *KVCache) *KVCache {
	if c.cfg.Name != a.cfg.Name || c.stride() != a.stride || c.cfg.Layers != a.cfg.Layers {
		panic(fmt.Sprintf("model: Adopt architecture mismatch: %s vs %s", c.cfg.Name, a.cfg.Name))
	}
	out := a.NewKVCache()
	out.store.appendFrom(c.store, c.n)
	out.n = c.n
	return out
}

// ArenaStats snapshots the pool.
type ArenaStats struct {
	BlocksAllocated int   // total slabs ever created
	BlocksInUse     int   // slabs with a live reference
	BlocksFree      int   // slabs on the free list
	ShareEvents     int64 // block shares performed by clone/concat
}

// Stats reports pool usage.
func (a *BlockArena) Stats() ArenaStats {
	return ArenaStats{
		BlocksAllocated: len(a.slabs),
		BlocksInUse:     len(a.slabs) - len(a.free),
		BlocksFree:      len(a.free),
		ShareEvents:     a.shareEvents,
	}
}

func (a *BlockArena) alloc() int {
	if n := len(a.free); n > 0 {
		id := a.free[n-1]
		a.free = a.free[:n-1]
		a.refs[id] = 1
		return id
	}
	a.slabs = append(a.slabs, make([]float32, a.slabFloats))
	a.refs = append(a.refs, 1)
	return len(a.slabs) - 1
}

func (a *BlockArena) incref(id int) { a.refs[id]++; a.shareEvents++ }

func (a *BlockArena) decref(id int) {
	a.refs[id]--
	if a.refs[id] == 0 {
		a.free = append(a.free, id)
	}
}

// kOff and vOff locate a token's row inside a slab.
func (a *BlockArena) kOff(layer, slot int) int {
	return (layer*2)*a.blockTokens*a.stride + slot*a.stride
}

func (a *BlockArena) vOff(layer, slot int) int {
	return (layer*2+1)*a.blockTokens*a.stride + slot*a.stride
}

// pagedStore is the arena-backed kvStore.
type pagedStore struct {
	arena  *BlockArena
	blocks []int
	// cursor tracks the per-layer append position: layers advance
	// independently within one forward pass and are level between passes.
	cursor []int
}

func (s *pagedStore) appendToken(layer int, k, v []float32) {
	t := s.cursor[layer]
	s.writeToken(layer, t, k, v)
	s.cursor[layer] = t + 1
}

// writeToken places one row, allocating or copy-on-writing its block.
func (s *pagedStore) writeToken(layer, t int, k, v []float32) {
	a := s.arena
	bi := t / a.blockTokens
	for bi >= len(s.blocks) {
		s.blocks = append(s.blocks, a.alloc())
	}
	id := s.blocks[bi]
	if a.refs[id] > 1 {
		// Copy-on-write: the block is shared with another cache.
		fresh := a.alloc()
		copy(a.slabs[fresh], a.slabs[id])
		a.decref(id)
		s.blocks[bi] = fresh
		id = fresh
	}
	slot := t % a.blockTokens
	copy(a.slabs[id][a.kOff(layer, slot):], k)
	copy(a.slabs[id][a.vOff(layer, slot):], v)
}

func (s *pagedStore) layerK(layer, t, h int) []float32 {
	a := s.arena
	id := s.blocks[t/a.blockTokens]
	off := a.kOff(layer, t%a.blockTokens) + h*a.cfg.HeadDim
	return a.slabs[id][off : off+a.cfg.HeadDim]
}

func (s *pagedStore) layerV(layer, t, h int) []float32 {
	a := s.arena
	id := s.blocks[t/a.blockTokens]
	off := a.vOff(layer, t%a.blockTokens) + h*a.cfg.HeadDim
	return a.slabs[id][off : off+a.cfg.HeadDim]
}

func (s *pagedStore) truncate(n int) {
	a := s.arena
	keep := (n + a.blockTokens - 1) / a.blockTokens
	for _, id := range s.blocks[keep:] {
		a.decref(id)
	}
	s.blocks = s.blocks[:keep]
	for l := range s.cursor {
		s.cursor[l] = n
	}
}

func (s *pagedStore) clone() kvStore {
	out := &pagedStore{arena: s.arena, blocks: append([]int(nil), s.blocks...), cursor: append([]int(nil), s.cursor...)}
	for _, id := range out.blocks {
		s.arena.incref(id)
	}
	return out
}

// aligned reports whether every layer cursor sits on the same block-aligned
// boundary, the precondition for sharing whole source blocks.
func (s *pagedStore) aligned() bool {
	n := s.cursor[0]
	for _, c := range s.cursor {
		if c != n {
			return false
		}
	}
	return n%s.arena.blockTokens == 0
}

func (s *pagedStore) appendFrom(src kvStore, tokens int) {
	a := s.arena
	if ps, ok := src.(*pagedStore); ok && ps.arena == a && s.aligned() {
		full := tokens / a.blockTokens
		for i := 0; i < full; i++ {
			a.incref(ps.blocks[i])
			s.blocks = append(s.blocks, ps.blocks[i])
		}
		for l := range s.cursor {
			s.cursor[l] += full * a.blockTokens
		}
		// Copy the unaligned tail row by row.
		for t := full * a.blockTokens; t < tokens; t++ {
			for l := 0; l < a.cfg.Layers; l++ {
				s.writeToken(l, s.cursor[l], ps.rowK(l, t), ps.rowV(l, t))
			}
			for l := range s.cursor {
				s.cursor[l]++
			}
		}
		return
	}
	// Generic path: materialize each source layer once, then copy rows.
	stride := a.stride
	ks := make([][]float32, a.cfg.Layers)
	vs := make([][]float32, a.cfg.Layers)
	for l := 0; l < a.cfg.Layers; l++ {
		ks[l], vs[l] = src.layerData(l, tokens)
	}
	for t := 0; t < tokens; t++ {
		for l := 0; l < a.cfg.Layers; l++ {
			s.writeToken(l, s.cursor[l], ks[l][t*stride:(t+1)*stride], vs[l][t*stride:(t+1)*stride])
		}
		for l := range s.cursor {
			s.cursor[l]++
		}
	}
}

// rowK/rowV return a token's full stride-wide row.
func (s *pagedStore) rowK(layer, t int) []float32 {
	a := s.arena
	id := s.blocks[t/a.blockTokens]
	off := a.kOff(layer, t%a.blockTokens)
	return a.slabs[id][off : off+a.stride]
}

func (s *pagedStore) rowV(layer, t int) []float32 {
	a := s.arena
	id := s.blocks[t/a.blockTokens]
	off := a.vOff(layer, t%a.blockTokens)
	return a.slabs[id][off : off+a.stride]
}

func (s *pagedStore) layerData(l, n int) (k, v []float32) {
	stride := s.arena.stride
	k = make([]float32, n*stride)
	v = make([]float32, n*stride)
	for t := 0; t < n; t++ {
		copy(k[t*stride:], s.rowK(l, t))
		copy(v[t*stride:], s.rowV(l, t))
	}
	return k, v
}

func (s *pagedStore) release() {
	for _, id := range s.blocks {
		s.arena.decref(id)
	}
	s.blocks = nil
	for l := range s.cursor {
		s.cursor[l] = 0
	}
}
