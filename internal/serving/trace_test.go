package serving

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTraceRingBounded(t *testing.T) {
	r := NewTraceRing(4)
	if r.Len() != 0 || len(r.Snapshot(0)) != 0 {
		t.Fatal("fresh ring not empty")
	}
	for i := 0; i < 10; i++ {
		r.Add(Trace{UserID: i})
	}
	if r.Len() != 4 {
		t.Fatalf("ring len %d, want 4", r.Len())
	}
	got := r.Snapshot(0)
	if len(got) != 4 {
		t.Fatalf("snapshot len %d, want 4", len(got))
	}
	// Newest first, sequence numbers assigned in add order.
	for i, tr := range got {
		if wantSeq := uint64(10 - i); tr.Seq != wantSeq {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, tr.Seq, wantSeq)
		}
		if wantUser := 9 - i; tr.UserID != wantUser {
			t.Fatalf("snapshot[%d].UserID = %d, want %d", i, tr.UserID, wantUser)
		}
	}
	if got := r.Snapshot(2); len(got) != 2 || got[0].Seq != 10 {
		t.Fatalf("capped snapshot %v", got)
	}
	// Degenerate sizes clamp to 1.
	if small := NewTraceRing(0); len(small.buf) != 1 {
		t.Fatal("ring size must clamp to ≥ 1")
	}
}

// TestTraceRingConcurrent runs under -race: N writers add traces while
// readers snapshot mid-write; every snapshot must be internally consistent
// (strictly descending Seq, no zero traces once full).
func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(64)
	const writers, perWriter = 8, 1000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Add(Trace{UserID: w, Spans: []Span{{Stage: StageQueue, DurMs: 1}}})
			}
		}(w)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot(0)
			for i := 1; i < len(snap); i++ {
				if snap[i].Seq >= snap[i-1].Seq {
					t.Errorf("snapshot not strictly descending: %d then %d", snap[i-1].Seq, snap[i].Seq)
					return
				}
			}
			r.Len()
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
	if r.Len() != 64 {
		t.Fatalf("ring len %d, want 64", r.Len())
	}
	if got := r.Snapshot(1)[0].Seq; got != writers*perWriter {
		t.Fatalf("last seq %d, want %d", got, writers*perWriter)
	}
}

// TestTraceBuilderConcurrentSpans runs under -race: parallel fetch goroutines
// add nested spans while the batch loop finishes the trace.
func TestTraceBuilderConcurrentSpans(t *testing.T) {
	start := time.Now()
	b := newTraceBuilder(start, RankRequest{UserID: 7, CandidateIDs: []int{1, 2, 3}})
	var wg sync.WaitGroup
	const spans = 50
	for i := 0; i < spans; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b.AddSpan(StageFetch, start, time.Millisecond,
				map[string]string{"worker": fmt.Sprint(i % 4)})
		}(i)
	}
	wg.Wait()
	tr := b.finish(start.Add(10*time.Millisecond), "ok", 3)
	if len(tr.Spans) != spans {
		t.Fatalf("spans %d, want %d", len(tr.Spans), spans)
	}
	if tr.TotalMs != 10 {
		t.Fatalf("total %g ms, want 10", tr.TotalMs)
	}
	if tr.Outcome != "ok" || tr.BatchSize != 3 || tr.UserID != 7 || tr.Candidates != 3 {
		t.Fatalf("trace header %+v", tr)
	}
	// finish returns a deep copy: later mutation must not alias.
	b.AddSpan(StageCommit, start, time.Millisecond, nil)
	if len(tr.Spans) != spans {
		t.Fatal("finish did not copy spans")
	}
	// nil builder is a no-op (untraced direct backend calls).
	var nilB *TraceBuilder
	nilB.AddSpan(StageFetch, start, 0, nil)
}

func TestTraceContextPlumbing(t *testing.T) {
	if TraceFromContext(context.Background()) != nil {
		t.Fatal("background context must carry no trace")
	}
	b := newTraceBuilder(time.Now(), RankRequest{})
	ctx := withTrace(context.Background(), b)
	if TraceFromContext(ctx) != b {
		t.Fatal("trace did not round-trip through the context")
	}
}

func TestObserverStageQuantile(t *testing.T) {
	o := newObserver(8)
	o.observeStage(StagePlan, 20*time.Millisecond)
	o.observeStage(StagePlan, 40*time.Millisecond)
	got := o.StageQuantile(StagePlan, 1)
	if got < 0.035 || got > 0.045 {
		t.Fatalf("plan max %g, want ≈0.04", got)
	}
	if o.StageQuantile("no-such-stage", 0.5) != 0 {
		t.Fatal("unknown stage must report 0")
	}
	o.e2e.Add(0.5)
	if v := o.StageQuantile(StageE2E, 1); v < 0.4 {
		t.Fatalf("e2e quantile %g", v)
	}
}
