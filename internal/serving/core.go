package serving

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bat/internal/admission"
	"bat/internal/bipartite"
	"bat/internal/metrics"
	"bat/internal/ranking"
	"bat/internal/tensor"
)

// ErrClosed reports a rank call against a core that has been Closed.
var ErrClosed = errors.New("serving: core closed")

// Serving modes the overload ladder decides between.
const (
	ModeFull     = "full"
	ModeDegraded = "degraded"
	ModeShed     = "shed"
)

// Batch-window policies (Config.WindowPolicy).
const (
	WindowAdaptive = "adaptive"
	WindowFixed    = "fixed"
)

// Adaptive-window tuning: with at least minGapSamples observed inter-arrival
// gaps, the batcher waits per missing slot only gapWaitFactor × the EWMA gap
// (floored at minAdaptiveWait to survive scheduler jitter) instead of the
// full window — so when the queue drains and arrivals are sparse, the batch
// closes as soon as the next arrival is statistically overdue.
const (
	minGapSamples   = 4
	gapWaitFactor   = 4
	minAdaptiveWait = 50 * time.Microsecond
	gapEWMAAlpha    = 0.2 // weight of the newest inter-arrival sample
	// idleExecFraction caps any single adaptive wait at this fraction of the
	// observed mean execute stage: idle spent forming a batch is pure loss,
	// so it must stay small against the compute it hopes to amortize. (The
	// inter-arrival EWMA alone can overshoot — batch-boundary gaps pollute
	// it when clients are fewer than MaxBatch.)
	idleExecFraction = 0.25
)

// Plan is a backend's per-request scheduling outcome: the resolved prefix
// kind and whatever caches the backend could supply for it. Plan calls for
// the requests of one batch run concurrently, so they must only read
// snapshot state; mutations belong in Commit.
type Plan struct {
	// Kind is the prefix organization serving the request (already resolved:
	// a Recompute decision maps to UserPrefix with no caches).
	Kind bipartite.PrefixKind
	// Recompute suppresses cache admission at commit (the scheduler decided
	// reuse wasn't worth it).
	Recompute bool
	// AdmitUser gates admitting a freshly computed user cache.
	AdmitUser bool
	// Caches feeds the bipartite execution; missing entries are recomputed.
	Caches bipartite.CacheSet
	// Aux carries backend-private state from Plan to Commit (e.g. timing).
	Aux any
}

// CommitEntry hands one successfully executed request back to the backend.
type CommitEntry struct {
	Ctx  context.Context
	Req  RankRequest
	Plan *Plan
	Run  *bipartite.Run
}

// Backend is the plane-specific half of the lifecycle: where caches come
// from and where freshly computed ones go. Plan is called concurrently for
// the requests of a batch; Commit is called serially, once per batch, at the
// batch boundary — the only point where the cache pool may change.
type Backend interface {
	Plan(ctx context.Context, req RankRequest) (*Plan, error)
	Commit(entries []CommitEntry)
}

// Prefetcher is an optional Backend extension. When implemented, the core
// calls Prefetch at enqueue time — before the request sits out its queue and
// batch-window residency — so the backend can start cache fetches (network
// round trips on the disaggregated plane) that overlap with the batch-forming
// wait and the previous batch's compute instead of serializing inside Plan.
// The returned handle rides the request to the plan phase and is recoverable
// there via PrefetchHandle; Plan decides whether to await it. Prefetch must
// not block and must only read snapshot state.
type Prefetcher interface {
	Prefetch(ctx context.Context, req RankRequest) any
}

// prefetchKey carries a Prefetcher's handle through the context given to
// Backend.Plan.
type prefetchKey struct{}

// PrefetchHandle returns the handle the backend's Prefetch produced for this
// request, or nil when none was started (backend is not a Prefetcher, or the
// request bypassed the batch loop).
func PrefetchHandle(ctx context.Context) any {
	return ctx.Value(prefetchKey{})
}

// Config assembles a serving core.
type Config struct {
	Dataset   *ranking.Dataset
	Ranker    *ranking.Ranker
	Retriever *ranking.Retriever
	// TopK is the returned ranking length (default 10).
	TopK int
	// MultiDisc serves with the §4.2 multi-discriminant extension. Multi-disc
	// requests execute per-request inside the batch cycle (their scoring path
	// is not packable yet) but share the lifecycle and commit rule.
	MultiDisc bool
	// DegradedMaxCandidates caps the candidate set served in degraded mode
	// (default 16).
	DegradedMaxCandidates int
	// Admission tunes the overload ladder. Zero value = defaults.
	Admission admission.Config
	// BatchWindow bounds how long the batcher waits for more requests after
	// the first arrival before executing (default 2ms; negative = don't wait,
	// just drain whatever is already queued).
	BatchWindow time.Duration
	// WindowPolicy selects how the window inside that bound behaves:
	// WindowAdaptive (default) closes early when the observed arrival rate
	// says no further request is likely to show up in time — a lone request
	// never eats the full window; WindowFixed always waits out BatchWindow
	// (the pre-adaptive behavior, used by timing-sensitive tests).
	WindowPolicy string
	// MaxBatch caps requests packed into one batched forward (default 8;
	// 1 = serialized execution).
	MaxBatch int
	// Ladder, when non-nil, adds plane-specific rungs to the overload ladder
	// (e.g. pool health, deadline cost estimates). It runs after the shared
	// queue-pressure check and returns a Mode* constant plus a reason.
	Ladder func(ctx context.Context, req RankRequest) (mode, reason string)
	// BatchHook, when non-nil, runs on the batcher goroutine with the batch
	// size right before each batch executes. Tests use it to stall or observe
	// batch formation.
	BatchHook func(size int)
	// TraceRing sizes the ring of retained request traces served at
	// /debug/trace (default 128).
	TraceRing int
}

type outcome struct {
	resp *RankResponse
	err  error
}

type pending struct {
	ctx  context.Context
	req  RankRequest
	done chan outcome

	// tb accumulates the request's stage spans; enq/deq are the queue
	// residency checkpoints (enqueue and batcher pickup).
	tb  *TraceBuilder
	enq time.Time
	deq time.Time
	// prefetch is the backend's in-flight fetch handle (Prefetcher backends
	// only), handed to Plan via its context.
	prefetch any
}

// Core runs the shared request lifecycle for one serving plane.
type Core struct {
	cfg     Config
	backend Backend
	adm     *admission.Controller
	obs     *Observer

	queue    chan *pending
	stop     chan struct{}
	stopOnce sync.Once

	// windowTimer is the batch loop's reused window timer. Owned exclusively
	// by the loop goroutine; always left stopped-and-drained between windows
	// so a stale expiry can never fire into a later window.
	windowTimer *time.Timer

	// windowClose counts window closes by cause (full batch, window timeout,
	// adaptive idle close, drain-only pass, shutdown).
	windowClose map[string]*metrics.Counter

	// Arrival-rate state behind the adaptive window: an EWMA of enqueue
	// inter-arrival gaps. Written by RankCtx callers, read by the batch loop.
	arrMu       sync.Mutex
	lastArrival time.Time
	ewmaGap     time.Duration
	gapSamples  int

	// inflight counts requests between enqueue and response delivery. The
	// adaptive window uses it as a causal arrival signal: when it exceeds the
	// forming batch's size, requests beyond this batch are already live and
	// will enqueue as soon as their goroutines get scheduled, so a drained
	// queue is a scheduling artifact rather than a real lull.
	inflight atomic.Int64

	mu                           sync.Mutex
	requests                     int64
	userPrefix, itemPrefix       int64
	reusedTokens, computedTokens int64
	dedupedTokens                int64
	degraded, deadlineAborts     int64
	batches, batchedRequests     int64
	maxBatch                     int64
}

// NewCore builds a core and starts its batch-forming loop.
func NewCore(cfg Config, backend Backend) (*Core, error) {
	if cfg.Dataset == nil || cfg.Ranker == nil || cfg.Retriever == nil {
		return nil, fmt.Errorf("serving: core needs a dataset, ranker, and retriever")
	}
	if backend == nil {
		return nil, fmt.Errorf("serving: nil backend")
	}
	if cfg.TopK == 0 {
		cfg.TopK = 10
	}
	if cfg.DegradedMaxCandidates <= 0 {
		cfg.DegradedMaxCandidates = 16
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8
	}
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = 2 * time.Millisecond
	}
	if cfg.WindowPolicy == "" {
		cfg.WindowPolicy = WindowAdaptive
	}
	if cfg.WindowPolicy != WindowAdaptive && cfg.WindowPolicy != WindowFixed {
		return nil, fmt.Errorf("serving: unknown window policy %q", cfg.WindowPolicy)
	}
	if cfg.TraceRing <= 0 {
		cfg.TraceRing = 128
	}
	adm := admission.NewController(cfg.Admission)
	// The intake queue must cover everything admission can let through at
	// once (in-flight slots plus its wait queue): if it were smaller,
	// admitted requests would block silently in the channel send instead of
	// being shed 429 at the front door. The 4×MaxBatch floor keeps direct
	// RankCtx callers (no admission trip) batching well.
	queueCap := 4 * cfg.MaxBatch
	if depth := adm.Config().MaxInFlight + adm.Config().MaxQueue; depth > queueCap {
		queueCap = depth
	}
	c := &Core{
		cfg:     cfg,
		backend: backend,
		adm:     adm,
		obs:     newObserver(cfg.TraceRing),
		queue:   make(chan *pending, queueCap),
		stop:    make(chan struct{}),
	}
	c.windowTimer = time.NewTimer(time.Hour)
	if !c.windowTimer.Stop() {
		<-c.windowTimer.C
	}
	c.windowClose = make(map[string]*metrics.Counter)
	for _, reason := range []string{"full", "timeout", "idle", "drain", "stop"} {
		c.windowClose[reason] = c.obs.reg.Counter(`bat_window_close_total{reason="` + reason + `"}`)
	}
	c.obs.reg.GaugeFunc("bat_arrival_ewma_gap_seconds", func() float64 {
		c.arrMu.Lock()
		defer c.arrMu.Unlock()
		return c.ewmaGap.Seconds()
	})
	go c.loop()
	return c, nil
}

// noteArrival folds one enqueue timestamp into the inter-arrival EWMA the
// adaptive window policy keys off.
func (c *Core) noteArrival(now time.Time) {
	c.arrMu.Lock()
	if !c.lastArrival.IsZero() {
		gap := now.Sub(c.lastArrival)
		if gap < 0 {
			gap = 0
		}
		if c.gapSamples == 0 {
			c.ewmaGap = gap
		} else {
			c.ewmaGap = time.Duration((1-gapEWMAAlpha)*float64(c.ewmaGap) + gapEWMAAlpha*float64(gap))
		}
		c.gapSamples++
	}
	c.lastArrival = now
	c.arrMu.Unlock()
}

// arrivalOutlook returns the adaptive window's two ingredients: exp, how
// long until the next arrival is statistically overdue (gapWaitFactor × the
// EWMA gap), and budget, the most idle a wait is allowed to burn (a fraction
// of the observed execute-stage mean — idling longer than the compute it
// amortizes against can never pay for itself). ok is false until enough
// samples exist to trust the estimate; budget falls back to the full window
// while the execute histogram is still empty.
func (c *Core) arrivalOutlook() (exp, budget time.Duration, ok bool) {
	c.arrMu.Lock()
	defer c.arrMu.Unlock()
	if c.gapSamples < minGapSamples {
		return 0, 0, false
	}
	exp = gapWaitFactor * c.ewmaGap
	if exp < minAdaptiveWait {
		exp = minAdaptiveWait
	}
	budget = c.cfg.BatchWindow
	if mean := c.obs.StageMean(StageExecute); mean > 0 {
		if b := time.Duration(idleExecFraction * mean * float64(time.Second)); b < budget {
			budget = b
		}
	}
	if budget < minAdaptiveWait {
		budget = minAdaptiveWait
	}
	return exp, budget, true
}

// Close stops the batch loop; queued requests fail with ErrClosed.
func (c *Core) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
}

// Admission exposes the overload ladder's front door.
func (c *Core) Admission() *admission.Controller { return c.adm }

// InFlight reports requests currently between admission and response — the
// live load gauge the routing tier's /v1/load snapshot exports.
func (c *Core) InFlight() int { return int(c.inflight.Load()) }

// Observer exposes the core's observability state: the metric registry and
// the trace ring. Planes register their own metrics into its registry.
func (c *Core) Observer() *Observer { return c.obs }

// loop is the batch-forming loop: the first arrival opens a window
// (cfg.BatchWindow) during which up to cfg.MaxBatch requests coalesce into
// one batch; the batch then executes as a single packed bipartite forward.
func (c *Core) loop() {
	for {
		select {
		case <-c.stop:
			c.drainClosed()
			return
		case p := <-c.queue:
			p.deq = time.Now()
			batch := c.collect(p)
			c.serveBatch(batch)
		}
	}
}

// collect forms one batch starting from its first request. Work already
// queued is always taken immediately; only when the queue is empty does the
// window wait, and under the adaptive policy that wait is bounded by the
// observed arrival rate, so a lone request during a lull never sits out the
// full BatchWindow.
func (c *Core) collect(first *pending) []*pending {
	batch := []*pending{first}
	if c.cfg.MaxBatch <= 1 {
		return batch
	}
	// Drain whatever is already waiting — never idle while work is ready.
	for len(batch) < c.cfg.MaxBatch {
		select {
		case p := <-c.queue:
			p.deq = time.Now()
			batch = append(batch, p)
			continue
		default:
		}
		break
	}
	if len(batch) == c.cfg.MaxBatch {
		c.windowClose["full"].Inc()
		return batch
	}
	if c.cfg.BatchWindow < 0 {
		c.windowClose["drain"].Inc()
		return batch
	}

	deadline := time.Now().Add(c.cfg.BatchWindow)
	adaptive := c.cfg.WindowPolicy == WindowAdaptive
	// disarm restores the reused timer to stopped-and-drained. Called on
	// every exit from a wait (fired or not): a timer left armed — or fired
	// with its channel undrained — would leak its expiry into a later
	// window and close it at the wrong time.
	disarm := func(fired bool) {
		if fired {
			return // the receive already drained the channel
		}
		if !c.windowTimer.Stop() {
			select {
			case <-c.windowTimer.C:
			default:
			}
		}
	}
	for len(batch) < c.cfg.MaxBatch {
		wait := time.Until(deadline)
		if wait <= 0 {
			c.windowClose["timeout"].Inc()
			return batch
		}
		reason := "timeout"
		if adaptive {
			exp, budget, ok := c.arrivalOutlook()
			if int(c.inflight.Load()) > len(batch) {
				// Live requests beyond this batch exist: their clients are
				// between enqueue and response and will reach the queue as
				// soon as they get scheduled. Give each up to the expected
				// gap — the wait is scheduling latency, not a real lull.
				if ok && exp < wait {
					wait, reason = exp, "idle"
				}
			} else if ok {
				if exp > budget {
					// The queue is drained, nobody else is live, and the next
					// arrival is expected later than idling can pay for —
					// close now instead of burning compute time waiting.
					c.windowClose["idle"].Inc()
					return batch
				}
				if exp < wait {
					// A new arrival is imminent: wait just long enough for
					// one; if it fails to show in gapWaitFactor× the typical
					// gap, the lull is real.
					wait, reason = exp, "idle"
				}
			}
		}
		c.windowTimer.Reset(wait)
		select {
		case p := <-c.queue:
			disarm(false)
			p.deq = time.Now()
			batch = append(batch, p)
		case <-c.windowTimer.C:
			disarm(true)
			c.windowClose[reason].Inc()
			return batch
		case <-c.stop:
			disarm(false)
			c.windowClose["stop"].Inc()
			return batch
		}
	}
	c.windowClose["full"].Inc()
	return batch
}

// drainClosed fails everything still queued after Close.
func (c *Core) drainClosed() {
	for {
		select {
		case p := <-c.queue:
			p.done <- outcome{err: ErrClosed}
		default:
			return
		}
	}
}

// serveBatch runs one batch through plan → execute → commit → respond.
// Plans run concurrently (snapshot reads only); execution is one packed
// bipartite forward; the commit applies every cache admission/eviction
// serially at the batch boundary, before responses go out, so a caller that
// has its response also sees its caches admitted.
func (c *Core) serveBatch(batch []*pending) {
	if h := c.cfg.BatchHook; h != nil {
		h(len(batch))
	}
	tBatch := time.Now() // the window closes here; the plan phase begins
	n := len(batch)
	c.mu.Lock()
	c.batches++
	c.batchedRequests += int64(n)
	if int64(n) > c.maxBatch {
		c.maxBatch = int64(n)
	}
	c.mu.Unlock()

	plans := make([]*Plan, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, p := range batch {
		if err := p.ctx.Err(); err != nil {
			errs[i] = err
			continue
		}
		wg.Add(1)
		go func(i int, p *pending) {
			defer wg.Done()
			ctx := p.ctx
			if p.prefetch != nil {
				ctx = context.WithValue(ctx, prefetchKey{}, p.prefetch)
			}
			plans[i], errs[i] = c.backend.Plan(ctx, p.req)
		}(i, p)
	}
	wg.Wait()
	tPlanDone := time.Now()

	resps := make([]*RankResponse, n)
	// Per-request execute windows: the packed path shares one
	// [tPlanDone, tExecDone) phase; multi-disc requests execute serially, so
	// each gets its own window.
	execStart := make([]time.Time, n)
	execEnd := make([]time.Time, n)
	var entries []CommitEntry
	if c.cfg.MultiDisc {
		for i, p := range batch {
			if errs[i] != nil {
				continue
			}
			execStart[i] = time.Now()
			resps[i], errs[i] = c.serveMulti(p, plans[i], &entries)
			execEnd[i] = time.Now()
		}
	} else {
		items := make([]bipartite.BatchItem, 0, n)
		cancels := make([]func() error, 0, n)
		idx := make([]int, 0, n)
		for i, p := range batch {
			if errs[i] != nil {
				continue
			}
			layout, err := c.cfg.Ranker.BuildLayout(evalReq(p.req), plans[i].Kind, false)
			if err != nil {
				errs[i] = err
				continue
			}
			items = append(items, bipartite.BatchItem{Layout: layout, Caches: plans[i].Caches})
			cancels = append(cancels, p.ctx.Err)
			idx = append(idx, i)
		}
		runs, rerrs := bipartite.ExecuteBatchCancelable(c.cfg.Ranker.W, items, cancels)
		for j, i := range idx {
			if rerrs[j] != nil {
				errs[i] = rerrs[j]
				continue
			}
			p := batch[i]
			ranked := c.cfg.Ranker.ScoreDiscriminant(evalReq(p.req), runs[j].Discriminant)
			resps[i] = c.fullResponse(p.req, plans[i].Kind, runs[j], ranked)
			entries = append(entries, CommitEntry{Ctx: p.ctx, Req: p.req, Plan: plans[i], Run: runs[j]})
		}
		end := time.Now()
		for _, i := range idx {
			execStart[i], execEnd[i] = tPlanDone, end
		}
	}
	tCommit := time.Now()
	if len(entries) > 0 {
		c.backend.Commit(entries)
	}
	tCommitDone := time.Now()
	for i, p := range batch {
		if errs[i] != nil {
			if p.ctx.Err() != nil {
				c.mu.Lock()
				c.deadlineAborts++
				c.mu.Unlock()
				errs[i] = fmt.Errorf("serving: request canceled: %w", p.ctx.Err())
				c.recordTrace(p, tBatch, tPlanDone, execStart[i], execEnd[i], tCommit, tCommitDone, n, "canceled")
			} else {
				c.recordTrace(p, tBatch, tPlanDone, execStart[i], execEnd[i], tCommit, tCommitDone, n, "error")
			}
			p.done <- outcome{err: errs[i]}
			continue
		}
		c.recordTrace(p, tBatch, tPlanDone, execStart[i], execEnd[i], tCommit, tCommitDone, n, "ok")
		p.done <- outcome{resp: resps[i]}
	}
}

// recordTrace closes out one request's lifecycle spans (queue residency,
// batch-window residency, plan phase, execute window, commit), folds them
// into the per-stage histograms, and publishes the trace to the ring.
func (c *Core) recordTrace(p *pending, tBatch, tPlanDone, execStart, execEnd, commitStart, commitEnd time.Time, batchSize int, result string) {
	tb := p.tb
	if tb == nil {
		return
	}
	end := time.Now()
	if !p.deq.IsZero() {
		tb.AddSpan(StageQueue, p.enq, p.deq.Sub(p.enq), nil)
		tb.AddSpan(StageWindow, p.deq, tBatch.Sub(p.deq), nil)
	}
	tb.AddSpan(StagePlan, tBatch, tPlanDone.Sub(tBatch), nil)
	if !execStart.IsZero() {
		tb.AddSpan(StageExecute, execStart, execEnd.Sub(execStart), nil)
		tb.AddSpan(StageCommit, commitStart, commitEnd.Sub(commitStart), nil)
	}
	tr := tb.finish(end, result, batchSize)
	for _, s := range tr.Spans {
		if s.Stage == StageFetch {
			continue // observed at the fetch site; folding here would double-count
		}
		c.obs.observeStage(s.Stage, time.Duration(s.DurMs*float64(time.Millisecond)))
	}
	c.obs.e2e.Add(end.Sub(tr.Start).Seconds())
	c.obs.ring.Add(tr)
}

func evalReq(req RankRequest) ranking.EvalRequest {
	return ranking.EvalRequest{User: req.UserID, Candidates: req.CandidateIDs}
}

// serveMulti executes one multi-discriminant request within the batch cycle.
func (c *Core) serveMulti(p *pending, plan *Plan, entries *[]CommitEntry) (*RankResponse, error) {
	ranked, run, err := c.cfg.Ranker.RankMulti(evalReq(p.req), plan.Kind,
		ranking.RankOpts{Caches: plan.Caches, Ctx: p.ctx})
	if err != nil {
		return nil, err
	}
	*entries = append(*entries, CommitEntry{Ctx: p.ctx, Req: p.req, Plan: plan, Run: run})
	return c.fullResponse(p.req, plan.Kind, run, ranked), nil
}

// fullResponse folds one served request into the counters and builds its
// top-K reply.
func (c *Core) fullResponse(req RankRequest, kind bipartite.PrefixKind, run *bipartite.Run, ranked []int) *RankResponse {
	c.mu.Lock()
	c.requests++
	if kind == bipartite.UserPrefix {
		c.userPrefix++
	} else {
		c.itemPrefix++
	}
	c.reusedTokens += int64(run.ReusedTokens)
	c.computedTokens += int64(run.ComputedTokens)
	c.dedupedTokens += int64(run.DedupedTokens)
	c.mu.Unlock()
	k := c.cfg.TopK
	if k > len(ranked) {
		k = len(ranked)
	}
	top := make([]int, k)
	for i := 0; i < k; i++ {
		top[i] = req.CandidateIDs[ranked[i]]
	}
	return &RankResponse{
		Ranking:        top,
		Prefix:         kind.String(),
		ReusedTokens:   run.ReusedTokens,
		ComputedTokens: run.ComputedTokens,
	}
}

// Rank serves one request without a deadline.
func (c *Core) Rank(req RankRequest) (*RankResponse, error) {
	return c.RankCtx(context.Background(), req)
}

// RankCtx validates the request and runs it through the batch loop. The
// context is polled at batch phase boundaries, so an abandoned request stops
// burning compute at the next boundary instead of running to completion.
func (c *Core) RankCtx(ctx context.Context, req RankRequest) (*RankResponse, error) {
	if err := Validate(c.cfg.Dataset, req); err != nil {
		return nil, err
	}
	now := time.Now()
	// The trace starts at the admission front door when HandleRank measured
	// it, so the admit span is part of the recorded lifecycle; direct RankCtx
	// callers start at enqueue.
	start := now
	info, admitted := ctx.Value(admitKey{}).(admitInfo)
	if admitted {
		start = info.start
	}
	tb := newTraceBuilder(start, req)
	if admitted {
		tb.AddSpan(StageAdmit, info.start, info.waited, nil)
	}
	p := &pending{ctx: withTrace(ctx, tb), req: req, tb: tb, enq: now, done: make(chan outcome, 1)}
	if pf, ok := c.backend.(Prefetcher); ok {
		// Start the backend's cache fetches now, so network transfer hides
		// under queue/window residency and the previous batch's compute.
		p.prefetch = pf.Prefetch(p.ctx, req)
	}
	c.noteArrival(now)
	select {
	case c.queue <- p:
	case <-ctx.Done():
		return nil, fmt.Errorf("serving: request canceled: %w", ctx.Err())
	case <-c.stop:
		return nil, ErrClosed
	}
	c.inflight.Add(1)
	defer c.inflight.Add(-1)
	select {
	case out := <-p.done:
		return out.resp, out.err
	case <-c.stop:
		return nil, ErrClosed
	}
}

// RankDegraded serves the overload fallback: cap the candidate set and score
// by retrieval similarity — no transformer forward, no cache mutation, no
// trip through the batch loop.
func (c *Core) RankDegraded(req RankRequest, reason string) (*RankResponse, error) {
	if err := Validate(c.cfg.Dataset, req); err != nil {
		return nil, err
	}
	cands := req.CandidateIDs
	if len(cands) > c.cfg.DegradedMaxCandidates {
		cands = cands[:c.cfg.DegradedMaxCandidates]
	}
	scores := c.cfg.Retriever.ScoreCandidates(req.UserID, cands)
	order := tensor.TopK(scores, len(scores))
	k := c.cfg.TopK
	if k > len(order) {
		k = len(order)
	}
	top := make([]int, k)
	for i := 0; i < k; i++ {
		top[i] = cands[order[i]]
	}
	c.mu.Lock()
	c.requests++
	c.degraded++
	c.mu.Unlock()
	return &RankResponse{
		Ranking:       top,
		Prefix:        "degraded-retrieval",
		Degraded:      true,
		DegradeReason: reason,
	}, nil
}

// HandleRank is the shared POST /v1/rank handler: decode, validate, then the
// overload ladder — admit (bounded in-flight + wait queue), degrade
// (retrieval fallback under queue pressure or a backend-specific rung), or
// shed (429 + Retry-After). Admitted full serves go through the batch loop
// with the request context carrying the Deadline-Ms budget.
func (c *Core) HandleRank(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req RankRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.adm.Deadline(r))
	defer cancel()
	admitStart := time.Now()
	grant, err := c.adm.Acquire(ctx)
	if err != nil {
		reason := admission.ReasonQueueFull
		if errors.Is(err, admission.ErrDeadline) {
			reason = admission.ReasonDeadline
		}
		c.obs.reg.Counter(`bat_shed_total{reason="` + reason + `"}`).Inc()
		c.adm.Shed(w, reason)
		return
	}
	defer grant.Release()
	ctx = withAdmitInfo(ctx, admitStart, time.Since(admitStart))

	mode, reason := ModeFull, ""
	if c.adm.ShouldDegrade(grant.QueuedBehind) {
		mode, reason = ModeDegraded, "queue-pressure"
	} else if c.cfg.Ladder != nil {
		mode, reason = c.cfg.Ladder(ctx, req)
	}
	var resp *RankResponse
	switch mode {
	case ModeShed:
		c.adm.Shed(w, reason)
		return
	case ModeDegraded:
		resp, err = c.RankDegraded(req, reason)
	default:
		resp, err = c.RankCtx(ctx, req)
	}
	if err != nil {
		if errors.Is(err, ErrValidation) {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if ctx.Err() != nil {
			// The deadline expired mid-serve; tell the client to back off
			// rather than reporting a server fault.
			c.adm.Shed(w, admission.ReasonDeadline)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	WriteJSON(w, resp)
}

// WriteJSON writes a JSON reply (shared by both planes' handlers).
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Stats is the core's lifecycle counter snapshot.
type Stats struct {
	Requests       int64 `json:"requests"`
	UserPrefix     int64 `json:"user_prefix_requests"`
	ItemPrefix     int64 `json:"item_prefix_requests"`
	ReusedTokens   int64 `json:"reused_tokens"`
	ComputedTokens int64 `json:"computed_tokens"`
	// DedupedTokens counts prefix tokens whose forward was shared from an
	// identical in-batch miss instead of recomputed per request.
	DedupedTokens int64 `json:"deduped_tokens"`
	// DegradedRequests counts retrieval-fallback responses; DeadlineAborts
	// counts serves canceled mid-batch by an expired deadline or
	// disconnected client.
	DegradedRequests int64 `json:"degraded_requests"`
	DeadlineAborts   int64 `json:"deadline_aborts"`
	// Batches counts packed executions; BatchedRequests the requests they
	// carried (BatchedRequests/Batches is the mean batch size);
	// MaxBatchSize the largest batch formed.
	Batches         int64 `json:"batches"`
	BatchedRequests int64 `json:"batched_requests"`
	MaxBatchSize    int64 `json:"max_batch_size"`
	// Admission is the overload ladder's front door.
	Admission admission.Stats `json:"admission"`
}

// WriteMetrics renders the core's observability state in Prometheus
// plain-text exposition format: the registry (per-stage latency histograms,
// shed counters, any plane-registered metrics) followed by the lifecycle
// counter snapshot. Planes compose it with their own lines.
func (c *Core) WriteMetrics(w io.Writer) {
	c.obs.reg.WriteText(w)
	st := c.Stats()
	fmt.Fprintf(w, "bat_requests_total %d\n", st.Requests)
	fmt.Fprintf(w, "bat_user_prefix_requests_total %d\n", st.UserPrefix)
	fmt.Fprintf(w, "bat_item_prefix_requests_total %d\n", st.ItemPrefix)
	fmt.Fprintf(w, "bat_reused_tokens_total %d\n", st.ReusedTokens)
	fmt.Fprintf(w, "bat_computed_tokens_total %d\n", st.ComputedTokens)
	fmt.Fprintf(w, "bat_deduped_tokens_total %d\n", st.DedupedTokens)
	fmt.Fprintf(w, "bat_degraded_requests_total %d\n", st.DegradedRequests)
	fmt.Fprintf(w, "bat_deadline_aborts_total %d\n", st.DeadlineAborts)
	fmt.Fprintf(w, "bat_batches_total %d\n", st.Batches)
	fmt.Fprintf(w, "bat_batched_requests_total %d\n", st.BatchedRequests)
	fmt.Fprintf(w, "bat_max_batch_size %d\n", st.MaxBatchSize)
	fmt.Fprintf(w, "bat_admission_in_flight %d\n", st.Admission.InFlight)
	fmt.Fprintf(w, "bat_admission_queue_depth %d\n", st.Admission.QueueDepth)
	fmt.Fprintf(w, "bat_admission_admitted_total %d\n", st.Admission.Admitted)
	fmt.Fprintf(w, "bat_admission_queued_total %d\n", st.Admission.Queued)
	fmt.Fprintf(w, "bat_admission_shed_queue_full_total %d\n", st.Admission.ShedQueueFull)
	fmt.Fprintf(w, "bat_admission_shed_deadline_total %d\n", st.Admission.ShedDeadline)
}

// HandleMetrics serves GET /metrics (plain text, Prometheus exposition).
func (c *Core) HandleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.WriteMetrics(w)
}

// TraceResponse is the GET /debug/trace payload: the last-N request traces,
// newest first.
type TraceResponse struct {
	Traces []Trace `json:"traces"`
}

// HandleTraces serves GET /debug/trace. `?n=` caps the returned traces
// (default: everything retained by the ring).
func (c *Core) HandleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	max := 0
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			http.Error(w, "n must be a positive integer", http.StatusBadRequest)
			return
		}
		max = v
	}
	WriteJSON(w, TraceResponse{Traces: c.obs.ring.Snapshot(max)})
}

// Stats snapshots the core.
func (c *Core) Stats() Stats {
	c.mu.Lock()
	st := Stats{
		Requests: c.requests, UserPrefix: c.userPrefix, ItemPrefix: c.itemPrefix,
		ReusedTokens: c.reusedTokens, ComputedTokens: c.computedTokens,
		DedupedTokens:    c.dedupedTokens,
		DegradedRequests: c.degraded, DeadlineAborts: c.deadlineAborts,
		Batches: c.batches, BatchedRequests: c.batchedRequests, MaxBatchSize: c.maxBatch,
	}
	c.mu.Unlock()
	st.Admission = c.adm.Stats()
	return st
}
