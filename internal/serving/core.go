package serving

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"bat/internal/admission"
	"bat/internal/bipartite"
	"bat/internal/ranking"
	"bat/internal/tensor"
)

// ErrClosed reports a rank call against a core that has been Closed.
var ErrClosed = errors.New("serving: core closed")

// Serving modes the overload ladder decides between.
const (
	ModeFull     = "full"
	ModeDegraded = "degraded"
	ModeShed     = "shed"
)

// Plan is a backend's per-request scheduling outcome: the resolved prefix
// kind and whatever caches the backend could supply for it. Plan calls for
// the requests of one batch run concurrently, so they must only read
// snapshot state; mutations belong in Commit.
type Plan struct {
	// Kind is the prefix organization serving the request (already resolved:
	// a Recompute decision maps to UserPrefix with no caches).
	Kind bipartite.PrefixKind
	// Recompute suppresses cache admission at commit (the scheduler decided
	// reuse wasn't worth it).
	Recompute bool
	// AdmitUser gates admitting a freshly computed user cache.
	AdmitUser bool
	// Caches feeds the bipartite execution; missing entries are recomputed.
	Caches bipartite.CacheSet
	// Aux carries backend-private state from Plan to Commit (e.g. timing).
	Aux any
}

// CommitEntry hands one successfully executed request back to the backend.
type CommitEntry struct {
	Ctx  context.Context
	Req  RankRequest
	Plan *Plan
	Run  *bipartite.Run
}

// Backend is the plane-specific half of the lifecycle: where caches come
// from and where freshly computed ones go. Plan is called concurrently for
// the requests of a batch; Commit is called serially, once per batch, at the
// batch boundary — the only point where the cache pool may change.
type Backend interface {
	Plan(ctx context.Context, req RankRequest) (*Plan, error)
	Commit(entries []CommitEntry)
}

// Config assembles a serving core.
type Config struct {
	Dataset   *ranking.Dataset
	Ranker    *ranking.Ranker
	Retriever *ranking.Retriever
	// TopK is the returned ranking length (default 10).
	TopK int
	// MultiDisc serves with the §4.2 multi-discriminant extension. Multi-disc
	// requests execute per-request inside the batch cycle (their scoring path
	// is not packable yet) but share the lifecycle and commit rule.
	MultiDisc bool
	// DegradedMaxCandidates caps the candidate set served in degraded mode
	// (default 16).
	DegradedMaxCandidates int
	// Admission tunes the overload ladder. Zero value = defaults.
	Admission admission.Config
	// BatchWindow is how long the batcher waits for more requests after the
	// first arrival before executing (default 2ms; negative = don't wait,
	// just drain whatever is already queued).
	BatchWindow time.Duration
	// MaxBatch caps requests packed into one batched forward (default 8;
	// 1 = serialized execution).
	MaxBatch int
	// Ladder, when non-nil, adds plane-specific rungs to the overload ladder
	// (e.g. pool health, deadline cost estimates). It runs after the shared
	// queue-pressure check and returns a Mode* constant plus a reason.
	Ladder func(ctx context.Context, req RankRequest) (mode, reason string)
	// BatchHook, when non-nil, runs on the batcher goroutine with the batch
	// size right before each batch executes. Tests use it to stall or observe
	// batch formation.
	BatchHook func(size int)
}

type outcome struct {
	resp *RankResponse
	err  error
}

type pending struct {
	ctx  context.Context
	req  RankRequest
	done chan outcome
}

// Core runs the shared request lifecycle for one serving plane.
type Core struct {
	cfg     Config
	backend Backend
	adm     *admission.Controller

	queue    chan *pending
	stop     chan struct{}
	stopOnce sync.Once

	mu                           sync.Mutex
	requests                     int64
	userPrefix, itemPrefix       int64
	reusedTokens, computedTokens int64
	degraded, deadlineAborts     int64
	batches, batchedRequests     int64
	maxBatch                     int64
}

// NewCore builds a core and starts its batch-forming loop.
func NewCore(cfg Config, backend Backend) (*Core, error) {
	if cfg.Dataset == nil || cfg.Ranker == nil || cfg.Retriever == nil {
		return nil, fmt.Errorf("serving: core needs a dataset, ranker, and retriever")
	}
	if backend == nil {
		return nil, fmt.Errorf("serving: nil backend")
	}
	if cfg.TopK == 0 {
		cfg.TopK = 10
	}
	if cfg.DegradedMaxCandidates <= 0 {
		cfg.DegradedMaxCandidates = 16
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8
	}
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = 2 * time.Millisecond
	}
	c := &Core{
		cfg:     cfg,
		backend: backend,
		adm:     admission.NewController(cfg.Admission),
		queue:   make(chan *pending, 4*cfg.MaxBatch),
		stop:    make(chan struct{}),
	}
	go c.loop()
	return c, nil
}

// Close stops the batch loop; queued requests fail with ErrClosed.
func (c *Core) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
}

// Admission exposes the overload ladder's front door.
func (c *Core) Admission() *admission.Controller { return c.adm }

// loop is the batch-forming loop: the first arrival opens a window
// (cfg.BatchWindow) during which up to cfg.MaxBatch requests coalesce into
// one batch; the batch then executes as a single packed bipartite forward.
func (c *Core) loop() {
	for {
		select {
		case <-c.stop:
			c.drainClosed()
			return
		case p := <-c.queue:
			batch := c.collect(p)
			c.serveBatch(batch)
		}
	}
}

// collect forms one batch starting from its first request.
func (c *Core) collect(first *pending) []*pending {
	batch := []*pending{first}
	if c.cfg.MaxBatch <= 1 {
		return batch
	}
	if c.cfg.BatchWindow < 0 {
		for len(batch) < c.cfg.MaxBatch {
			select {
			case p := <-c.queue:
				batch = append(batch, p)
			default:
				return batch
			}
		}
		return batch
	}
	timer := time.NewTimer(c.cfg.BatchWindow)
	defer timer.Stop()
	for len(batch) < c.cfg.MaxBatch {
		select {
		case p := <-c.queue:
			batch = append(batch, p)
		case <-timer.C:
			return batch
		case <-c.stop:
			return batch
		}
	}
	return batch
}

// drainClosed fails everything still queued after Close.
func (c *Core) drainClosed() {
	for {
		select {
		case p := <-c.queue:
			p.done <- outcome{err: ErrClosed}
		default:
			return
		}
	}
}

// serveBatch runs one batch through plan → execute → commit → respond.
// Plans run concurrently (snapshot reads only); execution is one packed
// bipartite forward; the commit applies every cache admission/eviction
// serially at the batch boundary, before responses go out, so a caller that
// has its response also sees its caches admitted.
func (c *Core) serveBatch(batch []*pending) {
	if h := c.cfg.BatchHook; h != nil {
		h(len(batch))
	}
	n := len(batch)
	c.mu.Lock()
	c.batches++
	c.batchedRequests += int64(n)
	if int64(n) > c.maxBatch {
		c.maxBatch = int64(n)
	}
	c.mu.Unlock()

	plans := make([]*Plan, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, p := range batch {
		if err := p.ctx.Err(); err != nil {
			errs[i] = err
			continue
		}
		wg.Add(1)
		go func(i int, p *pending) {
			defer wg.Done()
			plans[i], errs[i] = c.backend.Plan(p.ctx, p.req)
		}(i, p)
	}
	wg.Wait()

	resps := make([]*RankResponse, n)
	var entries []CommitEntry
	if c.cfg.MultiDisc {
		for i, p := range batch {
			if errs[i] != nil {
				continue
			}
			resps[i], errs[i] = c.serveMulti(p, plans[i], &entries)
		}
	} else {
		items := make([]bipartite.BatchItem, 0, n)
		cancels := make([]func() error, 0, n)
		idx := make([]int, 0, n)
		for i, p := range batch {
			if errs[i] != nil {
				continue
			}
			layout, err := c.cfg.Ranker.BuildLayout(evalReq(p.req), plans[i].Kind, false)
			if err != nil {
				errs[i] = err
				continue
			}
			items = append(items, bipartite.BatchItem{Layout: layout, Caches: plans[i].Caches})
			cancels = append(cancels, p.ctx.Err)
			idx = append(idx, i)
		}
		runs, rerrs := bipartite.ExecuteBatchCancelable(c.cfg.Ranker.W, items, cancels)
		for j, i := range idx {
			if rerrs[j] != nil {
				errs[i] = rerrs[j]
				continue
			}
			p := batch[i]
			ranked := c.cfg.Ranker.ScoreDiscriminant(evalReq(p.req), runs[j].Discriminant)
			resps[i] = c.fullResponse(p.req, plans[i].Kind, runs[j], ranked)
			entries = append(entries, CommitEntry{Ctx: p.ctx, Req: p.req, Plan: plans[i], Run: runs[j]})
		}
	}
	if len(entries) > 0 {
		c.backend.Commit(entries)
	}
	for i, p := range batch {
		if errs[i] != nil {
			if p.ctx.Err() != nil {
				c.mu.Lock()
				c.deadlineAborts++
				c.mu.Unlock()
				errs[i] = fmt.Errorf("serving: request canceled: %w", p.ctx.Err())
			}
			p.done <- outcome{err: errs[i]}
			continue
		}
		p.done <- outcome{resp: resps[i]}
	}
}

func evalReq(req RankRequest) ranking.EvalRequest {
	return ranking.EvalRequest{User: req.UserID, Candidates: req.CandidateIDs}
}

// serveMulti executes one multi-discriminant request within the batch cycle.
func (c *Core) serveMulti(p *pending, plan *Plan, entries *[]CommitEntry) (*RankResponse, error) {
	ranked, run, err := c.cfg.Ranker.RankMulti(evalReq(p.req), plan.Kind,
		ranking.RankOpts{Caches: plan.Caches, Ctx: p.ctx})
	if err != nil {
		return nil, err
	}
	*entries = append(*entries, CommitEntry{Ctx: p.ctx, Req: p.req, Plan: plan, Run: run})
	return c.fullResponse(p.req, plan.Kind, run, ranked), nil
}

// fullResponse folds one served request into the counters and builds its
// top-K reply.
func (c *Core) fullResponse(req RankRequest, kind bipartite.PrefixKind, run *bipartite.Run, ranked []int) *RankResponse {
	c.mu.Lock()
	c.requests++
	if kind == bipartite.UserPrefix {
		c.userPrefix++
	} else {
		c.itemPrefix++
	}
	c.reusedTokens += int64(run.ReusedTokens)
	c.computedTokens += int64(run.ComputedTokens)
	c.mu.Unlock()
	k := c.cfg.TopK
	if k > len(ranked) {
		k = len(ranked)
	}
	top := make([]int, k)
	for i := 0; i < k; i++ {
		top[i] = req.CandidateIDs[ranked[i]]
	}
	return &RankResponse{
		Ranking:        top,
		Prefix:         kind.String(),
		ReusedTokens:   run.ReusedTokens,
		ComputedTokens: run.ComputedTokens,
	}
}

// Rank serves one request without a deadline.
func (c *Core) Rank(req RankRequest) (*RankResponse, error) {
	return c.RankCtx(context.Background(), req)
}

// RankCtx validates the request and runs it through the batch loop. The
// context is polled at batch phase boundaries, so an abandoned request stops
// burning compute at the next boundary instead of running to completion.
func (c *Core) RankCtx(ctx context.Context, req RankRequest) (*RankResponse, error) {
	if err := Validate(c.cfg.Dataset, req); err != nil {
		return nil, err
	}
	p := &pending{ctx: ctx, req: req, done: make(chan outcome, 1)}
	select {
	case c.queue <- p:
	case <-ctx.Done():
		return nil, fmt.Errorf("serving: request canceled: %w", ctx.Err())
	case <-c.stop:
		return nil, ErrClosed
	}
	select {
	case out := <-p.done:
		return out.resp, out.err
	case <-c.stop:
		return nil, ErrClosed
	}
}

// RankDegraded serves the overload fallback: cap the candidate set and score
// by retrieval similarity — no transformer forward, no cache mutation, no
// trip through the batch loop.
func (c *Core) RankDegraded(req RankRequest, reason string) (*RankResponse, error) {
	if err := Validate(c.cfg.Dataset, req); err != nil {
		return nil, err
	}
	cands := req.CandidateIDs
	if len(cands) > c.cfg.DegradedMaxCandidates {
		cands = cands[:c.cfg.DegradedMaxCandidates]
	}
	scores := c.cfg.Retriever.ScoreCandidates(req.UserID, cands)
	order := tensor.TopK(scores, len(scores))
	k := c.cfg.TopK
	if k > len(order) {
		k = len(order)
	}
	top := make([]int, k)
	for i := 0; i < k; i++ {
		top[i] = cands[order[i]]
	}
	c.mu.Lock()
	c.requests++
	c.degraded++
	c.mu.Unlock()
	return &RankResponse{
		Ranking:       top,
		Prefix:        "degraded-retrieval",
		Degraded:      true,
		DegradeReason: reason,
	}, nil
}

// HandleRank is the shared POST /v1/rank handler: decode, validate, then the
// overload ladder — admit (bounded in-flight + wait queue), degrade
// (retrieval fallback under queue pressure or a backend-specific rung), or
// shed (429 + Retry-After). Admitted full serves go through the batch loop
// with the request context carrying the Deadline-Ms budget.
func (c *Core) HandleRank(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req RankRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.adm.Deadline(r))
	defer cancel()
	grant, err := c.adm.Acquire(ctx)
	if err != nil {
		reason := admission.ReasonQueueFull
		if errors.Is(err, admission.ErrDeadline) {
			reason = admission.ReasonDeadline
		}
		c.adm.Shed(w, reason)
		return
	}
	defer grant.Release()

	mode, reason := ModeFull, ""
	if c.adm.ShouldDegrade(grant.QueuedBehind) {
		mode, reason = ModeDegraded, "queue-pressure"
	} else if c.cfg.Ladder != nil {
		mode, reason = c.cfg.Ladder(ctx, req)
	}
	var resp *RankResponse
	switch mode {
	case ModeShed:
		c.adm.Shed(w, reason)
		return
	case ModeDegraded:
		resp, err = c.RankDegraded(req, reason)
	default:
		resp, err = c.RankCtx(ctx, req)
	}
	if err != nil {
		if errors.Is(err, ErrValidation) {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if ctx.Err() != nil {
			// The deadline expired mid-serve; tell the client to back off
			// rather than reporting a server fault.
			c.adm.Shed(w, admission.ReasonDeadline)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	WriteJSON(w, resp)
}

// WriteJSON writes a JSON reply (shared by both planes' handlers).
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Stats is the core's lifecycle counter snapshot.
type Stats struct {
	Requests       int64 `json:"requests"`
	UserPrefix     int64 `json:"user_prefix_requests"`
	ItemPrefix     int64 `json:"item_prefix_requests"`
	ReusedTokens   int64 `json:"reused_tokens"`
	ComputedTokens int64 `json:"computed_tokens"`
	// DegradedRequests counts retrieval-fallback responses; DeadlineAborts
	// counts serves canceled mid-batch by an expired deadline or
	// disconnected client.
	DegradedRequests int64 `json:"degraded_requests"`
	DeadlineAborts   int64 `json:"deadline_aborts"`
	// Batches counts packed executions; BatchedRequests the requests they
	// carried (BatchedRequests/Batches is the mean batch size);
	// MaxBatchSize the largest batch formed.
	Batches         int64 `json:"batches"`
	BatchedRequests int64 `json:"batched_requests"`
	MaxBatchSize    int64 `json:"max_batch_size"`
	// Admission is the overload ladder's front door.
	Admission admission.Stats `json:"admission"`
}

// Stats snapshots the core.
func (c *Core) Stats() Stats {
	c.mu.Lock()
	st := Stats{
		Requests: c.requests, UserPrefix: c.userPrefix, ItemPrefix: c.itemPrefix,
		ReusedTokens: c.reusedTokens, ComputedTokens: c.computedTokens,
		DegradedRequests: c.degraded, DeadlineAborts: c.deadlineAborts,
		Batches: c.batches, BatchedRequests: c.batchedRequests, MaxBatchSize: c.maxBatch,
	}
	c.mu.Unlock()
	st.Admission = c.adm.Stats()
	return st
}
