// Package serving is the shared serving core both planes (the single-process
// server and the disaggregated frontend) are thin adapters over. It owns the
// request lifecycle — validate → admit → schedule → batch → execute →
// respond — and runs a continuous-batching loop: concurrent rank requests
// arriving within a small window coalesce into one multi-request bipartite
// execution, packed into a single batched forward behind a block-diagonal
// cross-request mask. Cache reads stay lock-free behind whatever snapshot the
// backend provides at plan time; pool admissions and evictions apply serially
// at batch boundaries via Backend.Commit.
package serving

import (
	"errors"
	"fmt"

	"bat/internal/ranking"
)

// ErrValidation marks request errors the caller can fix (unknown IDs, empty
// candidate sets); everything else is an internal serving failure.
var ErrValidation = errors.New("invalid request")

// RankRequest is the /v1/rank payload, shared by both planes.
type RankRequest struct {
	UserID       int   `json:"user_id"`
	CandidateIDs []int `json:"candidate_ids"`
}

// RankResponse is the /v1/rank reply, shared by both planes.
type RankResponse struct {
	// Ranking lists the top-K candidate item IDs, best first.
	Ranking []int `json:"ranking"`
	// Prefix reports which attention pattern served the request.
	Prefix string `json:"prefix"`
	// ReusedTokens and ComputedTokens account this request's prefill work.
	ReusedTokens   int `json:"reused_tokens"`
	ComputedTokens int `json:"computed_tokens"`
	// Degraded marks a response served by the retrieval-similarity fallback
	// under overload; DegradeReason says why ("queue-pressure",
	// "pool-unhealthy", or "deadline").
	Degraded      bool   `json:"degraded,omitempty"`
	DegradeReason string `json:"degrade_reason,omitempty"`
}

// Validate rejects caller mistakes (unknown IDs, empty candidate sets) with
// errors wrapping ErrValidation; every serving path applies it.
func Validate(ds *ranking.Dataset, req RankRequest) error {
	if req.UserID < 0 || req.UserID >= len(ds.UserHistory) {
		return fmt.Errorf("serving: unknown user %d: %w", req.UserID, ErrValidation)
	}
	if len(req.CandidateIDs) == 0 {
		return fmt.Errorf("serving: empty candidate set: %w", ErrValidation)
	}
	for _, it := range req.CandidateIDs {
		if it < 0 || it >= len(ds.ItemTokens) {
			return fmt.Errorf("serving: unknown item %d: %w", it, ErrValidation)
		}
	}
	return nil
}
