package serving

import (
	"context"
	"sync"
	"time"

	"bat/internal/metrics"
)

// Stage names for the per-request lifecycle spans. Consecutive stages tile a
// request's wall clock: admit (overload-ladder wait) → queue (bounded queue
// residency) → window (batch-forming window residency) → plan (backend
// scheduling incl. distserve pool fetches, measured over the batch's plan
// phase) → execute (packed bipartite forward + scoring) → commit (serial
// cache admission at the batch boundary). StageFetch spans are nested detail
// inside plan (one per pool round trip on the disaggregated plane) and do not
// count toward the lifecycle sum.
const (
	StageAdmit   = "admit"
	StageQueue   = "queue"
	StageWindow  = "window"
	StagePlan    = "plan"
	StageExecute = "execute"
	StageCommit  = "commit"
	StageE2E     = "e2e"
	StageFetch   = "fetch"
	// StageStore measures write-behind cache stores, which run off the
	// request lifecycle (after the response went out) and therefore do not
	// count toward the lifecycle sum.
	StageStore = "store"
)

// LifecycleStages lists the stages whose spans tile a request's wall clock,
// in order. /metrics exports one latency histogram per entry (plus e2e).
var LifecycleStages = []string{StageAdmit, StageQueue, StageWindow, StagePlan, StageExecute, StageCommit}

// Span is one timed stage of a request's life.
type Span struct {
	Stage string `json:"stage"`
	// StartMs is the offset from the trace start; DurMs the span length.
	StartMs float64 `json:"start_ms"`
	DurMs   float64 `json:"dur_ms"`
	// Attrs carries plane-specific tags (worker id, fetch outcome, retries).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Trace is one request's recorded lifecycle.
type Trace struct {
	// Seq is a monotonically increasing request number (per core).
	Seq    uint64 `json:"seq"`
	UserID int    `json:"user_id"`
	// Candidates is the request's candidate-set size.
	Candidates int       `json:"candidates"`
	Start      time.Time `json:"start"`
	TotalMs    float64   `json:"total_ms"`
	// Outcome is "ok", "error", or "canceled"; BatchSize the packed batch the
	// request rode in.
	Outcome   string `json:"outcome"`
	BatchSize int    `json:"batch_size,omitempty"`
	Spans     []Span `json:"spans"`
}

// TraceBuilder accumulates one request's spans. Lifecycle spans are added by
// the core's batch loop; nested fetch spans may be added concurrently by the
// backend's plan phase, so every mutation is locked.
type TraceBuilder struct {
	mu    sync.Mutex
	start time.Time
	trace Trace
}

func newTraceBuilder(start time.Time, req RankRequest) *TraceBuilder {
	return &TraceBuilder{
		start: start,
		trace: Trace{UserID: req.UserID, Candidates: len(req.CandidateIDs), Start: start},
	}
}

// AddSpan records one span by absolute start time and duration. Safe for
// concurrent use (backends call it from parallel fetch goroutines).
func (b *TraceBuilder) AddSpan(stage string, start time.Time, d time.Duration, attrs map[string]string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.trace.Spans = append(b.trace.Spans, Span{
		Stage:   stage,
		StartMs: start.Sub(b.start).Seconds() * 1e3,
		DurMs:   d.Seconds() * 1e3,
		Attrs:   attrs,
	})
	b.mu.Unlock()
}

// finish stamps the trace's total and outcome and returns a copy.
func (b *TraceBuilder) finish(end time.Time, outcome string, batchSize int) Trace {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trace.TotalMs = end.Sub(b.start).Seconds() * 1e3
	b.trace.Outcome = outcome
	b.trace.BatchSize = batchSize
	t := b.trace
	t.Spans = append([]Span(nil), b.trace.Spans...)
	return t
}

// traceKey carries the request's TraceBuilder through the context handed to
// Backend.Plan, so plane-specific code can attach nested spans.
type traceKey struct{}

// TraceFromContext returns the request's trace builder, or nil when the call
// is not being traced (direct backend use outside the core).
func TraceFromContext(ctx context.Context) *TraceBuilder {
	b, _ := ctx.Value(traceKey{}).(*TraceBuilder)
	return b
}

func withTrace(ctx context.Context, b *TraceBuilder) context.Context {
	return context.WithValue(ctx, traceKey{}, b)
}

// admitKey carries the admission wait measured by HandleRank into RankCtx, so
// the trace starts at the ladder's front door rather than at enqueue.
type admitKey struct{}

type admitInfo struct {
	start  time.Time
	waited time.Duration
}

func withAdmitInfo(ctx context.Context, start time.Time, waited time.Duration) context.Context {
	return context.WithValue(ctx, admitKey{}, admitInfo{start: start, waited: waited})
}

// TraceRing is a fixed-size concurrent ring of the last N request traces.
type TraceRing struct {
	mu   sync.Mutex
	buf  []Trace
	next uint64 // total traces ever added; next%len(buf) is the write slot
}

// NewTraceRing builds a ring holding the last n traces (n ≥ 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{buf: make([]Trace, n)}
}

// Add records one trace, assigning its sequence number.
func (r *TraceRing) Add(t Trace) {
	r.mu.Lock()
	r.next++
	t.Seq = r.next
	r.buf[(r.next-1)%uint64(len(r.buf))] = t
	r.mu.Unlock()
}

// Snapshot returns up to max retained traces, newest first (max ≤ 0 = all).
func (r *TraceRing) Snapshot(max int) []Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := int(r.next)
	if n > len(r.buf) {
		n = len(r.buf)
	}
	if max > 0 && n > max {
		n = max
	}
	out := make([]Trace, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(r.next-1-uint64(i))%uint64(len(r.buf))])
	}
	return out
}

// Len returns how many traces are currently retained.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next > uint64(len(r.buf)) {
		return len(r.buf)
	}
	return int(r.next)
}

// Observer is the core's always-on observability state: a metrics registry
// (counters, gauges, per-stage bounded histograms) plus the trace ring. Both
// planes mount it at GET /metrics and GET /debug/trace.
type Observer struct {
	reg   *metrics.Registry
	ring  *TraceRing
	stage map[string]*metrics.Histogram
	e2e   *metrics.Histogram
}

func newObserver(ringSize int) *Observer {
	o := &Observer{
		reg:   metrics.NewRegistry(),
		ring:  NewTraceRing(ringSize),
		stage: make(map[string]*metrics.Histogram, len(LifecycleStages)),
	}
	for _, s := range append(append([]string(nil), LifecycleStages...), StageFetch, StageStore) {
		o.stage[s] = o.reg.LatencyHistogram(`bat_stage_latency_seconds{stage="` + s + `"}`)
	}
	o.e2e = o.reg.LatencyHistogram("bat_request_latency_seconds")
	return o
}

// Registry exposes the observer's metric registry so planes can register
// their own counters and scrape-time gauges alongside the core's.
func (o *Observer) Registry() *metrics.Registry { return o.reg }

// Ring exposes the trace ring (tests and /debug/trace).
func (o *Observer) Ring() *TraceRing { return o.ring }

// StageQuantile estimates one stage's latency quantile in seconds
// (StageE2E for end-to-end). Unknown stages return 0.
func (o *Observer) StageQuantile(stage string, q float64) float64 {
	if stage == StageE2E {
		return o.e2e.Quantile(q)
	}
	if h, ok := o.stage[stage]; ok {
		return h.Quantile(q)
	}
	return 0
}

// StageMean returns one stage's mean latency in seconds (StageE2E for
// end-to-end). Unknown stages return 0.
func (o *Observer) StageMean(stage string) float64 {
	if stage == StageE2E {
		return o.e2e.Mean()
	}
	if h, ok := o.stage[stage]; ok {
		return h.Mean()
	}
	return 0
}

// observeStage folds one span into its stage histogram (seconds).
func (o *Observer) observeStage(stage string, d time.Duration) {
	if h, ok := o.stage[stage]; ok {
		h.Add(d.Seconds())
	}
}

// ObserveStage folds an off-lifecycle span (e.g. StageStore, recorded by a
// backend's write-behind path) into its stage histogram.
func (o *Observer) ObserveStage(stage string, d time.Duration) { o.observeStage(stage, d) }
