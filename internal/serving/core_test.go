package serving

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bat/internal/admission"
	"bat/internal/bipartite"
	"bat/internal/ranking"
)

// stubBackend serves every request cold: no caches, no commit-side state.
// Core tests that exercise only the lifecycle machinery (windows, queueing,
// shedding) don't need a real cache pool behind Plan.
type stubBackend struct{}

func (stubBackend) Plan(ctx context.Context, req RankRequest) (*Plan, error) {
	return &Plan{Kind: bipartite.UserPrefix}, nil
}

func (stubBackend) Commit(entries []CommitEntry) {}

// newTestCore wires a small dataset/ranker/retriever under the given
// lifecycle config and starts a core over the stub backend.
func newTestCore(t *testing.T, cfg Config) *Core {
	t.Helper()
	ds, err := ranking.NewDataset(ranking.DatasetConfig{
		Name: "coretest", Items: 40, Users: 12, Clusters: 4, LatentDim: 8,
		HistoryMin: 4, HistoryMax: 8, ItemAttrTokens: 1,
		ClusterNoise: 0.15, Candidates: 6, HardNegatives: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := ranking.NewRanker(ds, ranking.VariantBase)
	if err != nil {
		t.Fatal(err)
	}
	retr, err := ranking.NewRetriever(ds, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Dataset, cfg.Ranker, cfg.Retriever = ds, r, retr
	c, err := NewCore(cfg, stubBackend{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func testReq(u int) RankRequest {
	return RankRequest{UserID: u, CandidateIDs: []int{1, 5, 9, 13, 17, 21}}
}

// TestFixedWindowTimerNotStale is the regression test for the batcher's
// reused window timer: a window that closes early (batch full) must leave the
// timer stopped AND drained. Before the fix, the armed timer from window 1
// kept running, fired mid-window-2, and closed window 2 at window 1's
// deadline — a lone request then got far less than its configured wait.
//
// Shape: window 1 arms the timer (request A waits alone), then B fills the
// batch and closes it early with most of the timer still pending. A lone
// request C opens window 2 inside window 1's original deadline; C must sit
// out its own full BatchWindow, not be cut short by a stale expiry.
func TestFixedWindowTimerNotStale(t *testing.T) {
	const window = 300 * time.Millisecond
	c := newTestCore(t, Config{
		WindowPolicy: WindowFixed,
		BatchWindow:  window,
		MaxBatch:     2,
	})

	var wg sync.WaitGroup
	wg.Add(2)
	start := time.Now()
	for i := 0; i < 2; i++ {
		go func(u int) {
			defer wg.Done()
			if u == 1 {
				// A opens the window alone and arms the timer; B arrives
				// 50ms in and fills the batch, disarming it un-fired.
				time.Sleep(50 * time.Millisecond)
			}
			if _, err := c.Rank(testReq(u)); err != nil {
				t.Errorf("seed request %d: %v", u, err)
			}
		}(i)
	}
	wg.Wait()
	if d := time.Since(start); d >= window {
		t.Fatalf("full batch should close well before the window, took %v", d)
	}

	// C arrives ~150ms after A — inside window 1's original 300ms deadline.
	// A stale timer fires at A+300ms = C+~150ms; the real close is C+300ms.
	time.Sleep(100 * time.Millisecond)
	lone := time.Now()
	if _, err := c.Rank(testReq(2)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(lone); d < window-50*time.Millisecond {
		t.Fatalf("lone fixed-window request served after %v; a stale timer fire from the previous window closed it early (want ~%v)", d, window)
	}
}

// TestAdaptiveWindowClosesOnDrain: under the adaptive policy a lone request
// during a lull must NOT sit out the full BatchWindow — once the arrival-gap
// EWMA is warm, the batcher closes as soon as the next arrival is overdue.
func TestAdaptiveWindowClosesOnDrain(t *testing.T) {
	const window = 500 * time.Millisecond
	c := newTestCore(t, Config{
		WindowPolicy: WindowAdaptive,
		BatchWindow:  window,
		MaxBatch:     8,
	})

	// Seed the EWMA (and the execute-stage histogram) with two concurrent
	// bursts: near-zero inter-arrival gaps, batches close full/fast.
	for burst := 0; burst < 2; burst++ {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(u int) {
				defer wg.Done()
				if _, err := c.Rank(testReq(u)); err != nil {
					t.Errorf("seed: %v", err)
				}
			}(i % 8)
		}
		wg.Wait()
	}

	start := time.Now()
	if _, err := c.Rank(testReq(3)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d >= window/2 {
		t.Fatalf("lone adaptive request took %v; the window should close on drain, not wait out the full %v", d, window)
	}
}

// TestQueueCapCoversAdmission: the intake queue is derived from the admission
// config — everything admission can let through at once must fit, or admitted
// requests would block silently in the channel send instead of being shed at
// the front door. Small admission configs keep the 4×MaxBatch batching floor.
func TestQueueCapCoversAdmission(t *testing.T) {
	big := newTestCore(t, Config{
		MaxBatch:  2,
		Admission: admission.Config{MaxInFlight: 32, MaxQueue: 64},
	})
	if got := cap(big.queue); got < 96 {
		t.Fatalf("queue cap %d does not cover admission depth 96 (MaxInFlight+MaxQueue)", got)
	}
	small := newTestCore(t, Config{
		MaxBatch:  8,
		Admission: admission.Config{MaxInFlight: 2, MaxQueue: 2},
	})
	if got := cap(small.queue); got != 32 {
		t.Fatalf("queue cap %d, want 4×MaxBatch = 32 floor for small admission configs", got)
	}
}

// TestShedAtSaturation: with the batcher stalled mid-batch, a flood beyond
// the admission depth must shed 429 at the front door promptly — requests
// over capacity never block in the intake queue.
func TestShedAtSaturation(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	c := newTestCore(t, Config{
		MaxBatch:  1,
		Admission: admission.Config{MaxInFlight: 2, MaxQueue: 2, DefaultDeadline: 10 * time.Second},
		BatchHook: func(size int) {
			// Stall only the first batch; later batches run normally so the
			// admitted requests can drain once the flood is counted.
			<-gate
		},
	})

	const flood = 12
	const depth = 4 // MaxInFlight + MaxQueue
	codes := make(chan int, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			body, _ := json.Marshal(testReq(u % 8))
			req := httptest.NewRequest(http.MethodPost, "/v1/rank", strings.NewReader(string(body)))
			rec := httptest.NewRecorder()
			c.HandleRank(rec, req)
			codes <- rec.Code
		}(i)
	}

	// The over-capacity portion must come back 429 while the batcher is still
	// stalled — that is the non-blocking-shed property under test.
	deadline := time.After(5 * time.Second)
	shed := 0
	for shed < flood-depth {
		select {
		case code := <-codes:
			if code != http.StatusTooManyRequests {
				t.Fatalf("got status %d while saturated; only 429 sheds should complete", code)
			}
			shed++
		case <-deadline:
			t.Fatalf("only %d of %d expected sheds completed while the batcher was stalled — over-capacity requests are blocking instead of shedding", shed, flood-depth)
		}
	}
	gateOnce.Do(func() { close(gate) })
	wg.Wait()
	close(codes)
	ok := 0
	for code := range codes {
		if code == http.StatusOK {
			ok++
		}
	}
	if ok != depth {
		t.Fatalf("%d requests served after release, want the full admission depth %d", ok, depth)
	}
	if st := c.Stats(); st.Admission.ShedQueueFull < int64(flood-depth) {
		t.Fatalf("admission counted %d queue-full sheds, want >= %d", st.Admission.ShedQueueFull, flood-depth)
	}
}

// TestCoreDedupIdenticalColdUsers: a batch of requests for the SAME cold user
// recomputes that user's prefix once; the rest of the batch shares it and the
// core accounts the saved tokens. Responses stay identical across the batch.
func TestCoreDedupIdenticalColdUsers(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	sized := make(chan int, 16)
	c := newTestCore(t, Config{
		MaxBatch:     4,
		WindowPolicy: WindowFixed,
		BatchWindow:  200 * time.Millisecond,
		BatchHook: func(size int) {
			sized <- size
			once.Do(func() { <-release })
		},
	})

	// Stall the loop on a throwaway request so the four identical ones are
	// all queued before any batch forms.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c.Rank(testReq(7)); err != nil {
			t.Errorf("stall request: %v", err)
		}
	}()
	<-sized // the stall batch is in the hook

	const n = 4
	resps := make([]*RankResponse, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.Rank(testReq(3)) // same user, same candidates
			if err != nil {
				t.Errorf("dedup request %d: %v", i, err)
				return
			}
			resps[i] = resp
		}(i)
	}
	// Wait until all four sit in the queue, then release the stall.
	for deadline := time.Now().Add(5 * time.Second); len(c.queue) < n; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d identical requests queued", len(c.queue), n)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if size := <-sized; size != n {
		t.Fatalf("identical requests formed a batch of %d, want %d", size, n)
	}
	for i := 1; i < n; i++ {
		if resps[i].ComputedTokens != resps[0].ComputedTokens ||
			len(resps[i].Ranking) != len(resps[0].Ranking) {
			t.Fatalf("response %d differs from response 0: %+v vs %+v", i, resps[i], resps[0])
		}
		for j := range resps[0].Ranking {
			if resps[i].Ranking[j] != resps[0].Ranking[j] {
				t.Fatalf("response %d ranking differs at %d", i, j)
			}
		}
	}
	st := c.Stats()
	if st.DedupedTokens == 0 {
		t.Fatal("identical in-batch misses recorded zero deduped tokens; the batch-level miss planner is not collapsing them")
	}
	if st.MaxBatchSize < int64(n) {
		t.Fatalf("max batch size %d, want >= %d", st.MaxBatchSize, n)
	}
}
