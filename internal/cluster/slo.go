package cluster

import (
	"fmt"

	"bat/internal/workload"
)

// FindSLORate binary-searches the highest offered rate (requests/second) at
// which a system's P99 latency stays within sloSec — the quantity Figure 9's
// "BAT sustains ~1.47× higher request rates" compares. Each probe replays
// the trace through a fresh simulator (cache state must not leak between
// offered loads), supplied by newSim.
func FindSLORate(newSim func() (*Sim, error), trace *workload.Trace, sloSec float64, iters int) (float64, error) {
	if sloSec <= 0 {
		return 0, fmt.Errorf("cluster: SLO must be positive")
	}
	if iters <= 0 {
		iters = 8
	}
	probe := func(rate float64) (bool, error) {
		sim, err := newSim()
		if err != nil {
			return false, err
		}
		st, err := sim.RunOpenLoop(trace, rate)
		if err != nil {
			return false, err
		}
		return st.Latency.P99() <= sloSec, nil
	}

	// Establish a bracket: double until the SLO breaks.
	lo, hi := 0.0, 1.0
	for i := 0; i < 30; i++ {
		ok, err := probe(hi)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		lo = hi
		hi *= 2
	}
	if lo == 0 {
		// Even 1 req/s violates the SLO: search below it.
		hi = 1
	}
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		ok, err := probe(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
