// Package cluster simulates a BAT serving cluster in virtual time: N nodes,
// each pairing an inference worker (GPU modeled by the cost model) with a KV
// cache worker (paged host-memory pool), joined by a network link, fed by a
// central scheduler consulting the cache meta service — the architecture of
// Figure 3.
//
// The simulation is trace-driven and deterministic. Two measurement modes
// mirror the paper's methodology: saturation throughput (QPS over the
// makespan of draining a trace, Figures 5/7/8/10/11 and Table 4) and
// open-loop latency (P99 versus offered rate, Figure 9).
package cluster

import (
	"fmt"
	"sort"

	"bat/internal/bipartite"
	"bat/internal/cachemeta"
	"bat/internal/costmodel"
	"bat/internal/kvcache"
	"bat/internal/metrics"
	"bat/internal/model"
	"bat/internal/placement"
	"bat/internal/routing"
	"bat/internal/scheduler"
	"bat/internal/workload"
)

// Config describes one cluster deployment.
type Config struct {
	Nodes int
	GPU   costmodel.GPU
	Model model.Config
	Link  costmodel.Link

	// HostMemBytes is each node's KV cache budget (item area + user area).
	HostMemBytes int64
	// Plan is the static item placement; the zero Plan caches no items.
	Plan placement.Plan
	// Policy chooses each request's attention pattern.
	Policy scheduler.Policy
	// UserEvict selects the user area's replacement discipline.
	UserEvict kvcache.EvictPolicy
	// HotnessWindowSec configures the meta service estimator (default 300).
	HotnessWindowSec float64
	// PageBytes is the KV page size (default 256 KiB).
	PageBytes int
	// MaxBatchedTokens caps new tokens per inference batch (default 4000,
	// the paper's SLO-derived limit). It bounds how much work a batch may
	// aggregate ahead of a waiting request.
	MaxBatchedTokens int

	// Dynamic, when non-nil, overrides Plan with a promotion-capable
	// placement maintained by the background refresh process (§5.2 step 3).
	Dynamic *placement.DynamicPlan
	// RefreshIntervalSec is how often the background process promotes the
	// hottest recently-missed items into Dynamic's slack area (0 disables).
	RefreshIntervalSec float64
	// RefreshTopK bounds promotions per refresh (default 32).
	RefreshTopK int

	// StatsBucketSec, when positive, adds per-time-bucket hit-rate tracking
	// to the run's Stats (used by the burst experiment).
	StatsBucketSec float64

	// SlowTierBytes, when positive, backs each node's user cache with a
	// spill tier of that size on cheap local storage — the multi-tier
	// extension the paper defers in §3.3's footnote. SlowTierGBps is its
	// load bandwidth (default 3 GB/s, NVMe-class).
	SlowTierBytes int64
	SlowTierGBps  float64

	// RoutingScorers, when non-empty, replaces the historical user-sticky
	// hash with the live router's weighted scorer pipeline (see
	// routing.ParseScorers; e.g. "cache-affinity:2,least-loaded:1"):
	// requests are routed among nodes by cache residency, normalized busy
	// time, hotness stickiness, and round-robin — the exact policy code
	// cmd/batrouter runs, so simulated routing predicts live routing.
	// Empty keeps the sticky hash (bit-identical to the pre-scorer
	// simulator).
	RoutingScorers string
	// RoutingSeed seeds the scorer pipeline's decision sequence.
	RoutingSeed uint64
}

func (c Config) withDefaults() Config {
	if c.HotnessWindowSec == 0 {
		c.HotnessWindowSec = 300
	}
	if c.PageBytes == 0 {
		c.PageBytes = 256 * 1024
	}
	if c.MaxBatchedTokens == 0 {
		c.MaxBatchedTokens = 4000
	}
	if c.RefreshTopK == 0 {
		c.RefreshTopK = 32
	}
	if c.SlowTierGBps == 0 {
		c.SlowTierGBps = 3
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("cluster: need at least one node")
	case c.HostMemBytes < 0:
		return fmt.Errorf("cluster: negative host memory")
	case c.Policy == nil:
		return fmt.Errorf("cluster: nil scheduling policy")
	}
	if err := c.Model.Validate(); err != nil {
		return err
	}
	itemBytes := c.itemBytesPerWorker()
	if itemBytes > c.HostMemBytes {
		return fmt.Errorf("cluster: item placement needs %d bytes/node, host memory is %d (OOM)", itemBytes, c.HostMemBytes)
	}
	return nil
}

func (c Config) itemBytesPerWorker() int64 {
	if c.Dynamic != nil {
		return c.Dynamic.ItemBytesPerWorker()
	}
	return c.Plan.ItemBytesPerWorker()
}

// lookupItem resolves an item's residency through the dynamic plan when one
// is configured.
func (c Config) lookupItem(it workload.ItemID, node int) placement.Location {
	if c.Dynamic != nil {
		return c.Dynamic.Lookup(it, node)
	}
	return c.Plan.Lookup(it, node)
}

// Stats aggregates one simulation run.
type Stats struct {
	Requests int
	// Makespan is the virtual time to drain the trace (seconds); QPS the
	// resulting saturation throughput.
	Makespan float64
	QPS      float64

	TotalTokens    int64
	ReusedTokens   int64 // served from cache (any tier or remote)
	ComputedTokens int64
	RemoteTokens   int64 // reused tokens that crossed the network
	SlowTierTokens int64 // reused tokens loaded from the spill tier
	GPUTokens      int64 // reused tokens already resident in device memory

	ComputedFLOPs  float64
	RecomputeFLOPs float64 // reference: everything recomputed

	UserPrefixCount, ItemPrefixCount, RecomputeCount int

	UserHits, UserLookups int64

	// Latency is populated by open-loop runs.
	Latency metrics.Digest

	// Buckets holds per-window token accounting when Config.StatsBucketSec
	// is set (the burst experiment reads hit rate over time from these).
	Buckets []Bucket

	// NodeBusySec is each node's total service time; the spread between the
	// slowest and the mean is the load imbalance that bends Fig. 11 away
	// from perfectly linear scaling.
	NodeBusySec []float64
}

// LoadImbalance returns max(NodeBusySec)/mean(NodeBusySec) - 1, or 0 when
// per-node accounting is absent.
func (s *Stats) LoadImbalance() float64 {
	if len(s.NodeBusySec) == 0 {
		return 0
	}
	var sum, max float64
	for _, b := range s.NodeBusySec {
		sum += b
		if b > max {
			max = b
		}
	}
	mean := sum / float64(len(s.NodeBusySec))
	if mean == 0 {
		return 0
	}
	return max/mean - 1
}

// Bucket aggregates token reuse within one StatsBucketSec window.
type Bucket struct {
	StartSec                  float64
	TotalTokens, ReusedTokens int64
}

// HitRate is the bucket's reused-token fraction.
func (b Bucket) HitRate() float64 {
	if b.TotalTokens == 0 {
		return 0
	}
	return float64(b.ReusedTokens) / float64(b.TotalTokens)
}

// HitRate is the paper's §6.2 metric: reused prefix tokens over total
// prompt tokens.
func (s *Stats) HitRate() float64 {
	if s.TotalTokens == 0 {
		return 0
	}
	return float64(s.ReusedTokens) / float64(s.TotalTokens)
}

// ComputeSavings is the fraction of recompute FLOPs avoided.
func (s *Stats) ComputeSavings() float64 {
	if s.RecomputeFLOPs == 0 {
		return 0
	}
	return 1 - s.ComputedFLOPs/s.RecomputeFLOPs
}

// Sim is one configured cluster bound to a workload generator.
type Sim struct {
	cfg  Config
	gen  *workload.Generator
	meta *cachemeta.Service
	// ring and router are the shared routing layer: ring for the sticky
	// home slot, router (nil unless RoutingScorers is set) for scored
	// policy routing — the same code the live frontend tier runs.
	ring   routing.Ring
	router *routing.Pipeline
	// busySec is each node's accumulated service time within the current
	// run; the least-loaded scorer reads it as relative load.
	busySec []float64
	// userPools[n] is node n's user cache area (host memory minus the item
	// area). The item area is virtual: the placement plan answers residency.
	userPools []*kvcache.Pool
	// tiered wraps userPools with a spill tier when SlowTierBytes is set.
	tiered []*kvcache.TieredPool

	// Background item refresh state (nil when disabled).
	itemMisses  map[workload.ItemID]int64
	nextRefresh float64
}

// New builds a simulator. The item area is carved out of each node's host
// memory first; the remainder becomes the user pool.
func New(cfg Config, gen *workload.Generator) (*Sim, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	userBytes := cfg.HostMemBytes - cfg.itemBytesPerWorker()
	s := &Sim{
		cfg:       cfg,
		gen:       gen,
		meta:      cachemeta.New(cfg.HotnessWindowSec),
		ring:      routing.NewRing(cfg.Nodes),
		busySec:   make([]float64, cfg.Nodes),
		userPools: make([]*kvcache.Pool, cfg.Nodes),
	}
	if cfg.RoutingScorers != "" {
		scorers, err := routing.ParseScorers(cfg.RoutingScorers)
		if err != nil {
			return nil, err
		}
		s.router = routing.NewPipeline(cfg.RoutingSeed, scorers...)
	}
	for n := range s.userPools {
		pool, err := kvcache.NewPool(userBytes, cfg.PageBytes, cfg.Model.KVBytesPerToken(), cfg.UserEvict)
		if err != nil {
			return nil, err
		}
		s.userPools[n] = pool
		if cfg.SlowTierBytes > 0 {
			slow, err := kvcache.NewPool(cfg.SlowTierBytes, cfg.PageBytes, cfg.Model.KVBytesPerToken(), kvcache.EvictLRU)
			if err != nil {
				return nil, err
			}
			s.tiered = append(s.tiered, kvcache.NewTieredPool(pool, slow))
		}
	}
	if cfg.Dynamic != nil && cfg.RefreshIntervalSec > 0 {
		s.itemMisses = make(map[workload.ItemID]int64)
		s.nextRefresh = cfg.RefreshIntervalSec
	}
	return s, nil
}

// maybeRefresh runs the background item-cache update: at each interval
// boundary the hottest recently-missed items are promoted into the dynamic
// plan's replicated slack area, and the window's miss counters reset.
func (s *Sim) maybeRefresh(now float64) {
	if s.itemMisses == nil || now < s.nextRefresh {
		return
	}
	type mc struct {
		it workload.ItemID
		n  int64
	}
	hot := make([]mc, 0, len(s.itemMisses))
	for it, n := range s.itemMisses {
		hot = append(hot, mc{it, n})
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].n != hot[j].n {
			return hot[i].n > hot[j].n
		}
		return hot[i].it < hot[j].it
	})
	for i := 0; i < len(hot) && i < s.cfg.RefreshTopK; i++ {
		s.cfg.Dynamic.Promote(hot[i].it)
	}
	s.itemMisses = make(map[workload.ItemID]int64)
	for s.nextRefresh <= now {
		s.nextRefresh += s.cfg.RefreshIntervalSec
	}
}

// UserPoolBytes returns the per-node user cache capacity after the item
// area is carved out.
func (s *Sim) UserPoolBytes() int64 { return s.userPools[0].CapacityBytes() }

// routeNode picks the serving node through the shared routing layer.
// Without a scorer pipeline this is the historical sticky hash — the user's
// home slot on the ring (bit-identical to the pre-refactor nodeFor). With
// Config.RoutingScorers set, the live router's weighted pipeline picks
// among nodes from simulated load (normalized busy time) and user-cache
// residency, so the DES exercises exactly the policy code cmd/batrouter
// serves with.
func (s *Sim) routeNode(u workload.UserID, userKey kvcache.EntryKey, hotness float64) int {
	h := routing.Mix64(uint64(u) + 0x9e37)
	home := s.ring.Home(h)
	if s.router == nil {
		return home
	}
	var maxBusy float64
	for _, b := range s.busySec {
		if b > maxBusy {
			maxBusy = b
		}
	}
	cands := make([]routing.Candidate, s.cfg.Nodes)
	for n := range cands {
		load := 0.0
		if maxBusy > 0 {
			load = s.busySec[n] / maxBusy
		}
		pool := s.userPools[n]
		cands[n] = routing.Candidate{
			Index: n, Alive: true, Load: load,
			// Pool.Contains is stat- and recency-free, so routing probes
			// cannot perturb eviction order — the same Peek discipline the
			// live /v1/load snapshot follows.
			Resident: func(uint64) bool { return pool.Contains(userKey) },
		}
	}
	dec, ok := s.router.Pick(routing.Request{Key: h, Home: home, Hotness: hotness / (1 + hotness)}, cands)
	if !ok {
		return home
	}
	return dec.Index
}

// requestOutcome is the per-request serving result.
type requestOutcome struct {
	node        int
	newTokens   int
	ctxTokens   int // reused tokens forming the attention context
	localReuse  int
	gpuReuse    int // reused tokens already resident in device memory
	slowReuse   int // reused tokens loaded from the spill tier
	remoteReuse int
	kind        bipartite.PrefixKind
	recompute   bool
}

// serve resolves one request's cache decisions and token accounting at
// virtual time now.
func (s *Sim) serve(req workload.Request, now float64) requestOutcome {
	gen := s.gen
	rt, items := gen.TokensFor(req)
	userKey := kvcache.EntryKey{Kind: kvcache.UserEntry, ID: req.User}

	// Pool entries carry normalized hotness (count·e^(t/W)) per page:
	//   - normalization keeps stored minima comparable against this
	//     request's fresh estimate without proactively decaying resident
	//     entries (the paper's asynchronous decay);
	//   - dividing by the entry's page count implements §5.3's objective of
	//     maximizing access frequency per unit of cache space.
	// Computed before routing (page geometry is identical across nodes) so
	// the hotness scorer can see it.
	pages := s.userPools[0].PagesFor(rt.UserTokens)
	if pages == 0 {
		pages = 1
	}
	hotness := s.meta.Normalize(s.meta.RecordAccess(userKey, now), now) / float64(pages)
	node := s.routeNode(req.User, userKey, hotness)
	pool := s.userPools[node]
	userCached := pool.Contains(userKey)
	if s.tiered != nil {
		userCached = s.tiered[node].Contains(userKey)
	}
	minHot, haveMin := pool.MinHotness()
	cachedItemTokens := 0
	if ca, ok := s.cfg.Policy.(scheduler.CostAware); ok && ca.NeedsItemHitTokens() {
		for _, it := range items {
			if s.cfg.lookupItem(it, node) != placement.LocMiss {
				cachedItemTokens += gen.ItemTokens(it)
			}
		}
	}
	ctx := scheduler.Context{
		UserTokens:           rt.UserTokens,
		ItemTokens:           rt.ItemTokens,
		UserHotness:          hotness,
		UserCached:           userCached,
		MinCachedHotness:     minHot,
		HaveMinCachedHotness: haveMin,
		UserPoolHasSpace:     pool.FreeBytes() >= int64(pool.PagesFor(rt.UserTokens)*s.cfg.PageBytes),
		CachedItemTokens:     cachedItemTokens,
	}
	dec := s.cfg.Policy.Decide(ctx)

	out := requestOutcome{node: node, kind: dec.Kind, recompute: dec.Recompute}
	switch {
	case dec.Recompute:
		out.newTokens = rt.Total()

	case dec.Kind == bipartite.UserPrefix:
		tokens, level := s.lookupUser(node, userKey)
		switch level {
		case kvcache.TierFast:
			out.localReuse = tokens
			out.newTokens = rt.Total() - tokens
			s.refreshUser(node, userKey, rt.UserTokens, hotness)
		case kvcache.TierSlow:
			out.slowReuse = tokens
			out.newTokens = rt.Total() - tokens
			s.refreshUser(node, userKey, rt.UserTokens, hotness)
		default:
			out.newTokens = rt.Total()
			if dec.AdmitUser {
				if s.putUser(node, userKey, rt.UserTokens, hotness) {
					s.meta.RegisterEntry(userKey, cachemeta.WorkerID(node))
				}
			}
		}

	default: // Item-as-prefix
		out.newTokens = rt.UserTokens + rt.InstrTokens
		for _, it := range items {
			tok := gen.ItemTokens(it)
			switch s.cfg.lookupItem(it, node) {
			case placement.LocLocal:
				if s.cfg.Plan.GPUResident(it) {
					out.gpuReuse += tok
				} else {
					out.localReuse += tok
				}
			case placement.LocRemote:
				out.remoteReuse += tok
			default:
				out.newTokens += tok
				if s.itemMisses != nil {
					s.itemMisses[it]++
				}
			}
		}
	}
	out.ctxTokens = out.localReuse + out.gpuReuse + out.slowReuse + out.remoteReuse
	return out
}

// lookupUser resolves the user cache through the spill tier when enabled.
func (s *Sim) lookupUser(node int, k kvcache.EntryKey) (tokens int, level kvcache.TierLevel) {
	if s.tiered != nil {
		e, lvl := s.tiered[node].Lookup(k)
		if lvl == kvcache.TierMiss {
			return 0, kvcache.TierMiss
		}
		return e.Tokens, lvl
	}
	e, ok := s.userPools[node].Lookup(k)
	if !ok {
		return 0, kvcache.TierMiss
	}
	return e.Tokens, kvcache.TierFast
}

// refreshUser re-Puts a hit user entry with the session's CURRENT token
// count. When the user's prefix has grown since admission the pool charges
// the page delta (evicting under pressure, or keeping the old extent when the
// grown cache cannot fit) — previously hits only bumped hotness, so growing
// user caches were never charged and simulated hit rates were inflated.
func (s *Sim) refreshUser(node int, k kvcache.EntryKey, tokens int, hotness float64) {
	if s.tiered != nil {
		s.tiered[node].Put(k, tokens, hotness)
		return
	}
	s.userPools[node].Put(k, tokens, hotness)
}

func (s *Sim) putUser(node int, k kvcache.EntryKey, tokens int, hotness float64) bool {
	if s.tiered != nil {
		_, ok := s.tiered[node].Put(k, tokens, hotness)
		return ok
	}
	_, ok := s.userPools[node].Put(k, tokens, hotness)
	return ok
}

// serviceTime converts an outcome into seconds of node occupancy: prefill
// compute plus host KV loads plus any remote cache transfer (serialized, as
// transfers gate the batch's attention context).
func (s *Sim) serviceTime(out requestOutcome) float64 {
	t := costmodel.PrefillTime(s.cfg.GPU, s.cfg.Model, out.newTokens, out.ctxTokens)
	t += costmodel.KVLoadTime(s.cfg.GPU, s.cfg.Model, out.localReuse)
	t += s.cfg.Link.TransferTime(s.cfg.Model, out.remoteReuse)
	if out.slowReuse > 0 {
		bytes := float64(out.slowReuse) * float64(s.cfg.Model.KVBytesPerToken())
		t += bytes / (s.cfg.SlowTierGBps * 1e9)
	}
	return t
}

func (s *Sim) record(st *Stats, rt workload.RequestTokens, out requestOutcome, now float64) {
	if s.cfg.StatsBucketSec > 0 {
		idx := int(now / s.cfg.StatsBucketSec)
		for len(st.Buckets) <= idx {
			st.Buckets = append(st.Buckets, Bucket{StartSec: float64(len(st.Buckets)) * s.cfg.StatsBucketSec})
		}
		st.Buckets[idx].TotalTokens += int64(rt.Total())
		st.Buckets[idx].ReusedTokens += int64(out.ctxTokens)
	}
	st.Requests++
	st.TotalTokens += int64(rt.Total())
	st.ReusedTokens += int64(out.ctxTokens)
	st.ComputedTokens += int64(out.newTokens)
	st.RemoteTokens += int64(out.remoteReuse)
	st.SlowTierTokens += int64(out.slowReuse)
	st.GPUTokens += int64(out.gpuReuse)
	st.ComputedFLOPs += costmodel.PrefillFLOPs(s.cfg.Model, out.newTokens, out.ctxTokens)
	st.RecomputeFLOPs += costmodel.PrefillFLOPs(s.cfg.Model, rt.Total(), 0)
	switch {
	case out.recompute:
		st.RecomputeCount++
	case out.kind == bipartite.UserPrefix:
		st.UserPrefixCount++
	default:
		st.ItemPrefixCount++
	}
}

// RunThroughput drains the trace at full load and reports saturation
// throughput: every node processes its requests back to back; the makespan
// is the slowest node's busy time. Cache temporal dynamics (hotness decay,
// churn) follow the trace's own timestamps.
func (s *Sim) RunThroughput(trace *workload.Trace) (*Stats, error) {
	if len(trace.Requests) == 0 {
		return nil, fmt.Errorf("cluster: empty trace")
	}
	st := &Stats{}
	s.busySec = make([]float64, s.cfg.Nodes)
	for _, req := range trace.Requests {
		s.maybeRefresh(req.Time)
		rt, _ := s.gen.TokensFor(req)
		out := s.serve(req, req.Time)
		s.busySec[out.node] += s.serviceTime(out)
		s.record(st, rt, out, req.Time)
	}
	st.NodeBusySec = s.busySec
	for _, b := range s.busySec {
		if b > st.Makespan {
			st.Makespan = b
		}
	}
	if st.Makespan > 0 {
		st.QPS = float64(st.Requests) / st.Makespan
	}
	s.fillPoolStats(st)
	return st, nil
}

// RunOpenLoop replays the trace with arrivals rescaled to the offered rate
// (requests/second) and measures end-to-end latency through each node's
// FIFO inference queue with max-batched-tokens batching: a request's service
// may be delayed while the worker drains earlier batches.
func (s *Sim) RunOpenLoop(trace *workload.Trace, rate float64) (*Stats, error) {
	if len(trace.Requests) == 0 {
		return nil, fmt.Errorf("cluster: empty trace")
	}
	if rate <= 0 {
		return nil, fmt.Errorf("cluster: offered rate must be positive")
	}
	naturalRate := float64(len(trace.Requests)) / trace.Duration
	scale := naturalRate / rate

	// Pass 1: resolve cache decisions in global arrival order (cache state
	// is shared and time-ordered), collecting each request's service demand.
	type job struct {
		arrival, svc float64
		newTokens    int
	}
	perNode := make([][]job, s.cfg.Nodes)
	st := &Stats{}
	s.busySec = make([]float64, s.cfg.Nodes)
	for _, req := range trace.Requests {
		arrival := req.Time * scale
		s.maybeRefresh(arrival)
		rt, _ := s.gen.TokensFor(req)
		out := s.serve(req, arrival)
		svc := s.serviceTime(out)
		s.busySec[out.node] += svc
		perNode[out.node] = append(perNode[out.node], job{arrival, svc, out.newTokens})
		s.record(st, rt, out, arrival)
	}

	// Pass 2: per-node continuous batching. Each batch gathers the requests
	// already queued when the worker frees up, capped at MaxBatchedTokens of
	// new work; all members complete when the batch does.
	var last float64
	for _, jobs := range perNode {
		free := 0.0
		for i := 0; i < len(jobs); {
			start := jobs[i].arrival
			if free > start {
				start = free
			}
			tokens, svc := 0, 0.0
			j := i
			for j < len(jobs) && jobs[j].arrival <= start && tokens+jobs[j].newTokens <= s.cfg.MaxBatchedTokens {
				tokens += jobs[j].newTokens
				svc += jobs[j].svc
				j++
			}
			if j == i { // single request larger than the batch cap
				svc = jobs[i].svc
				j = i + 1
			}
			finish := start + svc
			for k := i; k < j; k++ {
				st.Latency.Add(finish - jobs[k].arrival)
			}
			if finish > last {
				last = finish
			}
			free = finish
			i = j
		}
	}
	st.Makespan = last
	if last > 0 {
		st.QPS = float64(st.Requests) / last
	}
	s.fillPoolStats(st)
	return st, nil
}

func (s *Sim) fillPoolStats(st *Stats) {
	for _, p := range s.userPools {
		st.UserHits += p.Hits
		st.UserLookups += p.Hits + p.Misses
	}
}
