package cluster

import (
	"testing"

	"bat/internal/placement"
	"bat/internal/scheduler"
	"bat/internal/workload"
)

// burstProfile plants a cold-item hotspot in the middle of the trace.
func burstProfile() workload.Profile {
	p := tinyProfile()
	p.Name = "tiny-burst"
	p.Burst = &workload.Burst{
		StartSec:  600,
		EndSec:    1200,
		FirstItem: 4000, // deep in the cold tail
		Items:     20,
		Share:     0.5,
	}
	return p
}

// hotHeadPlan caches only the hot head so burst items miss statically.
func hotHeadPlan(t *testing.T) placement.Plan {
	t.Helper()
	plan := fullReplicatePlan(t, 4)
	plan.ReplicatedItems = 1000
	plan.ShardedItems = 0
	return plan
}

func runBurst(t *testing.T, refresh bool) *Stats {
	t.Helper()
	g, err := workload.NewGenerator(burstProfile(), 7)
	if err != nil {
		t.Fatal(err)
	}
	plan := hotHeadPlan(t)
	cfg := baseConfig(scheduler.StaticItem{})
	cfg.Plan = plan
	cfg.StatsBucketSec = 300
	if refresh {
		cfg.Dynamic = placement.NewDynamicPlan(plan, 64)
		cfg.RefreshIntervalSec = 120
	}
	sim, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := g.GenerateTrace(4000, 1800)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.RunThroughput(tr)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestBurstRefreshRecoversHitRate: during the hotspot window, the background
// refresh must recover a large part of the hit rate the static placement
// loses to burst misses.
func TestBurstRefreshRecoversHitRate(t *testing.T) {
	static := runBurst(t, false)
	refreshed := runBurst(t, true)

	// Bucket 0-1 pre-burst, 2-3 in-burst, 4-5 post-burst (300s buckets).
	burstHit := func(st *Stats) float64 {
		if len(st.Buckets) < 4 {
			t.Fatalf("only %d buckets", len(st.Buckets))
		}
		b := st.Buckets[3] // second burst bucket: refresh has had time to react
		return b.HitRate()
	}
	preHit := static.Buckets[1].HitRate()
	staticBurst := burstHit(static)
	refreshedBurst := burstHit(refreshed)

	if staticBurst >= preHit {
		t.Fatalf("burst did not dent the static hit rate: pre %v, burst %v", preHit, staticBurst)
	}
	if refreshedBurst <= staticBurst+0.05 {
		t.Fatalf("refresh did not recover hit rate: static %v, refreshed %v", staticBurst, refreshedBurst)
	}
	if refreshed.QPS <= static.QPS {
		t.Fatalf("refresh QPS %v not above static %v", refreshed.QPS, static.QPS)
	}
}

func TestDynamicPlanPromotionSemantics(t *testing.T) {
	base := placement.Plan{Strategy: placement.HRCS, Workers: 4, Corpus: 10_000,
		ReplicatedItems: 100, ShardedItems: 0, AvgItemBytes: 1000}
	d := placement.NewDynamicPlan(base, 2)
	if d.Lookup(5000, 0) != placement.LocMiss {
		t.Fatal("cold item should miss before promotion")
	}
	if !d.Promote(5000) {
		t.Fatal("promotion failed")
	}
	if d.Lookup(5000, 3) != placement.LocLocal {
		t.Fatal("promoted item must be local everywhere")
	}
	if d.Promote(5000) {
		t.Fatal("double promotion should be a no-op")
	}
	if d.Promote(50) {
		t.Fatal("statically replicated item should not be promoted")
	}
	// FIFO eviction at capacity.
	d.Promote(6000)
	d.Promote(7000)
	if d.Lookup(5000, 0) != placement.LocMiss {
		t.Fatal("oldest promotion should have been evicted")
	}
	if d.PromotedCount() != 2 {
		t.Fatalf("promoted count %d", d.PromotedCount())
	}
	// Memory accounting reserves the slack area.
	if d.ItemBytesPerWorker() != base.ItemBytesPerWorker()+2*1000 {
		t.Fatalf("dynamic bytes %d", d.ItemBytesPerWorker())
	}
	if d.CachedItems() != base.CachedItems()+2 {
		t.Fatalf("cached items %d", d.CachedItems())
	}
}

func TestStatsBucketsAccounting(t *testing.T) {
	g := tinyGen(t)
	cfg := baseConfig(scheduler.StaticUser{})
	cfg.StatsBucketSec = 600
	sim, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.RunThroughput(tinyTrace(t, g, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Buckets) == 0 {
		t.Fatal("no buckets")
	}
	var total, reused int64
	for i, b := range st.Buckets {
		if b.StartSec != float64(i)*600 {
			t.Fatalf("bucket %d starts at %v", i, b.StartSec)
		}
		total += b.TotalTokens
		reused += b.ReusedTokens
	}
	if total != st.TotalTokens || reused != st.ReusedTokens {
		t.Fatalf("bucket sums (%d, %d) != stats (%d, %d)", total, reused, st.TotalTokens, st.ReusedTokens)
	}
}

func TestBurstWorkloadShiftsCandidates(t *testing.T) {
	g, err := workload.NewGenerator(burstProfile(), 7)
	if err != nil {
		t.Fatal(err)
	}
	inBurstBlock := func(items []workload.ItemID) int {
		n := 0
		for _, it := range items {
			if it >= 4000 && it < 4020 {
				n++
			}
		}
		return n
	}
	before := inBurstBlock(g.CandidatesAt(1, 2, 100))
	during := inBurstBlock(g.CandidatesAt(1, 2, 900))
	if before != 0 {
		t.Fatalf("burst items retrieved before the burst: %d", before)
	}
	if during < 5 {
		t.Fatalf("burst captured only %d/20 slots at 50%% share", during)
	}
	// Candidates (no time) never sees the burst.
	if inBurstBlock(g.Candidates(1, 2)) != 0 {
		t.Fatal("time-free Candidates should ignore bursts")
	}
}

// TestSlowTierRecoversEvictedUsers: with a spill tier, users evicted from
// the DRAM pool are still served (at higher load cost) instead of
// recomputed — the multi-tier extension.
func TestSlowTierRecoversEvictedUsers(t *testing.T) {
	g := tinyGen(t)
	run := func(slowBytes int64) *Stats {
		cfg := baseConfig(scheduler.StaticUser{})
		cfg.HostMemBytes = 64 << 20 // starved DRAM pool: ~7 user slots per node
		cfg.SlowTierBytes = slowBytes
		sim, err := New(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.RunThroughput(tinyTrace(t, g, 3000))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	flat := run(0)
	tiered := run(4 << 30)
	if tiered.SlowTierTokens == 0 {
		t.Fatal("no slow-tier hits recorded")
	}
	if tiered.HitRate() <= flat.HitRate() {
		t.Fatalf("spill tier did not raise hit rate: %v vs %v", tiered.HitRate(), flat.HitRate())
	}
	if tiered.QPS <= flat.QPS {
		t.Fatalf("spill tier did not raise throughput: %v vs %v", tiered.QPS, flat.QPS)
	}
	if flat.SlowTierTokens != 0 {
		t.Fatal("flat run recorded slow-tier tokens")
	}
}

// TestFindSLORate: the searched rate must sit at the SLO boundary — within
// the SLO at the returned rate, beyond it slightly above.
func TestFindSLORate(t *testing.T) {
	g := tinyGen(t)
	trace := tinyTrace(t, g, 1500)
	factory := func() (*Sim, error) { return New(baseConfig(scheduler.Recompute{}), g) }
	rate, err := FindSLORate(factory, trace, 0.2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Fatalf("rate %v", rate)
	}
	sim, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	at, err := sim.RunOpenLoop(trace, rate)
	if err != nil {
		t.Fatal(err)
	}
	if at.Latency.P99() > 0.2 {
		t.Fatalf("P99 %v at the returned rate violates the SLO", at.Latency.P99())
	}
	sim2, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	above, err := sim2.RunOpenLoop(trace, rate*1.3)
	if err != nil {
		t.Fatal(err)
	}
	if above.Latency.P99() <= 0.2 {
		t.Fatalf("P99 %v well above the returned rate still meets the SLO", above.Latency.P99())
	}
}

func TestFindSLORateValidation(t *testing.T) {
	g := tinyGen(t)
	trace := tinyTrace(t, g, 50)
	if _, err := FindSLORate(func() (*Sim, error) { return New(baseConfig(scheduler.Recompute{}), g) }, trace, 0, 4); err == nil {
		t.Fatal("zero SLO accepted")
	}
}

func TestNodeBusyAccountingAndImbalance(t *testing.T) {
	g := tinyGen(t)
	sim, err := New(baseConfig(scheduler.Recompute{}), g)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.RunThroughput(tinyTrace(t, g, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.NodeBusySec) != 4 {
		t.Fatalf("%d node entries", len(st.NodeBusySec))
	}
	var max float64
	for _, b := range st.NodeBusySec {
		if b <= 0 {
			t.Fatal("idle node in a saturation run")
		}
		if b > max {
			max = b
		}
	}
	if max != st.Makespan {
		t.Fatalf("makespan %v != slowest node %v", st.Makespan, max)
	}
	// Imbalance is bounded by nodes-1 (everything on one node); the tiny
	// profile's heavy user skew makes it legitimately large.
	if im := st.LoadImbalance(); im < 0 || im > 3 {
		t.Fatalf("implausible imbalance %v", im)
	}
	if (&Stats{}).LoadImbalance() != 0 {
		t.Fatal("empty stats should report zero imbalance")
	}
}

// TestGreedyOraclePolicyInSim: the clairvoyant-greedy policy consults real
// cache state. Against a warm item pool it behaves like IP for cold users —
// and, revealingly, it can trail simpler admission-friendly policies because
// it never invests in warming user caches (§5.3's argument that per-request
// greed is not enough).
func TestGreedyOraclePolicyInSim(t *testing.T) {
	g := tinyGen(t)
	plan := fullReplicatePlan(t, 4)
	run := func(p scheduler.Policy) *Stats {
		cfg := baseConfig(p)
		cfg.Plan = plan
		sim, err := New(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.RunThroughput(tinyTrace(t, g, 2000))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	oracle := run(scheduler.GreedyOracle{})
	ip := run(scheduler.StaticItem{})
	if oracle.ItemPrefixCount == 0 {
		t.Fatal("oracle never used item-as-prefix against a warm item pool")
	}
	if oracle.HitRate() <= 0.3 {
		t.Fatalf("oracle hit rate %v suspiciously low", oracle.HitRate())
	}
	// The oracle can only improve on always-IP: it deviates to UP exactly
	// when the user side is at least as warm.
	if oracle.QPS < ip.QPS*0.99 {
		t.Fatalf("oracle QPS %v below static IP %v", oracle.QPS, ip.QPS)
	}
}
