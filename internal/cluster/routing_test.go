package cluster

import (
	"testing"

	"bat/internal/kvcache"
	"bat/internal/routing"
	"bat/internal/scheduler"
	"bat/internal/workload"
)

// TestDefaultRoutingBitIdenticalToLegacyHash pins the refactor: with no
// scorer pipeline configured, routeNode must reproduce the pre-refactor
// nodeFor — splitmix64 of the salted user ID, mod nodes.
func TestDefaultRoutingBitIdenticalToLegacyHash(t *testing.T) {
	s, err := New(baseConfig(scheduler.StaticUser{}), tinyGen(t))
	if err != nil {
		t.Fatal(err)
	}
	legacy := func(u workload.UserID, nodes int) int {
		x := uint64(u) + 0x9e37
		x += 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
		return int(x % uint64(nodes))
	}
	for u := workload.UserID(0); u < 5000; u++ {
		key := kvcache.EntryKey{Kind: kvcache.UserEntry, ID: u}
		if got, want := s.routeNode(u, key, 0.5), legacy(u, s.cfg.Nodes); got != want {
			t.Fatalf("routeNode(%d) = %d, legacy nodeFor = %d", u, got, want)
		}
	}
}

// TestScoredRoutingDeterministic: the same seed and trace produce the same
// stats — the property that keeps scored simulations reproducible.
func TestScoredRoutingDeterministic(t *testing.T) {
	run := func() *Stats {
		cfg := baseConfig(scheduler.StaticUser{})
		cfg.RoutingScorers = "cache-affinity:2,least-loaded:1,round-robin:0.25"
		cfg.RoutingSeed = 3
		g := tinyGen(t)
		s, err := New(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.RunThroughput(tinyTrace(t, g, 2000))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.HitRate() != b.HitRate() || a.QPS != b.QPS || a.Requests != b.Requests {
		t.Fatalf("scored sim not deterministic: %+v vs %+v", a, b)
	}
}

// TestAffinityRoutingBeatsRoundRobinInSim drives the DES through the same
// scorer pipeline the live router uses: keeping users on the node that
// already holds their cache must beat spraying them round-robin on user-hit
// rate (round-robin cold-misses on every node it lands a user's cache is
// not on).
func TestAffinityRoutingBeatsRoundRobinInSim(t *testing.T) {
	run := func(spec string) *Stats {
		cfg := baseConfig(scheduler.StaticUser{})
		cfg.RoutingScorers = spec
		g := tinyGen(t)
		s, err := New(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.RunThroughput(tinyTrace(t, g, 4000))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	userHit := func(st *Stats) float64 {
		if st.UserLookups == 0 {
			return 0
		}
		return float64(st.UserHits) / float64(st.UserLookups)
	}
	aff := run("cache-affinity:4,round-robin:0.25")
	rr := run("round-robin")
	if userHit(aff) <= userHit(rr) {
		t.Fatalf("affinity user-hit rate %.3f not above round-robin %.3f", userHit(aff), userHit(rr))
	}
	if aff.HitRate() < rr.HitRate() {
		t.Fatalf("affinity token hit rate %.3f below round-robin %.3f", aff.HitRate(), rr.HitRate())
	}
}

// TestBadScorerSpecRejected: a typo'd routing spec fails construction.
func TestBadScorerSpecRejected(t *testing.T) {
	cfg := baseConfig(scheduler.StaticUser{})
	cfg.RoutingScorers = "cache-afinity"
	if _, err := New(cfg, tinyGen(t)); err == nil {
		t.Fatal("bad scorer spec accepted")
	}
}

// TestSimAndRouterShareScorerCode is the sim/live contract in one assertion:
// the pipeline type the simulator builds is the very one the router package
// exports — there is no simulator-private scorer implementation to drift.
func TestSimAndRouterShareScorerCode(t *testing.T) {
	cfg := baseConfig(scheduler.StaticUser{})
	cfg.RoutingScorers = "cache-affinity"
	s, err := New(cfg, tinyGen(t))
	if err != nil {
		t.Fatal(err)
	}
	var _ *routing.Pipeline = s.router
	if s.router == nil {
		t.Fatal("scored config built no pipeline")
	}
}
