package cluster

import (
	"testing"

	"bat/internal/costmodel"
	"bat/internal/kvcache"
	"bat/internal/model"
	"bat/internal/placement"
	"bat/internal/scheduler"
	"bat/internal/workload"
)

// tinyProfile is a scaled-down workload for fast simulation tests.
func tinyProfile() workload.Profile {
	p := workload.Games
	p.Name = "tiny"
	p.Users = 2_000
	p.Items = 5_000
	p.AvgUserTokens = 300
	p.MaxUserTokens = 2_000
	p.AvgItemTokens = 10
	p.Candidates = 20
	p.AffinitySetSize = 10
	return p
}

func tinyGen(t *testing.T) *workload.Generator {
	t.Helper()
	g, err := workload.NewGenerator(tinyProfile(), 7)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func tinyTrace(t *testing.T, g *workload.Generator, n int) *workload.Trace {
	t.Helper()
	tr, err := g.GenerateTrace(n, 1800)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func baseConfig(policy scheduler.Policy) Config {
	return Config{
		Nodes:        4,
		GPU:          costmodel.A100PCIe3,
		Model:        model.Qwen2_1_5B,
		Link:         costmodel.NewLink(100),
		HostMemBytes: 2 << 30,
		Policy:       policy,
		UserEvict:    kvcache.EvictLRU,
	}
}

func fullReplicatePlan(t *testing.T, workers int) placement.Plan {
	t.Helper()
	plan, err := placement.NewPlan(Replicate(), placement.Input{
		Model:   model.Qwen2_1_5B,
		Profile: tinyProfile(),
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// Replicate re-exports the strategy for test readability.
func Replicate() placement.Strategy { return placement.Replicate }

func TestConfigValidation(t *testing.T) {
	g := tinyGen(t)
	bad := baseConfig(scheduler.Recompute{})
	bad.Nodes = 0
	if _, err := New(bad, g); err == nil {
		t.Fatal("zero nodes accepted")
	}
	bad = baseConfig(nil)
	if _, err := New(bad, g); err == nil {
		t.Fatal("nil policy accepted")
	}
	bad = baseConfig(scheduler.Recompute{})
	bad.HostMemBytes = 1 // item plan cannot fit
	bad.Plan = fullReplicatePlan(t, 4)
	if _, err := New(bad, g); err == nil {
		t.Fatal("item-area OOM not detected")
	}
}

func TestRecomputeBaseline(t *testing.T) {
	g := tinyGen(t)
	sim, err := New(baseConfig(scheduler.Recompute{}), g)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.RunThroughput(tinyTrace(t, g, 500))
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 500 {
		t.Fatalf("requests = %d", st.Requests)
	}
	if st.ReusedTokens != 0 || st.HitRate() != 0 {
		t.Fatalf("RE reused %d tokens", st.ReusedTokens)
	}
	if st.ComputeSavings() != 0 {
		t.Fatalf("RE compute savings = %v", st.ComputeSavings())
	}
	if st.RecomputeCount != 500 {
		t.Fatalf("recompute count = %d", st.RecomputeCount)
	}
	if st.QPS <= 0 || st.Makespan <= 0 {
		t.Fatalf("QPS %v makespan %v", st.QPS, st.Makespan)
	}
	if st.ComputedTokens != st.TotalTokens {
		t.Fatal("RE must compute every token")
	}
}

func TestUserPrefixReuse(t *testing.T) {
	g := tinyGen(t)
	sim, err := New(baseConfig(scheduler.StaticUser{}), g)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.RunThroughput(tinyTrace(t, g, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if st.ReusedTokens == 0 {
		t.Fatal("UP with session locality should reuse user prefixes")
	}
	if st.RemoteTokens != 0 {
		t.Fatal("UP must not move caches across the network")
	}
	if st.UserPrefixCount != 2000 {
		t.Fatalf("UP count = %d", st.UserPrefixCount)
	}
	if st.UserHits == 0 || st.UserHits >= st.UserLookups {
		t.Fatalf("user hits %d / lookups %d", st.UserHits, st.UserLookups)
	}
	if st.ComputeSavings() <= 0 {
		t.Fatal("UP should save compute vs RE")
	}
}

func TestItemPrefixWithReplicatedItems(t *testing.T) {
	g := tinyGen(t)
	cfg := baseConfig(scheduler.StaticItem{})
	cfg.Plan = fullReplicatePlan(t, cfg.Nodes)
	sim, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.RunThroughput(tinyTrace(t, g, 500))
	if err != nil {
		t.Fatal(err)
	}
	if st.ItemPrefixCount != 500 {
		t.Fatalf("IP count = %d", st.ItemPrefixCount)
	}
	if st.RemoteTokens != 0 {
		t.Fatal("fully replicated items must be local")
	}
	// All candidate tokens reused; user+instr computed.
	if st.ReusedTokens == 0 {
		t.Fatal("IP with replicated corpus should reuse item tokens")
	}
	hit := st.HitRate()
	if hit < 0.2 || hit > 0.9 {
		t.Fatalf("IP hit rate %v outside plausible item-token share", hit)
	}
}

func TestHashShardingPaysNetwork(t *testing.T) {
	g := tinyGen(t)
	mkStats := func(strategy placement.Strategy, gbps float64) *Stats {
		plan, err := placement.NewPlan(strategy, placement.Input{
			Model:   model.Qwen2_1_5B,
			Profile: tinyProfile(),
			Workers: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := baseConfig(scheduler.StaticItem{})
		cfg.Plan = plan
		cfg.Link = costmodel.NewLink(gbps)
		sim, err := New(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.RunThroughput(tinyTrace(t, g, 500))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	hash := mkStats(placement.Hash, 10)
	rep := mkStats(placement.Replicate, 10)
	if hash.RemoteTokens == 0 {
		t.Fatal("hash sharding should transfer remote caches")
	}
	if rep.RemoteTokens != 0 {
		t.Fatal("replication should not transfer")
	}
	if hash.QPS >= rep.QPS {
		t.Fatalf("hash (%0.1f QPS) should trail replicate (%0.1f QPS) on a slow network", hash.QPS, rep.QPS)
	}
	// Hit rates are comparable (both cache the corpus).
	if hash.HitRate() < rep.HitRate()-0.05 {
		t.Fatalf("hash hit rate %v far below replicate %v", hash.HitRate(), rep.HitRate())
	}
}

func TestThroughputDeterminism(t *testing.T) {
	g := tinyGen(t)
	run := func() *Stats {
		sim, err := New(baseConfig(scheduler.StaticUser{}), g)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.RunThroughput(tinyTrace(t, g, 800))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.QPS != b.QPS || a.ReusedTokens != b.ReusedTokens || a.Makespan != b.Makespan {
		t.Fatal("simulation not deterministic")
	}
}

func TestUserPoolBytesCarvesItemArea(t *testing.T) {
	g := tinyGen(t)
	cfg := baseConfig(scheduler.StaticItem{})
	cfg.Plan = fullReplicatePlan(t, cfg.Nodes)
	sim, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.HostMemBytes - cfg.Plan.ItemBytesPerWorker()
	got := sim.UserPoolBytes()
	if got > want || got < want-int64(256*1024) {
		t.Fatalf("user pool %d, want ~%d", got, want)
	}
}

func TestOpenLoopLatencyGrowsWithRate(t *testing.T) {
	g := tinyGen(t)
	trace := tinyTrace(t, g, 1500)

	p99At := func(rate float64) float64 {
		sim, err := New(baseConfig(scheduler.Recompute{}), g)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.RunOpenLoop(trace, rate)
		if err != nil {
			t.Fatal(err)
		}
		return st.Latency.P99()
	}
	// Find saturation: throughput-mode QPS bounds the sustainable rate.
	sim, err := New(baseConfig(scheduler.Recompute{}), g)
	if err != nil {
		t.Fatal(err)
	}
	sat, err := sim.RunThroughput(trace)
	if err != nil {
		t.Fatal(err)
	}
	low := p99At(sat.QPS * 0.3)
	high := p99At(sat.QPS * 2.0)
	if high <= low {
		t.Fatalf("P99 at 2x saturation (%v) should exceed P99 at 0.3x (%v)", high, low)
	}
	if low <= 0 {
		t.Fatalf("P99 at low rate = %v", low)
	}
}

func TestOpenLoopRejectsBadRate(t *testing.T) {
	g := tinyGen(t)
	sim, err := New(baseConfig(scheduler.Recompute{}), g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunOpenLoop(tinyTrace(t, g, 10), 0); err == nil {
		t.Fatal("zero rate accepted")
	}
}

func TestEmptyTraceRejected(t *testing.T) {
	g := tinyGen(t)
	sim, err := New(baseConfig(scheduler.Recompute{}), g)
	if err != nil {
		t.Fatal(err)
	}
	empty := &workload.Trace{Profile: tinyProfile(), Duration: 10}
	if _, err := sim.RunThroughput(empty); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := sim.RunOpenLoop(empty, 10); err == nil {
		t.Fatal("empty trace accepted in open loop")
	}
}

// TestHotnessAwareBeatsCacheAgnosticUnderPressure: with a small user pool,
// the hotness-aware policy must save at least as much compute as the
// cache-agnostic baseline — the Fig. 8 effect.
func TestHotnessAwareBeatsCacheAgnosticUnderPressure(t *testing.T) {
	g := tinyGen(t)
	plan := fullReplicatePlan(t, 4)
	run := func(policy scheduler.Policy, evict kvcache.EvictPolicy) *Stats {
		cfg := baseConfig(policy)
		cfg.Plan = plan
		cfg.HostMemBytes = plan.ItemBytesPerWorker() + (64 << 20) // tiny user area
		cfg.UserEvict = evict
		sim, err := New(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.RunThroughput(tinyTrace(t, g, 3000))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	aware := run(scheduler.HotnessAware{}, kvcache.EvictMinHotness)
	agnostic := run(scheduler.CacheAgnostic{}, kvcache.EvictLRU)
	if aware.QPS < agnostic.QPS {
		t.Fatalf("hotness-aware QPS %v below cache-agnostic %v under memory pressure",
			aware.QPS, agnostic.QPS)
	}
	if aware.HitRate() < agnostic.HitRate() {
		t.Fatalf("hotness-aware hit rate %v below cache-agnostic %v",
			aware.HitRate(), agnostic.HitRate())
	}
}

func TestStatsAccountingConsistency(t *testing.T) {
	g := tinyGen(t)
	cfg := baseConfig(scheduler.HotnessAware{})
	cfg.Plan = fullReplicatePlan(t, cfg.Nodes)
	sim, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.RunThroughput(tinyTrace(t, g, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if st.ReusedTokens+st.ComputedTokens != st.TotalTokens {
		t.Fatalf("token accounting: %d reused + %d computed != %d total",
			st.ReusedTokens, st.ComputedTokens, st.TotalTokens)
	}
	if st.UserPrefixCount+st.ItemPrefixCount+st.RecomputeCount != st.Requests {
		t.Fatal("decision counts don't sum to requests")
	}
	if st.ComputedFLOPs > st.RecomputeFLOPs {
		t.Fatal("caching made compute worse than recompute")
	}
}
