package server

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bat/internal/ranking"
	"bat/internal/scheduler"
)

// BenchmarkServeBatched measures end-to-end request throughput through the
// serving core at max-batch 1 (the serialized baseline: every request is its
// own execution), 4, and 16, with a concurrent client pool deep enough to
// keep the batch window fed. Rankings are bit-identical across sub-benchmarks
// — only throughput moves. BENCH_serving.json carries the same comparison
// via `batbench -bench-json`.
func BenchmarkServeBatched(b *testing.B) {
	ds, err := ranking.NewDataset(ranking.DatasetConfig{
		Name: "bench", Items: 120, Users: 40, Clusters: 6, LatentDim: 8,
		HistoryMin: 6, HistoryMax: 12, ItemAttrTokens: 1,
		ClusterNoise: 0.15, Candidates: 10, HardNegatives: 2, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	const traceLen = 256
	trace := make([]RankRequest, traceLen)
	for i := range trace {
		cands := make([]int, 6)
		for j := range cands {
			cands[j] = rng.Intn(120)
		}
		trace[i] = RankRequest{UserID: rng.Intn(40), CandidateIDs: cands}
	}

	for _, mb := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("maxbatch=%d", mb), func(b *testing.B) {
			s, err := New(Config{
				Dataset: ds, Variant: ranking.VariantBase,
				Policy:   scheduler.StaticUser{},
				MaxBatch: mb, BatchWindow: 2 * time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			if _, err := s.Rank(trace[0]); err != nil {
				b.Fatal(err)
			}

			const clients = 16
			b.ResetTimer()
			var next int64 = -1
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := atomic.AddInt64(&next, 1)
						if i >= int64(b.N) {
							return
						}
						if _, err := s.RankCtx(context.Background(), trace[i%traceLen]); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(s.Stats().AvgBatchSize, "reqs/batch")
		})
	}
}
