package server

import (
	"strings"
	"testing"
	"time"

	"bat/internal/scheduler"
)

func TestPartitionConfigValidation(t *testing.T) {
	cfg := Config{Dataset: testDataset(t), Partition: "bogus"}
	if _, err := New(cfg); err == nil {
		t.Fatal("bogus partition mode accepted")
	}
}

// TestStaticModeUnchanged pins that the default (static) configuration keeps
// the historical behavior: unbounded items, fixed user cap, no controller.
func TestStaticModeUnchanged(t *testing.T) {
	s := newTestServer(t, nil)
	defer s.Close()
	if _, ok := s.PartitionStatus(); ok {
		t.Fatal("static server reports a partition controller")
	}
	if s.be.itemBudget.Load() != 0 {
		t.Fatalf("static item budget = %d, want 0 (unbounded)", s.be.itemBudget.Load())
	}
	if s.be.userBudget.Load() != 256 {
		t.Fatalf("static user budget = %d, want the 256 default", s.be.userBudget.Load())
	}
}

// TestItemCapEvictsInAdmissionOrder bounds the item class and checks eviction
// keeps the snapshot at the cap.
func TestItemCapEvictsInAdmissionOrder(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxItemCaches = 5 })
	defer s.Close()
	for u := 0; u < 12; u++ {
		if _, err := s.Rank(RankRequest{UserID: u % 30, CandidateIDs: []int{u % 80, (u + 7) % 80, (u + 19) % 80}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.itemCacheCount(); got > 5 {
		t.Fatalf("item cache entries %d exceed the cap 5", got)
	}
}

// TestAdaptivePartitionShiftsBudgets runs the controller at a tight interval
// under an item-heavy request stream and asserts entry budget flows away from
// the idle user class, with metrics and status exposed.
func TestAdaptivePartitionShiftsBudgets(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Partition = "adaptive"
		c.MaxUserCaches = 100
		c.MaxItemCaches = 100
		c.PartitionInterval = 5 * time.Millisecond
		// Force the item-prefix path for every request so the item class
		// shows all the demand.
		c.Policy = scheduler.StaticItem{}
	})
	defer s.Close()
	if _, ok := s.PartitionStatus(); !ok {
		t.Fatal("adaptive server has no controller")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for u := 0; u < 10; u++ {
			if _, err := s.Rank(RankRequest{UserID: u, CandidateIDs: []int{u * 7 % 80, (u*7 + 1) % 80, (u*7 + 2) % 80}}); err != nil {
				t.Fatal(err)
			}
		}
		if s.be.itemBudget.Load() > 100 {
			break
		}
	}
	if got := s.be.itemBudget.Load(); got <= 100 {
		t.Fatalf("item budget did not grow under item-only demand: %d", got)
	}
	if got := s.be.userBudget.Load(); got >= 100 {
		t.Fatalf("user budget did not shrink: %d", got)
	}
	if total := s.be.itemBudget.Load() + s.be.userBudget.Load(); total != 200 {
		t.Fatalf("combined budget drifted: %d", total)
	}
	st, _ := s.PartitionStatus()
	if st.Moves == 0 || len(st.Classes) != 2 {
		t.Fatalf("controller status: %+v", st)
	}
	// bat_partition_* metrics appear on /metrics.
	var sb strings.Builder
	s.Observer().Registry().WriteText(&sb)
	for _, want := range []string{"bat_partition_capacity_bytes", "bat_partition_moved_bytes_total"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}
