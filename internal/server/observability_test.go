package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bat/internal/serving"
)

// TestMetricsEndpoint: GET /metrics must expose every lifecycle stage's
// latency histogram plus the serving counters, in plain-text exposition
// format.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 6; i++ {
		if _, code := postRank(t, ts, RankRequest{UserID: i, CandidateIDs: obsCands(i)}); code != http.StatusOK {
			t.Fatalf("rank %d status %d", i, code)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, stage := range serving.LifecycleStages {
		if !strings.Contains(out, fmt.Sprintf(`bat_stage_latency_seconds{stage=%q`, stage)) {
			t.Errorf("/metrics missing stage histogram for %q", stage)
		}
	}
	// Stages the batch loop always traverses must have recorded samples.
	for _, stage := range []string{"queue", "window", "plan", "execute", "commit"} {
		want := fmt.Sprintf(`bat_stage_latency_seconds_count{stage=%q} 6`, stage)
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}
	for _, want := range []string{
		"bat_requests_total 6",
		"bat_request_latency_seconds_count 6",
		"bat_admission_admitted_total 6",
		"bat_item_cache_entries",
		"bat_user_cache_entries",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Non-GET is rejected.
	if resp, err := http.Post(ts.URL+"/metrics", "text/plain", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST /metrics status %d", resp.StatusCode)
		}
	}
}

// TestDebugTraceEndpoint: GET /debug/trace returns the retained request
// traces newest-first, with per-stage spans; HTTP-admitted requests carry an
// admit span.
func TestDebugTraceEndpoint(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.TraceRing = 64 })
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 4; i++ {
		if _, code := postRank(t, ts, RankRequest{UserID: i, CandidateIDs: obsCands(i)}); code != http.StatusOK {
			t.Fatalf("rank status %d", code)
		}
	}

	var tr serving.TraceResponse
	getJSON(t, ts.URL+"/debug/trace", &tr)
	if len(tr.Traces) != 4 {
		t.Fatalf("traces %d, want 4", len(tr.Traces))
	}
	for i := 1; i < len(tr.Traces); i++ {
		if tr.Traces[i].Seq >= tr.Traces[i-1].Seq {
			t.Fatal("traces not newest-first")
		}
	}
	top := tr.Traces[0]
	if top.Outcome != "ok" || top.BatchSize < 1 || top.TotalMs <= 0 {
		t.Fatalf("trace header %+v", top)
	}
	stages := map[string]bool{}
	for _, sp := range top.Spans {
		stages[sp.Stage] = true
		if sp.DurMs < 0 {
			t.Fatalf("negative span %+v", sp)
		}
	}
	// HTTP requests pass admission, so all six lifecycle stages appear.
	for _, stage := range serving.LifecycleStages {
		if !stages[stage] {
			t.Errorf("trace missing stage %q (have %v)", stage, stages)
		}
	}

	// ?n caps the list; a bad n is a 400; POST is a 405.
	getJSON(t, ts.URL+"/debug/trace?n=2", &tr)
	if len(tr.Traces) != 2 {
		t.Fatalf("?n=2 returned %d traces", len(tr.Traces))
	}
	if resp, err := http.Get(ts.URL + "/debug/trace?n=bogus"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad n status %d", resp.StatusCode)
		}
	}
	if resp, err := http.Post(ts.URL+"/debug/trace", "application/json", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST /debug/trace status %d", resp.StatusCode)
		}
	}
}

// TestTraceSpansTileWallClock is the acceptance criterion: each request's
// lifecycle span sum must agree with its end-to-end wall time within 5%
// (plus a small absolute floor for scheduler jitter on micro-stages).
func TestTraceSpansTileWallClock(t *testing.T) {
	s := newTestServer(t, nil)
	defer s.Close()

	const requests = 30
	for i := 0; i < requests; i++ {
		u := i % 30
		wallStart := time.Now()
		if _, err := s.RankCtx(context.Background(), RankRequest{UserID: u, CandidateIDs: obsCands(i)}); err != nil {
			t.Fatal(err)
		}
		wall := time.Since(wallStart).Seconds() * 1e3
		tr := s.Observer().Ring().Snapshot(1)[0]
		// The trace closes just before the response channel handoff, so its
		// total is bounded by (and close to) the caller-observed wall time.
		if tr.TotalMs > wall {
			t.Fatalf("req %d: trace total %.3fms exceeds wall %.3fms", i, tr.TotalMs, wall)
		}
	}

	traces := s.Observer().Ring().Snapshot(0)
	if len(traces) != requests {
		t.Fatalf("retained %d traces, want %d", len(traces), requests)
	}
	for _, tr := range traces {
		sum := 0.0
		for _, sp := range tr.Spans {
			if sp.Stage == serving.StageFetch {
				continue // nested detail inside plan, not a lifecycle stage
			}
			sum += sp.DurMs
		}
		tol := 0.05*tr.TotalMs + 0.3 // 5% + 300µs jitter floor
		if diff := math.Abs(sum - tr.TotalMs); diff > tol {
			t.Errorf("seq %d: span sum %.3fms vs total %.3fms (diff %.3f > tol %.3f)\nspans: %+v",
				tr.Seq, sum, tr.TotalMs, diff, tol, tr.Spans)
		}
	}
}

// TestStageQuantilesReachExperiments: the observer's stage quantiles are the
// experiments' data source; after traffic they must be positive and ordered.
func TestStageQuantilesReachExperiments(t *testing.T) {
	s := newTestServer(t, nil)
	defer s.Close()
	for i := 0; i < 8; i++ {
		u := i % 30
		if _, err := s.Rank(RankRequest{UserID: u, CandidateIDs: obsCands(i)}); err != nil {
			t.Fatal(err)
		}
	}
	obs := s.Observer()
	if p50 := obs.StageQuantile(serving.StageExecute, 0.5); p50 <= 0 {
		t.Fatalf("execute p50 %g, want > 0", p50)
	}
	p50 := obs.StageQuantile(serving.StageE2E, 0.5)
	p99 := obs.StageQuantile(serving.StageE2E, 0.99)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("e2e quantiles p50=%g p99=%g", p50, p99)
	}
}

// obsCands builds a deterministic candidate set inside the test dataset's
// 80-item corpus.
func obsCands(i int) []int {
	out := make([]int, 8)
	for j := range out {
		out[j] = (i*7 + j*11) % 80
	}
	return out
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
