// Package server exposes the BAT serving mechanism as a real HTTP service:
// an executable transformer (internal/ranking's constructed GR), an
// in-process disaggregated cache holding per-item and per-user KV tensors,
// a hotness-aware prefix decision per request, and a JSON API. It is a thin
// adapter over the shared serving core (internal/serving), which owns the
// request lifecycle and the continuous-batching loop; the server's job is
// HTTP parsing plus the local cache backend: lock-free snapshot reads at
// plan time, serial admissions/evictions at batch boundaries.
package server

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bat/internal/admission"
	"bat/internal/bipartite"
	"bat/internal/cachemeta"
	"bat/internal/kvcache"
	"bat/internal/model"
	"bat/internal/partition"
	"bat/internal/ranking"
	"bat/internal/scheduler"
	"bat/internal/serving"
	"bat/internal/tensor"
)

// RankRequest and RankResponse are the shared serving types; aliased so the
// server API keeps its historical names.
type (
	RankRequest  = serving.RankRequest
	RankResponse = serving.RankResponse
)

// Config assembles a server.
type Config struct {
	Dataset *ranking.Dataset
	Variant ranking.ModelVariant
	// MaxUserCaches caps the user-cache entries held in memory (default 256).
	MaxUserCaches int
	// MaxItemCaches caps the item-cache entries held in memory (0 =
	// unbounded, the historical behavior). Items beyond the cap are evicted
	// in admission order at batch boundaries.
	MaxItemCaches int
	// Partition selects the capacity split between the user and item cache
	// classes: "static" (default) keeps MaxUserCaches/MaxItemCaches fixed;
	// "adaptive" runs a partition.Controller that re-divides the combined
	// entry budget by marginal hit-rate utility. Adaptive requires a bounded
	// MaxItemCaches (defaulted to 4096 when unset).
	Partition string
	// PartitionInterval is the adaptive controller's tick period (default 2s).
	PartitionInterval time.Duration
	// HotnessWindowSec configures the frequency estimator (default 300).
	HotnessWindowSec float64
	// PrecomputeItems builds every item's KV cache at startup (the paper's
	// offline item-cache initialization); otherwise items are cached on
	// first use.
	PrecomputeItems bool
	// TopK is the ranked-list length returned (default 10).
	TopK int
	// Policy decides the prefix; nil means hotness-aware.
	Policy scheduler.Policy
	// MultiDisc serves with the §4.2 multi-discriminant extension: one
	// discriminant token per candidate instead of a single shared one.
	MultiDisc bool
	// PageTokens, when positive, stores every cached prefix in a shared
	// PagedAttention-style BlockArena with pages of that many tokens, so
	// concurrent contexts share block-aligned prefix pages copy-free.
	PageTokens int
	// Admission tunes the overload ladder (in-flight bound, wait queue,
	// default deadline, degrade threshold). Zero value = defaults.
	Admission admission.Config
	// DegradedMaxCandidates caps the candidate set served in degraded mode
	// (default 16).
	DegradedMaxCandidates int
	// BatchWindow, WindowPolicy, and MaxBatch tune the serving core's
	// batch-forming loop (see serving.Config); zero values take the core
	// defaults (adaptive window).
	BatchWindow  time.Duration
	WindowPolicy string
	MaxBatch     int
	// TraceRing sizes the retained request-trace ring served at
	// GET /debug/trace (default 128).
	TraceRing int
	// BatchHook, when non-nil, runs before each batch executes (tests).
	BatchHook func(size int)
	// Now supplies time (injectable for tests); nil means time.Now.
	Now func() time.Time
}

// Server is the ranking service.
type Server struct {
	cfg   Config
	core  *serving.Core
	be    *localBackend
	arena *model.BlockArena // nil unless cfg.PageTokens > 0 (be.arena)
	part  *partition.Controller
}

// New builds a server.
func New(cfg Config) (*Server, error) {
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("server: nil dataset")
	}
	if cfg.MaxUserCaches == 0 {
		cfg.MaxUserCaches = 256
	}
	if cfg.HotnessWindowSec == 0 {
		cfg.HotnessWindowSec = 300
	}
	if cfg.Policy == nil {
		cfg.Policy = scheduler.HotnessAware{}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	mode := partition.Static
	if cfg.Partition != "" {
		var err error
		if mode, err = partition.ParseMode(cfg.Partition); err != nil {
			return nil, err
		}
	}
	if mode == partition.Adaptive && cfg.MaxItemCaches == 0 {
		// Adaptive re-division needs a bounded item class to trade against.
		cfg.MaxItemCaches = 4096
	}
	if cfg.PartitionInterval == 0 {
		cfg.PartitionInterval = 2 * time.Second
	}
	r, err := ranking.NewRanker(cfg.Dataset, cfg.Variant)
	if err != nil {
		return nil, err
	}
	retr, err := ranking.NewRetriever(cfg.Dataset, 0.9)
	if err != nil {
		return nil, err
	}
	be := &localBackend{
		cfg:   &cfg,
		meta:  cachemeta.New(cfg.HotnessWindowSec),
		start: cfg.Now(),
	}
	be.userBudget.Store(int64(cfg.MaxUserCaches))
	be.itemBudget.Store(int64(cfg.MaxItemCaches))
	if cfg.PageTokens > 0 {
		arena, err := model.NewBlockArena(r.W.Config(), cfg.PageTokens)
		if err != nil {
			return nil, err
		}
		be.arena = arena
	}
	state := &localState{
		items: make(map[int]*model.KVCache),
		users: make(map[int]*model.KVCache),
	}
	if cfg.PrecomputeItems {
		// Item caches are independent forwards, so build them across the
		// tensor worker pool. Each goroutine computes into private contiguous
		// storage; admission into the shared (non-thread-safe) arena happens
		// serially afterwards. Same caches as the serial loop, just faster.
		flat := make([]*model.KVCache, len(cfg.Dataset.ItemTokens))
		tensor.Parallel(len(flat), func(i int) {
			flat[i] = bipartite.ComputeItemCache(r.W, cfg.Dataset.ItemTokens[i])
		})
		for i, c := range flat {
			state.items[i] = be.adoptCache(c)
			state.itemLRU = append(state.itemLRU, i)
		}
	}
	be.snap.Store(state)
	core, err := serving.NewCore(serving.Config{
		Dataset:               cfg.Dataset,
		Ranker:                r,
		Retriever:             retr,
		TopK:                  cfg.TopK,
		MultiDisc:             cfg.MultiDisc,
		DegradedMaxCandidates: cfg.DegradedMaxCandidates,
		Admission:             cfg.Admission,
		BatchWindow:           cfg.BatchWindow,
		WindowPolicy:          cfg.WindowPolicy,
		MaxBatch:              cfg.MaxBatch,
		TraceRing:             cfg.TraceRing,
		BatchHook:             cfg.BatchHook,
	}, be)
	if err != nil {
		return nil, err
	}
	// Scrape-time gauges for the local cache pool (lock-free snapshot reads).
	reg := core.Observer().Registry()
	reg.GaugeFunc("bat_item_cache_entries", func() float64 { return float64(len(be.snap.Load().items)) })
	reg.GaugeFunc("bat_user_cache_entries", func() float64 { return float64(len(be.snap.Load().users)) })
	srv := &Server{cfg: cfg, core: core, be: be, arena: be.arena}
	if mode == partition.Adaptive {
		ctrl, err := partition.New(partition.Config{Interval: cfg.PartitionInterval},
			partition.Class{
				Name:        "user",
				Stats:       be.userClassStats,
				Capacity:    be.userBudget.Load,
				SetCapacity: func(n int64) int64 { return be.setBudget(&be.userBudget, n) },
			},
			partition.Class{
				Name:        "item",
				Stats:       be.itemClassStats,
				Capacity:    be.itemBudget.Load,
				SetCapacity: func(n int64) int64 { return be.setBudget(&be.itemBudget, n) },
			})
		if err != nil {
			core.Close()
			return nil, err
		}
		ctrl.RegisterMetrics(reg)
		ctrl.Run()
		srv.part = ctrl
	}
	return srv, nil
}

// Close stops the serving core's batch loop and the partition controller.
func (s *Server) Close() {
	if s.part != nil {
		s.part.Stop()
	}
	s.core.Close()
}

// PartitionStatus reports the adaptive controller's split; the second return
// is false when the server runs a static partition.
func (s *Server) PartitionStatus() (partition.Status, bool) {
	if s.part == nil {
		return partition.Status{}, false
	}
	return s.part.Status(), true
}

// Handler returns the HTTP API:
//
//	POST /v1/rank      {"user_id": u, "candidate_ids": [...]}
//	GET  /v1/stats
//	GET  /metrics      per-stage latency histograms + lifecycle counters (text)
//	GET  /debug/trace  last-N request traces (JSON; ?n= caps the list)
//	GET  /healthz
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/rank", s.core.HandleRank)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.core.HandleMetrics)
	mux.HandleFunc("/debug/trace", s.core.HandleTraces)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Observer exposes the serving core's observability state (stage histograms
// and the trace ring) for experiments and tests.
func (s *Server) Observer() *serving.Observer { return s.core.Observer() }

// Rank serves one ranking request (the API handler's core, callable
// directly by examples and tests). It never cancels; use RankCtx to bound
// execution by a context.
func (s *Server) Rank(req RankRequest) (*RankResponse, error) {
	return s.core.Rank(req)
}

// RankCtx is Rank bounded by a context: the deadline and cancellation are
// polled at batch phase boundaries, so an abandoned request stops burning
// compute instead of running to completion.
func (s *Server) RankCtx(ctx context.Context, req RankRequest) (*RankResponse, error) {
	return s.core.RankCtx(ctx, req)
}

// StatsResponse is the /v1/stats reply.
type StatsResponse struct {
	Requests         int64   `json:"requests"`
	UserPrefix       int64   `json:"user_prefix_requests"`
	ItemPrefix       int64   `json:"item_prefix_requests"`
	ReusedTokens     int64   `json:"reused_tokens"`
	ComputedTokens   int64   `json:"computed_tokens"`
	DedupedTokens    int64   `json:"deduped_tokens"`
	TokenHitRate     float64 `json:"token_hit_rate"`
	ItemCacheEntries int     `json:"item_cache_entries"`
	UserCacheEntries int     `json:"user_cache_entries"`
	// Admission is the overload ladder's front door; DegradedRequests counts
	// retrieval-fallback responses and DeadlineAborts counts serves canceled
	// mid-execution by an expired deadline or disconnected client.
	Admission        admission.Stats `json:"admission"`
	DegradedRequests int64           `json:"degraded_requests"`
	DeadlineAborts   int64           `json:"deadline_aborts"`
	// Batches counts packed executions; AvgBatchSize is the mean requests
	// per batch; MaxBatchSize the largest batch formed.
	Batches      int64   `json:"batches"`
	AvgBatchSize float64 `json:"avg_batch_size"`
	MaxBatchSize int64   `json:"max_batch_size"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	serving.WriteJSON(w, s.Stats())
}

// Stats snapshots the serving counters (the /v1/stats payload).
func (s *Server) Stats() StatsResponse {
	cs := s.core.Stats()
	state := s.be.snap.Load()
	resp := StatsResponse{
		Requests:         cs.Requests,
		UserPrefix:       cs.UserPrefix,
		ItemPrefix:       cs.ItemPrefix,
		ReusedTokens:     cs.ReusedTokens,
		ComputedTokens:   cs.ComputedTokens,
		DedupedTokens:    cs.DedupedTokens,
		ItemCacheEntries: len(state.items),
		UserCacheEntries: len(state.users),
		Admission:        cs.Admission,
		DegradedRequests: cs.DegradedRequests,
		DeadlineAborts:   cs.DeadlineAborts,
		Batches:          cs.Batches,
		MaxBatchSize:     cs.MaxBatchSize,
	}
	if total := cs.ReusedTokens + cs.ComputedTokens; total > 0 {
		resp.TokenHitRate = float64(cs.ReusedTokens) / float64(total)
	}
	if cs.Batches > 0 {
		resp.AvgBatchSize = float64(cs.BatchedRequests) / float64(cs.Batches)
	}
	return resp
}

// itemCacheCount and userCacheCount read the current snapshot (tests).
func (s *Server) itemCacheCount() int { return len(s.be.snap.Load().items) }
func (s *Server) userCacheCount() int { return len(s.be.snap.Load().users) }

// localState is one immutable cache-pool snapshot: plans read it lock-free;
// commits replace it wholesale at batch boundaries (RCU style).
type localState struct {
	items   map[int]*model.KVCache
	users   map[int]*model.KVCache
	userLRU []int // oldest first; small cap keeps O(n) fine
	itemLRU []int // admission order, oldest first (used when items are capped)
}

// localBackend is the in-process cache pool behind the serving core.
type localBackend struct {
	cfg   *Config
	arena *model.BlockArena // nil unless cfg.PageTokens > 0
	start time.Time
	snap  atomic.Pointer[localState]

	// Per-class entry budgets. Static mode pins them at the configured
	// Max*Caches; adaptive mode re-divides them from the controller's tick
	// goroutine, so Plan/Commit read them atomically.
	userBudget atomic.Int64
	itemBudget atomic.Int64 // 0 = unbounded (static only)

	// Token-weighted per-class hit/miss counters: the marginal-utility
	// signal. Counted at plan time against the snapshot the plan used.
	userHitTokens  atomic.Int64
	userMissTokens atomic.Int64
	itemHitTokens  atomic.Int64
	itemMissTokens atomic.Int64

	// metaMu guards the hotness estimator (cachemeta.Service is not safe for
	// concurrent use; concurrent Plan calls serialize only this small part).
	metaMu sync.Mutex
	meta   *cachemeta.Service
}

func (b *localBackend) userClassStats() partition.ClassStats {
	return partition.ClassStats{Hits: b.userHitTokens.Load(), Misses: b.userMissTokens.Load()}
}

func (b *localBackend) itemClassStats() partition.ClassStats {
	return partition.ClassStats{Hits: b.itemHitTokens.Load(), Misses: b.itemMissTokens.Load()}
}

// setBudget applies a controller resize. Entry budgets have no pinned
// footprint, so any request >= 1 applies fully; eviction down to a shrunken
// budget happens at the next Commit.
func (b *localBackend) setBudget(budget *atomic.Int64, n int64) int64 {
	if n < 1 {
		n = 1
	}
	budget.Store(n)
	return n
}

// adoptCache re-homes a freshly computed cache into the arena when paging is
// enabled, so stored prefixes live in shared pages. Arena operations are not
// thread-safe; they run only at startup and inside Commit (one goroutine).
func (b *localBackend) adoptCache(c *model.KVCache) *model.KVCache {
	if b.arena == nil {
		return c
	}
	return b.arena.Adopt(c)
}

// Plan decides one request's prefix organization from the current snapshot.
// It runs concurrently with the other plans of the batch and mutates nothing
// but the (mutex-guarded) hotness estimator.
func (b *localBackend) Plan(ctx context.Context, req serving.RankRequest) (*serving.Plan, error) {
	ds := b.cfg.Dataset
	state := b.snap.Load()
	now := b.cfg.Now().Sub(b.start).Seconds()
	userKey := kvcache.EntryKey{Kind: kvcache.UserEntry, ID: uint64(req.UserID)}
	b.metaMu.Lock()
	hotness := b.meta.RecordAccess(userKey, now)
	minHot := b.minUserHotness(state, now)
	b.metaMu.Unlock()

	userTokens := len(ds.UserHistory[req.UserID])
	itemTokens := 0
	for _, it := range req.CandidateIDs {
		itemTokens += len(ds.ItemTokens[it])
	}
	_, cached := state.users[req.UserID]
	dec := b.cfg.Policy.Decide(scheduler.Context{
		UserTokens:           userTokens,
		ItemTokens:           itemTokens,
		UserHotness:          hotness,
		UserCached:           cached,
		UserPoolHasSpace:     int64(len(state.users)) < b.userBudget.Load(),
		MinCachedHotness:     minHot,
		HaveMinCachedHotness: len(state.users) > 0,
	})

	plan := &serving.Plan{Kind: dec.Kind, Recompute: dec.Recompute, AdmitUser: dec.AdmitUser}
	if dec.Recompute {
		plan.Kind = bipartite.UserPrefix
	} else if plan.Kind == bipartite.UserPrefix {
		plan.Caches.User = state.users[req.UserID]
		if plan.Caches.User != nil {
			b.userHitTokens.Add(int64(userTokens))
		} else {
			b.userMissTokens.Add(int64(userTokens))
		}
	} else {
		plan.Caches.Items = make(map[int]*model.KVCache, len(req.CandidateIDs))
		for slot, it := range req.CandidateIDs {
			if c, ok := state.items[it]; ok {
				plan.Caches.Items[slot] = c
				b.itemHitTokens.Add(int64(len(ds.ItemTokens[it])))
			} else {
				b.itemMissTokens.Add(int64(len(ds.ItemTokens[it])))
			}
		}
	}
	return plan, nil
}

// Commit applies the batch's cache admissions and LRU evictions serially at
// the batch boundary: build the next snapshot copy-on-write, publish it
// atomically, release evicted caches. Safe because every cache reader (the
// next batch's plans and execution) only starts after the new snapshot is
// visible, and the previous batch's readers are already done.
func (b *localBackend) Commit(entries []serving.CommitEntry) {
	cur := b.snap.Load()
	userBudget, itemBudget := b.userBudget.Load(), b.itemBudget.Load()
	// Steady-state batches (all cache hits, nothing to admit) are the common
	// case; detect them against the current snapshot before paying for the
	// full copy-on-write rebuild. A partition shrink since the last commit
	// also forces a rebuild so the new budgets take effect.
	admits := int64(len(cur.users)) > userBudget ||
		(itemBudget > 0 && int64(len(cur.items)) > itemBudget)
	for _, e := range entries {
		if admits {
			break
		}
		if e.Plan.Recompute {
			continue
		}
		if e.Run.NewUserCache != nil && e.Plan.AdmitUser {
			if _, ok := cur.users[e.Req.UserID]; !ok {
				admits = true
				break
			}
		}
		for slot := range e.Run.NewItemCaches {
			if cur.items[e.Req.CandidateIDs[slot]] == nil {
				admits = true
				break
			}
		}
	}
	if !admits {
		return
	}
	next := &localState{
		items:   make(map[int]*model.KVCache, len(cur.items)+len(entries)),
		users:   make(map[int]*model.KVCache, len(cur.users)+1),
		userLRU: append([]int(nil), cur.userLRU...),
		itemLRU: append([]int(nil), cur.itemLRU...),
	}
	for k, v := range cur.items {
		next.items[k] = v
	}
	for k, v := range cur.users {
		next.users[k] = v
	}
	changed := false
	var evicted []*model.KVCache
	for _, e := range entries {
		if e.Plan.Recompute {
			continue
		}
		if e.Run.NewUserCache != nil && e.Plan.AdmitUser {
			// First admission wins when a batch carried the same user twice:
			// both runs computed bit-identical caches, so the duplicate is
			// dropped instead of adopted-then-leaked.
			u := e.Req.UserID
			if _, ok := next.users[u]; !ok {
				next.userLRU = append(next.userLRU, u)
				next.users[u] = b.adoptCache(e.Run.NewUserCache)
				changed = true
			}
		}
		for slot, c := range e.Run.NewItemCaches {
			if id := e.Req.CandidateIDs[slot]; next.items[id] == nil {
				next.items[id] = b.adoptCache(c)
				next.itemLRU = append(next.itemLRU, id)
				changed = true
			}
		}
	}
	// Enforce the (possibly freshly re-divided) per-class budgets.
	for int64(len(next.users)) > userBudget && len(next.userLRU) > 0 {
		victim := next.userLRU[0]
		next.userLRU = next.userLRU[1:]
		if old, ok := next.users[victim]; ok {
			evicted = append(evicted, old)
			changed = true
		}
		delete(next.users, victim)
	}
	for itemBudget > 0 && int64(len(next.items)) > itemBudget && len(next.itemLRU) > 0 {
		victim := next.itemLRU[0]
		next.itemLRU = next.itemLRU[1:]
		if old, ok := next.items[victim]; ok {
			evicted = append(evicted, old)
			changed = true
		}
		delete(next.items, victim)
	}
	if !changed {
		return
	}
	b.snap.Store(next)
	for _, c := range evicted {
		c.Release() // return arena pages; no-op for contiguous storage
	}
}

// minUserHotness scans the snapshot's cached users for the coldest one.
// Caller holds metaMu.
func (b *localBackend) minUserHotness(state *localState, now float64) float64 {
	min := 0.0
	first := true
	for u := range state.users {
		h := b.meta.Hotness(kvcache.EntryKey{Kind: kvcache.UserEntry, ID: uint64(u)}, now)
		if first || h < min {
			min, first = h, false
		}
	}
	return min
}
