// Package server exposes the BAT serving mechanism as a real HTTP service:
// an executable transformer (internal/ranking's constructed GR), an
// in-process disaggregated cache holding per-item and per-user KV tensors,
// a hotness-aware prefix decision per request, and a JSON API. It is the
// end-to-end runnable demonstration that the mechanisms the simulator
// accounts for actually serve requests.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"bat/internal/admission"
	"bat/internal/bipartite"
	"bat/internal/cachemeta"
	"bat/internal/kvcache"
	"bat/internal/model"
	"bat/internal/ranking"
	"bat/internal/scheduler"
	"bat/internal/tensor"
)

// Config assembles a server.
type Config struct {
	Dataset *ranking.Dataset
	Variant ranking.ModelVariant
	// MaxUserCaches caps the user-cache entries held in memory (default 256).
	MaxUserCaches int
	// HotnessWindowSec configures the frequency estimator (default 300).
	HotnessWindowSec float64
	// PrecomputeItems builds every item's KV cache at startup (the paper's
	// offline item-cache initialization); otherwise items are cached on
	// first use.
	PrecomputeItems bool
	// TopK is the ranked-list length returned (default 10).
	TopK int
	// Policy decides the prefix; nil means hotness-aware.
	Policy scheduler.Policy
	// MultiDisc serves with the §4.2 multi-discriminant extension: one
	// discriminant token per candidate instead of a single shared one.
	MultiDisc bool
	// PageTokens, when positive, stores every cached prefix in a shared
	// PagedAttention-style BlockArena with pages of that many tokens, so
	// concurrent contexts share block-aligned prefix pages copy-free.
	PageTokens int
	// Admission tunes the overload ladder (in-flight bound, wait queue,
	// default deadline, degrade threshold). Zero value = defaults.
	Admission admission.Config
	// DegradedMaxCandidates caps the candidate set served in degraded mode
	// (default 16).
	DegradedMaxCandidates int
	// Now supplies time (injectable for tests); nil means time.Now.
	Now func() time.Time
}

// Server is the ranking service.
type Server struct {
	cfg    Config
	ranker *ranking.Ranker
	retr   *ranking.Retriever
	adm    *admission.Controller
	arena  *model.BlockArena // nil unless cfg.PageTokens > 0

	mu         sync.Mutex
	itemCaches map[int]*model.KVCache
	userCaches map[int]*model.KVCache
	userLRU    []int // oldest first; small cap keeps O(n) fine
	meta       *cachemeta.Service
	start      time.Time

	requests, userPrefix, itemPrefix int64
	reusedTokens, computedTokens     int64
	degraded, deadlineAborts         int64
}

// New builds a server.
func New(cfg Config) (*Server, error) {
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("server: nil dataset")
	}
	if cfg.MaxUserCaches == 0 {
		cfg.MaxUserCaches = 256
	}
	if cfg.HotnessWindowSec == 0 {
		cfg.HotnessWindowSec = 300
	}
	if cfg.TopK == 0 {
		cfg.TopK = 10
	}
	if cfg.Policy == nil {
		cfg.Policy = scheduler.HotnessAware{}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.DegradedMaxCandidates <= 0 {
		cfg.DegradedMaxCandidates = 16
	}
	r, err := ranking.NewRanker(cfg.Dataset, cfg.Variant)
	if err != nil {
		return nil, err
	}
	retr, err := ranking.NewRetriever(cfg.Dataset, 0.9)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		ranker:     r,
		retr:       retr,
		adm:        admission.NewController(cfg.Admission),
		itemCaches: make(map[int]*model.KVCache),
		userCaches: make(map[int]*model.KVCache),
		meta:       cachemeta.New(cfg.HotnessWindowSec),
		start:      cfg.Now(),
	}
	if cfg.PageTokens > 0 {
		arena, err := model.NewBlockArena(r.W.Config(), cfg.PageTokens)
		if err != nil {
			return nil, err
		}
		s.arena = arena
	}
	if cfg.PrecomputeItems {
		// Item caches are independent forwards, so build them across the
		// tensor worker pool. Each goroutine computes into private contiguous
		// storage; admission into the shared (non-thread-safe) arena happens
		// serially afterwards. Same caches as the serial loop, just faster.
		flat := make([]*model.KVCache, len(cfg.Dataset.ItemTokens))
		tensor.Parallel(len(flat), func(i int) {
			flat[i] = bipartite.ComputeItemCache(r.W, cfg.Dataset.ItemTokens[i])
		})
		for i, c := range flat {
			s.itemCaches[i] = s.admitCache(c)
		}
	}
	return s, nil
}

// admitCache re-homes a freshly computed cache into the arena when paging is
// enabled, so stored prefixes live in shared pages.
func (s *Server) admitCache(c *model.KVCache) *model.KVCache {
	if s.arena == nil {
		return c
	}
	return s.arena.Adopt(c)
}

// Handler returns the HTTP API:
//
//	POST /v1/rank   {"user_id": u, "candidate_ids": [...]}
//	GET  /v1/stats
//	GET  /healthz
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/rank", s.handleRank)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// RankRequest is the /v1/rank payload.
type RankRequest struct {
	UserID       int   `json:"user_id"`
	CandidateIDs []int `json:"candidate_ids"`
}

// RankResponse is the /v1/rank reply.
type RankResponse struct {
	// Ranking lists the top-K candidate item IDs, best first.
	Ranking []int `json:"ranking"`
	// Prefix reports which attention pattern served the request.
	Prefix string `json:"prefix"`
	// ReusedTokens and ComputedTokens account this request's prefill work.
	ReusedTokens   int `json:"reused_tokens"`
	ComputedTokens int `json:"computed_tokens"`
	// Degraded marks a response served by the retrieval-similarity fallback
	// under overload; DegradeReason says why.
	Degraded      bool   `json:"degraded,omitempty"`
	DegradeReason string `json:"degrade_reason,omitempty"`
}

// StatsResponse is the /v1/stats reply.
type StatsResponse struct {
	Requests         int64   `json:"requests"`
	UserPrefix       int64   `json:"user_prefix_requests"`
	ItemPrefix       int64   `json:"item_prefix_requests"`
	ReusedTokens     int64   `json:"reused_tokens"`
	ComputedTokens   int64   `json:"computed_tokens"`
	TokenHitRate     float64 `json:"token_hit_rate"`
	ItemCacheEntries int     `json:"item_cache_entries"`
	UserCacheEntries int     `json:"user_cache_entries"`
	// Admission is the overload ladder's front door; DegradedRequests counts
	// retrieval-fallback responses and DeadlineAborts counts serves canceled
	// mid-execution by an expired deadline or disconnected client.
	Admission        admission.Stats `json:"admission"`
	DegradedRequests int64           `json:"degraded_requests"`
	DeadlineAborts   int64           `json:"deadline_aborts"`
}

// handleRank runs the overload ladder in front of the model: admit (bounded
// in-flight + wait queue), degrade (retrieval fallback under queue pressure),
// or shed (429 + Retry-After). The request context — carrying the client
// disconnect and the Deadline-Ms budget — is threaded through model
// execution, so abandoned requests stop burning compute.
func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req RankRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.adm.Deadline(r))
	defer cancel()
	grant, err := s.adm.Acquire(ctx)
	if err != nil {
		reason := admission.ReasonQueueFull
		if errors.Is(err, admission.ErrDeadline) {
			reason = admission.ReasonDeadline
		}
		s.adm.Shed(w, reason)
		return
	}
	defer grant.Release()

	var resp *RankResponse
	if s.adm.ShouldDegrade(grant.QueuedBehind) {
		resp, err = s.rankDegraded(req, "queue-pressure")
	} else {
		resp, err = s.RankCtx(ctx, req)
	}
	if err != nil {
		if ctx.Err() != nil {
			s.mu.Lock()
			s.deadlineAborts++
			s.mu.Unlock()
			s.adm.Shed(w, admission.ReasonDeadline)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// validate rejects caller mistakes; both serving paths apply it.
func (s *Server) validate(req RankRequest) error {
	ds := s.cfg.Dataset
	if req.UserID < 0 || req.UserID >= len(ds.UserHistory) {
		return fmt.Errorf("server: unknown user %d", req.UserID)
	}
	if len(req.CandidateIDs) == 0 {
		return fmt.Errorf("server: empty candidate set")
	}
	for _, it := range req.CandidateIDs {
		if it < 0 || it >= len(ds.ItemTokens) {
			return fmt.Errorf("server: unknown item %d", it)
		}
	}
	return nil
}

// rankDegraded serves the overload fallback: cap the candidate set and score
// by retrieval similarity — no transformer forward, no cache mutation, no
// lock contention with full serves beyond the counters.
func (s *Server) rankDegraded(req RankRequest, reason string) (*RankResponse, error) {
	if err := s.validate(req); err != nil {
		return nil, err
	}
	cands := req.CandidateIDs
	if len(cands) > s.cfg.DegradedMaxCandidates {
		cands = cands[:s.cfg.DegradedMaxCandidates]
	}
	scores := s.retr.ScoreCandidates(req.UserID, cands)
	order := tensor.TopK(scores, len(scores))
	k := s.cfg.TopK
	if k > len(order) {
		k = len(order)
	}
	top := make([]int, k)
	for i := 0; i < k; i++ {
		top[i] = cands[order[i]]
	}
	s.mu.Lock()
	s.requests++
	s.degraded++
	s.mu.Unlock()
	return &RankResponse{
		Ranking:       top,
		Prefix:        "degraded-retrieval",
		Degraded:      true,
		DegradeReason: reason,
	}, nil
}

// Rank serves one ranking request (the API handler's core, callable
// directly by examples and tests). It never cancels; use RankCtx to bound
// execution by a context.
func (s *Server) Rank(req RankRequest) (*RankResponse, error) {
	return s.RankCtx(context.Background(), req)
}

// RankCtx is Rank bounded by a context: the deadline and cancellation are
// polled at model phase boundaries, so an abandoned request releases the
// server lock early instead of running to completion.
func (s *Server) RankCtx(ctx context.Context, req RankRequest) (*RankResponse, error) {
	ds := s.cfg.Dataset
	if err := s.validate(req); err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	now := s.cfg.Now().Sub(s.start).Seconds()
	userKey := kvcache.EntryKey{Kind: kvcache.UserEntry, ID: uint64(req.UserID)}
	hotness := s.meta.RecordAccess(userKey, now)

	userTokens := len(ds.UserHistory[req.UserID])
	itemTokens := 0
	for _, it := range req.CandidateIDs {
		itemTokens += len(ds.ItemTokens[it])
	}
	_, cached := s.userCaches[req.UserID]
	dec := s.cfg.Policy.Decide(scheduler.Context{
		UserTokens:           userTokens,
		ItemTokens:           itemTokens,
		UserHotness:          hotness,
		UserCached:           cached,
		UserPoolHasSpace:     len(s.userCaches) < s.cfg.MaxUserCaches,
		MinCachedHotness:     s.minUserHotness(now),
		HaveMinCachedHotness: len(s.userCaches) > 0,
	})

	evalReq := ranking.EvalRequest{User: req.UserID, Candidates: req.CandidateIDs}
	var caches bipartite.CacheSet
	kind := dec.Kind
	if dec.Recompute {
		kind = bipartite.UserPrefix
	} else if kind == bipartite.UserPrefix {
		caches.User = s.userCaches[req.UserID]
	} else {
		caches.Items = make(map[int]*model.KVCache, len(req.CandidateIDs))
		for slot, it := range req.CandidateIDs {
			if c, ok := s.itemCaches[it]; ok {
				caches.Items[slot] = c
			}
		}
	}
	rank := s.ranker.Rank
	if s.cfg.MultiDisc {
		rank = s.ranker.RankMulti
	}
	ranked, run, err := rank(evalReq, kind, ranking.RankOpts{Caches: caches, Ctx: ctx})
	if err != nil {
		return nil, err
	}

	// Admit new caches.
	if !dec.Recompute {
		if run.NewUserCache != nil && dec.AdmitUser {
			s.admitUser(req.UserID, s.admitCache(run.NewUserCache))
		}
		for slot, c := range run.NewItemCaches {
			s.itemCaches[req.CandidateIDs[slot]] = s.admitCache(c)
		}
	}

	s.requests++
	if kind == bipartite.UserPrefix {
		s.userPrefix++
	} else {
		s.itemPrefix++
	}
	s.reusedTokens += int64(run.ReusedTokens)
	s.computedTokens += int64(run.ComputedTokens)

	k := s.cfg.TopK
	if k > len(ranked) {
		k = len(ranked)
	}
	top := make([]int, k)
	for i := 0; i < k; i++ {
		top[i] = req.CandidateIDs[ranked[i]]
	}
	return &RankResponse{
		Ranking:        top,
		Prefix:         kind.String(),
		ReusedTokens:   run.ReusedTokens,
		ComputedTokens: run.ComputedTokens,
	}, nil
}

// admitUser stores a user cache, evicting the least recently admitted when
// over capacity.
func (s *Server) admitUser(u int, c *model.KVCache) {
	if _, ok := s.userCaches[u]; !ok {
		s.userLRU = append(s.userLRU, u)
	}
	s.userCaches[u] = c
	for len(s.userCaches) > s.cfg.MaxUserCaches && len(s.userLRU) > 0 {
		victim := s.userLRU[0]
		s.userLRU = s.userLRU[1:]
		if old, ok := s.userCaches[victim]; ok {
			old.Release() // return arena pages; no-op for contiguous storage
		}
		delete(s.userCaches, victim)
	}
}

func (s *Server) minUserHotness(now float64) float64 {
	min := 0.0
	first := true
	for u := range s.userCaches {
		h := s.meta.Hotness(kvcache.EntryKey{Kind: kvcache.UserEntry, ID: uint64(u)}, now)
		if first || h < min {
			min, first = h, false
		}
	}
	return min
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	total := s.reusedTokens + s.computedTokens
	resp := StatsResponse{
		Requests:         s.requests,
		UserPrefix:       s.userPrefix,
		ItemPrefix:       s.itemPrefix,
		ReusedTokens:     s.reusedTokens,
		ComputedTokens:   s.computedTokens,
		ItemCacheEntries: len(s.itemCaches),
		UserCacheEntries: len(s.userCaches),
		DegradedRequests: s.degraded,
		DeadlineAborts:   s.deadlineAborts,
	}
	s.mu.Unlock()
	resp.Admission = s.adm.Stats()
	if total > 0 {
		resp.TokenHitRate = float64(resp.ReusedTokens) / float64(total)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
