package server

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"bat/internal/bipartite"
	"bat/internal/ranking"
	"bat/internal/scheduler"
)

// expectedRanking computes the reference ranking for a request straight
// through the ranker — the per-request path the batched pipeline must match
// bit-for-bit (cold caches; cache state never changes scores, only cost).
func expectedRanking(t *testing.T, ds *ranking.Dataset, kind string, req RankRequest, topK int) []int {
	t.Helper()
	r, err := ranking.NewRanker(ds, ranking.VariantBase)
	if err != nil {
		t.Fatal(err)
	}
	ranked, _, err := r.Rank(ranking.EvalRequest{User: req.UserID, Candidates: req.CandidateIDs}, mustKind(t, kind), ranking.RankOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) > topK {
		ranked = ranked[:topK]
	}
	ids := make([]int, len(ranked))
	for i, idx := range ranked {
		ids[i] = req.CandidateIDs[idx]
	}
	return ids
}

func mustKind(t *testing.T, kind string) bipartite.PrefixKind {
	t.Helper()
	switch kind {
	case "user-as-prefix":
		return bipartite.UserPrefix
	case "item-as-prefix":
		return bipartite.ItemPrefix
	}
	t.Fatalf("unknown kind %q", kind)
	return bipartite.UserPrefix
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestServerParallelRankBitIdentical: N requests fired concurrently — so
// the batch loop coalesces them into packed multi-request executions — must
// return exactly the rankings the per-request path produces. Run under
// -race this also proves the RCU snapshot plan/commit split is clean.
func TestServerParallelRankBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy scheduler.Policy
		kind   string
	}{
		{"user-as-prefix", scheduler.StaticUser{}, "user-as-prefix"},
		{"item-as-prefix", scheduler.StaticItem{}, "item-as-prefix"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := newTestServer(t, func(cfg *Config) {
				cfg.Policy = tc.policy
				cfg.MaxBatch = 8
				cfg.BatchWindow = 20 * time.Millisecond
			})
			defer s.Close()

			const n = 24
			reqs := make([]RankRequest, n)
			for i := range reqs {
				reqs[i] = RankRequest{
					UserID:       i % 5,
					CandidateIDs: []int{1 + i%3, 7, 12 + i%4, 3, 19},
				}
			}
			want := make([][]int, n)
			for i, req := range reqs {
				want[i] = expectedRanking(t, s.cfg.Dataset, tc.kind, req, 10)
			}

			got := make([][]int, n)
			errs := make([]error, n)
			var wg sync.WaitGroup
			for i := range reqs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					resp, err := s.RankCtx(context.Background(), reqs[i])
					if err != nil {
						errs[i] = err
						return
					}
					got[i] = resp.Ranking
				}(i)
			}
			wg.Wait()
			for i := range reqs {
				if errs[i] != nil {
					t.Fatalf("request %d: %v", i, errs[i])
				}
				if !equalInts(got[i], want[i]) {
					t.Fatalf("request %d ranking %v, want %v (batched != per-request)", i, got[i], want[i])
				}
			}
			// The window actually coalesced: fewer batches than requests.
			st := s.core.Stats()
			if st.Batches >= int64(n) {
				t.Logf("no coalescing observed (%d batches for %d requests) — timing-dependent, not a failure", st.Batches, n)
			}
			if st.MaxBatchSize > 8 {
				t.Fatalf("batch size %d exceeds MaxBatch", st.MaxBatchSize)
			}
		})
	}
}

// TestServerChaosMixedBatches mixes full serves, already-expired deadlines,
// and degraded serves concurrently against one server: expired requests
// must fail without poisoning the batch, full serves must still be
// bit-identical to the per-request path, and the degraded fallback must run
// alongside without touching model state.
func TestServerChaosMixedBatches(t *testing.T) {
	s := newTestServer(t, func(cfg *Config) {
		cfg.Policy = scheduler.StaticUser{}
		cfg.MaxBatch = 6
		cfg.BatchWindow = 10 * time.Millisecond
	})
	defer s.Close()

	const n = 30
	var wg sync.WaitGroup
	fullErrs := make([]error, n)
	fullGot := make([][]int, n)
	fullWant := make([][]int, n)
	expiredOK := make([]bool, n)
	degradedErrs := make([]error, n)

	for i := 0; i < n; i++ {
		req := RankRequest{UserID: i % 5, CandidateIDs: []int{1 + i%3, 7, 12, 3}}
		switch i % 3 {
		case 0: // full serve
			fullWant[i] = expectedRanking(t, s.cfg.Dataset, "user-as-prefix", req, 10)
			wg.Add(1)
			go func(i int, req RankRequest) {
				defer wg.Done()
				resp, err := s.RankCtx(context.Background(), req)
				if err != nil {
					fullErrs[i] = err
					return
				}
				fullGot[i] = resp.Ranking
			}(i, req)
		case 1: // deadline already gone when (or shortly after) it enqueues
			wg.Add(1)
			go func(i int, req RankRequest) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
				defer cancel()
				_, err := s.RankCtx(ctx, req)
				// Expired requests must error; the rare one that sneaks
				// through before expiry must still be well-formed.
				expiredOK[i] = err != nil
			}(i, req)
		case 2: // degraded fallback racing the batch loop
			wg.Add(1)
			go func(i int, req RankRequest) {
				defer wg.Done()
				resp, err := s.core.RankDegraded(req, "chaos")
				if err != nil {
					degradedErrs[i] = err
					return
				}
				if !resp.Degraded || resp.DegradeReason != "chaos" {
					degradedErrs[i] = fmt.Errorf("degraded response not tagged: %+v", resp)
				}
			}(i, req)
		}
	}
	wg.Wait()

	expired := 0
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			if fullErrs[i] != nil {
				t.Fatalf("full request %d: %v", i, fullErrs[i])
			}
			if !equalInts(fullGot[i], fullWant[i]) {
				t.Fatalf("full request %d ranking %v, want %v", i, fullGot[i], fullWant[i])
			}
		case 1:
			if expiredOK[i] {
				expired++
			}
		case 2:
			if degradedErrs[i] != nil {
				t.Fatalf("degraded request %d: %v", i, degradedErrs[i])
			}
		}
	}
	if expired == 0 {
		t.Fatal("no expired-deadline request errored; chaos mix did not exercise cancellation")
	}

	// The server is still healthy: a fresh request serves cleanly.
	resp, err := s.Rank(RankRequest{UserID: 2, CandidateIDs: []int{5, 9, 13}})
	if err != nil || resp.Degraded {
		t.Fatalf("post-chaos serve: resp %+v err %v", resp, err)
	}
}
