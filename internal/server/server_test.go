package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"bat/internal/bipartite"
	"bat/internal/ranking"
	"bat/internal/scheduler"
	"bat/internal/serving"
	"bat/internal/tensor"
)

func testDataset(t *testing.T) *ranking.Dataset {
	t.Helper()
	ds, err := ranking.NewDataset(ranking.DatasetConfig{
		Name: "srv", Items: 80, Users: 30, Clusters: 5, LatentDim: 8,
		HistoryMin: 6, HistoryMax: 14, ItemAttrTokens: 1,
		ClusterNoise: 0.15, Candidates: 12, HardNegatives: 3, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{Dataset: testDataset(t), Variant: ranking.VariantBase}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postRank(t *testing.T, ts *httptest.Server, req RankRequest) (*RankResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/rank", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var out RankResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out, resp.StatusCode
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
}

func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, nil).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestRankEndToEnd(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := RankRequest{UserID: 2, CandidateIDs: []int{1, 5, 9, 13, 17, 21, 25, 29, 33, 37, 41, 45}}
	out, code := postRank(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(out.Ranking) != 10 {
		t.Fatalf("ranking length %d", len(out.Ranking))
	}
	seen := map[int]bool{}
	valid := map[int]bool{}
	for _, c := range req.CandidateIDs {
		valid[c] = true
	}
	for _, it := range out.Ranking {
		if !valid[it] || seen[it] {
			t.Fatalf("bad ranking entry %d", it)
		}
		seen[it] = true
	}
	if out.ComputedTokens <= 0 {
		t.Fatal("no compute accounted")
	}
}

func TestRankRejectsBadRequests(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, nil).Handler())
	defer ts.Close()
	if _, code := postRank(t, ts, RankRequest{UserID: 999, CandidateIDs: []int{1}}); code != http.StatusBadRequest {
		t.Fatalf("unknown user: status %d", code)
	}
	if _, code := postRank(t, ts, RankRequest{UserID: 1}); code != http.StatusBadRequest {
		t.Fatalf("empty candidates: status %d", code)
	}
	if _, code := postRank(t, ts, RankRequest{UserID: 1, CandidateIDs: []int{10_000}}); code != http.StatusBadRequest {
		t.Fatalf("unknown item: status %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/rank", "application/json", bytes.NewReader([]byte("{bad")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}
	getResp, err := http.Get(ts.URL + "/v1/rank")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET rank: status %d", getResp.StatusCode)
	}
}

// TestItemCacheWarmsAcrossUsers: the same candidate set served to two
// different users must reuse item caches on the second request.
func TestItemCacheWarmsAcrossUsers(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Policy = scheduler.StaticItem{}
	})
	cands := []int{2, 6, 10, 14, 18, 22}
	first, err := s.Rank(RankRequest{UserID: 0, CandidateIDs: cands})
	if err != nil {
		t.Fatal(err)
	}
	if first.ReusedTokens != 0 {
		t.Fatalf("cold request reused %d tokens", first.ReusedTokens)
	}
	second, err := s.Rank(RankRequest{UserID: 1, CandidateIDs: cands})
	if err != nil {
		t.Fatal(err)
	}
	if second.ReusedTokens == 0 {
		t.Fatal("second user did not reuse item caches")
	}
	if second.Prefix != "item-as-prefix" {
		t.Fatalf("prefix %q", second.Prefix)
	}
}

// TestUserCacheWarmsAcrossTurns: a returning user's second request reuses
// their profile cache under the UP policy.
func TestUserCacheWarmsAcrossTurns(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Policy = scheduler.StaticUser{}
	})
	cands := []int{1, 3, 5, 7}
	first, err := s.Rank(RankRequest{UserID: 4, CandidateIDs: cands})
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Rank(RankRequest{UserID: 4, CandidateIDs: []int{2, 4, 6, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if second.ReusedTokens != len(s.cfg.Dataset.UserHistory[4]) {
		t.Fatalf("reused %d, want the %d-token profile", second.ReusedTokens, len(s.cfg.Dataset.UserHistory[4]))
	}
	if first.Prefix != "user-as-prefix" || second.Prefix != "user-as-prefix" {
		t.Fatal("UP policy must serve user-as-prefix")
	}
}

// TestRankingStableAcrossCacheStates: the ranked list for identical input
// must be identical cold and warm.
func TestRankingStableAcrossCacheStates(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Policy = scheduler.StaticItem{} })
	req := RankRequest{UserID: 7, CandidateIDs: []int{0, 4, 8, 12, 16, 20, 24, 28}}
	cold, err := s.Rank(req)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.Rank(req)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold.Ranking {
		if cold.Ranking[i] != warm.Ranking[i] {
			t.Fatalf("ranking changed with cache state: %v vs %v", cold.Ranking, warm.Ranking)
		}
	}
}

func TestPrecomputeItems(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.PrecomputeItems = true
		c.Policy = scheduler.StaticItem{}
	})
	if s.itemCacheCount() != 80 {
		t.Fatalf("%d precomputed item caches", s.itemCacheCount())
	}
	out, err := s.Rank(RankRequest{UserID: 0, CandidateIDs: []int{1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if out.ReusedTokens == 0 {
		t.Fatal("precomputed items not reused on the first request")
	}
}

// TestPrecomputeItemsParallelMatchesSerial pins the pooled startup path:
// item caches built at pool width 4 must serve requests identically to a
// width-1 build, for both contiguous and paged storage.
func TestPrecomputeItemsParallelMatchesSerial(t *testing.T) {
	for _, pageTokens := range []int{0, 2} {
		build := func(width int) *Server {
			tensor.SetParallelism(width)
			return newTestServer(t, func(c *Config) {
				c.PrecomputeItems = true
				c.Policy = scheduler.StaticItem{}
				c.PageTokens = pageTokens
			})
		}
		defer tensor.SetParallelism(0)
		serial := build(1)
		parallel := build(4)
		if serial.itemCacheCount() != parallel.itemCacheCount() {
			t.Fatalf("pages=%d: %d caches serial vs %d parallel", pageTokens, serial.itemCacheCount(), parallel.itemCacheCount())
		}
		req := RankRequest{UserID: 2, CandidateIDs: []int{5, 6, 7, 8, 9}}
		a, err := serial.Rank(req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parallel.Rank(req)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(a.Ranking) != fmt.Sprint(b.Ranking) || a.ReusedTokens != b.ReusedTokens {
			t.Fatalf("pages=%d: parallel precompute serves differently: %+v vs %+v", pageTokens, a, b)
		}
	}
}

func TestUserCacheEviction(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Policy = scheduler.StaticUser{}
		c.MaxUserCaches = 2
	})
	for u := 0; u < 4; u++ {
		if _, err := s.Rank(RankRequest{UserID: u, CandidateIDs: []int{1, 2}}); err != nil {
			t.Fatal(err)
		}
	}
	if s.userCacheCount() > 2 {
		t.Fatalf("%d user caches, cap 2", s.userCacheCount())
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, err := s.Rank(RankRequest{UserID: 0, CandidateIDs: []int{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 || st.ComputedTokens == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.UserPrefix+st.ItemPrefix != st.Requests {
		t.Fatal("prefix counts don't sum")
	}
}

// TestHotnessPolicySwitchesPrefix: with a hot, long-history user the
// hotness-aware policy serves user-as-prefix; a cold user with a large
// candidate set goes item-as-prefix.
func TestHotnessPolicySwitchesPrefix(t *testing.T) {
	now := time.Unix(0, 0)
	s := newTestServer(t, func(c *Config) {
		c.Now = func() time.Time { return now }
	})
	ds := s.cfg.Dataset
	// Pick the user with the longest history and a user with a short one.
	longest, shortest := 0, 0
	for u := range ds.UserHistory {
		if len(ds.UserHistory[u]) > len(ds.UserHistory[longest]) {
			longest = u
		}
		if len(ds.UserHistory[u]) < len(ds.UserHistory[shortest]) {
			shortest = u
		}
	}
	smallSet := []int{1, 2}                                    // fewer item tokens than any history
	bigSet := []int{0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22} // more than the shortest history
	long, err := s.Rank(RankRequest{UserID: longest, CandidateIDs: smallSet})
	if err != nil {
		t.Fatal(err)
	}
	if long.Prefix != "user-as-prefix" {
		t.Fatalf("hot long user served %s", long.Prefix)
	}
	short, err := s.Rank(RankRequest{UserID: shortest, CandidateIDs: bigSet})
	if err != nil {
		t.Fatal(err)
	}
	if short.Prefix != "item-as-prefix" {
		t.Fatalf("short user with big candidate set served %s", short.Prefix)
	}
}

// TestMultiDiscServing: the per-item-discriminant mode serves valid rankings
// and still reuses item caches across users.
func TestMultiDiscServing(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MultiDisc = true
		c.Policy = scheduler.StaticItem{}
	})
	cands := []int{3, 7, 11, 15, 19, 23}
	first, err := s.Rank(RankRequest{UserID: 2, CandidateIDs: cands})
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Ranking) != 6 {
		t.Fatalf("ranking length %d", len(first.Ranking))
	}
	second, err := s.Rank(RankRequest{UserID: 9, CandidateIDs: cands})
	if err != nil {
		t.Fatal(err)
	}
	if second.ReusedTokens == 0 {
		t.Fatal("multi-disc serving did not reuse item caches")
	}
}

// TestPagedServing: with a BlockArena behind the caches, serving stays
// byte-identical to flat storage and the arena reaches a steady page count.
func TestPagedServing(t *testing.T) {
	flat := newTestServer(t, func(c *Config) { c.Policy = scheduler.StaticItem{} })
	paged := newTestServer(t, func(c *Config) {
		c.Policy = scheduler.StaticItem{}
		c.PageTokens = 2 // item token counts are small; tiny pages share more
	})
	if paged.arena == nil {
		t.Fatal("arena not created")
	}
	cands := []int{1, 3, 5, 7, 9, 11}
	var lastFlat, lastPaged *RankResponse
	for turn := 0; turn < 5; turn++ {
		var err error
		lastFlat, err = flat.Rank(RankRequest{UserID: turn, CandidateIDs: cands})
		if err != nil {
			t.Fatal(err)
		}
		lastPaged, err = paged.Rank(RankRequest{UserID: turn, CandidateIDs: cands})
		if err != nil {
			t.Fatal(err)
		}
		for i := range lastFlat.Ranking {
			if lastFlat.Ranking[i] != lastPaged.Ranking[i] {
				t.Fatalf("turn %d: paged ranking diverged", turn)
			}
		}
		if lastPaged.ReusedTokens != lastFlat.ReusedTokens {
			t.Fatalf("turn %d: reuse accounting differs (%d vs %d)",
				turn, lastPaged.ReusedTokens, lastFlat.ReusedTokens)
		}
	}
	st := paged.arena.Stats()
	if st.ShareEvents == 0 {
		t.Fatal("no page sharing during paged serving")
	}
	before := st.BlocksAllocated
	if _, err := paged.Rank(RankRequest{UserID: 9, CandidateIDs: cands}); err != nil {
		t.Fatal(err)
	}
	if grew := paged.arena.Stats().BlocksAllocated - before; grew > 6 {
		t.Fatalf("steady-state request allocated %d new blocks", grew)
	}
}

// TestPagedUserEvictionReleasesPages: evicted user caches hand pages back.
func TestPagedUserEvictionReleasesPages(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Policy = scheduler.StaticUser{}
		c.MaxUserCaches = 2
		c.PageTokens = 2
	})
	for u := 0; u < 6; u++ {
		if _, err := s.Rank(RankRequest{UserID: u, CandidateIDs: []int{1, 2}}); err != nil {
			t.Fatal(err)
		}
	}
	if s.arena.Stats().BlocksFree == 0 {
		t.Fatal("evictions returned no pages to the arena")
	}
}

// TestConcurrentRanking hammers the server from many goroutines; run with
// -race this doubles as the data-race check for the shared cache maps.
func TestConcurrentRanking(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const workers = 8
	const perWorker = 10
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < perWorker; i++ {
				req := RankRequest{
					UserID:       (w*perWorker + i) % 30,
					CandidateIDs: []int{1 + i, 11 + i, 21 + i, 31 + i},
				}
				body, err := json.Marshal(req)
				if err != nil {
					errs <- err
					return
				}
				resp, err := http.Post(ts.URL+"/v1/rank", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	var st StatsResponse
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != workers*perWorker {
		t.Fatalf("served %d requests, want %d", st.Requests, workers*perWorker)
	}
}

// TestServerDedupSameColdUser: concurrent requests for the SAME cold user
// landing in one batch recompute the user prefix once — the batch-level miss
// planner collapses the identical misses into a single forward — and every
// response carries the bit-identical ranking a solo serve produces.
func TestServerDedupSameColdUser(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	s := newTestServer(t, func(c *Config) {
		c.Policy = scheduler.StaticUser{}
		c.WindowPolicy = serving.WindowFixed
		c.BatchWindow = 100 * time.Millisecond
		c.MaxBatch = 4
		c.BatchHook = func(size int) { once.Do(func() { <-gate }) }
	})
	req := RankRequest{UserID: 3, CandidateIDs: []int{2, 6, 10, 14, 18}}

	// Reference: a solo user-prefix serve on an independent ranker over the
	// same deterministic dataset and weights.
	r, err := ranking.NewRanker(testDataset(t), ranking.VariantBase)
	if err != nil {
		t.Fatal(err)
	}
	ranked, _, err := r.Rank(ranking.EvalRequest{User: req.UserID, Candidates: req.CandidateIDs},
		bipartite.UserPrefix, ranking.RankOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, len(ranked))
	for i, idx := range ranked {
		want[i] = req.CandidateIDs[idx]
	}

	// Stall the batcher on a throwaway request so the identical ones queue up
	// together, then release and let them form one batch.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Rank(RankRequest{UserID: 1, CandidateIDs: []int{3, 7}}); err != nil {
			t.Errorf("stall request: %v", err)
		}
	}()
	const n = 4
	resps := make([]*RankResponse, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Rank(req)
			if err != nil {
				t.Errorf("dedup request %d: %v", i, err)
				return
			}
			resps[i] = resp
		}(i)
	}
	time.Sleep(200 * time.Millisecond) // everything is enqueued behind the stall
	close(gate)
	wg.Wait()

	for i, resp := range resps {
		if resp == nil {
			t.Fatalf("request %d got no response", i)
		}
		if len(resp.Ranking) < len(want) {
			t.Fatalf("request %d ranking has %d entries, want >= %d", i, len(resp.Ranking), len(want))
		}
		for j := range want {
			if resp.Ranking[j] != want[j] {
				t.Fatalf("request %d ranking %v deviates from solo serve %v", i, resp.Ranking, want)
			}
		}
	}
	st := s.Stats()
	if st.DedupedTokens == 0 {
		t.Fatal("identical in-batch cold-user misses recorded zero deduped tokens")
	}
	if st.MaxBatchSize < 2 {
		t.Fatalf("max batch size %d; the identical requests never batched", st.MaxBatchSize)
	}
}
