package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"bat/internal/admission"
)

// postWithHeaders is postRank plus request headers, returning the raw
// response metadata for shed-path assertions.
func postWithHeaders(t *testing.T, ts *httptest.Server, req RankRequest, headers map[string]string) (int, http.Header, *RankResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/rank", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		hreq.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, resp.Header, nil
	}
	var out RankResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, &out
}

// TestServerOverloadFloodShedsAndDegrades: with one slot and a tiny queue, a
// concurrent flood splits into full serves, degraded serves, and fast 429s —
// and every rung shows up in the stats.
func TestServerOverloadFloodShedsAndDegrades(t *testing.T) {
	// Stall the batch loop so the flood genuinely overlaps: the admitted
	// request's batch parks in the hook, the queue fills, the rest shed.
	stall := make(chan struct{})
	s := newTestServer(t, func(cfg *Config) {
		cfg.Admission = admission.Config{MaxInFlight: 1, MaxQueue: 2, DegradeQueueDepth: 1}
		cfg.BatchHook = func(int) { <-stall }
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	release := make(chan struct{})
	go func() {
		time.Sleep(300 * time.Millisecond)
		close(stall)
		close(release)
	}()

	const flood = 12
	type outcome struct {
		status   int
		degraded bool
		header   http.Header
	}
	outcomes := make([]outcome, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, hdr, resp := postWithHeaders(t, ts, RankRequest{UserID: i % 5, CandidateIDs: []int{1, 2, 3}}, nil)
			outcomes[i] = outcome{status: status, header: hdr}
			if resp != nil {
				outcomes[i].degraded = resp.Degraded
			}
		}(i)
	}
	wg.Wait()
	<-release

	oks, sheds, degraded := 0, 0, 0
	for _, o := range outcomes {
		switch o.status {
		case http.StatusOK:
			oks++
			if o.degraded {
				degraded++
			}
		case http.StatusTooManyRequests:
			sheds++
			if o.header.Get("Retry-After") == "" || o.header.Get(admission.ShedReasonHeader) == "" {
				t.Fatal("shed response missing Retry-After or reason header")
			}
		default:
			t.Fatalf("unexpected status %d", o.status)
		}
	}
	if oks == 0 || sheds == 0 || degraded == 0 {
		t.Fatalf("flood outcomes ok=%d shed=%d degraded=%d; want every ladder rung exercised", oks, sheds, degraded)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Admission.ShedQueueFull == 0 {
		t.Fatal("stats missing queue-full sheds")
	}
	if st.DegradedRequests == 0 {
		t.Fatal("stats missing degraded requests")
	}
	if st.Admission.MaxInFlight != 1 || st.Admission.MaxQueue != 2 {
		t.Fatalf("admission config not surfaced: %+v", st.Admission)
	}
}

// TestServerDeadlineAbortsMidServe: a request whose Deadline-Ms budget
// expires before execution starts is shed with the deadline reason instead of
// burning a full forward — the r.Context() plumbing satellite, end to end.
func TestServerDeadlineAbortsMidServe(t *testing.T) {
	// Stall the batch loop past the request's budget: by the time the
	// admitted request's batch reaches the model, its context is dead and the
	// cancellation poll fires at the first phase boundary.
	stall := make(chan struct{})
	s := newTestServer(t, func(cfg *Config) {
		cfg.BatchHook = func(int) { <-stall }
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	go func() {
		time.Sleep(150 * time.Millisecond)
		close(stall)
	}()
	status, hdr, _ := postWithHeaders(t, ts, RankRequest{UserID: 1, CandidateIDs: []int{1, 2, 3}},
		map[string]string{admission.DeadlineHeader: "40"})
	if status != http.StatusTooManyRequests {
		t.Fatalf("expired-deadline request status %d, want 429", status)
	}
	if got := hdr.Get(admission.ShedReasonHeader); got != admission.ReasonDeadline {
		t.Fatalf("shed reason %q, want %q", got, admission.ReasonDeadline)
	}

	// The abort is counted, and the server still serves normally afterwards.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.DeadlineAborts == 0 {
		t.Fatal("deadline abort not counted")
	}
	if out, code := postRank(t, ts, RankRequest{UserID: 1, CandidateIDs: []int{1, 2, 3}}); code != http.StatusOK || out.Degraded {
		t.Fatalf("post-abort request: status %d degraded %v, want clean full serve", code, out != nil && out.Degraded)
	}
}

// TestServerDegradedMatchesRetrieval: the degraded path is deterministic
// first-stage retrieval — same ranking as scoring the capped candidate set
// by retrieval similarity directly.
func TestServerDegradedMatchesRetrieval(t *testing.T) {
	s := newTestServer(t, func(cfg *Config) {
		cfg.DegradedMaxCandidates = 4
	})
	resp, err := s.core.RankDegraded(RankRequest{UserID: 3, CandidateIDs: []int{9, 2, 7, 5, 11, 13}}, "queue-pressure")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.DegradeReason != "queue-pressure" {
		t.Fatalf("response %+v not tagged degraded", resp)
	}
	if resp.Prefix != "degraded-retrieval" {
		t.Fatalf("degraded prefix %q", resp.Prefix)
	}
	// Only the capped candidate set may appear.
	capped := map[int]bool{9: true, 2: true, 7: true, 5: true}
	for _, it := range resp.Ranking {
		if !capped[it] {
			t.Fatalf("ranking %v includes item %d beyond the degraded cap", resp.Ranking, it)
		}
	}
	if len(resp.Ranking) != 4 {
		t.Fatalf("ranking length %d, want 4 (capped set)", len(resp.Ranking))
	}
	// Degraded mode must not touch the model caches.
	if got := s.itemCacheCount(); got != 0 {
		t.Fatalf("degraded serve populated %d item caches", got)
	}
	// And validation still applies.
	if _, err := s.core.RankDegraded(RankRequest{UserID: -1, CandidateIDs: []int{1}}, "x"); err == nil {
		t.Fatal("degraded path accepted an invalid user")
	}
}
