package experiments

import (
	"fmt"
	"strings"

	"bat/internal/cluster"
	"bat/internal/core"
	"bat/internal/model"
	"bat/internal/workload"
)

// mainTestbed returns the reduced-scale analogue of the §6.1 4-node A100
// testbed (see the package comment for the scaling rationale).
func mainTestbed(prof workload.Profile, cfg model.Config, seed int64) core.Options {
	return core.Options{
		Profile:      prof,
		Model:        cfg,
		Nodes:        4,
		HostMemBytes: 12 << 30,
		Seed:         seed,
	}
}

func servingModels(o Options) []model.Config {
	if o.Quick {
		return []model.Config{model.Qwen2_1_5B}
	}
	return model.PaperModels()
}

func servingProfiles(o Options) []workload.Profile {
	if o.Quick {
		return []workload.Profile{workload.Games, workload.Books}
	}
	return workload.Profiles()
}

// requestsFor sizes a trace for a profile: the Industry population is an
// order of magnitude larger than the others, so its trace is denser —
// keeping the cache-reuse distance beyond the scaled pools the way 10^8
// daily users keep it beyond 150 GB nodes.
func requestsFor(o Options, prof workload.Profile) int {
	if strings.HasPrefix(prof.Name, "Industry") {
		return o.Requests * 2
	}
	return o.Requests
}

// runSystems executes the four headline systems on one dataset/model cell.
func runSystems(o Options, prof workload.Profile, cfg model.Config) (map[core.System]*cluster.Stats, error) {
	out := make(map[core.System]*cluster.Stats, 4)
	for _, sys := range core.Systems() {
		d, err := core.Build(sys, mainTestbed(prof, cfg, o.Seed))
		if err != nil {
			return nil, fmt.Errorf("%s on %s/%s: %w", sys, prof.Name, cfg.Name, err)
		}
		st, err := d.RunThroughput(requestsFor(o, prof), 3600)
		if err != nil {
			return nil, err
		}
		out[sys] = st
	}
	return out, nil
}

// Fig5QPS regenerates Figure 5: serving throughput of RE/UP/IP/BAT across
// the four datasets and three models.
func Fig5QPS(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig5",
		Title:  "System QPS across datasets and models (Figure 5)",
		Header: []string{"Dataset", "Model", "RE", "UP", "IP", "BAT", "BAT/UP", "BAT/RE"},
	}
	for _, prof := range servingProfiles(o) {
		for _, cfg := range servingModels(o) {
			stats, err := runSystems(o, prof, cfg)
			if err != nil {
				return nil, err
			}
			t.AddRow(prof.Name, cfg.Name,
				f1(stats[core.RE].QPS), f1(stats[core.UP].QPS),
				f1(stats[core.IP].QPS), f1(stats[core.BAT].QPS),
				f2(stats[core.BAT].QPS/stats[core.UP].QPS),
				f2(stats[core.BAT].QPS/stats[core.RE].QPS))
		}
	}
	t.Notes = append(t.Notes,
		"paper: BAT up to 1.6x over UP and 2.3x over RE; UP beats IP only on Games")
	return t, nil
}

// Fig6HitRate regenerates Figure 6: cache hit rate (reused prefix tokens /
// total prompt tokens) on the same grid.
func Fig6HitRate(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig6",
		Title:  "Cache hit rate across datasets and models (Figure 6)",
		Header: []string{"Dataset", "Model", "RE", "UP", "IP", "BAT", "BAT ComputeSavings"},
	}
	for _, prof := range servingProfiles(o) {
		for _, cfg := range servingModels(o) {
			stats, err := runSystems(o, prof, cfg)
			if err != nil {
				return nil, err
			}
			t.AddRow(prof.Name, cfg.Name,
				pct(stats[core.RE].HitRate()), pct(stats[core.UP].HitRate()),
				pct(stats[core.IP].HitRate()), pct(stats[core.BAT].HitRate()),
				pct(stats[core.BAT].ComputeSavings()))
		}
	}
	t.Notes = append(t.Notes, "paper: BAT reaches up to 58% hit rate / compute savings")
	return t, nil
}

// Fig7Placement regenerates Figure 7: HRCS vs full replication vs hash
// sharding under 10 and 100 Gbps networks (Books, Qwen2-1.5B).
func Fig7Placement(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig7",
		Title:  "Impact of HRCS item cache placement (Books-scaled, Qwen2-1.5B)",
		Header: []string{"Network", "System", "QPS", "HitRate", "RemoteTokens%", "ItemArea/Node"},
	}
	// The paper's Books corpus occupies ~77% of a node's KV memory, so full
	// replication fits but starves the user cache; 21K items reproduce that
	// ratio against the scaled 12 GB nodes.
	prof := workload.BooksX(21_000)
	for _, gbps := range []float64{10, 100} {
		for _, sys := range []core.System{core.BAT, core.BATReplicate, core.BATHash} {
			opt := mainTestbed(prof, model.Qwen2_1_5B, o.Seed)
			opt.ItemBudgetFraction = 0.85
			opt.LinkGbps = gbps
			d, err := core.Build(sys, opt)
			if err != nil {
				return nil, err
			}
			st, err := d.RunThroughput(o.Requests, 3600)
			if err != nil {
				return nil, err
			}
			remotePct := 0.0
			if st.ReusedTokens > 0 {
				remotePct = float64(st.RemoteTokens) / float64(st.ReusedTokens)
			}
			t.AddRow(fmt.Sprintf("%gGbps", gbps), sys.String(),
				f1(st.QPS), pct(st.HitRate()), pct(remotePct),
				fmt.Sprintf("%.1fGB", float64(d.Plan.ItemBytesPerWorker())/(1<<30)))
		}
	}
	t.Notes = append(t.Notes,
		"paper: BAT beats Replicate by 10%/16% (10/100Gbps); Hash has the best hit rate but pays ~31% communication at 10Gbps")
	return t, nil
}

// Fig8Scheduling regenerates Figure 8: hotness-aware vs cache-agnostic
// scheduling while sweeping the user cache size (item cache fixed).
func Fig8Scheduling(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig8",
		Title:  "Impact of hotness-aware prompt scheduling (Books, Qwen2-1.5B)",
		Header: []string{"UserCache/Node", "System", "QPS", "HitRate"},
	}
	// The paper sweeps 25–100 GB on 150 GB nodes; scaled to the 12 GB
	// testbed that is 2–8 GB.
	sizes := []int64{2 << 30, 4 << 30, 6 << 30, 8 << 30}
	if o.Quick {
		sizes = []int64{2 << 30, 8 << 30}
	}
	for _, userBytes := range sizes {
		for _, sys := range []core.System{core.BAT, core.BATCacheAgnostic} {
			opt := mainTestbed(workload.Books, model.Qwen2_1_5B, o.Seed)
			opt.UserCacheBytesOverride = userBytes
			d, err := core.Build(sys, opt)
			if err != nil {
				return nil, err
			}
			st, err := d.RunThroughput(o.Requests, 3600)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%dGB", userBytes>>30), sys.String(), f1(st.QPS), pct(st.HitRate()))
		}
	}
	t.Notes = append(t.Notes,
		"paper: the cache-agnostic baseline collapses when the user cache is small; BAT sustains throughput by diverting cold users to Item-as-prefix")
	return t, nil
}

// Table4Ablation regenerates Table 4: the ABC ablation on Books-280K-scale
// and Books-1M-scale corpora. Corpus sizes are scaled to keep the paper's
// corpus-bytes to node-memory ratios (280K items ≈ 0.77x node memory;
// 1M items ≈ 2.7x) against the 12 GB reduced nodes.
func Table4Ablation(o Options) (*Table, error) {
	o = o.withDefaults()
	variants := []core.Variant{
		{Bipartite: true, HRCS: true, HotnessSched: true}, // ABC
		{Bipartite: true, HRCS: true},                     // AB
		{Bipartite: true, HotnessSched: true},             // AC
		{Bipartite: true},                                 // A
		{},                                                // None
	}
	datasets := []struct {
		label string
		prof  workload.Profile
	}{
		{"Books-280K(scaled)", workload.BooksX(21_000)},
		{"Books-1M(scaled)", workload.BooksX(75_000)},
	}
	t := &Table{
		ID:     "table4",
		Title:  "Ablation study, throughput in QPS (Table 4)",
		Header: []string{"Dataset", "ABC", "AB", "AC", "A", "None"},
	}
	for _, ds := range datasets {
		row := []string{ds.label}
		for _, v := range variants {
			opt := mainTestbed(ds.prof, model.Qwen2_1_5B, o.Seed)
			opt.ItemBudgetFraction = 0.8
			d, err := core.BuildVariant(v, opt)
			if err != nil {
				return nil, fmt.Errorf("variant %s on %s: %w", v, ds.label, err)
			}
			st, err := d.RunThroughput(o.Requests, 3600)
			if err != nil {
				return nil, err
			}
			row = append(row, f1(st.QPS))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper (Books-280K): ABC 128, AB 128, AC 115, A 102, None 83; (Books-1M): ABC 126, AB 106, AC 125, A 105, None 83",
		"without B the item cache is replicated, falling back to hash sharding when the corpus cannot replicate (the 1M case)")
	return t, nil
}
