package experiments

import (
	"fmt"

	"bat/internal/cluster"
	"bat/internal/core"
	"bat/internal/costmodel"
	"bat/internal/kvcache"
	"bat/internal/model"
	"bat/internal/placement"
	"bat/internal/scheduler"
	"bat/internal/workload"
)

// The ext-* artifacts go beyond the paper's evaluation section: they
// exercise claims the paper makes in passing (larger candidate sets save
// more, burst hotspots are absorbed by the background refresh) and sweep the
// design knobs DESIGN.md calls out (HRCS's α).

// ExtCandidateSweep measures how Item-as-prefix compute savings grow with
// the candidate-set size — the paper's retrieval-stage future-work claim
// ("the candidate item number is orders larger, e.g., 10K candidates; our
// Bipartite Attention will save more computation for larger candidate
// sets", §7).
func ExtCandidateSweep(o Options) (*Table, error) {
	o = o.withDefaults()
	sizes := []int{100, 300, 1000, 2000}
	if o.Quick {
		sizes = []int{50, 400}
	}
	t := &Table{
		ID:     "ext-candidates",
		Title:  "Compute savings vs candidate-set size (Books, Qwen2-1.5B)",
		Header: []string{"Candidates", "ItemTok/Req", "UP Savings", "IP Savings", "BAT Savings"},
	}
	for _, c := range sizes {
		prof := workload.Books
		prof.Candidates = c
		// Keep per-sweep work roughly constant: fewer requests when each
		// carries more candidate tokens.
		n := o.Requests * 100 / c
		if n < 400 {
			n = 400
		}
		row := []string{fmt.Sprintf("%d", c), fmt.Sprintf("%d", c*prof.AvgItemTokens)}
		for _, sys := range []core.System{core.UP, core.IP, core.BAT} {
			d, err := core.Build(sys, mainTestbed(prof, model.Qwen2_1_5B, o.Seed))
			if err != nil {
				return nil, err
			}
			st, err := d.RunThroughput(n, 3600)
			if err != nil {
				return nil, err
			}
			row = append(row, pct(st.ComputeSavings()))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"as candidates dominate the prompt, Item-as-prefix (and therefore BAT) saves an increasing share while User-as-prefix saturates")
	return t, nil
}

// ExtAlphaSweep sweeps HRCS's tolerated communication ratio α: small α
// replicates aggressively (more memory, no network), large α shards
// aggressively (less memory, more transfers).
func ExtAlphaSweep(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "ext-alpha",
		Title:  "HRCS α sweep (Books-scaled, Qwen2-1.5B, 10Gbps)",
		Header: []string{"Alpha", "R_max", "Replicated", "ItemArea/Node", "QPS", "Remote%"},
	}
	alphas := []float64{0.01, 0.05, 0.2, 1.0}
	if o.Quick {
		alphas = []float64{0.01, 1.0}
	}
	prof := workload.BooksX(21_000)
	for _, alpha := range alphas {
		opt := mainTestbed(prof, model.Qwen2_1_5B, o.Seed)
		opt.Alpha = alpha
		opt.LinkGbps = 10
		opt.ItemBudgetFraction = 0.85
		d, err := core.Build(core.BAT, opt)
		if err != nil {
			return nil, err
		}
		st, err := d.RunThroughput(o.Requests/2, 3600)
		if err != nil {
			return nil, err
		}
		remotePct := 0.0
		if st.ReusedTokens > 0 {
			remotePct = float64(st.RemoteTokens) / float64(st.ReusedTokens)
		}
		t.AddRow(fmt.Sprintf("%g", alpha), fmt.Sprintf("%.3f", d.Plan.MaxCommRatio),
			fmt.Sprintf("%d", d.Plan.ReplicatedItems),
			fmt.Sprintf("%.1fGB", float64(d.Plan.ItemBytesPerWorker())/(1<<30)),
			f1(st.QPS), pct(remotePct))
	}
	t.Notes = append(t.Notes,
		"α trades item-cache memory against network traffic; Algorithm 1 keeps the remote share under R_max")
	return t, nil
}

// ExtBurstRefresh demonstrates §5.2 step 3's background update: a cold-item
// hotspot erupts mid-trace, and the dynamic plan's periodic promotion of
// recently-missed items restores the hit rate the static placement loses.
func ExtBurstRefresh(o Options) (*Table, error) {
	o = o.withDefaults()
	prof := workload.Books
	prof.Name = "Books+burst"
	prof.Burst = &workload.Burst{
		StartSec:  1200,
		EndSec:    2400,
		FirstItem: workload.ItemID(prof.Items / 2), // deep in the cold tail
		Items:     50,
		Share:     0.4,
	}
	gen, err := workload.NewGenerator(prof, o.Seed)
	if err != nil {
		return nil, err
	}
	est, err := costmodel.FitEstimator(costmodel.A100PCIe3, model.Qwen2_1_5B)
	if err != nil {
		return nil, err
	}
	plan, err := placement.NewPlan(placement.HRCS, placement.Input{
		Est: est, Link: costmodel.NewLink(100), Model: model.Qwen2_1_5B,
		Profile: prof, Alpha: 0.05, Workers: 4,
		PerWorkerItemBudget: (12 << 30) * 7 / 10,
	})
	if err != nil {
		return nil, err
	}

	run := func(refresh bool) (*cluster.Stats, error) {
		cfg := cluster.Config{
			Nodes: 4, GPU: costmodel.A100PCIe3, Model: model.Qwen2_1_5B,
			Link: costmodel.NewLink(100), HostMemBytes: 12 << 30,
			Plan: plan, Policy: scheduler.HotnessAware{}, UserEvict: kvcache.EvictMinHotness,
			StatsBucketSec: 600,
		}
		if refresh {
			cfg.Dynamic = placement.NewDynamicPlan(plan, 128)
			cfg.RefreshIntervalSec = 120
		}
		sim, err := cluster.New(cfg, gen)
		if err != nil {
			return nil, err
		}
		trace, err := gen.GenerateTrace(o.Requests, 3600)
		if err != nil {
			return nil, err
		}
		return sim.RunThroughput(trace)
	}
	static, err := run(false)
	if err != nil {
		return nil, err
	}
	dynamic, err := run(true)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "ext-burst",
		Title:  "Burst hotspot absorption via background item refresh (Books+burst)",
		Header: []string{"Window", "Phase", "Static HitRate", "Refreshed HitRate"},
	}
	phase := func(startSec float64) string {
		if prof.Burst.Active(startSec) {
			return "burst"
		}
		if startSec >= prof.Burst.EndSec {
			return "post"
		}
		return "pre"
	}
	for i := range static.Buckets {
		sb := static.Buckets[i]
		rb := cluster.Bucket{}
		if i < len(dynamic.Buckets) {
			rb = dynamic.Buckets[i]
		}
		t.AddRow(fmt.Sprintf("%d-%ds", int(sb.StartSec), int(sb.StartSec)+600),
			phase(sb.StartSec), pct(sb.HitRate()), pct(rb.HitRate()))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"overall QPS: static %.1f vs refreshed %.1f; the refresh promotes recently-missed items into a replicated slack area every 120s",
		static.QPS, dynamic.QPS))
	return t, nil
}

// ExtSlowTier evaluates the multi-tier user cache the paper defers in
// §3.3's footnote: backing a starved DRAM user area with cheap local
// storage trades slower cache loads for many fewer recomputations.
func ExtSlowTier(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "ext-tier",
		Title:  "Spill-tier user cache under UP (Books, Qwen2-1.5B, 2GB DRAM user area)",
		Header: []string{"System", "SlowTier/Node", "QPS", "HitRate", "SlowTierTokens%"},
	}
	run := func(sys core.System, slow int64) error {
		opt := mainTestbed(workload.Books, model.Qwen2_1_5B, o.Seed)
		opt.UserCacheBytesOverride = 2 << 30
		opt.SlowTierBytes = slow
		d, err := core.Build(sys, opt)
		if err != nil {
			return err
		}
		st, err := d.RunThroughput(o.Requests, 3600)
		if err != nil {
			return err
		}
		slowPct := 0.0
		if st.ReusedTokens > 0 {
			slowPct = float64(st.SlowTierTokens) / float64(st.ReusedTokens)
		}
		label := "none"
		if slow > 0 {
			label = fmt.Sprintf("%dGB", slow>>30)
		}
		t.AddRow(sys.String(), label, f1(st.QPS), pct(st.HitRate()), pct(slowPct))
		return nil
	}
	tiers := []int64{0, 8 << 30, 32 << 30}
	if o.Quick {
		tiers = []int64{0, 32 << 30}
	}
	// The tier matters where User-as-prefix misses DRAM, so sweep it under
	// UP; BAT without a tier is the reference the paper's approach sets.
	for _, slow := range tiers {
		if err := run(core.UP, slow); err != nil {
			return nil, err
		}
	}
	if err := run(core.BAT, 0); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"NVMe-class loads (~3 GB/s) cost more per hit than DRAM but far less than recomputing a 1500-token profile; the tier rescues capacity misses yet cannot touch the compulsory misses Item-as-prefix removes")
	return t, nil
}

// ExtGPUResidentItems evaluates pinning the hottest replicated items in
// device memory (§5.1 lists GPU memory in each worker's pool; the paper
// evaluates CPU only): GPU-resident hits skip the host-to-GPU cache load.
func ExtGPUResidentItems(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "ext-gpu",
		Title:  "GPU-resident hot item area (Books, Qwen2-1.5B)",
		Header: []string{"GPUArea/Node", "GPUItems", "QPS", "HitRate", "GPUTokens%"},
	}
	budgets := []int64{0, 1 << 30, 4 << 30}
	if o.Quick {
		budgets = []int64{0, 4 << 30}
	}
	for _, budget := range budgets {
		opt := mainTestbed(workload.Books, model.Qwen2_1_5B, o.Seed)
		opt.GPUItemBudgetBytes = budget
		d, err := core.Build(core.BAT, opt)
		if err != nil {
			return nil, err
		}
		st, err := d.RunThroughput(o.Requests, 3600)
		if err != nil {
			return nil, err
		}
		gpuPct := 0.0
		if st.ReusedTokens > 0 {
			gpuPct = float64(st.GPUTokens) / float64(st.ReusedTokens)
		}
		label := "none"
		if budget > 0 {
			label = fmt.Sprintf("%dGB", budget>>30)
		}
		t.AddRow(label, fmt.Sprintf("%d", d.Plan.GPUResidentItems),
			f1(st.QPS), pct(st.HitRate()), pct(gpuPct))
	}
	t.Notes = append(t.Notes,
		"device-resident hits skip the PCIe load entirely; because item popularity is head-heavy, a small GPU area covers most item-cache traffic")
	return t, nil
}

// ExtSchedulerLattice pits four scheduling policies against identical HRCS
// placement on Books: the paper's cache-agnostic strawman, a
// clairvoyant-greedy oracle (true cache state, no admission investment), the
// hotness-aware policy, and always-IP. It isolates §5.3's claim that smart
// per-request choices are not enough without retention-aware admission.
func ExtSchedulerLattice(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "ext-oracle",
		Title:  "Scheduling policy lattice (Books, Qwen2-1.5B, shared HRCS placement)",
		Header: []string{"Policy", "QPS", "HitRate", "UP-share"},
	}
	type entry struct {
		policy scheduler.Policy
		evict  kvcache.EvictPolicy
	}
	entries := []entry{
		{scheduler.StaticItem{}, kvcache.EvictLRU},
		{scheduler.CacheAgnostic{}, kvcache.EvictLRU},
		{scheduler.GreedyOracle{}, kvcache.EvictLRU},
		{scheduler.HotnessAware{}, kvcache.EvictMinHotness},
	}
	gen, err := workload.NewGenerator(workload.Books, o.Seed)
	if err != nil {
		return nil, err
	}
	est, err := costmodel.FitEstimator(costmodel.A100PCIe3, model.Qwen2_1_5B)
	if err != nil {
		return nil, err
	}
	plan, err := placement.NewPlan(placement.HRCS, placement.Input{
		Est: est, Link: costmodel.NewLink(100), Model: model.Qwen2_1_5B,
		Profile: workload.Books, Alpha: 0.05, Workers: 4,
		PerWorkerItemBudget: (12 << 30) * 7 / 10,
	})
	if err != nil {
		return nil, err
	}
	trace, err := gen.GenerateTrace(o.Requests, 3600)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		sim, err := cluster.New(cluster.Config{
			Nodes: 4, GPU: costmodel.A100PCIe3, Model: model.Qwen2_1_5B,
			Link: costmodel.NewLink(100), HostMemBytes: 12 << 30,
			Plan: plan, Policy: e.policy, UserEvict: e.evict,
		}, gen)
		if err != nil {
			return nil, err
		}
		st, err := sim.RunThroughput(trace)
		if err != nil {
			return nil, err
		}
		upShare := float64(st.UserPrefixCount) / float64(st.Requests)
		t.AddRow(e.policy.Name(), f1(st.QPS), pct(st.HitRate()), pct(upShare))
	}
	t.Notes = append(t.Notes,
		"the greedy oracle knows the true cache state yet never warms user caches, so it degenerates toward always-IP; hotness-aware admission is what converts user locality into hits")
	return t, nil
}
