package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"bat/internal/model"
	"bat/internal/tensor"
)

// EngineBenchResult records the batched engine's measured throughput on this
// machine — the BENCH_engine.json trajectory the acceptance criteria track.
// All rates are tokens/sec on the BenchGR paper-shaped config.
type EngineBenchResult struct {
	Config       string `json:"config"`
	PromptTokens int    `json:"prompt_tokens"`
	DecodeSteps  int    `json:"decode_steps"`
	// Cores is runtime.NumCPU; Parallelism the pool width the parallel
	// numbers were measured at. Speedups at 1 core reflect the batched
	// GEMM/blocking win alone.
	Cores       int `json:"cores"`
	Parallelism int `json:"parallelism"`

	ReferencePrefillTPS float64 `json:"reference_prefill_tokens_per_sec"`
	SingleThreadTPS     float64 `json:"single_thread_prefill_tokens_per_sec"`
	ParallelTPS         float64 `json:"parallel_prefill_tokens_per_sec"`
	DecodeTPS           float64 `json:"decode_tokens_per_sec"`

	// SingleThreadSpeedup is batched-at-width-1 over the token-at-a-time
	// reference; ParallelSpeedup is pool width N over width 1; TotalSpeedup
	// their product (parallel engine over the seed engine).
	SingleThreadSpeedup float64 `json:"single_thread_speedup"`
	ParallelSpeedup     float64 `json:"parallel_speedup"`
	TotalSpeedup        float64 `json:"total_speedup"`
}

// RunEngineBench measures the engine on this machine. Quick mode shrinks the
// prompt and iteration counts for smoke tests.
func RunEngineBench(opts Options) (*EngineBenchResult, error) {
	opts = opts.withDefaults()
	promptLen, iters, decodeSteps := 256, 3, 64
	if opts.Quick {
		promptLen, iters, decodeSteps = 48, 1, 8
	}
	cfg := model.BenchGR(1024)
	w := model.NewWeights(cfg, opts.Seed)
	rng := rand.New(rand.NewSource(opts.Seed))
	toks := make([]int, promptLen)
	pos := make([]int, promptLen)
	for i := range toks {
		toks[i] = rng.Intn(cfg.Vocab)
		pos[i] = i
	}

	prefillTPS := func(fwd func([]int, []int, model.Mask, *model.KVCache) *tensor.Matrix) float64 {
		var elapsed time.Duration
		for it := 0; it < iters; it++ {
			cache := model.NewKVCache(cfg)
			start := time.Now()
			fwd(toks, pos, nil, cache)
			elapsed += time.Since(start)
		}
		return float64(promptLen*iters) / elapsed.Seconds()
	}

	res := &EngineBenchResult{
		Config:       cfg.Name,
		PromptTokens: promptLen,
		DecodeSteps:  decodeSteps,
		Cores:        runtime.NumCPU(),
	}
	defer tensor.SetParallelism(0)

	tensor.SetParallelism(1)
	res.ReferencePrefillTPS = prefillTPS(w.ForwardReference)
	res.SingleThreadTPS = prefillTPS(w.Forward)

	tensor.SetParallelism(0)
	res.Parallelism = tensor.Parallelism()
	res.ParallelTPS = prefillTPS(w.Forward)

	// Decode: single-token extension of the full prompt context.
	cache := model.NewKVCache(cfg)
	w.Forward(toks, pos, nil, cache)
	start := time.Now()
	for i := 0; i < decodeSteps; i++ {
		w.Forward([]int{i % cfg.Vocab}, []int{promptLen}, nil, cache)
		cache.Truncate(promptLen)
	}
	res.DecodeTPS = float64(decodeSteps) / time.Since(start).Seconds()

	if res.ReferencePrefillTPS > 0 {
		res.SingleThreadSpeedup = res.SingleThreadTPS / res.ReferencePrefillTPS
		res.TotalSpeedup = res.ParallelTPS / res.ReferencePrefillTPS
	}
	if res.SingleThreadTPS > 0 {
		res.ParallelSpeedup = res.ParallelTPS / res.SingleThreadTPS
	}
	return res, nil
}

// EngineBench is the "engine" artifact: the measured throughput table for
// the batched multi-core engine versus the retained reference engine.
func EngineBench(opts Options) (*Table, error) {
	res, err := RunEngineBench(opts)
	if err != nil {
		return nil, err
	}
	return res.Table(), nil
}

// Table renders an already-measured result as the "engine" artifact table.
func (res *EngineBenchResult) Table() *Table {
	t := &Table{
		ID:     "engine",
		Title:  fmt.Sprintf("Batched engine throughput (%s, %d-token prefill, %d cores)", res.Config, res.PromptTokens, res.Cores),
		Header: []string{"engine path", "tokens/sec", "speedup vs reference"},
	}
	t.AddRow("reference (token-at-a-time)", f1(res.ReferencePrefillTPS), "1.0x")
	t.AddRow("batched, pool width 1", f1(res.SingleThreadTPS), f2(res.SingleThreadSpeedup)+"x")
	t.AddRow(fmt.Sprintf("batched, pool width %d", res.Parallelism), f1(res.ParallelTPS), f2(res.TotalSpeedup)+"x")
	t.AddRow("decode (1 token @ full ctx)", f1(res.DecodeTPS), "-")
	t.Notes = append(t.Notes,
		"bit-identical outputs on every path; speedups are throughput only",
		fmt.Sprintf("pool width %d over width 1: %.2fx", res.Parallelism, res.ParallelSpeedup))
	return t
}

// WriteEngineBenchJSON writes the result where the acceptance trajectory
// expects it (BENCH_engine.json at the repo root).
func WriteEngineBenchJSON(path string, res *EngineBenchResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
