package experiments

import (
	"os"
	"testing"
)

// TestServingBenchGate is the CI throughput gate for continuous batching:
// batched serving must beat the serialized (MaxBatch=1) baseline. It runs the
// full serving bench sweep (best-of-reps, rep-major pairing), so it takes a
// few seconds — opt in with BAT_BENCH_GATE=1; CI runs it on every push.
func TestServingBenchGate(t *testing.T) {
	if os.Getenv("BAT_BENCH_GATE") == "" {
		t.Skip("set BAT_BENCH_GATE=1 to run the batching throughput gate")
	}
	res, err := RunServingBench(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cores <= 0 {
		t.Fatalf("cores not recorded: %d", res.Cores)
	}
	for _, p := range res.Points {
		t.Logf("max-batch %2d: %8.1f req/s  avg batch %.2f  speedup %.3f  window %.3fms  deduped %d",
			p.MaxBatch, p.RequestsPerSec, p.AvgBatchSize, p.Speedup, p.WindowAvgMs, p.DedupedTokens)
	}
	var mb4 *ServingBenchPoint
	for i := range res.Points {
		if res.Points[i].MaxBatch == 4 {
			mb4 = &res.Points[i]
		}
	}
	if mb4 == nil {
		t.Fatal("sweep has no max-batch 4 point")
	}
	if mb4.Speedup < 1.0 {
		t.Fatalf("batched serving at max-batch 4 is SLOWER than serialized: speedup %.3f < 1.0 (%.1f vs %.1f req/s on %d cores) — the continuous-batching regression is back",
			mb4.Speedup, mb4.RequestsPerSec, res.Points[0].RequestsPerSec, res.Cores)
	}
	if mb4.AvgBatchSize <= 1.0 {
		t.Fatalf("max-batch 4 formed no batches (avg batch %.2f); the speedup says nothing about batching", mb4.AvgBatchSize)
	}
}
