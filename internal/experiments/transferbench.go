package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"time"

	"bat/internal/distserve"
	"bat/internal/model"
)

// TransferBenchResult records the KV transfer engine's measured performance
// on this machine — the BENCH_transfer.json artifact. Codec numbers compare
// the BKV2 bulk byte-block paths against the portable scalar fallback on the
// same payload; fetch numbers time real HTTP round trips against a cache
// worker with the streaming frame decoder; delta numbers replay an
// append-heavy store workload and count bytes on the wire.
type TransferBenchResult struct {
	Model        string `json:"model"`
	Tokens       int    `json:"tokens"`
	PayloadBytes int    `json:"payload_bytes"`

	// Codec throughput, MB/s (1e6 bytes) over the encoded payload.
	MarshalMBps       float64 `json:"marshal_mb_s"`
	UnmarshalMBps     float64 `json:"unmarshal_mb_s"`
	ScalarMarshalMBps float64 `json:"scalar_marshal_mb_s"`
	ScalarUnmarshMBps float64 `json:"scalar_unmarshal_mb_s"`
	StreamDecodeMBps  float64 `json:"stream_decode_mb_s"`
	// BulkUnmarshalSpeedup is the ratio the CI gate pins (>=5x on
	// little-endian hosts).
	BulkUnmarshalSpeedup float64 `json:"bulk_unmarshal_speedup"`

	// Streaming fetch over real HTTP: decode overlaps receive.
	Fetches       int     `json:"fetches"`
	BytesPerFetch int     `json:"bytes_per_fetch"`
	FetchP50Ms    float64 `json:"fetch_p50_ms"`
	FetchP99Ms    float64 `json:"fetch_p99_ms"`
	FetchMBps     float64 `json:"fetch_mb_s"`

	// Append-heavy store workload: one full PUT then suffix-only PATCH
	// deltas, versus re-PUTting the whole payload each step.
	StoreSteps     int     `json:"store_steps"`
	FullStoreBytes int64   `json:"full_store_bytes"`
	DeltaBytes     int64   `json:"delta_store_bytes"`
	DeltaReduction float64 `json:"delta_byte_reduction"`
}

// transferBenchCache builds a tokens-long cache of real forward-pass rows.
func transferBenchCache(cfg model.Config, tokens int, seed int64) (*model.KVCache, error) {
	c := model.NewKVCache(cfg)
	w := model.NewWeights(cfg, seed)
	rng := rand.New(rand.NewSource(seed))
	toks := make([]int, tokens)
	pos := make([]int, tokens)
	for i := range toks {
		toks[i] = rng.Intn(cfg.Vocab)
		pos[i] = i
	}
	w.Forward(toks, pos, nil, c)
	return c, nil
}

// mbps converts a best-of per-op duration over size bytes to MB/s.
func mbps(size int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(size) / 1e6 / d.Seconds()
}

// bestOf runs fn reps times, iters iterations per rep, returning the fastest
// per-iteration duration (max throughput ≈ least interference).
func bestOf(reps, iters int, fn func() error) (time.Duration, error) {
	best := time.Duration(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := fn(); err != nil {
				return 0, err
			}
		}
		d := time.Since(start) / time.Duration(iters)
		if r == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// RunTransferBench measures the transfer engine end to end: codec MB/s (bulk
// and forced-scalar), streaming fetch latency against a real cache-worker
// HTTP server, and delta-vs-full bytes on an append-heavy store replay.
func RunTransferBench(opts Options) (*TransferBenchResult, error) {
	opts = opts.withDefaults()
	// BenchGR at 256 tokens is ~1MB — cache-resident like the per-layer
	// frames the streaming path decodes, so the codec columns compare codecs
	// rather than DRAM bandwidth (mirrors the model package's gate bench).
	cfg := model.BenchGR(64)
	tokens, fetches, reps, iters := 256, 200, 5, 10
	if opts.Quick {
		tokens, fetches, reps, iters = 64, 20, 2, 2
	}
	c, err := transferBenchCache(cfg, tokens, opts.Seed)
	if err != nil {
		return nil, err
	}
	data, err := c.MarshalBinary()
	if err != nil {
		return nil, err
	}
	res := &TransferBenchResult{
		Model: cfg.Name, Tokens: tokens, PayloadBytes: len(data),
		Fetches: fetches, BytesPerFetch: len(data),
	}

	out := model.NewKVCache(cfg)
	marshal, err := bestOf(reps, iters, func() error { _, err := c.MarshalBinary(); return err })
	if err != nil {
		return nil, err
	}
	unmarshal, err := bestOf(reps, iters, func() error { return out.UnmarshalBinary(data) })
	if err != nil {
		return nil, err
	}
	stream, err := bestOf(reps, iters, func() error {
		_, err := out.ReadFrom(bytes.NewReader(data))
		return err
	})
	if err != nil {
		return nil, err
	}
	prev := model.ForceScalarCodec(true)
	scalarMarshal, err := bestOf(reps, iters, func() error { _, err := c.MarshalBinary(); return err })
	if err == nil {
		var d time.Duration
		d, err = bestOf(reps, iters, func() error { return out.UnmarshalBinary(data) })
		if err == nil {
			res.ScalarUnmarshMBps = mbps(len(data), d)
			if unmarshal > 0 {
				res.BulkUnmarshalSpeedup = float64(d) / float64(unmarshal)
			}
		}
	}
	model.ForceScalarCodec(prev)
	if err != nil {
		return nil, err
	}
	res.MarshalMBps = mbps(len(data), marshal)
	res.UnmarshalMBps = mbps(len(data), unmarshal)
	res.StreamDecodeMBps = mbps(len(data), stream)
	res.ScalarMarshalMBps = mbps(len(data), scalarMarshal)

	// Streaming fetch against a real worker over HTTP: GET + frame-decode
	// straight off the response body, the frontend's receive-overlap path.
	cw, err := distserve.NewCacheWorker(int64(4 * len(data)))
	if err != nil {
		return nil, err
	}
	if err := cw.Put("item/1", data); err != nil {
		return nil, err
	}
	srv := httptest.NewServer(cw.Handler())
	defer srv.Close()
	lat := make([]time.Duration, 0, fetches)
	for i := 0; i < fetches; i++ {
		start := time.Now()
		resp, err := http.Get(srv.URL + "/kv/item/1")
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("transferbench: fetch status %d", resp.StatusCode)
		}
		if _, err := out.ReadFrom(resp.Body); err != nil {
			resp.Body.Close()
			return nil, err
		}
		resp.Body.Close()
		lat = append(lat, time.Since(start))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res.FetchP50Ms = lat[len(lat)/2].Seconds() * 1e3
	res.FetchP99Ms = lat[len(lat)*99/100].Seconds() * 1e3
	res.FetchMBps = mbps(len(data), lat[len(lat)/2])

	// Append-heavy store replay: grow the cache in steps, PATCHing only the
	// suffix each step, versus re-PUTting the whole payload.
	step := tokens / 8
	if step < 1 {
		step = 1
	}
	grown, err := transferBenchCache(cfg, tokens, opts.Seed)
	if err != nil {
		return nil, err
	}
	first := step
	prefix, err := grown.MarshalRange(0, first)
	if err != nil {
		return nil, err
	}
	if err := cw.Put("user/1", prefix); err != nil {
		return nil, err
	}
	res.DeltaBytes = int64(len(prefix))
	res.FullStoreBytes = int64(len(prefix))
	for from := first; from+step <= tokens; from += step {
		res.StoreSteps++
		delta, err := grown.MarshalRange(from, from+step)
		if err != nil {
			return nil, err
		}
		stored, ok := cw.Get("user/1")
		if !ok {
			return nil, fmt.Errorf("transferbench: stored prefix vanished")
		}
		sum := model.ChecksumEncoded(stored)
		req, _ := http.NewRequest(http.MethodPatch,
			srv.URL+"/kv/user/1?from="+strconv.Itoa(from), bytes.NewReader(delta))
		req.Header.Set("X-KV-Checksum", strconv.FormatUint(sum, 16))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			return nil, fmt.Errorf("transferbench: append status %d", resp.StatusCode)
		}
		res.DeltaBytes += int64(len(delta))
		full, err := grown.MarshalRange(0, from+step)
		if err != nil {
			return nil, err
		}
		res.FullStoreBytes += int64(len(full))
	}
	if res.FullStoreBytes > 0 {
		res.DeltaReduction = 1 - float64(res.DeltaBytes)/float64(res.FullStoreBytes)
	}
	return res, nil
}

// TransferBench is the "transferbench" artifact.
func TransferBench(opts Options) (*Table, error) {
	res, err := RunTransferBench(opts)
	if err != nil {
		return nil, err
	}
	return res.Table(), nil
}

// Table renders an already-measured result as the "transferbench" artifact.
func (res *TransferBenchResult) Table() *Table {
	t := &Table{
		ID:     "transferbench",
		Title:  fmt.Sprintf("KV transfer engine (%s, %d tokens, %d-byte payload)", res.Model, res.Tokens, res.PayloadBytes),
		Header: []string{"metric", "bulk", "scalar", "ratio"},
	}
	t.AddRow("marshal MB/s", f1(res.MarshalMBps), f1(res.ScalarMarshalMBps),
		f2(ratioOf(res.MarshalMBps, res.ScalarMarshalMBps))+"x")
	t.AddRow("unmarshal MB/s", f1(res.UnmarshalMBps), f1(res.ScalarUnmarshMBps),
		f2(res.BulkUnmarshalSpeedup)+"x")
	t.AddRow("stream decode MB/s", f1(res.StreamDecodeMBps), "-", "-")
	t.AddRow("fetch p50 / p99 ms", f2(res.FetchP50Ms), f2(res.FetchP99Ms), f1(res.FetchMBps)+" MB/s")
	t.AddRow("store bytes (delta vs full)", fmt.Sprintf("%d", res.DeltaBytes),
		fmt.Sprintf("%d", res.FullStoreBytes), pct(res.DeltaReduction)+" saved")
	t.Notes = append(t.Notes,
		"bulk = BKV2 byte-block codec, scalar = portable per-float fallback",
		fmt.Sprintf("fetch = %d streamed HTTP GETs against a live cache worker, decode overlapping receive", res.Fetches),
		fmt.Sprintf("delta row replays %d append-heavy store steps (PUT prefix + PATCH suffixes)", res.StoreSteps))
	return t
}

func ratioOf(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// WriteTransferBenchJSON writes the result where the acceptance trajectory
// expects it (BENCH_transfer.json at the repo root).
func WriteTransferBenchJSON(path string, res *TransferBenchResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
