package experiments

import (
	"math/rand"
	"testing"

	"bat/internal/bipartite"
	"bat/internal/model"
	"bat/internal/ranking"
	"bat/internal/serving"
	"bat/internal/tensor"
)

// benchBatch builds the serving bench's model and a batch of warm
// UserPrefix requests, the steady-state unit the serving core packs.
func benchBatch(b *testing.B, n int) (*ranking.Ranker, []bipartite.BatchItem) {
	b.Helper()
	ds, err := ranking.NewDataset(ranking.DatasetConfig{
		Name: "packedbench", Items: 120, Users: 40, Clusters: 6, LatentDim: 8,
		HistoryMin: 6, HistoryMax: 12, ItemAttrTokens: 1,
		ClusterNoise: 0.15, Candidates: 10, HardNegatives: 2, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	r, err := ranking.NewRanker(ds, ranking.VariantBase)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	items := make([]bipartite.BatchItem, n)
	for i := range items {
		cands := make([]int, 6)
		for j := range cands {
			cands[j] = rng.Intn(120)
		}
		req := ranking.EvalRequest{User: i % 40, Candidates: cands}
		l, err := r.BuildLayout(req, bipartite.UserPrefix, false)
		if err != nil {
			b.Fatal(err)
		}
		user := model.NewKVCache(r.W.Config())
		r.W.Forward(l.Tokens[:l.PrefixLen], l.Pos[:l.PrefixLen], l.Mask(), user)
		items[i] = bipartite.BatchItem{Layout: l, Caches: bipartite.CacheSet{User: user}}
	}
	return r, items
}

// benchBatchMiss is benchBatch in the churn regime: no user caches, so every
// item is a user-prefix miss the executor must recompute — the steady state
// the serving bench's cycling trace produces.
func benchBatchMiss(b *testing.B, n int) (*ranking.Ranker, []bipartite.BatchItem) {
	b.Helper()
	r, items := benchBatch(b, n)
	miss := make([]bipartite.BatchItem, n)
	for i, it := range items {
		miss[i] = bipartite.BatchItem{Layout: it.Layout}
	}
	return r, miss
}

func BenchmarkExecuteSerialMiss8(b *testing.B) {
	defer tensor.SetParallelism(0)
	tensor.SetParallelism(1)
	r, items := benchBatchMiss(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, it := range items {
			if _, err := bipartite.Execute(r.W, it.Layout, it.Caches); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkExecutePackedMiss8(b *testing.B) {
	defer tensor.SetParallelism(0)
	tensor.SetParallelism(1)
	r, items := benchBatchMiss(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bipartite.ExecuteBatch(r.W, items); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteSerialWarm8(b *testing.B) {
	defer tensor.SetParallelism(0)
	tensor.SetParallelism(1)
	r, items := benchBatch(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, it := range items {
			if _, err := bipartite.Execute(r.W, it.Layout, it.Caches); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkExecutePackedWarm8(b *testing.B) {
	defer tensor.SetParallelism(0)
	tensor.SetParallelism(1)
	r, items := benchBatch(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bipartite.ExecuteBatch(r.W, items); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = serving.Config{} // keep import if unused in future edits
