package experiments

import (
	"os"
	"testing"
)

// TestPartitionBenchQuick smoke-tests the shifting-workload bench end to end
// at Quick scale: the comparison runs, rates are sane, and the adaptive
// controller actually moved capacity.
func TestPartitionBenchQuick(t *testing.T) {
	res, err := RunPartitionBench(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Statics) != 3 || res.BestStatic == "" {
		t.Fatalf("static baselines incomplete: %+v", res)
	}
	for _, r := range append([]PartitionRun{res.Adaptive}, res.Statics...) {
		if r.TokenHitRate <= 0 || r.TokenHitRate >= 1 {
			t.Fatalf("%s: degenerate hit rate %v", r.Name, r.TokenHitRate)
		}
		if len(r.PhaseHitRates) != 3 {
			t.Fatalf("%s: phase rates %v", r.Name, r.PhaseHitRates)
		}
	}
	if res.Adaptive.Moves == 0 || res.Adaptive.MovedBytes == 0 {
		t.Fatalf("controller never moved capacity: %+v", res.Adaptive)
	}
	for _, r := range res.Statics {
		// Page-granularity rounding aside, a static split must not move.
		if diff := r.FinalItemFraction - r.ItemFraction; diff > 0.001 || diff < -0.001 {
			t.Fatalf("static split drifted: %+v", r)
		}
		if r.Moves != 0 {
			t.Fatalf("static run recorded controller moves: %+v", r)
		}
	}
	if tbl := res.Table(); len(tbl.Rows) != 4 {
		t.Fatalf("table rows: %d", len(tbl.Rows))
	}
}

// TestPartitionGate is the CI acceptance gate for the adaptive capacity
// partition: on the full seeded shifting trace the controller must beat every
// static split {0.5, 0.7, 0.85} on combined token hit rate. Opt in with
// BAT_PARTITION_GATE=1; CI runs it on every push.
func TestPartitionGate(t *testing.T) {
	if os.Getenv("BAT_PARTITION_GATE") == "" {
		t.Skip("set BAT_PARTITION_GATE=1 to run the partition acceptance gate")
	}
	res, err := RunPartitionBench(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("adaptive: %.4f (final item frac %.2f, %d moves)",
		res.Adaptive.TokenHitRate, res.Adaptive.FinalItemFraction, res.Adaptive.Moves)
	for _, r := range res.Statics {
		t.Logf("%s: %.4f (phases %v)", r.Name, r.TokenHitRate, r.PhaseHitRates)
		if res.Adaptive.TokenHitRate <= r.TokenHitRate {
			t.Errorf("adaptive %.4f does not beat %s %.4f — the controller is not earning its keep",
				res.Adaptive.TokenHitRate, r.Name, r.TokenHitRate)
		}
	}
	if res.AdaptiveGain <= 0 {
		t.Fatalf("adaptive gain %+.4f over %s", res.AdaptiveGain, res.BestStatic)
	}
}
