package experiments

import "testing"

// TestTransferBenchQuick runs the transfer bench in quick mode and checks the
// result is internally consistent: positive throughputs, a recorded
// bulk-vs-scalar ratio, and the delta replay actually moving fewer bytes than
// full re-PUTs (the >=50% acceptance bound holds even at quick scale because
// the step size is a fixed 1/8 of the token count).
func TestTransferBenchQuick(t *testing.T) {
	res, err := RunTransferBench(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.PayloadBytes <= 0 || res.Tokens <= 0 {
		t.Fatalf("payload not recorded: %+v", res)
	}
	for name, v := range map[string]float64{
		"marshal":          res.MarshalMBps,
		"unmarshal":        res.UnmarshalMBps,
		"scalar marshal":   res.ScalarMarshalMBps,
		"scalar unmarshal": res.ScalarUnmarshMBps,
		"stream decode":    res.StreamDecodeMBps,
		"fetch":            res.FetchMBps,
	} {
		if v <= 0 {
			t.Errorf("%s MB/s not positive: %f", name, v)
		}
	}
	if res.BulkUnmarshalSpeedup <= 0 {
		t.Errorf("bulk unmarshal speedup not recorded: %f", res.BulkUnmarshalSpeedup)
	}
	if res.FetchP50Ms <= 0 || res.FetchP99Ms < res.FetchP50Ms {
		t.Errorf("fetch percentiles inconsistent: p50=%f p99=%f", res.FetchP50Ms, res.FetchP99Ms)
	}
	if res.StoreSteps <= 0 {
		t.Fatalf("no store steps replayed")
	}
	if res.DeltaBytes >= res.FullStoreBytes {
		t.Fatalf("delta replay moved %d bytes, full would move %d", res.DeltaBytes, res.FullStoreBytes)
	}
	if res.DeltaReduction < 0.5 {
		t.Errorf("delta byte reduction %.3f below the 50%% acceptance bound", res.DeltaReduction)
	}
	// The registered artifact renders the same measurements as a table.
	runQuick(t, "transferbench")
}
