package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"

	"bat/internal/kvcache"
	"bat/internal/partition"
	"bat/internal/workload"
)

// partitionbench validates the adaptive capacity partition controller on the
// workload static splits handle worst: a trace whose demand shifts between
// the user-prefix and HRCS item cache classes.
//
// Two kvcache.Pools (one per class) share a fixed byte total across three
// phases:
//
//  1. item-heavy: a hot burst block dominates retrieval while users arrive
//     uniformly from the full population (no profile reuse);
//  2. user-heavy: a small active user set returns over and over while
//     candidates fall back to the Zipf corpus;
//  3. item-heavy again, with the hot block rotating mid-phase (ChurnSec) —
//     the hot-item churn stress case.
//
// Every static split is wrong for at least one phase. The adaptive run wires
// a partition.Controller to the pools' token-weighted hit/miss counters and
// ghost lists (misses on recently evicted keys — the would-have-hit signal)
// and must beat the best static on combined token hit rate.

// partitionStaticFractions are the static item-fraction baselines the
// acceptance gate compares against.
var partitionStaticFractions = []float64{0.5, 0.7, 0.85}

const (
	partitionBytesPerToken = 256
	partitionPageBytes     = 4096
	partitionTotalBytes    = int64(12) << 20
	partitionActiveUsers   = 30
)

// PartitionRun is one split policy's side of the comparison.
type PartitionRun struct {
	Name string `json:"name"`
	// ItemFraction is the item class's share of the byte total at boot.
	ItemFraction float64 `json:"item_fraction"`
	// TokenHitRate is hit tokens over looked-up tokens across both classes.
	TokenHitRate float64 `json:"token_hit_rate"`
	UserHitRate  float64 `json:"user_token_hit_rate"`
	ItemHitRate  float64 `json:"item_token_hit_rate"`
	// PhaseHitRates is the combined token hit rate per workload phase.
	PhaseHitRates []float64 `json:"phase_token_hit_rates"`
	// FinalItemFraction is where the split ended (equals ItemFraction for
	// statics; the controller moves it for adaptive).
	FinalItemFraction float64 `json:"final_item_fraction"`
	MovedBytes        int64   `json:"moved_bytes,omitempty"`
	Moves             int64   `json:"moves,omitempty"`
}

// PartitionBenchResult records the adaptive-vs-static comparison for
// BENCH_partition.json.
type PartitionBenchResult struct {
	Requests   int   `json:"requests"`
	Seed       int64 `json:"seed"`
	TotalBytes int64 `json:"total_bytes"`
	// Adaptive is the controller-driven run; Statics the fixed splits.
	Adaptive PartitionRun   `json:"adaptive"`
	Statics  []PartitionRun `json:"statics"`
	// BestStatic names the strongest static baseline; AdaptiveGain is the
	// adaptive hit rate minus that baseline's (positive = adaptive wins).
	BestStatic   string  `json:"best_static"`
	AdaptiveGain float64 `json:"adaptive_gain"`
}

// partitionPhase binds one third of the trace to a candidate generator and a
// user-arrival mode.
type partitionPhase struct {
	name string
	gen  *workload.Generator
	// activeUsers > 0 draws users from a small recurring set (user-heavy);
	// 0 draws uniformly from the full population (user churn).
	activeUsers int
}

// partitionPhases builds the three-phase shifting workload. The generators
// share one seed, so token counts per user/item are identical across phases;
// only the candidate mix shifts.
func partitionPhases(seed int64) ([]partitionPhase, error) {
	prof := workload.Games
	always := func(b workload.Burst) *workload.Burst { b.StartSec, b.EndSec = 0, 1e9; return &b }

	itemA := prof
	itemA.Burst = always(workload.Burst{FirstItem: 4000, Items: 2000, Share: 0.95})
	userHeavy := prof // no burst: Zipf + affinity candidates
	itemB := prof
	// Rotating hot block: three epochs within the 90-virtual-second phase.
	itemB.Burst = always(workload.Burst{FirstItem: 1000, Items: 1200, Share: 0.95, ChurnSec: 30})

	phases := make([]partitionPhase, 0, 3)
	for _, spec := range []struct {
		name   string
		prof   workload.Profile
		active int
	}{
		{"item-hot", itemA, 0},
		{"user-heavy", userHeavy, partitionActiveUsers},
		{"item-churn", itemB, 0},
	} {
		g, err := workload.NewGenerator(spec.prof, seed)
		if err != nil {
			return nil, err
		}
		phases = append(phases, partitionPhase{name: spec.name, gen: g, activeUsers: spec.active})
	}
	return phases, nil
}

// partitionClassCounters is one class's token-weighted traffic tally.
type partitionClassCounters struct {
	hitTokens, missTokens int64
}

func (c *partitionClassCounters) rate() float64 {
	total := c.hitTokens + c.missTokens
	if total == 0 {
		return 0
	}
	return float64(c.hitTokens) / float64(total)
}

// runPartitionSplit replays the shifting trace against a user/item pool pair
// booted at itemFrac. With adaptive set, a partition controller re-divides
// the split from the live counters; otherwise the split is frozen.
func runPartitionSplit(opts Options, itemFrac float64, adaptive bool) (*PartitionRun, error) {
	newPool := func(capacity int64) (*kvcache.Pool, error) {
		return kvcache.NewPool(capacity, partitionPageBytes, partitionBytesPerToken, kvcache.EvictLRU)
	}
	itemBytes := int64(itemFrac * float64(partitionTotalBytes))
	itemPool, err := newPool(itemBytes)
	if err != nil {
		return nil, err
	}
	userPool, err := newPool(partitionTotalBytes - itemBytes)
	if err != nil {
		return nil, err
	}

	var userC, itemC partitionClassCounters
	var ctrl *partition.Controller
	if adaptive {
		poolClass := func(name string, p *kvcache.Pool, c *partitionClassCounters) partition.Class {
			return partition.Class{
				Name: name,
				Stats: func() partition.ClassStats {
					return partition.ClassStats{
						Hits:      c.hitTokens,
						Misses:    c.missTokens,
						GhostHits: p.GhostHitTokens,
					}
				},
				Capacity:    p.CapacityBytes,
				SetCapacity: p.SetCapacityBytes,
			}
		}
		ctrl, err = partition.New(partition.Config{
			StepFraction:    0.08,
			FloorFraction:   0.10,
			Hysteresis:      0.10,
			WindowTicks:     4,
			MinSampleTokens: 1000,
		}, poolClass("user", userPool, &userC), poolClass("item", itemPool, &itemC))
		if err != nil {
			return nil, err
		}
	}

	phases, err := partitionPhases(opts.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x70617274))
	active := make([]workload.UserID, partitionActiveUsers)
	for i := range active {
		// The active set skips rank 0..99 so it does not collide with the
		// Zipf head the churn phases occasionally sample.
		active[i] = workload.UserID(100 + i)
	}

	requests := opts.Requests
	perPhase := requests / len(phases)
	tickEvery := perPhase / 33
	if tickEvery < 10 {
		tickEvery = 10
	}
	phaseRates := make([]float64, len(phases))
	run := &PartitionRun{Name: fmt.Sprintf("static-%.2f", itemFrac), ItemFraction: itemFrac}
	if adaptive {
		run.Name = "adaptive"
	}

	reqIdx := 0
	for pi, ph := range phases {
		startU, startI := userC, itemC
		n := perPhase
		if pi == len(phases)-1 {
			n = requests - perPhase*(len(phases)-1)
		}
		for i := 0; i < n; i++ {
			// Virtual time sweeps 0..90s across the phase so ChurnSec
			// rotates the hot block mid-phase.
			t := 90 * float64(i) / float64(n)
			var u workload.UserID
			if ph.activeUsers > 0 {
				u = active[rng.Intn(ph.activeUsers)]
			} else {
				u = workload.UserID(rng.Intn(ph.gen.Profile().Users))
			}

			userKey := kvcache.EntryKey{Kind: kvcache.UserEntry, ID: u}
			ut := ph.gen.UserTokens(u)
			if _, ok := userPool.Lookup(userKey); ok {
				userC.hitTokens += int64(ut)
			} else {
				userC.missTokens += int64(ut)
				userPool.Put(userKey, ut, 1)
			}

			for _, it := range ph.gen.CandidatesAt(uint64(reqIdx), u, t) {
				itKey := kvcache.EntryKey{Kind: kvcache.ItemEntry, ID: it}
				itTok := ph.gen.ItemTokens(it)
				if _, ok := itemPool.Lookup(itKey); ok {
					itemC.hitTokens += int64(itTok)
				} else {
					itemC.missTokens += int64(itTok)
					itemPool.Put(itKey, itTok, 1)
				}
			}
			reqIdx++
			if ctrl != nil && reqIdx%tickEvery == 0 {
				ctrl.Tick()
			}
		}
		du := partitionClassCounters{userC.hitTokens - startU.hitTokens, userC.missTokens - startU.missTokens}
		di := partitionClassCounters{itemC.hitTokens - startI.hitTokens, itemC.missTokens - startI.missTokens}
		both := partitionClassCounters{du.hitTokens + di.hitTokens, du.missTokens + di.missTokens}
		phaseRates[pi] = both.rate()
	}

	combined := partitionClassCounters{userC.hitTokens + itemC.hitTokens, userC.missTokens + itemC.missTokens}
	run.TokenHitRate = combined.rate()
	run.UserHitRate = userC.rate()
	run.ItemHitRate = itemC.rate()
	run.PhaseHitRates = phaseRates
	run.FinalItemFraction = float64(itemPool.CapacityBytes()) / float64(partitionTotalBytes)
	if ctrl != nil {
		st := ctrl.Status()
		run.MovedBytes, run.Moves = st.MovedBytes, st.Moves
	}
	return run, nil
}

// RunPartitionBench measures the adaptive controller against every static
// split on the same seeded shifting trace.
func RunPartitionBench(opts Options) (*PartitionBenchResult, error) {
	opts = opts.withDefaults()
	res := &PartitionBenchResult{
		Requests:   opts.Requests,
		Seed:       opts.Seed,
		TotalBytes: partitionTotalBytes,
	}
	adaptive, err := runPartitionSplit(opts, 0.5, true)
	if err != nil {
		return nil, err
	}
	res.Adaptive = *adaptive
	best := -1.0
	for _, frac := range partitionStaticFractions {
		run, err := runPartitionSplit(opts, frac, false)
		if err != nil {
			return nil, err
		}
		res.Statics = append(res.Statics, *run)
		if run.TokenHitRate > best {
			best = run.TokenHitRate
			res.BestStatic = run.Name
		}
	}
	res.AdaptiveGain = res.Adaptive.TokenHitRate - best
	return res, nil
}

// PartitionBench is the "partitionbench" artifact.
func PartitionBench(opts Options) (*Table, error) {
	res, err := RunPartitionBench(opts)
	if err != nil {
		return nil, err
	}
	return res.Table(), nil
}

// Table renders an already-measured result as the "partitionbench" artifact.
func (res *PartitionBenchResult) Table() *Table {
	t := &Table{
		ID: "partitionbench",
		Title: fmt.Sprintf("Adaptive capacity partition vs static splits (%d reqs, %d MiB shared)",
			res.Requests, res.TotalBytes>>20),
		Header: []string{"split", "token hit rate", "user", "item", "phase1", "phase2", "phase3", "final item frac"},
	}
	row := func(r PartitionRun) {
		cells := []string{r.Name, pct(r.TokenHitRate), pct(r.UserHitRate), pct(r.ItemHitRate)}
		for _, pr := range r.PhaseHitRates {
			cells = append(cells, pct(pr))
		}
		cells = append(cells, f2(r.FinalItemFraction))
		t.AddRow(cells...)
	}
	row(res.Adaptive)
	for _, r := range res.Statics {
		row(r)
	}
	t.Notes = append(t.Notes,
		"phases: item-hot burst -> user-heavy active set -> item burst with hot-block churn",
		fmt.Sprintf("adaptive gain over best static (%s): %+.1f pts, %d moves / %d MiB shifted",
			res.BestStatic, res.AdaptiveGain*100, res.Adaptive.Moves, res.Adaptive.MovedBytes>>20))
	return t
}

// WritePartitionBenchJSON writes the result where the acceptance trajectory
// expects it (BENCH_partition.json at the repo root).
func WritePartitionBenchJSON(path string, res *PartitionBenchResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
