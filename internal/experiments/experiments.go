// Package experiments regenerates every table and figure in the paper's
// evaluation from the reproduced system. Each runner returns a Table whose
// rows mirror what the paper reports; cmd/batbench prints them and
// bench_test.go wraps each in a benchmark.
//
// Scale note: the paper's clusters serve 1.5B–7B-parameter models on A100s
// and H20s against production traffic. The reproduction keeps every
// algorithm and architecture intact but runs the serving experiments in
// virtual time on reduced traces, with per-node KV memory scaled down
// (12 GB instead of 150 GB) so the active user working set exerts the same
// pressure the full population exerts at production scale. EXPERIMENTS.md
// records paper-vs-measured values for every artifact.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Table is one regenerated artifact.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	rows := append([][]string{t.Header}, t.Rows...)
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range rows {
		for i, c := range row {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			if i < len(row)-1 {
				b.WriteString(strings.Repeat(" ", pad+2))
			}
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				b.WriteString(strings.Repeat("-", w))
				if i < len(widths)-1 {
					b.WriteString("  ")
				}
			}
			b.WriteByte('\n')
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Options tunes experiment scale.
type Options struct {
	// Requests is the trace length per serving simulation (default 4000).
	Requests int
	// Seed makes runs reproducible (default 11).
	Seed int64
	// Quick shrinks everything for unit tests and smoke runs.
	Quick bool
}

func (o Options) withDefaults() Options {
	if o.Requests == 0 {
		// Dense enough that cache-reuse distances exceed the scaled user
		// pools the way production traffic exceeds the real ones.
		o.Requests = 20000
		if o.Quick {
			o.Requests = 800
		}
	}
	if o.Seed == 0 {
		o.Seed = 11
	}
	return o
}

// Runner produces one artifact.
type Runner func(Options) (*Table, error)

// Registry maps artifact IDs to runners, in paper order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"fig2a", Fig2aLatency},
		{"fig2b", Fig2bUserTokenCDF},
		{"fig2c", Fig2cUserFreqCDF},
		{"fig2d", Fig2dItemFreqCDF},
		{"table1", Table1Datasets},
		{"table2", Table2Models},
		{"fig4", Fig4FreqConsistency},
		{"fig5", Fig5QPS},
		{"fig6", Fig6HitRate},
		{"table3", Table3Accuracy},
		{"fig7", Fig7Placement},
		{"fig8", Fig8Scheduling},
		{"table4", Table4Ablation},
		{"fig9", Fig9LatencyCurve},
		{"fig10", Fig10DatasetScale},
		{"fig11", Fig11NodeScale},
		// Engine micro-benchmark: the batched multi-core compute core the
		// serving experiments run on (see enginebench.go).
		{"engine", EngineBench},
		// Serving-core benchmark: end-to-end continuous-batching throughput
		// versus the serialized pipeline (see servingbench.go).
		{"servingbench", ServingBench},
		// Transfer-engine benchmark: BKV2 codec MB/s, streamed fetch latency,
		// and delta-vs-full store bytes (see transferbench.go).
		{"transferbench", TransferBench},
		// Routing-tier benchmark: cache-affinity versus round-robin routing
		// across two serving cells behind a live router (see routerbench.go).
		{"routerbench", RouterBench},
		// Capacity-partition benchmark: the adaptive user/item split
		// controller versus static splits on a shifting workload (see
		// partitionbench.go).
		{"partitionbench", PartitionBench},
		// Beyond the paper's evaluation section: passing claims and design
		// knobs (see extensions.go).
		{"ext-candidates", ExtCandidateSweep},
		{"ext-alpha", ExtAlphaSweep},
		{"ext-burst", ExtBurstRefresh},
		{"ext-tier", ExtSlowTier},
		{"ext-gpu", ExtGPUResidentItems},
		{"ext-oracle", ExtSchedulerLattice},
	}
}

// Lookup finds a runner by ID.
func Lookup(id string) (Runner, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

// IDs returns all artifact IDs in order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, len(reg))
	for i, e := range reg {
		ids[i] = e.ID
	}
	return ids
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
func ms(v float64) string  { return fmt.Sprintf("%.1fms", v*1e3) }

// sortedKeys returns map keys in sorted order (deterministic tables).
func sortedKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
