package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestEngineBenchShape(t *testing.T) {
	tab := runQuick(t, "engine")
	if len(tab.Rows) != 4 {
		t.Fatalf("engine table has %d rows, want 4", len(tab.Rows))
	}
	if len(tab.Header) != 3 {
		t.Fatalf("engine table has %d columns, want 3", len(tab.Header))
	}
}

func TestRunEngineBenchMeasuresEveryPath(t *testing.T) {
	res, err := RunEngineBench(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"reference":     res.ReferencePrefillTPS,
		"single-thread": res.SingleThreadTPS,
		"parallel":      res.ParallelTPS,
		"decode":        res.DecodeTPS,
	} {
		if v <= 0 {
			t.Errorf("%s tokens/sec = %v, want > 0", name, v)
		}
	}
	if res.Parallelism <= 0 || res.Cores <= 0 {
		t.Fatalf("parallelism %d / cores %d not recorded", res.Parallelism, res.Cores)
	}
}

func TestWriteEngineBenchJSONRoundTrip(t *testing.T) {
	res, err := RunEngineBench(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_engine.json")
	if err := WriteEngineBenchJSON(path, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back EngineBenchResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Config != res.Config || back.PromptTokens != res.PromptTokens {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, res)
	}
}
