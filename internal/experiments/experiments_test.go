package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quickOpts() Options { return Options{Quick: true, Seed: 11} }

// runQuick executes a runner in quick mode and sanity-checks its table.
func runQuick(t *testing.T, id string) *Table {
	t.Helper()
	run, ok := Lookup(id)
	if !ok {
		t.Fatalf("runner %s not registered", id)
	}
	tab, err := run(quickOpts())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if tab.ID != id {
		t.Fatalf("%s: table reports ID %s", id, tab.ID)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s: no rows", id)
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("%s row %d: %d cells for %d columns", id, i, len(row), len(tab.Header))
		}
	}
	if !strings.Contains(tab.Format(), tab.Title) {
		t.Fatalf("%s: Format() lacks title", id)
	}
	return tab
}

func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimSuffix(cell, "%"), "ms")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig2a", "fig2b", "fig2c", "fig2d", "table1", "table2",
		"fig4", "fig5", "fig6", "table3", "fig7", "fig8", "table4",
		"fig9", "fig10", "fig11", "engine", "servingbench", "transferbench",
		"routerbench", "partitionbench",
		"ext-candidates", "ext-alpha", "ext-burst", "ext-tier", "ext-gpu", "ext-oracle"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus ID resolved")
	}
}

func TestFig2aShape(t *testing.T) {
	tab := runQuick(t, "fig2a")
	// 3 models x 5 lengths.
	if len(tab.Rows) != 15 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Prefix load must be cheaper than recompute in every row.
	for _, row := range tab.Rows {
		if cellFloat(t, row[2]) <= cellFloat(t, row[3]) {
			t.Fatalf("recompute %s not above load %s", row[2], row[3])
		}
	}
}

func TestFig2Distributions(t *testing.T) {
	b := runQuick(t, "fig2b")
	// CDF must be non-decreasing and end at 100%.
	last := 0.0
	for _, row := range b.Rows {
		v := cellFloat(t, row[1])
		if v < last {
			t.Fatal("fig2b CDF decreasing")
		}
		last = v
	}
	if last != 100 {
		t.Fatalf("fig2b CDF ends at %v", last)
	}

	c := runQuick(t, "fig2c")
	if got := cellFloat(t, c.Rows[len(c.Rows)-1][2]); got != 100 {
		t.Fatalf("fig2c CDF ends at %v", got)
	}

	d := runQuick(t, "fig2d")
	// Top 10% of items should carry most accesses.
	var top10 float64
	for _, row := range d.Rows {
		if row[0] == "10.0%" {
			top10 = cellFloat(t, row[1])
		}
	}
	if top10 < 75 {
		t.Fatalf("top-10%% access share %v%%, want heavy skew", top10)
	}
}

func TestTable1And2(t *testing.T) {
	t1 := runQuick(t, "table1")
	if len(t1.Rows) != 4 {
		t.Fatalf("table1 rows %d", len(t1.Rows))
	}
	// Measured token means must track the configured averages within 20%.
	for _, row := range t1.Rows {
		want := cellFloat(t, row[3])
		got := cellFloat(t, row[5])
		if got < want*0.8 || got > want*1.2 {
			t.Fatalf("%s: measured user tokens %v vs configured %v", row[0], got, want)
		}
	}
	t2 := runQuick(t, "table2")
	if len(t2.Rows) != 3 {
		t.Fatalf("table2 rows %d", len(t2.Rows))
	}
	if t2.Rows[0][4] != "28672" {
		t.Fatalf("Qwen2-1.5B KV bytes = %s", t2.Rows[0][4])
	}
}

func TestFig4Consistency(t *testing.T) {
	tab := runQuick(t, "fig4")
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		mean := cellFloat(t, row[1])
		if mean < 0.3 || mean > 1 {
			t.Fatalf("window %s similarity %v implausible", row[0], mean)
		}
	}
}

func TestFig5And6Orderings(t *testing.T) {
	f5 := runQuick(t, "fig5")
	for _, row := range f5.Rows {
		re, up, ip, bat := cellFloat(t, row[2]), cellFloat(t, row[3]), cellFloat(t, row[4]), cellFloat(t, row[5])
		if bat < up*0.999 || bat < ip*0.999 || bat < re*0.999 {
			t.Fatalf("%s/%s: BAT %v not leading (RE %v UP %v IP %v)", row[0], row[1], bat, re, up, ip)
		}
		if re > up || re > ip {
			t.Fatalf("%s/%s: RE %v not trailing", row[0], row[1], re)
		}
	}
	f6 := runQuick(t, "fig6")
	for _, row := range f6.Rows {
		if cellFloat(t, row[2]) != 0 {
			t.Fatal("RE hit rate must be zero")
		}
		bat := cellFloat(t, row[5])
		if bat < cellFloat(t, row[3]) || bat < cellFloat(t, row[4]) {
			t.Fatalf("%s/%s: BAT hit rate %v below a baseline", row[0], row[1], bat)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	tab := runQuick(t, "table3")
	// 3 datasets x (3 variants x 2 strategies + 1 PIC row) = 21 rows.
	if len(tab.Rows) != 21 {
		t.Fatalf("table3 rows = %d, want 21", len(tab.Rows))
	}
	picRows := 0
	for _, row := range tab.Rows {
		r10 := cellFloat(t, row[3])
		if r10 <= 0 || r10 > 1 {
			t.Fatalf("Recall@10 %v out of range", r10)
		}
		if row[2] == "IP+PIC" {
			picRows++
		}
	}
	if picRows != 3 {
		t.Fatalf("%d PIC rows, want 3", picRows)
	}
	// For each dataset, the AbsPos model's IP must trail its UP, and PIC
	// must land between them.
	type key struct{ ds, strat string }
	abs := map[key]float64{}
	for _, row := range tab.Rows {
		if row[1] == "PrefGR-AbsPos" {
			abs[key{row[0], row[2]}] = cellFloat(t, row[3])
		}
	}
	for _, ds := range []string{"Beauty-syn", "Games-syn", "Books-syn"} {
		up, ip, pic := abs[key{ds, "UP"}], abs[key{ds, "IP"}], abs[key{ds, "IP+PIC"}]
		if !(ip < up && pic > ip) {
			t.Fatalf("%s AbsPos: UP %v IP %v PIC %v — expected IP < UP and PIC recovery", ds, up, ip, pic)
		}
	}
}

func TestFig7Ordering(t *testing.T) {
	tab := runQuick(t, "fig7")
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	byKey := map[string]float64{}
	for _, row := range tab.Rows {
		byKey[row[0]+"/"+row[1]] = cellFloat(t, row[2])
	}
	// At 10Gbps, hash pays the network: it must trail HRCS.
	if byKey["10Gbps/BAT-Hash"] >= byKey["10Gbps/BAT"] {
		t.Fatalf("hash (%v) should trail HRCS (%v) at 10Gbps", byKey["10Gbps/BAT-Hash"], byKey["10Gbps/BAT"])
	}
	// HRCS at least matches full replication at both speeds.
	for _, net := range []string{"10Gbps", "100Gbps"} {
		if byKey[net+"/BAT"] < byKey[net+"/BAT-Replicate"]*0.98 {
			t.Fatalf("%s: HRCS %v below replicate %v", net, byKey[net+"/BAT"], byKey[net+"/BAT-Replicate"])
		}
	}
}

func TestFig8Ordering(t *testing.T) {
	tab := runQuick(t, "fig8")
	// At every user-cache size, hotness-aware >= cache-agnostic.
	for i := 0; i < len(tab.Rows); i += 2 {
		aware, agnostic := cellFloat(t, tab.Rows[i][2]), cellFloat(t, tab.Rows[i+1][2])
		if aware < agnostic*0.98 {
			t.Fatalf("user cache %s: hotness-aware %v below cache-agnostic %v",
				tab.Rows[i][0], aware, agnostic)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	tab := runQuick(t, "table4")
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		abc, none := cellFloat(t, row[1]), cellFloat(t, row[5])
		if abc <= none {
			t.Fatalf("%s: ABC %v not above None %v", row[0], abc, none)
		}
	}
}

func TestFig9SaturationKnee(t *testing.T) {
	tab := runQuick(t, "fig9")
	// Each system appears at a low and an above-saturation rate; P99 at the
	// high rate must exceed P99 at the low rate.
	rowsBySys := map[string][][]string{}
	for _, row := range tab.Rows {
		rowsBySys[row[0]] = append(rowsBySys[row[0]], row)
	}
	for sys, rows := range rowsBySys {
		if len(rows) < 2 {
			t.Fatalf("%s has %d rate points", sys, len(rows))
		}
		low := cellFloat(t, rows[0][3])
		high := cellFloat(t, rows[len(rows)-1][3])
		if high <= low {
			t.Fatalf("%s: P99 %v at overload not above %v at low rate", sys, high, low)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	tab := runQuick(t, "fig10")
	byKey := map[string]float64{}
	for _, row := range tab.Rows {
		byKey[row[0]+"/"+row[1]] = cellFloat(t, row[2])
	}
	for _, corpus := range []string{"Industry-1M", "Industry-100M"} {
		bat := byKey[corpus+"/BAT"]
		if bat < byKey[corpus+"/UP"]*0.999 || bat < byKey[corpus+"/IP"]*0.999 {
			t.Fatalf("%s: BAT %v not leading (UP %v, IP %v)",
				corpus, bat, byKey[corpus+"/UP"], byKey[corpus+"/IP"])
		}
	}
}

func TestFig11NearLinearScaling(t *testing.T) {
	tab := runQuick(t, "fig11")
	first := cellFloat(t, tab.Rows[0][1])
	lastRow := tab.Rows[len(tab.Rows)-1]
	nodes := cellFloat(t, lastRow[0])
	speedup := cellFloat(t, lastRow[3])
	if first <= 0 {
		t.Fatal("zero baseline throughput")
	}
	if speedup < nodes*0.7 {
		t.Fatalf("speedup %v at %v nodes; expected near-linear", speedup, nodes)
	}
}

func TestTableFormatAlignment(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Header: []string{"A", "LongHeader"}}
	tab.AddRow("1", "2")
	out := tab.Format()
	if !strings.Contains(out, "LongHeader") || !strings.Contains(out, "--") {
		t.Fatalf("format output: %q", out)
	}
}

func TestExtCandidateSweep(t *testing.T) {
	tab := runQuick(t, "ext-candidates")
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// IP savings must grow with candidate count and exceed UP's at the top.
	small, big := tab.Rows[0], tab.Rows[1]
	if cellFloat(t, big[3]) <= cellFloat(t, small[3]) {
		t.Fatalf("IP savings did not grow: %s -> %s", small[3], big[3])
	}
	if cellFloat(t, big[3]) <= cellFloat(t, big[2]) {
		t.Fatalf("at %s candidates IP (%s) should out-save UP (%s)", big[0], big[3], big[2])
	}
	// BAT tracks the better side at both ends.
	for _, row := range tab.Rows {
		bat := cellFloat(t, row[4])
		if bat < cellFloat(t, row[2])-2 || bat < cellFloat(t, row[3])-2 {
			t.Fatalf("BAT savings %v trail a static policy (%s / %s)", bat, row[2], row[3])
		}
	}
}

func TestExtAlphaSweep(t *testing.T) {
	tab := runQuick(t, "ext-alpha")
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	tight, loose := tab.Rows[0], tab.Rows[1]
	if cellFloat(t, tight[2]) <= cellFloat(t, loose[2]) {
		t.Fatalf("smaller alpha should replicate more: %s vs %s", tight[2], loose[2])
	}
	if cellFloat(t, tight[5]) > cellFloat(t, loose[5]) {
		t.Fatalf("smaller alpha should transfer less: %s vs %s", tight[5], loose[5])
	}
}

func TestExtBurstRefresh(t *testing.T) {
	tab := runQuick(t, "ext-burst")
	var staticBurst, refreshedBurst, burstRows float64
	for _, row := range tab.Rows {
		if row[1] == "burst" {
			staticBurst += cellFloat(t, row[2])
			refreshedBurst += cellFloat(t, row[3])
			burstRows++
		}
	}
	if burstRows == 0 {
		t.Fatal("no burst-phase rows")
	}
	if refreshedBurst <= staticBurst {
		t.Fatalf("refresh did not improve burst-phase hit rate: %v vs %v", refreshedBurst/burstRows, staticBurst/burstRows)
	}
}

func TestExtSlowTier(t *testing.T) {
	tab := runQuick(t, "ext-tier")
	if len(tab.Rows) != 3 { // UP flat, UP tiered, BAT reference
		t.Fatalf("%d rows", len(tab.Rows))
	}
	flat, tiered := tab.Rows[0], tab.Rows[1]
	if cellFloat(t, tiered[3]) < cellFloat(t, flat[3]) {
		t.Fatalf("spill tier lowered UP hit rate: %s vs %s", tiered[3], flat[3])
	}
	if cellFloat(t, tiered[4]) <= 0 {
		t.Fatal("no slow-tier traffic recorded")
	}
	if tab.Rows[2][0] != "BAT" {
		t.Fatal("missing BAT reference row")
	}
}

func TestTableMarkdownAndCSV(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Header: []string{"A", "B"}}
	tab.AddRow("1", "two,with comma")
	tab.Notes = append(tab.Notes, "a note")
	md := tab.Markdown()
	if !strings.Contains(md, "| A | B |") || !strings.Contains(md, "*a note*") {
		t.Fatalf("markdown: %q", md)
	}
	csv := tab.CSV()
	if !strings.Contains(csv, "\"two,with comma\"") {
		t.Fatalf("csv quoting: %q", csv)
	}
}

func TestExtGPUResidentItems(t *testing.T) {
	tab := runQuick(t, "ext-gpu")
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	flat, gpu := tab.Rows[0], tab.Rows[1]
	if cellFloat(t, gpu[2]) < cellFloat(t, flat[2]) {
		t.Fatalf("GPU area lowered QPS: %s vs %s", gpu[2], flat[2])
	}
	if cellFloat(t, gpu[4]) <= 0 {
		t.Fatal("no GPU-resident traffic recorded")
	}
	if cellFloat(t, flat[4]) != 0 {
		t.Fatal("GPU traffic without a GPU area")
	}
}

func TestExtSchedulerLattice(t *testing.T) {
	tab := runQuick(t, "ext-oracle")
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	qps := map[string]float64{}
	for _, row := range tab.Rows {
		qps[row[0]] = cellFloat(t, row[1])
	}
	if qps["hotness-aware"] < qps["IP"]*0.98 || qps["hotness-aware"] < qps["greedy-oracle"]*0.98 {
		t.Fatalf("hotness-aware (%v) should lead IP (%v) and the oracle (%v)",
			qps["hotness-aware"], qps["IP"], qps["greedy-oracle"])
	}
	if qps["greedy-oracle"] < qps["IP"]*0.98 {
		t.Fatalf("oracle (%v) should not trail always-IP (%v)", qps["greedy-oracle"], qps["IP"])
	}
}
