package experiments

import (
	"bat/internal/bipartite"
	"bat/internal/ranking"
)

// accuracyDatasets builds the three synthetic semantic datasets standing in
// for Beauty, Games, and Books in Table 3. Sizes follow each dataset's
// relative difficulty (Books is the largest and noisiest, matching its
// lower absolute metrics in the paper).
func accuracyDatasets(o Options) ([]*ranking.Dataset, error) {
	specs := []ranking.DatasetConfig{
		{
			Name: "Beauty-syn", Items: 600, Users: 150, Clusters: 8, LatentDim: 8,
			HistoryMin: 10, HistoryMax: 32, ItemAttrTokens: 2,
			ClusterNoise: 0.15, Candidates: 100, HardNegatives: 8, Seed: o.Seed,
		},
		{
			Name: "Games-syn", Items: 500, Users: 150, Clusters: 10, LatentDim: 8,
			HistoryMin: 12, HistoryMax: 40, ItemAttrTokens: 2,
			ClusterNoise: 0.18, Candidates: 100, HardNegatives: 10, Seed: o.Seed + 1,
		},
		{
			Name: "Books-syn", Items: 800, Users: 150, Clusters: 6, LatentDim: 8,
			HistoryMin: 8, HistoryMax: 40, ItemAttrTokens: 2,
			ClusterNoise: 0.25, Candidates: 100, HardNegatives: 14, Seed: o.Seed + 2,
		},
	}
	if o.Quick {
		for i := range specs {
			specs[i].Items = 200
			specs[i].Users = 40
			specs[i].Candidates = 30
			specs[i].HardNegatives = 5
		}
	}
	out := make([]*ranking.Dataset, 0, len(specs))
	for _, spec := range specs {
		ds, err := ranking.NewDataset(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, ds)
	}
	return out, nil
}

// Table3Accuracy regenerates Table 3: UP vs IP ranking quality across three
// datasets and the three constructed model variants, plus the PIC recovery
// row for the position-sensitive model (§6.3).
func Table3Accuracy(o Options) (*Table, error) {
	o = o.withDefaults()
	nReq := 150
	hard := 8
	if o.Quick {
		nReq = 40
		hard = 5
	}
	datasets, err := accuracyDatasets(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "table3",
		Title: "UP vs IP ranking quality (Table 3)",
		Header: []string{"Dataset", "Model", "Strategy",
			"Recall@10", "MRR@10", "NDCG@10", "Recall@5", "MRR@5", "NDCG@5"},
	}
	addRow := func(res ranking.EvalResult) {
		t.AddRow(res.Dataset, res.Model, res.Strategy,
			f4(res.Recall10), f4(res.MRR10), f4(res.NDCG10),
			f4(res.Recall5), f4(res.MRR5), f4(res.NDCG5))
	}
	for _, ds := range datasets {
		for _, v := range ranking.Variants() {
			r, err := ranking.NewRanker(ds, v)
			if err != nil {
				return nil, err
			}
			up, err := r.Evaluate(nReq, bipartite.UserPrefix, ranking.RankOpts{}, hard)
			if err != nil {
				return nil, err
			}
			addRow(up)
			ip, err := r.Evaluate(nReq, bipartite.ItemPrefix, ranking.RankOpts{}, hard)
			if err != nil {
				return nil, err
			}
			addRow(ip)
			if v.PosSensitive {
				pic, err := r.Evaluate(nReq, bipartite.ItemPrefix, ranking.RankOpts{PIC: true}, hard)
				if err != nil {
					return nil, err
				}
				addRow(pic)
			}
		}
	}
	t.Notes = append(t.Notes,
		"paper: IP matches UP within noise for position-robust models; position-sensitive models degrade under IP and PIC narrows the gap")
	return t, nil
}
