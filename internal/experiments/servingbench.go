package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bat/internal/ranking"
	"bat/internal/scheduler"
	"bat/internal/server"
	"bat/internal/serving"
)

// ServingBenchPoint is one max-batch setting's measured throughput.
type ServingBenchPoint struct {
	MaxBatch       int     `json:"max_batch"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	AvgBatchSize   float64 `json:"avg_batch_size"`
	// Speedup is throughput over the MaxBatch=1 serialized baseline.
	Speedup float64 `json:"speedup_vs_serialized"`
	// Stage p50s (milliseconds) from the serving core's bounded histograms:
	// where a request's wall clock goes at this batch setting.
	QueueP50Ms   float64 `json:"queue_p50_ms"`
	WindowP50Ms  float64 `json:"window_p50_ms"`
	PlanP50Ms    float64 `json:"plan_p50_ms"`
	ExecuteP50Ms float64 `json:"execute_p50_ms"`
	E2EP99Ms     float64 `json:"e2e_p99_ms"`
}

// ServingBenchResult records the continuous-batching serving core's measured
// end-to-end throughput on this machine — the BENCH_serving.json trajectory.
// The MaxBatch=1 row is the serialized baseline (one request per execution,
// the pre-batching pipeline); larger rows let the batch-forming window pack
// concurrent requests into one bipartite execution.
type ServingBenchResult struct {
	Dataset  string `json:"dataset"`
	Requests int    `json:"requests"`
	Clients  int    `json:"clients"`
	// Cores is runtime.NumCPU at measurement time: batching speedups are
	// core-count-dependent (a packed forward parallelizes across heads and
	// rows), so single-core numbers mostly reflect saved per-request
	// dispatch overhead.
	Cores  int                 `json:"cores"`
	Points []ServingBenchPoint `json:"points"`
}

// RunServingBench measures end-to-end /v1/rank throughput through the
// serving core at max-batch 1 (serialized), 4, and 16, with a fixed pool of
// concurrent clients replaying the same request trace.
func RunServingBench(opts Options) (*ServingBenchResult, error) {
	opts = opts.withDefaults()
	requests, clients := 384, 16
	if opts.Quick {
		requests, clients = 64, 8
	}
	ds, err := ranking.NewDataset(ranking.DatasetConfig{
		Name: "servebench", Items: 120, Users: 40, Clusters: 6, LatentDim: 8,
		HistoryMin: 6, HistoryMax: 12, ItemAttrTokens: 1,
		ClusterNoise: 0.15, Candidates: 10, HardNegatives: 2, Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	trace := make([]serving.RankRequest, requests)
	for i := range trace {
		cands := make([]int, 6)
		for j := range cands {
			cands[j] = rng.Intn(120)
		}
		trace[i] = serving.RankRequest{UserID: rng.Intn(40), CandidateIDs: cands}
	}

	res := &ServingBenchResult{
		Dataset: ds.Name, Requests: requests, Clients: clients,
		Cores: runtime.NumCPU(),
	}
	for _, mb := range []int{1, 4, 16} {
		s, err := server.New(server.Config{
			Dataset: ds, Variant: ranking.VariantBase,
			Policy:   scheduler.StaticUser{},
			MaxBatch: mb, BatchWindow: 2 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		// Warm the pipeline (and user caches) outside the timed window.
		if _, err := s.Rank(trace[0]); err != nil {
			s.Close()
			return nil, err
		}
		var next int64 = -1
		var firstErr atomic.Value
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := atomic.AddInt64(&next, 1)
					if i >= int64(len(trace)) {
						return
					}
					if _, err := s.RankCtx(context.Background(), trace[i]); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		st := s.Stats()
		obs := s.Observer()
		point := ServingBenchPoint{
			MaxBatch:       mb,
			RequestsPerSec: float64(requests) / elapsed.Seconds(),
			AvgBatchSize:   st.AvgBatchSize,
			QueueP50Ms:     obs.StageQuantile(serving.StageQueue, 0.5) * 1e3,
			WindowP50Ms:    obs.StageQuantile(serving.StageWindow, 0.5) * 1e3,
			PlanP50Ms:      obs.StageQuantile(serving.StagePlan, 0.5) * 1e3,
			ExecuteP50Ms:   obs.StageQuantile(serving.StageExecute, 0.5) * 1e3,
			E2EP99Ms:       obs.StageQuantile(serving.StageE2E, 0.99) * 1e3,
		}
		s.Close()
		if err, ok := firstErr.Load().(error); ok && err != nil {
			return nil, fmt.Errorf("servingbench max-batch %d: %w", mb, err)
		}
		res.Points = append(res.Points, point)
	}
	base := res.Points[0].RequestsPerSec
	for i := range res.Points {
		if base > 0 {
			res.Points[i].Speedup = res.Points[i].RequestsPerSec / base
		}
	}
	return res, nil
}

// ServingBench is the "servingbench" artifact: end-to-end throughput of the
// continuous-batching serving core versus its own serialized configuration.
func ServingBench(opts Options) (*Table, error) {
	res, err := RunServingBench(opts)
	if err != nil {
		return nil, err
	}
	return res.Table(), nil
}

// Table renders an already-measured result as the "servingbench" artifact.
func (res *ServingBenchResult) Table() *Table {
	t := &Table{
		ID:     "servingbench",
		Title:  fmt.Sprintf("Serving-core throughput (%d requests, %d clients, %d cores)", res.Requests, res.Clients, res.Cores),
		Header: []string{"max batch", "requests/sec", "avg batch", "speedup vs serialized", "exec p50 ms", "e2e p99 ms"},
	}
	for _, p := range res.Points {
		t.AddRow(fmt.Sprintf("%d", p.MaxBatch), f1(p.RequestsPerSec), f2(p.AvgBatchSize), f2(p.Speedup)+"x",
			f2(p.ExecuteP50Ms), f2(p.E2EP99Ms))
	}
	t.Notes = append(t.Notes,
		"max batch 1 = serialized baseline (one request per execution)",
		"rankings are bit-identical across every row; only throughput moves",
		"stage p50s come from the core's bounded /metrics histograms",
		fmt.Sprintf("measured on %d core(s); packed-execution gains scale with cores", res.Cores))
	return t
}

// WriteServingBenchJSON writes the result where the acceptance trajectory
// expects it (BENCH_serving.json at the repo root).
func WriteServingBenchJSON(path string, res *ServingBenchResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
