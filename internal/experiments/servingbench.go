package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bat/internal/ranking"
	"bat/internal/scheduler"
	"bat/internal/server"
	"bat/internal/serving"
	"bat/internal/tensor"
)

// ServingBenchPoint is one max-batch setting's measured throughput.
type ServingBenchPoint struct {
	MaxBatch       int     `json:"max_batch"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	AvgBatchSize   float64 `json:"avg_batch_size"`
	// Speedup is throughput over the MaxBatch=1 serialized baseline.
	Speedup float64 `json:"speedup_vs_serialized"`
	// Stage p50s (milliseconds) from the serving core's bounded histograms:
	// where a request's wall clock goes at this batch setting.
	QueueP50Ms   float64 `json:"queue_p50_ms"`
	WindowP50Ms  float64 `json:"window_p50_ms"`
	PlanP50Ms    float64 `json:"plan_p50_ms"`
	ExecuteP50Ms float64 `json:"execute_p50_ms"`
	E2EP99Ms     float64 `json:"e2e_p99_ms"`
	// WindowAvgMs is the mean batch-window residency — the idle wait the
	// adaptive window is supposed to squeeze out; before it, this term alone
	// put batched throughput below serialized.
	WindowAvgMs float64 `json:"window_avg_ms"`
	// DedupedTokens counts prefix forwards shared across identical in-batch
	// misses instead of recomputed per request.
	DedupedTokens int64 `json:"deduped_tokens"`
}

// ServingBenchResult records the continuous-batching serving core's measured
// end-to-end throughput on this machine — the BENCH_serving.json trajectory.
// The MaxBatch=1 row is the serialized baseline (one request per execution,
// the pre-batching pipeline); larger rows let the batch-forming window pack
// concurrent requests into one bipartite execution.
type ServingBenchResult struct {
	Dataset  string `json:"dataset"`
	Requests int    `json:"requests"`
	Clients  int    `json:"clients"`
	// Cores is runtime.GOMAXPROCS at measurement time — the parallelism the
	// sweep actually ran with, not just the hardware count. Batching speedups
	// are core-count-dependent (a packed forward parallelizes across heads
	// and rows); on one core the win comes from deduped recomputes, hidden
	// fetches, and removed window idle rather than added parallelism.
	Cores  int                 `json:"cores"`
	Points []ServingBenchPoint `json:"points"`
}

// benchUsers/benchUserCaches set the user-churn pressure: the trace cycles
// benchUsers distinct users through a pool holding benchUserCaches, so in
// steady state every request is a user-prefix miss followed by an admission
// and an LRU eviction — the cache-churn regime generative recommenders serve
// (each new interaction invalidates its user's prefix).
const (
	benchUsers      = 256
	benchUserCaches = 64
)

// RunServingBench measures end-to-end /v1/rank throughput through the
// serving core at max-batch 1 (serialized), 4, and 16, with a fixed pool of
// concurrent clients replaying the same request trace.
func RunServingBench(opts Options) (*ServingBenchResult, error) {
	opts = opts.withDefaults()
	// Run at the full GOMAXPROCS pool width no matter what ran earlier in
	// this process (enginebench sweeps the pool width and a crash mid-sweep
	// would leave it pinned at 1, silently under-reporting the batching
	// speedup this result gates on).
	tensor.SetParallelism(0)
	// Each point serves the whole trace; a short trace finishes in a few
	// milliseconds and turns the speedup column into scheduler noise, so the
	// full run uses enough requests for a ~100ms timed region per point and
	// keeps the best of several repetitions (max throughput ≈ least
	// interference, the standard way to gate on a noisy-shared-host number).
	// Repetitions are rep-major — every rep measures all batch settings
	// back-to-back — so the serialized baseline and the batched points sample
	// the same process conditions; point-major reps let slow drift (heap
	// growth, host load) land entirely on one side of the speedup ratio.
	requests, clients, reps := 1536, 16, 5
	if opts.Quick {
		requests, clients, reps = 64, 8, 1
	}
	ds, err := ranking.NewDataset(ranking.DatasetConfig{
		Name: "servebench", Items: 120, Users: benchUsers, Clusters: 6, LatentDim: 8,
		HistoryMin: 6, HistoryMax: 12, ItemAttrTokens: 1,
		ClusterNoise: 0.15, Candidates: 10, HardNegatives: 2, Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	// The trace models the GR serving regime the paper targets: user
	// prefixes churn (every new interaction invalidates a user's cache), so
	// the pool sees a sustained miss-and-admit stream rather than a warmed-up
	// hit loop. Cycling through more users than the pool holds reproduces
	// that churn deterministically — each request misses, recomputes its user
	// prefix, and admits it, evicting the LRU entry. This is where batching
	// has structure to exploit: one packed suffix forward and one snapshot
	// rebuild per batch instead of per request.
	rng := rand.New(rand.NewSource(opts.Seed))
	trace := make([]serving.RankRequest, requests)
	for i := range trace {
		cands := make([]int, 6)
		for j := range cands {
			cands[j] = rng.Intn(120)
		}
		trace[i] = serving.RankRequest{UserID: i % benchUsers, CandidateIDs: cands}
	}

	res := &ServingBenchResult{
		Dataset: ds.Name, Requests: requests, Clients: clients,
		Cores: runtime.GOMAXPROCS(0),
	}
	batches := []int{1, 4, 16}
	best := make([]ServingBenchPoint, len(batches))
	for rep := 0; rep < reps; rep++ {
		for pi, mb := range batches {
			point, err := runServingPoint(ds, trace, mb, clients)
			if err != nil {
				return nil, err
			}
			if rep == 0 || point.RequestsPerSec > best[pi].RequestsPerSec {
				best[pi] = point
			}
		}
	}
	res.Points = append(res.Points, best...)
	base := res.Points[0].RequestsPerSec
	for i := range res.Points {
		if base > 0 {
			res.Points[i].Speedup = res.Points[i].RequestsPerSec / base
		}
	}
	return res, nil
}

// runServingPoint measures one max-batch setting over one full pass of the
// trace with a fresh server, warmed user caches, and a quiesced heap.
func runServingPoint(ds *ranking.Dataset, trace []serving.RankRequest, mb, clients int) (ServingBenchPoint, error) {
	s, err := server.New(server.Config{
		Dataset: ds, Variant: ranking.VariantBase,
		Policy:        scheduler.StaticUser{},
		MaxUserCaches: benchUserCaches,
		MaxBatch:      mb, BatchWindow: 2 * time.Millisecond,
	})
	if err != nil {
		return ServingBenchPoint{}, err
	}
	defer s.Close()
	// Fill the user pool to capacity outside the timed window so each point
	// starts in the same steady churn state (pool full, every cycling request
	// a miss + admit + evict) instead of its own cold-start mix.
	for u := 0; u < benchUserCaches; u++ {
		if _, err := s.Rank(serving.RankRequest{UserID: u, CandidateIDs: []int{u % 120, (u + 7) % 120}}); err != nil {
			return ServingBenchPoint{}, err
		}
	}
	runtime.GC()
	var next int64 = -1
	var firstErr atomic.Value
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&next, 1)
				if i >= int64(len(trace)) {
					return
				}
				if _, err := s.RankCtx(context.Background(), trace[i]); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return ServingBenchPoint{}, fmt.Errorf("servingbench max-batch %d: %w", mb, err)
	}
	st := s.Stats()
	obs := s.Observer()
	return ServingBenchPoint{
		MaxBatch:       mb,
		RequestsPerSec: float64(len(trace)) / elapsed.Seconds(),
		AvgBatchSize:   st.AvgBatchSize,
		QueueP50Ms:     obs.StageQuantile(serving.StageQueue, 0.5) * 1e3,
		WindowP50Ms:    obs.StageQuantile(serving.StageWindow, 0.5) * 1e3,
		PlanP50Ms:      obs.StageQuantile(serving.StagePlan, 0.5) * 1e3,
		ExecuteP50Ms:   obs.StageQuantile(serving.StageExecute, 0.5) * 1e3,
		E2EP99Ms:       obs.StageQuantile(serving.StageE2E, 0.99) * 1e3,
		WindowAvgMs:    obs.StageMean(serving.StageWindow) * 1e3,
		DedupedTokens:  st.DedupedTokens,
	}, nil
}

// ServingBench is the "servingbench" artifact: end-to-end throughput of the
// continuous-batching serving core versus its own serialized configuration.
func ServingBench(opts Options) (*Table, error) {
	res, err := RunServingBench(opts)
	if err != nil {
		return nil, err
	}
	return res.Table(), nil
}

// Table renders an already-measured result as the "servingbench" artifact.
func (res *ServingBenchResult) Table() *Table {
	t := &Table{
		ID:     "servingbench",
		Title:  fmt.Sprintf("Serving-core throughput (%d requests, %d clients, %d cores)", res.Requests, res.Clients, res.Cores),
		Header: []string{"max batch", "requests/sec", "avg batch", "speedup vs serialized", "win avg ms", "exec p50 ms", "e2e p99 ms"},
	}
	for _, p := range res.Points {
		t.AddRow(fmt.Sprintf("%d", p.MaxBatch), f1(p.RequestsPerSec), f2(p.AvgBatchSize), f2(p.Speedup)+"x",
			f2(p.WindowAvgMs), f2(p.ExecuteP50Ms), f2(p.E2EP99Ms))
	}
	t.Notes = append(t.Notes,
		"max batch 1 = serialized baseline (one request per execution)",
		"rankings are bit-identical across every row; only throughput moves",
		"stage p50s come from the core's bounded /metrics histograms",
		fmt.Sprintf("measured on %d core(s); packed-execution gains scale with cores", res.Cores))
	return t
}

// WriteServingBenchJSON writes the result where the acceptance trajectory
// expects it (BENCH_serving.json at the repo root).
func WriteServingBenchJSON(path string, res *ServingBenchResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
