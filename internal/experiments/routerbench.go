package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"bat/internal/admission"
	"bat/internal/distserve"
	"bat/internal/ranking"
	"bat/internal/routing"
	"bat/internal/scheduler"
	"bat/internal/workload"
)

// RouterBenchResult records the sharded-frontend routing tier's measured
// performance — the BENCH_cluster.json artifact. Two independent serving
// cells (each its own meta service, cache workers, and frontend) sit behind
// one router; the same Zipf rank workload is replayed once with the
// cache-affinity pipeline and once with pure round-robin. Affinity keeps a
// user on the cell that already holds their KV cache, so its aggregate pool
// hit rate must beat spraying users across cells.
type RouterBenchResult struct {
	Frontends      int     `json:"frontends"`
	WorkersPerCell int     `json:"workers_per_cell"`
	Requests       int     `json:"requests"`
	Users          int     `json:"users"`
	ZipfA          float64 `json:"zipf_a"`

	Affinity   RouterBenchRun `json:"affinity"`
	RoundRobin RouterBenchRun `json:"round_robin"`

	// AffinityGain is affinity's pool hit rate minus round-robin's — the
	// number the CI gate pins above zero.
	AffinityGain float64 `json:"affinity_hit_rate_gain"`
}

// RouterBenchRun is one routing policy's side of the comparison.
type RouterBenchRun struct {
	Scorers        string           `json:"scorers"`
	TokenHitRate   float64          `json:"token_hit_rate"`
	ReusedTokens   int64            `json:"reused_tokens"`
	ComputedTokens int64            `json:"computed_tokens"`
	P50Ms          float64          `json:"p50_ms"`
	P99Ms          float64          `json:"p99_ms"`
	Decisions      map[string]int64 `json:"decisions"`
	Failovers      int64            `json:"failovers"`
}

// routerBenchCell is one self-contained serving cell: meta + workers +
// frontend, all over real HTTP.
type routerBenchCell struct {
	frontend *distserve.Frontend
	front    *httptest.Server
	servers  []*httptest.Server
}

func (c *routerBenchCell) close() {
	c.frontend.Close()
	for _, s := range c.servers {
		s.Close()
	}
}

func newRouterBenchCell(ds *ranking.Dataset, workers int) (*routerBenchCell, error) {
	c := &routerBenchCell{}
	meta := distserve.NewMetaServer(300, nil)
	metaSrv := httptest.NewServer(meta.Handler())
	c.servers = append(c.servers, metaSrv)
	var urls []string
	for i := 0; i < workers; i++ {
		cw, err := distserve.NewCacheWorker(64 << 20)
		if err != nil {
			c.close()
			return nil, err
		}
		srv := httptest.NewServer(cw.Handler())
		c.servers = append(c.servers, srv)
		urls = append(urls, srv.URL)
	}
	f, err := distserve.NewFrontend(distserve.FrontendConfig{
		Dataset:      ds,
		Variant:      ranking.VariantBase,
		MetaURL:      metaSrv.URL,
		CacheWorkers: urls,
		Policy:       scheduler.StaticUser{},
		Transfer: distserve.TransferConfig{
			// Synchronous stores: a user's KV cache is resident before the
			// response returns, so the very next request can hit it.
			StoreQueueDepth: -1,
		},
		Admission:      admission.Config{MaxInFlight: 8},
		LoadSummaryTTL: -1, // polls always see fresh residency
	})
	if err != nil {
		for _, s := range c.servers {
			s.Close()
		}
		return nil, err
	}
	c.frontend = f
	c.front = httptest.NewServer(f.Handler())
	c.servers = append(c.servers, c.front)
	return c, nil
}

// runRouterBenchPolicy replays the same closed-loop Zipf workload through a
// router configured with one scorer spec, over fresh cells.
func runRouterBenchPolicy(opts Options, spec string, cells, workers, users int, zipfA float64) (*RouterBenchRun, error) {
	ds, err := ranking.NewDataset(ranking.DatasetConfig{
		Name: "routerbench", Items: 200, Users: users, Clusters: 4, LatentDim: 8,
		HistoryMin: 16, HistoryMax: 48, ItemAttrTokens: 2,
		ClusterNoise: 0.15, Candidates: 32, HardNegatives: 4, Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	var cs []*routerBenchCell
	defer func() {
		for _, c := range cs {
			c.close()
		}
	}()
	var fronts []string
	for i := 0; i < cells; i++ {
		c, err := newRouterBenchCell(ds, workers)
		if err != nil {
			return nil, err
		}
		cs = append(cs, c)
		fronts = append(fronts, c.front.URL)
	}
	scorers, err := routing.ParseScorers(spec)
	if err != nil {
		return nil, err
	}
	router, err := routing.NewRouter(routing.RouterConfig{
		Frontends:    fronts,
		Scorers:      scorers,
		Seed:         uint64(opts.Seed),
		Admission:    admission.Config{MaxInFlight: 8},
		PollInterval: -1, // bench drives the poll clock itself
	})
	if err != nil {
		return nil, err
	}
	defer router.Close()
	rsrv := httptest.NewServer(router.Handler())
	defer rsrv.Close()

	rng := rand.New(rand.NewSource(opts.Seed))
	zipf := workload.NewZipf(users, zipfA)
	lat := make([]time.Duration, 0, opts.Requests)
	for i := 0; i < opts.Requests; i++ {
		if i > 0 && i%200 == 0 {
			router.PollNow()
		}
		user := zipf.Rank(rng.Float64()) - 1
		cands := make([]int, 10)
		for j := range cands {
			cands[j] = rng.Intn(200)
		}
		body, err := json.Marshal(map[string]any{"user_id": user, "candidate_ids": cands})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		resp, err := http.Post(rsrv.URL+"/v1/rank", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("routerbench: rank status %d", resp.StatusCode)
		}
		lat = append(lat, time.Since(start))
	}

	run := &RouterBenchRun{Scorers: spec}
	for _, c := range cs {
		st := c.frontend.Stats()
		run.ReusedTokens += st.ReusedTokens
		run.ComputedTokens += st.ComputedTokens
	}
	if total := run.ReusedTokens + run.ComputedTokens; total > 0 {
		run.TokenHitRate = float64(run.ReusedTokens) / float64(total)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	run.P50Ms = lat[len(lat)/2].Seconds() * 1e3
	run.P99Ms = lat[len(lat)*99/100].Seconds() * 1e3
	rst := router.Stats()
	run.Decisions = rst.Decisions
	run.Failovers = rst.Failovers
	return run, nil
}

// RunRouterBench measures scored routing end to end: two serving cells
// behind a live router, cache-affinity versus round-robin on the same Zipf
// workload.
func RunRouterBench(opts Options) (*RouterBenchResult, error) {
	opts = opts.withDefaults()
	requests, users := 600, 96
	if opts.Quick {
		requests, users = 200, 64
	}
	if opts.Requests > 0 && opts.Requests < requests {
		requests = opts.Requests
	}
	opts.Requests = requests
	const cells, workers, zipfA = 2, 2, 1.2

	res := &RouterBenchResult{
		Frontends: cells, WorkersPerCell: workers,
		Requests: requests, Users: users, ZipfA: zipfA,
	}
	aff, err := runRouterBenchPolicy(opts, "cache-affinity:2,least-loaded:1,round-robin:0.25",
		cells, workers, users, zipfA)
	if err != nil {
		return nil, err
	}
	rr, err := runRouterBenchPolicy(opts, "round-robin", cells, workers, users, zipfA)
	if err != nil {
		return nil, err
	}
	res.Affinity, res.RoundRobin = *aff, *rr
	res.AffinityGain = aff.TokenHitRate - rr.TokenHitRate
	return res, nil
}

// RouterBench is the "routerbench" artifact.
func RouterBench(opts Options) (*Table, error) {
	res, err := RunRouterBench(opts)
	if err != nil {
		return nil, err
	}
	return res.Table(), nil
}

// Table renders an already-measured result as the "routerbench" artifact.
func (res *RouterBenchResult) Table() *Table {
	t := &Table{
		ID: "routerbench",
		Title: fmt.Sprintf("Sharded frontend routing (%d cells x %d workers, %d reqs, zipf %.2f)",
			res.Frontends, res.WorkersPerCell, res.Requests, res.ZipfA),
		Header: []string{"policy", "pool hit rate", "p50 ms", "p99 ms"},
	}
	t.AddRow("cache-affinity", pct(res.Affinity.TokenHitRate), f2(res.Affinity.P50Ms), f2(res.Affinity.P99Ms))
	t.AddRow("round-robin", pct(res.RoundRobin.TokenHitRate), f2(res.RoundRobin.P50Ms), f2(res.RoundRobin.P99Ms))
	t.Notes = append(t.Notes,
		"each cell is an independent meta + cache workers + frontend; the router is the only shared tier",
		fmt.Sprintf("affinity pool-hit-rate gain over round-robin: %+.1f pts", res.AffinityGain*100),
		fmt.Sprintf("affinity scorer decisions: %v", res.Affinity.Decisions))
	return t
}

// WriteRouterBenchJSON writes the result where the acceptance trajectory
// expects it (BENCH_cluster.json at the repo root).
func WriteRouterBenchJSON(path string, res *RouterBenchResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
