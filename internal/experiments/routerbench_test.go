package experiments

import "testing"

// TestRouterBenchAffinityBeatsRoundRobin is the routing-tier acceptance
// gate: on a Zipf workload over two independent serving cells, cache-affinity
// routing must land a strictly higher aggregate pool hit rate than spraying
// users round-robin. Quick mode keeps it test-suite sized.
func TestRouterBenchAffinityBeatsRoundRobin(t *testing.T) {
	if testing.Short() {
		t.Skip("routerbench boots two full serving cells")
	}
	res, err := RunRouterBench(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("affinity hit %.3f (p50 %.2fms p99 %.2fms) vs round-robin %.3f (p50 %.2fms p99 %.2fms)",
		res.Affinity.TokenHitRate, res.Affinity.P50Ms, res.Affinity.P99Ms,
		res.RoundRobin.TokenHitRate, res.RoundRobin.P50Ms, res.RoundRobin.P99Ms)
	if res.Affinity.TokenHitRate <= res.RoundRobin.TokenHitRate {
		t.Fatalf("cache-affinity hit rate %.3f not above round-robin %.3f",
			res.Affinity.TokenHitRate, res.RoundRobin.TokenHitRate)
	}
	if res.Affinity.Failovers != 0 || res.RoundRobin.Failovers != 0 {
		t.Fatalf("unexpected failovers with healthy cells: %d / %d",
			res.Affinity.Failovers, res.RoundRobin.Failovers)
	}
	if res.Affinity.Decisions["cache-affinity"] == 0 {
		t.Fatalf("no cache-affinity decisions recorded: %v", res.Affinity.Decisions)
	}
}
