package experiments

import (
	"fmt"

	"bat/internal/cluster"
	"bat/internal/core"
	"bat/internal/costmodel"
	"bat/internal/model"
	"bat/internal/workload"
)

// Fig9LatencyCurve regenerates Figure 9: P99 end-to-end latency versus
// offered request rate for RE, UP, and BAT on the Industry workload,
// against the 200ms SLO.
func Fig9LatencyCurve(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "fig9",
		Title:  "P99 latency vs request rate (Industry, Qwen2-1.5B)",
		Header: []string{"System", "Rate(req/s)", "P50", "P99", "WithinSLO(200ms)"},
	}
	systems := []core.System{core.RE, core.UP, core.BAT}
	n := requestsFor(o, workload.Industry)
	// Normalize rates to each system's own saturation point so the curves
	// show the knee; report absolute rates.
	for _, sys := range systems {
		d, err := core.Build(sys, mainTestbed(workload.Industry, model.Qwen2_1_5B, o.Seed))
		if err != nil {
			return nil, err
		}
		sat, err := d.RunThroughput(n, 3600)
		if err != nil {
			return nil, err
		}
		fractions := []float64{0.4, 0.7, 0.9, 1.0, 1.1}
		if o.Quick {
			fractions = []float64{0.5, 1.1}
		}
		for _, f := range fractions {
			rate := sat.QPS * f
			d2, err := core.Build(sys, mainTestbed(workload.Industry, model.Qwen2_1_5B, o.Seed))
			if err != nil {
				return nil, err
			}
			st, err := d2.RunOpenLoop(n, 3600, rate)
			if err != nil {
				return nil, err
			}
			within := "yes"
			if st.Latency.P99() > 0.2 {
				within = "no"
			}
			t.AddRow(sys.String(), f1(rate), ms(st.Latency.P50()), ms(st.Latency.P99()), within)
		}
	}
	// Binary-search each system's exact SLO-sustainable rate — the paper's
	// headline comparison.
	iters := 8
	if o.Quick {
		iters = 4
	}
	sloRates := map[core.System]float64{}
	for _, sys := range systems {
		d, err := core.Build(sys, mainTestbed(workload.Industry, model.Qwen2_1_5B, o.Seed))
		if err != nil {
			return nil, err
		}
		trace, err := d.Gen.GenerateTrace(n, 3600)
		if err != nil {
			return nil, err
		}
		rate, err := cluster.FindSLORate(func() (*cluster.Sim, error) {
			d2, err := core.Build(sys, mainTestbed(workload.Industry, model.Qwen2_1_5B, o.Seed))
			if err != nil {
				return nil, err
			}
			return d2.NewSim()
		}, trace, 0.2, iters)
		if err != nil {
			return nil, err
		}
		sloRates[sys] = rate
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("max rate under the 200ms P99 SLO: RE %.1f, UP %.1f, BAT %.1f req/s (BAT/UP %.2fx, BAT/RE %.2fx)",
			sloRates[core.RE], sloRates[core.UP], sloRates[core.BAT],
			sloRates[core.BAT]/sloRates[core.UP], sloRates[core.BAT]/sloRates[core.RE]),
		"paper: under a 200ms P99 SLO, BAT sustains ~1.47x UP's rate and ~1.57x RE's")
	return t, nil
}

// productionTestbed is the reduced-scale analogue of the 16-node H20
// production cluster (§6.1/§6.6).
func productionTestbed(prof workload.Profile, nodes int, seed int64) core.Options {
	return core.Options{
		Profile:      prof,
		Model:        model.Qwen2_1_5B,
		Nodes:        nodes,
		GPU:          costmodel.H20,
		LinkGbps:     200,
		HostMemBytes: 24 << 30,
		Seed:         seed,
	}
}

// Fig10DatasetScale regenerates Figure 10: throughput and cache hit rate as
// the item corpus grows from 1M to 100M items on the 16-node production
// testbed.
func Fig10DatasetScale(o Options) (*Table, error) {
	o = o.withDefaults()
	corpora := []int{1_000_000, 10_000_000, 100_000_000}
	if o.Quick {
		corpora = []int{1_000_000, 100_000_000}
	}
	t := &Table{
		ID:     "fig10",
		Title:  "Throughput and hit rate vs item corpus size (16 nodes, Industry-X)",
		Header: []string{"Corpus", "System", "QPS", "HitRate", "CachedItems", "IP-share"},
	}
	for _, items := range corpora {
		prof := workload.IndustryX(items)
		for _, sys := range []core.System{core.UP, core.IP, core.BAT} {
			d, err := core.Build(sys, productionTestbed(prof, 16, o.Seed))
			if err != nil {
				return nil, err
			}
			st, err := d.RunThroughput(requestsFor(o, prof), 3600)
			if err != nil {
				return nil, err
			}
			ipShare := float64(st.ItemPrefixCount) / float64(st.Requests)
			t.AddRow(prof.Name, sys.String(), f1(st.QPS), pct(st.HitRate()),
				fmt.Sprintf("%d", d.Plan.CachedItems()), pct(ipShare))
		}
	}
	t.Notes = append(t.Notes,
		"paper: BAT stays ahead as the corpus grows; at 100M items it caches ~10% of the hottest items and shifts more requests to User-as-prefix, while IP's hit rate collapses")
	return t, nil
}

// Fig11NodeScale regenerates Figure 11: serving throughput as the cluster
// grows from 1 to 16 nodes (Industry-1M, Qwen2-1.5B).
func Fig11NodeScale(o Options) (*Table, error) {
	o = o.withDefaults()
	nodes := []int{1, 2, 4, 8, 16}
	if o.Quick {
		nodes = []int{1, 4}
	}
	t := &Table{
		ID:     "fig11",
		Title:  "Serving throughput vs node count (Industry-1M)",
		Header: []string{"Nodes", "QPS", "QPS/Node", "Speedup-vs-1", "Imbalance"},
	}
	var base float64
	for _, n := range nodes {
		d, err := core.Build(core.BAT, productionTestbed(workload.IndustryX(1_000_000), n, o.Seed))
		if err != nil {
			return nil, err
		}
		// Scale offered work with the cluster so per-node load is constant.
		st, err := d.RunThroughput(o.Requests*n/nodes[0], 3600)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = st.QPS
		}
		t.AddRow(fmt.Sprintf("%d", n), f1(st.QPS), f1(st.QPS/float64(n)), f2(st.QPS/base), pct(st.LoadImbalance()))
	}
	t.Notes = append(t.Notes, "paper: near-linear scaling from 1 to 16 nodes; the imbalance column shows the user-sticky routing skew that bends the curve at higher node counts")
	return t, nil
}
