package experiments

import (
	"fmt"
	"math"
	"sort"

	"bat/internal/costmodel"
	"bat/internal/metrics"
	"bat/internal/model"
	"bat/internal/workload"
)

// Fig2aLatency regenerates Figure 2(a): per-request compute latency of
// recomputation versus loading a prefix cache over PCIe, for the three
// models across sequence lengths 512–8192, against the 100ms SLO.
func Fig2aLatency(Options) (*Table, error) {
	t := &Table{
		ID:     "fig2a",
		Title:  "Latency: recompute vs prefix-cache load (A100, PCIe 4.0)",
		Header: []string{"Model", "SeqLen", "Recompute", "PrefixLoad", "WithinSLO(100ms)"},
	}
	gpu := costmodel.A100PCIe4
	for _, cfg := range model.PaperModels() {
		for _, seq := range []int{512, 1024, 2048, 4096, 8192} {
			recompute := costmodel.PrefillTime(gpu, cfg, seq, 0)
			load := costmodel.KVLoadTime(gpu, cfg, seq)
			within := "yes"
			if recompute > 0.1 {
				within = "no"
			}
			t.AddRow(cfg.Name, fmt.Sprintf("%d", seq), ms(recompute), ms(load), within)
		}
	}
	t.Notes = append(t.Notes, "prefix load is one to two orders of magnitude cheaper than recomputation at long sequence lengths")
	return t, nil
}

func industryTrace(o Options) (*workload.Generator, *workload.Trace, error) {
	gen, err := workload.NewGenerator(workload.Industry, o.Seed)
	if err != nil {
		return nil, nil, err
	}
	n := 30000
	if o.Quick {
		n = 4000
	}
	trace, err := gen.GenerateTrace(n, 3600)
	if err != nil {
		return nil, nil, err
	}
	return gen, trace, nil
}

// Fig2bUserTokenCDF regenerates Figure 2(b): the CDF of user profile token
// counts on the Industry trace.
func Fig2bUserTokenCDF(o Options) (*Table, error) {
	o = o.withDefaults()
	gen, trace, err := industryTrace(o)
	if err != nil {
		return nil, err
	}
	var cdf metrics.CDF
	seen := map[workload.UserID]bool{}
	below := 0
	for _, r := range trace.Requests {
		if seen[r.User] {
			continue
		}
		seen[r.User] = true
		tok := gen.UserTokens(r.User)
		cdf.Add(float64(tok))
		if tok < 1000 {
			below++
		}
	}
	t := &Table{
		ID:     "fig2b",
		Title:  "CDF of user profile token counts (Industry trace)",
		Header: []string{"UserTokens<=", "CDF"},
	}
	for _, p := range cdf.Points(10) {
		t.AddRow(fmt.Sprintf("%.0f", p[0]), pct(p[1]))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"%s of users have fewer profile tokens than one request's ~1000 candidate tokens (paper: ~36%%)",
		pct(float64(below)/float64(cdf.Count()))))
	return t, nil
}

// Fig2cUserFreqCDF regenerates Figure 2(c): the CDF of per-user hourly
// access counts, showing the inactive-majority.
func Fig2cUserFreqCDF(o Options) (*Table, error) {
	o = o.withDefaults()
	_, trace, err := industryTrace(o)
	if err != nil {
		return nil, err
	}
	counts := map[workload.UserID]int{}
	for _, r := range trace.Requests {
		counts[r.User]++
	}
	hist := map[int]int{}
	atMostTwo := 0
	for _, c := range counts {
		bucket := c
		if bucket > 8 {
			bucket = 9
		}
		hist[bucket]++
		if c <= 2 {
			atMostTwo++
		}
	}
	t := &Table{
		ID:     "fig2c",
		Title:  "CDF of user access frequency per hour (Industry trace)",
		Header: []string{"Accesses/hour", "Users", "CDF"},
	}
	cum := 0
	for _, k := range sortedKeys(hist) {
		cum += hist[k]
		label := fmt.Sprintf("%d", k)
		if k == 9 {
			label = ">8"
		}
		t.AddRow(label, fmt.Sprintf("%d", hist[k]), pct(float64(cum)/float64(len(counts))))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"%s of users access the system at most twice per hour (paper: majority inactive, >55%% once)",
		pct(float64(atMostTwo)/float64(len(counts)))))
	return t, nil
}

// Fig2dItemFreqCDF regenerates Figure 2(d): cumulative access share versus
// item popularity rank.
func Fig2dItemFreqCDF(o Options) (*Table, error) {
	o = o.withDefaults()
	gen, trace, err := industryTrace(o)
	if err != nil {
		return nil, err
	}
	counts := map[workload.ItemID]int{}
	total := 0
	// Sample candidates from a slice of the trace (each request retrieves
	// 100 items; a subset is plenty for the distribution).
	step := len(trace.Requests)/2000 + 1
	for i := 0; i < len(trace.Requests); i += step {
		r := trace.Requests[i]
		for _, it := range gen.Candidates(uint64(r.Index), r.User) {
			counts[it]++
			total++
		}
	}
	// Cumulative access share of the top q% of the corpus by popularity
	// rank — the paper's Figure 2(d) axis. IDs are popularity ranks.
	corpus := float64(workload.Industry.Items)
	t := &Table{
		ID:     "fig2d",
		Title:  "CDF of item access frequency by popularity rank (Industry trace)",
		Header: []string{"TopItems%", "AccessShare"},
	}
	marks := []float64{0.001, 0.01, 0.05, 0.10, 0.20, 0.50, 1.00}
	var top10 float64
	for _, mark := range marks {
		cum := 0
		limit := workload.ItemID(mark * corpus)
		for id, n := range counts {
			if id < limit {
				cum += n
			}
		}
		share := float64(cum) / float64(total)
		t.AddRow(pct(mark), pct(share))
		if mark == 0.10 {
			top10 = share
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"top 10%% of items receive %s of accesses (paper: ~90%%)", pct(top10)))
	return t, nil
}

// Table1Datasets regenerates Table 1 and cross-checks the generators'
// empirical token averages against the configured ones.
func Table1Datasets(o Options) (*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:     "table1",
		Title:  "Dataset profiles (Table 1)",
		Header: []string{"Dataset", "Users", "Items", "AvgUserTok", "AvgItemTok", "MeasuredUserTok", "MeasuredItemTok"},
	}
	for _, prof := range workload.Profiles() {
		gen, err := workload.NewGenerator(prof, o.Seed)
		if err != nil {
			return nil, err
		}
		var uSum, iSum float64
		const n = 5000
		for k := 0; k < n; k++ {
			uSum += float64(gen.UserTokens(workload.UserID(k)))
			iSum += float64(gen.ItemTokens(workload.ItemID(k)))
		}
		t.AddRow(prof.Name,
			fmt.Sprintf("%d", prof.Users), fmt.Sprintf("%d", prof.Items),
			fmt.Sprintf("%d", prof.AvgUserTokens), fmt.Sprintf("%d", prof.AvgItemTokens),
			f1(uSum/n), f1(iSum/n))
	}
	return t, nil
}

// Table2Models regenerates Table 2: model architectures and per-token KV
// cache size.
func Table2Models(Options) (*Table, error) {
	t := &Table{
		ID:     "table2",
		Title:  "Model architectures (Table 2)",
		Header: []string{"Model", "KVHeads", "HeadDim", "Layers", "KVBytes/Token"},
	}
	for _, cfg := range model.PaperModels() {
		t.AddRow(cfg.Name,
			fmt.Sprintf("%d", cfg.KVHeads), fmt.Sprintf("%d", cfg.HeadDim),
			fmt.Sprintf("%d", cfg.Layers), fmt.Sprintf("%d", cfg.KVBytesPerToken()))
	}
	return t, nil
}

// Fig4FreqConsistency regenerates Figure 4: the similarity of a user's
// request frequency across consecutive sliding windows,
// 1 - |f(t)-f(t-δ)| / (f(t)+f(t-δ)), for 5-minute and 60-minute windows.
func Fig4FreqConsistency(o Options) (*Table, error) {
	o = o.withDefaults()
	gen, err := workload.NewGenerator(workload.Industry, o.Seed)
	if err != nil {
		return nil, err
	}
	n := 40000
	if o.Quick {
		n = 6000
	}
	// Four hours of trace: enough for consecutive 60-minute windows.
	trace, err := gen.GenerateTrace(n, 4*3600)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig4",
		Title:  "Consistency of user access frequency across consecutive windows",
		Header: []string{"Window", "MeanSimilarity", "P50", "P90", "UsersMeasured"},
	}
	for _, windowSec := range []float64{300, 3600} {
		var dig metrics.Digest
		users := windowSimilarities(trace, windowSec, &dig)
		label := "5min"
		if windowSec == 3600 {
			label = "60min"
		}
		t.AddRow(label, f2(dig.Mean()), f2(dig.P50()), f2(dig.Quantile(0.9)), fmt.Sprintf("%d", users))
	}
	t.Notes = append(t.Notes, "high similarity justifies using the current window frequency as the near-future estimate (§5.3)")
	return t, nil
}

// windowSimilarities computes per-user similarity between consecutive
// non-empty window frequencies and returns the number of users measured.
func windowSimilarities(trace *workload.Trace, windowSec float64, dig *metrics.Digest) int {
	perUser := map[workload.UserID]map[int]float64{}
	for _, r := range trace.Requests {
		w := int(r.Time / windowSec)
		m, ok := perUser[r.User]
		if !ok {
			m = map[int]float64{}
			perUser[r.User] = m
		}
		m[w]++
	}
	users := 0
	nWindows := int(math.Ceil(trace.Duration / windowSec))
	for _, m := range perUser {
		if len(m) < 2 {
			continue // a single active window has no consecutive pair
		}
		var sum float64
		var pairs int
		for w := 1; w < nWindows; w++ {
			a, b := m[w-1], m[w]
			if a == 0 || b == 0 {
				// The paper's estimate concerns users the scheduler is
				// actively tracking: compare consecutive windows in which
				// the user issued requests.
				continue
			}
			sum += 1 - math.Abs(a-b)/(a+b)
			pairs++
		}
		if pairs > 0 {
			dig.Add(sum / float64(pairs))
			users++
		}
	}
	return users
}

// sortSlice sorts s with the given ordering.
func sortSlice[T any](s []T, less func(a, b T) bool) {
	sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
}
