package placement

import (
	"math"
	"testing"

	"bat/internal/costmodel"
	"bat/internal/model"
	"bat/internal/workload"
)

func testInput(t *testing.T) Input {
	t.Helper()
	est, err := costmodel.FitEstimator(costmodel.A100PCIe3, model.Qwen2_1_5B)
	if err != nil {
		t.Fatal(err)
	}
	return Input{
		Est:     est,
		Link:    costmodel.NewLink(100),
		Model:   model.Qwen2_1_5B,
		Profile: workload.Books,
		Alpha:   0.05,
		Workers: 4,
	}
}

func TestHRCSPlanBasics(t *testing.T) {
	in := testInput(t)
	plan, err := NewPlan(HRCS, in)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != HRCS || plan.Workers != 4 || plan.Corpus != workload.Books.Items {
		t.Fatalf("plan metadata: %+v", plan)
	}
	if plan.ReplicatedItems <= 0 {
		t.Fatal("HRCS should replicate some hot items")
	}
	if plan.ReplicatedItems >= plan.Corpus {
		t.Fatal("HRCS should not replicate the whole corpus under a finite alpha")
	}
	if plan.ReplicatedItems+plan.ShardedItems != plan.Corpus {
		t.Fatalf("unbudgeted HRCS should cache the whole corpus: R=%d S=%d corpus=%d",
			plan.ReplicatedItems, plan.ShardedItems, plan.Corpus)
	}
	if plan.ReplicationRatio <= 0 || plan.ReplicationRatio >= 1 {
		t.Fatalf("replication ratio %v", plan.ReplicationRatio)
	}
}

// TestHRCSSlowNetworkReplicatesMore: with a slower network, fewer remote
// accesses are tolerable, so the replicated area must grow.
func TestHRCSSlowNetworkReplicatesMore(t *testing.T) {
	in := testInput(t)
	fast, err := NewPlan(HRCS, in)
	if err != nil {
		t.Fatal(err)
	}
	in.Link = costmodel.NewLink(10)
	slow, err := NewPlan(HRCS, in)
	if err != nil {
		t.Fatal(err)
	}
	if slow.ReplicatedItems <= fast.ReplicatedItems {
		t.Fatalf("10Gbps replicated %d items, 100Gbps %d; slow network should replicate more",
			slow.ReplicatedItems, fast.ReplicatedItems)
	}
	if slow.MaxCommRatio >= fast.MaxCommRatio {
		t.Fatal("R_max should shrink with bandwidth")
	}
}

// TestHRCSAlphaSweep: a larger tolerated communication ratio shrinks the
// replicated area (the ablation's knob).
func TestHRCSAlphaSweep(t *testing.T) {
	in := testInput(t)
	prev := -1
	for _, alpha := range []float64{0.01, 0.05, 0.2, 1.0} {
		in.Alpha = alpha
		plan, err := NewPlan(HRCS, in)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && plan.ReplicatedItems > prev {
			t.Fatalf("alpha %v replicated %d items, more than smaller alpha's %d",
				alpha, plan.ReplicatedItems, prev)
		}
		prev = plan.ReplicatedItems
	}
}

func TestHRCSSingleWorkerReplicatesNothingRemote(t *testing.T) {
	in := testInput(t)
	in.Workers = 1
	plan, err := NewPlan(HRCS, in)
	if err != nil {
		t.Fatal(err)
	}
	// With one worker R_max = 1: no need to replicate for communication.
	local, remote, miss := plan.ExpectedAccessSplit(workload.NewZipf(plan.Corpus, in.Profile.ItemZipfA))
	if remote != 0 {
		t.Fatalf("single worker has remote fraction %v", remote)
	}
	if math.Abs(local+miss-1) > 1e-9 {
		t.Fatalf("split doesn't sum to 1: %v + %v", local, miss)
	}
}

func TestHRCSBudgetClamp(t *testing.T) {
	in := testInput(t)
	itemBytes := int64(in.Profile.AvgItemTokens) * int64(in.Model.KVBytesPerToken())
	in.PerWorkerItemBudget = 1000 * itemBytes // room for 1000 items per worker
	plan, err := NewPlan(HRCS, in)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.ItemBytesPerWorker(); got > in.PerWorkerItemBudget+itemBytes {
		t.Fatalf("plan uses %d bytes/worker, budget %d", got, in.PerWorkerItemBudget)
	}
	if plan.CachedItems() >= plan.Corpus {
		t.Fatal("budgeted plan should not cache the whole corpus")
	}
}

func TestReplicatePlan(t *testing.T) {
	in := testInput(t)
	plan, err := NewPlan(Replicate, in)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ReplicatedItems != in.Profile.Items || plan.ShardedItems != 0 {
		t.Fatalf("replicate plan: %+v", plan)
	}
	// Every access is local.
	local, remote, miss := plan.ExpectedAccessSplit(workload.NewZipf(plan.Corpus, in.Profile.ItemZipfA))
	if local < 0.999 || remote != 0 || miss > 0.001 {
		t.Fatalf("replicate split: %v %v %v", local, remote, miss)
	}
	// Per-worker memory is the whole corpus — the cost the paper calls out.
	want := int64(plan.Corpus) * plan.AvgItemBytes
	if plan.ItemBytesPerWorker() != want {
		t.Fatalf("bytes/worker %d, want %d", plan.ItemBytesPerWorker(), want)
	}
}

func TestReplicateBudgetTruncatesToHottest(t *testing.T) {
	in := testInput(t)
	in.PerWorkerItemBudget = 500 * (int64(in.Profile.AvgItemTokens) * int64(in.Model.KVBytesPerToken()))
	plan, err := NewPlan(Replicate, in)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ReplicatedItems != 500 {
		t.Fatalf("replicated %d, want 500", plan.ReplicatedItems)
	}
	if plan.Lookup(0, 0) != LocLocal || plan.Lookup(500, 0) != LocMiss {
		t.Fatal("budgeted replicate should keep hottest and miss the rest")
	}
}

func TestHashPlan(t *testing.T) {
	in := testInput(t)
	plan, err := NewPlan(Hash, in)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ReplicatedItems != 0 || plan.ShardedItems != in.Profile.Items {
		t.Fatalf("hash plan: %+v", plan)
	}
	// ~1/4 of accesses are local, 3/4 remote.
	local, remote, miss := plan.ExpectedAccessSplit(workload.NewZipf(plan.Corpus, in.Profile.ItemZipfA))
	if math.Abs(local-0.25) > 0.01 || math.Abs(remote-0.75) > 0.01 || miss > 1e-9 {
		t.Fatalf("hash split: %v %v %v", local, remote, miss)
	}
	// Memory per worker is ~corpus/4.
	want := (int64(plan.Corpus) + 3) / 4 * plan.AvgItemBytes
	if plan.ItemBytesPerWorker() != want {
		t.Fatalf("bytes/worker %d, want %d", plan.ItemBytesPerWorker(), want)
	}
}

// TestMemoryOrdering: the paper's Fig. 7 premise — HRCS leaves more room for
// user cache than full replication, while avoiding Hash's network traffic.
func TestMemoryAndTrafficOrdering(t *testing.T) {
	in := testInput(t)
	hrcs, _ := NewPlan(HRCS, in)
	rep, _ := NewPlan(Replicate, in)
	hash, _ := NewPlan(Hash, in)
	if !(hash.ItemBytesPerWorker() < hrcs.ItemBytesPerWorker() && hrcs.ItemBytesPerWorker() < rep.ItemBytesPerWorker()) {
		t.Fatalf("memory ordering violated: hash %d, hrcs %d, rep %d",
			hash.ItemBytesPerWorker(), hrcs.ItemBytesPerWorker(), rep.ItemBytesPerWorker())
	}
	z := workload.NewZipf(in.Profile.Items, in.Profile.ItemZipfA)
	_, remHRCS, _ := hrcs.ExpectedAccessSplit(z)
	_, remRep, _ := rep.ExpectedAccessSplit(z)
	_, remHash, _ := hash.ExpectedAccessSplit(z)
	if !(remRep <= remHRCS && remHRCS < remHash) {
		t.Fatalf("traffic ordering violated: rep %v, hrcs %v, hash %v", remRep, remHRCS, remHash)
	}
	// HRCS must keep remote traffic within the Algorithm 1 bound.
	if remHRCS > hrcs.MaxCommRatio+1e-9 {
		t.Fatalf("HRCS remote fraction %v exceeds R_max %v", remHRCS, hrcs.MaxCommRatio)
	}
}

func TestLookupClassification(t *testing.T) {
	plan := Plan{Strategy: HRCS, Workers: 4, Corpus: 1000, ReplicatedItems: 10, ShardedItems: 100, AvgItemBytes: 1}
	if plan.Lookup(5, 2) != LocLocal {
		t.Fatal("replicated item must be local everywhere")
	}
	it := workload.ItemID(50)
	holder := plan.ShardWorker(it)
	if plan.Lookup(it, holder) != LocLocal {
		t.Fatal("sharded item local on its holder")
	}
	if plan.Lookup(it, (holder+1)%4) != LocRemote {
		t.Fatal("sharded item remote elsewhere")
	}
	if plan.Lookup(500, 0) != LocMiss {
		t.Fatal("uncached item must miss")
	}
}

func TestShardWorkerBalanced(t *testing.T) {
	plan := Plan{Workers: 4, Corpus: 100000, ShardedItems: 100000, AvgItemBytes: 1}
	counts := make([]int, 4)
	for it := 0; it < 100000; it++ {
		counts[plan.ShardWorker(workload.ItemID(it))]++
	}
	for w, c := range counts {
		if c < 23000 || c > 27000 {
			t.Fatalf("worker %d holds %d of 100000 sharded items", w, c)
		}
	}
}

func TestReplicationRatioFromFrequenciesMatchesAnalytic(t *testing.T) {
	// Materialize a small Zipf frequency table and compare the literal
	// Algorithm 1 loop with the analytic binary search.
	const n = 10_000
	a := 1.08
	freqs := make([]float64, n)
	var sum float64
	for i := range freqs {
		freqs[i] = math.Pow(float64(i+1), -a)
		sum += freqs[i]
	}
	for i := range freqs {
		freqs[i] /= sum
	}
	z := workload.NewZipf(n, a)
	for _, rMax := range []float64{0.05, 0.2, 0.5} {
		literal := ReplicationRatioFromFrequencies(freqs, rMax)
		analytic := float64(ranksCoveringMass(z, n, 1-rMax)) / float64(n)
		if math.Abs(literal-analytic) > 0.05 {
			t.Errorf("rMax %v: literal %v vs analytic %v", rMax, literal, analytic)
		}
	}
}

func TestReplicationRatioEdgeCases(t *testing.T) {
	if ReplicationRatioFromFrequencies(nil, 0.5) != 0 {
		t.Fatal("empty distribution")
	}
	if ReplicationRatioFromFrequencies([]float64{1}, 0) != 1 {
		t.Fatal("zero tolerance should replicate everything")
	}
}

func TestNewPlanValidation(t *testing.T) {
	in := testInput(t)
	in.Workers = 0
	if _, err := NewPlan(HRCS, in); err == nil {
		t.Fatal("zero workers accepted")
	}
	in = testInput(t)
	in.Est = nil
	if _, err := NewPlan(HRCS, in); err == nil {
		t.Fatal("HRCS without estimator accepted")
	}
	in = testInput(t)
	in.Alpha = -1
	if _, err := NewPlan(HRCS, in); err == nil {
		t.Fatal("negative alpha accepted")
	}
}

func TestStrategyAndLocationStrings(t *testing.T) {
	if HRCS.String() != "hrcs" || Replicate.String() != "replicate" || Hash.String() != "hash" {
		t.Fatal("Strategy strings")
	}
	if LocLocal.String() != "local" || LocRemote.String() != "remote" || LocMiss.String() != "miss" {
		t.Fatal("Location strings")
	}
}

func TestGPUResidentSizing(t *testing.T) {
	in := testInput(t)
	itemBytes := int64(in.Profile.AvgItemTokens) * int64(in.Model.KVBytesPerToken())
	in.PerWorkerGPUItemBudget = 500 * itemBytes
	plan, err := NewPlan(HRCS, in)
	if err != nil {
		t.Fatal(err)
	}
	if plan.GPUResidentItems != 500 {
		t.Fatalf("GPU items %d, want 500", plan.GPUResidentItems)
	}
	if plan.GPUBytesPerWorker() != 500*itemBytes {
		t.Fatalf("GPU bytes %d", plan.GPUBytesPerWorker())
	}
	if !plan.GPUResident(10) || plan.GPUResident(500) {
		t.Fatal("GPUResident boundary wrong")
	}
	// GPU area never exceeds the replicated set.
	in.PerWorkerGPUItemBudget = int64(in.Profile.Items+1000) * itemBytes
	plan2, err := NewPlan(HRCS, in)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.GPUResidentItems > plan2.ReplicatedItems {
		t.Fatalf("GPU items %d exceed replicated %d", plan2.GPUResidentItems, plan2.ReplicatedItems)
	}
	// Negative budget rejected.
	in.PerWorkerGPUItemBudget = -1
	if _, err := NewPlan(HRCS, in); err == nil {
		t.Fatal("negative GPU budget accepted")
	}
}
