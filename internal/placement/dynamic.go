package placement

import "bat/internal/workload"

// DynamicPlan augments a static placement with a bounded promotion area:
// the background refresh process of §5.2 ("there are some burst hotspots
// that should be recommended to most users; we update these items in the
// replicate area") promotes ad-hoc hot items into a replicated slack region
// on every worker, evicting the oldest promotion FIFO-style when full.
//
// Promotions are replicated (burst items are, by definition, headed to most
// users), so a promoted item is Local everywhere.
type DynamicPlan struct {
	Base Plan
	// Slack is the promotion area's capacity in items per worker.
	Slack int

	promoted map[workload.ItemID]struct{}
	order    []workload.ItemID // FIFO of live promotions
}

// NewDynamicPlan wraps a static plan with a promotion area of slackItems.
func NewDynamicPlan(base Plan, slackItems int) *DynamicPlan {
	if slackItems < 0 {
		slackItems = 0
	}
	return &DynamicPlan{
		Base:     base,
		Slack:    slackItems,
		promoted: make(map[workload.ItemID]struct{}, slackItems),
	}
}

// Lookup consults the promotion area before the static plan.
func (d *DynamicPlan) Lookup(it workload.ItemID, local int) Location {
	if _, ok := d.promoted[it]; ok {
		return LocLocal
	}
	return d.Base.Lookup(it, local)
}

// Promote replicates a burst item, evicting the oldest promotion when the
// slack area is full. Items the static plan already serves locally
// everywhere are skipped. It reports whether a promotion happened.
func (d *DynamicPlan) Promote(it workload.ItemID) bool {
	if d.Slack == 0 {
		return false
	}
	if _, ok := d.promoted[it]; ok {
		return false
	}
	if int64(it) < int64(d.Base.ReplicatedItems) {
		return false // already replicated statically
	}
	for len(d.order) >= d.Slack {
		victim := d.order[0]
		d.order = d.order[1:]
		delete(d.promoted, victim)
	}
	d.promoted[it] = struct{}{}
	d.order = append(d.order, it)
	return true
}

// PromotedCount returns the number of live promotions.
func (d *DynamicPlan) PromotedCount() int { return len(d.promoted) }

// ItemBytesPerWorker accounts the static area plus the full slack region
// (reserved up front, like the paper's offline allocation).
func (d *DynamicPlan) ItemBytesPerWorker() int64 {
	return d.Base.ItemBytesPerWorker() + int64(d.Slack)*d.Base.AvgItemBytes
}

// CachedItems returns distinct cached items, static plus promoted.
func (d *DynamicPlan) CachedItems() int { return d.Base.CachedItems() + len(d.promoted) }
