package placement_test

import (
	"fmt"

	"bat/internal/costmodel"
	"bat/internal/model"
	"bat/internal/placement"
	"bat/internal/workload"
)

// Example runs Algorithm 1 end to end for a 4-node cluster on the Books
// corpus and classifies a few item accesses.
func Example() {
	est, err := costmodel.FitEstimator(costmodel.A100PCIe3, model.Qwen2_1_5B)
	if err != nil {
		fmt.Println(err)
		return
	}
	plan, err := placement.NewPlan(placement.HRCS, placement.Input{
		Est:     est,
		Link:    costmodel.NewLink(100),
		Model:   model.Qwen2_1_5B,
		Profile: workload.Books,
		Alpha:   0.05,
		Workers: 4,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("replicated hottest %d of %d items (R_max %.2f)\n",
		plan.ReplicatedItems, plan.Corpus, plan.MaxCommRatio)
	fmt.Printf("hottest item from any node: %v\n", plan.Lookup(0, 3))
	tail := workload.ItemID(plan.Corpus - 1)
	fmt.Printf("coldest item from its holder: %v\n", plan.Lookup(tail, plan.ShardWorker(tail)))

	// Output:
	// replicated hottest 898 of 280000 items (R_max 0.34)
	// hottest item from any node: local
	// coldest item from its holder: local
}
