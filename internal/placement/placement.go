// Package placement implements the hot-replicated cold-sharded (HRCS) item
// cache placement of §5.2 / Algorithm 1, plus the paper's two baselines:
// full replication (BAT-Replicate) and hash sharding (BAT-Hash).
//
// Because item IDs are popularity ranks (see workload), a plan is a compact
// virtual description — "the hottest R items are replicated everywhere, the
// next S are sharded by hash" — and residency questions are answered in O(1)
// without materializing per-item entries, which keeps 100M-item corpora
// tractable.
package placement

import (
	"fmt"

	"bat/internal/costmodel"
	"bat/internal/model"
	"bat/internal/routing"
	"bat/internal/workload"
)

// Strategy names an item-placement policy.
type Strategy int

const (
	// HRCS is the paper's hot-replicated cold-sharded placement.
	HRCS Strategy = iota
	// Replicate copies the item cache onto every worker (BAT-Replicate).
	Replicate
	// Hash shards the item cache across workers round-robin (BAT-Hash).
	Hash
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case HRCS:
		return "hrcs"
	case Replicate:
		return "replicate"
	case Hash:
		return "hash"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Location classifies where an item's KV cache can be served from.
type Location int

const (
	// LocLocal means the requesting node holds the cache.
	LocLocal Location = iota
	// LocRemote means another node holds it; a network transfer is needed.
	LocRemote
	// LocMiss means no node caches it; the item must be recomputed.
	LocMiss
)

// String implements fmt.Stringer.
func (l Location) String() string {
	switch l {
	case LocLocal:
		return "local"
	case LocRemote:
		return "remote"
	default:
		return "miss"
	}
}

// Plan is a resolved item placement.
type Plan struct {
	Strategy Strategy
	Workers  int
	Corpus   int
	// ReplicatedItems R: the hottest R items (IDs 0..R-1) live on every
	// worker. ShardedItems S: items R..R+S-1 are hash-sharded. Items beyond
	// R+S are uncached (recomputed on use).
	ReplicatedItems int
	ShardedItems    int
	// ReplicationRatio is Algorithm 1's output r = R / corpus.
	ReplicationRatio float64
	// MaxCommRatio is Algorithm 1's R_max (before memory clamping).
	MaxCommRatio float64
	// AvgItemBytes is the per-item KV footprint used for budgeting.
	AvgItemBytes int64
	// GPUResidentItems pins the hottest G (≤ ReplicatedItems) replicated
	// items in device memory, where serving them costs no host-to-GPU load.
	// §5.1 names GPU memory as part of each worker's pool; the paper
	// evaluates CPU only, so this is the reproduction's extension knob.
	GPUResidentItems int
}

// GPUBytesPerWorker returns the device memory the GPU-resident area uses.
func (p Plan) GPUBytesPerWorker() int64 {
	return int64(p.GPUResidentItems) * p.AvgItemBytes
}

// GPUResident reports whether the item is served straight from device memory.
func (p Plan) GPUResident(it workload.ItemID) bool {
	return int64(it) < int64(p.GPUResidentItems)
}

// Lookup classifies item it as seen from worker local.
func (p Plan) Lookup(it workload.ItemID, local int) Location {
	id := int64(it)
	switch {
	case id < int64(p.ReplicatedItems):
		return LocLocal
	case id < int64(p.ReplicatedItems)+int64(p.ShardedItems):
		if p.ShardWorker(it) == local {
			return LocLocal
		}
		return LocRemote
	default:
		return LocMiss
	}
}

// ShardWorker returns the worker holding a sharded item: the item's home
// slot on the shared routing ring over the plan's workers.
func (p Plan) ShardWorker(it workload.ItemID) int {
	return routing.NewRing(p.Workers).Home(routing.Mix64(uint64(it)))
}

// ItemBytesPerWorker returns the per-worker memory the plan's item area
// consumes: all replicated items plus this worker's shard.
func (p Plan) ItemBytesPerWorker() int64 {
	if p.Workers <= 0 {
		return 0 // the zero Plan places nothing
	}
	shardPer := (int64(p.ShardedItems) + int64(p.Workers) - 1) / int64(p.Workers)
	return (int64(p.ReplicatedItems) + shardPer) * p.AvgItemBytes
}

// CachedItems returns how many distinct items the plan keeps cached.
func (p Plan) CachedItems() int { return p.ReplicatedItems + p.ShardedItems }

// Input gathers what Algorithm 1 and the baselines need.
type Input struct {
	Est     *costmodel.Estimator // offline-fitted prefill estimator
	Link    costmodel.Link       // inter-node network
	Model   model.Config
	Profile workload.Profile
	// Alpha is the tolerable communication-over-computation ratio (α).
	Alpha   float64
	Workers int
	// PerWorkerItemBudget caps each worker's item-cache bytes; 0 means
	// unlimited (memory is checked by the caller).
	PerWorkerItemBudget int64
	// PerWorkerGPUItemBudget pins that many bytes of the hottest replicated
	// items in device memory (0 disables the GPU-resident area).
	PerWorkerGPUItemBudget int64
}

func (in Input) validate() error {
	switch {
	case in.Workers <= 0:
		return fmt.Errorf("placement: need at least one worker")
	case in.Alpha < 0:
		return fmt.Errorf("placement: alpha must be non-negative")
	case in.PerWorkerItemBudget < 0:
		return fmt.Errorf("placement: negative item budget")
	case in.PerWorkerGPUItemBudget < 0:
		return fmt.Errorf("placement: negative GPU item budget")
	}
	if err := in.Profile.Validate(); err != nil {
		return err
	}
	return nil
}

func (in Input) avgItemBytes() int64 {
	return int64(in.Profile.AvgItemTokens) * int64(in.Model.KVBytesPerToken())
}

// NewPlan builds a plan for the given strategy.
func NewPlan(strategy Strategy, in Input) (Plan, error) {
	if err := in.validate(); err != nil {
		return Plan{}, err
	}
	switch strategy {
	case HRCS:
		return hrcsPlan(in)
	case Replicate:
		return replicatePlan(in), nil
	case Hash:
		return hashPlan(in), nil
	default:
		return Plan{}, fmt.Errorf("placement: unknown strategy %d", int(strategy))
	}
}

// hrcsPlan is Algorithm 1 with the analytic popularity CDF, followed by the
// memory clamp: replication wins the budget first (it is what removes
// network IO), then sharding fills the remainder.
func hrcsPlan(in Input) (Plan, error) {
	if in.Est == nil {
		return Plan{}, fmt.Errorf("placement: HRCS requires a prefill estimator")
	}
	prof := in.Profile
	// Step 1: maximum allowed communication ratio.
	t := in.Est.Predict(prof.AvgUserTokens+prof.InstrTokens, prof.Candidates*prof.AvgItemTokens)
	tMax := in.Alpha * t
	b := in.Link.TokensPerSecond(in.Model)
	n := float64(in.Workers)
	rMax := 0.0
	if in.Workers > 1 {
		rMax = tMax * b * (n - 1) / (float64(prof.Candidates) * float64(prof.AvgItemTokens) * n)
	} else {
		rMax = 1 // single worker: everything is local anyway
	}
	if rMax > 1 {
		rMax = 1
	}

	// Step 2: scan the popularity CDF until it covers 1 - R_max of accesses.
	zipf := workload.NewZipf(prof.Items, prof.ItemZipfA)
	replicated := ranksCoveringMass(zipf, prof.Items, 1-rMax)

	plan := Plan{
		Strategy:     HRCS,
		Workers:      in.Workers,
		Corpus:       prof.Items,
		MaxCommRatio: rMax,
		AvgItemBytes: in.avgItemBytes(),
	}

	// Step 3: place within the memory budget. Replication wins the budget
	// first (it is what removes network IO); sharding fills the remainder.
	sharded := int64(prof.Items - replicated)
	if in.PerWorkerItemBudget > 0 {
		budgetItems := in.PerWorkerItemBudget / plan.AvgItemBytes
		if int64(replicated) > budgetItems {
			replicated = int(budgetItems)
		}
		remaining := budgetItems - int64(replicated) // per-worker shard slots
		sharded = int64(prof.Items - replicated)
		if shardCap := remaining * int64(in.Workers); sharded > shardCap {
			sharded = shardCap
		}
	}
	plan.ReplicatedItems = replicated
	plan.ShardedItems = int(sharded)
	plan.ReplicationRatio = float64(replicated) / float64(prof.Items)
	plan.GPUResidentItems = gpuResident(in, replicated)
	return plan, nil
}

// gpuResident sizes the device-memory area: the hottest replicated items up
// to the GPU budget.
func gpuResident(in Input, replicated int) int {
	if in.PerWorkerGPUItemBudget <= 0 {
		return 0
	}
	g := in.PerWorkerGPUItemBudget / in.avgItemBytes()
	if g > int64(replicated) {
		g = int64(replicated)
	}
	return int(g)
}

func replicatePlan(in Input) Plan {
	plan := Plan{
		Strategy:     Replicate,
		Workers:      in.Workers,
		Corpus:       in.Profile.Items,
		AvgItemBytes: in.avgItemBytes(),
	}
	replicated := int64(in.Profile.Items)
	if in.PerWorkerItemBudget > 0 {
		if limit := in.PerWorkerItemBudget / plan.AvgItemBytes; replicated > limit {
			replicated = limit
		}
	}
	plan.ReplicatedItems = int(replicated)
	plan.ReplicationRatio = float64(replicated) / float64(in.Profile.Items)
	plan.MaxCommRatio = 0
	plan.GPUResidentItems = gpuResident(in, int(replicated))
	return plan
}

func hashPlan(in Input) Plan {
	plan := Plan{
		Strategy:     Hash,
		Workers:      in.Workers,
		Corpus:       in.Profile.Items,
		AvgItemBytes: in.avgItemBytes(),
	}
	sharded := int64(in.Profile.Items)
	if in.PerWorkerItemBudget > 0 {
		if limit := in.PerWorkerItemBudget / plan.AvgItemBytes * int64(in.Workers); sharded > limit {
			sharded = limit
		}
	}
	plan.ShardedItems = int(sharded)
	plan.MaxCommRatio = float64(in.Workers-1) / float64(in.Workers)
	return plan
}

// ranksCoveringMass returns the smallest number of top ranks whose combined
// access mass reaches the target fraction.
func ranksCoveringMass(z *workload.Zipf, corpus int, mass float64) int {
	if mass <= 0 {
		return 0
	}
	if mass >= 1 {
		return corpus
	}
	// Binary search on the analytic CDF.
	lo, hi := 0, corpus
	for lo < hi {
		mid := (lo + hi) / 2
		if z.MassOfTopFraction(float64(mid)/float64(corpus)) >= mass {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// ReplicationRatioFromFrequencies is the literal Algorithm 1 CDF loop over a
// materialized, descending-sorted frequency distribution; it exists to
// cross-check the analytic path and for callers with measured frequencies.
// freqs must sum to ~1.
func ReplicationRatioFromFrequencies(freqs []float64, rMax float64) float64 {
	if len(freqs) == 0 {
		return 0
	}
	if rMax <= 0 {
		return 1
	}
	cdf := 0.0
	for i, f := range freqs {
		cdf += f
		if cdf >= 1-rMax {
			return float64(i+1) / float64(len(freqs))
		}
	}
	return 1
}

// ExpectedAccessSplit returns the analytic probability that a popularity-
// sampled item access is local, remote, or a miss under the plan, as seen
// from one worker.
func (p Plan) ExpectedAccessSplit(z *workload.Zipf) (local, remote, miss float64) {
	repMass := z.MassOfTopFraction(float64(p.ReplicatedItems) / float64(p.Corpus))
	cachedMass := z.MassOfTopFraction(float64(p.ReplicatedItems+p.ShardedItems) / float64(p.Corpus))
	shardMass := cachedMass - repMass
	local = repMass + shardMass/float64(p.Workers)
	remote = shardMass * float64(p.Workers-1) / float64(p.Workers)
	miss = 1 - cachedMass
	return local, remote, miss
}
