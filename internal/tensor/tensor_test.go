package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape: %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d not zero: %v", i, v)
		}
	}
}

func TestFromSliceSharesStorage(t *testing.T) {
	data := []float32{1, 2, 3, 4}
	m := FromSlice(2, 2, data)
	m.Set(0, 1, 9)
	if data[1] != 9 {
		t.Fatal("FromSlice should not copy")
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3", m.At(1, 0))
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 3, []float32{1, 2})
}

func TestRowIsView(t *testing.T) {
	m := NewMatrix(2, 3)
	r := m.Row(1)
	r[2] = 7
	if m.At(1, 2) != 7 {
		t.Fatal("Row should return a view")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 5)
	c := m.Clone()
	c.Set(0, 0, 1)
	if m.At(0, 0) != 5 {
		t.Fatal("Clone should copy storage")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	dst := NewMatrix(2, 2)
	MatMul(dst, a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if dst.Data[i] != w {
			t.Fatalf("dst[%d] = %v, want %v", i, dst.Data[i], w)
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	MatMul(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(2, 2))
}

func TestMatMulTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(4, 5)
	b := NewMatrix(3, 5)
	for i := range a.Data {
		a.Data[i] = rng.Float32() - 0.5
	}
	for i := range b.Data {
		b.Data[i] = rng.Float32() - 0.5
	}
	bt := NewMatrix(5, 3)
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	want := NewMatrix(4, 3)
	MatMul(want, a, bt)
	got := NewMatrix(4, 3)
	MatMulT(got, a, b)
	if d := MaxAbsDiff(got.Data, want.Data); d > 1e-5 {
		t.Fatalf("MatMulT deviates from transpose matmul by %v", d)
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float32{1, 2, 3}, []float32{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	v := []float32{1, 2, 3, 4}
	Softmax(v)
	var sum float32
	for _, x := range v {
		sum += x
	}
	if !almostEqual(sum, 1, 1e-5) {
		t.Fatalf("softmax sum = %v", sum)
	}
	for i := 1; i < len(v); i++ {
		if v[i] <= v[i-1] {
			t.Fatal("softmax should preserve order")
		}
	}
}

func TestSoftmaxMaskedEntries(t *testing.T) {
	v := []float32{1, NegInf, 2}
	Softmax(v)
	if v[1] != 0 {
		t.Fatalf("masked entry got probability %v", v[1])
	}
	if !almostEqual(v[0]+v[2], 1, 1e-5) {
		t.Fatalf("unmasked probabilities sum to %v", v[0]+v[2])
	}
}

func TestSoftmaxAllMasked(t *testing.T) {
	v := []float32{NegInf, NegInf}
	Softmax(v)
	if v[0] != 0 || v[1] != 0 {
		t.Fatalf("fully-masked softmax should be zeros, got %v", v)
	}
}

func TestSoftmaxLargeValuesStable(t *testing.T) {
	v := []float32{1000, 1001}
	Softmax(v)
	for _, x := range v {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			t.Fatalf("softmax not stable: %v", v)
		}
	}
}

func TestRMSNormUnitOutput(t *testing.T) {
	src := []float32{3, 4}
	w := []float32{1, 1}
	dst := make([]float32, 2)
	RMSNorm(dst, src, w, 0)
	// rms = sqrt((9+16)/2) = sqrt(12.5)
	rms := float32(math.Sqrt(12.5))
	if !almostEqual(dst[0], 3/rms, 1e-5) || !almostEqual(dst[1], 4/rms, 1e-5) {
		t.Fatalf("RMSNorm = %v", dst)
	}
}

func TestRMSNormInPlace(t *testing.T) {
	v := []float32{1, 2, 3}
	w := []float32{2, 2, 2}
	want := make([]float32, 3)
	RMSNorm(want, v, w, 1e-6)
	RMSNorm(v, v, w, 1e-6)
	if MaxAbsDiff(v, want) != 0 {
		t.Fatal("RMSNorm must support aliased dst/src")
	}
}

func TestSiLU(t *testing.T) {
	v := []float32{0}
	SiLU(v)
	if v[0] != 0 {
		t.Fatalf("SiLU(0) = %v", v[0])
	}
	v = []float32{10}
	SiLU(v)
	if !almostEqual(v[0], 10, 1e-2) {
		t.Fatalf("SiLU(10) = %v, want ~10", v[0])
	}
}

func TestRoPEPositionZeroIsIdentity(t *testing.T) {
	v := []float32{1, 2, 3, 4}
	orig := append([]float32(nil), v...)
	RotateRoPE(v, 0, 10000)
	if MaxAbsDiff(v, orig) > 1e-6 {
		t.Fatalf("RoPE at pos 0 changed vector: %v", v)
	}
}

func TestRoPEPreservesNorm(t *testing.T) {
	v := []float32{1, 2, 3, 4, 5, 6}
	before := Dot(v, v)
	RotateRoPE(v, 17, 10000)
	after := Dot(v, v)
	if !almostEqual(before, after, 1e-3) {
		t.Fatalf("RoPE changed norm: %v -> %v", before, after)
	}
}

// TestRoPERelativeProperty checks the defining property of rotary embeddings:
// dot(RoPE(q,m), RoPE(k,n)) depends only on (m-n) for 2D pairs.
func TestRoPERelativeProperty(t *testing.T) {
	q := []float32{0.3, -0.7}
	k := []float32{0.5, 0.2}
	dotAt := func(m, n int) float32 {
		qq := append([]float32(nil), q...)
		kk := append([]float32(nil), k...)
		RotateRoPE(qq, m, 10000)
		RotateRoPE(kk, n, 10000)
		return Dot(qq, kk)
	}
	if !almostEqual(dotAt(5, 3), dotAt(12, 10), 1e-5) {
		t.Fatalf("RoPE dot not relative: %v vs %v", dotAt(5, 3), dotAt(12, 10))
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float32{1, 5, 3}); got != 1 {
		t.Fatalf("ArgMax = %d", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Fatalf("ArgMax(nil) = %d", got)
	}
}

func TestTopKOrderAndTies(t *testing.T) {
	v := []float32{1, 3, 3, 0, 5}
	got := TopK(v, 3)
	want := []int{4, 1, 2}
	if len(got) != 3 {
		t.Fatalf("TopK len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
}

func TestTopKClamped(t *testing.T) {
	got := TopK([]float32{2, 1}, 10)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("TopK clamped = %v", got)
	}
	if TopK([]float32{1}, 0) != nil {
		t.Fatal("TopK k=0 should be nil")
	}
}

func TestTopKPropertyMatchesSort(t *testing.T) {
	f := func(raw []int8, kk uint8) bool {
		if len(raw) == 0 {
			return true
		}
		v := make([]float32, len(raw))
		for i, r := range raw {
			v[i] = float32(r)
		}
		k := int(kk)%len(v) + 1
		got := TopK(v, k)
		if len(got) != k {
			return false
		}
		// Each returned value must be >= every non-returned value,
		// and returned values are non-increasing.
		in := make(map[int]bool, k)
		for i, idx := range got {
			in[idx] = true
			if i > 0 && v[got[i-1]] < v[idx] {
				return false
			}
		}
		minSel := v[got[k-1]]
		for i, x := range v {
			if !in[i] && x > minSel {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAddInPlaceAndScale(t *testing.T) {
	dst := []float32{1, 2}
	AddInPlace(dst, []float32{3, 4})
	if dst[0] != 4 || dst[1] != 6 {
		t.Fatalf("AddInPlace = %v", dst)
	}
	Scale(dst, 0.5)
	if dst[0] != 2 || dst[1] != 3 {
		t.Fatalf("Scale = %v", dst)
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	// (A@B)@C == A@(B@C) within float tolerance, a sanity property for the
	// kernel used across every transformer layer.
	rng := rand.New(rand.NewSource(42))
	mk := func(r, c int) *Matrix {
		m := NewMatrix(r, c)
		for i := range m.Data {
			m.Data[i] = rng.Float32() - 0.5
		}
		return m
	}
	a, b, c := mk(3, 4), mk(4, 5), mk(5, 2)
	ab := NewMatrix(3, 5)
	MatMul(ab, a, b)
	abc1 := NewMatrix(3, 2)
	MatMul(abc1, ab, c)
	bc := NewMatrix(4, 2)
	MatMul(bc, b, c)
	abc2 := NewMatrix(3, 2)
	MatMul(abc2, a, bc)
	if d := MaxAbsDiff(abc1.Data, abc2.Data); d > 1e-4 {
		t.Fatalf("associativity violated by %v", d)
	}
}
