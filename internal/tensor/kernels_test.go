package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// randSparseMatrix fills a matrix with random values, zeroing a fraction of
// entries so the kernels' zero-skip branch is on the tested path.
func randSparseMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		if rng.Intn(8) == 0 {
			continue // leave a zero
		}
		m.Data[i] = rng.Float32() - 0.5
	}
	return m
}

// matMulNaive is the order-of-operations oracle for MatMul: one float32
// accumulator per output element, products added in strictly increasing
// shared-dimension order, zeros of a skipped — exactly the scalar schedule
// the blocked kernel promises to preserve.
func matMulNaive(a, b *Matrix) *Matrix {
	dst := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float32
			for kk := 0; kk < a.Cols; kk++ {
				av := a.At(i, kk)
				if av == 0 {
					continue
				}
				s += av * b.At(kk, j)
			}
			dst.Set(i, j, s)
		}
	}
	return dst
}

// TestMatMulBitIdenticalToNaive: the cache-blocked, unrolled, pool-parallel
// MatMul must reproduce the naive in-order schedule bit for bit, on shapes
// small enough to stay serial and large enough to cross both the row-block
// and flop thresholds into the parallel path.
func TestMatMulBitIdenticalToNaive(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(4)
	rng := rand.New(rand.NewSource(11))
	shapes := []struct{ n, k, p int }{
		{1, 8, 8},     // single row, serial
		{3, 5, 7},     // odd everything, serial, tail of the 4-wide unroll
		{17, 300, 33}, // crosses mmRowBlock and mmKBlock, below flop cutoff
		{48, 64, 32},  // above both cutoffs: blocked + parallel path
		{64, 512, 40}, // multiple k panels on the parallel path
	}
	for _, sh := range shapes {
		a := randSparseMatrix(rng, sh.n, sh.k)
		b := randSparseMatrix(rng, sh.k, sh.p)
		want := matMulNaive(a, b)
		got := NewMatrix(sh.n, sh.p)
		MatMul(got, a, b)
		if d := MaxAbsDiff(got.Data, want.Data); d != 0 {
			t.Fatalf("(%dx%d)@(%dx%d): blocked MatMul deviates from naive order by %v",
				sh.n, sh.k, sh.k, sh.p, d)
		}
	}
}

// TestMatMulTBitIdenticalToDots: MatMulT's blocked schedule must equal the
// plain dot-product formulation exactly.
func TestMatMulTBitIdenticalToDots(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(4)
	rng := rand.New(rand.NewSource(12))
	shapes := []struct{ n, k, m int }{
		{2, 9, 3},    // serial, unroll tail
		{20, 64, 40}, // blocked over b rows, below flop cutoff
		{48, 64, 48}, // parallel path
	}
	for _, sh := range shapes {
		a := randSparseMatrix(rng, sh.n, sh.k)
		b := randSparseMatrix(rng, sh.m, sh.k)
		want := NewMatrix(sh.n, sh.m)
		for i := 0; i < sh.n; i++ {
			for j := 0; j < sh.m; j++ {
				want.Set(i, j, Dot(a.Row(i), b.Row(j)))
			}
		}
		got := NewMatrix(sh.n, sh.m)
		MatMulT(got, a, b)
		if d := MaxAbsDiff(got.Data, want.Data); d != 0 {
			t.Fatalf("(%dx%d)@(%dx%d)T: MatMulT deviates from dot oracle by %v",
				sh.n, sh.k, sh.m, sh.k, d)
		}
	}
}

// TestMatMulDeterministicAcrossWidths: same inputs, same bits at every pool
// width — the package-level determinism guarantee.
func TestMatMulDeterministicAcrossWidths(t *testing.T) {
	defer SetParallelism(0)
	rng := rand.New(rand.NewSource(13))
	a := randSparseMatrix(rng, 96, 128)
	b := randSparseMatrix(rng, 128, 64)
	SetParallelism(1)
	serial := NewMatrix(96, 64)
	MatMul(serial, a, b)
	for _, width := range []int{2, 3, 8} {
		SetParallelism(width)
		got := NewMatrix(96, 64)
		MatMul(got, a, b)
		if d := MaxAbsDiff(got.Data, serial.Data); d != 0 {
			t.Fatalf("width %d deviates from width 1 by %v", width, d)
		}
	}
}

// TestRoPETableBitIdenticalToDirectFormula: rotating through the
// precomputed inverse-frequency ladder must produce the same bits as
// computing base^(-2i/d) per element — theta is the identical float64
// expression either way, so the table is a pure speedup.
func TestRoPETableBitIdenticalToDirectFormula(t *testing.T) {
	const dim = 16
	const base = 10000.0
	rng := rand.New(rand.NewSource(14))
	for _, pos := range []int{0, 1, 17, 4095, 1 << 20} {
		v := make([]float32, dim)
		for i := range v {
			v[i] = rng.Float32() - 0.5
		}
		want := append([]float32(nil), v...)
		for i := 0; i < dim/2; i++ {
			theta := float64(pos) * math.Pow(base, -2*float64(i)/float64(dim))
			sin, cos := math.Sincos(theta)
			a, b := want[2*i], want[2*i+1]
			want[2*i] = a*float32(cos) - b*float32(sin)
			want[2*i+1] = a*float32(sin) + b*float32(cos)
		}
		NewRoPETable(dim, base).Rotate(v, pos)
		if d := MaxAbsDiff(v, want); d != 0 {
			t.Fatalf("pos %d: table rotation deviates from direct formula by %v", pos, d)
		}
	}
}

// TestRoPETableForShared: the (dim, base) registry must hand back one shared
// table per key.
func TestRoPETableForShared(t *testing.T) {
	a := RoPETableFor(8, 10000)
	b := RoPETableFor(8, 10000)
	if a != b {
		t.Fatal("RoPETableFor returned distinct tables for one key")
	}
	if c := RoPETableFor(8, 500); c == a {
		t.Fatal("RoPETableFor shared a table across different bases")
	}
}

// TestNewRoPETablePanicsOnOddDim: head dims must be positive and even.
func TestNewRoPETablePanicsOnOddDim(t *testing.T) {
	for _, dim := range []int{-2, 0, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRoPETable(%d) did not panic", dim)
				}
			}()
			NewRoPETable(dim, 10000)
		}()
	}
}

// TestDotUnrollTails: the 4-wide unrolled Dot must match a plain loop at
// every length mod 4.
func TestDotUnrollTails(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for n := 0; n <= 9; n++ {
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = rng.Float32() - 0.5
			b[i] = rng.Float32() - 0.5
		}
		var want float32
		for i := range a {
			want += a[i] * b[i]
		}
		if got := Dot(a, b); got != want {
			t.Fatalf("len %d: Dot = %v, plain loop = %v", n, got, want)
		}
	}
}
