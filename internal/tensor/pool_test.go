package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestParallelRunsEveryIndexOnce pins the pool's core contract at several
// widths: fn(i) runs exactly once for every i in [0, n), regardless of how
// work is split between the caller and helpers.
func TestParallelRunsEveryIndexOnce(t *testing.T) {
	defer SetParallelism(0)
	for _, width := range []int{1, 2, 4, 8} {
		SetParallelism(width)
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			hits := make([]atomic.Int32, n)
			Parallel(n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("width %d, n %d: index %d ran %d times", width, n, i, got)
				}
			}
		}
	}
}

// TestParallelNegativeIsNoop: n <= 0 must return without touching the pool.
func TestParallelNegativeIsNoop(t *testing.T) {
	called := false
	Parallel(-3, func(int) { called = true })
	Parallel(0, func(int) { called = true })
	if called {
		t.Fatal("Parallel called fn for non-positive n")
	}
}

// TestParallelNested checks the no-deadlock guarantee: a Parallel call made
// from inside another Parallel callback must complete even when every pool
// worker is already occupied by the outer job. This is the Execute ->
// Forward -> MatMul nesting the serving path produces.
func TestParallelNested(t *testing.T) {
	SetParallelism(4)
	defer SetParallelism(0)
	const outer, inner = 16, 32
	var total atomic.Int64
	Parallel(outer, func(int) {
		Parallel(inner, func(int) { total.Add(1) })
	})
	if got := total.Load(); got != outer*inner {
		t.Fatalf("nested Parallel ran %d inner calls, want %d", got, outer*inner)
	}
}

// TestParallelConcurrentCallers drives the pool from many goroutines at
// once — the serving engine's steady state. Run with -race this is the
// pool's data-race gate.
func TestParallelConcurrentCallers(t *testing.T) {
	SetParallelism(4)
	defer SetParallelism(0)
	const callers, n = 12, 200
	var wg sync.WaitGroup
	sums := make([]int64, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var local atomic.Int64
			Parallel(n, func(i int) { local.Add(int64(i)) })
			sums[c] = local.Load()
		}(c)
	}
	wg.Wait()
	want := int64(n * (n - 1) / 2)
	for c, got := range sums {
		if got != want {
			t.Fatalf("caller %d: index sum %d, want %d", c, got, want)
		}
	}
}

// TestSetParallelismClamp: non-positive restores the GOMAXPROCS default, and
// explicit widths are reported back by Parallelism.
func TestSetParallelismClamp(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d after SetParallelism(3)", got)
	}
	SetParallelism(0)
	if got, want := Parallelism(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Parallelism() = %d after reset, want GOMAXPROCS %d", got, want)
	}
	SetParallelism(-5)
	if got, want := Parallelism(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Parallelism() = %d after SetParallelism(-5), want %d", got, want)
	}
}

// TestParallelBlocksCoverage: blocks must tile [0, n) exactly — no gaps, no
// overlaps — for awkward n/block combinations, including block > n and the
// block <= 0 fallback.
func TestParallelBlocksCoverage(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(4)
	cases := []struct{ n, block int }{
		{10, 3}, {16, 16}, {17, 16}, {5, 100}, {7, 0}, {1, 1}, {0, 4},
	}
	for _, tc := range cases {
		hits := make([]atomic.Int32, tc.n)
		ParallelBlocks(tc.n, tc.block, func(lo, hi int) {
			if lo < 0 || hi > tc.n || lo >= hi {
				t.Errorf("n=%d block=%d: bad range [%d,%d)", tc.n, tc.block, lo, hi)
			}
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("n=%d block=%d: index %d covered %d times", tc.n, tc.block, i, got)
			}
		}
	}
}
