package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The package worker pool. Every data-parallel kernel in the engine —
// matmul row blocks, attention (head x query-block) tasks, item-cache
// precomputes — funnels through Parallel, so one set of reusable goroutines
// serves the whole process instead of every call site spawning its own.
//
// Design constraints, in order:
//
//  1. Determinism: Parallel(n, fn) promises nothing about execution order,
//     so callers must give each index i exclusive ownership of its outputs.
//     Under that contract results are bit-identical at any pool width,
//     which is how the engine keeps its "same bits at GOMAXPROCS=1 and N"
//     guarantee.
//  2. No deadlocks under nesting: the submitting goroutine always works the
//     job itself, and helpers are recruited with a non-blocking send, so a
//     Parallel call made from inside another Parallel callback (e.g. a
//     batched Forward inside a parallel item-cache precompute) completes
//     even when every worker is busy.
//  3. Zero overhead when it cannot help: width 1 (GOMAXPROCS=1) or n<=1
//     runs inline with no allocation and no synchronization.

// parJob is one Parallel invocation. Participants claim indices from next
// until the range [0, n) is exhausted.
type parJob struct {
	fn   func(int)
	n    int
	next atomic.Int64
	wg   sync.WaitGroup
}

// work claims and runs indices until the job is drained, then signals the
// participant's completion.
func (j *parJob) work() {
	for {
		i := int(j.next.Add(1)) - 1
		if i >= j.n {
			break
		}
		j.fn(i)
	}
	j.wg.Done()
}

var (
	poolMu      sync.Mutex
	poolWidth   atomic.Int32 // 0 until first use; then the target parallelism
	poolSpawned int          // workers started so far (never torn down)
	poolJobs    = make(chan *parJob, 512)
)

// Parallelism returns the pool width, initializing it to GOMAXPROCS on
// first use.
func Parallelism() int {
	if w := poolWidth.Load(); w > 0 {
		return int(w)
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	if poolWidth.Load() == 0 {
		growLocked(runtime.GOMAXPROCS(0))
	}
	return int(poolWidth.Load())
}

// SetParallelism resizes the pool; n <= 0 restores the GOMAXPROCS default.
// Widening spawns workers (existing ones are reused, never restarted);
// narrowing only lowers the helper budget of future Parallel calls, so
// in-flight jobs are unaffected. Tests use width 1 vs N to check the
// engine's determinism guarantee on any machine.
func SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	growLocked(n)
}

func growLocked(n int) {
	poolWidth.Store(int32(n))
	for poolSpawned < n-1 {
		poolSpawned++
		go func() {
			for j := range poolJobs {
				j.work()
			}
		}()
	}
}

// Parallel runs fn(i) for every i in [0, n) across the worker pool and
// returns when all calls have completed. fn must not assume any ordering
// and must write only to data it exclusively owns per index; under that
// contract the aggregate result is identical at any pool width. Safe for
// concurrent callers and for nested use from inside a callback. n <= 1 or
// a width-1 pool runs inline.
func Parallel(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	width := Parallelism()
	if n == 1 || width == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	j := &parJob{fn: fn, n: n}
	j.wg.Add(1) // the caller participates
	helpers := width - 1
	if helpers > n-1 {
		helpers = n - 1
	}
recruit:
	for h := 0; h < helpers; h++ {
		j.wg.Add(1)
		select {
		case poolJobs <- j:
		default:
			// Queue saturated: every worker is already busy, so recruiting
			// more would only wait. The caller (and any helper already
			// enlisted) still drains the job.
			j.wg.Done()
			break recruit
		}
	}
	j.work()
	j.wg.Wait()
}

// ParallelBlocks splits [0, n) into contiguous blocks of the given size and
// runs fn(lo, hi) for each on the pool. It inherits Parallel's contract:
// fn must exclusively own the outputs for its block.
func ParallelBlocks(n, block int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if block <= 0 {
		block = 1
	}
	blocks := (n + block - 1) / block
	Parallel(blocks, func(b int) {
		lo := b * block
		hi := lo + block
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}
