// Package tensor provides the small dense float32 linear-algebra kernel the
// transformer in internal/model is built on: matrices, matmul, softmax,
// normalization, activations, and rotary position embedding.
//
// Everything is row-major float32 and allocation-explicit so callers can
// reuse buffers across forward passes.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (length rows*cols) as a matrix without copying.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Row returns a view of row i.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets all elements to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MatMul computes dst = a @ b. dst must be a.Rows x b.Cols; a.Cols must equal
// b.Rows. dst may not alias a or b.
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shape mismatch (%dx%d)@(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	n, k, p := a.Rows, a.Cols, b.Cols
	for i := 0; i < n; i++ {
		arow := a.Data[i*k : (i+1)*k]
		drow := dst.Data[i*p : (i+1)*p]
		for j := range drow {
			drow[j] = 0
		}
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.Data[kk*p : (kk+1)*p]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulT computes dst = a @ bᵀ, i.e. dst[i][j] = dot(a.Row(i), b.Row(j)).
// dst must be a.Rows x b.Rows; a.Cols must equal b.Cols.
func MatMulT(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulT shape mismatch (%dx%d)@(%dx%d)T->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			drow[j] = Dot(arow, b.Row(j))
		}
	}
}

// Dot returns the inner product of a and b, which must have equal length.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float32
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AddInPlace adds src into dst elementwise.
func AddInPlace(dst, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: add length mismatch %d != %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += v
	}
}

// Scale multiplies every element of v by s.
func Scale(v []float32, s float32) {
	for i := range v {
		v[i] *= s
	}
}

// Softmax normalizes v in place into a probability distribution, using the
// max-subtraction trick for numerical stability. Entries equal to
// NegInf are treated as fully masked and receive probability 0; if every
// entry is masked the result is all zeros.
func Softmax(v []float32) {
	maxv := float32(math.Inf(-1))
	for _, x := range v {
		if x > maxv {
			maxv = x
		}
	}
	if math.IsInf(float64(maxv), -1) {
		for i := range v {
			v[i] = 0
		}
		return
	}
	var sum float32
	for i, x := range v {
		e := float32(math.Exp(float64(x - maxv)))
		v[i] = e
		sum += e
	}
	if sum == 0 {
		return
	}
	inv := 1 / sum
	for i := range v {
		v[i] *= inv
	}
}

// NegInf is the additive-mask value that fully blocks an attention edge.
var NegInf = float32(math.Inf(-1))

// RMSNorm writes RMS-normalized src scaled by weight into dst.
// dst, src, and weight must share a length. dst may alias src.
func RMSNorm(dst, src, weight []float32, eps float32) {
	if len(dst) != len(src) || len(src) != len(weight) {
		panic("tensor: rmsnorm length mismatch")
	}
	var ss float64
	for _, v := range src {
		ss += float64(v) * float64(v)
	}
	inv := float32(1 / math.Sqrt(ss/float64(len(src))+float64(eps)))
	for i, v := range src {
		dst[i] = v * inv * weight[i]
	}
}

// SiLU applies x*sigmoid(x) elementwise in place.
func SiLU(v []float32) {
	for i, x := range v {
		v[i] = x / (1 + float32(math.Exp(float64(-x))))
	}
}

// RotateRoPE applies rotary position embedding for position pos to a head
// vector of even length, in place, using the given frequency base (10000 in
// the paper's models). Pairs are (v[2i], v[2i+1]).
func RotateRoPE(v []float32, pos int, base float64) {
	d := len(v)
	if d%2 != 0 {
		panic("tensor: RoPE head dim must be even")
	}
	for i := 0; i < d/2; i++ {
		theta := float64(pos) * math.Pow(base, -2*float64(i)/float64(d))
		sin, cos := math.Sincos(theta)
		a, b := v[2*i], v[2*i+1]
		v[2*i] = a*float32(cos) - b*float32(sin)
		v[2*i+1] = a*float32(sin) + b*float32(cos)
	}
}

// ArgMax returns the index of the largest element; -1 for empty input.
func ArgMax(v []float32) int {
	best, bestV := -1, float32(math.Inf(-1))
	for i, x := range v {
		if x > bestV {
			best, bestV = i, x
		}
	}
	return best
}

// TopK returns the indices of the k largest elements of v in descending
// order of value, breaking ties by lower index. k is clamped to len(v).
func TopK(v []float32, k int) []int {
	if k > len(v) {
		k = len(v)
	}
	if k <= 0 {
		return nil
	}
	// Selection via a small insertion-sorted window: candidate lists here are
	// ~100 entries, so O(n*k) beats heap overhead.
	idx := make([]int, 0, k)
	for i := range v {
		pos := len(idx)
		for pos > 0 {
			j := idx[pos-1]
			if v[j] > v[i] || (v[j] == v[i] && j < i) {
				break
			}
			pos--
		}
		if pos < k {
			if len(idx) < k {
				idx = append(idx, 0)
			}
			copy(idx[pos+1:], idx[pos:len(idx)-1])
			idx[pos] = i
		}
	}
	return idx
}

// MaxAbsDiff returns the largest absolute elementwise difference between a
// and b, which must have equal length.
func MaxAbsDiff(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("tensor: MaxAbsDiff length mismatch")
	}
	var m float32
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
