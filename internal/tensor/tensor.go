// Package tensor provides the small dense float32 linear-algebra kernel the
// transformer in internal/model is built on: matrices, cache-blocked
// multi-core matmul, softmax, normalization, activations, rotary position
// embedding, and the package worker pool (Parallel) the rest of the engine
// schedules data-parallel work on.
//
// Everything is row-major float32 and allocation-explicit so callers can
// reuse buffers across forward passes. Every kernel accumulates each output
// element in a fixed scalar order, so results are bit-identical at any
// blocking factor and any pool width — the determinism guarantee the
// engine's tests pin down.
package tensor

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (length rows*cols) as a matrix without copying.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Row returns a view of row i.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets all elements to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Kernel tuning constants. Blocking keeps a panel of b resident in cache
// while a block of output rows streams over it, and row blocks double as the
// work-distribution granule for the worker pool. None of them affect
// results: every output element always accumulates its products in strictly
// increasing shared-dimension order, so the kernels are bit-identical at any
// block size and any pool width.
const (
	mmRowBlock = 16      // output rows per block (cache reuse + pool granule)
	mmKBlock   = 256     // shared-dimension panel height
	mmMinFlops = 1 << 15 // below this many multiply-adds, skip the pool
)

// MatMul computes dst = a @ b. dst must be a.Rows x b.Cols; a.Cols must equal
// b.Rows. dst may not alias a or b. Large products are cache-blocked and run
// on the package worker pool; results are bit-identical to the serial
// row-by-row computation regardless of blocking or parallelism.
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shape mismatch (%dx%d)@(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	n := a.Rows
	if n <= mmRowBlock || n*a.Cols*b.Cols < mmMinFlops {
		matMulRows(dst, a, b, 0, n)
		return
	}
	ParallelBlocks(n, mmRowBlock, func(lo, hi int) {
		matMulRows(dst, a, b, lo, hi)
	})
}

// matMulRows computes dst rows [lo, hi). The shared dimension is processed
// in panels so the active rows of b stay cache-resident across the row
// block, and the inner saxpy is 4-wide unrolled. Each dst element still
// accumulates in increasing-k order with the same zero skip as a plain
// vector-matrix product.
func matMulRows(dst, a, b *Matrix, lo, hi int) {
	k, p := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*p : (i+1)*p]
		for j := range drow {
			drow[j] = 0
		}
	}
	for kb := 0; kb < k; kb += mmKBlock {
		ke := kb + mmKBlock
		if ke > k {
			ke = k
		}
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			drow := dst.Data[i*p : (i+1)*p]
			for kk := kb; kk < ke; kk++ {
				av := arow[kk]
				if av == 0 {
					continue
				}
				saxpy(drow, b.Data[kk*p:(kk+1)*p], av)
			}
		}
	}
}

// saxpy computes dst += s*src, 4-wide unrolled. Element order is unchanged —
// each dst[j] sees exactly one add — so unrolling cannot perturb bits.
func saxpy(dst, src []float32, s float32) {
	j := 0
	for ; j+4 <= len(dst); j += 4 {
		d := dst[j : j+4 : j+4]
		x := src[j : j+4 : j+4]
		d[0] += s * x[0]
		d[1] += s * x[1]
		d[2] += s * x[2]
		d[3] += s * x[3]
	}
	for ; j < len(dst); j++ {
		dst[j] += s * src[j]
	}
}

// MatMulT computes dst = a @ bᵀ, i.e. dst[i][j] = dot(a.Row(i), b.Row(j)).
// dst must be a.Rows x b.Rows; a.Cols must equal b.Cols. Like MatMul it is
// cache-blocked, pool-parallel over output rows, and bit-identical to the
// serial dot-product formulation.
func MatMulT(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmulT shape mismatch (%dx%d)@(%dx%d)T->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	n := a.Rows
	if n <= mmRowBlock || n*a.Cols*b.Rows < mmMinFlops {
		matMulTRows(dst, a, b, 0, n)
		return
	}
	ParallelBlocks(n, mmRowBlock, func(lo, hi int) {
		matMulTRows(dst, a, b, lo, hi)
	})
}

// matMulTRows computes dst rows [lo, hi), blocking over b's rows so each
// panel of keys is reused across the whole row block while cache-hot.
func matMulTRows(dst, a, b *Matrix, lo, hi int) {
	for jb := 0; jb < b.Rows; jb += mmRowBlock {
		je := jb + mmRowBlock
		if je > b.Rows {
			je = b.Rows
		}
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			for j := jb; j < je; j++ {
				drow[j] = Dot(arow, b.Row(j))
			}
		}
	}
}

// Dot returns the inner product of a and b, which must have equal length.
// The loop is 4-wide unrolled into a single accumulator, preserving the
// strict left-to-right summation order.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		x := a[i : i+4 : i+4]
		y := b[i : i+4 : i+4]
		s += x[0] * y[0]
		s += x[1] * y[1]
		s += x[2] * y[2]
		s += x[3] * y[3]
	}
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// AddInPlace adds src into dst elementwise.
func AddInPlace(dst, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: add length mismatch %d != %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += v
	}
}

// Scale multiplies every element of v by s.
func Scale(v []float32, s float32) {
	for i := range v {
		v[i] *= s
	}
}

// Softmax normalizes v in place into a probability distribution, using the
// max-subtraction trick for numerical stability. Entries equal to
// NegInf are treated as fully masked and receive probability 0; if every
// entry is masked the result is all zeros.
func Softmax(v []float32) {
	maxv := float32(math.Inf(-1))
	for _, x := range v {
		if x > maxv {
			maxv = x
		}
	}
	if math.IsInf(float64(maxv), -1) {
		for i := range v {
			v[i] = 0
		}
		return
	}
	var sum float32
	for i, x := range v {
		// Masked entries contribute exactly exp(-Inf) == 0 to the sum, so
		// skipping the Exp call is bit-identical. Batched cross-request
		// attention masks most of the packed context, making this the
		// difference between O(own context) and O(batch context) Exp calls.
		if math.IsInf(float64(x), -1) {
			v[i] = 0
			continue
		}
		e := float32(math.Exp(float64(x - maxv)))
		v[i] = e
		sum += e
	}
	if sum == 0 {
		return
	}
	inv := 1 / sum
	for i := range v {
		v[i] *= inv
	}
}

// NegInf is the additive-mask value that fully blocks an attention edge.
var NegInf = float32(math.Inf(-1))

// RMSNorm writes RMS-normalized src scaled by weight into dst.
// dst, src, and weight must share a length. dst may alias src.
func RMSNorm(dst, src, weight []float32, eps float32) {
	if len(dst) != len(src) || len(src) != len(weight) {
		panic("tensor: rmsnorm length mismatch")
	}
	var ss float64
	for _, v := range src {
		ss += float64(v) * float64(v)
	}
	inv := float32(1 / math.Sqrt(ss/float64(len(src))+float64(eps)))
	for i, v := range src {
		dst[i] = v * inv * weight[i]
	}
}

// SiLU applies x*sigmoid(x) elementwise in place.
func SiLU(v []float32) {
	for i, x := range v {
		v[i] = x / (1 + float32(math.Exp(float64(-x))))
	}
}

// RoPETable holds the precomputed inverse-frequency ladder for one
// (head dimension, base) pair: invFreq[i] = base^(-2i/d). Building it once
// removes the math.Pow from every rotated element, and a lazily grown
// per-position sin/cos memo removes the math.Sincos from every position the
// engine has rotated before — serving traffic revisits the same few dozen
// positions on every request, so in steady state rotation is pure
// multiply-adds. Both are bit-identical to the direct formula: theta is the
// same float64 product either way, and the memo stores exactly the float32
// conversions the direct path would multiply with.
type RoPETable struct {
	dim     int
	invFreq []float64

	// memo is pos-major: row p holds float32(cos), float32(sin) per frequency
	// pair for position p. Grown copy-on-write under memoMu; readers load the
	// current snapshot atomically and never block.
	memo   atomic.Pointer[[]float32]
	memoMu sync.Mutex
}

// maxRoPEMemoPos bounds the memo (positions at or beyond it take the direct
// Sincos path), capping worst-case memo memory at maxRoPEMemoPos*dim floats.
const maxRoPEMemoPos = 1 << 14

// NewRoPETable precomputes the frequency ladder for head vectors of even
// length dim.
func NewRoPETable(dim int, base float64) *RoPETable {
	if dim <= 0 || dim%2 != 0 {
		panic(fmt.Sprintf("tensor: RoPE head dim must be positive and even, got %d", dim))
	}
	t := &RoPETable{dim: dim, invFreq: make([]float64, dim/2)}
	for i := range t.invFreq {
		t.invFreq[i] = math.Pow(base, -2*float64(i)/float64(dim))
	}
	return t
}

// Rotate applies rotary position embedding for position pos to a head
// vector of the table's dimension, in place. Pairs are (v[2i], v[2i+1]).
func (t *RoPETable) Rotate(v []float32, pos int) {
	if len(v) != t.dim {
		panic(fmt.Sprintf("tensor: RoPE head dim %d, table built for %d", len(v), t.dim))
	}
	if pos >= 0 && pos < maxRoPEMemoPos {
		row := t.memoRow(pos)
		for i := range t.invFreq {
			cos, sin := row[2*i], row[2*i+1]
			a, b := v[2*i], v[2*i+1]
			v[2*i] = a*cos - b*sin
			v[2*i+1] = a*sin + b*cos
		}
		return
	}
	fp := float64(pos)
	for i, inv := range t.invFreq {
		sin, cos := math.Sincos(fp * inv)
		a, b := v[2*i], v[2*i+1]
		v[2*i] = a*float32(cos) - b*float32(sin)
		v[2*i+1] = a*float32(sin) + b*float32(cos)
	}
}

// memoRow returns position pos's cached sin/cos row, growing the memo when
// pos is beyond the current snapshot.
func (t *RoPETable) memoRow(pos int) []float32 {
	if m := t.memo.Load(); m != nil && len(*m) >= (pos+1)*t.dim {
		return (*m)[pos*t.dim : (pos+1)*t.dim]
	}
	return t.growMemo(pos)
}

func (t *RoPETable) growMemo(pos int) []float32 {
	t.memoMu.Lock()
	defer t.memoMu.Unlock()
	if m := t.memo.Load(); m != nil && len(*m) >= (pos+1)*t.dim {
		return (*m)[pos*t.dim : (pos+1)*t.dim]
	}
	n := 256
	if old := t.memo.Load(); old != nil {
		n = len(*old) / t.dim
	}
	for n <= pos {
		n *= 2
	}
	if n > maxRoPEMemoPos {
		n = maxRoPEMemoPos
	}
	m := make([]float32, n*t.dim)
	for p := 0; p < n; p++ {
		fp := float64(p)
		for i, inv := range t.invFreq {
			sin, cos := math.Sincos(fp * inv)
			m[p*t.dim+2*i] = float32(cos)
			m[p*t.dim+2*i+1] = float32(sin)
		}
	}
	t.memo.Store(&m)
	return m[pos*t.dim : (pos+1)*t.dim]
}

// ropeTables caches RoPETables by (dim, base) so ad-hoc callers share the
// precomputed ladders. Engines that know their config should hold their own
// table (see model.Weights) and skip the map lookup.
var ropeTables sync.Map // ropeKey -> *RoPETable

type ropeKey struct {
	dim  int
	base float64
}

// RoPETableFor returns the shared table for a (dim, base) pair, building it
// on first use.
func RoPETableFor(dim int, base float64) *RoPETable {
	key := ropeKey{dim, base}
	if t, ok := ropeTables.Load(key); ok {
		return t.(*RoPETable)
	}
	t, _ := ropeTables.LoadOrStore(key, NewRoPETable(dim, base))
	return t.(*RoPETable)
}

// RotateRoPE applies rotary position embedding for position pos to a head
// vector of even length, in place, using the given frequency base (10000 in
// the paper's models). Pairs are (v[2i], v[2i+1]).
func RotateRoPE(v []float32, pos int, base float64) {
	RoPETableFor(len(v), base).Rotate(v, pos)
}

// ArgMax returns the index of the largest element; -1 for empty input.
func ArgMax(v []float32) int {
	best, bestV := -1, float32(math.Inf(-1))
	for i, x := range v {
		if x > bestV {
			best, bestV = i, x
		}
	}
	return best
}

// TopK returns the indices of the k largest elements of v in descending
// order of value, breaking ties by lower index. k is clamped to len(v).
func TopK(v []float32, k int) []int {
	if k > len(v) {
		k = len(v)
	}
	if k <= 0 {
		return nil
	}
	// Selection via a small insertion-sorted window: candidate lists here are
	// ~100 entries, so O(n*k) beats heap overhead.
	idx := make([]int, 0, k)
	for i := range v {
		pos := len(idx)
		for pos > 0 {
			j := idx[pos-1]
			if v[j] > v[i] || (v[j] == v[i] && j < i) {
				break
			}
			pos--
		}
		if pos < k {
			if len(idx) < k {
				idx = append(idx, 0)
			}
			copy(idx[pos+1:], idx[pos:len(idx)-1])
			idx[pos] = i
		}
	}
	return idx
}

// MaxAbsDiff returns the largest absolute elementwise difference between a
// and b, which must have equal length.
func MaxAbsDiff(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("tensor: MaxAbsDiff length mismatch")
	}
	var m float32
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
