package distserve

// Graceful drain: POST /v1/drain tells a cache worker to stop accepting
// stores, stream every entry it holds to surviving peers, register the moves
// in the meta service, and deregister itself — so a planned restart loses
// nothing. The worker replays the frontend's own replica walk (the shared
// routing ring over the peer list the drain request carries), which is what
// guarantees drained entries land exactly where the frontend's routing will
// look for them.
//
// Entries move as a bulk stream of length-prefixed frames over one
// POST /v1/bulk per target peer:
//
//	uint32 keyLen | key | uint32 payloadLen | payload   (little-endian)
//
// Each payload is a complete BKV2 blob, validated against its own wire
// header before it is stored, so a truncated or corrupt stream can never
// install a partial cache.

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"

	"bat/internal/model"

	"bat/internal/routing"
)

// maxBulkKeyLen bounds bulk-frame keys; real keys are "user/123456" sized.
const maxBulkKeyLen = 128

// DrainPeer is one pool member as the draining worker should see it.
type DrainPeer struct {
	URL string `json:"url"`
	// Alive marks peers that may receive drained entries (live, not
	// draining, not the drain target itself).
	Alive bool `json:"alive"`
}

// DrainRequest tells a worker to drain itself. The peer list is the
// frontend's full worker slice in index order — the draining worker replays
// the frontend's replica walk over it, so both sides agree on placement.
type DrainRequest struct {
	Self        int         `json:"self"`
	Peers       []DrainPeer `json:"peers"`
	MetaURL     string      `json:"meta_url"`
	Replication int         `json:"replication"`
}

// DrainResponse reports a completed drain.
type DrainResponse struct {
	// Moved counts entries accepted by at least one peer (and deleted
	// locally); Copies counts total accepted replicas across peers.
	Moved  int   `json:"moved"`
	Copies int   `json:"copies"`
	Bytes  int64 `json:"bytes"`
	// Errors counts failed per-peer bulk pushes; Skipped counts entries with
	// no routable peer (they stay local and readable).
	Errors  int `json:"errors"`
	Skipped int `json:"skipped"`
}

// BulkResponse reports a bulk ingest: frames stored, plus the keys the
// worker refused (over capacity) so the sender keeps those entries.
type BulkResponse struct {
	Stored   int      `json:"stored"`
	Rejected []string `json:"rejected,omitempty"`
}

// bulkEntry is one (key, payload) pair moving through a drain.
type bulkEntry struct {
	key  string
	data []byte
}

// encodeBulkFrame writes one length-prefixed frame, returning bytes written.
func encodeBulkFrame(w io.Writer, key string, payload []byte) (int, error) {
	if len(key) == 0 || len(key) > maxBulkKeyLen {
		return 0, fmt.Errorf("distserve: bulk key length %d out of range", len(key))
	}
	var hdr [4]byte
	total := 0
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(key)))
	for _, chunk := range [][]byte{hdr[:], []byte(key)} {
		n, err := w.Write(chunk)
		total += n
		if err != nil {
			return total, err
		}
	}
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	for _, chunk := range [][]byte{hdr[:], payload} {
		n, err := w.Write(chunk)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// decodeBulkStream reads length-prefixed (key, payload) frames until EOF,
// validating each key as a well-formed cache key and each payload as a
// complete BKV2 blob before handing it to emit. Returns the frames emitted;
// a malformed frame aborts the stream with an error (frames already emitted
// stand — each was individually valid).
func decodeBulkStream(r io.Reader, maxPayload int64, emit func(key string, payload []byte)) (int, error) {
	var hdr [4]byte
	count := 0
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return count, nil
			}
			return count, fmt.Errorf("distserve: truncated bulk frame header: %v", err)
		}
		klen := binary.LittleEndian.Uint32(hdr[:])
		if klen == 0 || klen > maxBulkKeyLen {
			return count, fmt.Errorf("distserve: bulk key length %d out of range", klen)
		}
		key := make([]byte, klen)
		if _, err := io.ReadFull(r, key); err != nil {
			return count, fmt.Errorf("distserve: truncated bulk key: %v", err)
		}
		if _, _, err := ParseCacheKey(string(key)); err != nil {
			return count, err
		}
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return count, fmt.Errorf("distserve: truncated bulk payload length: %v", err)
		}
		plen := binary.LittleEndian.Uint32(hdr[:])
		if plen == 0 || (maxPayload > 0 && int64(plen) > maxPayload) {
			return count, fmt.Errorf("distserve: bulk payload length %d out of range", plen)
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return count, fmt.Errorf("distserve: truncated bulk payload: %v", err)
		}
		wh, err := model.ParseWireHeader(payload)
		if err != nil {
			return count, fmt.Errorf("distserve: bulk payload rejected: %v", err)
		}
		if wh.PayloadSize() != len(payload) {
			return count, fmt.Errorf("distserve: bulk payload size %d does not match header (%d)", len(payload), wh.PayloadSize())
		}
		emit(string(key), payload)
		count++
	}
}

// drainTo executes the worker side of a drain: mark draining (stores now
// 503), snapshot entries, route each one with the frontend's replica walk,
// push per-target bulk streams, register the moves in meta, deregister
// self, and delete what moved. Entries that could not be placed anywhere
// stay local and readable.
func (w *CacheWorker) drainTo(r *http.Request, req DrainRequest) DrainResponse {
	ctx := r.Context()
	w.SetDraining(true)
	w.mu.Lock()
	snapshot := make([]bulkEntry, 0, len(w.entries))
	for k, e := range w.entries {
		snapshot = append(snapshot, bulkEntry{key: k, data: e.data})
	}
	w.mu.Unlock()
	sort.Slice(snapshot, func(i, j int) bool { return snapshot[i].key < snapshot[j].key })

	n := len(req.Peers)
	rf := req.Replication
	if rf < 1 {
		rf = 1
	}
	routable := func(i int) bool {
		return i >= 0 && i < n && i != req.Self && req.Peers[i].Alive && req.Peers[i].URL != ""
	}
	var resp DrainResponse
	perTarget := make(map[int][]bulkEntry)
	for _, e := range snapshot {
		kind, id, err := ParseCacheKey(e.key)
		if err != nil {
			resp.Skipped++
			continue
		}
		placed := false
		for _, t := range routing.NewRing(n).Replicas(routing.EntryHash(kind, id), rf, routable) {
			if !routable(t) {
				continue // the walk's unroutable-pool fallback slot
			}
			perTarget[t] = append(perTarget[t], e)
			placed = true
		}
		if !placed {
			resp.Skipped++
		}
	}

	client := &http.Client{}
	accepted := make(map[string]int, len(snapshot))
	var regs []RegisterRequest
	targets := make([]int, 0, len(perTarget))
	for t := range perTarget {
		targets = append(targets, t)
	}
	sort.Ints(targets)
	for _, t := range targets {
		ents := perTarget[t]
		res, sent, err := pushBulkStream(ctx, client, req.Peers[t].URL, ents)
		resp.Bytes += sent
		if err != nil {
			resp.Errors++
			continue
		}
		rejected := make(map[string]bool, len(res.Rejected))
		for _, k := range res.Rejected {
			rejected[k] = true
		}
		for _, e := range ents {
			if rejected[e.key] {
				continue
			}
			accepted[e.key]++
			kind, id, _ := ParseCacheKey(e.key)
			regs = append(regs, RegisterRequest{EntryRef: EntryRef{Kind: kind, ID: id}, Worker: t})
		}
	}

	// Register the new locations first, then drop this worker's bindings —
	// a reader racing the drain always finds at least one live location.
	drainRegisterBatch(ctx, client, req.MetaURL, regs)
	drainUnregisterSelf(ctx, client, req.MetaURL, req.Self)

	for key, copies := range accepted {
		if copies > 0 {
			w.Delete(key)
			resp.Moved++
		}
		resp.Copies += copies
	}
	w.mu.Lock()
	w.drains++
	w.mu.Unlock()
	return resp
}

// pushBulkStream streams one target's entries to its /v1/bulk through an
// io.Pipe, so the sender never buffers the whole batch, and returns the
// peer's per-key verdicts plus the bytes put on the wire.
func pushBulkStream(ctx context.Context, client *http.Client, peerURL string, ents []bulkEntry) (*BulkResponse, int64, error) {
	pr, pw := io.Pipe()
	var sent int64
	go func() {
		var err error
		for _, e := range ents {
			var n int
			n, err = encodeBulkFrame(pw, e.key, e.data)
			atomic.AddInt64(&sent, int64(n))
			if err != nil {
				break
			}
		}
		pw.CloseWithError(err)
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peerURL+"/v1/bulk", pr)
	if err != nil {
		pr.Close()
		return nil, atomic.LoadInt64(&sent), err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := client.Do(req)
	if err != nil {
		return nil, atomic.LoadInt64(&sent), err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, atomic.LoadInt64(&sent), fmt.Errorf("distserve: bulk push returned status %d", resp.StatusCode)
	}
	var out BulkResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, atomic.LoadInt64(&sent), err
	}
	return &out, atomic.LoadInt64(&sent), nil
}

// drainRegisterBatch binds moved entries to their new workers in one call.
func drainRegisterBatch(ctx context.Context, client *http.Client, metaURL string, regs []RegisterRequest) {
	if metaURL == "" || len(regs) == 0 {
		return
	}
	body, err := json.Marshal(RegisterBatchRequest{Entries: regs})
	if err != nil {
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, metaURL+"/v1/register_batch", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// drainUnregisterSelf bulk-drops the draining worker's own meta bindings.
func drainUnregisterSelf(ctx context.Context, client *http.Client, metaURL string, self int) {
	if metaURL == "" {
		return
	}
	body, err := json.Marshal(UnregisterWorkerRequest{Worker: self, HotLimit: 1})
	if err != nil {
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, metaURL+"/v1/unregister_worker", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// handleBulk ingests a drain stream: POST /v1/bulk with an octet-stream body
// of bulk frames. A draining worker refuses — drained entries must not land
// on another worker that is itself emptying out.
func (w *CacheWorker) handleBulk(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if w.Draining() {
		http.Error(rw, "draining", http.StatusServiceUnavailable)
		return
	}
	var rejected []string
	stored := 0
	_, err := decodeBulkStream(r.Body, w.capacity, func(key string, payload []byte) {
		if putErr := w.Put(key, payload); putErr != nil {
			rejected = append(rejected, key)
			return
		}
		stored++
	})
	w.mu.Lock()
	w.bulkStored += int64(stored)
	w.mu.Unlock()
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(rw, BulkResponse{Stored: stored, Rejected: rejected})
}

// handleDrain is POST /v1/drain on a cache worker (body: DrainRequest).
func (w *CacheWorker) handleDrain(rw http.ResponseWriter, r *http.Request) {
	var req DrainRequest
	if !decodeJSON(rw, r, &req) {
		return
	}
	if req.Self < 0 || req.Self >= len(req.Peers) {
		http.Error(rw, "self index out of range", http.StatusBadRequest)
		return
	}
	writeJSON(rw, w.drainTo(r, req))
}

// handleResume is POST /v1/resume: the worker accepts stores again.
func (w *CacheWorker) handleResume(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "POST required", http.StatusMethodNotAllowed)
		return
	}
	w.SetDraining(false)
	rw.WriteHeader(http.StatusNoContent)
}

// SetWorkerDraining flips a worker's drain flag in the frontend's routing:
// a draining worker keeps serving reads but stores walk past it.
func (f *Frontend) SetWorkerDraining(worker int, draining bool) {
	if worker < 0 || worker >= len(f.cfg.CacheWorkers) {
		return
	}
	f.mu.Lock()
	f.draining[worker] = draining
	f.mu.Unlock()
}

// DrainWorker gracefully drains one cache worker: stores route away from it
// immediately, then the worker streams its entries to the peers the
// frontend's own routing would pick, registers the moves in meta, and
// deregisters itself. On success the worker stays in the draining state
// (safe to restart; UndrainWorker returns it to service).
func (f *Frontend) DrainWorker(ctx context.Context, worker int) (*DrainResponse, error) {
	n := len(f.cfg.CacheWorkers)
	if worker < 0 || worker >= n {
		return nil, fmt.Errorf("distserve: no such worker %d", worker)
	}
	f.mu.Lock()
	if f.draining[worker] {
		f.mu.Unlock()
		return nil, fmt.Errorf("distserve: worker %d is already draining", worker)
	}
	f.draining[worker] = true
	peers := make([]DrainPeer, n)
	for i, u := range f.cfg.CacheWorkers {
		peers[i] = DrainPeer{URL: u, Alive: f.alive[i] && !f.draining[i]}
	}
	f.mu.Unlock()
	req := DrainRequest{Self: worker, Peers: peers, MetaURL: f.cfg.MetaURL, Replication: f.replication()}
	body, err := json.Marshal(req)
	if err != nil {
		f.SetWorkerDraining(worker, false)
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		f.cfg.CacheWorkers[worker]+"/v1/drain", bytes.NewReader(body))
	if err != nil {
		f.SetWorkerDraining(worker, false)
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	// Not the transfer engine's client: a drain moves a whole worker's
	// contents and must outlive the per-attempt transfer timeout. The
	// caller's context is the only bound.
	resp, err := (&http.Client{}).Do(hreq)
	if err != nil {
		// The worker never started draining; return it to service.
		f.SetWorkerDraining(worker, false)
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// The worker may be part-drained; keep routing stores away and let
		// the operator retry or undrain explicitly.
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("distserve: drain of worker %d returned status %d: %s",
			worker, resp.StatusCode, strings.TrimSpace(string(b)))
	}
	var out DrainResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	// The worker's content moved elsewhere; its delta prefixes went with it.
	f.forgetWorkerPrefixes(worker)
	f.drainsCtr.Inc()
	return &out, nil
}

// UndrainWorker returns a drained (or part-drained) worker to service: the
// worker resumes accepting stores and the frontend routes to it again.
func (f *Frontend) UndrainWorker(ctx context.Context, worker int) error {
	if worker < 0 || worker >= len(f.cfg.CacheWorkers) {
		return fmt.Errorf("distserve: no such worker %d", worker)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		f.cfg.CacheWorkers[worker]+"/v1/resume", nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(hreq)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("distserve: resume of worker %d returned status %d", worker, resp.StatusCode)
	}
	f.SetWorkerDraining(worker, false)
	return nil
}

// forgetWorkerPrefixes drops one worker's delta-prefix records; the next
// store of each affected key ships a full PUT.
func (f *Frontend) forgetWorkerPrefixes(worker int) {
	f.storedMu.Lock()
	for k, p := range f.stored {
		if p.worker == worker {
			delete(f.stored, k)
		}
	}
	f.storedMu.Unlock()
}

// drainAdminRequest is the frontend operator endpoints' body.
type drainAdminRequest struct {
	Worker int `json:"worker"`
}

// handleDrain is POST /v1/drain {"worker":N} on the frontend.
func (f *Frontend) handleDrain(rw http.ResponseWriter, r *http.Request) {
	var req drainAdminRequest
	if !decodeJSON(rw, r, &req) {
		return
	}
	if req.Worker < 0 || req.Worker >= len(f.cfg.CacheWorkers) {
		http.Error(rw, "no such worker", http.StatusBadRequest)
		return
	}
	resp, err := f.DrainWorker(r.Context(), req.Worker)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(rw, resp)
}

// handleUndrain is POST /v1/undrain {"worker":N} on the frontend.
func (f *Frontend) handleUndrain(rw http.ResponseWriter, r *http.Request) {
	var req drainAdminRequest
	if !decodeJSON(rw, r, &req) {
		return
	}
	if req.Worker < 0 || req.Worker >= len(f.cfg.CacheWorkers) {
		http.Error(rw, "no such worker", http.StatusBadRequest)
		return
	}
	if err := f.UndrainWorker(r.Context(), req.Worker); err != nil {
		http.Error(rw, err.Error(), http.StatusBadGateway)
		return
	}
	rw.WriteHeader(http.StatusNoContent)
}
