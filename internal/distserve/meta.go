package distserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"bat/internal/cachemeta"
	"bat/internal/kvcache"
)

// MetaServer wraps the cache meta service (index + hotness) behind HTTP —
// the logically centralized process of §5.1.
type MetaServer struct {
	mu    sync.Mutex
	svc   *cachemeta.Service
	start time.Time
	now   func() time.Time
}

// NewMetaServer builds a meta server with the given hotness window.
func NewMetaServer(windowSec float64, now func() time.Time) *MetaServer {
	if now == nil {
		now = time.Now
	}
	return &MetaServer{svc: cachemeta.New(windowSec), start: now(), now: now}
}

func (m *MetaServer) seconds() float64 { return m.now().Sub(m.start).Seconds() }

// metaKey converts wire fields to a cache key.
func metaKey(kind string, id uint64) (kvcache.EntryKey, error) {
	switch kind {
	case "user":
		return kvcache.EntryKey{Kind: kvcache.UserEntry, ID: id}, nil
	case "item":
		return kvcache.EntryKey{Kind: kvcache.ItemEntry, ID: id}, nil
	default:
		return kvcache.EntryKey{}, fmt.Errorf("distserve: unknown entry kind %q", kind)
	}
}

// EntryRef identifies one cache entry on the wire.
type EntryRef struct {
	Kind string `json:"kind"` // "user" | "item"
	ID   uint64 `json:"id"`
}

// RegisterRequest binds an entry to a worker index.
type RegisterRequest struct {
	EntryRef
	Worker int `json:"worker"`
}

// AccessResponse returns the refreshed hotness estimate.
type AccessResponse struct {
	Hotness float64 `json:"hotness"`
}

// LocateResponse lists the workers holding an entry.
type LocateResponse struct {
	Workers []int `json:"workers"`
}

// UnregisterResponse reports whether an unregister removed a live binding —
// a stale-entry cleanup — or was a no-op (the entry was never registered).
type UnregisterResponse struct {
	Removed bool `json:"removed"`
}

// AccessBatchRequest records many accesses in one round trip (the frontend
// uses it for a request's whole candidate set, so item hotness stays live
// without a per-item call).
type AccessBatchRequest struct {
	Entries []EntryRef `json:"entries"`
}

// UnregisterWorkerRequest drops every binding held by one worker — the bulk
// cleanup the poolguard issues when a cache worker dies.
type UnregisterWorkerRequest struct {
	Worker int `json:"worker"`
	// HotLimit caps the hottest-entries list in the response (default 32).
	HotLimit int `json:"hot_limit"`
}

// HotEntry is one purged binding with its hotness at purge time.
type HotEntry struct {
	Kind    string  `json:"kind"`
	ID      uint64  `json:"id"`
	Hotness float64 `json:"hotness"`
}

// UnregisterWorkerResponse reports the bulk purge: how many bindings were
// removed and the hottest of them (descending), so the caller can
// re-replicate exactly the entries whose loss hurts most.
type UnregisterWorkerResponse struct {
	Removed int        `json:"removed"`
	Hottest []HotEntry `json:"hottest,omitempty"`
}

// RegisterBatchRequest binds many entries in one round trip — the drain
// protocol registers a whole worker's moved contents with it.
type RegisterBatchRequest struct {
	Entries []RegisterRequest `json:"entries"`
}

// BindingsRequest asks for one shard of the meta index (the anti-entropy
// scrubber sweeps the shards round-robin).
type BindingsRequest struct {
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Limit caps the entries returned (default 2048), keeping the response
	// under the transfer engine's meta-response cap.
	Limit int `json:"limit"`
}

// BoundEntry is one indexed entry with its full replica set.
type BoundEntry struct {
	Kind    string `json:"kind"`
	ID      uint64 `json:"id"`
	Workers []int  `json:"workers"`
}

// BindingsResponse is one shard of the index; Truncated reports that Limit
// cut the listing short (the scrubber will catch the rest next cycle).
type BindingsResponse struct {
	Entries   []BoundEntry `json:"entries"`
	Truncated bool         `json:"truncated,omitempty"`
}

// entryKindString reverses metaKey for response payloads.
func entryKindString(k kvcache.EntryKind) string {
	if k == kvcache.UserEntry {
		return "user"
	}
	return "item"
}

// Handler exposes the meta service:
//
//	POST /v1/access            {kind,id}          -> {hotness}
//	POST /v1/access_batch      {entries:[...]}
//	POST /v1/register          {kind,id,worker}
//	POST /v1/unregister        {kind,id,worker}
//	POST /v1/unregister_worker {worker,hot_limit} -> {removed,hottest:[...]}
//	POST /v1/register_batch    {entries:[{kind,id,worker},...]}
//	POST /v1/bindings          {shard,shards,limit} -> {entries:[...]}
//	GET  /v1/locate?kind=user&id=5                -> {workers:[...]}
func (m *MetaServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/access", func(rw http.ResponseWriter, r *http.Request) {
		var req EntryRef
		if !decodeJSON(rw, r, &req) {
			return
		}
		key, err := metaKey(req.Kind, req.ID)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		m.mu.Lock()
		h := m.svc.RecordAccess(key, m.seconds())
		m.mu.Unlock()
		writeJSON(rw, AccessResponse{Hotness: h})
	})
	mux.HandleFunc("/v1/register", func(rw http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !decodeJSON(rw, r, &req) {
			return
		}
		key, err := metaKey(req.Kind, req.ID)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		m.mu.Lock()
		m.svc.RegisterEntry(key, cachemeta.WorkerID(req.Worker))
		m.mu.Unlock()
		rw.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/v1/unregister", func(rw http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !decodeJSON(rw, r, &req) {
			return
		}
		key, err := metaKey(req.Kind, req.ID)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		m.mu.Lock()
		removed := m.svc.UnregisterEntry(key, cachemeta.WorkerID(req.Worker))
		m.mu.Unlock()
		writeJSON(rw, UnregisterResponse{Removed: removed})
	})
	mux.HandleFunc("/v1/access_batch", func(rw http.ResponseWriter, r *http.Request) {
		var req AccessBatchRequest
		if !decodeJSON(rw, r, &req) {
			return
		}
		keys := make([]kvcache.EntryKey, 0, len(req.Entries))
		for _, e := range req.Entries {
			key, err := metaKey(e.Kind, e.ID)
			if err != nil {
				http.Error(rw, err.Error(), http.StatusBadRequest)
				return
			}
			keys = append(keys, key)
		}
		m.mu.Lock()
		now := m.seconds()
		for _, key := range keys {
			m.svc.RecordAccess(key, now)
		}
		m.mu.Unlock()
		rw.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/v1/unregister_worker", func(rw http.ResponseWriter, r *http.Request) {
		var req UnregisterWorkerRequest
		if !decodeJSON(rw, r, &req) {
			return
		}
		if req.Worker < 0 {
			http.Error(rw, "negative worker", http.StatusBadRequest)
			return
		}
		limit := req.HotLimit
		if limit <= 0 {
			limit = 32
		}
		m.mu.Lock()
		now := m.seconds()
		keys := m.svc.UnregisterWorker(cachemeta.WorkerID(req.Worker))
		hot := make([]HotEntry, len(keys))
		for i, k := range keys {
			hot[i] = HotEntry{Kind: entryKindString(k.Kind), ID: k.ID, Hotness: m.svc.Hotness(k, now)}
		}
		m.mu.Unlock()
		sort.SliceStable(hot, func(i, j int) bool { return hot[i].Hotness > hot[j].Hotness })
		if len(hot) > limit {
			hot = hot[:limit]
		}
		writeJSON(rw, UnregisterWorkerResponse{Removed: len(keys), Hottest: hot})
	})
	mux.HandleFunc("/v1/register_batch", func(rw http.ResponseWriter, r *http.Request) {
		var req RegisterBatchRequest
		if !decodeJSON(rw, r, &req) {
			return
		}
		keys := make([]kvcache.EntryKey, 0, len(req.Entries))
		for _, e := range req.Entries {
			key, err := metaKey(e.Kind, e.ID)
			if err != nil || e.Worker < 0 {
				http.Error(rw, "bad entry", http.StatusBadRequest)
				return
			}
			keys = append(keys, key)
		}
		m.mu.Lock()
		for i, e := range req.Entries {
			m.svc.RegisterEntry(keys[i], cachemeta.WorkerID(e.Worker))
		}
		m.mu.Unlock()
		rw.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/v1/bindings", func(rw http.ResponseWriter, r *http.Request) {
		var req BindingsRequest
		if !decodeJSON(rw, r, &req) {
			return
		}
		limit := req.Limit
		if limit <= 0 {
			limit = 2048
		}
		m.mu.Lock()
		bindings := m.svc.Bindings(req.Shard, req.Shards)
		m.mu.Unlock()
		resp := BindingsResponse{Truncated: len(bindings) > limit}
		if resp.Truncated {
			bindings = bindings[:limit]
		}
		resp.Entries = make([]BoundEntry, len(bindings))
		for i, b := range bindings {
			ws := make([]int, len(b.Workers))
			for j, w := range b.Workers {
				ws[j] = int(w)
			}
			resp.Entries[i] = BoundEntry{Kind: entryKindString(b.Key.Kind), ID: b.Key.ID, Workers: ws}
		}
		writeJSON(rw, resp)
	})
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(rw, "ok")
	})
	mux.HandleFunc("/v1/locate", func(rw http.ResponseWriter, r *http.Request) {
		kind := r.URL.Query().Get("kind")
		var id uint64
		if _, err := fmt.Sscanf(r.URL.Query().Get("id"), "%d", &id); err != nil {
			http.Error(rw, "bad id", http.StatusBadRequest)
			return
		}
		key, err := metaKey(kind, id)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		m.mu.Lock()
		locs := m.svc.Locations(key)
		m.mu.Unlock()
		resp := LocateResponse{Workers: make([]int, len(locs))}
		for i, w := range locs {
			resp.Workers[i] = int(w)
		}
		writeJSON(rw, resp)
	})
	return mux
}

func decodeJSON(rw http.ResponseWriter, r *http.Request, v interface{}) bool {
	if r.Method != http.MethodPost {
		http.Error(rw, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(rw http.ResponseWriter, v interface{}) {
	rw.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(rw).Encode(v); err != nil {
		http.Error(rw, err.Error(), http.StatusInternalServerError)
	}
}
