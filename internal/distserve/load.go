package distserve

// /v1/load: the cheap snapshot the routing tier polls to score frontends —
// live load (in-flight, queue depth against capacity) plus a bloom summary
// of the user caches resident in this frontend's slice of the KV pool, the
// input to the router's cache-affinity scorer.
//
// Residency is collected from the cache workers' GET /v1/keys listings,
// which follow Peek's discipline (map iteration, no LRU promotion, no
// hit/miss accounting), so a router polling /v1/load every few hundred
// milliseconds cannot keep cold entries warm or perturb eviction order.
// The folded summary is cached for LoadSummaryTTL so the poll stays O(1)
// between refreshes.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"time"

	"bat/internal/routing"
)

// defaultLoadSummaryTTL is how long a folded residency summary is served
// before the workers are re-polled.
const defaultLoadSummaryTTL = time.Second

// LoadSnapshot is the GET /v1/load payload.
type LoadSnapshot struct {
	// InFlight counts requests between admission and response; QueueDepth
	// the admission queue behind them. Max* are the configured capacities,
	// letting the router normalize load across heterogeneous frontends.
	InFlight    int `json:"in_flight"`
	QueueDepth  int `json:"queue_depth"`
	MaxInFlight int `json:"max_in_flight"`
	MaxQueue    int `json:"max_queue"`
	// Requests is the lifetime rank count (rate gauges diff it).
	Requests int64 `json:"requests"`
	// ResidentUsers counts user caches folded into Users, which is the
	// base64 bloom summary (routing.Summary) over routing.EntryHash("user",
	// id) keys. Empty when no worker listing succeeded.
	ResidentUsers int    `json:"resident_users"`
	Users         string `json:"users,omitempty"`
}

// loadSummaryTTL resolves the configured residency cache TTL.
func (f *Frontend) loadSummaryTTL() time.Duration {
	if f.cfg.LoadSummaryTTL != 0 {
		return f.cfg.LoadSummaryTTL
	}
	return defaultLoadSummaryTTL
}

// userResidency folds every live worker's resident user IDs into a bloom
// summary, caching the result for the TTL. Workers that fail to answer are
// skipped: a partial summary only costs affinity hints, never correctness.
func (f *Frontend) userResidency() (*routing.Summary, int) {
	now := time.Now()
	f.loadMu.Lock()
	if f.loadSummary != nil && now.Sub(f.loadAt) < f.loadSummaryTTL() {
		s, n := f.loadSummary, f.loadUsers
		f.loadMu.Unlock()
		return s, n
	}
	f.loadMu.Unlock()

	sum := routing.NewSummary(0)
	users := 0
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.Transfer.Timeout)
	defer cancel()
	for w, base := range f.cfg.CacheWorkers {
		f.mu.Lock()
		dead := !f.alive[w]
		f.mu.Unlock()
		if dead {
			continue
		}
		ids, err := fetchResidentIDs(ctx, f.cfg.Client, base, "user")
		if err != nil {
			continue
		}
		for _, id := range ids {
			sum.Add(routing.EntryHash("user", id))
			users++
		}
	}

	f.loadMu.Lock()
	f.loadSummary, f.loadUsers, f.loadAt = sum, users, now
	f.loadMu.Unlock()
	return sum, users
}

// fetchResidentIDs asks one worker for its resident IDs of a kind.
func fetchResidentIDs(ctx context.Context, client *http.Client, base, kind string) ([]uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/keys?kind="+url.QueryEscape(kind), nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("distserve: %s/v1/keys status %d", base, resp.StatusCode)
	}
	var keys ResidentKeys
	if err := json.NewDecoder(resp.Body).Decode(&keys); err != nil {
		return nil, err
	}
	return keys.IDs, nil
}

// LoadSnapshot builds the /v1/load payload.
func (f *Frontend) LoadSnapshot() LoadSnapshot {
	adm := f.core.Admission().Stats()
	sum, users := f.userResidency()
	snap := LoadSnapshot{
		InFlight:      f.core.InFlight(),
		QueueDepth:    adm.QueueDepth,
		MaxInFlight:   adm.MaxInFlight,
		MaxQueue:      adm.MaxQueue,
		Requests:      f.core.Stats().Requests,
		ResidentUsers: users,
	}
	if sum != nil {
		snap.Users = sum.Encode()
	}
	return snap
}

func (f *Frontend) handleLoad(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(rw, f.LoadSnapshot())
}
