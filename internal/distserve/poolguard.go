package distserve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"bat/internal/bipartite"
	"bat/internal/placement"
	"bat/internal/workload"
)

// PoolGuard is the frontend's self-healing loop for the disaggregated cache
// pool: it probes every cache worker's /healthz on a fixed cadence, declares
// a worker dead after consecutive probe failures, and then runs the repair
// sequence — route writes away from it (Frontend.SetWorkerAlive), bulk-purge
// its meta bindings so reads stop being steered at it, and re-replicate the
// hottest purged entries onto surviving workers so the cache damage a death
// causes is concentrated on cold entries. A worker that starts answering
// probes again rejoins automatically: writes route back and its cache refills
// through the normal store path.
//
// The transfer engine's circuit breakers handle the request path (skip a dead
// worker fast); the poolguard handles the pool's state (clean up after it and
// put the hot entries back). They are deliberately independent signals: the
// breaker trips only if requests actually hit the worker, the probe fires
// even on an idle pool.

// Poolguard defaults; all overridable through PoolGuardConfig.
const (
	defaultProbeInterval = 500 * time.Millisecond
	defaultProbeTimeout  = 250 * time.Millisecond
	defaultFailThreshold = 2
	defaultRepairHot     = 16
)

// PoolGuardConfig tunes the self-healing loop. Zero value = defaults.
type PoolGuardConfig struct {
	// ProbeInterval is the health-probe cadence.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe.
	ProbeTimeout time.Duration
	// FailThreshold is the consecutive probe failures that declare a worker
	// dead.
	FailThreshold int
	// RepairHot caps how many of a dead worker's hottest entries are
	// re-replicated onto survivors.
	RepairHot int
	// PromotionSlack sizes the dynamic promotion area gating item repairs
	// (default RepairHot).
	PromotionSlack int
	// ScrubInterval is the anti-entropy sweep cadence (scrub.go); 0 = the
	// 2s default, negative disables scrubbing.
	ScrubInterval time.Duration
	// ScrubShards splits the meta index so each sweep walks 1/ScrubShards of
	// the entries (default 8).
	ScrubShards int
	// ScrubMaxRepairs caps re-replications per sweep so a cold start cannot
	// flood the pool with copy traffic (default 32).
	ScrubMaxRepairs int
}

func (c PoolGuardConfig) withDefaults() PoolGuardConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = defaultProbeInterval
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = defaultProbeTimeout
		if c.ProbeTimeout > c.ProbeInterval {
			c.ProbeTimeout = c.ProbeInterval
		}
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = defaultFailThreshold
	}
	if c.RepairHot <= 0 {
		c.RepairHot = defaultRepairHot
	}
	if c.PromotionSlack <= 0 {
		c.PromotionSlack = c.RepairHot
	}
	if c.ScrubInterval == 0 {
		c.ScrubInterval = defaultScrubInterval
	}
	if c.ScrubShards <= 0 {
		c.ScrubShards = defaultScrubShards
	}
	if c.ScrubMaxRepairs <= 0 {
		c.ScrubMaxRepairs = defaultScrubMaxRepairs
	}
	return c
}

// PoolGuard watches one frontend's cache-worker pool.
type PoolGuard struct {
	cfg  PoolGuardConfig
	f    *Frontend
	plan *placement.DynamicPlan
	// ctx is the guard's lifetime: every probe and repair context derives
	// from it, so Stop cancels in-flight HTTP work instead of leaving probe
	// goroutines to ride out their own timeouts against hung workers.
	ctx    context.Context
	cancel context.CancelFunc
	stop   chan struct{}
	done   chan struct{}
	start  sync.Once
	halt   sync.Once

	mu          sync.Mutex
	consecFails []int
	dead        []bool
	probes      int64
	deaths      int64
	rejoins     int64
	repaired    int64
	repairFails int64

	// Anti-entropy scrub state (scrub.go): the next shard to sweep plus
	// cumulative and last-sweep counters.
	scrubShard     int
	scrubSweeps    int64
	scrubRepairs   int64
	scrubDivergent int64
	lastSweep      scrubSweep
}

// NewPoolGuard attaches a self-healing guard to a frontend. Call Start to
// begin probing and Stop to shut down.
func NewPoolGuard(f *Frontend, cfg PoolGuardConfig) *PoolGuard {
	cfg = cfg.withDefaults()
	g := &PoolGuard{
		cfg:         cfg,
		f:           f,
		plan:        placement.NewDynamicPlan(placement.Plan{}, cfg.PromotionSlack),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		consecFails: make([]int, len(f.cfg.CacheWorkers)),
		dead:        make([]bool, len(f.cfg.CacheWorkers)),
	}
	g.ctx, g.cancel = context.WithCancel(context.Background())
	f.mu.Lock()
	f.guard = g
	f.mu.Unlock()
	return g
}

// Start launches the probe loop.
func (g *PoolGuard) Start() {
	g.start.Do(func() {
		go g.run()
	})
}

// Stop halts the probe loop, cancels any in-flight probe or repair HTTP
// work, and waits for the loop to exit.
func (g *PoolGuard) Stop() {
	g.halt.Do(func() {
		close(g.stop)
		g.cancel()
	})
	<-g.done
}

func (g *PoolGuard) run() {
	defer close(g.done)
	ticker := time.NewTicker(g.cfg.ProbeInterval)
	defer ticker.Stop()
	var scrubC <-chan time.Time
	if g.cfg.ScrubInterval > 0 {
		st := time.NewTicker(g.cfg.ScrubInterval)
		defer st.Stop()
		scrubC = st.C
	}
	for {
		select {
		case <-g.stop:
			return
		case <-ticker.C:
			g.probeAll()
		case <-scrubC:
			g.scrubOnce()
		}
	}
}

// probeAll sweeps every worker once, settling state transitions.
func (g *PoolGuard) probeAll() {
	for w := range g.f.cfg.CacheWorkers {
		select {
		case <-g.stop:
			return
		default:
		}
		healthy := g.probe(w)
		g.settle(w, healthy)
	}
}

// probe issues one bounded /healthz GET directly (not through the transfer
// engine: probes must reach a worker whose breaker is open, or rejoin would
// never be observed).
func (g *PoolGuard) probe(worker int) bool {
	ctx, cancel := context.WithTimeout(g.ctx, g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		g.f.cfg.CacheWorkers[worker]+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := g.f.cfg.Client.Do(req)
	g.mu.Lock()
	g.probes++
	g.mu.Unlock()
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// settle folds one probe outcome into the worker's state, firing the repair
// sequence on a death transition and the rejoin path on recovery.
func (g *PoolGuard) settle(worker int, healthy bool) {
	g.mu.Lock()
	if healthy {
		g.consecFails[worker] = 0
		if !g.dead[worker] {
			g.mu.Unlock()
			return
		}
		g.dead[worker] = false
		g.rejoins++
		g.mu.Unlock()
		// Rejoin: the worker starts empty (or stale — its meta bindings were
		// purged, so stale content is unreachable) and refills through the
		// normal store path once writes route back to it.
		g.f.SetWorkerAlive(worker, true)
		return
	}
	g.consecFails[worker]++
	if g.dead[worker] || g.consecFails[worker] < g.cfg.FailThreshold {
		g.mu.Unlock()
		return
	}
	g.dead[worker] = true
	g.deaths++
	g.mu.Unlock()
	g.onDeath(worker)
}

// onDeath runs the repair sequence for a freshly dead worker.
func (g *PoolGuard) onDeath(worker int) {
	g.f.SetWorkerAlive(worker, false)
	ctx, cancel := context.WithTimeout(g.ctx, 2*g.cfg.ProbeInterval+2*time.Second)
	defer cancel()
	resp, err := g.f.unregisterWorker(ctx, worker, g.cfg.RepairHot)
	if err != nil {
		// The meta service is unreachable too; stale bindings will be swept
		// by the breaker-open purge path once requests notice.
		return
	}
	for _, hot := range resp.Hottest {
		if g.repair(ctx, hot) {
			g.mu.Lock()
			g.repaired++
			g.mu.Unlock()
		}
	}
}

// repair recomputes one purged entry and stores it on a surviving worker
// (the frontend's shard functions already route around the dead one). Item
// promotions go through the dynamic plan's bounded slack area, mirroring the
// §5.2 background refresh: a dead worker's hot items are exactly the burst
// entries worth replicating.
func (g *PoolGuard) repair(ctx context.Context, hot HotEntry) bool {
	ds := g.f.cfg.Dataset
	w := g.f.ranker.W
	switch hot.Kind {
	case "item":
		id := int(hot.ID)
		if id < 0 || id >= len(ds.ItemTokens) {
			return false
		}
		if !g.plan.Promote(workload.ItemID(id)) {
			return false
		}
		c := bipartite.ComputeItemCache(w, ds.ItemTokens[id])
		g.f.storeCache(ctx, g.f.itemWorker(id), "item", hot.ID, c)
		return true
	case "user":
		id := int(hot.ID)
		if id < 0 || id >= len(ds.UserHistory) {
			return false
		}
		userTokens := make([]int, len(ds.UserHistory[id]))
		for i, it := range ds.UserHistory[id] {
			userTokens[i] = ds.InteractionToken(it)
		}
		c := bipartite.ComputeUserCache(w, userTokens)
		g.f.storeCache(ctx, g.f.userWorker(id), "user", hot.ID, c)
		return true
	default:
		g.mu.Lock()
		g.repairFails++
		g.mu.Unlock()
		return false
	}
}

// PoolGuardWorker is one worker's slice of PoolGuardStats.
type PoolGuardWorker struct {
	Target      string `json:"target"`
	Dead        bool   `json:"dead"`
	ConsecFails int    `json:"consecutive_probe_failures"`
}

// PoolGuardStats is the guard's /v1/stats slice.
type PoolGuardStats struct {
	Probes   int64 `json:"probes"`
	Deaths   int64 `json:"deaths"`
	Rejoins  int64 `json:"rejoins"`
	Repaired int64 `json:"repaired_entries"`
	// RepairFailures counts purged entries the repair path could not
	// re-replicate (unknown kind or out-of-range ID).
	RepairFailures int64             `json:"repair_failures"`
	Workers        []PoolGuardWorker `json:"workers"`
	// Anti-entropy scrubber: cumulative sweep/repair counters plus the last
	// sweep's classification — entries checked, entries below the effective
	// replication factor before repair, and entries with no live replica.
	ScrubSweeps     int64 `json:"scrub_sweeps"`
	ScrubRepairs    int64 `json:"scrub_repairs"`
	ScrubDivergent  int64 `json:"scrub_divergent_repairs"`
	ScrubChecked    int   `json:"scrub_checked"`
	UnderReplicated int   `json:"under_replicated_entries"`
	LostEntries     int   `json:"lost_entries"`
	// ReplicaAvg is the mean live replicas per entry by kind at the last
	// sweep (0 when the sweep saw no entries of that kind).
	ReplicaAvg map[string]float64 `json:"replicas_avg"`
}

// Stats snapshots the guard.
func (g *PoolGuard) Stats() PoolGuardStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := PoolGuardStats{
		Probes: g.probes, Deaths: g.deaths, Rejoins: g.rejoins,
		Repaired: g.repaired, RepairFailures: g.repairFails,
		Workers:     make([]PoolGuardWorker, len(g.dead)),
		ScrubSweeps: g.scrubSweeps, ScrubRepairs: g.scrubRepairs,
		ScrubDivergent:  g.scrubDivergent,
		ScrubChecked:    g.lastSweep.checked,
		UnderReplicated: g.lastSweep.under,
		LostEntries:     g.lastSweep.lost,
		ReplicaAvg:      map[string]float64{"user": 0, "item": 0},
	}
	if g.lastSweep.userEntries > 0 {
		st.ReplicaAvg["user"] = float64(g.lastSweep.userReplicas) / float64(g.lastSweep.userEntries)
	}
	if g.lastSweep.itemEntries > 0 {
		st.ReplicaAvg["item"] = float64(g.lastSweep.itemReplicas) / float64(g.lastSweep.itemEntries)
	}
	for w := range g.dead {
		st.Workers[w] = PoolGuardWorker{
			Target:      fmt.Sprintf("worker-%d", w),
			Dead:        g.dead[w],
			ConsecFails: g.consecFails[w],
		}
	}
	return st
}
