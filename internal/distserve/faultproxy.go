package distserve

import (
	"io"
	"net/http"
	"sync"
	"time"
)

// FaultMode selects how a FaultProxy mistreats requests.
type FaultMode int

const (
	// FaultNone forwards transparently.
	FaultNone FaultMode = iota
	// FaultDelay sleeps for the configured delay, then forwards.
	FaultDelay
	// FaultError replies 500 without touching the backend.
	FaultError
	// FaultHang never replies until the client gives up or the proxy is
	// released — a wedged-but-accepting worker.
	FaultHang
	// FaultDrop severs the connection mid-request with no response bytes.
	FaultDrop
)

// FaultProxy sits in front of one component (cache worker or meta service)
// and injects faults on demand: the test double for slow, dead, and flaky
// nodes that §3.3's transfer engine must survive. Mode switches take effect
// per request and are safe under concurrency.
type FaultProxy struct {
	backend string
	client  *http.Client

	mu       sync.Mutex
	mode     FaultMode
	delay    time.Duration
	requests int64

	release   chan struct{}
	closeOnce sync.Once
}

// NewFaultProxy builds a transparent proxy for the backend base URL.
func NewFaultProxy(backendURL string) *FaultProxy {
	return &FaultProxy{
		backend: backendURL,
		client:  &http.Client{},
		release: make(chan struct{}),
	}
}

// SetMode switches the injected fault; delay only matters for FaultDelay.
func (p *FaultProxy) SetMode(mode FaultMode, delay time.Duration) {
	p.mu.Lock()
	p.mode = mode
	p.delay = delay
	p.mu.Unlock()
}

// Requests counts requests that reached the proxy (including faulted ones).
func (p *FaultProxy) Requests() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.requests
}

// Release unblocks any handlers parked in FaultHang.
func (p *FaultProxy) Release() {
	p.closeOnce.Do(func() { close(p.release) })
}

// Handler exposes the proxy as an http.Handler.
func (p *FaultProxy) Handler() http.Handler { return p }

// ServeHTTP applies the current fault, then (for None/Delay) forwards the
// request verbatim and copies the backend's response back.
func (p *FaultProxy) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	p.requests++
	mode, delay := p.mode, p.delay
	p.mu.Unlock()

	switch mode {
	case FaultError:
		http.Error(rw, "injected fault", http.StatusInternalServerError)
		return
	case FaultHang:
		select {
		case <-r.Context().Done():
		case <-p.release:
		}
		return
	case FaultDrop:
		panic(http.ErrAbortHandler) // net/http closes the connection uncleanly
	case FaultDelay:
		select {
		case <-time.After(delay):
		case <-r.Context().Done():
			return
		}
	}

	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.backend+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			rw.Header().Add(k, v)
		}
	}
	rw.WriteHeader(resp.StatusCode)
	io.Copy(rw, resp.Body)
}
