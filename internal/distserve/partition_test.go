package distserve

import (
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"bat/internal/partition"
)

func TestWorkerClassAccounting(t *testing.T) {
	w, err := NewCacheWorker(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1000)
	if err := w.Put("user/1", payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Put("item/1", payload[:500]); err != nil {
		t.Fatal(err)
	}
	if used, _ := w.ClassUsage("user"); used != 1000 {
		t.Fatalf("user bytes = %d", used)
	}
	if used, _ := w.ClassUsage("item"); used != 500 {
		t.Fatalf("item bytes = %d", used)
	}
	w.Get("user/1")
	w.Get("user/2") // miss
	w.Delete("item/1")
	st := w.Stats()
	uc, ic := st.Classes["user"], st.Classes["item"]
	if uc.Hits != 1 || uc.Misses != 1 || uc.HitBytes != 1000 {
		t.Fatalf("user class stats: %+v", uc)
	}
	if ic.UsedBytes != 0 {
		t.Fatalf("item bytes after delete: %d", ic.UsedBytes)
	}
	// Replacing a key moves the accounting, not duplicates it.
	if err := w.Put("user/1", payload[:200]); err != nil {
		t.Fatal(err)
	}
	if used, _ := w.ClassUsage("user"); used != 200 {
		t.Fatalf("user bytes after replace = %d", used)
	}
}

// TestWorkerBudgetSteersEviction fills the worker with both classes, sets an
// item-squeezing budget, and checks new stores evict the over-budget class
// first while the global-LRU fallback still works with no budgets.
func TestWorkerBudgetSteersEviction(t *testing.T) {
	w, err := NewCacheWorker(10_000)
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([]byte, 1000)
	for i := 0; i < 5; i++ {
		w.Put(fmt.Sprintf("item/%d", i), chunk)
	}
	for i := 0; i < 5; i++ {
		w.Put(fmt.Sprintf("user/%d", i), chunk)
	}
	// Full. Items are the LRU tail; squeeze USERS via budget and verify the
	// policy overrides recency.
	w.SetClassBudget("user", 2000)
	w.SetClassBudget("item", 8000)
	for i := 5; i < 8; i++ {
		if err := w.Put(fmt.Sprintf("item/%d", i), chunk); err != nil {
			t.Fatal(err)
		}
	}
	usedU, _ := w.ClassUsage("user")
	usedI, _ := w.ClassUsage("item")
	if usedU != 2000 {
		t.Fatalf("user bytes = %d, want squeezed to 2000", usedU)
	}
	if usedI != 8000 {
		t.Fatalf("item bytes = %d", usedI)
	}
	if w.Stats().Classes["user"].Evictions != 3 {
		t.Fatalf("user evictions: %+v", w.Stats().Classes["user"])
	}
	// Clearing budgets restores plain global LRU: the oldest resident is
	// item/0, and with no user budget squeezing it is the next victim.
	w.SetClassBudget("user", 0)
	w.SetClassBudget("item", 0)
	if err := w.Put("user/9", chunk); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Peek("item/0"); ok {
		t.Fatal("global LRU tail survived with budgets cleared")
	}
	if _, ok := w.Peek("user/3"); !ok {
		t.Fatal("newer entry evicted ahead of the global tail")
	}
}

// TestWorkerPartitionControllerShiftsSplit drives one-sided miss traffic and
// checks NewWorkerPartition's controller moves the worker's class budgets.
func TestWorkerPartitionControllerShiftsSplit(t *testing.T) {
	w, err := NewCacheWorker(100_000)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewWorkerPartition(w, 0.5, partition.Config{WindowTicks: 2, StepFraction: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	_, userBudget0 := w.ClassUsage("user")
	_, itemBudget0 := w.ClassUsage("item")
	if userBudget0 != 50_000 || itemBudget0 != 50_000 {
		t.Fatalf("initial split %d/%d", userBudget0, itemBudget0)
	}
	chunk := make([]byte, 500)
	for round := 0; round < 10; round++ {
		for i := 0; i < 40; i++ {
			key := fmt.Sprintf("item/%d", round*40+i)
			if _, ok := w.Get(key); !ok {
				w.Put(key, chunk)
			}
		}
		w.Get("user/1") // miss, tiny user demand
		ctrl.Tick()
	}
	_, userBudget := w.ClassUsage("user")
	_, itemBudget := w.ClassUsage("item")
	if itemBudget <= itemBudget0 {
		t.Fatalf("item budget did not grow: %d", itemBudget)
	}
	if userBudget+itemBudget != 100_000 {
		t.Fatalf("budgets overcommit the worker: %d + %d", userBudget, itemBudget)
	}
}

func TestPartitionedWorkerHandlerServesMetrics(t *testing.T) {
	w, err := NewCacheWorker(10_000)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewWorkerPartition(w, 0.7, partition.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(PartitionedWorkerHandler(w, ctrl))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "bat_partition_capacity_bytes") {
		t.Fatalf("metrics missing partition gauges:\n%s", body)
	}
	// The worker's own routes still work through the wrapper.
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("wrapped /healthz: %v %v", resp, err)
	}
	resp.Body.Close()
}
