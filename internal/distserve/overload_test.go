package distserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"bat/internal/admission"
	"bat/internal/ranking"
	"bat/internal/scheduler"
	"bat/internal/serving"
)

// chaosDeployment is a faultDeployment plus the frontend's own HTTP server,
// so tests can exercise the admission ladder (headers, 429s) end to end.
type chaosDeployment struct {
	*faultDeployment
	front *httptest.Server
}

func newChaosDeployment(t *testing.T, workers int, policy scheduler.Policy, tcfg TransferConfig, mod func(*FrontendConfig)) *chaosDeployment {
	t.Helper()
	d := &faultDeployment{meta: NewMetaServer(300, func() time.Time { return time.Unix(0, 0) })}
	d.metaSrv = httptest.NewServer(d.meta.Handler())
	t.Cleanup(d.metaSrv.Close)
	var urls []string
	for i := 0; i < workers; i++ {
		cw, err := NewCacheWorker(8 << 20)
		if err != nil {
			t.Fatal(err)
		}
		d.workers = append(d.workers, cw)
		backend := httptest.NewServer(cw.Handler())
		t.Cleanup(backend.Close)
		proxy := NewFaultProxy(backend.URL)
		d.proxies = append(d.proxies, proxy)
		front := httptest.NewServer(proxy.Handler())
		t.Cleanup(front.Close)
		t.Cleanup(proxy.Release)
		urls = append(urls, front.URL)
	}
	cfg := FrontendConfig{
		Dataset:      testDataset(t),
		Variant:      ranking.VariantBase,
		MetaURL:      d.metaSrv.URL,
		CacheWorkers: urls,
		Policy:       policy,
		Transfer:     tcfg,
	}
	if mod != nil {
		mod(&cfg)
	}
	f, err := NewFrontend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.frontend = f
	cd := &chaosDeployment{faultDeployment: d, front: httptest.NewServer(f.Handler())}
	t.Cleanup(cd.front.Close)
	return cd
}

// post issues one /v1/rank call with optional headers and returns the status
// code, response headers, and decoded body (nil unless 200).
func (d *chaosDeployment) post(t *testing.T, req RankRequest, headers map[string]string) (int, http.Header, *RankResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, d.front.URL+"/v1/rank", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		hreq.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, resp.Header, nil
	}
	var out RankResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, &out
}

// TestOverloadFloodShedsAndBoundsLatency: a flood far past capacity must
// split cleanly into fast 200s (some degraded) and fast 429s carrying
// Retry-After — never an unbounded pile-up.
func TestOverloadFloodShedsAndBoundsLatency(t *testing.T) {
	d := newChaosDeployment(t, 1, scheduler.StaticItem{}, TransferConfig{
		Timeout: time.Second, MaxRetries: -1, BreakerThreshold: -1,
	}, func(cfg *FrontendConfig) {
		cfg.Admission = admission.Config{
			MaxInFlight: 1, MaxQueue: 2, DegradeQueueDepth: 1,
			DefaultDeadline: 5 * time.Second,
		}
	})
	// Slow each full serve down so the flood actually overlaps.
	d.proxies[0].SetMode(FaultDelay, 100*time.Millisecond)

	const flood = 16
	type outcome struct {
		status   int
		degraded bool
		header   http.Header
		elapsed  time.Duration
	}
	outcomes := make([]outcome, flood)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			status, hdr, resp := d.post(t, RankRequest{UserID: i % 8, CandidateIDs: []int{1, 2, 3, 4}}, nil)
			outcomes[i] = outcome{status: status, header: hdr, elapsed: time.Since(t0)}
			if resp != nil {
				outcomes[i].degraded = resp.Degraded
			}
		}(i)
	}
	wg.Wait()
	if total := time.Since(start); total > 10*time.Second {
		t.Fatalf("flood took %v, overload control did not bound latency", total)
	}

	oks, sheds, degraded := 0, 0, 0
	for _, o := range outcomes {
		switch o.status {
		case http.StatusOK:
			oks++
			if o.degraded {
				degraded++
			}
		case http.StatusTooManyRequests:
			sheds++
			if o.header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			if o.header.Get(admission.ShedReasonHeader) == "" {
				t.Fatal("429 without a shed reason")
			}
			if o.elapsed > 2*time.Second {
				t.Fatalf("shed response took %v, shedding must be fast", o.elapsed)
			}
		default:
			t.Fatalf("unexpected status %d", o.status)
		}
	}
	if oks == 0 {
		t.Fatal("flood starved every request; some must still be served")
	}
	if sheds == 0 {
		t.Fatal("flood past capacity shed nothing")
	}
	if degraded == 0 {
		t.Fatal("queued requests were not served degraded under pressure")
	}
	st := d.frontend.Stats()
	if st.Admission.ShedQueueFull == 0 {
		t.Fatal("queue-full sheds not counted")
	}
	if st.DegradedRequests == 0 {
		t.Fatal("degraded requests not counted")
	}
}

// TestDeadlineDegradeAfterCalibration: once the cost model is calibrated
// against observed wall clock, a request whose Deadline-Ms budget cannot
// cover a full serve is answered degraded instead of blowing the deadline.
func TestDeadlineDegradeAfterCalibration(t *testing.T) {
	d := newChaosDeployment(t, 1, scheduler.StaticItem{}, TransferConfig{
		Timeout: time.Second, MaxRetries: -1, BreakerThreshold: -1,
	}, nil)
	// Every worker round trip pays 200 ms, so a full serve is slow and the
	// calibrated estimate is far above the micro-model's prediction.
	d.proxies[0].SetMode(FaultDelay, 200*time.Millisecond)
	req := RankRequest{UserID: 2, CandidateIDs: []int{1, 3, 5}}
	if _, err := d.frontend.Rank(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if d.frontend.Stats().CalibratedCostRatio == 0 {
		t.Fatal("full serve did not calibrate the cost model")
	}

	status, _, resp := d.post(t, req, map[string]string{admission.DeadlineHeader: "100"})
	if status != http.StatusOK {
		t.Fatalf("tight-deadline request status %d, want 200 degraded", status)
	}
	if !resp.Degraded || resp.DegradeReason != admission.ReasonDeadline {
		t.Fatalf("response %+v, want degraded with reason %q", resp, admission.ReasonDeadline)
	}
	if len(resp.Ranking) == 0 {
		t.Fatal("degraded response carried no ranking")
	}
	// A generous budget still gets the full model.
	status, _, resp = d.post(t, req, map[string]string{admission.DeadlineHeader: "30000"})
	if status != http.StatusOK || resp.Degraded {
		t.Fatalf("roomy-deadline request: status %d degraded %v, want full serve", status, resp.Degraded)
	}
}

// TestChaosWorkerDeathSelfHeals is the acceptance chaos scenario: kill a
// cache worker mid-run; requests keep succeeding, the poolguard declares the
// death, purges the worker's meta bindings, re-replicates hot entries onto
// the survivor, and the worker rejoins cleanly when revived.
func TestChaosWorkerDeathSelfHeals(t *testing.T) {
	d := newChaosDeployment(t, 2, scheduler.StaticUser{}, TransferConfig{
		Timeout: 500 * time.Millisecond, MaxRetries: -1,
		BreakerThreshold: 2, BreakerCooldown: 100 * time.Millisecond,
	}, nil)
	guard := NewPoolGuard(d.frontend, PoolGuardConfig{
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		FailThreshold: 2,
		RepairHot:     8,
	})
	guard.Start()
	t.Cleanup(guard.Stop)

	// Warm the pool: user caches spread across both workers.
	users := len(d.frontend.cfg.Dataset.UserHistory)
	victims := 0 // users homed on worker 0
	for u := 0; u < users; u++ {
		if _, err := d.frontend.Rank(context.Background(), RankRequest{UserID: u, CandidateIDs: []int{1, 2, 3}}); err != nil {
			t.Fatal(err)
		}
		if d.frontend.userWorker(u) == 0 {
			victims++
		}
	}
	if victims == 0 {
		t.Fatal("no user shards to worker 0; dataset seed broke the scenario")
	}

	// Kill worker 0.
	d.proxies[0].SetMode(FaultError, 0)

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; guard stats %+v", what, guard.Stats())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitFor("death + repair", func() bool {
		st := guard.Stats()
		return st.Deaths >= 1 && st.Repaired >= 1
	})

	// Requests keep succeeding against the dead worker (served by recompute
	// or by the survivor — never an error).
	for u := 0; u < 6; u++ {
		if _, err := d.frontend.Rank(context.Background(), RankRequest{UserID: u, CandidateIDs: []int{4, 5}}); err != nil {
			t.Fatalf("rank during worker death: %v", err)
		}
	}

	// The dead worker's meta bindings are gone: no location list mentions it.
	for u := 0; u < users; u++ {
		for _, loc := range d.locate(t, "user", u) {
			if loc == 0 {
				t.Fatalf("user %d still bound to dead worker 0", u)
			}
		}
	}
	st := d.frontend.Stats()
	if st.WorkerPurges == 0 || st.PurgedBindings == 0 {
		t.Fatalf("bulk purge not recorded: purges=%d bindings=%d", st.WorkerPurges, st.PurgedBindings)
	}
	// Repaired entries landed on the survivor and are locatable there.
	repairedOnSurvivor := 0
	for u := 0; u < users; u++ {
		for _, loc := range d.locate(t, "user", u) {
			if loc == 1 {
				repairedOnSurvivor++
			}
		}
	}
	if repairedOnSurvivor == 0 {
		t.Fatal("no entries locatable on the surviving worker after repair")
	}
	// Writes route around the dead worker.
	for u := 0; u < users; u++ {
		if d.frontend.userWorker(u) == 0 {
			t.Fatalf("user %d still routed to dead worker 0", u)
		}
	}

	// Revive worker 0; the guard must observe the rejoin and restore routing.
	d.proxies[0].SetMode(FaultNone, 0)
	waitFor("rejoin", func() bool { return guard.Stats().Rejoins >= 1 })
	waitFor("routing restored", func() bool {
		for u := 0; u < users; u++ {
			if d.frontend.userWorker(u) == 0 {
				return true
			}
		}
		return false
	})
	// And the rejoined worker refills through the normal store path. Drop the
	// chosen user's surviving bindings first (as an eviction would), so the
	// next request recomputes and stores to the user's home worker again.
	rejoinUser := -1
	for u := 0; u < users; u++ {
		if d.frontend.userWorker(u) == 0 {
			rejoinUser = u
			break
		}
	}
	for _, loc := range d.locate(t, "user", rejoinUser) {
		body, _ := json.Marshal(RegisterRequest{EntryRef: EntryRef{Kind: "user", ID: uint64(rejoinUser)}, Worker: loc})
		resp, err := http.Post(d.metaSrv.URL+"/v1/unregister", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if _, err := d.frontend.Rank(context.Background(), RankRequest{UserID: rejoinUser, CandidateIDs: []int{6, 7}}); err != nil {
		t.Fatal(err)
	}
	waitFor("rejoined worker refilled", func() bool {
		for _, loc := range d.locate(t, "user", rejoinUser) {
			if loc == 0 {
				return true
			}
		}
		return false
	})
	gs := guard.Stats()
	if gs.Deaths < 1 || gs.Rejoins < 1 || gs.Repaired < 1 {
		t.Fatalf("guard stats %+v, want at least one death, rejoin, and repair", gs)
	}
}

// TestBreakerOpenPurgesWorkerBindings: the worker-granularity stale-cleanup
// satellite — when fetches short-circuit on an open breaker, the frontend
// bulk-purges that worker's bindings instead of leaking stale locations.
func TestBreakerOpenPurgesWorkerBindings(t *testing.T) {
	d := newChaosDeployment(t, 1, scheduler.StaticUser{}, TransferConfig{
		Timeout: 200 * time.Millisecond, MaxRetries: -1,
		BreakerThreshold: 1, BreakerCooldown: 10 * time.Second,
	}, nil)
	if _, err := d.frontend.Rank(context.Background(), RankRequest{UserID: 0, CandidateIDs: []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	flushFrontend(t, d.frontend)
	if locs := d.locate(t, "user", 0); len(locs) != 1 {
		t.Fatalf("user 0 locations after warm: %v", locs)
	}
	d.proxies[0].SetMode(FaultError, 0)
	// First request trips the breaker; a later one hits errBreakerOpen and
	// fires the bulk purge.
	for i := 0; i < 3; i++ {
		if _, err := d.frontend.Rank(context.Background(), RankRequest{UserID: 0, CandidateIDs: []int{1, 2}}); err != nil {
			t.Fatal(err)
		}
	}
	if locs := d.locate(t, "user", 0); len(locs) != 0 {
		t.Fatalf("stale bindings survived the breaker-open purge: %v", locs)
	}
	if st := d.frontend.Stats(); st.WorkerPurges == 0 {
		t.Fatal("breaker-open purge not counted")
	}
}

// TestMetaWorkerEndpoints covers the new bulk meta API over HTTP:
// access_batch records hotness for many entries at once, unregister_worker
// purges one worker's bindings and returns the hottest ones first.
func TestMetaWorkerEndpoints(t *testing.T) {
	meta := NewMetaServer(300, func() time.Time { return time.Unix(0, 0) })
	srv := httptest.NewServer(meta.Handler())
	defer srv.Close()
	post := func(path string, payload interface{}) (*http.Response, func()) {
		body, err := json.Marshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp, func() { resp.Body.Close() }
	}

	for id := uint64(1); id <= 3; id++ {
		resp, done := post("/v1/register", RegisterRequest{EntryRef: EntryRef{Kind: "item", ID: id}, Worker: 0})
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("register status %d", resp.StatusCode)
		}
		done()
	}
	// Heat item 2 above the others.
	batch := AccessBatchRequest{Entries: []EntryRef{{Kind: "item", ID: 2}, {Kind: "item", ID: 2}, {Kind: "item", ID: 1}}}
	resp, done := post("/v1/access_batch", batch)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("access_batch status %d", resp.StatusCode)
	}
	done()
	// Bad kinds are rejected atomically.
	resp, done = post("/v1/access_batch", AccessBatchRequest{Entries: []EntryRef{{Kind: "blob", ID: 9}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-kind access_batch status %d", resp.StatusCode)
	}
	done()

	resp, done = post("/v1/unregister_worker", UnregisterWorkerRequest{Worker: 0, HotLimit: 2})
	defer done()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unregister_worker status %d", resp.StatusCode)
	}
	var out UnregisterWorkerResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Removed != 3 {
		t.Fatalf("removed %d bindings, want 3", out.Removed)
	}
	if len(out.Hottest) != 2 {
		t.Fatalf("hottest list %v, want 2 entries (HotLimit)", out.Hottest)
	}
	if out.Hottest[0].ID != 2 {
		t.Fatalf("hottest entry %+v, want item 2 first", out.Hottest[0])
	}
	// Everything is gone.
	for id := 1; id <= 3; id++ {
		resp, err := http.Get(fmt.Sprintf("%s/v1/locate?kind=item&id=%d", srv.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		var loc LocateResponse
		if err := json.NewDecoder(resp.Body).Decode(&loc); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(loc.Workers) != 0 {
			t.Fatalf("item %d still located at %v after worker purge", id, loc.Workers)
		}
	}
	// A second purge is a clean no-op.
	resp, done = post("/v1/unregister_worker", UnregisterWorkerRequest{Worker: 0})
	defer done()
	var again UnregisterWorkerResponse
	if err := json.NewDecoder(resp.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	if again.Removed != 0 || len(again.Hottest) != 0 {
		t.Fatalf("second purge removed %d/%v, want empty", again.Removed, again.Hottest)
	}
	// Negative worker IDs are rejected.
	resp, done = post("/v1/unregister_worker", UnregisterWorkerRequest{Worker: -1})
	defer done()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative worker status %d", resp.StatusCode)
	}
}

// TestPoolGuardStopCancelsInflightProbes: probe and repair contexts derive
// from the guard's lifetime context, so Stop must return promptly even while
// a probe is parked against a hung worker, and the parked goroutines must
// drain instead of leaking until their own (long) timeouts expire.
func TestPoolGuardStopCancelsInflightProbes(t *testing.T) {
	d := newChaosDeployment(t, 2, scheduler.StaticUser{},
		TransferConfig{Timeout: 30 * time.Second}, nil)
	for _, p := range d.proxies {
		p.SetMode(FaultHang, 0)
	}
	baseline := runtime.NumGoroutine()
	g := NewPoolGuard(d.frontend, PoolGuardConfig{
		ProbeInterval: 20 * time.Millisecond,
		// Long enough that a leaked probe would outlive the test by far:
		// only guard-context cancellation can unpark it promptly.
		ProbeTimeout:  30 * time.Second,
		FailThreshold: 1000,
	})
	g.Start()
	deadline := time.Now().Add(5 * time.Second)
	for d.proxies[0].Requests() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no probe reached the hung worker")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stopStart := time.Now()
	g.Stop()
	if took := time.Since(stopStart); took > 5*time.Second {
		t.Fatalf("Stop took %v with a probe in flight; guard context not canceled", took)
	}
	// The probe goroutine and the proxy handler it woke must both drain.
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+3 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Stop: baseline %d, now %d",
				baseline, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDistserveObservabilityEndpoints: the disaggregated plane serves
// /metrics (core stage histograms + pool lines) and /debug/trace, and its
// traces carry StageFetch spans tagged with worker id and outcome.
func TestDistserveObservabilityEndpoints(t *testing.T) {
	d := newChaosDeployment(t, 2, scheduler.StaticItem{}, TransferConfig{}, nil)

	// Same candidate set twice: the first serve computes and stores item
	// caches, the second fetches them back (hits).
	cands := []int{1, 2, 3, 4}
	for i := 0; i < 2; i++ {
		if status, _, _ := d.post(t, RankRequest{UserID: i, CandidateIDs: cands}, nil); status != http.StatusOK {
			t.Fatalf("rank %d status %d", i, status)
		}
	}

	resp, err := http.Get(d.front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	out := string(body)
	for _, want := range []string{
		`bat_stage_latency_seconds{stage="plan"`,
		`bat_fetch_total{outcome="hit"}`,
		`bat_worker_breaker_open{worker="0"} 0`,
		"bat_transfer_requests_total{target=\"worker-0\"}",
		"bat_fetch_errors_total 0",
		"bat_requests_total 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}

	tresp, err := http.Get(d.front.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	var traces serving.TraceResponse
	if err := json.NewDecoder(tresp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	if len(traces.Traces) != 2 {
		t.Fatalf("traces %d, want 2", len(traces.Traces))
	}
	// Newest trace = the second request, whose item caches were pool hits.
	hits := 0
	for _, sp := range traces.Traces[0].Spans {
		if sp.Stage != serving.StageFetch {
			continue
		}
		if sp.Attrs["worker"] == "" || sp.Attrs["outcome"] == "" {
			t.Fatalf("fetch span missing worker/outcome tags: %+v", sp)
		}
		if sp.Attrs["outcome"] == "hit" {
			hits++
		}
	}
	if hits == 0 {
		t.Fatalf("second request recorded no fetch hits: %+v", traces.Traces[0].Spans)
	}
}
