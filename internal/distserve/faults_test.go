package distserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"bat/internal/ranking"
	"bat/internal/scheduler"
)

// faultDeployment is a cluster whose cache workers sit behind fault
// injection proxies: meta + N (proxy → worker) pairs + frontend.
type faultDeployment struct {
	meta     *MetaServer
	metaSrv  *httptest.Server
	workers  []*CacheWorker
	proxies  []*FaultProxy
	frontend *Frontend
}

func newFaultDeployment(t *testing.T, workers int, policy scheduler.Policy, tcfg TransferConfig) *faultDeployment {
	t.Helper()
	d := &faultDeployment{meta: NewMetaServer(300, func() time.Time { return time.Unix(0, 0) })}
	d.metaSrv = httptest.NewServer(d.meta.Handler())
	t.Cleanup(d.metaSrv.Close)
	var urls []string
	for i := 0; i < workers; i++ {
		cw, err := NewCacheWorker(8 << 20)
		if err != nil {
			t.Fatal(err)
		}
		d.workers = append(d.workers, cw)
		backend := httptest.NewServer(cw.Handler())
		t.Cleanup(backend.Close)
		proxy := NewFaultProxy(backend.URL)
		d.proxies = append(d.proxies, proxy)
		front := httptest.NewServer(proxy.Handler())
		t.Cleanup(front.Close)
		t.Cleanup(proxy.Release) // unblock hung handlers before Close waits
		urls = append(urls, front.URL)
	}
	f, err := NewFrontend(FrontendConfig{
		Dataset:      testDataset(t),
		Variant:      ranking.VariantBase,
		MetaURL:      d.metaSrv.URL,
		CacheWorkers: urls,
		Policy:       policy,
		Transfer:     tcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.frontend = f
	return d
}

func (d *faultDeployment) locate(t *testing.T, kind string, id int) []int {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/locate?kind=%s&id=%d", d.metaSrv.URL, kind, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out LocateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Workers
}

// TestHungWorkerDegradesToRecompute: the acceptance scenario — a worker that
// accepts connections but never replies must cost at most the configured
// timeout ± backoff budget, and the request must come back correct via
// recompute.
func TestHungWorkerDegradesToRecompute(t *testing.T) {
	d := newFaultDeployment(t, 1, scheduler.StaticItem{}, TransferConfig{
		Timeout: 150 * time.Millisecond, MaxRetries: 1,
		BackoffBase: 10 * time.Millisecond, BackoffMax: 20 * time.Millisecond,
		BreakerThreshold: 3, BreakerCooldown: 5 * time.Second,
	})
	cands := []int{2, 4, 6, 8}
	cold, err := d.frontend.Rank(context.Background(), RankRequest{UserID: 3, CandidateIDs: cands})
	if err != nil {
		t.Fatal(err)
	}

	d.proxies[0].SetMode(FaultHang, 0)
	start := time.Now()
	out, err := d.frontend.Rank(context.Background(), RankRequest{UserID: 3, CandidateIDs: cands})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("rank against hung worker errored: %v", err)
	}
	// Budget: ≤2 attempts × 150 ms per fetch (parallel) + backoff + breaker
	// cutoff; generous slack for CI noise, but nowhere near an unbounded hang.
	if elapsed > 2*time.Second {
		t.Fatalf("hung worker stalled the request for %v", elapsed)
	}
	if out.ReusedTokens != 0 {
		t.Fatalf("claimed %d reused tokens from a hung worker", out.ReusedTokens)
	}
	if out.ComputedTokens == 0 {
		t.Fatal("request did not recompute")
	}
	for i := range cold.Ranking {
		if cold.Ranking[i] != out.Ranking[i] {
			t.Fatalf("degraded ranking diverged: %v vs %v", cold.Ranking, out.Ranking)
		}
	}
	st := d.frontend.Stats()
	if st.FetchErrors == 0 {
		t.Fatal("hung fetches not recorded as errors")
	}
}

// TestTimeoutFiresOnSlowWorker: a worker slower than the per-attempt timeout
// is treated as down, not waited on.
func TestTimeoutFiresOnSlowWorker(t *testing.T) {
	d := newFaultDeployment(t, 1, scheduler.StaticItem{}, TransferConfig{
		Timeout: 100 * time.Millisecond, MaxRetries: -1,
		BreakerThreshold: -1,
	})
	d.proxies[0].SetMode(FaultDelay, 2*time.Second)
	start := time.Now()
	out, err := d.frontend.Rank(context.Background(), RankRequest{UserID: 0, CandidateIDs: []int{1, 3, 5}})
	if err != nil {
		t.Fatal(err)
	}
	// 3 parallel fetches (100 ms, concurrent) + 3 serial store attempts
	// (100 ms each) must fit well under the injected 2 s delay.
	if elapsed := time.Since(start); elapsed > 1500*time.Millisecond {
		t.Fatalf("timeout did not bound the slow worker: %v", elapsed)
	}
	if out.ReusedTokens != 0 {
		t.Fatal("reuse claimed through a timed-out worker")
	}
	if d.frontend.Stats().FetchErrors == 0 {
		t.Fatal("timeouts not recorded as fetch errors")
	}
}

// TestCircuitBreakerTripsAndRecovers: consecutive failures open the breaker
// (no more traffic reaches the worker), and after the cooldown a half-open
// probe against the healed worker closes it again.
func TestCircuitBreakerTripsAndRecovers(t *testing.T) {
	d := newFaultDeployment(t, 1, scheduler.StaticItem{}, TransferConfig{
		Timeout: 500 * time.Millisecond, MaxRetries: -1,
		BreakerThreshold: 3, BreakerCooldown: 100 * time.Millisecond,
	})
	d.proxies[0].SetMode(FaultError, 0)
	req := RankRequest{UserID: 0, CandidateIDs: []int{7}}
	workerState := func() string { return d.frontend.Stats().Workers[0].Breaker }
	for i := 0; i < 4 && workerState() != breakerOpen; i++ {
		if _, err := d.frontend.Rank(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	if got := workerState(); got != breakerOpen {
		t.Fatalf("breaker state %q after repeated failures, want open", got)
	}

	// Open breaker: requests are skipped locally, the worker sees nothing.
	before := d.proxies[0].Requests()
	if _, err := d.frontend.Rank(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if after := d.proxies[0].Requests(); after != before {
		t.Fatalf("open breaker still sent %d requests to the worker", after-before)
	}
	if d.frontend.Stats().Workers[0].BreakerSkips == 0 {
		t.Fatal("breaker skips not recorded")
	}

	// Heal the worker, wait out the cooldown: the half-open probe closes it.
	d.proxies[0].SetMode(FaultNone, 0)
	time.Sleep(150 * time.Millisecond)
	if _, err := d.frontend.Rank(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if got := workerState(); got != breakerClosed {
		t.Fatalf("breaker state %q after recovery, want closed", got)
	}
	// And traffic flows again end to end: the next request reuses the cache
	// the post-recovery request stored.
	out, err := d.frontend.Rank(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if out.ReusedTokens == 0 {
		t.Fatal("no cache reuse after breaker recovery")
	}
}

// TestEvictionLocateCoherence: when a worker no longer holds an entry the
// meta service claims it does, the frontend's 404 handling unregisters the
// stale binding so metaLocate stops lying.
func TestEvictionLocateCoherence(t *testing.T) {
	d := newFaultDeployment(t, 1, scheduler.StaticItem{}, TransferConfig{})
	cands := []int{1, 2, 3}
	if _, err := d.frontend.Rank(context.Background(), RankRequest{UserID: 0, CandidateIDs: cands}); err != nil {
		t.Fatal(err)
	}
	flushFrontend(t, d.frontend)
	if locs := d.locate(t, "item", 1); len(locs) != 1 {
		t.Fatalf("item 1 locations after store: %v", locs)
	}
	// Simulate the pool dropping the entry behind meta's back.
	if !d.workers[0].Delete("item/1") {
		t.Fatal("item 1 not on worker")
	}
	if c := d.frontend.fetchCache(context.Background(), 0, "item", 1); c != nil {
		t.Fatal("fetched a payload the worker no longer holds")
	}
	if locs := d.locate(t, "item", 1); len(locs) != 0 {
		t.Fatalf("stale binding survived the 404: %v", locs)
	}
	if d.frontend.Stats().StaleUnregisters == 0 {
		t.Fatal("stale unregister not counted")
	}
	// A full request re-establishes coherence: the miss recomputes item 1,
	// stores it back, and re-registers the (now truthful) binding.
	if _, err := d.frontend.Rank(context.Background(), RankRequest{UserID: 5, CandidateIDs: cands}); err != nil {
		t.Fatal(err)
	}
	flushFrontend(t, d.frontend)
	if locs := d.locate(t, "item", 1); len(locs) != 1 {
		t.Fatalf("locations after recompute: %v", locs)
	}
	if _, ok := d.workers[0].Get("item/1"); !ok {
		t.Fatal("recomputed payload missing from worker")
	}
}

// TestEvictHookUnregisters: the worker-side half of eviction coherence — an
// LRU eviction propagates to the meta service through the evict hook (the
// wiring cmd/batdist installs).
func TestEvictHookUnregisters(t *testing.T) {
	meta := NewMetaServer(300, func() time.Time { return time.Unix(0, 0) })
	metaSrv := httptest.NewServer(meta.Handler())
	defer metaSrv.Close()

	cw, err := NewCacheWorker(100)
	if err != nil {
		t.Fatal(err)
	}
	cw.SetEvictHook(func(key string) {
		kind, id, err := ParseCacheKey(key)
		if err != nil {
			return
		}
		body, _ := json.Marshal(RegisterRequest{EntryRef: EntryRef{Kind: kind, ID: id}, Worker: 0})
		resp, err := http.Post(metaSrv.URL+"/v1/unregister", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	})

	register := func(id uint64) {
		body, _ := json.Marshal(RegisterRequest{EntryRef: EntryRef{Kind: "item", ID: id}, Worker: 0})
		resp, err := http.Post(metaSrv.URL+"/v1/register", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	register(1)
	if err := cw.Put("item/1", make([]byte, 60)); err != nil {
		t.Fatal(err)
	}
	register(2)
	if err := cw.Put("item/2", make([]byte, 60)); err != nil { // evicts item/1
		t.Fatal(err)
	}

	resp, err := http.Get(metaSrv.URL + "/v1/locate?kind=item&id=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out LocateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Workers) != 0 {
		t.Fatalf("evicted entry still registered: %v", out.Workers)
	}
}

// TestReplicaFailover: the frontend walks the full location list meta
// returns instead of giving up after locs[0].
func TestReplicaFailover(t *testing.T) {
	d := newFaultDeployment(t, 2, scheduler.StaticUser{}, TransferConfig{})
	// Find a user whose cache shards to worker 1, so a stale binding on
	// worker 0 sorts first in meta's location list.
	user := -1
	for u := 0; u < len(d.frontend.cfg.Dataset.UserHistory); u++ {
		if d.frontend.userWorker(u) == 1 {
			user = u
			break
		}
	}
	if user < 0 {
		t.Fatal("no user shards to worker 1")
	}
	if _, err := d.frontend.Rank(context.Background(), RankRequest{UserID: user, CandidateIDs: []int{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	flushFrontend(t, d.frontend)
	// Register a phantom replica on worker 0 (which has no payload).
	body, _ := json.Marshal(RegisterRequest{EntryRef: EntryRef{Kind: "user", ID: uint64(user)}, Worker: 0})
	resp, err := http.Post(d.metaSrv.URL+"/v1/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if locs := d.locate(t, "user", user); len(locs) != 2 || locs[0] != 0 {
		t.Fatalf("locations %v, want [0 1]", locs)
	}

	out, err := d.frontend.Rank(context.Background(), RankRequest{UserID: user, CandidateIDs: []int{4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if out.ReusedTokens != len(d.frontend.cfg.Dataset.UserHistory[user]) {
		t.Fatalf("failover fetch reused %d tokens, want full profile", out.ReusedTokens)
	}
	st := d.frontend.Stats()
	if st.Failovers == 0 {
		t.Fatal("failover not counted")
	}
	// The 404 on worker 0 also cleaned up the phantom binding.
	if locs := d.locate(t, "user", user); len(locs) != 1 || locs[0] != 1 {
		t.Fatalf("locations after failover %v, want [1]", locs)
	}
}

// TestParallelFetchRaceClean: concurrent Rank calls with overlapping
// candidate sets exercise the bounded-concurrency fetch path under -race.
func TestParallelFetchRaceClean(t *testing.T) {
	d := newFaultDeployment(t, 2, scheduler.StaticItem{}, TransferConfig{FetchConcurrency: 4})
	cands := make([]int, 40)
	for i := range cands {
		cands[i] = i
	}
	if _, err := d.frontend.Rank(context.Background(), RankRequest{UserID: 0, CandidateIDs: cands}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, err := d.frontend.Rank(context.Background(), RankRequest{UserID: g, CandidateIDs: cands}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if hits := d.workers[0].Stats().Hits + d.workers[1].Stats().Hits; hits == 0 {
		t.Fatal("no cache hits under concurrency")
	}
}

// TestRankErrorStatusCodes: validation errors are the caller's fault (400);
// everything else is the server's (500).
func TestRankErrorStatusCodes(t *testing.T) {
	d := newDeployment(t, 1, nil)
	post := func(body string) int {
		resp, err := http.Post(d.front.URL+"/v1/rank", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"user_id":999999,"candidate_ids":[1]}`); code != http.StatusBadRequest {
		t.Fatalf("unknown user status %d, want 400", code)
	}
	if code := post(`{"user_id":0,"candidate_ids":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty candidates status %d, want 400", code)
	}
	if code := post(`{"user_id":0,"candidate_ids":[999999]}`); code != http.StatusBadRequest {
		t.Fatalf("unknown item status %d, want 400", code)
	}
}

func TestParseCacheKey(t *testing.T) {
	kind, id, err := ParseCacheKey("user/42")
	if err != nil || kind != "user" || id != 42 {
		t.Fatalf("ParseCacheKey(user/42) = %q %d %v", kind, id, err)
	}
	for _, bad := range []string{"user", "blob/3", "item/x", ""} {
		if _, _, err := ParseCacheKey(bad); err == nil {
			t.Fatalf("ParseCacheKey(%q) accepted", bad)
		}
	}
}

// benchDeployment builds a 1-worker cluster with a fixed per-request network
// delay so the serial-vs-parallel fetch difference dominates.
func benchDeployment(b *testing.B, concurrency int, candidates int) (*Frontend, []int) {
	b.Helper()
	ds, err := ranking.NewDataset(ranking.DatasetConfig{
		Name: "bench", Items: 80, Users: 8, Clusters: 4, LatentDim: 8,
		HistoryMin: 5, HistoryMax: 10, ItemAttrTokens: 1,
		ClusterNoise: 0.15, Candidates: 10, HardNegatives: 2, Seed: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	meta := NewMetaServer(300, func() time.Time { return time.Unix(0, 0) })
	metaSrv := httptest.NewServer(meta.Handler())
	b.Cleanup(metaSrv.Close)
	cw, err := NewCacheWorker(64 << 20)
	if err != nil {
		b.Fatal(err)
	}
	backend := httptest.NewServer(cw.Handler())
	b.Cleanup(backend.Close)
	proxy := NewFaultProxy(backend.URL)
	proxy.SetMode(FaultDelay, 2*time.Millisecond)
	front := httptest.NewServer(proxy.Handler())
	b.Cleanup(front.Close)
	f, err := NewFrontend(FrontendConfig{
		Dataset: ds, Variant: ranking.VariantBase,
		MetaURL: metaSrv.URL, CacheWorkers: []string{front.URL},
		Policy:   scheduler.StaticItem{},
		Transfer: TransferConfig{FetchConcurrency: concurrency},
	})
	if err != nil {
		b.Fatal(err)
	}
	cands := make([]int, candidates)
	for i := range cands {
		cands[i] = i
	}
	// Warm the pool so every benchmark iteration is pure fetch + reuse.
	if _, err := f.Rank(context.Background(), RankRequest{UserID: 0, CandidateIDs: cands}); err != nil {
		b.Fatal(err)
	}
	return f, cands
}

func benchmarkItemFetch(b *testing.B, concurrency int) {
	f, cands := benchDeployment(b, concurrency, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := f.Rank(context.Background(), RankRequest{UserID: 1 + i%7, CandidateIDs: cands})
		if err != nil {
			b.Fatal(err)
		}
		if out.ReusedTokens == 0 {
			b.Fatal("benchmark lost cache reuse")
		}
	}
}

// The acceptance benchmark pair: 32-candidate requests against a worker with
// 2 ms simulated network latency, serial vs bounded-parallel item fetch.
func BenchmarkItemFetchSerial(b *testing.B)   { benchmarkItemFetch(b, 1) }
func BenchmarkItemFetchParallel(b *testing.B) { benchmarkItemFetch(b, 16) }

// TestBackoffJitterSeedable: the transfer engine owns its jitter RNG, so two
// engines built with the same JitterSeed replay identical backoff schedules
// (fault tests depend on this), while the jitter still stays inside the
// [0.5d, 1.5d) decorrelation band.
func TestBackoffJitterSeedable(t *testing.T) {
	mk := func(seed int64) *transferClient {
		return newTransferClient(&http.Client{}, TransferConfig{
			BackoffBase: 10 * time.Millisecond,
			BackoffMax:  80 * time.Millisecond,
			JitterSeed:  seed,
		}, 1)
	}
	a, b := mk(42), mk(42)
	for i := 1; i <= 8; i++ {
		da, db := a.backoff(i), b.backoff(i)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
		base := 10 * time.Millisecond << uint(i-1)
		if base > 80*time.Millisecond || base <= 0 {
			base = 80 * time.Millisecond
		}
		if da < base/2 || da >= base+base/2 {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v)", i, da, base/2, base+base/2)
		}
	}
	c := mk(7)
	diverged := false
	for i := 1; i <= 8; i++ {
		if a.backoff(i) != c.backoff(i) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical 8-step backoff schedules")
	}
}
