package distserve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bat/internal/ranking"
	"bat/internal/scheduler"
)

func testDataset(t *testing.T) *ranking.Dataset {
	t.Helper()
	ds, err := ranking.NewDataset(ranking.DatasetConfig{
		Name: "dist", Items: 60, Users: 20, Clusters: 4, LatentDim: 8,
		HistoryMin: 5, HistoryMax: 10, ItemAttrTokens: 1,
		ClusterNoise: 0.15, Candidates: 10, HardNegatives: 2, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// deployment spins a full in-process cluster: meta + n cache workers +
// frontend, all over real HTTP.
type deployment struct {
	meta     *MetaServer
	workers  []*CacheWorker
	frontend *Frontend
	servers  []*httptest.Server
	front    *httptest.Server
}

func newDeployment(t *testing.T, workers int, policy scheduler.Policy) *deployment {
	t.Helper()
	return newDeploymentCfg(t, workers, policy, nil)
}

// newDeploymentCfg is newDeployment plus a frontend-config mutator, for
// tests that tune batching or transfer knobs.
func newDeploymentCfg(t *testing.T, workers int, policy scheduler.Policy, mutate func(*FrontendConfig)) *deployment {
	t.Helper()
	d := &deployment{meta: NewMetaServer(300, func() time.Time { return time.Unix(0, 0) })}
	metaSrv := httptest.NewServer(d.meta.Handler())
	d.servers = append(d.servers, metaSrv)
	var urls []string
	for i := 0; i < workers; i++ {
		cw, err := NewCacheWorker(8 << 20)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(cw.Handler())
		d.workers = append(d.workers, cw)
		d.servers = append(d.servers, srv)
		urls = append(urls, srv.URL)
	}
	cfg := FrontendConfig{
		Dataset:      testDataset(t),
		Variant:      ranking.VariantBase,
		MetaURL:      metaSrv.URL,
		CacheWorkers: urls,
		Policy:       policy,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	f, err := NewFrontend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.frontend = f
	d.front = httptest.NewServer(f.Handler())
	d.servers = append(d.servers, d.front)
	t.Cleanup(func() {
		for _, s := range d.servers {
			s.Close()
		}
	})
	return d
}

func (d *deployment) rank(t *testing.T, req RankRequest) *RankResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.front.URL+"/v1/rank", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rank status %d", resp.StatusCode)
	}
	var out RankResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	// Stores are write-behind; drain them so the pool deterministically
	// reflects this request's commit before the test asserts on it.
	d.flush(t)
	return &out
}

// flush drains the frontend's write-behind store queue.
func (d *deployment) flush(t *testing.T) {
	t.Helper()
	flushFrontend(t, d.frontend)
}

// flushFrontend drains a frontend's write-behind store queue so a test can
// assert on the pool's post-commit state.
func flushFrontend(t *testing.T, f *Frontend) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.FlushStores(ctx); err != nil {
		t.Fatalf("FlushStores: %v", err)
	}
}

func TestCacheWorkerPutGetEvict(t *testing.T) {
	cw, err := NewCacheWorker(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Put("a", make([]byte, 60)); err != nil {
		t.Fatal(err)
	}
	if err := cw.Put("b", make([]byte, 60)); err != nil {
		t.Fatal(err)
	}
	if _, ok := cw.Get("a"); ok {
		t.Fatal("a should have been evicted")
	}
	if _, ok := cw.Get("b"); !ok {
		t.Fatal("b missing")
	}
	if err := cw.Put("huge", make([]byte, 200)); err == nil {
		t.Fatal("oversized payload accepted")
	}
	st := cw.Stats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
	if !cw.Delete("b") || cw.Delete("b") {
		t.Fatal("delete semantics wrong")
	}
}

func TestCacheWorkerHTTP(t *testing.T) {
	cw, err := NewCacheWorker(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(cw.Handler())
	defer srv.Close()

	put := func(key string, body []byte) int {
		req, _ := http.NewRequest(http.MethodPut, srv.URL+"/kv/"+key, bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := put("item/3", []byte("payload")); code != http.StatusNoContent {
		t.Fatalf("put status %d", code)
	}
	resp, err := http.Get(srv.URL + "/kv/item/3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get status %d", resp.StatusCode)
	}
	missResp, err := http.Get(srv.URL + "/kv/item/999")
	if err != nil {
		t.Fatal(err)
	}
	missResp.Body.Close()
	if missResp.StatusCode != http.StatusNotFound {
		t.Fatalf("miss status %d", missResp.StatusCode)
	}
	statsResp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st WorkerStats
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("worker stats %+v", st)
	}
}

func TestFrontendValidation(t *testing.T) {
	if _, err := NewFrontend(FrontendConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := NewFrontend(FrontendConfig{Dataset: testDataset(t)}); err == nil {
		t.Fatal("missing cluster URLs accepted")
	}
}

// TestDistributedItemCacheReuse: the full loop — frontend computes item
// caches, PUTs them to cache workers, registers with meta, and a second
// request from a different user fetches them back over HTTP.
func TestDistributedItemCacheReuse(t *testing.T) {
	d := newDeployment(t, 3, scheduler.StaticItem{})
	cands := []int{1, 5, 9, 13, 17, 21}
	first := d.rank(t, RankRequest{UserID: 0, CandidateIDs: cands})
	if first.ReusedTokens != 0 {
		t.Fatalf("cold request reused %d", first.ReusedTokens)
	}
	second := d.rank(t, RankRequest{UserID: 7, CandidateIDs: cands})
	if second.ReusedTokens == 0 {
		t.Fatal("second user did not reuse distributed item caches")
	}
	// Payloads actually landed on the workers.
	total := 0
	for _, w := range d.workers {
		total += w.Stats().Entries
	}
	if total != len(cands) {
		t.Fatalf("%d cached payloads across workers, want %d", total, len(cands))
	}
	// And the ranking is identical cold vs warm.
	third := d.rank(t, RankRequest{UserID: 0, CandidateIDs: cands})
	for i := range first.Ranking {
		if first.Ranking[i] != third.Ranking[i] {
			t.Fatalf("ranking changed across cache states: %v vs %v", first.Ranking, third.Ranking)
		}
	}
}

// TestDistributedUserCacheReuse: a returning user's profile cache round-trips
// through the pool.
func TestDistributedUserCacheReuse(t *testing.T) {
	d := newDeployment(t, 2, scheduler.StaticUser{})
	first := d.rank(t, RankRequest{UserID: 3, CandidateIDs: []int{1, 2, 3}})
	if first.Prefix != "user-as-prefix" {
		t.Fatalf("prefix %s", first.Prefix)
	}
	second := d.rank(t, RankRequest{UserID: 3, CandidateIDs: []int{4, 5, 6}})
	if second.ReusedTokens != len(d.frontend.cfg.Dataset.UserHistory[3]) {
		t.Fatalf("reused %d tokens", second.ReusedTokens)
	}
}

// TestFrontendSurvivesDeadCacheWorker: losing a cache worker degrades to
// recomputation, never to request failure.
func TestFrontendSurvivesDeadCacheWorker(t *testing.T) {
	d := newDeployment(t, 2, scheduler.StaticItem{})
	cands := []int{2, 4, 6, 8}
	d.rank(t, RankRequest{UserID: 1, CandidateIDs: cands}) // warm the pool
	// Kill every cache worker.
	for _, s := range d.servers[1 : 1+len(d.workers)] {
		s.Close()
	}
	out := d.rank(t, RankRequest{UserID: 2, CandidateIDs: cands})
	if out.ReusedTokens != 0 {
		t.Fatal("reuse claimed from dead workers")
	}
	if out.ComputedTokens == 0 {
		t.Fatal("request did not recompute")
	}
	if d.frontend.Stats().FetchErrors == 0 {
		t.Fatal("fetch errors not recorded")
	}
}

func TestFrontendStatsEndpoint(t *testing.T) {
	d := newDeployment(t, 2, nil)
	d.rank(t, RankRequest{UserID: 0, CandidateIDs: []int{1, 2, 3, 4}})
	resp, err := http.Get(d.front.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st FrontendStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 || st.UserPrefix+st.ItemPrefix != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMetaServerHTTP(t *testing.T) {
	m := NewMetaServer(300, func() time.Time { return time.Unix(0, 0) })
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	post := func(path string, v interface{}) *http.Response {
		body, _ := json.Marshal(v)
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	// Access bumps hotness.
	resp := post("/v1/access", EntryRef{Kind: "user", ID: 5})
	var acc AccessResponse
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if acc.Hotness != 1 {
		t.Fatalf("hotness %v", acc.Hotness)
	}
	// Register then locate.
	post("/v1/register", RegisterRequest{EntryRef: EntryRef{Kind: "item", ID: 9}, Worker: 2}).Body.Close()
	locResp, err := http.Get(srv.URL + "/v1/locate?kind=item&id=9")
	if err != nil {
		t.Fatal(err)
	}
	var loc LocateResponse
	if err := json.NewDecoder(locResp.Body).Decode(&loc); err != nil {
		t.Fatal(err)
	}
	locResp.Body.Close()
	if len(loc.Workers) != 1 || loc.Workers[0] != 2 {
		t.Fatalf("locate %+v", loc)
	}
	// Unregister empties it.
	post("/v1/unregister", RegisterRequest{EntryRef: EntryRef{Kind: "item", ID: 9}, Worker: 2}).Body.Close()
	locResp2, err := http.Get(srv.URL + "/v1/locate?kind=item&id=9")
	if err != nil {
		t.Fatal(err)
	}
	var loc2 LocateResponse
	if err := json.NewDecoder(locResp2.Body).Decode(&loc2); err != nil {
		t.Fatal(err)
	}
	locResp2.Body.Close()
	if len(loc2.Workers) != 0 {
		t.Fatalf("still located: %+v", loc2)
	}
	// Bad kind rejected.
	badResp := post("/v1/access", EntryRef{Kind: "bogus", ID: 1})
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad kind status %d", badResp.StatusCode)
	}
}

func TestCacheWorkerValidationAndMethods(t *testing.T) {
	if _, err := NewCacheWorker(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	cw, err := NewCacheWorker(1024)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(cw.Handler())
	defer srv.Close()

	// Missing key.
	resp, err := http.Get(srv.URL + "/kv/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty key status %d", resp.StatusCode)
	}
	// Unsupported method.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/kv/x", nil)
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d", r2.StatusCode)
	}
	// PATCH without delta-protocol args is a bad request, not a 405.
	patch, _ := http.NewRequest(http.MethodPatch, srv.URL+"/kv/x", nil)
	r2b, err := http.DefaultClient.Do(patch)
	if err != nil {
		t.Fatal(err)
	}
	r2b.Body.Close()
	if r2b.StatusCode != http.StatusBadRequest {
		t.Fatalf("bare PATCH status %d", r2b.StatusCode)
	}
	// Oversized PUT -> 507.
	big, _ := http.NewRequest(http.MethodPut, srv.URL+"/kv/big", bytes.NewReader(make([]byte, 4096)))
	r3, err := http.DefaultClient.Do(big)
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("oversized status %d", r3.StatusCode)
	}
	// DELETE via HTTP.
	if err := cw.Put("x", []byte("v")); err != nil {
		t.Fatal(err)
	}
	del, _ := http.NewRequest(http.MethodDelete, srv.URL+"/kv/x", nil)
	r4, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	if r4.StatusCode != http.StatusNoContent || cw.Stats().Entries != 0 {
		t.Fatal("delete failed")
	}
}

func TestMetaServerRejectsBadRequests(t *testing.T) {
	m := NewMetaServer(0, nil) // zero window defaults inside cachemeta
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	// GET on a POST-only endpoint.
	resp, err := http.Get(srv.URL + "/v1/access")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET access status %d", resp.StatusCode)
	}
	// Malformed JSON.
	r2, err := http.Post(srv.URL+"/v1/register", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON status %d", r2.StatusCode)
	}
	// Bad id in locate.
	r3, err := http.Get(srv.URL + "/v1/locate?kind=user&id=zebra")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id status %d", r3.StatusCode)
	}
	// Bad kind in unregister.
	body, _ := json.Marshal(RegisterRequest{EntryRef: EntryRef{Kind: "weird", ID: 1}})
	r4, err := http.Post(srv.URL+"/v1/unregister", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	if r4.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad kind status %d", r4.StatusCode)
	}
}

func TestFrontendHTTPRejections(t *testing.T) {
	d := newDeployment(t, 1, nil)
	// GET on rank.
	resp, err := http.Get(d.front.URL + "/v1/rank")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET rank status %d", resp.StatusCode)
	}
	// Malformed body.
	r2, err := http.Post(d.front.URL+"/v1/rank", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status %d", r2.StatusCode)
	}
	// Healthz works.
	r3, err := http.Get(d.front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", r3.StatusCode)
	}
}
