package distserve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"bat/internal/bipartite"
	"bat/internal/ranking"
	"bat/internal/scheduler"
	"bat/internal/serving"
)

// httptestServer starts a test HTTP server torn down with the test.
func httptestServer(t *testing.T, h http.Handler) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

// proxyDeployment is a full cluster whose cache workers sit behind fault
// proxies AND whose frontend config is test-tunable — the combination the
// batching tests need (injected transfer latency + window/batch knobs).
type proxyDeployment struct {
	frontend *Frontend
	proxies  []*FaultProxy
}

func newProxyDeploymentCfg(t *testing.T, workers int, policy scheduler.Policy, mutate func(*FrontendConfig)) *proxyDeployment {
	t.Helper()
	d := &proxyDeployment{}
	meta := NewMetaServer(300, func() time.Time { return time.Unix(0, 0) })
	metaSrv := httptestServer(t, meta.Handler())
	var urls []string
	for i := 0; i < workers; i++ {
		cw, err := NewCacheWorker(8 << 20)
		if err != nil {
			t.Fatal(err)
		}
		backend := httptestServer(t, cw.Handler())
		proxy := NewFaultProxy(backend.URL)
		t.Cleanup(proxy.Release)
		front := httptestServer(t, proxy.Handler())
		d.proxies = append(d.proxies, proxy)
		urls = append(urls, front.URL)
	}
	cfg := FrontendConfig{
		Dataset:      testDataset(t),
		Variant:      ranking.VariantBase,
		MetaURL:      metaSrv.URL,
		CacheWorkers: urls,
		Policy:       policy,
		Transfer:     TransferConfig{JitterSeed: 1},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	f, err := NewFrontend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.frontend = f
	return d
}

// TestPrefetchOverlapsBatchWindow: the frontend's pool fetches start at
// enqueue (serving.Prefetcher), so network transfer hides under the batch
// window instead of serializing at the head of the plan phase. With a 300ms
// fixed window and a 200ms injected worker latency, a lone warm request must
// finish just past the window — NOT window + fetch.
func TestPrefetchOverlapsBatchWindow(t *testing.T) {
	const window = 300 * time.Millisecond
	const delay = 200 * time.Millisecond
	d := newProxyDeploymentCfg(t, 2, scheduler.StaticUser{}, func(cfg *FrontendConfig) {
		cfg.WindowPolicy = serving.WindowFixed
		cfg.BatchWindow = window
		cfg.MaxBatch = 8
	})
	f := d.frontend
	req := RankRequest{UserID: 0, CandidateIDs: []int{1, 5, 9, 13}}

	// Warm the pool: the first serve computes the user cache and commits it
	// to a worker; confirm a second serve actually reuses it over the wire.
	if _, err := f.Rank(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	flushFrontend(t, f)
	warm, err := f.Rank(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.ReusedTokens == 0 {
		t.Fatal("second serve reused nothing; the pool round trip is not wired")
	}

	for _, p := range d.proxies {
		p.SetMode(FaultDelay, delay)
	}
	start := time.Now()
	resp, err := f.Rank(context.Background(), req)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ReusedTokens == 0 {
		t.Fatal("timed serve reused nothing; it never exercised the delayed fetch")
	}
	if elapsed < window-50*time.Millisecond {
		t.Fatalf("lone fixed-window request finished in %v, before the %v window — test premise broken", elapsed, window)
	}
	if elapsed >= window+delay-50*time.Millisecond {
		t.Fatalf("request took %v: the %v fetch serialized after the %v window instead of overlapping it", elapsed, delay, window)
	}
	if st := f.Stats(); st.PrefetchedPlans == 0 {
		t.Fatal("no plan was served from a prefetch started at enqueue")
	}
}

// TestDistserveDedupSameColdUser: concurrent requests for the SAME cold user
// landing in one batch recompute the user prefix once on the frontend — the
// batch-level miss planner collapses the identical misses — and every
// response carries the bit-identical ranking a solo serve produces.
func TestDistserveDedupSameColdUser(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	d := newProxyDeploymentCfg(t, 2, scheduler.StaticUser{}, func(cfg *FrontendConfig) {
		cfg.WindowPolicy = serving.WindowFixed
		cfg.BatchWindow = 100 * time.Millisecond
		cfg.MaxBatch = 4
		cfg.BatchHook = func(size int) { once.Do(func() { <-gate }) }
	})
	f := d.frontend
	req := RankRequest{UserID: 3, CandidateIDs: []int{2, 6, 10, 14, 18}}

	// Reference: a solo user-prefix serve of the same request on an
	// independent ranker over the same deterministic dataset and weights.
	r, err := ranking.NewRanker(testDataset(t), ranking.VariantBase)
	if err != nil {
		t.Fatal(err)
	}
	ranked, _, err := r.Rank(ranking.EvalRequest{User: req.UserID, Candidates: req.CandidateIDs},
		bipartite.UserPrefix, ranking.RankOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, len(ranked))
	for i, idx := range ranked {
		want[i] = req.CandidateIDs[idx]
	}

	// Stall the batcher on a throwaway request so the identical ones queue up
	// together, then release and let them form one batch.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := f.Rank(context.Background(), RankRequest{UserID: 1, CandidateIDs: []int{3, 7}}); err != nil {
			t.Errorf("stall request: %v", err)
		}
	}()
	const n = 4
	resps := make([]*RankResponse, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := f.Rank(context.Background(), req)
			if err != nil {
				t.Errorf("dedup request %d: %v", i, err)
				return
			}
			resps[i] = resp
		}(i)
	}
	time.Sleep(200 * time.Millisecond) // everything is enqueued behind the stall
	close(gate)
	wg.Wait()

	for i, resp := range resps {
		if resp == nil {
			t.Fatalf("request %d got no response", i)
		}
		if len(resp.Ranking) < len(want) {
			t.Fatalf("request %d ranking has %d entries, want >= %d", i, len(resp.Ranking), len(want))
		}
		for j := range want {
			if resp.Ranking[j] != want[j] {
				t.Fatalf("request %d ranking %v deviates from solo serve %v", i, resp.Ranking, want)
			}
		}
	}
	st := f.Stats()
	if st.DedupedTokens == 0 {
		t.Fatal("identical in-batch cold-user misses recorded zero deduped tokens")
	}
	if st.MaxBatchSize < 2 {
		t.Fatalf("max batch size %d; the identical requests never batched", st.MaxBatchSize)
	}
}
