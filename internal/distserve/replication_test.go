package distserve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"bat/internal/model"
	"bat/internal/routing"
	"bat/internal/scheduler"
)

// registerAt binds one entry to a worker directly against the meta server.
func registerAt(t *testing.T, metaURL, kind string, id uint64, worker int) {
	t.Helper()
	body, err := json.Marshal(RegisterRequest{EntryRef: EntryRef{Kind: kind, ID: id}, Worker: worker})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(metaURL+"/v1/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("register status %d", resp.StatusCode)
	}
}

// TestRouteReplicasWalk pins the shared replica walk's contract as the
// frontend consumes it: distinct workers, forward order from the home slot,
// skip-unroutable, home fallback. (Bit-level equivalence with the
// pre-refactor routeReplicas lives in internal/routing's tests.)
func TestRouteReplicasWalk(t *testing.T) {
	all := func(int) bool { return true }
	ring := routing.NewRing(4)
	got := ring.Replicas(8, 2, all) // home = 8 % 4 = 0
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Replicas(8,2,all) = %v, want [0 1]", got)
	}
	skip1 := func(w int) bool { return w != 1 }
	if got := ring.Replicas(9, 2, skip1); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("walk past unroutable worker = %v, want [2 3]", got)
	}
	none := func(int) bool { return false }
	if got := ring.Replicas(9, 2, none); len(got) != 1 || got[0] != 1 {
		t.Fatalf("unroutable pool fallback = %v, want [1]", got)
	}
	if got := routing.NewRing(2).Replicas(0, 5, all); len(got) != 2 {
		t.Fatalf("rf clamp to pool size = %v, want 2 workers", got)
	}
}

// TestReplicatedStoreWritesRFCopies: with Replication 2, one committed rank
// leaves every fresh entry on two distinct workers, both registered in meta.
func TestReplicatedStoreWritesRFCopies(t *testing.T) {
	d := newChaosDeployment(t, 3, scheduler.StaticUser{}, TransferConfig{}, func(cfg *FrontendConfig) {
		cfg.Replication = 2
	})
	user := 3
	if _, err := d.frontend.Rank(context.Background(), RankRequest{UserID: user, CandidateIDs: []int{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	flushFrontend(t, d.frontend)

	reps := d.frontend.userReplicas(user)
	if len(reps) != 2 || reps[0] == reps[1] {
		t.Fatalf("userReplicas = %v, want 2 distinct workers", reps)
	}
	locs := d.locate(t, "user", user)
	want := append([]int(nil), reps...)
	sort.Ints(want)
	if len(locs) != 2 || locs[0] != want[0] || locs[1] != want[1] {
		t.Fatalf("meta locations %v, want %v", locs, want)
	}
	for _, w := range reps {
		if _, ok := d.workers[w].Peek("user/3"); !ok {
			t.Fatalf("worker %d missing its replica of user/3", w)
		}
	}
	st := d.frontend.Stats()
	if st.Replication != 2 {
		t.Fatalf("stats replication %d, want 2", st.Replication)
	}
	if st.ReplicaStores == 0 {
		t.Fatal("no secondary replica stores counted")
	}

	// Item caches replicate the same way (under the item-cache policy).
	di := newChaosDeployment(t, 3, scheduler.StaticItem{}, TransferConfig{}, func(cfg *FrontendConfig) {
		cfg.Replication = 2
	})
	if _, err := di.frontend.Rank(context.Background(), RankRequest{UserID: 0, CandidateIDs: []int{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	flushFrontend(t, di.frontend)
	if locs := di.locate(t, "item", 1); len(locs) != 2 {
		t.Fatalf("item 1 locations %v, want 2 replicas", locs)
	}
}

// TestReadRepairBackfillsMissingReplica: a fetch that fails over past a
// missing replica queues a background copy that restores it.
func TestReadRepairBackfillsMissingReplica(t *testing.T) {
	d := newChaosDeployment(t, 3, scheduler.StaticUser{}, TransferConfig{HedgeQuantile: -1}, func(cfg *FrontendConfig) {
		cfg.Replication = 2
	})
	user := 3
	if _, err := d.frontend.Rank(context.Background(), RankRequest{UserID: user, CandidateIDs: []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	flushFrontend(t, d.frontend)

	// Drop the replica meta lists first; the next fetch must fail over.
	locs := d.locate(t, "user", user)
	if len(locs) != 2 {
		t.Fatalf("locations %v, want 2 replicas", locs)
	}
	if !d.workers[locs[0]].Delete("user/3") {
		t.Fatalf("worker %d did not hold user/3", locs[0])
	}
	out, err := d.frontend.Rank(context.Background(), RankRequest{UserID: user, CandidateIDs: []int{4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if out.ReusedTokens < len(d.frontend.cfg.Dataset.UserHistory[user]) {
		t.Fatalf("reused %d tokens, want the full profile from the surviving replica", out.ReusedTokens)
	}
	flushFrontend(t, d.frontend) // repair rides the store queue
	st := d.frontend.Stats()
	if st.Failovers == 0 {
		t.Fatal("failover not counted")
	}
	if st.ReadRepairs == 0 {
		t.Fatal("read repair not counted")
	}
	reps := d.frontend.userReplicas(user)
	for _, w := range reps {
		if _, ok := d.workers[w].Peek("user/3"); !ok {
			t.Fatalf("replica on worker %d not backfilled", w)
		}
	}
	if locs := d.locate(t, "user", user); len(locs) != 2 {
		t.Fatalf("locations after repair %v, want 2", locs)
	}
}

// TestChaosReplicatedDeathLossFree is the acceptance chaos scenario for the
// replicated pool: store with RF=2, kill the primary, and the next rank is a
// pool hit (zero recompute of the user prefix); the anti-entropy scrubber
// then restores RF=2 on the survivors. Read repair is disabled so the
// restoration is provably the scrubber's.
func TestChaosReplicatedDeathLossFree(t *testing.T) {
	d := newChaosDeployment(t, 3, scheduler.StaticUser{}, TransferConfig{
		Timeout: 500 * time.Millisecond, MaxRetries: -1,
		BreakerThreshold: 2, BreakerCooldown: 100 * time.Millisecond,
		HedgeQuantile: -1,
	}, func(cfg *FrontendConfig) {
		cfg.Replication = 2
		cfg.ReadRepairBudget = -1
	})
	guard := NewPoolGuard(d.frontend, PoolGuardConfig{
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		FailThreshold: 2,
		RepairHot:     8,
		ScrubInterval: 100 * time.Millisecond,
		ScrubShards:   1,
	})
	guard.Start()
	t.Cleanup(guard.Stop)

	user := 3
	if _, err := d.frontend.Rank(context.Background(), RankRequest{UserID: user, CandidateIDs: []int{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	flushFrontend(t, d.frontend)
	reps := d.frontend.userReplicas(user)
	primary := reps[0]
	d.proxies[primary].SetMode(FaultError, 0)

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; guard stats %+v", what, guard.Stats())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitFor("the death", func() bool { return guard.Stats().Deaths >= 1 })

	// The committed user cache must survive the primary's death: the next
	// rank reuses the surviving replica instead of recomputing.
	out, err := d.frontend.Rank(context.Background(), RankRequest{UserID: user, CandidateIDs: []int{4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if out.ReusedTokens < len(d.frontend.cfg.Dataset.UserHistory[user]) {
		t.Fatalf("reused %d tokens after primary death, want the full profile (pool hit)", out.ReusedTokens)
	}

	// The scrubber restores RF=2 on the survivors within a sweep or two.
	waitFor("scrub re-replication", func() bool {
		locs := d.locate(t, "user", user)
		if len(locs) != 2 {
			return false
		}
		for _, w := range locs {
			if w == primary {
				return false
			}
		}
		return guard.Stats().ScrubRepairs >= 1
	})
	if st := guard.Stats(); st.ReplicaAvg["user"] <= 0 {
		t.Fatalf("scrub sweep never measured user replicas: %+v", st)
	}
}

// TestScrubRepairsDivergentReplica: a replica holding a stale prefix of an
// entry is overwritten from the longest copy by one scrub sweep.
func TestScrubRepairsDivergentReplica(t *testing.T) {
	d := newChaosDeployment(t, 2, scheduler.StaticUser{}, TransferConfig{}, func(cfg *FrontendConfig) {
		cfg.Replication = 2
	})
	guard := NewPoolGuard(d.frontend, PoolGuardConfig{ScrubInterval: -1, ScrubShards: 1})

	c := transferCache(t, model.TinyGR(32), 10, 5)
	full, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	stale, err := c.MarshalRange(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.workers[0].Put("user/3", stale); err != nil {
		t.Fatal(err)
	}
	if err := d.workers[1].Put("user/3", full); err != nil {
		t.Fatal(err)
	}
	registerAt(t, d.metaSrv.URL, "user", 3, 0)
	registerAt(t, d.metaSrv.URL, "user", 3, 1)

	guard.scrubOnce()

	got, ok := d.workers[0].Peek("user/3")
	if !ok || !bytes.Equal(got, full) {
		t.Fatalf("divergent replica not repaired from the longest copy (have %d bytes, want %d)", len(got), len(full))
	}
	st := guard.Stats()
	if st.ScrubDivergent == 0 || st.ScrubRepairs == 0 {
		t.Fatalf("divergence repair not counted: %+v", st)
	}
}

// TestScrubRestoresReplicationFactor: an entry stored before Replication was
// raised (one copy, RF=2) gets its second replica from a sweep.
func TestScrubRestoresReplicationFactor(t *testing.T) {
	d := newChaosDeployment(t, 2, scheduler.StaticUser{}, TransferConfig{}, func(cfg *FrontendConfig) {
		cfg.Replication = 2
	})
	guard := NewPoolGuard(d.frontend, PoolGuardConfig{ScrubInterval: -1, ScrubShards: 1})

	c := transferCache(t, model.TinyGR(32), 8, 7)
	payload, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.workers[0].Put("item/9", payload); err != nil {
		t.Fatal(err)
	}
	registerAt(t, d.metaSrv.URL, "item", 9, 0)

	guard.scrubOnce()

	if got, ok := d.workers[1].Peek("item/9"); !ok || !bytes.Equal(got, payload) {
		t.Fatal("second replica not created by the scrub sweep")
	}
	if locs := d.locate(t, "item", 9); len(locs) != 2 {
		t.Fatalf("locations after sweep %v, want both workers", locs)
	}
	st := guard.Stats()
	if st.UnderReplicated != 1 {
		t.Fatalf("last sweep under-replicated count %d, want 1", st.UnderReplicated)
	}
	if st.ScrubRepairs == 0 {
		t.Fatal("scrub repair not counted")
	}
}

// TestHedgedFetchBeatsSlowPrimary: once the fetch-stage histogram has
// calibrated, a slow primary replica is raced by a hedged fetch to the
// second replica, and the request completes well under the injected delay.
func TestHedgedFetchBeatsSlowPrimary(t *testing.T) {
	d := newChaosDeployment(t, 2, scheduler.StaticUser{}, TransferConfig{
		Timeout: 2 * time.Second, MaxRetries: -1, BreakerThreshold: -1,
	}, func(cfg *FrontendConfig) {
		cfg.Replication = 2
	})
	user := 1
	cands := []int{1, 2, 3}
	// Warm: first rank stores both replicas; the next ones record fast
	// fetch-stage samples that calibrate the hedge delay.
	for i := 0; i < 3; i++ {
		if _, err := d.frontend.Rank(context.Background(), RankRequest{UserID: user, CandidateIDs: cands}); err != nil {
			t.Fatal(err)
		}
		flushFrontend(t, d.frontend)
	}
	if d := d.frontend.hedgeDelay(); d <= 0 {
		t.Fatalf("hedge delay %v after warmup, want > 0", d)
	}

	// Slow down the primary (meta lists locations ascending; the fetch walks
	// them in order, so locs[0] is the one the hedge must beat).
	locs := d.locate(t, "user", user)
	if len(locs) != 2 {
		t.Fatalf("locations %v, want 2 replicas", locs)
	}
	const injected = 500 * time.Millisecond
	d.proxies[locs[0]].SetMode(FaultDelay, injected)
	start := time.Now()
	out, err := d.frontend.Rank(context.Background(), RankRequest{UserID: user, CandidateIDs: []int{4, 5}})
	elapsed := time.Since(start)
	d.proxies[locs[0]].SetMode(FaultNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.ReusedTokens < len(d.frontend.cfg.Dataset.UserHistory[user]) {
		t.Fatalf("hedged rank reused %d tokens, want the full profile", out.ReusedTokens)
	}
	if elapsed >= injected {
		t.Fatalf("rank took %v against a %v-delayed primary; hedge never fired", elapsed, injected)
	}
	st := d.frontend.Stats()
	if st.HedgedWins == 0 {
		t.Fatalf("no hedged wins counted (hedged fetches: %d)", st.HedgedFetches)
	}
}

// TestDrainMovesEntriesLossFree: draining a worker moves every entry to
// peers chosen by the frontend's own routing, and subsequent reads hit the
// pool with zero new fetch errors.
func TestDrainMovesEntriesLossFree(t *testing.T) {
	d := newChaosDeployment(t, 3, scheduler.StaticUser{}, TransferConfig{}, nil)
	for u := 0; u < 6; u++ {
		if _, err := d.frontend.Rank(context.Background(), RankRequest{UserID: u, CandidateIDs: []int{1, 2, 3}}); err != nil {
			t.Fatal(err)
		}
	}
	flushFrontend(t, d.frontend)

	w := d.frontend.userWorker(0)
	held := d.workers[w].Stats().Entries
	if held == 0 {
		t.Fatalf("worker %d holds nothing to drain", w)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	dr, err := d.frontend.DrainWorker(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Moved != held || dr.Errors != 0 || dr.Skipped != 0 {
		t.Fatalf("drain moved %d/%d entries (errors %d, skipped %d)", dr.Moved, held, dr.Errors, dr.Skipped)
	}
	if got := d.workers[w].Stats().Entries; got != 0 {
		t.Fatalf("drained worker still holds %d entries", got)
	}
	if !d.workers[w].Draining() {
		t.Fatal("drained worker not left in the draining state")
	}
	st := d.frontend.Stats()
	if st.Drains != 1 {
		t.Fatalf("drains counter %d, want 1", st.Drains)
	}
	if !st.Workers[w].Draining {
		t.Fatal("frontend stats do not mark the worker draining")
	}
	// Reads after the drain are pool hits from the new location — no decode
	// errors, no fetch errors, no recompute.
	if locs := d.locate(t, "user", 0); len(locs) == 0 || locs[0] == w {
		t.Fatalf("user 0 locations after drain: %v", locs)
	}
	fetchErrs := st.FetchErrors
	out, err := d.frontend.Rank(ctx, RankRequest{UserID: 0, CandidateIDs: []int{7, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if out.ReusedTokens < len(d.frontend.cfg.Dataset.UserHistory[0]) {
		t.Fatalf("post-drain rank reused %d tokens, want the full profile", out.ReusedTokens)
	}
	if got := d.frontend.Stats().FetchErrors; got != fetchErrs {
		t.Fatalf("post-drain rank added %d fetch errors, want 0", got-fetchErrs)
	}

	// Undrain returns the worker to service.
	if err := d.frontend.UndrainWorker(ctx, w); err != nil {
		t.Fatal(err)
	}
	if d.workers[w].Draining() {
		t.Fatal("worker still draining after undrain")
	}
	if d.frontend.Stats().Workers[w].Draining {
		t.Fatal("frontend still routes around the undrained worker")
	}
}

// TestDrainEndpointOnFrontend drives the same flow through the operator
// endpoint (POST /v1/drain on the frontend).
func TestDrainEndpointOnFrontend(t *testing.T) {
	d := newChaosDeployment(t, 2, scheduler.StaticUser{}, TransferConfig{}, nil)
	if _, err := d.frontend.Rank(context.Background(), RankRequest{UserID: 0, CandidateIDs: []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	flushFrontend(t, d.frontend)
	w := d.frontend.userWorker(0)

	body, _ := json.Marshal(map[string]int{"worker": w})
	resp, err := http.Post(d.front.URL+"/v1/drain", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain endpoint status %d", resp.StatusCode)
	}
	var dr DrainResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	if dr.Moved == 0 {
		t.Fatalf("endpoint drain moved nothing: %+v", dr)
	}
	// A second drain of the same worker is refused.
	resp2, err := http.Post(d.front.URL+"/v1/drain", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode == http.StatusOK {
		t.Fatal("double drain accepted")
	}
	// Undrain over HTTP.
	resp3, err := http.Post(d.front.URL+"/v1/undrain", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNoContent {
		t.Fatalf("undrain endpoint status %d", resp3.StatusCode)
	}
	if d.workers[w].Draining() {
		t.Fatal("worker still draining after /v1/undrain")
	}
}

// TestCloseFlushesQueuedStores: Close's bounded flush lands queued
// write-behind stores instead of abandoning them.
func TestCloseFlushesQueuedStores(t *testing.T) {
	d := newChaosDeployment(t, 1, scheduler.StaticUser{}, TransferConfig{}, nil)
	if _, err := d.frontend.Rank(context.Background(), RankRequest{UserID: 0, CandidateIDs: []int{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	d.frontend.Close()
	if got := d.workers[0].Stats().Entries; got == 0 {
		t.Fatal("Close abandoned the queued stores")
	}
	if n := d.frontend.Stats().CloseDroppedStores; n != 0 {
		t.Fatalf("%d stores counted dropped on a clean close", n)
	}
}

// TestCloseCountsDroppedStores: when the flush budget expires against a hung
// worker, the remainder is dropped and counted instead of blocking shutdown.
func TestCloseCountsDroppedStores(t *testing.T) {
	d := newChaosDeployment(t, 1, scheduler.StaticUser{}, TransferConfig{
		Timeout: 200 * time.Millisecond,
	}, func(cfg *FrontendConfig) {
		cfg.CloseFlushTimeout = 50 * time.Millisecond
	})
	d.proxies[0].SetMode(FaultHang, 0)
	if _, err := d.frontend.Rank(context.Background(), RankRequest{UserID: 0, CandidateIDs: []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	d.frontend.Close()
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("bounded close took %v", elapsed)
	}
	if n := d.frontend.Stats().CloseDroppedStores; n == 0 {
		t.Fatal("dropped stores not counted at shutdown")
	}
	d.proxies[0].Release()
}

// TestMetaBindingsAndRegisterBatch: the scrubber's two meta endpoints —
// batch registration and sharded index listing (disjoint shards, complete
// union, sorted workers).
func TestMetaBindingsAndRegisterBatch(t *testing.T) {
	meta := NewMetaServer(300, func() time.Time { return time.Unix(0, 0) })
	srv := httptest.NewServer(meta.Handler())
	defer srv.Close()

	batch := RegisterBatchRequest{Entries: []RegisterRequest{
		{EntryRef: EntryRef{Kind: "user", ID: 1}, Worker: 1},
		{EntryRef: EntryRef{Kind: "user", ID: 1}, Worker: 0},
		{EntryRef: EntryRef{Kind: "item", ID: 2}, Worker: 0},
		{EntryRef: EntryRef{Kind: "user", ID: 5}, Worker: 2},
	}}
	body, _ := json.Marshal(batch)
	resp, err := http.Post(srv.URL+"/v1/register_batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("register_batch status %d", resp.StatusCode)
	}

	const shards = 2
	seen := make(map[string][]int)
	for shard := 0; shard < shards; shard++ {
		body, _ := json.Marshal(BindingsRequest{Shard: shard, Shards: shards})
		resp, err := http.Post(srv.URL+"/v1/bindings", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out BindingsResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		for _, e := range out.Entries {
			k := e.Kind + "/" + string(rune('0'+e.ID))
			if _, dup := seen[k]; dup {
				t.Fatalf("entry %s appeared in two shards", k)
			}
			seen[k] = e.Workers
		}
	}
	if len(seen) != 3 {
		t.Fatalf("shard union has %d entries, want 3: %v", len(seen), seen)
	}
	if ws := seen["user/1"]; len(ws) != 2 || ws[0] != 0 || ws[1] != 1 {
		t.Fatalf("user/1 workers %v, want [0 1]", ws)
	}
}

// FuzzDrainStream fuzzes the bulk drain-stream decoder: it must never panic,
// and every frame it emits must carry a parseable key and a payload whose
// BKV2 header matches its length exactly.
func FuzzDrainStream(f *testing.F) {
	c := transferCache(f, model.TinyGR(32), 6, 9)
	payload, err := c.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	var good bytes.Buffer
	if _, err := encodeBulkFrame(&good, "user/7", payload); err != nil {
		f.Fatal(err)
	}
	if _, err := encodeBulkFrame(&good, "item/12", payload); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(good.Bytes()[:good.Len()-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		n, _ := decodeBulkStream(bytes.NewReader(data), 1<<20, func(key string, payload []byte) {
			if _, _, err := ParseCacheKey(key); err != nil {
				t.Fatalf("decoder emitted unparseable key %q: %v", key, err)
			}
			hdr, err := model.ParseWireHeader(payload)
			if err != nil {
				t.Fatalf("decoder emitted invalid payload: %v", err)
			}
			if hdr.PayloadSize() != len(payload) {
				t.Fatalf("decoder emitted %d payload bytes for a %d-byte header", len(payload), hdr.PayloadSize())
			}
		})
		if n < 0 {
			t.Fatal("negative frame count")
		}
	})
}

// TestBulkRoundTrip: encode → POST /v1/bulk → stored byte-identical.
func TestBulkRoundTrip(t *testing.T) {
	cw, err := NewCacheWorker(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(cw.Handler())
	defer srv.Close()

	c := transferCache(t, model.TinyGR(32), 6, 11)
	payload, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, key := range []string{"user/1", "item/2"} {
		if _, err := encodeBulkFrame(&buf, key, payload); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(srv.URL+"/v1/bulk", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out BulkResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Stored != 2 || len(out.Rejected) != 0 {
		t.Fatalf("bulk response %+v, want 2 stored", out)
	}
	for _, key := range []string{"user/1", "item/2"} {
		got, ok := cw.Peek(key)
		if !ok || !bytes.Equal(got, payload) {
			t.Fatalf("bulk-stored %s not byte-identical", key)
		}
	}
	// A draining worker refuses the stream.
	cw.SetDraining(true)
	resp2, err := http.Post(srv.URL+"/v1/bulk", "application/octet-stream", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining worker accepted bulk with status %d", resp2.StatusCode)
	}
}
