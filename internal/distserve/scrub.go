package distserve

// Anti-entropy scrubber: the poolguard's background consistency loop for the
// replicated KV pool. Failure repair (poolguard.go) reacts to deaths it
// observes; the scrubber catches what reaction misses — replicas lost to
// eviction, entries stored before a replication-factor increase, copies that
// silently diverged, bindings pointing at workers that no longer hold the
// payload. Each tick sweeps one shard of the meta index, HEAD-probes every
// bound replica for its token count and FNV-1a checksum (no payload moves,
// no LRU touch), and repairs in two passes: divergent replicas are
// re-copied from the longest (most-token) copy, and under-replicated
// entries are raw-copied onto the workers the frontend's replica walk would
// choose. Repairs per sweep are capped so a cold start cannot flood the
// pool with copy traffic.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"bat/internal/routing"
)

// Scrubber defaults; overridable through PoolGuardConfig.
const (
	defaultScrubInterval   = 2 * time.Second
	defaultScrubShards     = 8
	defaultScrubMaxRepairs = 32
)

// scrubSweep is one sweep's classification summary.
type scrubSweep struct {
	checked, under, lost      int
	userEntries, userReplicas int
	itemEntries, itemReplicas int
}

// replicaProbe is one live replica's HEAD-probe result.
type replicaProbe struct {
	worker, tokens int
	sum            uint64
}

// scrubOnce sweeps the next shard of the meta index.
func (g *PoolGuard) scrubOnce() {
	shards := g.cfg.ScrubShards
	g.mu.Lock()
	shard := g.scrubShard
	g.scrubShard = (g.scrubShard + 1) % shards
	g.mu.Unlock()

	// A sweep gets two intervals of budget (floored at 2s) so a slow worker
	// cannot stall the guard's probe loop indefinitely.
	budget := 2 * g.cfg.ScrubInterval
	if budget < 2*time.Second {
		budget = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(g.ctx, budget)
	defer cancel()

	entries, err := g.f.metaBindings(ctx, shard, shards)
	if err != nil {
		return
	}
	rf := g.f.replication()
	want := rf
	if live := g.f.routableWorkers(); want > live {
		want = live
	}
	if want < 1 {
		want = 1
	}
	repairs := 0
	var sweep scrubSweep
	for _, e := range entries {
		if ctx.Err() != nil {
			break
		}
		sweep.checked++
		oks := g.probeReplicas(ctx, e)
		switch e.Kind {
		case "user":
			sweep.userEntries++
			sweep.userReplicas += len(oks)
		case "item":
			sweep.itemEntries++
			sweep.itemReplicas += len(oks)
		}
		if len(oks) == 0 {
			// No live worker holds the entry: the bindings were stale (each
			// 404 probe already unregistered its binding). The data is gone
			// from the pool — the next read recomputes and re-stores it.
			sweep.lost++
			continue
		}
		best := oks[0]
		for _, p := range oks[1:] {
			if p.tokens > best.tokens {
				best = p
			}
		}
		// Pass 1: re-copy divergent replicas from the best one. Longest copy
		// wins — a shorter or checksum-divergent replica is a stale prefix
		// left behind by a delta append that only reached the primary.
		for _, p := range oks {
			if p.worker == best.worker || (p.tokens == best.tokens && p.sum == best.sum) {
				continue
			}
			if repairs >= g.cfg.ScrubMaxRepairs {
				break
			}
			if g.f.replicateRaw(ctx, best.worker, p.worker, e.Kind, e.ID) {
				repairs++
				g.mu.Lock()
				g.scrubDivergent++
				g.scrubRepairs++
				g.mu.Unlock()
			}
		}
		// Pass 2: restore the replication factor by copying onto the workers
		// the frontend's own replica walk routes this entry to.
		if len(oks) < want {
			sweep.under++
			holders := make(map[int]bool, len(oks))
			for _, p := range oks {
				holders[p.worker] = true
			}
			for _, t := range g.f.replicaWorkers(routing.EntryHash(e.Kind, e.ID), rf) {
				if holders[t] || repairs >= g.cfg.ScrubMaxRepairs {
					continue
				}
				if g.f.replicateRaw(ctx, best.worker, t, e.Kind, e.ID) {
					repairs++
					g.mu.Lock()
					g.scrubRepairs++
					g.mu.Unlock()
				}
			}
		}
	}
	g.mu.Lock()
	g.scrubSweeps++
	g.lastSweep = sweep
	g.mu.Unlock()
}

// probeReplicas HEAD-checks each bound replica, skipping workers the guard
// knows are dead and unregistering bindings the worker no longer honors.
func (g *PoolGuard) probeReplicas(ctx context.Context, e BoundEntry) []replicaProbe {
	var oks []replicaProbe
	for _, w := range e.Workers {
		if w < 0 || w >= len(g.f.cfg.CacheWorkers) {
			continue
		}
		g.mu.Lock()
		dead := g.dead[w]
		g.mu.Unlock()
		if dead {
			continue
		}
		tokens, sum, status, err := g.kvProbe(ctx, w, e.Kind, e.ID)
		if err != nil {
			continue
		}
		if status == http.StatusNotFound {
			// The worker evicted (or never got) the entry; drop the stale
			// binding so reads stop being steered at it.
			g.f.metaUnregister(ctx, e.Kind, e.ID, w)
			continue
		}
		if status != http.StatusOK {
			continue
		}
		oks = append(oks, replicaProbe{worker: w, tokens: tokens, sum: sum})
	}
	return oks
}

// kvProbe issues one bounded HEAD for an entry's token count and checksum.
func (g *PoolGuard) kvProbe(ctx context.Context, worker int, kind string, id uint64) (tokens int, sum uint64, status int, err error) {
	pctx, cancel := context.WithTimeout(ctx, 4*g.cfg.ProbeTimeout)
	defer cancel()
	u := fmt.Sprintf("%s/kv/%s/%d", g.f.cfg.CacheWorkers[worker], kind, id)
	req, err := http.NewRequestWithContext(pctx, http.MethodHead, u, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	resp, err := g.f.cfg.Client.Do(req)
	if err != nil {
		return 0, 0, 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, resp.StatusCode, nil
	}
	tokens, err = strconv.Atoi(resp.Header.Get(kvTokensHeader))
	if err != nil {
		return 0, 0, resp.StatusCode, err
	}
	sum, err = strconv.ParseUint(resp.Header.Get(kvChecksumHeader), 16, 64)
	if err != nil {
		return 0, 0, resp.StatusCode, err
	}
	return tokens, sum, resp.StatusCode, nil
}

// routableWorkers counts workers stores can currently route to (alive and
// not draining) — the bound on the achievable replication factor.
func (f *Frontend) routableWorkers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for i := range f.alive {
		if f.alive[i] && !f.draining[i] {
			n++
		}
	}
	return n
}

// metaBindings fetches one shard of the meta index through the transfer
// engine (retries, breaker) — the scrubber's view of what should exist.
func (f *Frontend) metaBindings(ctx context.Context, shard, shards int) ([]BoundEntry, error) {
	body, err := json.Marshal(BindingsRequest{Shard: shard, Shards: shards})
	if err != nil {
		return nil, err
	}
	status, respBody, err := f.transfer.send(ctx, f.transfer.metaTarget(), http.MethodPost,
		f.cfg.MetaURL+"/v1/bindings", "application/json", body)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("distserve: bindings returned status %d", status)
	}
	var resp BindingsResponse
	if err := json.Unmarshal(respBody, &resp); err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// replicateRaw copies one encoded entry worker-to-worker without decoding:
// a streaming GET from src relayed as a PUT to dst, registered in meta on
// success. This is the scrubber's repair primitive — no recompute, no
// buffering of the whole payload in the frontend.
func (f *Frontend) replicateRaw(ctx context.Context, src, dst int, kind string, id uint64) bool {
	if src == dst || src < 0 || dst < 0 ||
		src >= len(f.cfg.CacheWorkers) || dst >= len(f.cfg.CacheWorkers) {
		return false
	}
	u := fmt.Sprintf("%s/kv/%s/%d", f.cfg.CacheWorkers[src], kind, id)
	status, contentLength, body, _, err := f.transfer.getStream(ctx, src, u)
	if err != nil {
		return false
	}
	if status != http.StatusOK {
		body.Close()
		return false
	}
	putURL := fmt.Sprintf("%s/kv/%s/%d", f.cfg.CacheWorkers[dst], kind, id)
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, putURL, body)
	if err != nil {
		body.Close()
		return false
	}
	req.ContentLength = contentLength
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		// Client.Do closed the request body (our src stream) on its way out.
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return false
	}
	f.countBytes("tx", kind, "full", contentLength)
	f.registerLocation(ctx, kind, id, dst)
	return true
}
