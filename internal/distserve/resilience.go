package distserve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The transfer engine is the layer §3.3/§5 lean on: KV payloads must move
// between cache workers quickly, and when a worker is slow or dead the
// frontend must degrade to recompute — never stall. transferClient wraps the
// frontend's http.Client with per-attempt timeouts, bounded retries with
// jittered exponential backoff (idempotent GETs only), and a per-target
// circuit breaker so a dead worker is skipped immediately instead of being
// re-probed on every request.

// Transfer defaults; all overridable through TransferConfig.
const (
	defaultTransferTimeout  = 2 * time.Second
	defaultMaxRetries       = 2
	defaultBackoffBase      = 25 * time.Millisecond
	defaultBackoffMax       = 250 * time.Millisecond
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 2 * time.Second
	defaultFetchConcurrency = 16
	defaultStoreQueueDepth  = 256
	defaultStoreWorkers     = 2
)

// maxMetaResponse caps the buffered (non-streaming) endpoints' response
// bodies — meta JSON and stats are a few KB; anything past 1MiB is a
// misbehaving peer, rejected before it can balloon the frontend's heap. KV
// payloads never pass through this path: they stream through getStream and
// are bounded by the codec's own header caps.
const maxMetaResponse = 1 << 20

// TransferConfig tunes the frontend's transfer engine. The zero value means
// "use defaults"; negative MaxRetries disables retries and negative
// BreakerThreshold disables the circuit breaker.
type TransferConfig struct {
	// Timeout bounds each transfer attempt (and is the default client
	// timeout when no custom http.Client is supplied).
	Timeout time.Duration
	// MaxRetries is the number of extra attempts for idempotent GETs.
	MaxRetries int
	// BackoffBase/BackoffMax bound the jittered exponential retry backoff.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold is the consecutive-failure count that trips a
	// target's circuit breaker open.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before a
	// single half-open probe is allowed through.
	BreakerCooldown time.Duration
	// FetchConcurrency bounds the parallel per-candidate item cache
	// fetches issued by one Rank call (1 = serial).
	FetchConcurrency int
	// JitterSeed seeds the transfer engine's locally-owned retry-jitter RNG
	// (0 = seed from the clock). Fault-injection tests set it so backoff
	// sequences replay deterministically.
	JitterSeed int64
	// StoreQueueDepth bounds the frontend's write-behind store queue (0 =
	// default 256; negative = synchronous stores at the batch boundary, the
	// pre-write-behind behavior).
	StoreQueueDepth int
	// StoreWorkers is the write-behind store concurrency (default 2).
	StoreWorkers int
	// HedgeQuantile picks the fetch-stage latency quantile whose observed
	// value arms the hedged-read timer: when a replica fetch has at least one
	// fallback location and the first attempt is still in flight after that
	// long, a second fetch races it to the next replica. 0 = default 0.99;
	// negative disables hedging. Hedging never fires while the fetch-stage
	// histogram is empty (cold start has no signal to derive a delay from).
	HedgeQuantile float64
}

func (c TransferConfig) withDefaults() TransferConfig {
	if c.Timeout <= 0 {
		c.Timeout = defaultTransferTimeout
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = defaultMaxRetries
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = defaultBackoffBase
	}
	if c.BackoffMax < c.BackoffBase {
		c.BackoffMax = defaultBackoffMax
		if c.BackoffMax < c.BackoffBase {
			c.BackoffMax = c.BackoffBase
		}
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = defaultBreakerThreshold
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = defaultBreakerCooldown
	}
	if c.FetchConcurrency <= 0 {
		c.FetchConcurrency = defaultFetchConcurrency
	}
	if c.StoreQueueDepth == 0 {
		c.StoreQueueDepth = defaultStoreQueueDepth
	}
	if c.StoreWorkers <= 0 {
		c.StoreWorkers = defaultStoreWorkers
	}
	return c
}

// errBreakerOpen reports a transfer skipped because the target's breaker is
// open; the caller treats it like any other fetch failure (a cache miss).
var errBreakerOpen = errors.New("distserve: circuit breaker open")

// Breaker states, reported through WorkerHealth.
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

// targetState is one remote endpoint's health: breaker state plus counters.
type targetState struct {
	mu          sync.Mutex
	name        string
	state       string
	consecFails int
	openedAt    time.Time
	probing     bool // a half-open probe is in flight

	requests     int64
	errors       int64
	breakerSkips int64
	totalLatency time.Duration
	lastError    string
}

// admit decides whether a request may go to this target. probe reports that
// the caller holds the single half-open probe slot.
func (ts *targetState) admit(threshold int, cooldown time.Duration, now time.Time) (probe, ok bool) {
	if threshold < 0 {
		return false, true
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	switch ts.state {
	case breakerOpen:
		if now.Sub(ts.openedAt) >= cooldown {
			ts.state = breakerHalfOpen
			ts.probing = true
			return true, true
		}
		ts.breakerSkips++
		return false, false
	case breakerHalfOpen:
		if ts.probing {
			ts.breakerSkips++
			return false, false
		}
		ts.probing = true
		return true, true
	default:
		return false, true
	}
}

// record settles one attempt's outcome into the breaker and the counters.
func (ts *targetState) record(threshold int, now time.Time, latency time.Duration, probe, success bool, errText string) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.requests++
	ts.totalLatency += latency
	if success {
		ts.consecFails = 0
		ts.state = breakerClosed
		ts.probing = false
		return
	}
	ts.errors++
	ts.lastError = errText
	ts.consecFails++
	if threshold < 0 {
		return
	}
	if probe || ts.state == breakerHalfOpen || (ts.state == breakerClosed && ts.consecFails >= threshold) {
		ts.state = breakerOpen
		ts.openedAt = now
		ts.probing = false
	}
}

func (ts *targetState) health() WorkerHealth {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	h := WorkerHealth{
		Target:       ts.name,
		Requests:     ts.requests,
		Errors:       ts.errors,
		BreakerSkips: ts.breakerSkips,
		Breaker:      ts.state,
		LastError:    ts.lastError,
	}
	if ts.requests > 0 {
		h.AvgLatencyMs = float64(ts.totalLatency.Milliseconds()) / float64(ts.requests)
	}
	return h
}

// WorkerHealth is one transfer target's slice of FrontendStats.
type WorkerHealth struct {
	Target       string  `json:"target"` // "worker-N" or "meta"
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	BreakerSkips int64   `json:"breaker_skips"`
	AvgLatencyMs float64 `json:"avg_latency_ms"`
	Breaker      string  `json:"breaker"`
	LastError    string  `json:"last_error,omitempty"`
	// Draining marks a cache worker mid graceful drain: it still serves
	// reads but stores route elsewhere. Filled by the frontend; always false
	// for the meta target.
	Draining bool `json:"draining,omitempty"`
}

// transferClient is the fault-tolerant transfer engine. Targets 0..N-1 are
// the cache workers; target N is the meta service.
type transferClient struct {
	http    *http.Client
	cfg     TransferConfig
	now     func() time.Time
	targets []*targetState

	// rng is the locally-owned jitter source (never the package-global
	// rand): seeding it makes retry schedules replayable in fault tests and
	// keeps concurrent engines from contending on one shared lock.
	rngMu sync.Mutex
	rng   *rand.Rand
}

func newTransferClient(client *http.Client, cfg TransferConfig, workers int) *transferClient {
	cfg = cfg.withDefaults()
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	t := &transferClient{
		http:    client,
		cfg:     cfg,
		now:     time.Now,
		rng:     rand.New(rand.NewSource(seed)),
		targets: make([]*targetState, workers+1),
	}
	for i := 0; i < workers; i++ {
		t.targets[i] = &targetState{name: fmt.Sprintf("worker-%d", i), state: breakerClosed}
	}
	t.targets[workers] = &targetState{name: "meta", state: breakerClosed}
	return t
}

// metaTarget is the breaker slot for the meta service.
func (t *transferClient) metaTarget() int { return len(t.targets) - 1 }

// get issues an idempotent GET with retries, backoff, and breaker checks.
// It returns the status code, the fully-read body, and how many attempts the
// engine spent (for fetch-span tagging); non-2xx statuses below 500 are
// returned to the caller (a 404 is information, not a fault). The body is
// buffered with a Content-Length-sized preallocation and capped at
// maxMetaResponse — this path serves only the small-JSON endpoints; KV
// payloads go through getStream.
func (t *transferClient) get(ctx context.Context, target int, url string) (int, []byte, int, error) {
	return t.roundTrip(ctx, target, true, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url, nil)
	})
}

// send issues a single-attempt (non-idempotent) request with a body.
func (t *transferClient) send(ctx context.Context, target int, method, url, contentType string, payload []byte) (int, []byte, error) {
	return t.sendHeader(ctx, target, method, url, contentType, nil, payload)
}

// sendHeader is send with extra request headers (the delta-store PATCH
// carries its prefix checksum in one).
func (t *transferClient) sendHeader(ctx context.Context, target int, method, url, contentType string, header http.Header, payload []byte) (int, []byte, error) {
	status, body, _, err := t.roundTrip(ctx, target, false, func() (*http.Request, error) {
		req, err := http.NewRequest(method, url, bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		for k, vs := range header {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		return req, nil
	})
	return status, body, err
}

func (t *transferClient) roundTrip(ctx context.Context, target int, idempotent bool, build func() (*http.Request, error)) (int, []byte, int, error) {
	ts := t.targets[target]
	attempts := 1
	if idempotent && t.cfg.MaxRetries > 0 {
		attempts += t.cfg.MaxRetries
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			select {
			case <-time.After(t.backoff(i)):
			case <-ctx.Done():
				return 0, nil, i, ctx.Err()
			}
		}
		if err := ctx.Err(); err != nil {
			return 0, nil, i, err
		}
		probe, ok := ts.admit(t.cfg.BreakerThreshold, t.cfg.BreakerCooldown, t.now())
		if !ok {
			return 0, nil, i, errBreakerOpen
		}
		status, body, err := t.attempt(ctx, probe, ts, build)
		if err != nil {
			lastErr = err
			continue
		}
		if status >= http.StatusInternalServerError {
			lastErr = fmt.Errorf("distserve: %s returned status %d", ts.name, status)
			continue
		}
		return status, body, i + 1, nil
	}
	return 0, nil, attempts, lastErr
}

// attempt runs one bounded try and settles it into the target's health.
func (t *transferClient) attempt(ctx context.Context, probe bool, ts *targetState, build func() (*http.Request, error)) (int, []byte, error) {
	req, err := build()
	if err != nil {
		return 0, nil, err
	}
	actx, cancel := context.WithTimeout(ctx, t.cfg.Timeout)
	defer cancel()
	start := t.now()
	resp, err := t.http.Do(req.WithContext(actx))
	var (
		status int
		body   []byte
	)
	if err == nil {
		status = resp.StatusCode
		body, err = readBodyCapped(resp.Body, resp.ContentLength, maxMetaResponse)
		resp.Body.Close()
	}
	latency := t.now().Sub(start)
	success := err == nil && status < http.StatusInternalServerError
	errText := ""
	if err != nil {
		errText = err.Error()
	} else if !success {
		errText = fmt.Sprintf("status %d", status)
	}
	ts.record(t.cfg.BreakerThreshold, t.now(), latency, probe, success, errText)
	if err != nil {
		return 0, nil, err
	}
	return status, body, nil
}

// errBodyOverCap marks a body rejected for exceeding its endpoint's byte cap
// (declared via Content-Length or discovered mid-read), so handlers can map
// it to a storage-full status instead of a generic bad request.
var errBodyOverCap = errors.New("distserve: body exceeds cap")

// readBodyCapped buffers a request or response body, preallocating from
// Content-Length instead of letting io.ReadAll grow geometrically, and
// rejecting any body over the endpoint's cap (declared or discovered).
func readBodyCapped(r io.Reader, contentLength, limit int64) ([]byte, error) {
	if contentLength > limit {
		return nil, fmt.Errorf("%w: declared %d bytes, cap %d", errBodyOverCap, contentLength, limit)
	}
	n := contentLength
	if n < 0 {
		n = 512
	}
	buf := bytes.NewBuffer(make([]byte, 0, n))
	read, err := io.Copy(buf, io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if read > limit {
		return nil, fmt.Errorf("%w: cap %d", errBodyOverCap, limit)
	}
	return buf.Bytes(), nil
}

// getStream issues an idempotent GET whose body the caller consumes as a
// stream — the receive-overlap fetch path: decode starts at the first layer
// frame while later frames are still in flight. Retries (with backoff and
// breaker checks) apply only until response headers arrive; once a body is
// handed out the attempt's breaker outcome settles at Close, charging any
// mid-stream read failure (truncation, reset, timeout) to the target. The
// caller must Close the returned body exactly once, even on non-200 statuses.
func (t *transferClient) getStream(ctx context.Context, target int, url string) (status int, contentLength int64, body io.ReadCloser, tries int, err error) {
	ts := t.targets[target]
	attempts := 1
	if t.cfg.MaxRetries > 0 {
		attempts += t.cfg.MaxRetries
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			select {
			case <-time.After(t.backoff(i)):
			case <-ctx.Done():
				return 0, 0, nil, i, ctx.Err()
			}
		}
		if err := ctx.Err(); err != nil {
			return 0, 0, nil, i, err
		}
		probe, ok := ts.admit(t.cfg.BreakerThreshold, t.cfg.BreakerCooldown, t.now())
		if !ok {
			return 0, 0, nil, i, errBreakerOpen
		}
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			ts.record(t.cfg.BreakerThreshold, t.now(), 0, probe, false, err.Error())
			return 0, 0, nil, i + 1, err
		}
		actx, cancel := context.WithTimeout(ctx, t.cfg.Timeout)
		start := t.now()
		resp, err := t.http.Do(req.WithContext(actx))
		if err != nil {
			cancel()
			ts.record(t.cfg.BreakerThreshold, t.now(), t.now().Sub(start), probe, false, err.Error())
			lastErr = err
			continue
		}
		if resp.StatusCode >= http.StatusInternalServerError {
			io.Copy(io.Discard, io.LimitReader(resp.Body, maxMetaResponse))
			resp.Body.Close()
			cancel()
			ts.record(t.cfg.BreakerThreshold, t.now(), t.now().Sub(start), probe, false, fmt.Sprintf("status %d", resp.StatusCode))
			lastErr = fmt.Errorf("distserve: %s returned status %d", ts.name, resp.StatusCode)
			continue
		}
		tb := &trackedBody{rc: resp.Body, cancel: cancel, t: t, ts: ts, probe: probe, start: start}
		return resp.StatusCode, resp.ContentLength, tb, i + 1, nil
	}
	return 0, 0, nil, attempts, lastErr
}

// trackedBody wraps a streaming response body so the breaker attempt settles
// exactly once, at Close, with the full receive latency and any read error
// observed mid-stream.
type trackedBody struct {
	rc      io.ReadCloser
	cancel  context.CancelFunc
	t       *transferClient
	ts      *targetState
	probe   bool
	start   time.Time
	readErr error
	closed  bool
}

func (b *trackedBody) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	if err != nil && err != io.EOF && b.readErr == nil {
		b.readErr = err
	}
	return n, err
}

func (b *trackedBody) Close() error {
	if b.closed {
		return nil
	}
	b.closed = true
	err := b.rc.Close()
	b.cancel()
	success := b.readErr == nil
	errText := ""
	if b.readErr != nil {
		errText = b.readErr.Error()
	}
	b.ts.record(b.t.cfg.BreakerThreshold, b.t.now(), b.t.now().Sub(b.start), b.probe, success, errText)
	return err
}

// backoff returns the jittered exponential delay before retry attempt i (≥1).
func (t *transferClient) backoff(i int) time.Duration {
	d := t.cfg.BackoffBase << uint(i-1)
	if d > t.cfg.BackoffMax || d <= 0 {
		d = t.cfg.BackoffMax
	}
	t.rngMu.Lock()
	jitter := t.rng.Float64()
	t.rngMu.Unlock()
	// Jitter in [0.5d, 1.5d) decorrelates synchronized retry storms.
	return time.Duration(float64(d) * (0.5 + jitter))
}

// openWorkerBreakers counts cache workers (the meta slot excluded) whose
// circuit breaker is currently open — the overload ladder's pool-health
// signal.
func (t *transferClient) openWorkerBreakers() int {
	open := 0
	for _, ts := range t.targets[:len(t.targets)-1] {
		ts.mu.Lock()
		if ts.state == breakerOpen {
			open++
		}
		ts.mu.Unlock()
	}
	return open
}

// health snapshots every target, workers first, meta last.
func (t *transferClient) health() []WorkerHealth {
	out := make([]WorkerHealth, len(t.targets))
	for i, ts := range t.targets {
		out[i] = ts.health()
	}
	return out
}

// ParseCacheKey splits a cache worker key ("user/5", "item/42") into the
// meta service's wire fields. Eviction hooks use it to unregister entries.
func ParseCacheKey(key string) (kind string, id uint64, err error) {
	i := strings.IndexByte(key, '/')
	if i < 0 {
		return "", 0, fmt.Errorf("distserve: malformed cache key %q", key)
	}
	kind = key[:i]
	if kind != "user" && kind != "item" {
		return "", 0, fmt.Errorf("distserve: unknown entry kind in key %q", key)
	}
	id, err = strconv.ParseUint(key[i+1:], 10, 64)
	if err != nil {
		return "", 0, fmt.Errorf("distserve: malformed cache key %q: %v", key, err)
	}
	return kind, id, nil
}
