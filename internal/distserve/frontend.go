package distserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"

	"bat/internal/bipartite"
	"bat/internal/model"
	"bat/internal/ranking"
	"bat/internal/scheduler"
)

// FrontendConfig wires an inference frontend to its cluster.
type FrontendConfig struct {
	Dataset *ranking.Dataset
	Variant ranking.ModelVariant
	// MetaURL is the cache meta service's base URL.
	MetaURL string
	// CacheWorkers are the cache workers' base URLs; slice index is the
	// worker ID used with the meta service.
	CacheWorkers []string
	// Policy decides each request's attention pattern (default hotness-aware).
	Policy scheduler.Policy
	// TopK is the returned ranking length (default 10).
	TopK int
	// Client issues the HTTP calls (default http.DefaultClient).
	Client *http.Client
}

// Frontend is the inference worker + prompt scheduler of Figure 3: it owns
// the model replica, consults the meta service, moves KV payloads to and
// from cache workers, and executes Bipartite Attention.
type Frontend struct {
	cfg    FrontendConfig
	ranker *ranking.Ranker

	mu                           sync.Mutex
	requests                     int64
	userPrefix, itemPrefix       int64
	reusedTokens, computedTokens int64
	fetchErrors                  int64
}

// NewFrontend builds a frontend.
func NewFrontend(cfg FrontendConfig) (*Frontend, error) {
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("distserve: nil dataset")
	}
	if cfg.MetaURL == "" || len(cfg.CacheWorkers) == 0 {
		return nil, fmt.Errorf("distserve: frontend needs a meta URL and at least one cache worker")
	}
	if cfg.Policy == nil {
		cfg.Policy = scheduler.HotnessAware{}
	}
	if cfg.TopK == 0 {
		cfg.TopK = 10
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	r, err := ranking.NewRanker(cfg.Dataset, cfg.Variant)
	if err != nil {
		return nil, err
	}
	return &Frontend{cfg: cfg, ranker: r}, nil
}

// userWorker and itemWorker shard entries across cache workers.
func (f *Frontend) userWorker(u int) int {
	return int(mix(uint64(u)) % uint64(len(f.cfg.CacheWorkers)))
}

func (f *Frontend) itemWorker(i int) int {
	return int(mix(uint64(i)^0x1234) % uint64(len(f.cfg.CacheWorkers)))
}

// RankRequest / RankResponse mirror the single-process server's API.
type RankRequest struct {
	UserID       int   `json:"user_id"`
	CandidateIDs []int `json:"candidate_ids"`
}

// RankResponse is the frontend's reply.
type RankResponse struct {
	Ranking        []int  `json:"ranking"`
	Prefix         string `json:"prefix"`
	ReusedTokens   int    `json:"reused_tokens"`
	ComputedTokens int    `json:"computed_tokens"`
}

// Rank serves one request end to end through the disaggregated pool.
func (f *Frontend) Rank(req RankRequest) (*RankResponse, error) {
	ds := f.cfg.Dataset
	if req.UserID < 0 || req.UserID >= len(ds.UserHistory) {
		return nil, fmt.Errorf("distserve: unknown user %d", req.UserID)
	}
	if len(req.CandidateIDs) == 0 {
		return nil, fmt.Errorf("distserve: empty candidate set")
	}
	for _, it := range req.CandidateIDs {
		if it < 0 || it >= len(ds.ItemTokens) {
			return nil, fmt.Errorf("distserve: unknown item %d", it)
		}
	}

	hotness := f.metaAccess("user", uint64(req.UserID))
	userTokens := len(ds.UserHistory[req.UserID])
	itemTokens := 0
	for _, it := range req.CandidateIDs {
		itemTokens += len(ds.ItemTokens[it])
	}
	userLocs := f.metaLocate("user", uint64(req.UserID))
	dec := f.cfg.Policy.Decide(scheduler.Context{
		UserTokens:  userTokens,
		ItemTokens:  itemTokens,
		UserHotness: hotness,
		UserCached:  len(userLocs) > 0,
		// The disaggregated pool evicts internally; the frontend treats it
		// as always admitting (cache workers apply their own budgets).
		UserPoolHasSpace: true,
	})

	kind := dec.Kind
	if dec.Recompute {
		kind = bipartite.UserPrefix
	}
	var caches bipartite.CacheSet
	if !dec.Recompute {
		if kind == bipartite.UserPrefix && len(userLocs) > 0 {
			if c := f.fetchCache(userLocs[0], fmt.Sprintf("user/%d", req.UserID)); c != nil {
				caches.User = c
			}
		}
		if kind == bipartite.ItemPrefix {
			caches.Items = make(map[int]*model.KVCache, len(req.CandidateIDs))
			for slot, it := range req.CandidateIDs {
				if c := f.fetchCache(f.itemWorker(it), fmt.Sprintf("item/%d", it)); c != nil {
					caches.Items[slot] = c
				}
			}
		}
	}

	evalReq := ranking.EvalRequest{User: req.UserID, Candidates: req.CandidateIDs}
	ranked, run, err := f.ranker.Rank(evalReq, kind, ranking.RankOpts{Caches: caches})
	if err != nil {
		return nil, err
	}

	// Write back freshly computed caches (the scheduler's background cache
	// write path).
	if !dec.Recompute {
		if run.NewUserCache != nil && dec.AdmitUser {
			f.storeCache(f.userWorker(req.UserID), "user", uint64(req.UserID), run.NewUserCache)
		}
		for slot, c := range run.NewItemCaches {
			it := req.CandidateIDs[slot]
			f.storeCache(f.itemWorker(it), "item", uint64(it), c)
		}
	}

	f.mu.Lock()
	f.requests++
	if kind == bipartite.UserPrefix {
		f.userPrefix++
	} else {
		f.itemPrefix++
	}
	f.reusedTokens += int64(run.ReusedTokens)
	f.computedTokens += int64(run.ComputedTokens)
	f.mu.Unlock()

	k := f.cfg.TopK
	if k > len(ranked) {
		k = len(ranked)
	}
	top := make([]int, k)
	for i := 0; i < k; i++ {
		top[i] = req.CandidateIDs[ranked[i]]
	}
	return &RankResponse{
		Ranking:        top,
		Prefix:         kind.String(),
		ReusedTokens:   run.ReusedTokens,
		ComputedTokens: run.ComputedTokens,
	}, nil
}

// metaAccess records an access; network failures degrade to cold (0).
func (f *Frontend) metaAccess(kind string, id uint64) float64 {
	body, err := json.Marshal(EntryRef{Kind: kind, ID: id})
	if err != nil {
		return 0
	}
	resp, err := f.cfg.Client.Post(f.cfg.MetaURL+"/v1/access", "application/json", bytes.NewReader(body))
	if err != nil {
		f.noteFetchError()
		return 0
	}
	defer resp.Body.Close()
	var out AccessResponse
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&out) != nil {
		return 0
	}
	return out.Hotness
}

// metaLocate resolves an entry's workers; failures degrade to "not cached".
func (f *Frontend) metaLocate(kind string, id uint64) []int {
	u := fmt.Sprintf("%s/v1/locate?kind=%s&id=%d", f.cfg.MetaURL, url.QueryEscape(kind), id)
	resp, err := f.cfg.Client.Get(u)
	if err != nil {
		f.noteFetchError()
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var out LocateResponse
	if json.NewDecoder(resp.Body).Decode(&out) != nil {
		return nil
	}
	return out.Workers
}

// fetchCache pulls and decodes one KV payload; any failure is a miss (the
// request recomputes, never errors).
func (f *Frontend) fetchCache(worker int, key string) *model.KVCache {
	if worker < 0 || worker >= len(f.cfg.CacheWorkers) {
		return nil
	}
	resp, err := f.cfg.Client.Get(f.cfg.CacheWorkers[worker] + "/kv/" + key)
	if err != nil {
		f.noteFetchError()
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		f.noteFetchError()
		return nil
	}
	c := model.NewKVCache(f.ranker.W.Config())
	if err := c.UnmarshalBinary(data); err != nil {
		f.noteFetchError()
		return nil
	}
	return c
}

// storeCache writes a payload and registers its location; failures are
// silent (the cache is an optimization).
func (f *Frontend) storeCache(worker int, kind string, id uint64, c *model.KVCache) {
	data, err := c.MarshalBinary()
	if err != nil {
		return
	}
	key := fmt.Sprintf("%s/%d", kind, id)
	req, err := http.NewRequest(http.MethodPut, f.cfg.CacheWorkers[worker]+"/kv/"+key, bytes.NewReader(data))
	if err != nil {
		return
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		f.noteFetchError()
		return
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return
	}
	body, err := json.Marshal(RegisterRequest{EntryRef: EntryRef{Kind: kind, ID: id}, Worker: worker})
	if err != nil {
		return
	}
	if mresp, err := f.cfg.Client.Post(f.cfg.MetaURL+"/v1/register", "application/json", bytes.NewReader(body)); err == nil {
		mresp.Body.Close()
	}
}

func (f *Frontend) noteFetchError() {
	f.mu.Lock()
	f.fetchErrors++
	f.mu.Unlock()
}

// FrontendStats is the /v1/stats payload.
type FrontendStats struct {
	Requests       int64   `json:"requests"`
	UserPrefix     int64   `json:"user_prefix_requests"`
	ItemPrefix     int64   `json:"item_prefix_requests"`
	ReusedTokens   int64   `json:"reused_tokens"`
	ComputedTokens int64   `json:"computed_tokens"`
	TokenHitRate   float64 `json:"token_hit_rate"`
	FetchErrors    int64   `json:"fetch_errors"`
}

// Stats snapshots the frontend.
func (f *Frontend) Stats() FrontendStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FrontendStats{
		Requests: f.requests, UserPrefix: f.userPrefix, ItemPrefix: f.itemPrefix,
		ReusedTokens: f.reusedTokens, ComputedTokens: f.computedTokens,
		FetchErrors: f.fetchErrors,
	}
	if total := st.ReusedTokens + st.ComputedTokens; total > 0 {
		st.TokenHitRate = float64(st.ReusedTokens) / float64(total)
	}
	return st
}

// Handler exposes the frontend API: POST /v1/rank, GET /v1/stats, /healthz.
func (f *Frontend) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/rank", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var req RankRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := f.Rank(req)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(rw, resp)
	})
	mux.HandleFunc("/v1/stats", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, f.Stats())
	})
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(rw, "ok")
	})
	return mux
}

// mix is splitmix64's finalizer.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
